// gen_1 (generated P4-14 source)

header_type h0_t {
    fields {
        f0 : 32;
        sel : 16;
    }
}

header_type h1_t {
    fields {
        f0 : 24;
        f1 : 8;
    }
}

header_type h2_t {
    fields {
        f0 : 4;
        f1 : 32;
        f2 : 8;
        f3 : 4;
    }
}

header_type h3_t {
    fields {
        f0 : 24;
        f1 : 12;
        f2 : 12;
        f3 : 8;
        f4 : 4;
        f5 : 4;
    }
}

header h0_t h0;
header h1_t h1;
header h2_t h2;
header h3_t h3;

parser start {
    extract(h0);
    return select(h0.sel) {
        0x07ca : p_h1;
        0x1161 : p_h2;
        0xe11a : p_h3;
        default : ingress;
    }
}

parser p_h1 {
    extract(h1);
    return ingress;
}

parser p_h2 {
    extract(h2);
    return ingress;
}

parser p_h3 {
    extract(h3);
    return ingress;
}

action act2(port) {
    modify_field(standard_metadata.egress_spec, port);
}

action act3(port) {
}

action a_drop() {
}

table t1 {
    reads {
        h0.f0 : exact;
    }
    actions {
        act2;
        act3;
        a_drop;
    }
    default_action : a_drop;
    size : 1024;
}

control ingress {
    apply(t1);
}

control egress {
}

