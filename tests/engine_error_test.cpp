// Engine error paths and edge cases: control-plane operations against
// objects the loaded program does not have, empty drains, more workers
// than flows, and backpressure with a deliberately slow consumer.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "apps/apps.h"
#include "bench/common.h"
#include "engine/engine.h"
#include "net/headers.h"
#include "util/error.h"

namespace hyper4 {
namespace {

using engine::EngineOptions;
using engine::MergedResult;
using engine::TrafficEngine;

net::Packet flow_packet(std::size_t flow) {
  net::EthHeader eth;
  eth.src = net::mac_from_string(bench::kMacH1);
  eth.dst = net::mac_from_string(bench::kMacH2);
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string("10.1.0.0") + static_cast<std::uint32_t>(flow);
  ip.dst = net::ipv4_from_string("10.2.0.0") + static_cast<std::uint32_t>(flow);
  ip.protocol = net::kIpProtoTcp;
  net::TcpHeader tcp;
  tcp.src_port = static_cast<std::uint16_t>(20000 + flow);
  tcp.dst_port = 443;
  return net::make_ipv4_tcp(eth, ip, tcp, 16);
}

TEST(EngineErrors, ControlOpsAgainstMissingObjectsThrow) {
  // l2_switch has no table "acl", no counter "hits", no register "state" —
  // every control-plane op against them must throw a structured error and
  // leave the engine usable.
  TrafficEngine eng(apps::l2_switch());
  EXPECT_THROW(eng.table_add("acl", "forward", {}, {}), util::Error);
  EXPECT_THROW(eng.table_modify("acl", "forward", 0, {}), util::Error);
  EXPECT_THROW(eng.table_delete("acl", 0), util::Error);
  EXPECT_THROW(eng.table_set_default("acl", "forward"), util::Error);
  EXPECT_THROW(eng.table_delete("dmac", 424242), util::Error);  // bad handle
  EXPECT_THROW((void)eng.counter_packets_total("hits", 0), util::Error);
  EXPECT_THROW((void)eng.register_read("state", 0), util::Error);
  EXPECT_THROW(eng.register_write("state", 0, util::BitVec(32, 1)),
               util::Error);

  // The engine survives: a valid op and a packet still go through.
  bm::Switch native(apps::l2_switch());
  apps::apply_rule(native, apps::l2_forward(bench::kMacH2, 2));
  eng.sync_from(native);
  eng.inject(1, flow_packet(0));
  const MergedResult m = eng.drain();
  EXPECT_EQ(m.packets, 1u);
  ASSERT_EQ(m.totals.outputs.size(), 1u);
  EXPECT_EQ(m.totals.outputs[0].port, 2);
}

TEST(EngineErrors, FailedControlOpDoesNotBumpEpoch) {
  TrafficEngine eng(apps::l2_switch());
  const std::uint64_t before = eng.epoch();
  EXPECT_THROW(eng.table_add("acl", "forward", {}, {}), util::Error);
  EXPECT_EQ(eng.epoch(), before);
}

TEST(EngineErrors, DrainWithZeroPacketsIsEmptyAndRepeatable) {
  TrafficEngine eng(apps::l2_switch());
  for (int i = 0; i < 3; ++i) {
    const MergedResult m = eng.drain();
    EXPECT_EQ(m.packets, 0u);
    EXPECT_TRUE(m.per_packet.empty());
    EXPECT_TRUE(m.totals.outputs.empty());
  }
}

TEST(EngineErrors, MoreWorkersThanFlows) {
  // 8 workers, 2 flows: most workers never see a packet; results are still
  // complete and in injection order.
  bm::Switch native(apps::l2_switch());
  apps::apply_rule(native, apps::l2_forward(bench::kMacH2, 2));

  EngineOptions opts;
  opts.workers = 8;
  TrafficEngine eng(apps::l2_switch(), opts);
  eng.sync_from(native);

  const std::size_t n = 40;
  for (std::size_t i = 0; i < n; ++i) eng.inject(1, flow_packet(i % 2));
  const MergedResult m = eng.drain();
  EXPECT_EQ(m.packets, n);
  ASSERT_EQ(m.per_packet.size(), n);
  for (const auto& pr : m.per_packet) {
    ASSERT_EQ(pr.outputs.size(), 1u);
    EXPECT_EQ(pr.outputs[0].port, 2);
  }
}

TEST(EngineErrors, RegisterReadNeedsSingleWorker) {
  EngineOptions opts;
  opts.workers = 2;
  TrafficEngine eng(apps::l2_switch(), opts);
  EXPECT_THROW((void)eng.register_read("anything", 0), util::ConfigError);
}

TEST(EngineErrors, BackpressureWithSlowConsumer) {
  // A one-slot queue and a worker slowed by large per-batch locking: the
  // producer must block on the full queue (backpressure_waits > 0) yet no
  // packet is lost or reordered.
  bm::Switch native(apps::l2_switch());
  apps::apply_rule(native, apps::l2_forward(bench::kMacH2, 2));

  EngineOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  opts.batch_size = 1;
  TrafficEngine eng(apps::l2_switch(), opts);
  eng.sync_from(native);

  const std::size_t n = 256;
  for (std::size_t i = 0; i < n; ++i) {
    eng.inject(1, flow_packet(0));
    if (i % 64 == 0) {
      // Stall the consumer by hogging its replica lock briefly.
      (void)eng.replica(0);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const MergedResult m = eng.drain();
  EXPECT_EQ(m.packets, n);
  EXPECT_EQ(m.totals.outputs.size(), n);
  EXPECT_GE(eng.metrics().counter("backpressure_waits").value(), 1u);
}

}  // namespace
}  // namespace hyper4
