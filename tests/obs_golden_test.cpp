// Golden-trace conformance suite.
//
// For each of the paper's four network functions, the same configuration
// and packet set runs natively and under the HyPer4 persona with an
// obs::PipelineTracer attached (events only, timestamps off — the decoded
// serialization is deterministic). The decoded emulated views are pinned
// against fixtures in tests/fixtures/golden/, and the two backends'
// views must additionally agree per first_divergence_report().
//
// To regenerate the fixtures after an intentional behaviour change:
//   HP4_UPDATE_GOLDEN=1 ./build/tests/obs_golden_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "bm/switch.h"
#include "hp4/controller.h"
#include "hp4/trace_decode.h"
#include "net/headers.h"
#include "obs/tracer.h"

namespace hyper4 {
namespace {

using apps::Rule;

const char* kMacH1 = "02:00:00:00:00:01";
const char* kMacH2 = "02:00:00:00:00:02";
const char* kMacH3 = "02:00:00:00:00:03";
const char* kMacRtr = "02:aa:00:00:00:ff";

net::Packet tcp_packet(const char* smac, const char* dmac, const char* sip,
                       const char* dip, std::uint16_t dport,
                       std::size_t payload = 64) {
  net::EthHeader eth;
  eth.src = net::mac_from_string(smac);
  eth.dst = net::mac_from_string(dmac);
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string(sip);
  ip.dst = net::ipv4_from_string(dip);
  net::TcpHeader tcp;
  tcp.src_port = 40000;
  tcp.dst_port = dport;
  return net::make_ipv4_tcp(eth, ip, tcp, payload);
}

net::Packet udp_packet(std::uint16_t dport) {
  net::EthHeader eth;
  eth.src = net::mac_from_string(kMacH1);
  eth.dst = net::mac_from_string(kMacH2);
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string("10.0.0.1");
  ip.dst = net::ipv4_from_string("10.0.0.2");
  net::UdpHeader udp;
  udp.src_port = 1111;
  udp.dst_port = dport;
  return net::make_ipv4_udp(eth, ip, udp, 16);
}

struct Injection {
  std::uint16_t port;
  net::Packet packet;
};

struct TracedRun {
  std::string native_view;   // decoded native trace, emulated view
  std::string persona_view;  // decoded persona trace, emulated view
  std::string divergence;    // "" when the views agree
};

// Run the program natively and emulated with tracers attached, decode
// both traces into the emulated vocabulary.
TracedRun run_traced(const p4::Program& prog, const std::vector<Rule>& rules,
                     const std::vector<std::uint16_t>& ports,
                     const std::vector<Injection>& packets) {
  bm::Switch native(prog);
  hp4::Controller ctl;
  const hp4::VdevId vdev = ctl.load(prog.name, prog);
  ctl.attach_ports(vdev, ports);
  for (auto p : ports) ctl.bind(vdev, p);
  for (const auto& r : rules) {
    apps::apply_rule(native, r);
    ctl.add_rule(vdev,
                 hp4::VirtualRule{r.table, r.action, r.keys, r.args,
                                  r.priority});
  }

  obs::TracerOptions topts;  // events on, timestamps off: deterministic
  obs::PipelineTracer native_tr(topts);
  obs::PipelineTracer persona_tr(topts);
  native.set_tracer(&native_tr);
  ctl.dataplane().set_tracer(&persona_tr);
  for (const auto& in : packets) {
    native.inject(in.port, in.packet);
    ctl.dataplane().inject(in.port, in.packet);
  }

  const hp4::DecodedTrace dn = hp4::decode_native_trace(native_tr);
  const hp4::TraceDecoder decoder(ctl.dpmu());
  const hp4::DecodedTrace dp = decoder.decode(persona_tr);
  return TracedRun{dn.serialize(false), dp.serialize(false),
                   hp4::first_divergence_report(dn, dp)};
}

std::string golden_path(const std::string& app) {
  return std::string(HP4_SOURCE_DIR) + "/tests/fixtures/golden/" + app +
         ".trace";
}

// One fixture per app holding both decoded views.
std::string fixture_body(const TracedRun& run) {
  return "== native ==\n" + run.native_view + "== persona ==\n" +
         run.persona_view;
}

void expect_golden(const std::string& app, const TracedRun& run) {
  EXPECT_EQ(run.divergence, "") << app << ": backends diverged";
  const std::string got = fixture_body(run);
  const std::string path = golden_path(app);
  if (std::getenv("HP4_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << got;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden fixture " << path
                  << "; regenerate with HP4_UPDATE_GOLDEN=1";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(want.str(), got)
      << app << ": decoded trace drifted from the golden fixture. If the "
      << "change is intentional, rerun with HP4_UPDATE_GOLDEN=1 and review "
      << "the fixture diff.";
}

TEST(GoldenTrace, L2Switch) {
  const std::vector<Rule> rules = {apps::l2_forward(kMacH1, 1),
                                   apps::l2_forward(kMacH2, 2),
                                   apps::l2_forward(kMacH3, 3)};
  const std::vector<Injection> packets = {
      {1, tcp_packet(kMacH1, kMacH2, "10.0.0.1", "10.0.0.2", 80)},
      {2, tcp_packet(kMacH2, kMacH3, "10.0.0.2", "10.0.0.3", 443)},
      {1, tcp_packet(kMacH1, "02:00:00:00:00:99", "10.0.0.1", "10.0.0.2",
                     80)},  // unknown dmac: drop
  };
  expect_golden("l2_switch", run_traced(apps::l2_switch(), rules, {1, 2, 3},
                                        packets));
}

TEST(GoldenTrace, Ipv4Router) {
  const std::vector<Rule> rules = {
      apps::router_accept_mac(kMacRtr),
      apps::router_route("10.0.1.0", 24, "10.0.1.10", 2),
      apps::router_route("10.0.0.0", 16, "10.0.99.1", 3),
      apps::router_arp_entry("10.0.1.10", kMacH2),
      apps::router_arp_entry("10.0.99.1", kMacH3),
      apps::router_port_mac(2, kMacRtr),
      apps::router_port_mac(3, kMacRtr),
  };
  const std::vector<Injection> packets = {
      {1, tcp_packet(kMacH1, kMacRtr, "10.0.0.1", "10.0.1.5", 80)},   // /24
      {1, tcp_packet(kMacH1, kMacRtr, "10.0.0.1", "10.0.55.9", 80)},  // /16
      {1, tcp_packet(kMacH1, kMacH2, "10.0.0.1", "10.0.1.5",
                     80)},  // wrong dmac: drop at dmac_check
  };
  expect_golden("ipv4_router", run_traced(apps::ipv4_router(), rules,
                                          {1, 2, 3}, packets));
}

TEST(GoldenTrace, ArpProxy) {
  const std::vector<Rule> rules = {
      apps::arp_proxy_entry("10.0.0.2", kMacH2),
      apps::arp_proxy_entry("10.0.0.3", kMacH3),
      apps::arp_proxy_l2_forward(kMacH1, 1),
      apps::arp_proxy_l2_forward(kMacH2, 2),
      apps::arp_proxy_l2_forward(kMacH3, 3),
  };
  const std::vector<Injection> packets = {
      {1, net::make_arp_request(net::mac_from_string(kMacH1),
                                net::ipv4_from_string("10.0.0.1"),
                                net::ipv4_from_string("10.0.0.2"))},
      {1, tcp_packet(kMacH1, kMacH2, "10.0.0.1", "10.0.0.2", 80)},
  };
  expect_golden("arp_proxy", run_traced(apps::arp_proxy(), rules, {1, 2, 3},
                                        packets));
}

TEST(GoldenTrace, Firewall) {
  const std::vector<Rule> rules = {
      apps::firewall_l2_forward(kMacH1, 1),
      apps::firewall_l2_forward(kMacH2, 2),
      apps::firewall_block_tcp_dport(22, 10),
      apps::firewall_block_udp_dport(53, 10),
      apps::firewall_block_ip("10.6.6.6", "255.255.255.255", "0.0.0.0",
                              "0.0.0.0", 20),
  };
  const std::vector<Injection> packets = {
      {1, tcp_packet(kMacH1, kMacH2, "10.0.0.1", "10.0.0.2", 80)},  // pass
      {1, tcp_packet(kMacH1, kMacH2, "10.0.0.1", "10.0.0.2", 22)},  // block
      {1, udp_packet(53)},                                          // block
      {1, tcp_packet(kMacH1, kMacH2, "10.6.6.6", "10.0.0.2", 80)},  // src ip
  };
  expect_golden("firewall", run_traced(apps::firewall(), rules, {1, 2},
                                       packets));
}

}  // namespace
}  // namespace hyper4
