// Crash recovery: truncation at arbitrary byte offsets, CRC and digest
// corruption, mid-transaction crashes, and checkpoint fallback. These
// tests perform frame surgery on the on-disk journal, so they pin the
// wire layout: 16-byte segment header, then frames of
// u32 len + u32 crc + payload, payload = u64 lsn + u8 type +
// u8 has_digest + u64 digest + body.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>

#include "apps/apps.h"
#include "state/digest.h"
#include "state/journal.h"
#include "state/store.h"
#include "state/wire.h"
#include "util/error.h"

namespace hyper4::state {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kSegHdr = 16;
constexpr std::size_t kFrameHdr = 8;

hp4::VirtualRule vr(const apps::Rule& r) {
  return hp4::VirtualRule{r.table, r.action, r.keys, r.args, r.priority};
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  char buf[1 << 14];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

struct FrameLoc {
  std::size_t pos = 0;  // frame start (the u32 len field)
  std::uint32_t len = 0;
  std::uint64_t lsn = 0;
  std::uint8_t type = 0;
  bool has_digest = false;
};

// Walk a segment's frames without CRC checking (the tests corrupt CRCs).
std::vector<FrameLoc> frames(const std::string& bytes) {
  std::vector<FrameLoc> out;
  std::size_t pos = kSegHdr;
  while (pos + kFrameHdr <= bytes.size()) {
    Reader hdr(std::string_view(bytes).substr(pos, kFrameHdr));
    const std::uint32_t len = hdr.u32();
    if (len < 18 || pos + kFrameHdr + len > bytes.size()) break;
    Reader p(std::string_view(bytes).substr(pos + kFrameHdr, 18));
    FrameLoc fl;
    fl.pos = pos;
    fl.len = len;
    fl.lsn = p.u64();
    fl.type = p.u8();
    fl.has_digest = p.u8() != 0;
    out.push_back(fl);
    pos += kFrameHdr + len;
  }
  return out;
}

// Recompute and patch the CRC of the frame at `fl` (after body surgery).
void refresh_crc(std::string* bytes, const FrameLoc& fl) {
  const std::string_view payload =
      std::string_view(*bytes).substr(fl.pos + kFrameHdr, fl.len);
  Writer w;
  w.u32(crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(payload.data()), payload.size())));
  bytes->replace(fl.pos + 4, 4, w.take());
}

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() {
    dir_ = (fs::temp_directory_path() /
            ("hp4_recovery_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  ~RecoveryTest() override { fs::remove_all(dir_); }

  // One journal segment (no rotation, no fsync markers), a digest on
  // every record so recovery verifies continuously.
  StoreOptions opts() const {
    StoreOptions o;
    o.digest_every = 1;
    o.fsync_every = 0;
    return o;
  }

  // Run the canonical script, recording the store digest after every op
  // keyed by that op's LSN. Returns the single segment's path.
  std::string run_script(std::map<std::uint64_t, std::uint64_t>* digest_at) {
    DurableController st(dir_, {}, opts());
    (*digest_at)[0] = st.digest();
    const hp4::VdevId id = st.load("l2", apps::l2_switch());
    (*digest_at)[st.last_lsn()] = st.digest();
    st.attach_ports(id, {1, 2});
    (*digest_at)[st.last_lsn()] = st.digest();
    st.bind(id);
    (*digest_at)[st.last_lsn()] = st.digest();
    for (int i = 1; i <= 4; ++i) {
      st.add_rule(id, vr(apps::l2_forward(
                             "02:00:00:00:00:0" + std::to_string(i), 1)));
      (*digest_at)[st.last_lsn()] = st.digest();
    }
    const auto segs = Journal::segment_files(dir_);
    EXPECT_EQ(segs.size(), 1u);
    return segs[0];
  }

  std::string dir_;
};

TEST_F(RecoveryTest, TruncationAtEveryFrameBoundaryRecoversThePrefix) {
  std::map<std::uint64_t, std::uint64_t> digest_at;
  const std::string seg = run_script(&digest_at);
  const std::string bytes = read_file(seg);
  const auto fls = frames(bytes);
  ASSERT_GE(fls.size(), 7u);

  // Chop mid-frame at each boundary+3: every cut must land exactly on the
  // state as of the previous record. Iterate high-to-low so each recovery's
  // in-place truncation of the torn suffix doesn't hide later cut points.
  for (std::size_t i = fls.size(); i-- > 0;) {
    fs::resize_file(seg, fls[i].pos + 3);
    DurableController st(dir_, {}, opts());
    const std::uint64_t lsn = st.last_lsn();
    ASSERT_TRUE(digest_at.count(lsn)) << "no digest recorded for lsn " << lsn;
    EXPECT_EQ(st.digest(), digest_at[lsn]) << "cut inside frame " << i;
    EXPECT_TRUE(st.recovery().digest_ok);
    EXPECT_GT(st.recovery().dropped_bytes, 0u);
  }
}

TEST_F(RecoveryTest, FlippedCrcByteRecoversToTheRecordBefore) {
  std::map<std::uint64_t, std::uint64_t> digest_at;
  const std::string seg = run_script(&digest_at);
  std::string bytes = read_file(seg);
  const auto fls = frames(bytes);
  ASSERT_GE(fls.size(), 4u);
  const FrameLoc& victim = fls[3];
  bytes[victim.pos + kFrameHdr + victim.len - 1] ^= 0x5a;  // last body byte
  write_file(seg, bytes);

  DurableController st(dir_, {}, opts());
  EXPECT_EQ(st.last_lsn(), victim.lsn - 1);
  EXPECT_EQ(st.digest(), digest_at[victim.lsn - 1]);
  EXPECT_TRUE(st.recovery().digest_ok);
  EXPECT_GT(st.recovery().dropped_bytes, 0u);
  EXPECT_FALSE(st.recovery().warnings.empty());
}

TEST_F(RecoveryTest, StoredDigestMismatchStopsReplayAndReports) {
  std::map<std::uint64_t, std::uint64_t> digest_at;
  const std::string seg = run_script(&digest_at);
  std::string bytes = read_file(seg);
  const auto fls = frames(bytes);
  ASSERT_GE(fls.size(), 4u);
  // Corrupt the embedded pre-apply digest of frame 3 and re-seal the CRC,
  // so the frame is wire-valid but semantically wrong — only the digest
  // verification can catch it.
  const FrameLoc& victim = fls[3];
  ASSERT_TRUE(victim.has_digest);
  bytes[victim.pos + kFrameHdr + 10] ^= 0xff;
  refresh_crc(&bytes, victim);
  write_file(seg, bytes);

  DurableController st(dir_, {}, opts());
  EXPECT_FALSE(st.recovery().digest_ok);
  // Replay stopped right before the poisoned record.
  EXPECT_EQ(st.digest(), digest_at[victim.lsn - 1]);
  EXPECT_FALSE(st.recovery().warnings.empty());
}

TEST_F(RecoveryTest, MidTransactionCrashIsAllOrNothing) {
  std::uint64_t pre_txn = 0;
  std::size_t commit_frame_pos = 0;
  {
    DurableController st(dir_, {}, opts());
    const hp4::VdevId id = st.load("l2", apps::l2_switch());
    st.attach_ports(id, {1, 2});
    st.bind(id);
    st.add_rule(id, vr(apps::l2_forward("02:00:00:00:00:01", 1)));
    pre_txn = st.digest();

    st.txn_begin();
    st.add_rule(id, vr(apps::l2_forward("02:00:00:00:00:02", 2)));
    st.add_rule(id, vr(apps::l2_forward("02:00:00:00:00:03", 2)));
    st.txn_commit();
    EXPECT_NE(st.digest(), pre_txn);
  }
  const auto segs = Journal::segment_files(dir_);
  ASSERT_EQ(segs.size(), 1u);
  const std::string bytes = read_file(segs[0]);
  for (const auto& fl : frames(bytes))
    if (fl.type == static_cast<std::uint8_t>(RecordType::kTxn))
      commit_frame_pos = fl.pos;
  ASSERT_GT(commit_frame_pos, 0u);

  // The crash lands inside the commit record: the transaction must vanish
  // entirely, not partially.
  fs::resize_file(segs[0], commit_frame_pos + kFrameHdr + 5);
  DurableController st(dir_, {}, opts());
  EXPECT_EQ(st.digest(), pre_txn);
  EXPECT_TRUE(st.recovery().digest_ok);
}

TEST_F(RecoveryTest, CommittedTransactionSurvivesCrashAfterCommit) {
  std::uint64_t post_txn = 0;
  {
    DurableController st(dir_, {}, opts());
    const hp4::VdevId id = st.load("l2", apps::l2_switch());
    st.attach_ports(id, {1, 2});
    st.bind(id);
    st.txn_begin();
    st.add_rule(id, vr(apps::l2_forward("02:00:00:00:00:02", 2)));
    st.add_rule(id, vr(apps::l2_forward("02:00:00:00:00:03", 2)));
    st.txn_commit();
    post_txn = st.digest();
  }
  DurableController st(dir_, {}, opts());
  EXPECT_EQ(st.digest(), post_txn);
  EXPECT_TRUE(st.recovery().digest_ok);
}

TEST_F(RecoveryTest, CorruptNewestCheckpointFallsBackToTheOlderImage) {
  std::uint64_t live = 0;
  {
    DurableController st(dir_, {}, opts());
    const hp4::VdevId id = st.load("l2", apps::l2_switch());
    st.attach_ports(id, {1, 2});
    st.bind(id);
    st.add_rule(id, vr(apps::l2_forward("02:00:00:00:00:01", 1)));
    st.checkpoint();
    st.add_rule(id, vr(apps::l2_forward("02:00:00:00:00:02", 2)));
    st.checkpoint();
    st.add_rule(id, vr(apps::l2_forward("02:00:00:00:00:03", 2)));
    live = st.digest();
  }
  auto cks = DurableController::checkpoint_files(dir_);
  ASSERT_EQ(cks.size(), 2u);
  std::string bytes = read_file(cks[0]);  // newest first
  bytes[bytes.size() / 2] ^= 0xff;
  write_file(cks[0], bytes);

  // The older image plus the journal gap (which checkpoint() deliberately
  // retains — truncation only reaches the OLDEST kept image) must rebuild
  // the exact pre-crash state.
  DurableController st(dir_, {}, opts());
  EXPECT_TRUE(st.recovery().checkpoint_loaded);
  EXPECT_EQ(st.recovery().checkpoint_file, cks[1]);
  EXPECT_EQ(st.digest(), live);
  EXPECT_TRUE(st.recovery().digest_ok);
  EXPECT_FALSE(st.recovery().warnings.empty());
}

TEST_F(RecoveryTest, BothCheckpointsCorruptFallsBackToFullReplay) {
  std::uint64_t live = 0;
  {
    DurableController st(dir_, {}, opts());
    const hp4::VdevId id = st.load("l2", apps::l2_switch());
    st.attach_ports(id, {1, 2});
    st.bind(id);
    st.checkpoint();
    st.add_rule(id, vr(apps::l2_forward("02:00:00:00:00:01", 1)));
    st.checkpoint();
    live = st.digest();
  }
  for (const auto& ck : DurableController::checkpoint_files(dir_)) {
    std::string bytes = read_file(ck);
    bytes[bytes.size() / 2] ^= 0xff;
    write_file(ck, bytes);
  }
  // With no usable image the journal alone cannot rebuild: the first
  // checkpoint already truncated the early records. The embedded pre-apply
  // digest on the first surviving record must catch the gap rather than
  // letting replay run against the wrong base state.
  DurableController st(dir_, {}, opts());
  EXPECT_FALSE(st.recovery().checkpoint_loaded);
  EXPECT_GE(st.recovery().warnings.size(), 2u);  // one per rejected image
  EXPECT_FALSE(st.recovery().digest_ok);
  EXPECT_EQ(st.recovery().replayed, 0u);
  EXPECT_NE(st.digest(), live);
}

}  // namespace
}  // namespace hyper4::state
