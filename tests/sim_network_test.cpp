// Network simulator: topology walking, cost model, traffic generators and
// the Table 5 scenarios (native vs HyPer4 shape checks).
#include "sim/network.h"

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "engine/engine.h"
#include "sim/scenarios.h"
#include "sim/traffic.h"
#include "util/error.h"

namespace hyper4::sim {
namespace {

const char* kMacH1 = "02:00:00:00:00:01";
const char* kMacH2 = "02:00:00:00:00:02";

net::Packet tcp_packet(const char* dmac = kMacH2, std::size_t payload = 64) {
  net::EthHeader eth;
  eth.src = net::mac_from_string(kMacH1);
  eth.dst = net::mac_from_string(dmac);
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string("10.0.0.1");
  ip.dst = net::ipv4_from_string("10.0.1.2");
  net::TcpHeader tcp;
  tcp.dst_port = 5001;
  return net::make_ipv4_tcp(eth, ip, tcp, payload);
}

TEST(CostModel, PricesTraceComponents) {
  CostModel cm;
  bm::ProcessResult r;
  r.applied.resize(4);
  r.resubmits = 1;
  r.recirculations = 2;
  EXPECT_DOUBLE_EQ(cm.work_us(r), cm.fixed_us + 4 * cm.per_match_us +
                                      cm.per_resubmit_us +
                                      2 * cm.per_recirculate_us);
}

TEST(Network, SingleSwitchDelivery) {
  bm::Switch sw(apps::l2_switch());
  apps::apply_rules(sw, {apps::l2_forward(kMacH1, 1), apps::l2_forward(kMacH2, 2)});
  Network net;
  net.add_switch("s1", sw);
  net.add_host("h1", "s1", 1);
  net.add_host("h2", "s1", 2);

  auto deliveries = net.send("h1", tcp_packet());
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].host, "h2");
  EXPECT_EQ(deliveries[0].switch_hops, 1u);
  // 2 matches + fixed + 2 link traversals.
  const auto& cm = net.cost_model();
  EXPECT_DOUBLE_EQ(deliveries[0].latency_us,
                   cm.fixed_us + 2 * cm.per_match_us + 2 * cm.link_us);
  EXPECT_GT(net.busy_us("s1"), 0.0);
}

TEST(Network, SendManyMatchesSendWithAndWithoutEngine) {
  bm::Switch sw(apps::l2_switch());
  apps::apply_rules(
      sw, {apps::l2_forward(kMacH1, 1), apps::l2_forward(kMacH2, 2)});
  Network net;
  net.add_switch("s1", sw);
  net.add_host("h1", "s1", 1);
  net.add_host("h2", "s1", 2);

  std::vector<net::Packet> packets;
  for (std::size_t i = 0; i < 8; ++i)
    packets.push_back(tcp_packet(i % 2 ? kMacH1 : kMacH2));

  // Reference: the plain per-packet path.
  const auto plain = net.send_many("h1", packets);
  const double plain_busy = net.busy_us("s1");
  net.reset_busy();

  // Engine-backed: single-switch topology qualifies for the batch path.
  engine::EngineOptions opts;
  opts.workers = 2;
  engine::TrafficEngine eng(apps::l2_switch(), opts);
  eng.sync_from(sw);
  const auto batched = net.send_many("h1", packets, &eng);

  ASSERT_EQ(plain.size(), packets.size());
  ASSERT_EQ(batched.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    ASSERT_EQ(plain[i].size(), batched[i].size()) << i;
    for (std::size_t j = 0; j < plain[i].size(); ++j) {
      EXPECT_EQ(plain[i][j].host, batched[i][j].host);
      EXPECT_EQ(plain[i][j].packet, batched[i][j].packet);
      EXPECT_DOUBLE_EQ(plain[i][j].latency_us, batched[i][j].latency_us);
    }
  }
  // Cost-model accounting is identical too.
  EXPECT_DOUBLE_EQ(net.busy_us("s1"), plain_busy);
}

TEST(Network, MultiHopAccumulatesLatency) {
  bm::Switch s1(apps::l2_switch()), s2(apps::l2_switch());
  for (auto* sw : {&s1, &s2}) {
    apps::apply_rules(*sw, {apps::l2_forward(kMacH1, 1), apps::l2_forward(kMacH2, 2)});
  }
  Network net;
  net.add_switch("s1", s1);
  net.add_switch("s2", s2);
  net.add_host("h1", "s1", 1);
  net.link("s1", 2, "s2", 1);
  net.add_host("h2", "s2", 2);
  auto d = net.send("h1", tcp_packet());
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].switch_hops, 2u);
  const auto& cm = net.cost_model();
  EXPECT_DOUBLE_EQ(d[0].latency_us,
                   2 * (cm.fixed_us + 2 * cm.per_match_us) + 3 * cm.link_us);
}

TEST(Network, DroppedPacketsYieldNoDelivery) {
  bm::Switch sw(apps::l2_switch());
  Network net;
  net.add_switch("s1", sw);
  net.add_host("h1", "s1", 1);
  net.add_host("h2", "s1", 2);
  EXPECT_TRUE(net.send("h1", tcp_packet()).empty());  // no entries → drop
}

TEST(Network, UnwiredPortSwallowsPacket) {
  bm::Switch sw(apps::l2_switch());
  apps::apply_rules(sw, {apps::l2_forward(kMacH2, 5)});  // port 5 not wired
  Network net;
  net.add_switch("s1", sw);
  net.add_host("h1", "s1", 1);
  EXPECT_TRUE(net.send("h1", tcp_packet()).empty());
}

TEST(Network, ValidationErrors) {
  bm::Switch sw(apps::l2_switch());
  Network net;
  net.add_switch("s1", sw);
  EXPECT_THROW(net.add_switch("s1", sw), util::ConfigError);
  EXPECT_THROW(net.add_host("h1", "nope", 1), util::ConfigError);
  EXPECT_THROW(net.link("s1", 1, "nope", 1), util::ConfigError);
  EXPECT_THROW(net.send("ghost", tcp_packet()), util::ConfigError);
  EXPECT_THROW(net.busy_us("nope"), util::ConfigError);
}

TEST(Traffic, IcmpReplySwapsAddressing) {
  net::EthHeader eth;
  eth.src = net::mac_from_string(kMacH1);
  eth.dst = net::mac_from_string(kMacH2);
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string("10.0.0.1");
  ip.dst = net::ipv4_from_string("10.0.1.2");
  net::IcmpHeader icmp;
  icmp.identifier = 3;
  icmp.sequence = 9;
  auto req = net::make_ipv4_icmp_echo(eth, ip, icmp, 56);
  auto reply = make_icmp_reply_from(req);
  auto reth = net::read_eth(reply);
  EXPECT_EQ(net::mac_to_string(reth->dst), kMacH1);
  EXPECT_EQ(net::mac_to_string(reth->src), kMacH2);
  auto rip = net::read_ipv4(reply);
  EXPECT_EQ(rip->dst, net::ipv4_from_string("10.0.0.1"));
  EXPECT_EQ(reply.size(), req.size());
}

TEST(Traffic, MeanStddev) {
  auto s = mean_stddev({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);
  EXPECT_DOUBLE_EQ(mean_stddev({}).mean, 0.0);
}

// ---------------------------------------------------------------------------
// Scenario-level behaviour

class ScenarioParam
    : public ::testing::TestWithParam<std::tuple<const char*, bool>> {};

TEST_P(ScenarioParam, TrafficFlowsEndToEnd) {
  auto [kind, hyper4] = GetParam();
  auto sc = Scenario::make(kind, hyper4);
  auto iperf = sc->iperf(20);
  EXPECT_EQ(iperf.data_delivered, 20u) << sc->name();
  EXPECT_EQ(iperf.acks_delivered, 20u) << sc->name();
  EXPECT_GT(iperf.mbps, 0.0) << sc->name();
  auto ping = sc->ping_flood(20);
  EXPECT_EQ(ping.replied, 20u) << sc->name();
  EXPECT_GT(ping.avg_rtt_us, 0.0) << sc->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, ScenarioParam,
    ::testing::Combine(::testing::Values("l2_sw", "firewall", "ex1b", "ex1c"),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_hp4" : "_native");
    });

TEST(ScenarioShape, Hyper4IncursThePaperBandwidthPenalty) {
  // Table 5 shape: hp4 bandwidth is a small fraction of native (83–89%
  // penalty in the paper); hp4 latency is several times native.
  for (const char* kind : {"l2_sw", "firewall", "ex1b", "ex1c"}) {
    auto native = Scenario::make(kind, false);
    auto hp4 = Scenario::make(kind, true);
    const double native_mbps = native->iperf(50).mbps;
    const double hp4_mbps = hp4->iperf(50).mbps;
    EXPECT_GT(native_mbps, 2.0 * hp4_mbps) << kind;
    const double native_ms = native->ping_flood(50).total_ms;
    const double hp4_ms = hp4->ping_flood(50).total_ms;
    EXPECT_GT(hp4_ms, 1.5 * native_ms) << kind;
  }
}

TEST(ScenarioShape, PayloadIdenticalThroughEmulation) {
  auto native = Scenario::make("ex1c", false);
  auto hp4 = Scenario::make("ex1c", true);
  auto pkt = native->flow().make_data(1);
  auto dn = native->network().send("h1", pkt);
  auto dh = hp4->network().send("h1", pkt);
  ASSERT_EQ(dn.size(), 1u);
  ASSERT_EQ(dh.size(), 1u);
  EXPECT_EQ(dn[0].packet, dh[0].packet);  // TTL, MACs, checksum all agree
  EXPECT_EQ(dn[0].host, "h2");
  EXPECT_EQ(dh[0].host, "h2");
}

TEST(ScenarioShape, FirewallResubmitVisibleInTrace) {
  auto hp4 = Scenario::make("firewall", true);
  auto res = hp4->probe_tcp();
  EXPECT_EQ(res.resubmits, 1u);
  auto native = Scenario::make("firewall", false);
  EXPECT_EQ(native->probe_tcp().resubmits, 0u);
}

TEST(ScenarioShape, JitterProducesVariance) {
  auto sc = Scenario::make("l2_sw", false);
  util::Rng rng(99);
  std::vector<double> runs;
  for (int i = 0; i < 10; ++i) runs.push_back(sc->iperf(30, &rng).mbps);
  auto s = mean_stddev(runs);
  EXPECT_GT(s.stddev, 0.0);
  EXPECT_LT(s.stddev, 0.1 * s.mean);
}

}  // namespace
}  // namespace hyper4::sim
