// The differential oracle end to end: generated cases are equivalent
// across all three backends; a planted divergence is caught, shrinks to a
// minimal case, survives serialization, and replays clean without the
// plant (the property the committed regression fixture relies on).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "check/diff_runner.h"
#include "check/program_gen.h"
#include "check/reducer.h"
#include "check/repro.h"
#include "util/rng.h"

namespace hyper4::check {
namespace {

const std::uint64_t kBase = util::env_seed(1);

TEST(CheckDiff, GeneratedCasesAreEquivalent) {
  const ProgramGen gen;
  const DiffRunner runner;
  for (std::uint64_t s = 0; s < 60; ++s) {
    const GenCase c = gen.generate(kBase + s);
    const DiffReport rep = runner.run(c);
    EXPECT_TRUE(rep.equivalent)
        << "seed " << (kBase + s) << ": " << rep.str();
  }
}

TEST(CheckDiff, StatefulCasesAreEquivalentNativeVsEngine) {
  GenLimits lim;
  lim.allow_stateful = true;
  const ProgramGen gen(lim);
  const DiffRunner runner;
  std::size_t stateful_seen = 0;
  for (std::uint64_t s = 0; s < 40; ++s) {
    const GenCase c = gen.generate(kBase + 1000 + s);
    if (c.stateful) ++stateful_seen;
    const DiffReport rep = runner.run(c);
    EXPECT_TRUE(rep.equivalent)
        << "seed " << (kBase + 1000 + s) << ": " << rep.str();
  }
  EXPECT_GT(stateful_seen, 0u) << "seed base " << kBase;
}

TEST(CheckDiff, WorkerCountDoesNotChangeResults) {
  const ProgramGen gen;
  for (std::size_t workers : {1, 2, 8}) {
    DiffOptions opts;
    opts.engine_workers = workers;
    const DiffRunner runner(opts);
    for (std::uint64_t s = 0; s < 15; ++s) {
      const DiffReport rep = runner.run(gen.generate(kBase + s));
      EXPECT_TRUE(rep.equivalent) << "workers=" << workers << " seed "
                                  << (kBase + s) << ": " << rep.str();
    }
  }
}

// Find a seed whose case the given mutation makes diverge. The oracle must
// be able to catch a plant — otherwise "equivalent" reports mean nothing.
std::uint64_t find_divergent_seed(const ProgramGen& gen,
                                  const DiffRunner& mutated) {
  for (std::uint64_t s = 0; s < 200; ++s) {
    if (!mutated.run(gen.generate(kBase + s)).equivalent) return kBase + s;
  }
  ADD_FAILURE() << "no divergence in 200 seeds (base " << kBase
                << ") — mutation is not being injected";
  return 0;
}

void mutation_roundtrip(Mutation mutation) {
  const ProgramGen gen;
  DiffOptions mopts;
  mopts.mutation = mutation;
  const DiffRunner mutated(mopts);
  const DiffRunner clean;

  const std::uint64_t seed = find_divergent_seed(gen, mutated);
  ASSERT_NE(seed, 0u);
  const GenCase c = gen.generate(seed);
  const DiffReport rep = mutated.run(c);
  ASSERT_FALSE(rep.equivalent);
  ASSERT_TRUE(rep.divergence.has_value());

  // Shrink, pinned to the original signature and to "clean without plant".
  const Divergence want = *rep.divergence;
  ReduceStats stats;
  const GenCase minimal = reduce(
      c,
      [&](const GenCase& cand) {
        const DiffReport r = mutated.run(cand);
        return !r.equivalent && r.divergence && r.divergence->kind == want.kind &&
               r.divergence->lhs == want.lhs && r.divergence->rhs == want.rhs &&
               clean.run(cand).equivalent;
      },
      &stats);
  EXPECT_GT(stats.attempts, 0u);
  EXPECT_LE(minimal.packets.size(), c.packets.size());
  EXPECT_FALSE(mutated.run(minimal).equivalent) << "seed " << seed;
  EXPECT_TRUE(clean.run(minimal).equivalent) << "seed " << seed;

  // Serialize and re-load: the round-tripped case behaves identically.
  const std::string p4 = testing::TempDir() + "check_diff_repro.p4";
  const std::string cmds = testing::TempDir() + "check_diff_repro.cmds";
  write_repro(minimal, p4, cmds);
  const GenCase back = load_repro(p4, cmds);
  EXPECT_EQ(back.seed, minimal.seed);
  EXPECT_EQ(back.packets.size(), minimal.packets.size());
  EXPECT_FALSE(mutated.run(back).equivalent) << "seed " << seed;
  EXPECT_TRUE(clean.run(back).equivalent) << "seed " << seed;
  std::remove(p4.c_str());
  std::remove(cmds.c_str());
}

TEST(CheckDiff, CatchesPlantedPersonaRuleDrop) {
  mutation_roundtrip(Mutation::kDropPersonaRule);
}

TEST(CheckDiff, CatchesPlantedEngineByteCorruption) {
  mutation_roundtrip(Mutation::kCorruptEngineByte);
}

}  // namespace
}  // namespace hyper4::check
