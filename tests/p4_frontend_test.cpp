// P4-14 front end: parse-error reporting, construct coverage, and the key
// property that a parsed program behaves identically to its builder-built
// counterpart on the switch.
#include "p4/frontend.h"

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "bm/cli.h"
#include "bm/switch.h"
#include "hp4/p4_emit.h"
#include "util/error.h"

namespace hyper4::p4 {
namespace {

using util::ParseError;

const char* kL2Source = R"(
// The paper's layer-2 switch, in P4-14.
header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}
header ethernet_t ethernet;

parser start {
    extract(ethernet);
    return ingress;
}

action nop() { no_op(); }
action forward(port) {
    modify_field(standard_metadata.egress_spec, port);
}
action _drop() { drop(); }

table smac {
    reads { ethernet.srcAddr : exact; }
    actions { nop; }
    default_action : nop;
}
table dmac {
    reads { ethernet.dstAddr : exact; }
    actions { forward; _drop; }
    default_action : _drop;
}

control ingress {
    apply(smac);
    apply(dmac);
}
)";

TEST(Frontend, ParsesL2Switch) {
  Program p = parse_p4(kL2Source, "l2_text");
  EXPECT_EQ(p.header_types.size(), 1u);
  EXPECT_EQ(p.instances.size(), 1u);
  EXPECT_EQ(p.tables.size(), 2u);
  EXPECT_EQ(p.actions.size(), 3u);
  EXPECT_EQ(p.ingress.nodes.size(), 2u);
  EXPECT_EQ(p.deparse_order, std::vector<std::string>{"ethernet"});
}

TEST(Frontend, ParsedProgramBehavesLikeBuilderProgram) {
  bm::Switch from_text(parse_p4(kL2Source, "l2_text"));
  bm::Switch from_builder(apps::l2_switch());
  for (auto* sw : {&from_text, &from_builder}) {
    bm::run_cli_command(*sw, "table_add dmac forward 02:00:00:00:00:02 => 2");
  }
  net::EthHeader eth;
  eth.src = net::mac_from_string("02:00:00:00:00:01");
  eth.dst = net::mac_from_string("02:00:00:00:00:02");
  auto pkt = net::make_ipv4_tcp(eth, net::Ipv4Header{}, net::TcpHeader{}, 32);
  auto a = from_text.inject(1, pkt);
  auto b = from_builder.inject(1, pkt);
  ASSERT_EQ(a.outputs.size(), 1u);
  ASSERT_EQ(b.outputs.size(), 1u);
  EXPECT_EQ(a.outputs[0].port, b.outputs[0].port);
  EXPECT_EQ(a.outputs[0].packet, b.outputs[0].packet);
  EXPECT_EQ(a.match_count(), b.match_count());
}

TEST(Frontend, EmitParseRoundTripForAllApps) {
  // emit_p4 output of every app parses back into a behaviourally usable
  // program with the same structure.
  for (auto& [name, prog] : apps::all_programs()) {
    const std::string src = hp4::emit_p4(prog);
    Program reparsed;
    ASSERT_NO_THROW(reparsed = parse_p4(src, name)) << name << "\n" << src;
    EXPECT_EQ(reparsed.tables.size(), prog.tables.size()) << name;
    EXPECT_EQ(reparsed.actions.size(), prog.actions.size()) << name;
    EXPECT_EQ(reparsed.parser_states.size(), prog.parser_states.size()) << name;
    EXPECT_EQ(reparsed.deparse_order, prog.deparse_order) << name;
    EXPECT_NO_THROW({ bm::Switch sw(reparsed); }) << name;
  }
}

TEST(Frontend, SelectWithMaskAndDefault) {
  const char* src = R"(
header_type h_t { fields { a : 8; } }
header h_t h;
header h_t h2;
parser start {
    extract(h);
    return select(h.a) {
        0x40 mask 0xf0 : more;
        0x01 : parse_drop;
        default : ingress;
    }
}
parser more { extract(h2); return ingress; }
action nop() { no_op(); }
table t { reads { h.a : exact; } actions { nop; } default_action : nop; }
control ingress { apply(t); }
)";
  Program p = parse_p4(src);
  bm::Switch sw(p);
  // 0x45 matches the masked case → h2 extracted too; with no egress_spec
  // set the packet leaves on port 0, byte-identical.
  auto m = sw.inject(0, net::Packet({0x45, 1, 2}));
  ASSERT_EQ(m.outputs.size(), 1u);
  EXPECT_EQ(m.outputs[0].packet, net::Packet({0x45, 1, 2}));
  auto r = sw.inject(0, net::Packet({0x33, 1, 2}));
  EXPECT_EQ(r.outputs.size(), 1u);  // default case, straight to ingress
  EXPECT_EQ(sw.inject(0, net::Packet({0x01, 1, 2})).drops, 1u);  // parse_drop
}

TEST(Frontend, ControlIfElse) {
  const char* src = R"(
header_type h_t { fields { a : 8; b : 8; } }
header h_t h;
parser start { extract(h); return ingress; }
action mark(v) { modify_field(h.b, v); }
action fwd() { modify_field(standard_metadata.egress_spec, 1); }
table t_hi { reads { h.a : exact; } actions { mark; } default_action : mark(1); }
table t_lo { reads { h.a : exact; } actions { mark; } default_action : mark(2); }
table send { reads { h.b : exact; } actions { fwd; } default_action : fwd; }
control ingress {
    if (h.a > 10) {
        apply(t_hi);
    } else {
        apply(t_lo);
    }
    apply(send);
}
)";
  bm::Switch sw(parse_p4(src));
  auto hi = sw.inject(0, net::Packet({20, 0}));
  ASSERT_EQ(hi.outputs.size(), 1u);
  EXPECT_EQ(hi.outputs[0].packet, net::Packet({20, 1}));
  auto lo = sw.inject(0, net::Packet({5, 0}));
  ASSERT_EQ(lo.outputs.size(), 1u);
  EXPECT_EQ(lo.outputs[0].packet, net::Packet({5, 2}));
}

TEST(Frontend, ChecksumDeclaration) {
  const char* src = R"(
header_type h_t { fields { data : 16; csum : 16; } }
header h_t h;
parser start { extract(h); return ingress; }
field_list cl { h.data; }
field_list_calculation my_csum {
    input { cl; }
    algorithm : csum16;
    output_width : 16;
}
calculated_field h.csum { update my_csum; }
action fwd() { modify_field(standard_metadata.egress_spec, 1); }
table t { reads { h.data : exact; } actions { fwd; } default_action : fwd; }
control ingress { apply(t); }
)";
  bm::Switch sw(parse_p4(src));
  auto r = sw.inject(0, net::Packet({0x12, 0x34, 0, 0}));
  ASSERT_EQ(r.outputs.size(), 1u);
  EXPECT_EQ(r.outputs[0].packet, net::Packet({0x12, 0x34, 0xed, 0xcb}));
}

TEST(Frontend, ReportsErrorsWithLineNumbers) {
  try {
    parse_p4("header_type t {\n  fields {\n    broken");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(Frontend, RejectsUnknownConstructs) {
  EXPECT_THROW(parse_p4("wibble x;"), ParseError);
  EXPECT_THROW(parse_p4("action a() { frobnicate(); }"), ParseError);
  EXPECT_THROW(parse_p4("table t { reads { x.y : fuzzy; } }"), ParseError);
  EXPECT_THROW(parse_p4("control main { }"), ParseError);
}

TEST(Frontend, RejectsSemanticErrors) {
  // Parses fine, fails validation: unknown header type.
  EXPECT_THROW(parse_p4("header nope_t h;"), util::ConfigError);
}


TEST(Frontend, ApplyHitMissClauses) {
  const char* src = R"(
header_type h_t { fields { a : 8; b : 8; } }
header h_t h;
parser start { extract(h); return ingress; }
action mark(v) { modify_field(h.b, v); }
action nop() { no_op(); }
action fwd() { modify_field(standard_metadata.egress_spec, 1); }
table probe { reads { h.a : exact; } actions { nop; } default_action : nop; }
table on_hit_t { reads { h.a : exact; } actions { mark; } default_action : mark(0xAA); }
table send { reads { h.b : exact; } actions { fwd; } default_action : fwd; }
control ingress {
    apply(probe) {
        hit { apply(on_hit_t); }
        miss { }
    }
    apply(send);
}
)";
  bm::Switch sw(parse_p4(src));
  bm::run_cli_command(sw, "table_add probe nop 1 =>");
  // Hit path: probe, on_hit_t, send = 3 stages; h.b stamped 0xAA.
  auto hit = sw.inject(0, net::Packet({1, 0}));
  ASSERT_EQ(hit.outputs.size(), 1u);
  EXPECT_EQ(hit.match_count(), 3u);
  EXPECT_EQ(hit.outputs[0].packet, net::Packet({1, 0xAA}));
  // Miss path: the empty miss clause falls through to send (2 stages).
  auto miss = sw.inject(0, net::Packet({2, 0}));
  ASSERT_EQ(miss.outputs.size(), 1u);
  EXPECT_EQ(miss.match_count(), 2u);
  EXPECT_EQ(miss.outputs[0].packet, net::Packet({2, 0}));
}

TEST(Frontend, ApplyClauseRejectsUnknownKeyword) {
  const char* src = R"(
header_type h_t { fields { a : 8; } }
header h_t h;
parser start { extract(h); return ingress; }
action nop() { no_op(); }
table t { reads { h.a : exact; } actions { nop; } default_action : nop; }
control ingress { apply(t) { sometimes { } } }
)";
  EXPECT_THROW(parse_p4(src), ParseError);
}

}  // namespace
}  // namespace hyper4::p4
