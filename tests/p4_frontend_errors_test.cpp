// Malformed P4-14 inputs must produce structured errors (ParseError /
// ConfigError / CommandError with a usable message), never crashes. The
// well-formed base program is the committed differential-repro fixture, so
// these paths are exercised with exactly the source shape the reducer
// serializes.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "bm/cli.h"
#include "bm/switch.h"
#include "p4/frontend.h"
#include "util/error.h"

namespace hyper4::p4 {
namespace {

std::string fixture_source() {
  std::ifstream in(std::string(HP4_SOURCE_DIR) +
                   "/tests/fixtures/check_repro_drop_rule.p4");
  EXPECT_TRUE(in.good());
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(FrontendErrors, FixtureParsesClean) {
  ASSERT_NO_THROW(parse_p4(fixture_source(), "fixture"));
}

TEST(FrontendErrors, TruncatedProgram) {
  const std::string src = fixture_source();
  // Cut the source at several points; every truncation must raise a
  // structured error or parse to a program that still validates — never
  // crash or hang.
  for (std::size_t cut : {std::size_t{10}, std::size_t{60}, std::size_t{200},
                          std::size_t{400}, src.size() - 30, src.size() - 2}) {
    SCOPED_TRACE("cut at " + std::to_string(cut));
    const std::string trunc = src.substr(0, cut);
    try {
      (void)parse_p4(trunc, "trunc");
    } catch (const util::Error& e) {
      EXPECT_STRNE(e.what(), "") << "empty error message";
    }
  }
}

TEST(FrontendErrors, TruncatedMidTableReportsLine) {
  const std::string src = fixture_source();
  const std::size_t reads_pos = src.find("reads {");
  ASSERT_NE(reads_pos, std::string::npos);
  try {
    (void)parse_p4(src.substr(0, reads_pos + 7), "trunc");
    FAIL() << "truncated table parsed";
  } catch (const util::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos)
        << e.what();
  }
}

TEST(FrontendErrors, DuplicateTableName) {
  std::string src = fixture_source();
  // Append a second definition of table t1 (same name, valid body).
  src +=
      "\ntable t1 {\n"
      "    reads { h0.f0 : exact; }\n"
      "    actions { a_drop; }\n"
      "    default_action : a_drop;\n"
      "}\n";
  try {
    (void)parse_p4(src, "dup");
    FAIL() << "duplicate table accepted";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("t1"), std::string::npos) << e.what();
  }
}

TEST(FrontendErrors, UnknownActionInTable) {
  std::string src = fixture_source();
  const std::size_t pos = src.find("act1;");
  ASSERT_NE(pos, std::string::npos);
  src.replace(pos, 5, "ghost;");
  EXPECT_THROW((void)parse_p4(src, "ghost"), util::Error);
}

TEST(FrontendErrors, UnknownActionInRuleIsCommandError) {
  const Program prog = parse_p4(fixture_source(), "fixture");
  bm::Switch sw(prog);
  const bm::CliResult r =
      bm::run_cli_command(sw, "table_add t1 ghost 0x5 => 1");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("ghost"), std::string::npos) << r.message;
  // The switch stays usable after the rejected command.
  EXPECT_TRUE(bm::run_cli_command(sw, "table_add t1 act2 0x5 => 1").ok);
}

TEST(FrontendErrors, UnknownTableInRuleIsCommandError) {
  const Program prog = parse_p4(fixture_source(), "fixture");
  bm::Switch sw(prog);
  const bm::CliResult r =
      bm::run_cli_command(sw, "table_add ghost act1 0x5 => 1");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("ghost"), std::string::npos) << r.message;
}

}  // namespace
}  // namespace hyper4::p4
