// Env-scaled fabric kill/recover soak: a 3-node line fabric under
// continuous control-plane churn and packet waves, with a follower
// crashed (alternating clean and torn-journal crashes) and restarted
// every cycle. Each cycle ends only when every replica has acked the
// leader tail with the leader's digest — a single divergence fails the
// run.
//
//   HP4_SOAK_SECONDS   duration (default 5; the CI smoke job sets 60,
//                      the nightly soak 600 via the `soak`-labeled
//                      fabric_soak_nightly ctest).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>

#include "apps/apps.h"
#include "bench/common.h"
#include "fabric/fabric.h"
#include "hp4/p4_emit.h"

namespace hyper4 {
namespace {

namespace fs = std::filesystem;

int soak_seconds() {
  if (const char* s = std::getenv("HP4_SOAK_SECONDS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return 5;
}

TEST(FabricSoak, KillRecoverLoop) {
  const std::string dir =
      (fs::temp_directory_path() / "hp4_fabric_soak").string();
  fs::remove_all(dir);

  fabric::FabricOptions fo;
  fo.store_dir = dir;
  fo.topology = fabric::FabricTopology::line(3);
  fo.quorum = 2;  // stay writable with one follower down
  fabric::FabricController ctl(fo);

  const auto vdev = ctl.load_source(
      "l2_sw", hp4::emit_p4(apps::program_by_name("l2_sw")));
  ctl.attach_ports(vdev, {1, 2});
  ctl.bind(vdev, 1);
  ctl.bind(vdev, 2);
  ctl.add_rule(vdev, bench::vr(apps::l2_forward(bench::kMacH1, 1)));
  ctl.add_rule(vdev, bench::vr(apps::l2_forward(bench::kMacH2, 2)));
  const net::Packet pkt = bench::worst_case_packet("l2_sw");

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(soak_seconds());
  std::uint64_t cycles = 0;
  std::uint64_t handle = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const std::size_t victim = 1 + cycles % 2;  // followers 1 and 2
    const bool tear = cycles % 4 == 3;          // torn-journal crash mix

    ctl.crash_node(victim, tear);

    // Keep the fabric busy while the victim is down: churn a rule and
    // push a wave at the survivors.
    if (handle) ctl.delete_rule(vdev, handle);
    handle = ctl.add_rule(
        vdev, bench::vr(apps::l2_forward(
                  "02:00:00:00:09:" + std::string(cycles % 100 < 10 ? "0" : "")
                      + std::to_string(cycles % 100),
                  static_cast<std::uint16_t>(1 + cycles % 2))));
    for (int k = 0; k < 8; ++k) {
      ctl.inject("h0a", pkt);
      ctl.inject(victim == 1 ? "h2a" : "h1a", pkt);
    }
    ctl.drain();

    ctl.restart_node(victim);
    const auto catchup = std::chrono::steady_clock::now() +
                         std::chrono::seconds(10);
    while (ctl.node_acked_lsn(victim) < ctl.leader().last_lsn() &&
           std::chrono::steady_clock::now() < catchup)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));

    const std::uint64_t want = ctl.leader_digest();
    for (std::size_t i = 0; i < 3; ++i) {
      ASSERT_EQ(ctl.leader().last_lsn(), ctl.node_acked_lsn(i))
          << "cycle " << cycles << " node " << i << " never caught up";
      ASSERT_EQ(want, ctl.node_acked_digest(i))
          << "cycle " << cycles << " node " << i << " diverged";
    }
    ++cycles;
  }
  ctl.take_deliveries();
  std::printf("fabric soak: %llu kill/recover cycles, leader lsn %llu\n",
              static_cast<unsigned long long>(cycles),
              static_cast<unsigned long long>(ctl.leader().last_lsn()));
  EXPECT_GT(cycles, 0u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace hyper4
