#include "util/strings.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace hyper4::util {
namespace {

TEST(Split, BasicWhitespace) {
  auto v = split("  a  bb\tccc ");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "bb");
  EXPECT_EQ(v[2], "ccc");
}

TEST(Split, EmptyInput) {
  EXPECT_TRUE(split("").empty());
  EXPECT_TRUE(split("   \t ").empty());
}

TEST(Split, CustomSeparators) {
  auto v = split("a:b::c", ":");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], "c");
}

TEST(SplitKeepEmpty, KeepsEmptyTokens) {
  auto v = split_keep_empty("a::b:", ':');
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "");
  EXPECT_EQ(v[2], "b");
  EXPECT_EQ(v[3], "");
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  x \r\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(ParseUint, Decimal) {
  EXPECT_EQ(parse_uint("0"), 0u);
  EXPECT_EQ(parse_uint("  42 "), 42u);
  EXPECT_EQ(parse_uint("18446744073709551615"), ~0ull);
}

TEST(ParseUint, Hex) {
  EXPECT_EQ(parse_uint("0x0"), 0u);
  EXPECT_EQ(parse_uint("0xDeadBeef"), 0xdeadbeefull);
}

TEST(ParseUint, Rejects) {
  EXPECT_THROW(parse_uint(""), ParseError);
  EXPECT_THROW(parse_uint("12a"), ParseError);
  EXPECT_THROW(parse_uint("0xgg"), ParseError);
  EXPECT_THROW(parse_uint("-1"), ParseError);
}

TEST(IsUint, Classification) {
  EXPECT_TRUE(is_uint("123"));
  EXPECT_TRUE(is_uint("0xff"));
  EXPECT_FALSE(is_uint("1.2"));
  EXPECT_FALSE(is_uint(""));
  EXPECT_FALSE(is_uint("abc"));
}

TEST(EditDistance, Basics) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", "abc"), 0u);
  EXPECT_EQ(edit_distance("", "abc"), 3u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(edit_distance("dmac", "dmca"), 2u);  // transposition = 2 units
  EXPECT_EQ(edit_distance("ipv4_lpn", "ipv4_lpm"), 1u);
}

TEST(NearestNames, FiltersToPlausibleTyposClosestFirst) {
  const std::vector<std::string> cands = {"dmac", "smac", "ipv4_lpm",
                                          "forward"};
  // One substitution away from both mac tables; closest-first with ties
  // broken lexicographically.
  EXPECT_EQ(nearest_names("dmak", cands),
            (std::vector<std::string>{"dmac", "smac"}));
  // Nothing within max(2, |name|/3) of a completely unrelated name.
  EXPECT_TRUE(nearest_names("xyzzy_quux", cands).empty());
  // max_results caps the list.
  EXPECT_EQ(nearest_names("dmak", cands, 1),
            (std::vector<std::string>{"dmac"}));
}

TEST(DidYouMean, RendersSuggestionClause) {
  const std::vector<std::string> cands = {"dmac", "smac"};
  EXPECT_EQ(did_you_mean("dmca", cands), "; did you mean 'dmac'?");
  EXPECT_EQ(did_you_mean("dmak", cands), "; did you mean 'dmac' or 'smac'?");
  EXPECT_EQ(did_you_mean("completely_else", cands), "");
}

}  // namespace
}  // namespace hyper4::util
