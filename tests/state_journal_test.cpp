// Wire-format and write-ahead-journal unit tests: framing round trips,
// segment rotation, and the corruption taxonomy the recovery scan must
// survive — torn trailing record, flipped CRC byte, duplicated-LSN
// segments — each recovering to the last valid prefix and reporting what
// was dropped.
#include "state/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "state/wire.h"
#include "util/bitvec.h"
#include "util/error.h"

namespace hyper4::state {
namespace {

namespace fs = std::filesystem;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class JournalTest : public ::testing::Test {
 protected:
  JournalTest() {
    dir_ = (fs::temp_directory_path() /
            ("hp4_journal_test_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "_" +
             ::testing::UnitTest::GetInstance()
                 ->current_test_info()
                 ->name()))
               .string();
    fs::remove_all(dir_);
  }
  ~JournalTest() override { fs::remove_all(dir_); }
  std::string dir_;
};

// --- wire ------------------------------------------------------------------

TEST(Wire, Crc32MatchesZlibCheckValue) {
  // The standard CRC-32/ISO-HDLC check value.
  EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(std::string("")), 0x00000000u);
}

TEST(Wire, RoundTripsEveryType) {
  Writer w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ull);
  w.i32(-42);
  w.b(true);
  w.f64(3.141592653589793);
  w.str(std::string("hello\0world", 11));  // embedded NUL survives
  w.bitvec(util::BitVec(9, 0x1FF));
  const std::string bytes = w.take();

  Reader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_TRUE(r.b());
  EXPECT_EQ(r.f64(), 3.141592653589793);
  EXPECT_EQ(r.str(), std::string("hello\0world", 11));
  EXPECT_EQ(r.bitvec(), util::BitVec(9, 0x1FF));
  EXPECT_TRUE(r.done());
}

TEST(Wire, ShortReadThrowsNotZeroFills) {
  Writer w;
  w.u32(7);
  const std::string bytes = w.take();
  Reader r(std::string_view(bytes).substr(0, 3));
  EXPECT_THROW(r.u32(), util::ParseError);
  Reader r2(bytes);
  r2.u32();
  EXPECT_THROW(r2.u8(), util::ParseError);
}

// --- journal basics --------------------------------------------------------

TEST_F(JournalTest, AppendScanRoundTrip) {
  {
    Journal j(dir_, {});
    EXPECT_EQ(j.append(RecordType::kOp, "alpha"), 1u);
    EXPECT_EQ(j.append(RecordType::kOp, "beta", true, 0xFEEDu), 2u);
    EXPECT_EQ(j.append(RecordType::kTxn, "gamma"), 3u);
    EXPECT_EQ(j.mark_fsync_point(), 4u);
    EXPECT_EQ(j.last_lsn(), 4u);
  }
  const ScanResult sr = Journal::scan(dir_);
  ASSERT_EQ(sr.records.size(), 4u);
  EXPECT_EQ(sr.records[0].body, "alpha");
  EXPECT_FALSE(sr.records[0].has_digest);
  EXPECT_EQ(sr.records[1].body, "beta");
  EXPECT_TRUE(sr.records[1].has_digest);
  EXPECT_EQ(sr.records[1].digest, 0xFEEDu);
  EXPECT_EQ(sr.records[2].type, RecordType::kTxn);
  EXPECT_EQ(sr.records[3].type, RecordType::kFsyncPoint);
  EXPECT_EQ(sr.last_lsn, 4u);
  EXPECT_EQ(sr.dropped_bytes, 0u);
  EXPECT_TRUE(sr.warnings.empty());
}

TEST_F(JournalTest, ReopenContinuesLsnSequence) {
  {
    Journal j(dir_, {});
    j.append(RecordType::kOp, "one");
  }
  {
    Journal j(dir_, {});
    EXPECT_EQ(j.append(RecordType::kOp, "two"), 2u);
  }
  const ScanResult sr = Journal::scan(dir_);
  ASSERT_EQ(sr.records.size(), 2u);
  EXPECT_EQ(sr.records[1].body, "two");
}

TEST_F(JournalTest, RotatesPastSegmentBytes) {
  JournalOptions opts;
  opts.segment_bytes = 128;  // tiny: every few records rotate
  {
    Journal j(dir_, opts);
    for (int i = 0; i < 20; ++i)
      j.append(RecordType::kOp, "record-body-" + std::to_string(i));
  }
  EXPECT_GT(Journal::segment_files(dir_).size(), 1u);
  const ScanResult sr = Journal::scan(dir_);
  ASSERT_EQ(sr.records.size(), 20u);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(sr.records[i].body, "record-body-" + std::to_string(i));
}

TEST_F(JournalTest, TruncateUpToRemovesCoveredSegments) {
  JournalOptions opts;
  opts.segment_bytes = 128;
  Journal j(dir_, opts);
  for (int i = 0; i < 20; ++i)
    j.append(RecordType::kOp, "record-body-" + std::to_string(i));
  const std::size_t before = Journal::segment_files(dir_).size();
  j.truncate_up_to(10);
  EXPECT_LT(Journal::segment_files(dir_).size(), before);
  // Checkpoint-covered records are silently absent; the tail survives.
  const ScanResult sr = Journal::scan(dir_, 10);
  ASSERT_FALSE(sr.records.empty());
  EXPECT_GT(sr.records.front().lsn, 10u);
  EXPECT_EQ(sr.records.back().lsn, 20u);
  EXPECT_EQ(sr.skipped_duplicates, 0u);
}

// --- corruption taxonomy ---------------------------------------------------

TEST_F(JournalTest, TornTrailingRecordIsDropped) {
  {
    Journal j(dir_, {});
    j.append(RecordType::kOp, "keep-one");
    j.append(RecordType::kOp, "keep-two");
    j.append(RecordType::kOp, "torn-away");
  }
  const auto segs = Journal::segment_files(dir_);
  ASSERT_EQ(segs.size(), 1u);
  // Cut the last record in half (crash mid-append).
  fs::resize_file(segs[0], fs::file_size(segs[0]) - 7);

  const ScanResult sr = Journal::scan(dir_);
  ASSERT_EQ(sr.records.size(), 2u);
  EXPECT_EQ(sr.records[1].body, "keep-two");
  EXPECT_EQ(sr.last_lsn, 2u);
  EXPECT_GT(sr.dropped_bytes, 0u);
  ASSERT_FALSE(sr.warnings.empty());
  EXPECT_NE(sr.warnings[0].find("torn or corrupt"), std::string::npos);

  // Re-opening truncates the torn suffix in place and appends cleanly.
  {
    Journal j(dir_, {});
    EXPECT_EQ(j.append(RecordType::kOp, "after-crash"), 3u);
  }
  const ScanResult sr2 = Journal::scan(dir_);
  ASSERT_EQ(sr2.records.size(), 3u);
  EXPECT_EQ(sr2.records[2].body, "after-crash");
  EXPECT_EQ(sr2.dropped_bytes, 0u);
}

TEST_F(JournalTest, FlippedCrcByteStopsTheScanAtThePrefix) {
  {
    Journal j(dir_, {});
    j.append(RecordType::kOp, "good-one");
    j.append(RecordType::kOp, "about-to-corrupt");
    j.append(RecordType::kOp, "after-the-corruption");
  }
  const auto segs = Journal::segment_files(dir_);
  std::string bytes = read_file(segs[0]);
  // Flip one byte inside the SECOND record's payload: 16-byte segment
  // header, then frame one (8-byte header + 18-byte payload header +
  // 8-byte body), then into frame two past its headers.
  const std::size_t frame1 = 8 + 18 + std::string("good-one").size();
  const std::size_t target = 16 + frame1 + 8 + 18 + 3;
  ASSERT_LT(target, bytes.size());
  bytes[target] = static_cast<char>(bytes[target] ^ 0xFF);
  write_file(segs[0], bytes);

  const ScanResult sr = Journal::scan(dir_);
  // Prefix-trusted: record two fails its CRC, so record three is dropped
  // as well even though its frame is intact.
  ASSERT_EQ(sr.records.size(), 1u);
  EXPECT_EQ(sr.records[0].body, "good-one");
  EXPECT_EQ(sr.last_lsn, 1u);
  EXPECT_GT(sr.dropped_bytes, 0u);
  ASSERT_FALSE(sr.warnings.empty());
}

TEST_F(JournalTest, CorruptSegmentDropsAllLaterSegments) {
  JournalOptions opts;
  opts.segment_bytes = 128;
  {
    Journal j(dir_, opts);
    for (int i = 0; i < 20; ++i)
      j.append(RecordType::kOp, "record-body-" + std::to_string(i));
  }
  auto segs = Journal::segment_files(dir_);
  ASSERT_GE(segs.size(), 3u);
  // Corrupt the second segment's header magic.
  std::string bytes = read_file(segs[1]);
  bytes[0] = 'X';
  write_file(segs[1], bytes);

  const ScanResult sr = Journal::scan(dir_);
  // Only segment one's records survive; every later segment is dropped
  // whole (prefix-trusted across segment boundaries too).
  ASSERT_FALSE(sr.records.empty());
  EXPECT_EQ(sr.records.front().body, "record-body-0");
  EXPECT_GE(sr.dropped_segments, segs.size() - 1);
  EXPECT_GT(sr.dropped_bytes, 0u);
}

TEST_F(JournalTest, DuplicateLsnSegmentIsSkippedAndCounted) {
  {
    Journal j(dir_, {});
    j.append(RecordType::kOp, "original-one");
    j.append(RecordType::kOp, "original-two");
  }
  const auto segs = Journal::segment_files(dir_);
  ASSERT_EQ(segs.size(), 1u);
  // A copied segment file under a later name: same records, same LSNs.
  const std::string dup =
      (fs::path(dir_) / "journal-00000000000000ff.hp4j").string();
  std::string bytes = read_file(segs[0]);
  // Patch the embedded first_lsn to match the name so the header parses.
  Writer w;
  w.u64(0xff);
  const std::string lsn_bytes = w.take();
  bytes.replace(8, 8, lsn_bytes);
  write_file(dup, bytes);

  const ScanResult sr = Journal::scan(dir_);
  ASSERT_EQ(sr.records.size(), 2u);
  EXPECT_EQ(sr.records[0].body, "original-one");
  EXPECT_EQ(sr.records[1].body, "original-two");
  EXPECT_EQ(sr.last_lsn, 2u);
  EXPECT_EQ(sr.skipped_duplicates, 2u);
  ASSERT_FALSE(sr.warnings.empty());
  EXPECT_NE(sr.warnings[0].find("duplicate"), std::string::npos);
}

TEST_F(JournalTest, StrayFilesAreNotSegments) {
  {
    Journal j(dir_, {});
    j.append(RecordType::kOp, "only");
  }
  write_file((fs::path(dir_) / "journal-0000000000000001.hp4j.tmp").string(),
             "garbage");
  write_file((fs::path(dir_) / "notes.txt").string(), "operator notes");
  EXPECT_EQ(Journal::segment_files(dir_).size(), 1u);
  const ScanResult sr = Journal::scan(dir_);
  EXPECT_EQ(sr.records.size(), 1u);
  EXPECT_TRUE(sr.warnings.empty());
}

}  // namespace
}  // namespace hyper4::state
