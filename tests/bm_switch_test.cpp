#include "bm/switch.h"

#include <gtest/gtest.h>

#include "bm/cli.h"
#include "p4/builder.h"
#include "util/error.h"

namespace hyper4::bm {
namespace {

using p4::Const;
using p4::Expr;
using p4::ExprOp;
using p4::F;
using p4::Param;
using p4::ProgramBuilder;
using util::BitVec;

net::Packet bytes(std::initializer_list<std::uint8_t> b) {
  return net::Packet(std::vector<std::uint8_t>(b));
}

// A one-header program: 8-bit tag + 8-bit value, forwarded by tag.
ProgramBuilder tag_program() {
  ProgramBuilder b("tag");
  b.header_type("tag_t", {{"tag", 8}, {"value", 8}});
  b.header("tag_t", "tag");
  b.parser("start").extract("tag").to_ingress();
  b.action("fwd", {{"port", p4::kPortWidth}})
      .modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec}, Param(0));
  b.action("_drop").drop();
  b.table("t")
      .key_exact({"tag", "tag"})
      .action_ref("fwd")
      .action_ref("_drop")
      .default_action("_drop");
  b.ingress().apply("t");
  return b;
}

TEST(SwitchBasic, ForwardByTag) {
  Switch sw(tag_program().build());
  sw.table_add("t", "fwd", {KeyParam::exact(BitVec(8, 7))}, {BitVec(9, 3)});
  auto res = sw.inject(1, bytes({7, 0xaa}));
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].port, 3);
  EXPECT_EQ(res.outputs[0].packet, bytes({7, 0xaa}));
  EXPECT_EQ(res.match_count(), 1u);
}

TEST(SwitchBasic, DefaultActionDrops) {
  Switch sw(tag_program().build());
  auto res = sw.inject(1, bytes({9, 0xaa}));
  EXPECT_TRUE(res.outputs.empty());
  EXPECT_EQ(res.drops, 1u);
  EXPECT_EQ(sw.stats().drops, 1u);
}

TEST(SwitchBasic, ShortPacketIsParseError) {
  Switch sw(tag_program().build());
  auto res = sw.inject(1, bytes({7}));
  EXPECT_TRUE(res.outputs.empty());
  EXPECT_EQ(res.parse_errors, 1u);
}

TEST(SwitchBasic, PayloadPreserved) {
  Switch sw(tag_program().build());
  sw.table_add("t", "fwd", {KeyParam::exact(BitVec(8, 1))}, {BitVec(9, 2)});
  auto res = sw.inject(0, bytes({1, 2, 3, 4, 5, 6}));
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].packet, bytes({1, 2, 3, 4, 5, 6}));
}

TEST(SwitchBasic, ModifyFieldRewritesHeader) {
  ProgramBuilder b = tag_program();
  // Replace table action set: rewrite value then forward.
  b.action("rewrite", {{"port", p4::kPortWidth}, {"v", 8}})
      .modify_field({"tag", "value"}, Param(1))
      .modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec}, Param(0));
  b.raw().tables[0].actions.push_back("rewrite");
  Switch sw(b.build());
  sw.table_add("t", "rewrite", {KeyParam::exact(BitVec(8, 1))},
               {BitVec(9, 2), BitVec(8, 0x5c)});
  auto res = sw.inject(0, bytes({1, 0xff, 9, 9}));
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].packet, bytes({1, 0x5c, 9, 9}));
}

TEST(SwitchBasic, ModifyFieldWithMask) {
  ProgramBuilder b = tag_program();
  b.action("masked", {{"port", p4::kPortWidth}})
      .modify_field_masked({"tag", "value"}, Const(8, 0xAB), Const(8, 0x0F))
      .modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec}, Param(0));
  b.raw().tables[0].actions.push_back("masked");
  Switch sw(b.build());
  sw.table_add("t", "masked", {KeyParam::exact(BitVec(8, 1))}, {BitVec(9, 2)});
  auto res = sw.inject(0, bytes({1, 0x70}));
  ASSERT_EQ(res.outputs.size(), 1u);
  // value = (0x70 & ~0x0F) | (0xAB & 0x0F) = 0x7B
  EXPECT_EQ(res.outputs[0].packet, bytes({1, 0x7b}));
}

TEST(SwitchBasic, AddToFieldWraps) {
  ProgramBuilder b = tag_program();
  b.action("dec", {{"port", p4::kPortWidth}})
      .add_to_field({"tag", "value"}, Const(8, 0xff))  // -1 mod 256
      .modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec}, Param(0));
  b.raw().tables[0].actions.push_back("dec");
  Switch sw(b.build());
  sw.table_add("t", "dec", {KeyParam::exact(BitVec(8, 1))}, {BitVec(9, 2)});
  EXPECT_EQ(sw.inject(0, bytes({1, 5})).outputs[0].packet, bytes({1, 4}));
  EXPECT_EQ(sw.inject(0, bytes({1, 0})).outputs[0].packet, bytes({1, 0xff}));
}

// --- parser behaviours -----------------------------------------------------

TEST(SwitchParser, SelectWithMaskAndDefault) {
  ProgramBuilder b("sel");
  b.header_type("h_t", {{"a", 8}});
  b.header_type("x_t", {{"x", 8}});
  b.header("h_t", "h");
  b.header("x_t", "x");
  b.parser("start")
      .extract("h")
      .select_field("h", "a")
      .when_masked(BitVec(8, 0x40), BitVec(8, 0xf0), "more")  // 0x4?
      .otherwise(p4::kParserAccept);
  b.parser("more").extract("x").to_ingress();
  b.action("fwd").modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec},
                               Const(9, 1));
  b.table("t").key_valid("x").action_ref("fwd").default_action("fwd");
  b.ingress().apply("t");
  Switch sw(b.build());

  auto res = sw.inject(0, bytes({0x42, 0xaa, 0xbb}));
  ASSERT_EQ(res.outputs.size(), 1u);  // x extracted
  res = sw.inject(0, bytes({0x52, 0xaa, 0xbb}));
  ASSERT_EQ(res.outputs.size(), 1u);  // x not extracted, default path
}

TEST(SwitchParser, CurrentLookahead) {
  ProgramBuilder b("cur");
  b.header_type("h_t", {{"a", 8}});
  b.header("h_t", "h");
  b.header("h_t", "h2");
  b.parser("start")
      .select_current(0, 8)  // look at first byte without extracting
      .when(0x11, "two")
      .otherwise("one");
  b.parser("one").extract("h").to_ingress();
  b.parser("two").extract("h").extract("h2").to_ingress();
  b.action("fwd").modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec},
                               Const(9, 1));
  b.table("t").key_valid("h2").action_ref("fwd").default_action("fwd");
  b.ingress().apply("t");
  Switch sw(b.build());

  // 0x11 first byte → both headers extracted → payload shrinks.
  auto res = sw.inject(0, bytes({0x11, 0x22, 0x33}));
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].packet, bytes({0x11, 0x22, 0x33}));
}

TEST(SwitchParser, HeaderStackExtraction) {
  ProgramBuilder b("stack");
  b.header_type("byte_t", {{"b", 8}});
  b.header_stack("byte_t", "pr", 4);
  // Extract two stack elements unconditionally.
  b.parser("start").extract("pr").extract("pr").to_ingress();
  b.action("fwd").modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec},
                               Const(9, 2));
  b.table("t").key_exact({"pr[0]", "b"}).action_ref("fwd").default_action("fwd");
  b.ingress().apply("t");
  Switch sw(b.build());
  auto res = sw.inject(0, bytes({0xaa, 0xbb, 0xcc}));
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].packet, bytes({0xaa, 0xbb, 0xcc}));
}

TEST(SwitchParser, StackOverflowIsParseError) {
  ProgramBuilder b("stack");
  b.header_type("byte_t", {{"b", 8}});
  b.header_stack("byte_t", "pr", 2);
  b.parser("start")
      .extract("pr")
      .extract("pr")
      .extract("pr")  // third element of a 2-stack
      .to_ingress();
  b.action("nop").no_op();
  b.table("t").key_exact({"pr[0]", "b"}).action_ref("nop").default_action("nop");
  b.ingress().apply("t");
  Switch sw(b.build());
  auto res = sw.inject(0, bytes({1, 2, 3, 4}));
  EXPECT_EQ(res.parse_errors, 1u);
}

TEST(SwitchParser, ParserDropState) {
  ProgramBuilder b("pd");
  b.header_type("h_t", {{"a", 8}});
  b.header("h_t", "h");
  b.parser("start")
      .extract("h")
      .select_field("h", "a")
      .when(0xff, p4::kParserDrop)
      .otherwise(p4::kParserAccept);
  b.action("fwd").modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec},
                               Const(9, 1));
  b.table("t").key_exact({"h", "a"}).action_ref("fwd").default_action("fwd");
  b.ingress().apply("t");
  Switch sw(b.build());
  EXPECT_EQ(sw.inject(0, bytes({0xff, 0})).outputs.size(), 0u);
  EXPECT_EQ(sw.inject(0, bytes({0x01, 0})).outputs.size(), 1u);
}

// --- control flow ------------------------------------------------------------

TEST(SwitchControl, HitMissEdges) {
  ProgramBuilder b("hm");
  b.header_type("h_t", {{"a", 8}, {"out", 8}});
  b.header("h_t", "h");
  b.parser("start").extract("h").to_ingress();
  b.action("nop").no_op();
  b.action("mark", {{"v", 8}}).modify_field({"h", "out"}, Param(0));
  b.action("fwd").modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec},
                               Const(9, 1));
  b.table("probe").key_exact({"h", "a"}).action_ref("nop").default_action("nop");
  b.table("on_hit").key_exact({"h", "a"}).action_ref("mark").default_action("nop");
  b.table("on_miss").key_exact({"h", "a"}).action_ref("mark").default_action("nop");
  b.table("send").key_exact({"h", "out"}).action_ref("fwd").default_action("fwd");
  auto ing = b.ingress();
  const auto n0 = ing.apply("probe");
  const auto nh = ing.apply("on_hit");
  const auto nm = ing.apply("on_miss");
  const auto ns = ing.apply("send");
  ing.on_hit(n0, nh);
  ing.on_miss(n0, nm);
  ing.on_default(nh, ns);
  ing.on_default(nm, ns);
  Switch sw(b.build());
  sw.table_add("probe", "nop", {KeyParam::exact(BitVec(8, 1))}, {});
  sw.table_add("on_hit", "mark", {KeyParam::exact(BitVec(8, 1))},
               {BitVec(8, 0xAA)});
  sw.table_add("on_miss", "mark", {KeyParam::exact(BitVec(8, 2))},
               {BitVec(8, 0xBB)});

  auto res = sw.inject(0, bytes({1, 0}));
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].packet, bytes({1, 0xAA}));
  EXPECT_EQ(res.match_count(), 3u);  // probe, on_hit, send

  res = sw.inject(0, bytes({2, 0}));
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].packet, bytes({2, 0xBB}));
}

TEST(SwitchControl, ConditionalBranch) {
  ProgramBuilder b("br");
  b.header_type("h_t", {{"a", 8}, {"out", 8}});
  b.header("h_t", "h");
  b.parser("start").extract("h").to_ingress();
  b.action("mark", {{"v", 8}}).modify_field({"h", "out"}, Param(0));
  b.action("fwd").modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec},
                               Const(9, 1));
  b.table("true_t").key_exact({"h", "a"}).action_ref("mark").default_action("nopish");
  b.raw().tables.back().default_action = "";
  b.table("send").key_exact({"h", "out"}).action_ref("fwd").default_action("fwd");
  auto ing = b.ingress();
  const auto nif =
      ing.branch(Expr::binary(ExprOp::kGt, Expr::field("h", "a"),
                              Expr::constant(8, 10)));
  const auto nt = ing.apply("true_t");
  const auto ns = ing.apply("send");
  ing.on_true(nif, nt);
  ing.on_false(nif, ns);
  ing.on_default(nt, ns);
  Switch sw(b.build());
  sw.table_add("true_t", "mark", {KeyParam::exact(BitVec(8, 20))},
               {BitVec(8, 1)});

  // a=20 > 10: true branch applies true_t (2 matches total).
  EXPECT_EQ(sw.inject(0, bytes({20, 0})).match_count(), 2u);
  // a=5: false branch skips true_t.
  EXPECT_EQ(sw.inject(0, bytes({5, 0})).match_count(), 1u);
}

// --- traffic manager paths ---------------------------------------------------

TEST(SwitchTm, ResubmitPreservesListedFields) {
  ProgramBuilder b("rs");
  b.header_type("h_t", {{"a", 8}});
  b.header_type("m_t", {{"round", 8}});
  b.header("h_t", "h");
  b.metadata("m_t", "m");
  b.field_list("keep", {{"m", "round"}});
  b.parser("start").extract("h").to_ingress();
  b.action("again")
      .prim(p4::Primitive::kAddToField,
            {p4::ActionArg::of_field("m", "round"), Const(8, 1)})
      .resubmit("keep");
  b.action("fwd").modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec},
                               Const(9, 4));
  b.table("t").key_exact({"m", "round"}).action_ref("again").action_ref("fwd")
      .default_action("fwd");
  b.ingress().apply("t");
  Switch sw(b.build());
  // Rounds 0 and 1 resubmit; round 2 forwards.
  sw.table_add("t", "again", {KeyParam::exact(BitVec(8, 0))}, {});
  sw.table_add("t", "again", {KeyParam::exact(BitVec(8, 1))}, {});

  auto res = sw.inject(0, bytes({9, 1, 2}));
  EXPECT_EQ(res.resubmits, 2u);
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].port, 4);
  EXPECT_EQ(res.outputs[0].packet, bytes({9, 1, 2}));
  EXPECT_EQ(res.match_count(), 3u);
}

TEST(SwitchTm, ResubmitWithoutListLosesMetadata) {
  ProgramBuilder b("rs2");
  b.header_type("h_t", {{"a", 8}});
  b.header_type("m_t", {{"round", 8}});
  b.header("h_t", "h");
  b.metadata("m_t", "m");
  b.parser("start").extract("h").to_ingress();
  b.action("again")
      .prim(p4::Primitive::kAddToField,
            {p4::ActionArg::of_field("m", "round"), Const(8, 1)})
      .resubmit();
  b.action("fwd").modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec},
                               Const(9, 4));
  b.table("t").key_exact({"m", "round"}).action_ref("again").action_ref("fwd")
      .default_action("fwd");
  b.ingress().apply("t");
  Switch sw(b.build());
  sw.table_add("t", "again", {KeyParam::exact(BitVec(8, 0))}, {});

  // Without the field list, m.round resets to 0 every pass → loop killed.
  auto res = sw.inject(0, bytes({9}));
  EXPECT_TRUE(res.outputs.empty());
  EXPECT_GE(res.loop_kills, 1u);
}

TEST(SwitchTm, RecirculateReparsesRewrittenPacket) {
  ProgramBuilder b("rc");
  b.header_type("h_t", {{"a", 8}});
  b.header_type("m_t", {{"seen", 8}});
  b.header("h_t", "h");
  b.metadata("m_t", "m");
  b.field_list("keep", {{"m", "seen"}});
  b.parser("start").extract("h").to_ingress();
  // First pass: rewrite header byte and recirculate; second: forward.
  b.action("rewrite_and_loop")
      .modify_field({"h", "a"}, Const(8, 0x99))
      .prim(p4::Primitive::kAddToField,
            {p4::ActionArg::of_field("m", "seen"), Const(8, 1)})
      .recirculate("keep");
  b.action("fwd").modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec},
                               Const(9, 5));
  b.table("t").key_exact({"m", "seen"}).action_ref("rewrite_and_loop")
      .action_ref("fwd").default_action("fwd");
  b.ingress().apply("t");
  Switch sw(b.build());
  sw.table_add("t", "rewrite_and_loop", {KeyParam::exact(BitVec(8, 0))}, {});

  auto res = sw.inject(0, bytes({0x11, 0xfe}));
  EXPECT_EQ(res.recirculations, 1u);
  ASSERT_EQ(res.outputs.size(), 1u);
  // The recirculated packet carried the rewritten header byte.
  EXPECT_EQ(res.outputs[0].packet, bytes({0x99, 0xfe}));
}

TEST(SwitchTm, CloneI2EGoesToMirrorPort) {
  ProgramBuilder b = tag_program();
  b.action("fwd_and_clone", {{"port", p4::kPortWidth}})
      .modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec}, Param(0))
      .clone_i2e(Const(32, 7));
  b.raw().tables[0].actions.push_back("fwd_and_clone");
  Switch sw(b.build());
  sw.mirror_add(7, 9);
  sw.table_add("t", "fwd_and_clone", {KeyParam::exact(BitVec(8, 1))},
               {BitVec(9, 2)});
  auto res = sw.inject(0, bytes({1, 0xaa}));
  ASSERT_EQ(res.outputs.size(), 2u);
  EXPECT_EQ(res.clones_i2e, 1u);
  std::vector<std::uint16_t> ports{res.outputs[0].port, res.outputs[1].port};
  std::sort(ports.begin(), ports.end());
  EXPECT_EQ(ports, (std::vector<std::uint16_t>{2, 9}));
}

TEST(SwitchTm, CloneToUnknownSessionIsIgnored) {
  ProgramBuilder b = tag_program();
  b.action("fwd_and_clone", {{"port", p4::kPortWidth}})
      .modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec}, Param(0))
      .clone_i2e(Const(32, 7));
  b.raw().tables[0].actions.push_back("fwd_and_clone");
  Switch sw(b.build());
  sw.table_add("t", "fwd_and_clone", {KeyParam::exact(BitVec(8, 1))},
               {BitVec(9, 2)});
  auto res = sw.inject(0, bytes({1, 0xaa}));
  EXPECT_EQ(res.outputs.size(), 1u);
}

TEST(SwitchTm, MulticastReplicates) {
  ProgramBuilder b = tag_program();
  b.action("mcast", {{"grp", 16}})
      .modify_field({p4::kStandardMetadata, p4::kFieldMcastGrp}, Param(0));
  b.raw().tables[0].actions.push_back("mcast");
  Switch sw(b.build());
  sw.mc_group_set(5, {{2, 1}, {3, 2}, {4, 3}});
  sw.table_add("t", "mcast", {KeyParam::exact(BitVec(8, 1))}, {BitVec(16, 5)});
  auto res = sw.inject(0, bytes({1, 0}));
  EXPECT_EQ(res.multicast_copies, 3u);
  ASSERT_EQ(res.outputs.size(), 3u);
  std::vector<std::uint16_t> ports;
  for (auto& o : res.outputs) ports.push_back(o.port);
  std::sort(ports.begin(), ports.end());
  EXPECT_EQ(ports, (std::vector<std::uint16_t>{2, 3, 4}));
}

// --- egress / deparse ---------------------------------------------------------

TEST(SwitchEgress, EgressTableSeesEgressPort) {
  ProgramBuilder b = tag_program();
  b.action("stamp", {{"v", 8}}).modify_field({"tag", "value"}, Param(0));
  b.action("nop").no_op();
  b.table("e").key_exact({p4::kStandardMetadata, p4::kFieldEgressPort})
      .action_ref("stamp").default_action("nop");
  b.egress().apply("e");
  Switch sw(b.build());
  sw.table_add("t", "fwd", {KeyParam::exact(BitVec(8, 1))}, {BitVec(9, 6)});
  sw.table_add("e", "stamp", {KeyParam::exact(BitVec(9, 6))}, {BitVec(8, 0x66)});
  auto res = sw.inject(0, bytes({1, 0}));
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].packet, bytes({1, 0x66}));
}

TEST(SwitchEgress, RemoveHeaderShrinksPacket) {
  ProgramBuilder b("rm");
  b.header_type("a_t", {{"x", 8}});
  b.header_type("b_t", {{"y", 8}});
  b.header("a_t", "a");
  b.header("b_t", "bh");
  b.parser("start").extract("a").extract("bh").to_ingress();
  b.action("strip", {{"port", p4::kPortWidth}})
      .remove_header("a")
      .modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec}, Param(0));
  b.table("t").key_exact({"a", "x"}).action_ref("strip").default_action("strip");
  b.raw().tables[0].default_action = "";
  b.ingress().apply("t");
  Switch sw(b.build());
  sw.table_add("t", "strip", {KeyParam::exact(BitVec(8, 1))}, {BitVec(9, 1)});
  auto res = sw.inject(0, bytes({1, 2, 3}));
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].packet, bytes({2, 3}));
}

TEST(SwitchEgress, AddHeaderGrowsPacket) {
  ProgramBuilder b("add");
  b.header_type("a_t", {{"x", 8}});
  b.header_type("b_t", {{"y", 8}});
  b.header("b_t", "outer");  // deparsed first
  b.header("a_t", "a");
  b.parser("start").extract("outer").extract("a").to_ingress();
  b.deparse_order({"outer", "a"});
  // Parse only `a`; add `outer` in ingress.
  b.raw().parser_states[0].extracts = {"a"};
  b.action("encap", {{"port", p4::kPortWidth}})
      .add_header("outer")
      .modify_field({"outer", "y"}, Const(8, 0xEE))
      .modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec}, Param(0));
  b.table("t").key_exact({"a", "x"}).action_ref("encap");
  b.raw().tables[0].default_action = "";
  b.ingress().apply("t");
  Switch sw(b.build());
  sw.table_add("t", "encap", {KeyParam::exact(BitVec(8, 1))}, {BitVec(9, 1)});
  auto res = sw.inject(0, bytes({1, 7}));
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].packet, bytes({0xEE, 1, 7}));
}

TEST(SwitchEgress, TruncateLimitsLength) {
  ProgramBuilder b = tag_program();
  b.action("fwd_trunc", {{"port", p4::kPortWidth}})
      .modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec}, Param(0))
      .truncate(Const(32, 3));
  b.raw().tables[0].actions.push_back("fwd_trunc");
  Switch sw(b.build());
  sw.table_add("t", "fwd_trunc", {KeyParam::exact(BitVec(8, 1))},
               {BitVec(9, 2)});
  auto res = sw.inject(0, bytes({1, 2, 3, 4, 5, 6}));
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].packet, bytes({1, 2, 3}));
}

// --- stateful objects ----------------------------------------------------------

TEST(SwitchStateful, CountersAccumulate) {
  ProgramBuilder b = tag_program();
  b.counter("c", 4);
  b.action("fwd_count", {{"port", p4::kPortWidth}, {"idx", 8}})
      .modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec}, Param(0))
      .count("c", Param(1));
  b.raw().tables[0].actions.push_back("fwd_count");
  Switch sw(b.build());
  sw.table_add("t", "fwd_count", {KeyParam::exact(BitVec(8, 1))},
               {BitVec(9, 2), BitVec(8, 3)});
  sw.inject(0, bytes({1, 0}));
  sw.inject(0, bytes({1, 0, 0, 0}));
  EXPECT_EQ(sw.counter_packets("c", 3), 2u);
  EXPECT_EQ(sw.counter_bytes("c", 3), 6u);
  sw.counter_reset("c");
  EXPECT_EQ(sw.counter_packets("c", 3), 0u);
}

TEST(SwitchStateful, RegistersReadWrite) {
  ProgramBuilder b = tag_program();
  b.reg("r", 16, 8);
  b.action("save", {{"port", p4::kPortWidth}})
      .register_write("r", Const(8, 2), F("tag", "value"))
      .modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec}, Param(0));
  b.action("load", {{"port", p4::kPortWidth}})
      .register_read({"tag", "value"}, "r", Const(8, 2))
      .modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec}, Param(0));
  b.raw().tables[0].actions.push_back("save");
  b.raw().tables[0].actions.push_back("load");
  Switch sw(b.build());
  sw.table_add("t", "save", {KeyParam::exact(BitVec(8, 1))}, {BitVec(9, 2)});
  sw.table_add("t", "load", {KeyParam::exact(BitVec(8, 2))}, {BitVec(9, 2)});

  sw.inject(0, bytes({1, 0x5a}));
  EXPECT_EQ(sw.register_read("r", 2).to_u64(), 0x5au);
  auto res = sw.inject(0, bytes({2, 0x00}));
  EXPECT_EQ(res.outputs[0].packet, bytes({2, 0x5a}));
  // External write is visible to the dataplane.
  sw.register_write("r", 2, BitVec(16, 0x77));
  res = sw.inject(0, bytes({2, 0x00}));
  EXPECT_EQ(res.outputs[0].packet, bytes({2, 0x77}));
}

TEST(SwitchStateful, MeterMarksRed) {
  ProgramBuilder b = tag_program();
  b.meter("m", 2, /*rate_pps=*/1, /*burst=*/2);
  b.action("metered", {{"port", p4::kPortWidth}})
      .prim(p4::Primitive::kExecuteMeter,
            {p4::Named("m"), Const(8, 0), p4::ActionArg::of_field("tag", "value")})
      .modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec}, Param(0));
  b.raw().tables[0].actions.push_back("metered");
  Switch sw(b.build());
  sw.table_add("t", "metered", {KeyParam::exact(BitVec(8, 1))}, {BitVec(9, 2)});

  // Burst of 2 at t=0: first two green (0), third red (2).
  EXPECT_EQ(sw.inject(0, bytes({1, 9})).outputs[0].packet, bytes({1, 0}));
  EXPECT_EQ(sw.inject(0, bytes({1, 9})).outputs[0].packet, bytes({1, 0}));
  EXPECT_EQ(sw.inject(0, bytes({1, 9})).outputs[0].packet, bytes({1, 2}));
  // Tokens refill with time.
  sw.advance_time(1.5);
  EXPECT_EQ(sw.inject(0, bytes({1, 9})).outputs[0].packet, bytes({1, 0}));
}

TEST(SwitchStateful, DigestDelivered) {
  ProgramBuilder b = tag_program();
  b.field_list("learn", {{"tag", "tag"}, {"tag", "value"}});
  b.action("learn_it", {{"port", p4::kPortWidth}})
      .prim(p4::Primitive::kGenerateDigest, {Const(32, 1), p4::Named("learn")})
      .modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec}, Param(0));
  b.raw().tables[0].actions.push_back("learn_it");
  Switch sw(b.build());
  sw.table_add("t", "learn_it", {KeyParam::exact(BitVec(8, 1))}, {BitVec(9, 2)});
  auto res = sw.inject(0, bytes({1, 0x42}));
  ASSERT_EQ(res.digests.size(), 1u);
  EXPECT_EQ(res.digests[0].low_values,
            (std::vector<std::uint64_t>{1, 0x42}));
}

// --- checksum -----------------------------------------------------------------

TEST(SwitchChecksum, RecomputedOnDeparse) {
  ProgramBuilder b("ck");
  b.header_type("h_t", {{"data", 16}, {"csum", 16}});
  b.header("h_t", "h");
  b.parser("start").extract("h").to_ingress();
  b.field_list("cl", {{"h", "data"}});
  b.checksum({"h", "csum"}, "cl");
  b.action("bump", {{"port", p4::kPortWidth}})
      .add_to_field({"h", "data"}, Const(16, 1))
      .modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec}, Param(0));
  b.table("t").key_exact({"h", "data"}).action_ref("bump");
  b.raw().tables[0].default_action = "";
  b.ingress().apply("t");
  Switch sw(b.build());
  sw.table_add("t", "bump", {KeyParam::exact(BitVec(16, 0x1234))},
               {BitVec(9, 1)});
  auto res = sw.inject(0, bytes({0x12, 0x34, 0x00, 0x00}));
  ASSERT_EQ(res.outputs.size(), 1u);
  // data = 0x1235, csum16(0x1235) = ~0x1235 = 0xedca
  EXPECT_EQ(res.outputs[0].packet, bytes({0x12, 0x35, 0xed, 0xca}));
}

// --- CLI ------------------------------------------------------------------------

TEST(SwitchCli, TableAddAndInject) {
  Switch sw(tag_program().build());
  auto r = run_cli_command(sw, "table_add t fwd 7 => 3");
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_EQ(sw.inject(0, bytes({7, 0})).outputs[0].port, 3);
}

TEST(SwitchCli, ErrorsReported) {
  Switch sw(tag_program().build());
  EXPECT_FALSE(run_cli_command(sw, "table_add nope fwd 7 => 3").ok);
  EXPECT_FALSE(run_cli_command(sw, "table_add t nope 7 => 3").ok);
  EXPECT_FALSE(run_cli_command(sw, "table_add t fwd 7 3").ok);  // no =>
  EXPECT_FALSE(run_cli_command(sw, "bogus_command").ok);
  EXPECT_TRUE(run_cli_command(sw, "").ok);
}

TEST(SwitchCli, TextWithCommentsAndSubstitutions) {
  Switch sw(tag_program().build());
  const std::string text =
      "# configure forwarding\n"
      "\n"
      "table_add t fwd [TAG] => [PORT]  # inline comment\n";
  auto results = run_cli_text(sw, text, {{"[TAG]", "7"}, {"[PORT]", "5"}});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(sw.inject(0, bytes({7, 0})).outputs[0].port, 5);
}

TEST(SwitchCli, TextFailureNamesLine) {
  Switch sw(tag_program().build());
  EXPECT_THROW(run_cli_text(sw, "table_add nope fwd 1 => 2\n"),
               util::CommandError);
}

}  // namespace
}  // namespace hyper4::bm
