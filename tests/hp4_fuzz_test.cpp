// Randomized equivalence fuzzing: for every app, generate random rule sets
// and random (well-formed) packets, and require the native program and its
// HyPer4 emulation to agree packet-for-packet. This is the repository's
// strongest evidence for the paper's core claim ("functionally equivalent
// to other P4 programs", §1).
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "hp4/controller.h"
#include "util/rng.h"

namespace hyper4::hp4 {
namespace {

using apps::Rule;
using util::Rng;

VirtualRule vr(const Rule& r) {
  return VirtualRule{r.table, r.action, r.keys, r.args, r.priority};
}

std::string rand_mac(Rng& rng, int pool) {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "02:00:00:00:00:%02x",
                static_cast<unsigned>(rng.uniform(1, pool)));
  return buf;
}

std::string rand_ip(Rng& rng, int pool) {
  return "10." + std::to_string(rng.uniform(0, 3)) + ".0." +
         std::to_string(rng.uniform(1, pool));
}

net::Packet rand_packet(Rng& rng, int pool) {
  net::EthHeader eth;
  eth.src = net::mac_from_string(rand_mac(rng, pool));
  eth.dst = net::mac_from_string(rand_mac(rng, pool));
  const int kind = static_cast<int>(rng.uniform(0, 9));
  if (kind == 0) {  // ARP request
    return net::make_arp_request(eth.src, net::ipv4_from_string(rand_ip(rng, pool)),
                                 net::ipv4_from_string(rand_ip(rng, pool)));
  }
  if (kind == 1) {  // ARP reply
    return net::make_arp_reply(eth.src, net::ipv4_from_string(rand_ip(rng, pool)),
                               eth.dst, net::ipv4_from_string(rand_ip(rng, pool)));
  }
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string(rand_ip(rng, pool));
  ip.dst = net::ipv4_from_string(rand_ip(rng, pool));
  ip.ttl = static_cast<std::uint8_t>(rng.uniform(2, 64));
  const std::size_t payload = rng.uniform(0, 256);
  if (kind <= 5) {
    net::TcpHeader tcp;
    tcp.src_port = static_cast<std::uint16_t>(rng.uniform(1, 65535));
    tcp.dst_port = static_cast<std::uint16_t>(rng.uniform(1, 200));
    return net::make_ipv4_tcp(eth, ip, tcp, payload);
  }
  if (kind <= 7) {
    net::UdpHeader udp;
    udp.src_port = static_cast<std::uint16_t>(rng.uniform(1, 65535));
    udp.dst_port = static_cast<std::uint16_t>(rng.uniform(1, 200));
    return net::make_ipv4_udp(eth, ip, udp, payload);
  }
  net::IcmpHeader icmp;
  icmp.sequence = static_cast<std::uint16_t>(rng.uniform(0, 999));
  return net::make_ipv4_icmp_echo(eth, ip, icmp, payload);
}

std::vector<Rule> rand_rules(Rng& rng, const std::string& app, int pool) {
  std::vector<Rule> rules;
  const int n_fwd = static_cast<int>(rng.uniform(2, 6));
  if (app == "l2_sw") {
    for (int i = 0; i < n_fwd; ++i) {
      rules.push_back(apps::l2_forward(
          rand_mac(rng, pool), static_cast<std::uint16_t>(rng.uniform(1, 3))));
    }
  } else if (app == "firewall") {
    for (int i = 0; i < n_fwd; ++i) {
      rules.push_back(apps::firewall_l2_forward(
          rand_mac(rng, pool), static_cast<std::uint16_t>(rng.uniform(1, 3))));
    }
    const int n_block = static_cast<int>(rng.uniform(1, 4));
    for (int i = 0; i < n_block; ++i) {
      const auto dport = static_cast<std::uint16_t>(rng.uniform(1, 200));
      if (rng.coin()) {
        rules.push_back(apps::firewall_block_tcp_dport(dport, 10 + i));
      } else {
        rules.push_back(apps::firewall_block_udp_dport(dport, 10 + i));
      }
    }
    if (rng.coin(0.5)) {
      rules.push_back(apps::firewall_block_ip(rand_ip(rng, pool),
                                              "255.255.255.255", "0.0.0.0",
                                              "0.0.0.0", 30));
    }
  } else if (app == "arp_proxy") {
    for (int i = 0; i < n_fwd; ++i) {
      rules.push_back(apps::arp_proxy_l2_forward(
          rand_mac(rng, pool), static_cast<std::uint16_t>(rng.uniform(1, 3))));
    }
    const int n_proxy = static_cast<int>(rng.uniform(1, 4));
    for (int i = 0; i < n_proxy; ++i) {
      rules.push_back(apps::arp_proxy_entry(rand_ip(rng, pool), rand_mac(rng, pool)));
    }
  } else {  // router
    rules.push_back(apps::router_accept_mac("02:aa:00:00:00:ff"));
    const int n_routes = static_cast<int>(rng.uniform(1, 4));
    for (int i = 0; i < n_routes; ++i) {
      const std::string nhop = rand_ip(rng, pool);
      const auto port = static_cast<std::uint16_t>(rng.uniform(1, 3));
      const std::size_t plen = rng.coin() ? 24 : 16;
      rules.push_back(apps::router_route(
          "10." + std::to_string(rng.uniform(0, 3)) + ".0.0", plen, nhop, port));
      rules.push_back(apps::router_arp_entry(nhop, rand_mac(rng, pool)));
    }
    for (std::uint16_t p : {1, 2, 3}) {
      rules.push_back(apps::router_port_mac(p, "02:aa:00:00:00:ff"));
    }
  }
  return rules;
}

// Dedup rules whose keys collide (exact-match duplicates are rejected by
// both native table and DPMU translation identically, but keeping the rule
// generator collision-free makes setup deterministic).
std::vector<Rule> dedup(std::vector<Rule> rules) {
  std::set<std::string> seen;
  std::vector<Rule> out;
  for (auto& r : rules) {
    std::string key = r.table;
    for (const auto& k : r.keys) key += "|" + k;
    if (seen.insert(key).second) out.push_back(std::move(r));
  }
  return out;
}

std::vector<std::pair<std::uint16_t, std::string>> canon(
    const bm::ProcessResult& r) {
  std::vector<std::pair<std::uint16_t, std::string>> out;
  for (const auto& o : r.outputs) out.emplace_back(o.port, o.packet.to_hex());
  std::sort(out.begin(), out.end());
  return out;
}

class FuzzEquivalence
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(FuzzEquivalence, RandomRulesRandomPackets) {
  const auto [app, seed] = GetParam();
  // HP4_CHECK_SEED offsets every sweep, so one env var re-randomizes the
  // fuzz, stress and check suites together. Failures print the full seed.
  const std::uint64_t base = util::env_seed(0);
  Rng rng(base + static_cast<std::uint64_t>(seed) * 1000003 + 17);
  constexpr int kPool = 6;

  const auto rules = dedup(rand_rules(rng, app, kPool));

  bm::Switch native(apps::program_by_name(app));
  Controller ctl;
  auto vdev = ctl.load(app, apps::program_by_name(app));
  ctl.attach_ports(vdev, {1, 2, 3});
  for (std::uint16_t p : {1, 2, 3}) ctl.bind(vdev, p);
  for (const auto& r : rules) {
    apps::apply_rule(native, r);
    ctl.add_rule(vdev, vr(r));
  }

  for (int i = 0; i < 25; ++i) {
    const auto pkt = rand_packet(rng, kPool);
    const auto port = static_cast<std::uint16_t>(rng.uniform(1, 3));
    auto n = native.inject(port, pkt);
    auto e = ctl.dataplane().inject(port, pkt);
    ASSERT_EQ(canon(n), canon(e))
        << app << " seed=" << seed << " base=" << base << " packet#" << i
        << " in=" << pkt.to_hex();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FuzzEquivalence,
    ::testing::Combine(::testing::Values("l2_sw", "firewall", "router",
                                         "arp_proxy"),
                       ::testing::Range(0, 8)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// Runtime churn: entries added and deleted mid-stream keep both sides in
// lockstep (live reconfiguration, §4.1).
TEST(FuzzChurn, AddDeleteChurnStaysEquivalent) {
  const std::uint64_t churn_seed = util::env_seed(0xC0FFEE);
  Rng rng(churn_seed);
  bm::Switch native(apps::l2_switch());
  Controller ctl;
  auto vdev = ctl.load("l2", apps::l2_switch());
  ctl.attach_ports(vdev, {1, 2, 3});
  for (std::uint16_t p : {1, 2, 3}) ctl.bind(vdev, p);

  struct Live {
    Rule rule;
    std::uint64_t native_handle;
    std::uint64_t vhandle;
  };
  std::vector<Live> live;

  for (int step = 0; step < 60; ++step) {
    if (live.empty() || rng.coin(0.6)) {
      Rule r = apps::l2_forward(rand_mac(rng, 8),
                                static_cast<std::uint16_t>(rng.uniform(1, 3)));
      bool dup = false;
      for (const auto& l : live) {
        if (l.rule.keys == r.keys) dup = true;
      }
      if (!dup) {
        Live l;
        l.rule = r;
        l.native_handle = apps::apply_rule(native, r);
        l.vhandle = ctl.add_rule(vdev, vr(r));
        live.push_back(std::move(l));
      }
    } else {
      const std::size_t idx = rng.uniform(0, live.size() - 1);
      native.table_delete(live[idx].rule.table, live[idx].native_handle);
      ctl.dpmu().table_delete(vdev, live[idx].vhandle, "admin");
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    // Probe with a few random packets after each mutation.
    for (int i = 0; i < 3; ++i) {
      const auto pkt = rand_packet(rng, 8);
      const auto port = static_cast<std::uint16_t>(rng.uniform(1, 3));
      auto n = native.inject(port, pkt);
      auto e = ctl.dataplane().inject(port, pkt);
      ASSERT_EQ(canon(n), canon(e))
          << "step " << step << " seed=" << churn_seed;
    }
  }
}

}  // namespace
}  // namespace hyper4::hp4
