// The random program generator: deterministic per seed, and every
// generated triple is well-formed — the program validates, the native
// switch accepts every rule, and every packet parses without error.
#include <gtest/gtest.h>

#include <set>

#include "bm/cli.h"
#include "bm/switch.h"
#include "check/program_gen.h"
#include "check/repro.h"
#include "hp4/p4_emit.h"
#include "p4/frontend.h"
#include "util/rng.h"

namespace hyper4::check {
namespace {

const std::uint64_t kBase = util::env_seed(1);

TEST(CheckGen, SameSeedSameCase) {
  const ProgramGen gen;
  const GenCase a = gen.generate(kBase + 7);
  const GenCase b = gen.generate(kBase + 7);
  EXPECT_EQ(hp4::emit_p4(a.program), hp4::emit_p4(b.program));
  EXPECT_EQ(repro_commands_text(a), repro_commands_text(b));
}

TEST(CheckGen, DifferentSeedsDiverge) {
  const ProgramGen gen;
  std::set<std::string> sources;
  for (std::uint64_t s = 0; s < 16; ++s)
    sources.insert(hp4::emit_p4(gen.generate(kBase + s).program));
  // Not all 16 need be unique, but a constant generator is broken.
  EXPECT_GT(sources.size(), 8u) << "seed base " << kBase;
}

TEST(CheckGen, GeneratedCasesAreWellFormed) {
  const ProgramGen gen;
  for (std::uint64_t s = 0; s < 40; ++s) {
    const GenCase c = gen.generate(kBase + s);
    SCOPED_TRACE("seed " + std::to_string(kBase + s));
    EXPECT_FALSE(c.program.tables.empty());
    EXPECT_FALSE(c.rules.empty());
    EXPECT_FALSE(c.packets.empty());

    bm::Switch sw(c.program);
    for (const auto& r : c.rules) {
      const bm::CliResult res = bm::run_cli_command(sw, cli_line(r));
      EXPECT_TRUE(res.ok) << cli_line(r) << ": " << res.message;
    }
    for (const auto& p : c.packets) {
      const bm::ProcessResult res = sw.inject(p.port, p.packet);
      EXPECT_EQ(res.parse_errors, 0u) << "packet " << p.packet.to_hex();
    }
  }
}

TEST(CheckGen, EmittedSourceRoundTripsThroughFrontend) {
  const ProgramGen gen;
  for (std::uint64_t s = 0; s < 20; ++s) {
    const GenCase c = gen.generate(kBase + s);
    SCOPED_TRACE("seed " + std::to_string(kBase + s));
    const std::string src = hp4::emit_p4(c.program);
    p4::Program back;
    ASSERT_NO_THROW(back = p4::parse_p4(src, c.program.name)) << src;
    // The reparse must preserve structure well enough to re-emit the same
    // source — the property the repro files rely on.
    EXPECT_EQ(hp4::emit_p4(back), src);
  }
}

TEST(CheckGen, StatefulCasesAppearWhenAllowed) {
  GenLimits lim;
  lim.allow_stateful = true;
  const ProgramGen gen(lim);
  bool saw_stateful = false;
  bool saw_stateless = false;
  for (std::uint64_t s = 0; s < 40; ++s) {
    const GenCase c = gen.generate(kBase + s);
    (c.stateful ? saw_stateful : saw_stateless) = true;
    if (c.stateful) {
      EXPECT_TRUE(!c.program.counters.empty() || !c.program.registers.empty());
    }
  }
  EXPECT_TRUE(saw_stateful) << "seed base " << kBase;
  EXPECT_TRUE(saw_stateless) << "seed base " << kBase;
}

}  // namespace
}  // namespace hyper4::check
