// ScenarioFleet (src/scenarios/fleet.h): multi-tenant chains on one
// persona, live traffic through the engine, churn, transactional hot-swap
// and slice snapshot/restore — the virtualization claims of §3 at tenant
// scale.
#include <gtest/gtest.h>

#include "scenarios/fleet.h"
#include "vm/vm.h"

namespace hyper4 {
namespace {

using scenarios::FleetOptions;
using scenarios::ScenarioFleet;
using scenarios::WaveResult;

FleetOptions small_opts(std::size_t tenants = 6, std::size_t depth = 3) {
  FleetOptions o;
  o.tenants = tenants;
  o.chain_depth = depth;
  o.engine_workers = 2;
  return o;
}

TEST(ScenarioFleet, SetupLoadsChainsAndDeliversEveryTenant) {
  ScenarioFleet fleet(small_opts());
  EXPECT_EQ(fleet.tenants(), 6u);
  // 6 tenants x depth 3 vdevs on one persona.
  EXPECT_EQ(fleet.controller().dpmu().vdev_ids().size(), 18u);

  fleet.inject_wave(4);
  const WaveResult w = fleet.drain_wave();
  EXPECT_EQ(w.injected, 24u);
  EXPECT_EQ(w.drained, 24u);
  EXPECT_TRUE(w.all_delivered);
  for (std::size_t i = 0; i < fleet.tenants(); ++i)
    EXPECT_EQ(w.delivered[i], 4u) << "tenant " << i;
  // Depth-3 chains recirculate twice per packet.
  EXPECT_EQ(w.recirculations, 24u * 2);
  EXPECT_EQ(w.parse_errors, 0u);
}

TEST(ScenarioFleet, ChurnDoesNotDisturbCanonicalFlows) {
  ScenarioFleet fleet(small_opts(4, 2));
  const std::uint64_t epoch0 = fleet.engine().epoch();
  std::size_t issued = 0;
  for (std::size_t i = 0; i < fleet.tenants(); ++i)
    issued += fleet.churn_tenant(i, 20);
  EXPECT_GE(issued, 4u * 20u);
  // Each churn_tenant call is one transaction = one epoch bump.
  EXPECT_EQ(fleet.engine().epoch(), epoch0 + fleet.tenants());

  fleet.inject_wave(3);
  const WaveResult w = fleet.drain_wave();
  EXPECT_TRUE(w.all_delivered);

  // The window bounds per-position entries: flow rules + churn_window.
  for (std::size_t i = 0; i < fleet.tenants(); ++i)
    for (std::size_t pos = 0; pos < 2; ++pos)
      EXPECT_LE(fleet.installed_rules(i, pos),
                fleet.options().churn_window + 4);
}

TEST(ScenarioFleet, ChurnInterleavedWithTraffic) {
  ScenarioFleet fleet(small_opts(4, 3));
  for (std::size_t round = 0; round < 5; ++round) {
    fleet.inject_wave(4);
    fleet.churn_tenant(round % fleet.tenants(), 10);  // while packets flow
    const WaveResult w = fleet.drain_wave();
    EXPECT_TRUE(w.all_delivered) << "round " << round;
  }
}

TEST(ScenarioFleet, HotSwapKeepsFlowDeliveredAndChangesNf) {
  ScenarioFleet fleet(small_opts(3, 3));
  const auto chain_before = fleet.tenant(1).chain;
  const std::uint64_t epoch0 = fleet.engine().epoch();

  fleet.inject_wave(5);
  const hp4::VdevId nv = fleet.hot_swap(1);  // swap mid-wave
  const WaveResult w = fleet.drain_wave();
  EXPECT_TRUE(w.all_delivered);

  // One transaction, one epoch bump.
  EXPECT_EQ(fleet.engine().epoch(), epoch0 + 1);
  EXPECT_NE(fleet.tenant(1).chain, chain_before);
  EXPECT_TRUE(fleet.controller().dpmu().has_vdev(nv));
  // The swapped-out vdev is gone: still exactly depth vdevs per tenant.
  EXPECT_EQ(fleet.controller().dpmu().vdev_ids().size(), 9u);

  // Swapping repeatedly cycles through the catalog without breaking flows.
  for (int k = 0; k < 6; ++k) fleet.hot_swap(1);
  fleet.inject_wave(2);
  EXPECT_TRUE(fleet.drain_wave().all_delivered);
}

TEST(ScenarioFleet, SnapshotRestoreRoundTripsASlice) {
  ScenarioFleet fleet(small_opts(3, 2));
  const auto snap = fleet.snapshot_tenant(2);
  const auto chain_at_snap = fleet.tenant(2).chain;

  // Mutate the slice heavily: churn plus a hot-swap.
  fleet.churn_tenant(2, 30);
  fleet.hot_swap(2);
  EXPECT_NE(fleet.tenant(2).chain, chain_at_snap);

  fleet.restore_tenant(2, snap);
  EXPECT_EQ(fleet.tenant(2).chain, chain_at_snap);
  for (std::size_t pos = 0; pos < 2; ++pos)
    EXPECT_EQ(fleet.installed_rules(2, pos), snap.rules[pos].size());

  fleet.inject_wave(3);
  EXPECT_TRUE(fleet.drain_wave().all_delivered);
}

TEST(ScenarioFleet, VmPathDeliversWithZeroFallbacks) {
  FleetOptions o = small_opts(4, 3);
  o.vm_path = true;
  ScenarioFleet fleet(o);
  fleet.inject_wave(6);
  const WaveResult w = fleet.drain_wave();
  EXPECT_TRUE(w.all_delivered);

  // Every worker served every packet from bytecode.
  const auto diag = fleet.engine().packet_path_diagnostics();
  EXPECT_EQ(diag.at("packets_bytecode"), 24u);
  EXPECT_EQ(diag.at("packets_fallback"), 0u);
}

TEST(ScenarioFleet, DurableFleetRecoversAfterRestart) {
  const std::string dir =
      testing::TempDir() + "/fleet_recover_" +
      std::to_string(::getpid());
  std::uint64_t digest = 0;
  {
    FleetOptions o = small_opts(3, 2);
    o.durable_dir = dir;
    ScenarioFleet fleet(o);
    fleet.churn_tenant(0, 10);
    fleet.hot_swap(1);
    fleet.inject_wave(2);
    EXPECT_TRUE(fleet.drain_wave().all_delivered);
    digest = fleet.store()->digest();
  }
  // A fresh store over the same directory replays to the same state.
  state::DurableController st(dir);
  EXPECT_TRUE(st.recovery().digest_ok);
  EXPECT_EQ(st.digest(), digest);
}

TEST(ScenarioFleet, RejectsBadGeometry) {
  FleetOptions o;
  o.tenants = 0;
  EXPECT_THROW(ScenarioFleet{o}, util::ConfigError);
  o.tenants = 1;
  o.chain_depth = 5;  // no spare catalog kind left for hot-swap
  EXPECT_THROW(ScenarioFleet{o}, util::ConfigError);
}

}  // namespace
}  // namespace hyper4
