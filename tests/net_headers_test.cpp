#include "net/headers.h"

#include <gtest/gtest.h>

#include "net/checksum.h"
#include "util/error.h"

namespace hyper4::net {
namespace {

TEST(Mac, StringRoundTrip) {
  MacAddr m = mac_from_string("00:11:22:aa:bb:cc");
  EXPECT_EQ(mac_to_string(m), "00:11:22:aa:bb:cc");
  EXPECT_EQ(mac_to_u64(m), 0x001122aabbccull);
  EXPECT_EQ(mac_from_u64(0x001122aabbccull), m);
}

TEST(Mac, RejectsMalformed) {
  EXPECT_THROW(mac_from_string("00:11:22:aa:bb"), util::ParseError);
  EXPECT_THROW(mac_from_string("nonsense"), util::ParseError);
}

TEST(Ipv4, StringRoundTrip) {
  EXPECT_EQ(ipv4_from_string("10.0.0.1"), 0x0a000001u);
  EXPECT_EQ(ipv4_to_string(0xc0a80101u), "192.168.1.1");
  EXPECT_THROW(ipv4_from_string("1.2.3"), util::ParseError);
  EXPECT_THROW(ipv4_from_string("1.2.3.256"), util::ParseError);
}

TEST(Checksum, KnownVector) {
  // RFC 1071 example-style check: header with checksum zero.
  const std::uint8_t hdr[] = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40,
                              0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
                              0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7};
  EXPECT_EQ(internet_checksum(hdr), 0xb861);
}

TEST(Checksum, VerifiesToZero) {
  const std::uint8_t hdr[] = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40,
                              0x00, 0x40, 0x11, 0xb8, 0x61, 0xc0, 0xa8,
                              0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7};
  EXPECT_EQ(internet_checksum(hdr), 0x0000);
}

TEST(Checksum, OddLengthPads) {
  const std::uint8_t one[] = {0xff};
  EXPECT_EQ(internet_checksum(one), static_cast<std::uint16_t>(~0xff00 & 0xffff));
}

TEST(ArpRequest, SerializesAndReads) {
  MacAddr sender = mac_from_string("02:00:00:00:00:01");
  Packet p = make_arp_request(sender, ipv4_from_string("10.0.0.1"),
                              ipv4_from_string("10.0.0.2"));
  EXPECT_EQ(p.size(), 60u);  // 42 bytes padded to the Ethernet minimum
  auto eth = read_eth(p);
  ASSERT_TRUE(eth);
  EXPECT_EQ(eth->ethertype, kEtherTypeArp);
  EXPECT_EQ(mac_to_u64(eth->dst), 0xffffffffffffull);
  auto arp = read_arp(p);
  ASSERT_TRUE(arp);
  EXPECT_EQ(arp->oper, kArpOpRequest);
  EXPECT_EQ(arp->spa, ipv4_from_string("10.0.0.1"));
  EXPECT_EQ(arp->tpa, ipv4_from_string("10.0.0.2"));
}

TEST(ArpReply, Fields) {
  MacAddr s = mac_from_string("02:00:00:00:00:0a");
  MacAddr t = mac_from_string("02:00:00:00:00:0b");
  Packet p = make_arp_reply(s, ipv4_from_string("10.0.0.5"), t,
                            ipv4_from_string("10.0.0.6"));
  auto arp = read_arp(p);
  ASSERT_TRUE(arp);
  EXPECT_EQ(arp->oper, kArpOpReply);
  EXPECT_EQ(arp->sha, s);
  EXPECT_EQ(arp->tha, t);
}

TEST(Ipv4Tcp, ChecksumAndLengthsComputed) {
  EthHeader eth;
  eth.src = mac_from_string("02:00:00:00:00:01");
  eth.dst = mac_from_string("02:00:00:00:00:02");
  Ipv4Header ip;
  ip.src = ipv4_from_string("10.0.0.1");
  ip.dst = ipv4_from_string("10.0.1.1");
  TcpHeader tcp;
  tcp.src_port = 5555;
  tcp.dst_port = 80;
  Packet p = make_ipv4_tcp(eth, ip, tcp, 100);
  EXPECT_EQ(p.size(), kEthHeaderLen + kIpv4HeaderLen + kTcpHeaderLen + 100);

  auto rip = read_ipv4(p);
  ASSERT_TRUE(rip);
  EXPECT_EQ(rip->total_len, kIpv4HeaderLen + kTcpHeaderLen + 100);
  EXPECT_EQ(rip->protocol, kIpProtoTcp);
  // The serialized IPv4 header must checksum to zero.
  EXPECT_EQ(internet_checksum(p.bytes().subspan(kEthHeaderLen, kIpv4HeaderLen)),
            0);
  auto rtcp = read_tcp(p, kEthHeaderLen + kIpv4HeaderLen);
  ASSERT_TRUE(rtcp);
  EXPECT_EQ(rtcp->dst_port, 80);
}

TEST(Ipv4Udp, LengthFields) {
  EthHeader eth;
  Ipv4Header ip;
  UdpHeader udp;
  udp.src_port = 53;
  udp.dst_port = 1234;
  Packet p = make_ipv4_udp(eth, ip, udp, 8);
  auto rudp = read_udp(p, kEthHeaderLen + kIpv4HeaderLen);
  ASSERT_TRUE(rudp);
  EXPECT_EQ(rudp->length, kUdpHeaderLen + 8);
  auto rip = read_ipv4(p);
  ASSERT_TRUE(rip);
  EXPECT_EQ(rip->total_len, kIpv4HeaderLen + kUdpHeaderLen + 8);
}

TEST(IcmpEcho, ChecksumCoversPayload) {
  EthHeader eth;
  Ipv4Header ip;
  IcmpHeader icmp;
  icmp.identifier = 7;
  icmp.sequence = 9;
  Packet p = make_ipv4_icmp_echo(eth, ip, icmp, 32, 0xab);
  const auto icmp_span =
      p.bytes().subspan(kEthHeaderLen + kIpv4HeaderLen, kIcmpHeaderLen + 32);
  EXPECT_EQ(internet_checksum(icmp_span), 0);
}

TEST(Readers, RejectShortPackets) {
  Packet p(std::vector<std::uint8_t>(10, 0));
  EXPECT_FALSE(read_eth(p));
  EXPECT_FALSE(read_arp(p));
  EXPECT_FALSE(read_ipv4(p));
  EXPECT_FALSE(read_tcp(p, 0));
}

TEST(Packet, TruncateAndHex) {
  Packet p(std::vector<std::uint8_t>{0xde, 0xad, 0xbe, 0xef, 0x00});
  p.truncate(4);
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.to_hex(), "deadbeef");
  p.truncate(100);  // no-op past end
  EXPECT_EQ(p.size(), 4u);
}

}  // namespace
}  // namespace hyper4::net
