// Additional behavioral-model coverage: egress clones, header stacks
// (push/pop), CLI key formats and stateful commands, keyless tables, and
// traversal accounting.
#include <gtest/gtest.h>

#include "bm/cli.h"
#include "net/headers.h"
#include "bm/switch.h"
#include "p4/builder.h"
#include "util/error.h"

namespace hyper4::bm {
namespace {

using p4::Const;
using p4::F;
using p4::Param;
using p4::ProgramBuilder;
using util::BitVec;

net::Packet bytes(std::initializer_list<std::uint8_t> b) {
  return net::Packet(std::vector<std::uint8_t>(b));
}

ProgramBuilder tag_program() {
  ProgramBuilder b("tag");
  b.header_type("tag_t", {{"tag", 8}, {"value", 8}});
  b.header("tag_t", "tag");
  b.parser("start").extract("tag").to_ingress();
  b.action("fwd", {{"port", p4::kPortWidth}})
      .modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec}, Param(0));
  b.action("_drop").drop();
  b.table("t")
      .key_exact({"tag", "tag"})
      .action_ref("fwd")
      .action_ref("_drop")
      .default_action("_drop");
  b.ingress().apply("t");
  return b;
}

TEST(SwitchCloneE2E, CloneReentersEgress) {
  ProgramBuilder b = tag_program();
  b.action("stamp_and_clone", {{"v", 8}})
      .modify_field({"tag", "value"}, Param(0))
      .clone_e2e(Const(32, 9));
  b.action("nop").no_op();
  // Egress: stamp the first pass and clone it; the clone (instance_type 4)
  // must not clone again or we'd loop — key on instance_type.
  b.table("e")
      .key_exact({p4::kStandardMetadata, p4::kFieldInstanceType})
      .action_ref("stamp_and_clone")
      .action_ref("nop")
      .default_action("nop");
  b.egress().apply("e");
  Switch sw(b.build());
  sw.mirror_add(9, 5);
  sw.table_add("t", "fwd", {KeyParam::exact(BitVec(8, 1))}, {BitVec(9, 2)});
  sw.table_add("e", "stamp_and_clone",
               {KeyParam::exact(BitVec(8, 0))},  // NORMAL packets only
               {BitVec(8, 0xEE)});
  auto res = sw.inject(0, bytes({1, 0}));
  EXPECT_EQ(res.clones_e2e, 1u);
  ASSERT_EQ(res.outputs.size(), 2u);
  std::vector<std::uint16_t> ports{res.outputs[0].port, res.outputs[1].port};
  std::sort(ports.begin(), ports.end());
  EXPECT_EQ(ports, (std::vector<std::uint16_t>{2, 5}));
}

TEST(SwitchStacks, PushShiftsElementsUp) {
  ProgramBuilder b("push");
  b.header_type("b_t", {{"v", 8}});
  b.header_stack("b_t", "st", 3);
  b.parser("start").extract("st").extract("st").to_ingress();
  b.action("grow", {{"port", p4::kPortWidth}})
      .prim(p4::Primitive::kPush, {p4::Hdr("st"), Const(8, 1)})
      .modify_field({"st[0]", "v"}, Const(8, 0x99))
      .modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec}, Param(0));
  b.table("t").key_exact({"st[0]", "v"}).action_ref("grow");
  b.raw().tables[0].default_action = "";
  b.ingress().apply("t");
  Switch sw(b.build());
  sw.table_add("t", "grow", {KeyParam::exact(BitVec(8, 0xAA))}, {BitVec(9, 1)});
  auto res = sw.inject(0, bytes({0xAA, 0xBB, 0xCC}));
  ASSERT_EQ(res.outputs.size(), 1u);
  // New element 0x99 in front; old elements shifted; payload intact.
  EXPECT_EQ(res.outputs[0].packet, bytes({0x99, 0xAA, 0xBB, 0xCC}));
}

TEST(SwitchStacks, PopShiftsElementsDown) {
  ProgramBuilder b("pop");
  b.header_type("b_t", {{"v", 8}});
  b.header_stack("b_t", "st", 3);
  b.parser("start").extract("st").extract("st").to_ingress();
  b.action("shrink", {{"port", p4::kPortWidth}})
      .prim(p4::Primitive::kPop, {p4::Hdr("st"), Const(8, 1)})
      .modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec}, Param(0));
  b.table("t").key_exact({"st[0]", "v"}).action_ref("shrink");
  b.raw().tables[0].default_action = "";
  b.ingress().apply("t");
  Switch sw(b.build());
  sw.table_add("t", "shrink", {KeyParam::exact(BitVec(8, 0xAA))}, {BitVec(9, 1)});
  auto res = sw.inject(0, bytes({0xAA, 0xBB, 0xCC}));
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].packet, bytes({0xBB, 0xCC}));
}

TEST(SwitchKeyless, TableWithNoKeysRunsDefault) {
  ProgramBuilder b = tag_program();
  b.action("stamp").modify_field({"tag", "value"}, Const(8, 0x7E));
  b.table("always").action_ref("stamp").default_action("stamp");
  b.ingress().then_apply("always");
  Switch sw(b.build());
  sw.table_add("t", "fwd", {KeyParam::exact(BitVec(8, 1))}, {BitVec(9, 2)});
  auto res = sw.inject(0, bytes({1, 0}));
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].packet, bytes({1, 0x7E}));
}

// --- CLI key formats -------------------------------------------------------------

class CliFormats : public ::testing::Test {
 protected:
  CliFormats() {
    ProgramBuilder b("fmt");
    b.header_type("h_t", {{"mac", 48}, {"ip", 32}, {"port", 16}});
    b.header("h_t", "h");
    b.parser("start").extract("h").to_ingress();
    b.action("fwd", {{"p", p4::kPortWidth}})
        .modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec}, Param(0));
    b.action("nop").no_op();
    b.table("t_lpm").key_lpm({"h", "ip"}).action_ref("fwd").default_action("nop");
    b.table("t_rng").key_range({"h", "port"}).action_ref("fwd").default_action("nop");
    b.table("t_mac").key_exact({"h", "mac"}).action_ref("fwd").default_action("nop");
    auto ing = b.ingress();
    ing.apply("t_mac");
    ing.then_apply("t_lpm");
    ing.then_apply("t_rng");
    sw_ = std::make_unique<Switch>(b.build());
  }
  std::unique_ptr<Switch> sw_;
};

TEST_F(CliFormats, LpmSyntax) {
  auto r = run_cli_command(*sw_, "table_add t_lpm fwd 10.1.0.0/16 => 3");
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_FALSE(run_cli_command(*sw_, "table_add t_lpm fwd 10.1.0.0 => 3").ok);
}

TEST_F(CliFormats, RangeSyntaxAndPriority) {
  auto r = run_cli_command(*sw_, "table_add t_rng fwd 100->200 => 4 7");
  ASSERT_TRUE(r.ok) << r.message;
  // Ranges require a priority.
  EXPECT_FALSE(run_cli_command(*sw_, "table_add t_rng fwd 100->200 => 4").ok);
  EXPECT_FALSE(run_cli_command(*sw_, "table_add t_rng fwd 100 => 4 7").ok);
}

TEST_F(CliFormats, MacFormat) {
  auto r = run_cli_command(*sw_, "table_add t_mac fwd aa:bb:cc:dd:ee:ff => 2");
  ASSERT_TRUE(r.ok) << r.message;
  net::Packet p;
  const auto mac = net::mac_from_string("aa:bb:cc:dd:ee:ff");
  p.append(mac);
  for (std::uint8_t x : {10, 1, 2, 3, 0, 80}) p.append_byte(x);
  auto res = sw_->inject(0, p);
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].port, 2);
}

TEST_F(CliFormats, DeleteAndModifyRoundTrip) {
  auto add = run_cli_command(*sw_, "table_add t_mac fwd 0x010203040506 => 2");
  ASSERT_TRUE(add.ok);
  auto mod = run_cli_command(*sw_, "table_modify t_mac fwd " +
                                       std::to_string(add.handle) + " 5");
  EXPECT_TRUE(mod.ok) << mod.message;
  auto del = run_cli_command(*sw_, "table_delete t_mac " +
                                       std::to_string(add.handle));
  EXPECT_TRUE(del.ok) << del.message;
  EXPECT_FALSE(
      run_cli_command(*sw_, "table_delete t_mac " + std::to_string(add.handle))
          .ok);
}

TEST(CliStateful, RegisterAndCounterCommands) {
  ProgramBuilder b = tag_program();
  b.reg("r", 16, 4);
  b.counter("c", 4);
  b.action("touch", {{"port", p4::kPortWidth}})
      .count("c", Const(8, 1))
      .modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec}, Param(0));
  b.raw().tables[0].actions.push_back("touch");
  Switch sw(b.build());
  EXPECT_TRUE(run_cli_command(sw, "register_write r 2 0x1234").ok);
  auto rd = run_cli_command(sw, "register_read r 2");
  EXPECT_TRUE(rd.ok);
  EXPECT_EQ(rd.message, "0x1234");
  EXPECT_FALSE(run_cli_command(sw, "register_write r 99 1").ok);

  run_cli_command(sw, "table_add t touch 1 => 2");
  sw.inject(0, bytes({1, 0}));
  auto cr = run_cli_command(sw, "counter_read c 1");
  EXPECT_TRUE(cr.ok);
  EXPECT_NE(cr.message.find("1 packets"), std::string::npos) << cr.message;
  EXPECT_TRUE(run_cli_command(sw, "counter_reset c").ok);
  EXPECT_NE(run_cli_command(sw, "counter_read c 1").message.find("0 packets"),
            std::string::npos);
}

TEST(CliMc, GroupAndMirrorSyntax) {
  Switch sw(tag_program().build());
  EXPECT_TRUE(run_cli_command(sw, "mc_group_set 4 2:1 3:2").ok);
  EXPECT_FALSE(run_cli_command(sw, "mc_group_set 4 2-1").ok);
  EXPECT_TRUE(run_cli_command(sw, "mirroring_add 1 9").ok);
  EXPECT_FALSE(run_cli_command(sw, "mirroring_add 1").ok);
}

TEST(SwitchStats, CumulativeCountersAndReset) {
  Switch sw(tag_program().build());
  sw.table_add("t", "fwd", {KeyParam::exact(BitVec(8, 1))}, {BitVec(9, 2)});
  sw.inject(0, bytes({1, 0}));
  sw.inject(0, bytes({9, 0}));
  EXPECT_EQ(sw.stats().packets_in, 2u);
  EXPECT_EQ(sw.stats().packets_out, 1u);
  EXPECT_EQ(sw.stats().drops, 1u);
  EXPECT_EQ(sw.table("t").applied_count(), 2u);
  EXPECT_EQ(sw.table("t").hit_count(), 1u);
  sw.reset_stats();
  EXPECT_EQ(sw.stats().packets_in, 0u);
  EXPECT_EQ(sw.table("t").applied_count(), 0u);
}

// Unknown-name errors name the nearest real candidates so a typo in a
// command file is a one-glance fix, not a schema hunt.
TEST(CliErrors, UnknownTableSuggestsNearestName) {
  auto b = tag_program();
  Switch sw(b.build());
  const CliResult r = run_cli_command(sw, "table_add tt fwd 1 => 2");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("no table named 'tt'"), std::string::npos)
      << r.message;
  EXPECT_NE(r.message.find("did you mean 't'"), std::string::npos)
      << r.message;
}

TEST(CliErrors, UnknownActionSuggestsNearestName) {
  auto b = tag_program();
  Switch sw(b.build());
  const CliResult r = run_cli_command(sw, "table_add t fwdd 1 => 2");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("no action named 'fwdd'"), std::string::npos)
      << r.message;
  EXPECT_NE(r.message.find("did you mean 'fwd'"), std::string::npos)
      << r.message;
}

TEST(CliErrors, HopelessTypoGetsNoSuggestion) {
  auto b = tag_program();
  Switch sw(b.build());
  const CliResult r =
      run_cli_command(sw, "table_add zzzzzzzzzz fwd 1 => 2");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.message.find("did you mean"), std::string::npos) << r.message;
}

}  // namespace
}  // namespace hyper4::bm
