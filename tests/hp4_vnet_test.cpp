// Virtual networking (§4.6), snapshots (§3.2) and slicing (§3.3): multiple
// virtual devices inside one persona, composed over virtual links and
// hot-swapped at runtime.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "hp4/controller.h"
#include "util/error.h"

namespace hyper4::hp4 {
namespace {

using apps::Rule;

VirtualRule vr(const Rule& r) {
  return VirtualRule{r.table, r.action, r.keys, r.args, r.priority};
}

const char* kMacH1 = "02:00:00:00:00:01";
const char* kMacH2 = "02:00:00:00:00:02";

net::Packet tcp_packet(std::uint16_t dport, std::size_t payload = 64,
                       const char* sip = "10.0.0.1",
                       const char* dip = "10.0.0.2") {
  net::EthHeader eth;
  eth.src = net::mac_from_string(kMacH1);
  eth.dst = net::mac_from_string(kMacH2);
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string(sip);
  ip.dst = net::ipv4_from_string(dip);
  net::TcpHeader tcp;
  tcp.src_port = 40000;
  tcp.dst_port = dport;
  return net::make_ipv4_tcp(eth, ip, tcp, payload);
}

// ---------------------------------------------------------------------------
// Composition: l2_switch → firewall chained inside one persona, compared
// against the same two programs running on two physical switches in series.

class ChainTest : public ::testing::Test {
 protected:
  ChainTest()
      : native_l2_(apps::l2_switch()), native_fw_(apps::firewall()) {
    // Native reference: two separate switches wired 2↔1.
    apps::apply_rules(native_l2_, {apps::l2_forward(kMacH1, 1),
                                   apps::l2_forward(kMacH2, 2)});
    apps::apply_rules(native_fw_, {apps::firewall_l2_forward(kMacH1, 1),
                                   apps::firewall_l2_forward(kMacH2, 2),
                                   apps::firewall_block_tcp_dport(22, 10)});

    // Emulated: both programs in one persona, chained over ports {1,2}.
    l2_ = ctl_.load("l2", apps::l2_switch());
    fw_ = ctl_.load("fw", apps::firewall());
    ctl_.chain({l2_, fw_}, {1, 2});
    for (const auto& r : {apps::l2_forward(kMacH1, 1),
                          apps::l2_forward(kMacH2, 2)}) {
      ctl_.add_rule(l2_, vr(r));
    }
    for (const auto& r : {apps::firewall_l2_forward(kMacH1, 1),
                          apps::firewall_l2_forward(kMacH2, 2),
                          apps::firewall_block_tcp_dport(22, 10)}) {
      ctl_.add_rule(fw_, vr(r));
    }
  }

  // Native reference: run through l2 then firewall.
  std::vector<bm::OutputPacket> native_chain(std::uint16_t port,
                                             const net::Packet& pkt) {
    std::vector<bm::OutputPacket> final;
    for (auto& o1 : native_l2_.inject(port, pkt).outputs) {
      for (auto& o2 : native_fw_.inject(o1.port, o1.packet).outputs) {
        final.push_back(o2);
      }
    }
    return final;
  }

  bm::Switch native_l2_, native_fw_;
  Controller ctl_;
  VdevId l2_ = 0, fw_ = 0;
};

TEST_F(ChainTest, AllowedTrafficTraversesBothPrograms) {
  auto pkt = tcp_packet(80);
  auto native = native_chain(1, pkt);
  auto res = ctl_.dataplane().inject(1, pkt);
  ASSERT_EQ(native.size(), 1u);
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].port, native[0].port);
  EXPECT_EQ(res.outputs[0].packet, native[0].packet);
  // The virtual link is a recirculation (§4.6).
  EXPECT_GE(res.recirculations, 1u);
}

TEST_F(ChainTest, FirewallInChainBlocks) {
  auto pkt = tcp_packet(22);
  EXPECT_TRUE(native_chain(1, pkt).empty());
  EXPECT_TRUE(ctl_.dataplane().inject(1, pkt).outputs.empty());
}

TEST_F(ChainTest, DropInFirstProgramShortCircuits) {
  net::EthHeader eth;
  eth.src = net::mac_from_string(kMacH1);
  eth.dst = net::mac_from_string("02:00:00:00:00:99");  // unknown to l2
  net::Ipv4Header ip;
  auto pkt = net::make_ipv4_tcp(eth, ip, net::TcpHeader{}, 32);
  auto res = ctl_.dataplane().inject(1, pkt);
  EXPECT_TRUE(res.outputs.empty());
  EXPECT_EQ(res.recirculations, 0u);  // never reached the firewall
}

TEST_F(ChainTest, ThreeProgramComposition) {
  // Extend to the paper's Ex.1 C shape: arp_proxy → firewall → router.
  Controller ctl;
  auto arp = ctl.load("arp", apps::arp_proxy());
  auto fw = ctl.load("fw", apps::firewall());
  auto rtr = ctl.load("rtr", apps::ipv4_router());
  ctl.chain({arp, fw, rtr}, {1, 2});
  // Directional wiring: the proxy's client-facing vport (port 1) exits
  // physically — ARP replies turn around there — while its vport toward
  // port 2 stays linked into the firewall.
  ctl.dpmu().set_vport_target_phys(arp, 1);
  ctl.add_rule(arp, vr(apps::arp_proxy_entry("10.0.0.254", "02:aa:00:00:00:ff")));
  ctl.add_rule(arp, vr(apps::arp_proxy_l2_forward(kMacH1, 1)));
  ctl.add_rule(arp, vr(apps::arp_proxy_l2_forward("02:aa:00:00:00:ff", 2)));
  ctl.add_rule(fw, vr(apps::firewall_l2_forward("02:aa:00:00:00:ff", 2)));
  ctl.add_rule(fw, vr(apps::firewall_block_tcp_dport(22, 10)));
  ctl.add_rule(rtr, vr(apps::router_accept_mac("02:aa:00:00:00:ff")));
  ctl.add_rule(rtr, vr(apps::router_route("10.0.1.0", 24, "10.0.1.1", 2)));
  ctl.add_rule(rtr, vr(apps::router_arp_entry("10.0.1.1", kMacH2)));
  ctl.add_rule(rtr, vr(apps::router_port_mac(2, "02:aa:00:00:00:fe")));

  // An ARP request for the gateway is answered by the proxy directly.
  auto req = net::make_arp_request(net::mac_from_string(kMacH1),
                                   net::ipv4_from_string("10.0.0.1"),
                                   net::ipv4_from_string("10.0.0.254"));
  auto res = ctl.dataplane().inject(1, req);
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].port, 1);
  auto arp_h = net::read_arp(res.outputs[0].packet);
  ASSERT_TRUE(arp_h);
  EXPECT_EQ(arp_h->oper, net::kArpOpReply);

  // TCP to the gateway MAC traverses proxy → firewall → router.
  net::EthHeader eth;
  eth.src = net::mac_from_string(kMacH1);
  eth.dst = net::mac_from_string("02:aa:00:00:00:ff");
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string("10.0.0.1");
  ip.dst = net::ipv4_from_string("10.0.1.50");
  net::TcpHeader tcp;
  tcp.dst_port = 80;
  auto pkt = net::make_ipv4_tcp(eth, ip, tcp, 64);
  res = ctl.dataplane().inject(1, pkt);
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].port, 2);
  EXPECT_EQ(res.recirculations, 2u);  // two virtual links traversed
  auto out_ip = net::read_ipv4(res.outputs[0].packet);
  ASSERT_TRUE(out_ip);
  EXPECT_EQ(out_ip->ttl, 63);  // the router stage decremented TTL
  auto out_eth = net::read_eth(res.outputs[0].packet);
  EXPECT_EQ(net::mac_to_string(out_eth->dst), kMacH2);

  // Blocked traffic dies at the firewall stage of the chain.
  tcp.dst_port = 22;
  res = ctl.dataplane().inject(1, net::make_ipv4_tcp(eth, ip, tcp, 64));
  EXPECT_TRUE(res.outputs.empty());
}

// ---------------------------------------------------------------------------
// Snapshots (§3.2): multiple stored configurations, hot-swapped.

TEST(SnapshotTest, HotSwapBetweenStoredPrograms) {
  Controller ctl;
  auto l2 = ctl.load("l2", apps::l2_switch());
  auto fw = ctl.load("fw", apps::firewall());
  ctl.attach_ports(l2, {1, 2});
  ctl.attach_ports(fw, {1, 2});
  ctl.add_rule(l2, vr(apps::l2_forward(kMacH1, 1)));
  ctl.add_rule(l2, vr(apps::l2_forward(kMacH2, 2)));
  ctl.add_rule(fw, vr(apps::firewall_l2_forward(kMacH1, 1)));
  ctl.add_rule(fw, vr(apps::firewall_l2_forward(kMacH2, 2)));
  ctl.add_rule(fw, vr(apps::firewall_block_tcp_dport(80, 10)));

  ctl.define_config("plain_switch", {{std::nullopt, l2}});
  ctl.define_config("filtered", {{std::nullopt, fw}});

  auto pkt = tcp_packet(80);

  ctl.activate_config("plain_switch");
  EXPECT_EQ(ctl.dataplane().inject(1, pkt).outputs.size(), 1u);

  // Swapping the active snapshot is a single dataplane operation.
  ctl.activate_config("filtered");
  EXPECT_EQ(ctl.last_activation_ops(), 1u);
  EXPECT_TRUE(ctl.dataplane().inject(1, pkt).outputs.empty());
  EXPECT_EQ(ctl.active_config(), "filtered");

  // Program state survived the swap: switching back restores behaviour.
  ctl.activate_config("plain_switch");
  EXPECT_EQ(ctl.dataplane().inject(1, pkt).outputs.size(), 1u);
}

TEST(SnapshotTest, UnknownConfigRejected) {
  Controller ctl;
  EXPECT_THROW(ctl.activate_config("nope"), util::ConfigError);
}

// ---------------------------------------------------------------------------
// Slicing (§3.3): ports 1–2 are one logical device, ports 3–4 another.

class SlicingTest : public ::testing::Test {
 protected:
  SlicingTest() {
    l2_ = ctl_.load("slice_a_l2", apps::l2_switch(), "tenant_a");
    fw_ = ctl_.load("slice_b_fw", apps::firewall(), "tenant_b");
    rtr_ = ctl_.load("slice_b_rtr", apps::ipv4_router(), "tenant_b");
    ctl_.attach_ports(l2_, {1, 2});
    ctl_.bind(l2_, 1);
    ctl_.bind(l2_, 2);
    // Slice B: firewall → router over ports 3, 4.
    ctl_.chain({fw_, rtr_}, {3, 4});

    ctl_.add_rule(l2_, vr(apps::l2_forward(kMacH1, 1)), "tenant_a");
    ctl_.add_rule(l2_, vr(apps::l2_forward(kMacH2, 2)), "tenant_a");
    ctl_.add_rule(fw_, vr(apps::firewall_l2_forward("02:aa:00:00:00:ff", 4)),
                  "tenant_b");
    ctl_.add_rule(fw_, vr(apps::firewall_block_tcp_dport(23, 10)), "tenant_b");
    ctl_.add_rule(rtr_, vr(apps::router_accept_mac("02:aa:00:00:00:ff")),
                  "tenant_b");
    ctl_.add_rule(rtr_, vr(apps::router_route("10.1.0.0", 16, "10.1.0.1", 4)),
                  "tenant_b");
    ctl_.add_rule(rtr_, vr(apps::router_arp_entry("10.1.0.1", kMacH2)),
                  "tenant_b");
    ctl_.add_rule(rtr_, vr(apps::router_port_mac(4, "02:aa:00:00:00:ff")),
                  "tenant_b");
  }

  Controller ctl_;
  VdevId l2_ = 0, fw_ = 0, rtr_ = 0;
};

TEST_F(SlicingTest, SliceASwitchesAtL2) {
  auto res = ctl_.dataplane().inject(1, tcp_packet(23));
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].port, 2);  // TCP 23 blocked only in slice B
}

TEST_F(SlicingTest, SliceBFiltersAndRoutes) {
  net::EthHeader eth;
  eth.src = net::mac_from_string(kMacH1);
  eth.dst = net::mac_from_string("02:aa:00:00:00:ff");
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string("10.0.0.1");
  ip.dst = net::ipv4_from_string("10.1.2.3");
  net::TcpHeader tcp;
  tcp.dst_port = 80;
  auto res = ctl_.dataplane().inject(3, net::make_ipv4_tcp(eth, ip, tcp, 64));
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].port, 4);
  auto out_ip = net::read_ipv4(res.outputs[0].packet);
  EXPECT_EQ(out_ip->ttl, 63);

  tcp.dst_port = 23;
  res = ctl_.dataplane().inject(3, net::make_ipv4_tcp(eth, ip, tcp, 64));
  EXPECT_TRUE(res.outputs.empty());
}

TEST_F(SlicingTest, SlicesAreIsolated) {
  // Traffic on slice A ports never reaches slice B's programs even when it
  // would match B's tables; and tenants cannot modify each other's slices.
  auto res = ctl_.dataplane().inject(1, tcp_packet(23));
  EXPECT_FALSE(res.outputs.empty());  // not filtered by B's firewall
  EXPECT_THROW(
      ctl_.add_rule(l2_, vr(apps::l2_forward(kMacH2, 4)), "tenant_b"),
      util::IsolationError);
}

// ---------------------------------------------------------------------------
// Live update (§4.1): adding a program never disturbs active ones.

TEST(LiveUpdate, LoadingProgramsDoesNotDisturbActiveOnes) {
  Controller ctl;
  auto l2 = ctl.load("l2", apps::l2_switch());
  ctl.attach_ports(l2, {1, 2});
  ctl.bind(l2, 1);
  ctl.add_rule(l2, vr(apps::l2_forward(kMacH2, 2)));
  auto pkt = tcp_packet(80);
  const auto before = ctl.dataplane().inject(1, pkt);
  ASSERT_EQ(before.outputs.size(), 1u);

  // Load two more programs and populate them while l2 keeps forwarding.
  auto fw = ctl.load("fw", apps::firewall());
  ctl.attach_ports(fw, {3, 4});
  ctl.bind(fw, 3);
  ctl.add_rule(fw, vr(apps::firewall_block_tcp_dport(80, 10)));
  auto rtr = ctl.load("rtr", apps::ipv4_router());
  ctl.attach_ports(rtr, {5, 6});

  const auto after = ctl.dataplane().inject(1, pkt);
  ASSERT_EQ(after.outputs.size(), 1u);
  EXPECT_EQ(after.outputs[0].packet, before.outputs[0].packet);
  EXPECT_EQ(after.outputs[0].port, before.outputs[0].port);

  // And unloading them doesn't either.
  ctl.dpmu().unload(fw);
  ctl.dpmu().unload(rtr);
  EXPECT_EQ(ctl.dataplane().inject(1, pkt).outputs.size(), 1u);
}

}  // namespace
}  // namespace hyper4::hp4
