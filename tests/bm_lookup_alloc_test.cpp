// Allocation-freeness of the compiled match index (ISSUE 3 acceptance
// criterion): after warm-up, RuntimeTable::lookup must perform ZERO heap
// allocations on every index path — exact (packed-u64 and raw-byte), pure
// LPM (u64 buckets and wide), ternary scan (packed fast path and wide
// word-wise compare) and mixed exact+lpm.
//
// Verified the blunt way: global operator new/new[] are replaced with
// counting versions and the counter is asserted flat across a lookup loop.
// gtest assertions stay outside the measured region (they allocate).
#include "bm/runtime_table.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

// GCC pairs `new` expressions at call sites with the `std::free` inside
// these replaced operators and warns; the pairing is correct by the
// replacement rules (our operator new allocates with std::malloc).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace hyper4::bm {
namespace {

using util::BitVec;

KeySpec exact_spec(std::size_t width) {
  return KeySpec{p4::MatchType::kExact, 0, width, "k"};
}
KeySpec ternary_spec(std::size_t width) {
  return KeySpec{p4::MatchType::kTernary, 0, width, "k"};
}
KeySpec lpm_spec(std::size_t width) {
  return KeySpec{p4::MatchType::kLpm, 0, width, "k"};
}

// Runs `iters` lookups over the probe set and returns the number of heap
// allocations that happened inside the loop. A short warm-up precedes the
// measured region so one-time lazy growth (none is expected, but the test
// should fail on per-lookup allocation, not on cold-start noise) is
// excluded.
std::size_t allocs_during_lookups(
    RuntimeTable& t, const std::vector<std::vector<BitVec>>& probes,
    std::size_t iters = 2000) {
  for (const auto& p : probes) t.lookup(p);
  const std::size_t before =
      g_alloc_count.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < iters; ++i) {
    t.lookup(probes[i % probes.size()]);
  }
  return g_alloc_count.load(std::memory_order_relaxed) - before;
}

TEST(LookupAllocFree, ExactPackedU64) {
  RuntimeTable t("t", {exact_spec(48)}, 2048);
  for (std::uint64_t i = 0; i < 1024; ++i)
    t.add({KeyParam::exact(BitVec(48, i * 2 + 1))}, 0, {});
  ASSERT_EQ(t.index_kind(), RuntimeTable::IndexKind::kExactHash);
  std::vector<std::vector<BitVec>> probes;
  for (std::uint64_t i = 0; i < 64; ++i)
    probes.push_back({BitVec(48, i)});  // ~half hit, half miss
  EXPECT_EQ(allocs_during_lookups(t, probes), 0u);
}

TEST(LookupAllocFree, ExactRawBytes) {
  // 96-bit total key: too wide for the packed-u64 map, uses raw-byte hash.
  RuntimeTable t("t", {exact_spec(48), exact_spec(48)}, 2048);
  for (std::uint64_t i = 0; i < 512; ++i)
    t.add({KeyParam::exact(BitVec(48, i)),
           KeyParam::exact(BitVec(48, ~i & 0xffffffffffffull))},
          0, {});
  ASSERT_EQ(t.index_kind(), RuntimeTable::IndexKind::kExactHash);
  std::vector<std::vector<BitVec>> probes;
  for (std::uint64_t i = 0; i < 64; ++i)
    probes.push_back(
        {BitVec(48, i), BitVec(48, ~i & 0xffffffffffffull)});
  probes.push_back({BitVec(48, 5), BitVec(48, 5)});  // guaranteed miss
  EXPECT_EQ(allocs_during_lookups(t, probes), 0u);
}

TEST(LookupAllocFree, PureLpmU64) {
  RuntimeTable t("t", {lpm_spec(32)}, 2048);
  t.add({KeyParam::lpm(BitVec(32, 0), 0)}, 0, {});
  for (std::uint64_t i = 0; i < 256; ++i)
    t.add({KeyParam::lpm(BitVec(32, (0x0a000000 + (i << 8))),
                         static_cast<std::size_t>(8 + i % 25))},
          0, {});
  ASSERT_EQ(t.index_kind(), RuntimeTable::IndexKind::kPureLpm);
  std::vector<std::vector<BitVec>> probes;
  for (std::uint64_t i = 0; i < 64; ++i)
    probes.push_back({BitVec(32, 0x0a000000 + i * 0x101)});
  EXPECT_EQ(allocs_during_lookups(t, probes), 0u);
}

TEST(LookupAllocFree, PureLpmWide) {
  RuntimeTable t("t", {lpm_spec(128)}, 2048);
  for (std::uint64_t i = 0; i < 64; ++i) {
    BitVec v(128);
    v.set_slice(112, BitVec(16, 0x2000 + i));
    t.add({KeyParam::lpm(v, 16 + (i % 3) * 8)}, 0, {});
  }
  ASSERT_EQ(t.index_kind(), RuntimeTable::IndexKind::kPureLpm);
  std::vector<std::vector<BitVec>> probes;
  for (std::uint64_t i = 0; i < 32; ++i) {
    BitVec p(128);
    p.set_slice(112, BitVec(16, 0x2000 + i * 3));
    p.set_slice(0, BitVec(64, i * 0x9e3779b97f4a7c15ull));
    probes.push_back({p});
  }
  EXPECT_EQ(allocs_during_lookups(t, probes), 0u);
}

TEST(LookupAllocFree, TernaryPackedFastPath) {
  RuntimeTable t("t", {ternary_spec(48)}, 2048);
  for (std::uint64_t i = 0; i < 256; ++i)
    t.add({KeyParam::ternary(BitVec(48, i << 40),
                             BitVec(48, 0xff0000000000ull))},
          0, {}, static_cast<std::int32_t>(i));
  t.add({KeyParam::ternary(BitVec(48, 0), BitVec(48, 0))}, 0, {}, 1000);
  ASSERT_EQ(t.index_kind(), RuntimeTable::IndexKind::kTernaryScan);
  std::vector<std::vector<BitVec>> probes;
  for (std::uint64_t i = 0; i < 64; ++i)
    probes.push_back({BitVec(48, (i << 40) | (i * 77))});
  EXPECT_EQ(allocs_during_lookups(t, probes), 0u);
}

TEST(LookupAllocFree, TernaryWideHyper4Style) {
  // The persona's 800-bit match stage: word-wise masked compare, no fast
  // path possible. This is THE HyPer4 hot path.
  RuntimeTable t("t", {ternary_spec(800)}, 2048);
  for (std::uint64_t i = 0; i < 64; ++i) {
    BitVec v(800);
    v.set_slice(700, BitVec(16, 0x0800 + i));
    t.add({KeyParam::ternary(v, BitVec::mask_range(800, 700, 16))}, 0, {},
          static_cast<std::int32_t>(i));
  }
  BitVec any(800);
  t.add({KeyParam::ternary(any, BitVec(800))}, 0, {}, 1000);
  ASSERT_EQ(t.index_kind(), RuntimeTable::IndexKind::kTernaryScan);
  std::vector<std::vector<BitVec>> probes;
  for (std::uint64_t i = 0; i < 16; ++i) {
    BitVec p(800);
    p.set_slice(700, BitVec(16, 0x0800 + i * 5));
    p.set_slice(0, BitVec(64, i * 0xdeadbeefull));
    probes.push_back({p});
  }
  EXPECT_EQ(allocs_during_lookups(t, probes), 0u);
}

TEST(LookupAllocFree, MixedExactLpmScan) {
  RuntimeTable t("t", {exact_spec(8), lpm_spec(32)}, 2048);
  for (std::uint64_t i = 0; i < 64; ++i)
    t.add({KeyParam::exact(BitVec(8, i % 4)),
           KeyParam::lpm(BitVec(32, 0x0a000000 + (i << 8)), 24)},
          0, {});
  ASSERT_EQ(t.index_kind(), RuntimeTable::IndexKind::kTernaryScan);
  std::vector<std::vector<BitVec>> probes;
  for (std::uint64_t i = 0; i < 32; ++i)
    probes.push_back(
        {BitVec(8, i % 4), BitVec(32, 0x0a000000 + (i << 8) + 7)});
  EXPECT_EQ(allocs_during_lookups(t, probes), 0u);
}

}  // namespace
}  // namespace hyper4::bm
