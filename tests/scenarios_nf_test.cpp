// The five scenario-fleet network functions (src/scenarios/nf.h): native
// functional behavior, persona compilability, native-vs-persona observable
// equivalence on a packet battery, and the FlowView rule walk that chains
// them.
#include <gtest/gtest.h>

#include "bm/switch.h"
#include "check/trace_diff.h"
#include "hp4/controller.h"
#include "net/headers.h"
#include "scenarios/fleet.h"
#include "scenarios/nf.h"

namespace hyper4 {
namespace {

using scenarios::FlowView;
using scenarios::NfKind;
using scenarios::TenantPlan;

net::Packet tcp_packet(const std::string& smac, const std::string& dmac,
                       const std::string& sip, const std::string& dip,
                       std::uint16_t sport, std::uint16_t dport) {
  net::EthHeader eth;
  eth.src = net::mac_from_string(smac);
  eth.dst = net::mac_from_string(dmac);
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string(sip);
  ip.dst = net::ipv4_from_string(dip);
  net::TcpHeader tcp;
  tcp.src_port = sport;
  tcp.dst_port = dport;
  return net::make_ipv4_tcp(eth, ip, tcp, 16);
}

// The canonical flow plus strangers the NFs must treat differently.
std::vector<std::pair<std::uint16_t, net::Packet>> packet_battery(
    const TenantPlan& t) {
  std::vector<std::pair<std::uint16_t, net::Packet>> pkts;
  pkts.emplace_back(1, scenarios::tenant_flow_packet(t));
  pkts.emplace_back(1, tcp_packet(t.client_mac, t.server_mac, "192.168.9.9",
                                  t.vip, 1234, 80));
  pkts.emplace_back(2, tcp_packet(t.server_mac, t.client_mac, t.vip,
                                  t.nat_ip, 80, t.nat_port));
  pkts.emplace_back(1, tcp_packet(t.client_mac, t.server_mac, t.client_ip,
                                  t.vip, t.flow_src_port, 23));
  // Non-IP frame and a UDP datagram exercise the parser branches.
  net::Packet arp = net::make_arp_request(net::mac_from_string(t.client_mac),
                                          net::ipv4_from_string(t.client_ip),
                                          net::ipv4_from_string(t.vip));
  pkts.emplace_back(1, arp);
  net::EthHeader eth;
  eth.src = net::mac_from_string(t.client_mac);
  eth.dst = net::mac_from_string(t.server_mac);
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string(t.client_ip);
  ip.dst = net::ipv4_from_string(t.vip);
  net::UdpHeader udp;
  udp.src_port = 5353;
  udp.dst_port = 53;
  pkts.emplace_back(1, net::make_ipv4_udp(eth, ip, udp, 8));
  return pkts;
}

// Native switch with the NF's canonical-flow rules installed.
struct NativeNf {
  explicit NativeNf(NfKind k, const TenantPlan& t, std::uint16_t egress = 9)
      : sw(scenarios::nf_program(k)) {
    FlowView view = scenarios::initial_flow_view(t);
    for (const auto& r : scenarios::nf_flow_rules(k, t, view, egress))
      apps::apply_rule(sw, r);
    final_view = view;
  }
  bm::Switch sw;
  FlowView final_view;
};

TEST(ScenarioNf, CatalogHasFiveDistinctCompilablePrograms) {
  hp4::Controller ctl;
  std::set<std::string> names;
  for (NfKind k : scenarios::nf_catalog()) {
    const p4::Program p = scenarios::nf_program(k);
    names.insert(p.name);
    EXPECT_NO_THROW(ctl.load(scenarios::nf_name(k), p))
        << "persona rejected " << scenarios::nf_name(k);
  }
  EXPECT_EQ(names.size(), scenarios::kNfCount);
  EXPECT_EQ(scenarios::nf_by_name("lb"), NfKind::kBalancer);
  EXPECT_THROW(scenarios::nf_by_name("l8"), util::ConfigError);
}

TEST(ScenarioNf, NatTranslatesAndRoutes) {
  const TenantPlan t = scenarios::make_tenant_plan(7);
  NativeNf nf(NfKind::kNat, t);

  // Outbound: source rewritten to the allocated binding, routed by dst.
  const bm::ProcessResult out =
      nf.sw.inject(1, scenarios::tenant_flow_packet(t));
  ASSERT_EQ(out.outputs.size(), 1u);
  EXPECT_EQ(out.outputs[0].port, 9);
  const auto ip = net::read_ipv4(out.outputs[0].packet);
  const auto tcp = net::read_tcp(out.outputs[0].packet,
                                 net::kEthHeaderLen + net::kIpv4HeaderLen);
  ASSERT_TRUE(ip && tcp);
  EXPECT_EQ(net::ipv4_to_string(ip->src), t.nat_ip);
  EXPECT_EQ(tcp->src_port, t.nat_port);

  // Inbound to the public binding: dst translated back to the inside host
  // (no route for the inside host installed here, so it drops at nat_fwd —
  // the dnat rewrite is what we assert via a route added for it).
  apps::apply_rule(nf.sw, scenarios::nat_route(t.client_ip, 3));
  const bm::ProcessResult in = nf.sw.inject(
      2, tcp_packet(t.server_mac, t.client_mac, t.vip, t.nat_ip, 80,
                    t.nat_port));
  ASSERT_EQ(in.outputs.size(), 1u);
  EXPECT_EQ(in.outputs[0].port, 3);
  const auto iip = net::read_ipv4(in.outputs[0].packet);
  ASSERT_TRUE(iip);
  EXPECT_EQ(net::ipv4_to_string(iip->dst), t.client_ip);

  // Unknown destination: default drop.
  EXPECT_TRUE(nf.sw
                  .inject(1, tcp_packet(t.client_mac, t.server_mac,
                                        t.client_ip, "9.9.9.9", 1, 2))
                  .outputs.empty());
}

TEST(ScenarioNf, BalancerPinsConnectionsAndRewritesVip) {
  const TenantPlan t = scenarios::make_tenant_plan(3);
  NativeNf nf(NfKind::kBalancer, t);

  // Canonical flow: conn entry pins to the backend, dmac rewritten.
  const bm::ProcessResult r =
      nf.sw.inject(1, scenarios::tenant_flow_packet(t));
  ASSERT_EQ(r.outputs.size(), 1u);
  EXPECT_EQ(r.outputs[0].port, 9);
  const auto eth = net::read_eth(r.outputs[0].packet);
  const auto ip = net::read_ipv4(r.outputs[0].packet);
  ASSERT_TRUE(eth && ip);
  EXPECT_EQ(net::mac_to_string(eth->dst), t.backend_mac);
  EXPECT_EQ(net::ipv4_to_string(ip->dst), t.backend_ip);

  // A new client hitting the VIP takes the vip-table path to the backend.
  const bm::ProcessResult fresh = nf.sw.inject(
      1, tcp_packet(t.client_mac, t.server_mac, "10.200.0.1", t.vip, 555,
                    t.vip_port));
  ASSERT_EQ(fresh.outputs.size(), 1u);
  const auto fip = net::read_ipv4(fresh.outputs[0].packet);
  ASSERT_TRUE(fip);
  EXPECT_EQ(net::ipv4_to_string(fip->dst), t.backend_ip);
}

TEST(ScenarioNf, AclForwardsAndDenies) {
  const TenantPlan t = scenarios::make_tenant_plan(11);
  NativeNf nf(NfKind::kAcl, t);

  EXPECT_EQ(nf.sw.inject(1, scenarios::tenant_flow_packet(t)).outputs.size(),
            1u);
  // Denied source (the flow-rule set carries a 192.168/16 deny).
  EXPECT_TRUE(nf.sw
                  .inject(1, tcp_packet(t.client_mac, t.server_mac,
                                        "192.168.1.2", t.vip,
                                        t.flow_src_port, t.vip_port))
                  .outputs.empty());
  // Denied TCP port 23.
  EXPECT_TRUE(nf.sw
                  .inject(1, tcp_packet(t.client_mac, t.server_mac,
                                        t.client_ip, t.vip, t.flow_src_port,
                                        23))
                  .outputs.empty());
  // Non-IP frames forward at L2 (ACL is validity-gated).
  net::Packet arp = net::make_arp_request(net::mac_from_string(t.client_mac),
                                          net::ipv4_from_string(t.client_ip),
                                          net::ipv4_from_string(t.vip));
  {
    auto b = arp.mutable_bytes();
    const net::MacAddr dst = net::mac_from_string(t.server_mac);
    for (std::size_t i = 0; i < 6; ++i) b[i] = dst[i];
  }
  EXPECT_EQ(nf.sw.inject(1, arp).outputs.size(), 1u);
}

TEST(ScenarioNf, LimiterVerdictsPermitMarkDrop) {
  const TenantPlan t = scenarios::make_tenant_plan(5);
  NativeNf nf(NfKind::kLimiter, t);

  // Permit verdict: delivered unmodified.
  ASSERT_EQ(nf.sw.inject(1, scenarios::tenant_flow_packet(t)).outputs.size(),
            1u);

  // Drop verdict for an attacker source.
  apps::apply_rule(nf.sw, scenarios::limiter_drop("10.66.0.1", 50));
  EXPECT_TRUE(nf.sw
                  .inject(1, tcp_packet(t.client_mac, t.server_mac,
                                        "10.66.0.1", t.vip, 1, 2))
                  .outputs.empty());

  // Mark verdict: forwarded with the DSCP rewritten.
  apps::apply_rule(nf.sw, scenarios::limiter_mark("10.66.0.2", 46 << 2, 51));
  const bm::ProcessResult m = nf.sw.inject(
      1, tcp_packet(t.client_mac, t.server_mac, "10.66.0.2", t.vip, 1, 2));
  ASSERT_EQ(m.outputs.size(), 1u);
  const auto ip = net::read_ipv4(m.outputs[0].packet);
  ASSERT_TRUE(ip);
  EXPECT_EQ(ip->dscp_ecn, 46 << 2);
}

TEST(ScenarioNf, TaggerWritesTelemetryFields) {
  const TenantPlan t = scenarios::make_tenant_plan(21);
  NativeNf nf(NfKind::kTagger, t);

  const net::Packet probe = scenarios::tenant_flow_packet(t);
  const auto before = net::read_ipv4(probe);
  ASSERT_TRUE(before);
  const bm::ProcessResult r = nf.sw.inject(1, probe);
  ASSERT_EQ(r.outputs.size(), 1u);
  const auto ip = net::read_ipv4(r.outputs[0].packet);
  ASSERT_TRUE(ip);
  EXPECT_EQ(ip->identification, t.id & 0xFFFF);          // flow id tag
  EXPECT_EQ(ip->dscp_ecn, (before->dscp_ecn + 1) & 0xFF);  // hop mark
  EXPECT_EQ(ip->ttl, before->ttl - 1);                   // hop TTL
}

// The paper's functional-equivalence claim, extended to the fleet NFs:
// native and persona agree observably on the whole battery.
TEST(ScenarioNf, NativeVsPersonaEquivalence) {
  const TenantPlan t = scenarios::make_tenant_plan(1);
  for (NfKind k : scenarios::nf_catalog()) {
    SCOPED_TRACE(scenarios::nf_name(k));
    NativeNf nf(k, t);

    hp4::Controller ctl;
    const hp4::VdevId id =
        ctl.load(scenarios::nf_name(k), scenarios::nf_program(k));
    ctl.attach_ports(id, {1, 2, 9});
    ctl.bind(id, 1);
    ctl.bind(id, 2);
    FlowView view = scenarios::initial_flow_view(t);
    for (const auto& r : scenarios::nf_flow_rules(k, t, view, 9))
      ctl.add_rule(id, scenarios::to_virtual_rule(r));

    std::size_t i = 0;
    for (const auto& [port, pkt] : packet_battery(t)) {
      const bm::ProcessResult nr = nf.sw.inject(port, pkt);
      const bm::ProcessResult pr = ctl.dataplane().inject(port, pkt);
      auto d = check::diff_observable(nr, pr, i++);
      EXPECT_FALSE(d.has_value())
          << scenarios::nf_name(k) << ": " << d->str();
    }
  }
}

// FlowView composition: a depth-4 persona chain delivers the canonical
// flow with the transforms of every position applied in order.
TEST(ScenarioNf, FlowViewWalksAFullChain) {
  const TenantPlan t = scenarios::make_tenant_plan(2);
  const std::vector<NfKind> chain{NfKind::kNat, NfKind::kBalancer,
                                  NfKind::kAcl, NfKind::kTagger};
  hp4::Controller ctl;
  std::vector<hp4::VdevId> ids;
  for (NfKind k : chain)
    ids.push_back(ctl.load(scenarios::nf_name(k), scenarios::nf_program(k)));
  ctl.chain(ids, {1, 2});
  FlowView view = scenarios::initial_flow_view(t);
  for (std::size_t pos = 0; pos < chain.size(); ++pos)
    for (const auto& r : scenarios::nf_flow_rules(chain[pos], t, view, 2))
      ctl.add_rule(ids[pos], scenarios::to_virtual_rule(r));

  const bm::ProcessResult r =
      ctl.dataplane().inject(1, scenarios::tenant_flow_packet(t));
  ASSERT_EQ(r.outputs.size(), 1u);
  EXPECT_EQ(r.outputs[0].port, 2);
  EXPECT_EQ(r.recirculations, chain.size() - 1);  // one virtual link per hop
  const auto eth = net::read_eth(r.outputs[0].packet);
  const auto ip = net::read_ipv4(r.outputs[0].packet);
  const auto tcp = net::read_tcp(r.outputs[0].packet,
                                 net::kEthHeaderLen + net::kIpv4HeaderLen);
  ASSERT_TRUE(eth && ip && tcp);
  // NAT rewrote the source, the LB the destination, the tagger the id.
  EXPECT_EQ(net::ipv4_to_string(ip->src), t.nat_ip);
  EXPECT_EQ(tcp->src_port, t.nat_port);
  EXPECT_EQ(net::ipv4_to_string(ip->dst), t.backend_ip);
  EXPECT_EQ(net::mac_to_string(eth->dst), t.backend_mac);
  EXPECT_EQ(ip->identification, t.id & 0xFFFF);
  // The final view predicts exactly these values.
  EXPECT_EQ(view.src_ip, t.nat_ip);
  EXPECT_EQ(view.dst_ip, t.backend_ip);
  EXPECT_EQ(view.dst_mac, t.backend_mac);
}

}  // namespace
}  // namespace hyper4
