// Allocation-freeness of the engine's steady-state injection path (ISSUE 8
// acceptance criterion): after warm-up — once the packet arena's recycled
// buffers have grown to the workload's packet size and the per-shard staging
// vectors have reached capacity — inject_batch() must perform ZERO heap
// allocations on the calling thread.
//
// Verified with the operator-new counter pattern from bm_lookup_alloc_test,
// with one twist: the counter is thread_local. Worker threads legitimately
// allocate (ProcessResult vectors, replica state); only the *producer*
// thread's allocations are the injection path under test, and a thread_local
// counter separates the two without any cross-thread coordination.
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <vector>

#include "apps/apps.h"
#include "bench/common.h"
#include "engine/engine.h"
#include "net/headers.h"

namespace {
thread_local std::size_t t_alloc_count = 0;
}  // namespace

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  ++t_alloc_count;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++t_alloc_count;
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace hyper4 {
namespace {

using engine::EngineOptions;
using engine::InjectItem;
using engine::TrafficEngine;

std::vector<InjectItem> tcp_workload(std::size_t flows, std::size_t per_flow) {
  std::vector<InjectItem> items;
  items.reserve(flows * per_flow);
  for (std::size_t k = 0; k < per_flow; ++k) {
    for (std::size_t f = 0; f < flows; ++f) {
      net::EthHeader eth;
      eth.src = net::mac_from_string(bench::kMacH1);
      eth.dst = net::mac_from_string(f % 2 ? bench::kMacH1 : bench::kMacH2);
      net::Ipv4Header ip;
      ip.src = net::ipv4_from_string("10.1.0.1") + static_cast<uint32_t>(f);
      ip.dst = net::ipv4_from_string("10.2.0.1") + static_cast<uint32_t>(f);
      ip.protocol = net::kIpProtoTcp;
      net::TcpHeader tcp;
      tcp.src_port = static_cast<std::uint16_t>(10000 + f);
      tcp.dst_port = 80;
      tcp.seq = static_cast<std::uint32_t>(k);
      items.push_back({static_cast<std::uint16_t>(f % 2 ? 2 : 1),
                       net::make_ipv4_tcp(eth, ip, tcp, 64)});
    }
  }
  return items;
}

TEST(EngineAllocTest, SteadyStateInjectBatchIsAllocationFree) {
  EngineOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 256;
  opts.batch_size = 32;
  opts.collect_results = false;  // throughput mode, the perf-critical config
  TrafficEngine eng(apps::l2_switch(), opts);  // misses drop; fine here

  const auto items = tcp_workload(16, 8);

  // Warm-up waves: grow arena buffers to packet size, let recycled buffers
  // circulate back through the return rings, touch both shard stages.
  for (int wave = 0; wave < 4; ++wave) {
    eng.inject_batch(items);
    (void)eng.drain();
  }

  const std::size_t before = t_alloc_count;
  eng.inject_batch(items);
  const std::size_t during = t_alloc_count - before;
  (void)eng.drain();

  EXPECT_EQ(during, 0u)
      << "steady-state inject_batch allocated on the producer thread";
}

TEST(EngineAllocTest, SteadyStateMovingInjectIsAllocationFree) {
  EngineOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 64;
  opts.batch_size = 16;
  opts.collect_results = false;
  TrafficEngine eng(apps::l2_switch(), opts);  // misses drop; fine here

  const auto items = tcp_workload(4, 4);
  for (int wave = 0; wave < 3; ++wave) {
    for (const auto& it : items) {
      net::Packet p = it.packet;  // copy outside the measured region
      eng.inject(it.port, std::move(p));
    }
    (void)eng.drain();
  }

  // inject() moves a caller-built packet straight through: shard hash, seq,
  // ring push. None of that may touch the heap.
  std::vector<net::Packet> prebuilt;
  prebuilt.reserve(items.size());
  for (const auto& it : items) prebuilt.push_back(it.packet);

  const std::size_t before = t_alloc_count;
  for (std::size_t i = 0; i < prebuilt.size(); ++i) {
    eng.inject(items[i].port, std::move(prebuilt[i]));
  }
  const std::size_t during = t_alloc_count - before;
  (void)eng.drain();

  EXPECT_EQ(during, 0u) << "inject() allocated on the producer thread";
}

}  // namespace
}  // namespace hyper4
