// The ABI overhead gate (ISSUE 9): crossing the C boundary must not cost
// allocations on the hot path. At steady state h4_inject_batch() — which
// has to COPY caller bytes into engine-owned packets — performs exactly as
// many producer-thread heap allocations as the native C++ inject_batch():
// zero. The ABI keeps a persistent staging vector whose net::Packet
// buffers absorb the bytes via capacity-reusing assign(), so after warm-up
// neither the vector nor any packet buffer grows.
//
// Same thread_local operator-new counter harness as engine_alloc_test:
// worker-thread allocations are legitimate; only the calling thread is the
// path under test. The executable's operator new interposes over the
// shared library's allocations too, so the ABI side is fully counted.
#include <hyper4/hyper4.h>

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <vector>

#include "apps/apps.h"
#include "engine/engine.h"

namespace {
thread_local std::size_t t_alloc_count = 0;
}  // namespace

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  ++t_alloc_count;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++t_alloc_count;
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace hyper4 {
namespace {

// 64-byte frames over a few flows so both engine shards see traffic.
std::vector<std::vector<uint8_t>> workload(std::size_t count) {
  std::vector<std::vector<uint8_t>> frames;
  frames.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<uint8_t> b(64, 0);
    b[5] = static_cast<uint8_t>(1 + i % 4);   // dst mac low byte
    b[11] = static_cast<uint8_t>(9 + i % 7);  // src mac low byte (flow id)
    b[12] = 0x08;
    frames.push_back(std::move(b));
  }
  return frames;
}

std::string l2_source() {
  std::ifstream in(std::string(HP4_SOURCE_DIR) + "/examples/p4/l2_switch.p4");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// Steady-state producer-thread allocations of one native inject_batch.
std::size_t native_steady_allocs() {
  engine::EngineOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 256;
  opts.batch_size = 32;
  opts.collect_results = false;
  engine::TrafficEngine eng(apps::l2_switch(), opts);

  const auto frames = workload(64);
  std::vector<engine::InjectItem> items;
  items.reserve(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    net::Packet p;
    p.assign({frames[i].data(), frames[i].size()});
    items.push_back({static_cast<uint16_t>(1 + i % 2), std::move(p)});
  }
  for (int wave = 0; wave < 4; ++wave) {
    eng.inject_batch(items);
    (void)eng.drain();
  }
  const std::size_t before = t_alloc_count;
  eng.inject_batch(items);
  const std::size_t during = t_alloc_count - before;
  (void)eng.drain();
  return during;
}

// Steady-state producer-thread allocations of one h4_inject_batch with the
// same engine geometry and workload.
std::size_t abi_steady_allocs() {
  h4_options opts;
  EXPECT_EQ(H4_OK, h4_options_init(&opts));
  opts.workers = 2;
  opts.queue_capacity = 256;
  opts.batch_size = 32;
  opts.collect_results = 0;
  h4_instance* inst = nullptr;
  EXPECT_EQ(H4_OK, h4_open(&opts, &inst));
  const std::string src = l2_source();
  h4_vdev vd = 0;
  EXPECT_EQ(H4_OK, h4_vdev_load(inst, "l2", src.c_str(), &vd));
  const uint16_t ports[] = {1, 2};
  EXPECT_EQ(H4_OK, h4_vdev_attach_ports(inst, vd, ports, 2));
  EXPECT_EQ(H4_OK, h4_vdev_bind(inst, vd, -1));

  const auto frames = workload(64);
  std::vector<h4_packet> pkts;
  pkts.reserve(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i)
    pkts.push_back(h4_packet{static_cast<uint16_t>(1 + i % 2),
                             frames[i].data(), frames[i].size()});
  for (int wave = 0; wave < 4; ++wave) {
    EXPECT_EQ(H4_OK, h4_inject_batch(inst, pkts.data(), pkts.size()));
    EXPECT_EQ(H4_OK, h4_drain(inst, nullptr));
  }
  const std::size_t before = t_alloc_count;
  const int rc = h4_inject_batch(inst, pkts.data(), pkts.size());
  const std::size_t during = t_alloc_count - before;
  EXPECT_EQ(H4_OK, rc);
  EXPECT_EQ(H4_OK, h4_drain(inst, nullptr));
  EXPECT_EQ(H4_OK, h4_close(inst));
  return during;
}

TEST(AbiOverheadTest, SteadyStateInjectBatchMatchesNativeAllocCount) {
  const std::size_t native = native_steady_allocs();
  const std::size_t abi = abi_steady_allocs();
  // The native steady state is zero (engine_alloc_test's gate); the ABI
  // must not add a single allocation on top of it.
  EXPECT_EQ(0u, native);
  EXPECT_EQ(native, abi)
      << "h4_inject_batch allocates at steady state where the native "
         "inject_batch does not — the C boundary grew a per-call cost";
}

}  // namespace
}  // namespace hyper4
