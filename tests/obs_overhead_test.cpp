// Tracer overhead regression (ISSUE 4 satellite): attaching a
// PipelineTracer must not add heap allocations to the switch's
// packet-processing path — the ring is preallocated and record() only
// writes PODs — and processing with events enabled (timestamps off) must
// stay within a generous constant factor of the untraced path.
//
// Same blunt instrument as bm_lookup_alloc_test.cpp: global operator
// new/new[] replaced with counting versions; gtest assertions stay outside
// the measured regions.
#include "bm/switch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>

#include "apps/apps.h"
#include "net/headers.h"
#include "obs/tracer.h"

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

// GCC pairs `new` expressions at call sites with the `std::free` inside
// these replaced operators and warns; the pairing is correct by the
// replacement rules (our operator new allocates with std::malloc).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace hyper4::bm {
namespace {

net::Packet probe_packet() {
  net::EthHeader eth;
  eth.src = net::mac_from_string("02:00:00:00:00:01");
  eth.dst = net::mac_from_string("02:00:00:00:00:02");
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string("10.0.0.1");
  ip.dst = net::ipv4_from_string("10.0.0.2");
  net::TcpHeader tcp;
  tcp.src_port = 40000;
  tcp.dst_port = 80;
  return net::make_ipv4_tcp(eth, ip, tcp, 64);
}

Switch make_l2() {
  Switch sw(apps::l2_switch());
  apps::apply_rule(sw, apps::l2_forward("02:00:00:00:00:01", 1));
  apps::apply_rule(sw, apps::l2_forward("02:00:00:00:00:02", 2));
  return sw;
}

// Allocations per inject over a warmed-up switch. inject() itself builds
// result vectors (ProcessResult, output packets), so the baseline is not
// zero — the assertion is that tracing adds nothing on top of it.
std::size_t allocs_per_inject(Switch& sw, const net::Packet& pkt,
                              std::size_t iters = 400) {
  for (int i = 0; i < 16; ++i) sw.inject(1, pkt);  // warm-up
  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < iters; ++i) sw.inject(1, pkt);
  return (g_alloc_count.load(std::memory_order_relaxed) - before) / iters;
}

TEST(TracerOverhead, RecordPathAddsZeroAllocationsPerPacket) {
  const net::Packet pkt = probe_packet();

  Switch plain = make_l2();
  const std::size_t base = allocs_per_inject(plain, pkt);

  Switch traced = make_l2();
  obs::TracerOptions topts;  // events on, timestamps off
  topts.capacity = 1u << 12;
  obs::PipelineTracer tracer(topts);
  traced.set_tracer(&tracer);
  const std::size_t with_tracer = allocs_per_inject(traced, pkt);

  EXPECT_EQ(with_tracer, base)
      << "tracing must not allocate on the packet path";
  // Sanity: the tracer actually saw the traffic (ring wrapped or not).
  EXPECT_GT(tracer.total_recorded(), 0u);
}

TEST(TracerOverhead, ProfilingAddsZeroAllocationsPerPacket) {
  const net::Packet pkt = probe_packet();

  Switch plain = make_l2();
  const std::size_t base = allocs_per_inject(plain, pkt);

  Switch profiled = make_l2();
  obs::TracerOptions topts;
  topts.record_events = false;
  topts.profile = true;
  obs::PipelineTracer tracer(topts);
  profiled.set_tracer(&tracer);
  const std::size_t with_profile = allocs_per_inject(profiled, pkt);

  EXPECT_EQ(with_profile, base)
      << "profiling must not allocate on the packet path";
  EXPECT_GT(tracer.profile().stages[0].count, 0u);
}

// Wall-clock guard, deliberately loose: events-only tracing (no clock
// reads) must stay under 3x the untraced time for the same traffic. The
// tight (<2%) bound lives in the bench gate where iteration counts are
// large enough to measure it honestly; this test only catches gross
// regressions (an accidental allocation, formatting, or lock on the
// record path) while staying robust on loaded CI machines.
TEST(TracerOverhead, EventRecordingStaysWithinThreeTimesBaseline) {
  const net::Packet pkt = probe_packet();
  constexpr std::size_t kIters = 4000;

  auto time_injects = [&](Switch& sw) {
    for (int i = 0; i < 64; ++i) sw.inject(1, pkt);  // warm-up
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kIters; ++i) sw.inject(1, pkt);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  Switch plain = make_l2();
  const double base_s = time_injects(plain);

  Switch traced = make_l2();
  obs::TracerOptions topts;
  topts.capacity = 1u << 12;
  obs::PipelineTracer tracer(topts);
  traced.set_tracer(&tracer);
  const double traced_s = time_injects(traced);

  EXPECT_LT(traced_s, base_s * 3.0 + 0.05)
      << "base=" << base_s << "s traced=" << traced_s << "s";
}

}  // namespace
}  // namespace hyper4::bm
