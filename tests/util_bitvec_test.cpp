#include "util/bitvec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <compare>
#include <span>
#include <string>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace hyper4::util {
namespace {

TEST(BitVec, DefaultIsZeroWidth) {
  BitVec v;
  EXPECT_EQ(v.width(), 0u);
  EXPECT_TRUE(v.is_zero());
}

TEST(BitVec, ConstructFromValue) {
  BitVec v(16, 0xabcd);
  EXPECT_EQ(v.width(), 16u);
  EXPECT_EQ(v.to_u64(), 0xabcdu);
}

TEST(BitVec, ValueTruncatedToWidth) {
  BitVec v(8, 0x1ff);
  EXPECT_EQ(v.to_u64(), 0xffu);
}

TEST(BitVec, OnesHasAllBitsSet) {
  BitVec v = BitVec::ones(130);
  EXPECT_EQ(v.popcount(), 130u);
  EXPECT_TRUE(v.get_bit(129));
  EXPECT_FALSE(v.get_bit(130));
}

TEST(BitVec, MaskRange) {
  BitVec m = BitVec::mask_range(32, 8, 16);
  EXPECT_EQ(m.to_u64(), 0x00ffff00u);
}

TEST(BitVec, MaskRangeClampsPastWidth) {
  BitVec m = BitVec::mask_range(16, 8, 100);
  EXPECT_EQ(m.to_u64(), 0xff00u);
  EXPECT_TRUE(BitVec::mask_range(16, 20, 4).is_zero());
}

TEST(BitVec, FromBytesBigEndian) {
  const std::uint8_t data[] = {0x12, 0x34, 0x56};
  BitVec v = BitVec::from_bytes(data);
  EXPECT_EQ(v.width(), 24u);
  EXPECT_EQ(v.to_u64(), 0x123456u);
}

TEST(BitVec, ToBytesRoundTrip) {
  const std::uint8_t data[] = {0xde, 0xad, 0xbe, 0xef, 0x01};
  BitVec v = BitVec::from_bytes(data);
  auto out = v.to_bytes();
  EXPECT_EQ(out, std::vector<std::uint8_t>(data, data + 5));
}

TEST(BitVec, FromHexParses) {
  BitVec v = BitVec::from_hex(32, "0xdeadBEEF");
  EXPECT_EQ(v.to_u64(), 0xdeadbeefu);
  EXPECT_EQ(BitVec::from_hex(16, "ff").to_u64(), 0xffu);
}

TEST(BitVec, FromHexRejectsGarbage) {
  EXPECT_THROW(BitVec::from_hex(8, "0xzz"), ParseError);
  EXPECT_THROW(BitVec::from_hex(8, ""), ParseError);
}

TEST(BitVec, ToHexPadsToWidth) {
  EXPECT_EQ(BitVec(16, 0xf).to_hex(), "000f");
  EXPECT_EQ(BitVec(9, 0x1ff).to_hex(), "1ff");
}

TEST(BitVec, ToDec) {
  EXPECT_EQ(BitVec(8, 0).to_dec(), "0");
  EXPECT_EQ(BitVec(64, 1234567890123ull).to_dec(), "1234567890123");
  // 2^100 = 1267650600228229401496703205376
  BitVec v(101);
  v.set_bit(100, true);
  EXPECT_EQ(v.to_dec(), "1267650600228229401496703205376");
}

TEST(BitVec, SliceBasic) {
  BitVec v(32, 0x12345678);
  EXPECT_EQ(v.slice(0, 8).to_u64(), 0x78u);
  EXPECT_EQ(v.slice(8, 8).to_u64(), 0x56u);
  EXPECT_EQ(v.slice(16, 16).to_u64(), 0x1234u);
}

TEST(BitVec, SlicePastEndZeroFills) {
  BitVec v(16, 0xffff);
  BitVec s = v.slice(8, 16);
  EXPECT_EQ(s.width(), 16u);
  EXPECT_EQ(s.to_u64(), 0x00ffu);
}

TEST(BitVec, SetSlice) {
  BitVec v(32);
  v.set_slice(8, BitVec(8, 0xab));
  EXPECT_EQ(v.to_u64(), 0xab00u);
  v.set_slice(28, BitVec(8, 0xff));  // upper bits dropped
  EXPECT_EQ(v.to_u64(), 0xf000ab00u);
}

TEST(BitVec, SliceAcrossWordBoundary) {
  BitVec v(128);
  v.set_slice(60, BitVec(8, 0xa5));
  EXPECT_EQ(v.slice(60, 8).to_u64(), 0xa5u);
  EXPECT_EQ(v.slice(58, 12).to_u64(), 0xa5u << 2);
}

TEST(BitVec, BitwiseOps) {
  BitVec a(16, 0xf0f0), b(16, 0x0ff0);
  EXPECT_EQ((a & b).to_u64(), 0x00f0u);
  EXPECT_EQ((a | b).to_u64(), 0xfff0u);
  EXPECT_EQ((a ^ b).to_u64(), 0xff00u);
  EXPECT_EQ((~a).to_u64(), 0x0f0fu);
}

TEST(BitVec, MixedWidthOpsZeroExtend) {
  BitVec a(8, 0xff), b(16, 0x0100);
  EXPECT_EQ((a | b).width(), 16u);
  EXPECT_EQ((a | b).to_u64(), 0x01ffu);
  EXPECT_EQ((a & b).to_u64(), 0u);
}

TEST(BitVec, Shifts) {
  BitVec v(16, 0x00ff);
  EXPECT_EQ((v << 4).to_u64(), 0x0ff0u);
  EXPECT_EQ((v << 12).to_u64(), 0xf000u);
  EXPECT_EQ((v >> 4).to_u64(), 0x000fu);
  EXPECT_EQ((v << 16).to_u64(), 0u);
  EXPECT_EQ((v >> 16).to_u64(), 0u);
}

TEST(BitVec, WideShiftAcrossWords) {
  BitVec v(200, 1);
  BitVec s = v << 150;
  EXPECT_TRUE(s.get_bit(150));
  EXPECT_EQ(s.popcount(), 1u);
  EXPECT_EQ((s >> 150).to_u64(), 1u);
}

TEST(BitVec, AddWithCarryAcrossWords) {
  BitVec a = BitVec::ones(128);
  BitVec one(128, 1);
  EXPECT_TRUE((a + one).is_zero());  // wraps mod 2^128
  BitVec b(128, 0xffffffffffffffffull);
  BitVec r = b + one;
  EXPECT_TRUE(r.get_bit(64));
  EXPECT_EQ(r.popcount(), 1u);
}

TEST(BitVec, SubtractWraps) {
  BitVec a(8, 5), b(8, 7);
  EXPECT_EQ((a - b).to_u64(), 254u);
  EXPECT_EQ((b - a).to_u64(), 2u);
}

TEST(BitVec, ComparisonIsValueBased) {
  EXPECT_EQ(BitVec(8, 1), BitVec(16, 1));
  EXPECT_LT(BitVec(8, 1), BitVec(64, 2));
  EXPECT_GT(BitVec(128, 5), BitVec(8, 4));
}

TEST(BitVec, ToU64ThrowsWhenTooWide) {
  BitVec v(100);
  v.set_bit(70, true);
  EXPECT_THROW(v.to_u64(), ConfigError);
  EXPECT_EQ(v.low_u64(), 0u);
}

TEST(BitVec, ResizedTruncatesAndExtends) {
  BitVec v(16, 0xabcd);
  EXPECT_EQ(v.resized(8).to_u64(), 0xcdu);
  EXPECT_EQ(v.resized(32).to_u64(), 0xabcdu);
  EXPECT_EQ(v.resized(32).width(), 32u);
}

TEST(BitVec, SetBitOutOfRangeIgnored) {
  BitVec v(8);
  v.set_bit(9, true);
  EXPECT_TRUE(v.is_zero());
  EXPECT_FALSE(v.get_bit(100));
}

// Property sweep: slice/set_slice round-trips at many widths and offsets.
class BitVecSliceProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BitVecSliceProperty, SetThenGetRoundTrips) {
  const auto [width, offset] = GetParam();
  Rng rng(static_cast<std::uint64_t>(width * 1000 + offset));
  BitVec host(800);
  BitVec payload = rng.bits(static_cast<std::size_t>(width));
  host.set_slice(static_cast<std::size_t>(offset), payload);
  EXPECT_EQ(host.slice(static_cast<std::size_t>(offset),
                       static_cast<std::size_t>(width)),
            payload);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BitVecSliceProperty,
    ::testing::Combine(::testing::Values(1, 7, 8, 13, 32, 48, 64, 65, 128, 200),
                       ::testing::Values(0, 1, 7, 63, 64, 100, 512)));

// Property: bytes→BitVec→bytes round trip at various sizes.
class BitVecBytesProperty : public ::testing::TestWithParam<int> {};

TEST_P(BitVecBytesProperty, RoundTrips) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  auto bytes = rng.bytes(static_cast<std::size_t>(GetParam()));
  BitVec v = BitVec::from_bytes(bytes);
  EXPECT_EQ(v.to_bytes(), bytes);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BitVecBytesProperty,
                         ::testing::Values(1, 2, 3, 7, 8, 9, 20, 64, 100, 255));

// Property: (a + b) - b == a at wide widths.
class BitVecArithProperty : public ::testing::TestWithParam<int> {};

TEST_P(BitVecArithProperty, AddSubInverse) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const std::size_t w = static_cast<std::size_t>(GetParam());
  for (int i = 0; i < 20; ++i) {
    BitVec a = rng.bits(w), b = rng.bits(w);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a ^ b) ^ b, a);
    EXPECT_EQ(~~a, a);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BitVecArithProperty,
                         ::testing::Values(8, 16, 48, 64, 65, 256, 800));

// ---------------------------------------------------------------------------
// Allocation-free match helpers (the compiled index's comparison kernel).
// Each helper must agree with the equivalent resized()/mask_range()
// formulation it replaces.

TEST(BitVec, AssignReinitializesInPlace) {
  BitVec v(800, 7);
  v.assign(16, 0xabcd);
  EXPECT_EQ(v.width(), 16u);
  EXPECT_EQ(v.to_u64(), 0xabcdu);
  v.assign(8, 0x1ff);  // value truncated to width, like the constructor
  EXPECT_EQ(v.to_u64(), 0xffu);
  v.assign(0, 0);
  EXPECT_EQ(v.width(), 0u);
}

TEST(BitVec, ResizedSameWidthIsIdentity) {
  BitVec v(48, 0xabcdef);
  EXPECT_EQ(v.resized(48), v);
  EXPECT_EQ(v.resized(48).width(), 48u);
}

class BitVecMatchProperty : public ::testing::TestWithParam<int> {};

TEST_P(BitVecMatchProperty, MaskedEqualsAgreesWithAndCompare) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  const std::size_t w = static_cast<std::size_t>(GetParam());
  for (int i = 0; i < 30; ++i) {
    BitVec key = rng.bits(w), value = rng.bits(w), mask = rng.bits(w);
    EXPECT_EQ(key.masked_equals(value, mask),
              (key & mask) == (value & mask));
    // A nearby value differing in one masked bit must not match.
    BitVec close = key;
    EXPECT_TRUE(close.masked_equals(key, mask));
  }
}

TEST_P(BitVecMatchProperty, PrefixEqualsAgreesWithMaskRange) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 15485863);
  const std::size_t w = static_cast<std::size_t>(GetParam());
  for (int i = 0; i < 30; ++i) {
    BitVec key = rng.bits(w), value = rng.bits(w);
    for (const std::size_t plen :
         {std::size_t{0}, std::size_t{1}, w / 2, w - 1, w}) {
      const BitVec m = plen == 0 ? BitVec(w)
                                 : BitVec::mask_range(w, w - plen, plen);
      EXPECT_EQ(key.prefix_equals(value, w, plen),
                (key & m) == (value & m))
          << "w=" << w << " plen=" << plen;
      EXPECT_TRUE(key.prefix_equals(key, w, plen));
    }
  }
}

TEST_P(BitVecMatchProperty, ResizedComparisonsAgreeWithAllocatingForms) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 32452843);
  const std::size_t w = static_cast<std::size_t>(GetParam());
  for (int i = 0; i < 30; ++i) {
    // Probe is wider than the stored value (the switch hands the table a
    // full-width field; entries store width-w canonical values).
    BitVec probe = rng.bits(w + 16), value = rng.bits(w);
    EXPECT_EQ(probe.equals_resized(value, w), probe.resized(w) == value);
    const auto ord = probe.compare_resized(value, w);
    const BitVec pr = probe.resized(w);
    EXPECT_EQ(ord == std::strong_ordering::less, pr < value);
    EXPECT_EQ(ord == std::strong_ordering::equal, pr == value);
    EXPECT_EQ(ord == std::strong_ordering::greater, value < pr);
  }
}

TEST_P(BitVecMatchProperty, WriteBytesMatchesResizedToBytes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 49979687);
  const std::size_t w = static_cast<std::size_t>(GetParam());
  for (int i = 0; i < 10; ++i) {
    BitVec v = rng.bits(w + 8);
    const auto want = v.resized(w).to_bytes();
    std::vector<std::uint8_t> got(want.size());
    EXPECT_EQ(v.write_bytes(std::span<std::uint8_t>(got), w), want.size());
    EXPECT_EQ(got, want);
    std::string s;
    v.append_bytes(s, w);
    EXPECT_EQ(s.size(), want.size());
    EXPECT_TRUE(std::equal(want.begin(), want.end(),
                           reinterpret_cast<const std::uint8_t*>(s.data())));
    EXPECT_EQ(v.low_bits_u64(std::min<std::size_t>(w, 64)),
              v.resized(std::min<std::size_t>(w, 64)).to_u64());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BitVecMatchProperty,
                         ::testing::Values(8, 16, 48, 63, 64, 65, 128, 800));

}  // namespace
}  // namespace hyper4::util
