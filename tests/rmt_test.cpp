// RMT resource model (§6.5): stage expansion arithmetic and the persona
// fit analysis.
#include "rmt/rmt.h"

#include <gtest/gtest.h>

#include "hp4/persona.h"

namespace hyper4::rmt {
namespace {

TEST(Rmt, ExactMatchFitsOneStageUpToSramWidth) {
  RmtSpec spec;
  EXPECT_EQ(physical_stages_for(spec, {"t", 640, false}), 1u);
  EXPECT_EQ(physical_stages_for(spec, {"t", 641, false}), 2u);
  EXPECT_EQ(physical_stages_for(spec, {"t", 48, false}), 1u);
}

TEST(Rmt, TernaryCostsValuePlusMask) {
  RmtSpec spec;
  // 320 bits ternary → 640 TCAM bits → exactly one stage.
  EXPECT_EQ(physical_stages_for(spec, {"t", 320, true}), 1u);
  // The paper's example: 800-bit ternary → 1600 TCAM bits → 3 stages.
  EXPECT_EQ(physical_stages_for(spec, {"t", 800, true}), 3u);
}

TEST(Rmt, KeylessTableStillTakesAStage) {
  EXPECT_EQ(physical_stages_for(RmtSpec{}, {"t", 0, false}), 1u);
}

TEST(Rmt, FitAggregates) {
  RmtSpec spec;
  std::vector<StageRequirement> ingress(30, {"x", 64, false});
  ingress.push_back({"wide", 800, true});  // +3
  std::vector<StageRequirement> egress(2, {"e", 64, false});
  auto r = fit(spec, 3312, ingress, egress);
  EXPECT_EQ(r.ingress_logical, 31u);
  EXPECT_EQ(r.ingress_physical, 33u);
  EXPECT_FALSE(r.ingress_fits);  // 33 > 32
  EXPECT_TRUE(r.egress_fits);
  EXPECT_TRUE(r.phv_fits);
  EXPECT_FALSE(r.fits());
  EXPECT_EQ(r.ingress_capacity_pct(spec), 103u);
}

TEST(Rmt, PaperExampleSixtyPercentOver) {
  // 51 physical ingress stages on a 32-stage chip ≈ 160% of capacity.
  RmtSpec spec;
  std::vector<StageRequirement> ingress(44, {"x", 300, false});
  ingress.push_back({"wide1", 800, true});
  ingress.push_back({"wide2", 800, true});
  auto r = fit(spec, 3312, ingress, {});
  EXPECT_EQ(r.ingress_physical, 50u);
  EXPECT_EQ(r.ingress_capacity_pct(spec), 156u);
}

TEST(Rmt, PersonaPhvFootprintFitsRmt) {
  // The paper reports 3312 of RMT's 4096 PHV bits; our persona layout
  // (which carries two wide scratch fields) must still fit.
  hp4::PersonaGenerator gen{hp4::PersonaConfig{}};
  const std::size_t bits = phv_bits(gen.generate());
  EXPECT_GT(bits, 3000u);
  EXPECT_LE(bits, RmtSpec{}.phv_bits);
}

TEST(Rmt, PhvBitsCountsStacks) {
  p4::Program p;
  p.name = "t";
  p.header_types.push_back(p4::HeaderType{"b_t", {{"b", 8}}});
  p.instances.push_back(p4::HeaderInstance{"st", "b_t", false, 10});
  EXPECT_EQ(phv_bits(p),
            80u + p4::standard_metadata_type().width_bits());
}

}  // namespace
}  // namespace hyper4::rmt
