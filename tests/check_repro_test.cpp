// Committed regression fixtures: minimized repros emitted by
// `hyper4_check --mutate ...` are checked in under tests/fixtures/ and must
// stay equivalent forever. Each fixture is also re-checked against the
// mutation that produced it, proving it still exercises the guarded path.
#include <gtest/gtest.h>

#include <string>

#include "check/diff_runner.h"
#include "check/repro.h"
#include "hp4/p4_emit.h"
#include "util/error.h"

namespace hyper4::check {
namespace {

std::string fixture(const std::string& name) {
  return std::string(HP4_SOURCE_DIR) + "/tests/fixtures/" + name;
}

TEST(CheckRepro, DropRuleFixtureLoadsAndIsEquivalent) {
  const GenCase c = load_repro(fixture("check_repro_drop_rule.p4"),
                               fixture("check_repro_drop_rule.cmds"));
  EXPECT_FALSE(c.program.tables.empty());
  EXPECT_FALSE(c.rules.empty());
  EXPECT_FALSE(c.packets.empty());

  const DiffRunner runner;
  const DiffReport rep = runner.run(c);
  EXPECT_TRUE(rep.equivalent) << rep.str();
  EXPECT_TRUE(rep.persona_ran) << rep.persona_skip_reason;
}

TEST(CheckRepro, DropRuleFixtureStillGuardsTheTranslationPath) {
  const GenCase c = load_repro(fixture("check_repro_drop_rule.p4"),
                               fixture("check_repro_drop_rule.cmds"));
  DiffOptions opts;
  opts.mutation = Mutation::kDropPersonaRule;
  const DiffReport rep = DiffRunner(opts).run(c);
  EXPECT_FALSE(rep.equivalent)
      << "fixture no longer depends on its last persona rule";
}

TEST(CheckRepro, CommandsTextRoundTrips) {
  const GenCase c = load_repro(fixture("check_repro_drop_rule.p4"),
                               fixture("check_repro_drop_rule.cmds"));
  const std::string text = repro_commands_text(c);
  const GenCase back = parse_repro(
      // Re-emit the program alongside the re-rendered commands.
      hp4::emit_p4(c.program), text, "roundtrip");
  // The leading '#' comment embeds the program name (which load_repro sets
  // from the file path); the directive body must round-trip exactly.
  const auto body = [](const std::string& s) {
    return s.substr(s.find('\n') + 1);
  };
  EXPECT_EQ(body(repro_commands_text(back)), body(text));
  EXPECT_EQ(back.seed, c.seed);
  EXPECT_EQ(back.ports, c.ports);
  EXPECT_EQ(back.stateful, c.stateful);
}

TEST(CheckRepro, MalformedCommandsGiveStructuredErrors) {
  const std::string p4 =
      "header_type h_t { fields { f : 8; } }\n"
      "header h_t h;\n"
      "parser start { extract(h); return ingress; }\n"
      "action a() { no_op(); }\n"
      "table t { reads { h.f : exact; } actions { a; } "
      "default_action : a; }\n"
      "control ingress { apply(t); }\n";
  EXPECT_THROW(parse_repro(p4, "bogus directive"), util::ParseError);
  EXPECT_THROW(parse_repro(p4, "packet 1 abc"), util::ParseError);  // odd hex
  EXPECT_THROW(parse_repro(p4, "packet 1 zz"), util::ParseError);
  EXPECT_THROW(parse_repro(p4, "rule t a"), util::ParseError);  // no sections
  EXPECT_THROW(parse_repro(p4, "rule nosuch a | | | -1"), util::CommandError);
  EXPECT_THROW(parse_repro(p4, "rule t nosuch | | | -1"), util::CommandError);
  EXPECT_NO_THROW(parse_repro(p4, "# comment\n\nrule t a | 0x1 | | -1\n"));
}

}  // namespace
}  // namespace hyper4::check
