// Equivalence holds across persona configurations, not just the paper's
// (4 stages, 9 primitives) test configuration: stage budgets, write-back
// granularities, parse-ladder variants and the ingress meter (with a
// non-binding threshold) must all preserve native behaviour.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "hp4/controller.h"

namespace hyper4::hp4 {
namespace {

using apps::Rule;

VirtualRule vr(const Rule& r) {
  return VirtualRule{r.table, r.action, r.keys, r.args, r.priority};
}

const char* kMacH1 = "02:00:00:00:00:01";
const char* kMacH2 = "02:00:00:00:00:02";
const char* kMacRtr = "02:aa:00:00:00:ff";

std::vector<Rule> rules_for(const std::string& app) {
  if (app == "l2_sw") {
    return {apps::l2_forward(kMacH1, 1), apps::l2_forward(kMacH2, 2)};
  }
  if (app == "firewall") {
    return {apps::firewall_l2_forward(kMacH1, 1),
            apps::firewall_l2_forward(kMacH2, 2),
            apps::firewall_block_tcp_dport(22, 10)};
  }
  if (app == "arp_proxy") {
    return {apps::arp_proxy_entry("10.0.0.2", kMacH2),
            apps::arp_proxy_l2_forward(kMacH1, 1),
            apps::arp_proxy_l2_forward(kMacH2, 2)};
  }
  return {apps::router_accept_mac(kMacRtr),
          apps::router_route("10.0.1.0", 24, "10.0.1.10", 2),
          apps::router_arp_entry("10.0.1.10", kMacH2),
          apps::router_port_mac(2, kMacRtr)};
}

std::vector<net::Packet> probes_for(const std::string& app) {
  std::vector<net::Packet> out;
  net::EthHeader eth;
  eth.src = net::mac_from_string(kMacH1);
  eth.dst = net::mac_from_string(app == "router" ? kMacRtr : kMacH2);
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string("10.0.0.1");
  ip.dst = net::ipv4_from_string("10.0.1.7");
  net::TcpHeader tcp;
  tcp.src_port = 40000;
  for (std::uint16_t dport : {80, 22}) {
    tcp.dst_port = dport;
    out.push_back(net::make_ipv4_tcp(eth, ip, tcp, 64));
  }
  out.push_back(net::make_arp_request(net::mac_from_string(kMacH1),
                                      net::ipv4_from_string("10.0.0.1"),
                                      net::ipv4_from_string("10.0.0.2")));
  return out;
}

std::vector<std::pair<std::uint16_t, std::string>> canon(
    const bm::ProcessResult& r) {
  std::vector<std::pair<std::uint16_t, std::string>> out;
  for (const auto& o : r.outputs) out.emplace_back(o.port, o.packet.to_hex());
  std::sort(out.begin(), out.end());
  return out;
}

// Minimum persona stages each app needs.
std::size_t min_stages(const std::string& app) {
  if (app == "l2_sw") return 2;
  if (app == "firewall") return 3;
  return 4;
}

struct ConfigCase {
  const char* label;
  PersonaConfig cfg;
};

std::vector<ConfigCase> config_cases() {
  std::vector<ConfigCase> cases;
  {
    PersonaConfig c;
    c.num_stages = 5;
    c.max_primitives = 9;
    cases.push_back({"stages5", c});
  }
  {
    PersonaConfig c;
    c.writeback_step_bytes = 1;  // the paper's per-byte resize actions
    cases.push_back({"wb1", c});
  }
  {
    PersonaConfig c;
    c.parse_default_bytes = 60;  // no resubmits needed by any app
    c.parse_step_bytes = 20;
    cases.push_back({"default60", c});
  }
  {
    PersonaConfig c;
    c.ingress_meter = true;
    c.meter_burst = 1 << 20;  // non-binding
    cases.push_back({"metered", c});
  }
  {
    PersonaConfig c;
    c.extracted_bits = 1024;  // wider PHV field than the paper's 800
    cases.push_back({"wide1024", c});
  }
  return cases;
}

class ConfigEquiv
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(ConfigEquiv, EmulationMatchesNativeUnderConfig) {
  const auto [app, case_idx] = GetParam();
  const ConfigCase cc = config_cases()[static_cast<std::size_t>(case_idx)];
  if (cc.cfg.num_stages < min_stages(app)) GTEST_SKIP();

  bm::Switch native(apps::program_by_name(app));
  Controller ctl(cc.cfg);
  auto vdev = ctl.load(app, apps::program_by_name(app));
  ctl.attach_ports(vdev, {1, 2});
  ctl.bind(vdev, 1);
  ctl.bind(vdev, 2);
  for (const auto& r : rules_for(app)) {
    apps::apply_rule(native, r);
    ctl.add_rule(vdev, vr(r));
  }
  for (const auto& pkt : probes_for(app)) {
    auto n = native.inject(1, pkt);
    auto e = ctl.dataplane().inject(1, pkt);
    EXPECT_EQ(canon(n), canon(e)) << app << " config=" << cc.label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConfigEquiv,
    ::testing::Combine(::testing::Values("l2_sw", "firewall", "router",
                                         "arp_proxy"),
                       ::testing::Range(0, 5)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             config_cases()[static_cast<std::size_t>(std::get<1>(info.param))]
                 .label;
    });

// Stage-budget boundary: a config exactly at an app's requirement works; one
// below it is rejected at compile time, never mis-emulated.
TEST(ConfigEquiv, StageBudgetBoundary) {
  for (const char* app : {"l2_sw", "firewall", "router", "arp_proxy"}) {
    const std::size_t need = min_stages(app);
    {
      PersonaConfig c;
      c.num_stages = need;
      Controller ctl(c);
      EXPECT_NO_THROW(ctl.load(app, apps::program_by_name(app))) << app;
    }
    if (need > 1) {
      PersonaConfig c;
      c.num_stages = need - 1;
      Controller ctl(c);
      EXPECT_THROW(ctl.load(app, apps::program_by_name(app)),
                   UnsupportedFeature)
          << app;
    }
  }
}

}  // namespace
}  // namespace hyper4::hp4
