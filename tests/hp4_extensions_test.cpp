// Extension features beyond the paper's prototype: the §4.5 ingress
// isolation meter (the paper's proposed ingress-buffer protection) and
// §4.6 virtual multicast.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "hp4/controller.h"
#include "util/error.h"

namespace hyper4::hp4 {
namespace {

using apps::Rule;

VirtualRule vr(const Rule& r) {
  return VirtualRule{r.table, r.action, r.keys, r.args, r.priority};
}

const char* kMacH1 = "02:00:00:00:00:01";
const char* kMacH2 = "02:00:00:00:00:02";

net::Packet tcp_packet(std::uint16_t dport = 80) {
  net::EthHeader eth;
  eth.src = net::mac_from_string(kMacH1);
  eth.dst = net::mac_from_string(kMacH2);
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string("10.0.0.1");
  ip.dst = net::ipv4_from_string("10.0.0.2");
  net::TcpHeader tcp;
  tcp.dst_port = dport;
  return net::make_ipv4_tcp(eth, ip, tcp, 64);
}

PersonaConfig metered_config(std::uint64_t burst) {
  PersonaConfig cfg;
  cfg.ingress_meter = true;
  cfg.meter_rate_pps = 1;  // 1 packet per abstract second
  cfg.meter_burst = burst;
  return cfg;
}

// ---------------------------------------------------------------------------
// Ingress meter (§4.5)

TEST(IngressMeter, DisabledByDefaultAddsNoTables) {
  PersonaGenerator off{PersonaConfig{}};
  PersonaConfig on_cfg;
  on_cfg.ingress_meter = true;
  PersonaGenerator on{on_cfg};
  EXPECT_EQ(on.generate().tables.size(), off.generate().tables.size() + 2);
  bool has_meter = false;
  for (const auto& t : off.generate().tables) {
    if (t.name == tbl_meter()) has_meter = true;
  }
  EXPECT_FALSE(has_meter);
}

TEST(IngressMeter, DropsAboveBurst) {
  Controller ctl(metered_config(/*burst=*/3));
  auto id = ctl.load("l2", apps::l2_switch());
  ctl.attach_ports(id, {1, 2});
  ctl.bind(id, 1);
  ctl.add_rule(id, vr(apps::l2_forward(kMacH2, 2)));

  auto pkt = tcp_packet();
  std::size_t delivered = 0;
  for (int i = 0; i < 10; ++i) {
    delivered += ctl.dataplane().inject(1, pkt).outputs.size();
  }
  EXPECT_EQ(delivered, 3u);  // burst of 3 at time 0, rate 1/s, no time passes

  // Tokens refill with time.
  ctl.dataplane().advance_time(2.0);
  EXPECT_EQ(ctl.dataplane().inject(1, pkt).outputs.size(), 1u);
}

TEST(IngressMeter, MetersPerProgram) {
  Controller ctl(metered_config(/*burst=*/2));
  auto a = ctl.load("a", apps::l2_switch());
  auto b = ctl.load("b", apps::l2_switch());
  ctl.attach_ports(a, {1, 2});
  ctl.attach_ports(b, {3, 4});
  ctl.bind(a, 1);
  ctl.bind(b, 3);
  ctl.add_rule(a, vr(apps::l2_forward(kMacH2, 2)));
  ctl.add_rule(b, vr(apps::l2_forward(kMacH2, 4)));

  auto pkt = tcp_packet();
  // Exhaust device a's budget...
  for (int i = 0; i < 5; ++i) ctl.dataplane().inject(1, pkt);
  EXPECT_TRUE(ctl.dataplane().inject(1, pkt).outputs.empty());
  // ...device b is unaffected (separate meter cell).
  EXPECT_EQ(ctl.dataplane().inject(3, pkt).outputs.size(), 1u);
}

TEST(IngressMeter, PolicesRecirculationChains) {
  // Each device in a composition has its own meter cell; traffic above the
  // head device's threshold never enters the chain at all, bounding the
  // ingress-buffer pressure a composition can generate (§4.5).
  Controller ctl(metered_config(/*burst=*/8));
  auto a = ctl.load("a", apps::l2_switch());
  auto b = ctl.load("b", apps::l2_switch());
  ctl.chain({a, b}, {1, 2});
  ctl.add_rule(a, vr(apps::l2_forward(kMacH2, 2)));
  ctl.add_rule(b, vr(apps::l2_forward(kMacH2, 2)));

  auto pkt = tcp_packet();
  std::size_t delivered = 0, recircs = 0;
  for (int i = 0; i < 12; ++i) {
    auto r = ctl.dataplane().inject(1, pkt);
    delivered += r.outputs.size();
    recircs += r.recirculations;
  }
  EXPECT_EQ(delivered, 8u);  // device a admits only its 8-token burst
  // Packets killed at device a never recirculated into device b.
  EXPECT_EQ(recircs, 8u);
}

TEST(IngressMeter, AddsOneMatchStagePerTraversal) {
  Controller plain;
  Controller metered(metered_config(/*burst=*/1000));
  for (Controller* c : {&plain, &metered}) {
    auto id = c->load("l2", apps::l2_switch());
    c->attach_ports(id, {1, 2});
    c->bind(id, 1);
    c->add_rule(id, vr(apps::l2_forward(kMacH2, 2)));
  }
  auto pkt = tcp_packet();
  const auto base = plain.dataplane().inject(1, pkt).match_count();
  const auto with = metered.dataplane().inject(1, pkt).match_count();
  EXPECT_EQ(with, base + 1);
}

// ---------------------------------------------------------------------------
// Virtual multicast (§4.6)

TEST(VirtualMulticast, ReplicatesToPortSet) {
  Controller ctl;
  auto id = ctl.load("l2", apps::l2_switch());
  ctl.attach_ports(id, {1, 2, 3, 4});
  ctl.bind(id, 1);
  // dmac entries for h2 point at "port 2"; retarget that vport to a
  // replication set covering ports 2, 3, 4.
  ctl.add_rule(id, vr(apps::l2_forward(kMacH2, 2)));
  ctl.dpmu().set_vport_target_mcast(id, 2, {2, 3, 4});

  auto res = ctl.dataplane().inject(1, tcp_packet());
  ASSERT_EQ(res.outputs.size(), 3u);
  std::vector<std::uint16_t> ports;
  for (const auto& o : res.outputs) ports.push_back(o.port);
  std::sort(ports.begin(), ports.end());
  EXPECT_EQ(ports, (std::vector<std::uint16_t>{2, 3, 4}));
  // Every copy is the same (written-back) packet.
  for (const auto& o : res.outputs) {
    EXPECT_EQ(o.packet, res.outputs[0].packet);
    EXPECT_EQ(o.packet, tcp_packet());
  }
}

TEST(VirtualMulticast, OtherVportsUnaffected) {
  Controller ctl;
  auto id = ctl.load("l2", apps::l2_switch());
  ctl.attach_ports(id, {1, 2, 3});
  ctl.bind(id, 1);
  ctl.bind(id, 3);
  ctl.add_rule(id, vr(apps::l2_forward(kMacH2, 2)));
  ctl.add_rule(id, vr(apps::l2_forward(kMacH1, 1)));
  ctl.dpmu().set_vport_target_mcast(id, 2, {2, 3});

  // h2-bound traffic is replicated; h1-bound traffic stays unicast.
  EXPECT_EQ(ctl.dataplane().inject(1, tcp_packet()).outputs.size(), 2u);
  net::EthHeader eth;
  eth.src = net::mac_from_string(kMacH2);
  eth.dst = net::mac_from_string(kMacH1);
  auto back = net::make_ipv4_tcp(eth, net::Ipv4Header{}, net::TcpHeader{}, 32);
  auto res = ctl.dataplane().inject(3, back);
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].port, 1);
}

// ---------------------------------------------------------------------------
// Misconfiguration resilience: a virtual-link cycle must not wedge the
// dataplane (the engine's traversal guard cuts it, per §4.5's ingress-buffer
// discussion).

TEST(VnetCycle, RecirculationLoopIsCutOff) {
  Controller ctl;
  auto a = ctl.load("a", apps::l2_switch());
  auto b = ctl.load("b", apps::l2_switch());
  for (auto id : {a, b}) ctl.attach_ports(id, {1, 2});
  ctl.bind(a, 1);
  // a's port-2 vport → b; b's port-2 vport → a: a forwarding cycle.
  ctl.dpmu().set_vport_target_vdev(a, 2, b);
  ctl.dpmu().set_vport_target_vdev(b, 2, a);
  ctl.add_rule(a, vr(apps::l2_forward(kMacH2, 2)));
  ctl.add_rule(b, vr(apps::l2_forward(kMacH2, 2)));

  auto res = ctl.dataplane().inject(1, tcp_packet());
  EXPECT_TRUE(res.outputs.empty());
  EXPECT_GE(res.loop_kills, 1u);
  // The dataplane still works afterwards.
  ctl.dpmu().set_vport_target_phys(a, 2);
  EXPECT_EQ(ctl.dataplane().inject(1, tcp_packet()).outputs.size(), 1u);
}

TEST(VnetCycle, MeterCutsLoopsEarlier) {
  Controller ctl(metered_config(/*burst=*/5));
  auto a = ctl.load("a", apps::l2_switch());
  auto b = ctl.load("b", apps::l2_switch());
  for (auto id : {a, b}) ctl.attach_ports(id, {1, 2});
  ctl.bind(a, 1);
  ctl.dpmu().set_vport_target_vdev(a, 2, b);
  ctl.dpmu().set_vport_target_vdev(b, 2, a);
  ctl.add_rule(a, vr(apps::l2_forward(kMacH2, 2)));
  ctl.add_rule(b, vr(apps::l2_forward(kMacH2, 2)));

  auto res = ctl.dataplane().inject(1, tcp_packet());
  EXPECT_TRUE(res.outputs.empty());
  // The meter kills the packet before the engine's traversal guard fires.
  EXPECT_EQ(res.loop_kills, 0u);
  EXPECT_LE(res.recirculations, 12u);
}

}  // namespace
}  // namespace hyper4::hp4
