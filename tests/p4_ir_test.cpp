#include "p4/ir.h"

#include <gtest/gtest.h>

#include "p4/builder.h"
#include "util/error.h"

namespace hyper4::p4 {
namespace {

using util::ConfigError;

ProgramBuilder minimal_builder() {
  ProgramBuilder b("t");
  b.header_type("eth_t", {{"dst", 48}, {"src", 48}, {"type", 16}});
  b.header("eth_t", "eth");
  b.parser("start").extract("eth").to_ingress();
  return b;
}

TEST(HeaderType, WidthAndOffsets) {
  HeaderType t{"x", {{"a", 4}, {"b", 12}, {"c", 16}}};
  EXPECT_EQ(t.width_bits(), 32u);
  EXPECT_EQ(t.field_offset("a"), 0u);
  EXPECT_EQ(t.field_offset("b"), 4u);
  EXPECT_EQ(t.field_offset("c"), 16u);
  EXPECT_THROW(t.field_offset("zz"), ConfigError);
  EXPECT_TRUE(t.has_field("b"));
  EXPECT_FALSE(t.has_field("zz"));
}

TEST(StackRef, Splits) {
  auto [base, idx] = split_stack_ref("pr[13]");
  EXPECT_EQ(base, "pr");
  EXPECT_EQ(idx, 13u);
  auto [b2, i2] = split_stack_ref("eth");
  EXPECT_EQ(b2, "eth");
  EXPECT_FALSE(i2.has_value());
  EXPECT_THROW(split_stack_ref("pr[x]"), ConfigError);
  EXPECT_THROW(split_stack_ref("pr[3]x"), ConfigError);
}

TEST(Builder, MinimalProgramValidates) {
  Program p = minimal_builder().build();
  EXPECT_EQ(p.name, "t");
  ASSERT_EQ(p.deparse_order.size(), 1u);
  EXPECT_EQ(p.deparse_order[0], "eth");
}

TEST(Builder, DeparseOrderFollowsParseGraph) {
  ProgramBuilder b("t");
  b.header_type("a_t", {{"x", 8}});
  b.header_type("b_t", {{"y", 8}});
  b.header("a_t", "a");
  b.header("b_t", "bh");
  b.parser("start")
      .extract("a")
      .select_field("a", "x")
      .when(1, "s2")
      .otherwise(kParserAccept);
  b.parser("s2").extract("bh").to_ingress();
  Program p = b.build();
  ASSERT_EQ(p.deparse_order.size(), 2u);
  EXPECT_EQ(p.deparse_order[0], "a");
  EXPECT_EQ(p.deparse_order[1], "bh");
}

TEST(Validate, UnknownHeaderTypeRejected) {
  ProgramBuilder b("t");
  b.header("nope_t", "h");
  EXPECT_THROW(b.build(), ConfigError);
}

TEST(Validate, DuplicateInstanceRejected) {
  ProgramBuilder b("t");
  b.header_type("a_t", {{"x", 8}});
  b.header("a_t", "h");
  b.header("a_t", "h");
  EXPECT_THROW(b.build(), ConfigError);
}

TEST(Validate, CannotDeclareStandardMetadata) {
  ProgramBuilder b("t");
  b.header_type("a_t", {{"x", 8}});
  b.metadata("a_t", kStandardMetadata);
  EXPECT_THROW(b.build(), ConfigError);
}

TEST(Validate, ParserUnknownNextStateRejected) {
  ProgramBuilder b("t");
  b.header_type("a_t", {{"x", 8}});
  b.header("a_t", "h");
  b.parser("start").extract("h").to("missing_state");
  EXPECT_THROW(b.build(), ConfigError);
}

TEST(Validate, ParserCannotExtractMetadata) {
  ProgramBuilder b("t");
  b.header_type("a_t", {{"x", 8}});
  b.metadata("a_t", "m");
  b.parser("start").extract("m").to_ingress();
  EXPECT_THROW(b.build(), ConfigError);
}

TEST(Validate, SelectCaseWidthMismatchRejected) {
  ProgramBuilder b("t");
  b.header_type("a_t", {{"x", 8}});
  b.header("a_t", "h");
  b.parser("start")
      .extract("h")
      .select_field("h", "x")
      .when(util::BitVec(16, 1), "start")  // 16-bit case vs 8-bit select
      .otherwise(kParserAccept);
  EXPECT_THROW(b.build(), ConfigError);
}

TEST(Validate, TableUnknownActionRejected) {
  auto b = minimal_builder();
  b.table("t1").key_exact({"eth", "dst"}).action_ref("missing");
  EXPECT_THROW(b.build(), ConfigError);
}

TEST(Validate, TableUnknownFieldRejected) {
  auto b = minimal_builder();
  b.action("nop").no_op();
  b.table("t1").key_exact({"eth", "missing"}).action_ref("nop");
  EXPECT_THROW(b.build(), ConfigError);
}

TEST(Validate, TableWithoutActionsRejected) {
  auto b = minimal_builder();
  b.table("t1").key_exact({"eth", "dst"});
  EXPECT_THROW(b.build(), ConfigError);
}

TEST(Validate, DuplicateTableRejected) {
  auto b = minimal_builder();
  b.action("nop").no_op();
  b.table("t1").key_exact({"eth", "dst"}).action_ref("nop");
  b.table("t1").key_exact({"eth", "src"}).action_ref("nop");
  EXPECT_THROW(b.build(), ConfigError);
}

TEST(Validate, ControlEdgeToMissingActionRejected) {
  auto b = minimal_builder();
  b.action("nop").no_op();
  b.action("other").no_op();
  b.table("t1").key_exact({"eth", "dst"}).action_ref("nop");
  auto ing = b.ingress();
  const auto n = ing.apply("t1");
  ing.on_action(n, "other", kEndOfControl);  // not an action of t1
  EXPECT_THROW(b.build(), ConfigError);
}

TEST(Validate, ControlNodeIndexOutOfRangeRejected) {
  auto b = minimal_builder();
  b.action("nop").no_op();
  b.table("t1").key_exact({"eth", "dst"}).action_ref("nop");
  auto ing = b.ingress();
  const auto n = ing.apply("t1");
  ing.on_default(n, 99);
  EXPECT_THROW(b.build(), ConfigError);
}

TEST(Validate, ActionParamIndexOutOfRangeRejected) {
  auto b = minimal_builder();
  b.action("bad", {{"p", 8}})
      .modify_field({"eth", "dst"}, ActionArg::param(3));
  EXPECT_THROW(b.build(), ConfigError);
}

TEST(Validate, ActionUnknownFieldListRejected) {
  auto b = minimal_builder();
  b.action("bad").resubmit("no_such_list");
  EXPECT_THROW(b.build(), ConfigError);
}

TEST(Validate, CalculatedFieldChecks) {
  auto b = minimal_builder();
  b.field_list("fl", {{"eth", "dst"}});
  b.checksum({"eth", "type"}, "fl");
  EXPECT_NO_THROW(b.build());

  auto b2 = minimal_builder();
  b2.checksum({"eth", "type"}, "missing_list");
  EXPECT_THROW(b2.build(), ConfigError);
}

TEST(Validate, CounterWithoutInstancesRejected) {
  auto b = minimal_builder();
  b.counter("c", 0);
  EXPECT_THROW(b.build(), ConfigError);
}

TEST(FieldWidth, ResolvesThroughInstances) {
  Program p = minimal_builder().build();
  EXPECT_EQ(p.field_width({"eth", "dst"}), 48u);
  EXPECT_EQ(p.field_width({kStandardMetadata, kFieldEgressSpec}), kPortWidth);
  EXPECT_THROW(p.field_width({"eth", "zzz"}), ConfigError);
}

TEST(Expr, Rendering) {
  auto e = Expr::binary(ExprOp::kLAnd, Expr::valid("ipv4"),
                        Expr::binary(ExprOp::kEq, Expr::field("h", "f"),
                                     Expr::constant(8, 3)));
  EXPECT_EQ(e->str(), "(valid(ipv4) and (h.f == 0x03))");
}

TEST(StandardMetadata, TypeShape) {
  const HeaderType& t = standard_metadata_type();
  EXPECT_TRUE(t.has_field(kFieldIngressPort));
  EXPECT_TRUE(t.has_field(kFieldEgressSpec));
  EXPECT_TRUE(t.has_field(kFieldMcastGrp));
  EXPECT_EQ(t.field_def(kFieldIngressPort).width, kPortWidth);
}

}  // namespace
}  // namespace hyper4::p4
