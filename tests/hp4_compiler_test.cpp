// Hp4Compiler unit tests: artifact structure (parse paths, numbytes, field
// layout, stage assignment, action specs, static commands) and precise
// rejection of unsupported target-language features (§5.3 limits).
#include "hp4/compiler.h"

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "p4/builder.h"
#include "util/strings.h"

namespace hyper4::hp4 {
namespace {

using p4::Const;
using p4::Expr;
using p4::F;
using p4::Param;
using p4::ProgramBuilder;

Hp4Artifact compile(const p4::Program& p) {
  return Hp4Compiler{PersonaConfig{}}.compile(p);
}

// --- artifact structure ------------------------------------------------------

TEST(CompilerArtifact, L2SwitchBasics) {
  auto art = compile(apps::l2_switch());
  EXPECT_EQ(art.numbytes, 20u);  // 14-byte ethernet rounds to the default
  EXPECT_FALSE(art.needs_resubmit);
  ASSERT_EQ(art.tables.size(), 2u);
  EXPECT_EQ(art.tables[0].name, "smac");
  EXPECT_EQ(art.tables[0].stage, 1u);
  EXPECT_EQ(art.tables[0].source, MatchSource::kExtracted);
  EXPECT_EQ(art.tables[1].name, "dmac");
  // smac's hit entries chain to dmac's stage; dmac ends the pipeline.
  EXPECT_EQ(art.tables[0].next_code,
            next_table_code(2, MatchSource::kExtracted));
  EXPECT_EQ(art.tables[1].next_code, 0u);
  EXPECT_EQ(art.csum_offset, 0u);
  ASSERT_EQ(art.parse_paths.size(), 1u);
  EXPECT_FALSE(art.parse_paths[0].drops);
}

TEST(CompilerArtifact, FirewallPathsAndGuards) {
  auto art = compile(apps::firewall());
  EXPECT_EQ(art.numbytes, 60u);  // eth+ipv4+tcp = 54, ladder-rounded
  EXPECT_TRUE(art.needs_resubmit);
  // Paths: non-ip, ip-other, tcp, udp.
  EXPECT_EQ(art.parse_paths.size(), 4u);
  // ip_filter and l4_filter are guarded on valid(ipv4); dmac is not.
  EXPECT_FALSE(art.table("dmac").guard.has_value());
  ASSERT_TRUE(art.table("ip_filter").guard.has_value());
  EXPECT_TRUE(art.table("ip_filter").guard->expect_valid);
  EXPECT_EQ(art.table("ip_filter").guard->validity_bit,
            art.validity_bits.at("ipv4"));
  EXPECT_EQ(art.table("ip_filter").guard->next_code_on_skip, 0u);
  EXPECT_TRUE(art.table("l4_filter").guard.has_value());
}

TEST(CompilerArtifact, RouterChecksumAndStdMeta) {
  auto art = compile(apps::ipv4_router());
  EXPECT_EQ(art.csum_offset, 14u);
  EXPECT_EQ(art.numbytes, 40u);  // eth+ipv4 = 34, rounded
  // send_frame (egress) lands in the stdmeta stage table.
  EXPECT_EQ(art.table("send_frame").source, MatchSource::kStdMeta);
  EXPECT_TRUE(art.table("send_frame").in_egress);
  // The meta-keyed `forward` table uses the ext_meta source.
  EXPECT_EQ(art.table("forward").source, MatchSource::kMeta);
}

TEST(CompilerArtifact, FieldLayout) {
  auto art = compile(apps::firewall());
  const std::size_t E = art.cfg.extracted_bits;
  // ethernet.dstAddr occupies the top 48 bits of `extracted`.
  const auto eth_dst = art.field_locs.at("ethernet.dstAddr");
  EXPECT_EQ(eth_dst.domain, Domain::kExtracted);
  EXPECT_EQ(eth_dst.lsb, E - 48);
  EXPECT_EQ(eth_dst.width, 48u);
  // tcp.dstPort and udp.dstPort overlap (both at byte 36).
  EXPECT_EQ(art.field_locs.at("tcp.dstPort").lsb,
            art.field_locs.at("udp.dstPort").lsb);
  // Validity bits follow instance declaration order.
  EXPECT_EQ(art.validity_bits.at("ethernet"), 0u);
  EXPECT_EQ(art.validity_bits.at("ipv4"), 1u);
}

TEST(CompilerArtifact, MetadataPacking) {
  auto art = compile(apps::ipv4_router());
  const auto nhop = art.field_locs.at("meta.nhop_ipv4");
  EXPECT_EQ(nhop.domain, Domain::kMeta);
  EXPECT_EQ(nhop.width, 32u);
  EXPECT_EQ(nhop.lsb, art.cfg.meta_bits - 32);
}

TEST(CompilerArtifact, ActionSpecs) {
  auto art = compile(apps::arp_proxy());
  const ActionSpec& reply = art.actions.at("arp_reply");
  EXPECT_EQ(reply.prims.size(), 9u);  // the paper's nine-primitive action
  // Primitive 4 (arp.sha = param mac) is parameter-dependent → per entry.
  EXPECT_TRUE(reply.prims[3].per_entry);
  // Primitive 1 (eth.dst = eth.src) is a constant-spec field move.
  EXPECT_FALSE(reply.prims[0].per_entry);
  EXPECT_EQ(reply.prims[0].exec_action, kActModExtExt);
  // Primitive 9: egress_spec = ingress_port.
  EXPECT_EQ(reply.prims[8].exec_action, kActModVegressVingress);
  // All actions get distinct non-zero ids.
  std::set<std::size_t> ids;
  for (const auto& [n, a] : art.actions) {
    EXPECT_NE(a.action_id, 0u) << n;
    EXPECT_TRUE(ids.insert(a.action_id).second) << n;
  }
}

TEST(CompilerArtifact, TtlDecrementIsAddSub) {
  auto art = compile(apps::ipv4_router());
  const ActionSpec& set_nhop = art.actions.at("set_nhop");
  ASSERT_EQ(set_nhop.prims.size(), 3u);
  EXPECT_EQ(set_nhop.prims[2].type, PrimType::kAddSub);
  EXPECT_EQ(set_nhop.prims[2].exec_action, kActAddExt);
  EXPECT_FALSE(set_nhop.prims[2].per_entry);  // constant delta
  // forward's port parameter is vport-translated.
  EXPECT_EQ(set_nhop.prims[1].exec_action, kActModVegressConst);
  EXPECT_EQ(set_nhop.prims[1].args[0].kind, PrimSpec::Arg::Kind::kParamVPort);
}

TEST(CompilerArtifact, StaticCommandsCarryProgramToken) {
  auto art = compile(apps::l2_switch());
  ASSERT_FALSE(art.static_commands.empty());
  for (const auto& c : art.static_commands) {
    EXPECT_NE(c.find("[program]"), std::string::npos) << c;
  }
  // Intermediate rendition mentions the target and the token contract.
  const std::string text = art.intermediate_text();
  EXPECT_NE(text.find("l2_switch"), std::string::npos);
  EXPECT_NE(text.find("[program]"), std::string::npos);
}

TEST(CompilerArtifact, VparseEntryPerPath) {
  auto art = compile(apps::firewall());
  std::size_t vparse_cmds = 0;
  for (const auto& c : art.static_commands) {
    if (c.find(tbl_vparse()) != std::string::npos) ++vparse_cmds;
  }
  EXPECT_EQ(vparse_cmds, art.parse_paths.size());
}

TEST(CompilerArtifact, UnknownTableLookupThrows) {
  auto art = compile(apps::l2_switch());
  EXPECT_THROW(art.table("nope"), util::ConfigError);
}

// --- unsupported-feature rejection ---------------------------------------------

ProgramBuilder tiny() {
  ProgramBuilder b("tiny");
  b.header_type("h_t", {{"a", 8}, {"b", 8}});
  b.header("h_t", "h");
  b.parser("start").extract("h").to_ingress();
  return b;
}

TEST(CompilerLimits, TooManyStages) {
  auto b = tiny();
  b.action("nop").no_op();
  for (int i = 0; i < 5; ++i) {
    b.table("t" + std::to_string(i)).key_exact({"h", "a"}).action_ref("nop")
        .default_action("nop");
  }
  auto ing = b.ingress();
  ing.apply("t0");
  for (int i = 1; i < 5; ++i) ing.then_apply("t" + std::to_string(i));
  EXPECT_THROW(compile(b.build()), UnsupportedFeature);  // K = 4
}

TEST(CompilerLimits, TooManyPrimitives) {
  auto b = tiny();
  auto a = b.action("big");
  for (int i = 0; i < 10; ++i) a.modify_field({"h", "a"}, Const(8, 1));
  b.table("t").key_exact({"h", "a"}).action_ref("big").default_action("big");
  b.ingress().apply("t");
  EXPECT_THROW(compile(b.build()), UnsupportedFeature);  // P = 9
}

TEST(CompilerLimits, RangeMatchRejected) {
  auto b = tiny();
  b.action("nop").no_op();
  b.table("t").key_range({"h", "a"}).action_ref("nop").default_action("nop");
  b.ingress().apply("t");
  EXPECT_THROW(compile(b.build()), UnsupportedFeature);
}

TEST(CompilerLimits, UnsupportedPrimitiveNamed) {
  auto b = tiny();
  b.reg("r", 8, 4);
  b.action("stateful").register_write("r", Const(8, 0), F("h", "a"));
  b.table("t").key_exact({"h", "a"}).action_ref("stateful")
      .default_action("stateful");
  b.ingress().apply("t");
  try {
    compile(b.build());
    FAIL() << "expected UnsupportedFeature";
  } catch (const UnsupportedFeature& e) {
    EXPECT_NE(std::string(e.what()).find("register_write"), std::string::npos)
        << e.what();
  }
}

TEST(CompilerLimits, HeaderStackRejected) {
  ProgramBuilder b("st");
  b.header_type("h_t", {{"a", 8}});
  b.header_stack("h_t", "stk", 4);
  b.parser("start").extract("stk").to_ingress();
  b.action("nop").no_op();
  b.table("t").key_exact({"stk[0]", "a"}).action_ref("nop").default_action("nop");
  b.ingress().apply("t");
  EXPECT_THROW(compile(b.build()), UnsupportedFeature);
}

TEST(CompilerLimits, HitMissControlFlowRejected) {
  auto b = tiny();
  b.action("nop").no_op();
  b.table("t1").key_exact({"h", "a"}).action_ref("nop").default_action("nop");
  b.table("t2").key_exact({"h", "a"}).action_ref("nop").default_action("nop");
  auto ing = b.ingress();
  const auto n1 = ing.apply("t1");
  const auto n2 = ing.apply("t2");
  ing.on_hit(n1, n2);
  EXPECT_THROW(compile(b.build()), UnsupportedFeature);
}

TEST(CompilerLimits, NonValidConditionRejected) {
  auto b = tiny();
  b.action("nop").no_op();
  b.table("t").key_exact({"h", "a"}).action_ref("nop").default_action("nop");
  auto ing = b.ingress();
  const auto nif = ing.branch(Expr::binary(p4::ExprOp::kEq,
                                           Expr::field("h", "a"),
                                           Expr::constant(8, 3)));
  const auto nt = ing.apply("t");
  ing.on_true(nif, nt);
  EXPECT_THROW(compile(b.build()), UnsupportedFeature);
}

TEST(CompilerLimits, OversizedParseRequirementRejected) {
  ProgramBuilder b("huge");
  b.header_type("big_t", {{"blob", 1600}});  // 200 bytes > 100-byte ladder max
  b.header("big_t", "big");
  b.parser("start").extract("big").to_ingress();
  b.action("nop").no_op();
  b.table("t").key_exact({"big", "blob"}).action_ref("nop").default_action("nop");
  b.ingress().apply("t");
  EXPECT_THROW(compile(b.build()), UnsupportedFeature);
}

TEST(CompilerLimits, MixedStdMetaAndPacketKeysRejected) {
  auto b = tiny();
  b.action("nop").no_op();
  b.table("t")
      .key_exact({"h", "a"})
      .key_exact({p4::kStandardMetadata, p4::kFieldIngressPort})
      .action_ref("nop")
      .default_action("nop");
  b.ingress().apply("t");
  EXPECT_THROW(compile(b.build()), UnsupportedFeature);
}

TEST(CompilerLimits, DefaultActionWithParamsRejected) {
  auto b = tiny();
  b.action("setv", {{"v", 8}}).modify_field({"h", "b"}, Param(0));
  b.table("t").key_exact({"h", "a"}).action_ref("setv")
      .default_action("setv", {util::BitVec(8, 5)});
  b.ingress().apply("t");
  EXPECT_THROW(compile(b.build()), UnsupportedFeature);
}

// --- rule translation -------------------------------------------------------------

TEST(TranslateRule, ProducesMatchEntryPlusPerEntryExecs) {
  auto art = compile(apps::l2_switch());
  VPortMap ports;
  ports.phys_to_vport[2] = 7;
  ports.vport_to_phys[7] = 2;
  const auto cmds = translate_rule(
      art, VirtualRule{"dmac", "forward", {"02:00:00:00:00:02"}, {"2"}, -1},
      /*program_id=*/3, /*match_id=*/55, ports);
  ASSERT_EQ(cmds.size(), 2u);  // match entry + one per-entry exec (the vport)
  EXPECT_NE(cmds[0].find("t2_ext"), std::string::npos) << cmds[0];
  EXPECT_NE(cmds[0].find(" 3 "), std::string::npos);   // program id, no token
  EXPECT_NE(cmds[0].find("55"), std::string::npos);    // match id
  EXPECT_NE(cmds[1].find("a_mod_vegress_const"), std::string::npos);
  EXPECT_NE(cmds[1].find("=> 7 "), std::string::npos);  // vport, not port 2
}

TEST(TranslateRule, RejectsBadArityAndUnknownNames) {
  auto art = compile(apps::l2_switch());
  VPortMap ports;
  EXPECT_THROW(translate_rule(art, {"dmac", "forward", {}, {"2"}, -1}, 1, 1, ports),
               util::CommandError);
  EXPECT_THROW(translate_rule(art, {"dmac", "zap", {"0x1"}, {}, -1}, 1, 1, ports),
               util::CommandError);
  EXPECT_THROW(
      translate_rule(art, {"nope", "forward", {"0x1"}, {"2"}, -1}, 1, 1, ports),
      util::ConfigError);
  // Unmapped port in a port-valued argument.
  EXPECT_THROW(translate_rule(art, {"dmac", "forward", {"0x1"}, {"9"}, -1}, 1,
                              1, ports),
               util::CommandError);
}

TEST(TranslateRule, LpmPrioritiesFavourLongerPrefixes) {
  auto art = compile(apps::ipv4_router());
  VPortMap ports;
  ports.phys_to_vport[2] = 4;
  ports.vport_to_phys[4] = 2;
  auto p24 = translate_rule(
      art, {"ipv4_lpm", "set_nhop", {"10.0.1.0/24"}, {"10.0.1.1", "2"}, -1}, 1,
      1, ports);
  auto p16 = translate_rule(
      art, {"ipv4_lpm", "set_nhop", {"10.0.0.0/16"}, {"10.0.9.1", "2"}, -1}, 1,
      2, ports);
  // The trailing token of the match entry is the priority.
  auto prio = [](const std::string& cmd) {
    return util::parse_uint(util::split(cmd).back());
  };
  EXPECT_LT(prio(p24[0]), prio(p16[0]));  // longer prefix → higher precedence
}

}  // namespace
}  // namespace hyper4::hp4
