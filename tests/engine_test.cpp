// Tests for the concurrent traffic engine (src/engine): ProcessResult
// merge semantics, flow sharding, metrics, and — the load-bearing
// guarantees — workers=1 bit-equivalence with direct bm::Switch::inject()
// and worker-count-independent determinism on flow-disjoint workloads.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/apps.h"
#include "bench/common.h"
#include "engine/engine.h"
#include "engine/flow.h"
#include "engine/metrics.h"
#include "net/headers.h"
#include "util/error.h"

namespace hyper4 {
namespace {

using engine::EngineOptions;
using engine::InjectItem;
using engine::TrafficEngine;

// ---------------------------------------------------------------------------
// ProcessResult comparison (the engine's equivalence currency)

void expect_result_eq(const bm::ProcessResult& a, const bm::ProcessResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.outputs.size(), b.outputs.size()) << what;
  for (std::size_t i = 0; i < a.outputs.size(); ++i) {
    EXPECT_EQ(a.outputs[i].port, b.outputs[i].port) << what << " output " << i;
    EXPECT_EQ(a.outputs[i].packet, b.outputs[i].packet)
        << what << " output " << i << " bytes";
  }
  ASSERT_EQ(a.applied.size(), b.applied.size()) << what;
  for (std::size_t i = 0; i < a.applied.size(); ++i) {
    EXPECT_EQ(a.applied[i].table, b.applied[i].table) << what;
    EXPECT_EQ(a.applied[i].hit, b.applied[i].hit) << what;
    EXPECT_EQ(a.applied[i].entry_handle, b.applied[i].entry_handle) << what;
    EXPECT_EQ(a.applied[i].ternary_bits_total, b.applied[i].ternary_bits_total)
        << what;
    EXPECT_EQ(a.applied[i].ternary_bits_active,
              b.applied[i].ternary_bits_active)
        << what;
  }
  EXPECT_EQ(a.resubmits, b.resubmits) << what;
  EXPECT_EQ(a.recirculations, b.recirculations) << what;
  EXPECT_EQ(a.clones_i2e, b.clones_i2e) << what;
  EXPECT_EQ(a.clones_e2e, b.clones_e2e) << what;
  EXPECT_EQ(a.multicast_copies, b.multicast_copies) << what;
  EXPECT_EQ(a.drops, b.drops) << what;
  EXPECT_EQ(a.parse_errors, b.parse_errors) << what;
  EXPECT_EQ(a.loop_kills, b.loop_kills) << what;
}

// A flow-disjoint workload: TCP packets spread across `flows` distinct
// 5-tuples, `per_flow` packets each, round-robin over flows so each flow's
// packets are interleaved (exercising per-flow FIFO). Destination MACs
// alternate between the two demo L2 rules.
std::vector<InjectItem> l2_workload(std::size_t flows, std::size_t per_flow) {
  std::vector<InjectItem> items;
  items.reserve(flows * per_flow);
  for (std::size_t k = 0; k < per_flow; ++k) {
    for (std::size_t f = 0; f < flows; ++f) {
      net::EthHeader eth;
      eth.src = net::mac_from_string(bench::kMacH1);
      eth.dst = net::mac_from_string(f % 2 ? bench::kMacH1 : bench::kMacH2);
      net::Ipv4Header ip;
      ip.src = net::ipv4_from_string("10.1.0.1") + static_cast<uint32_t>(f);
      ip.dst = net::ipv4_from_string("10.2.0.1") + static_cast<uint32_t>(f);
      ip.protocol = net::kIpProtoTcp;
      net::TcpHeader tcp;
      tcp.src_port = static_cast<std::uint16_t>(10000 + f);
      tcp.dst_port = 80;
      tcp.seq = static_cast<std::uint32_t>(k);
      items.push_back(
          {static_cast<std::uint16_t>(f % 2 ? 2 : 1),
           net::make_ipv4_tcp(eth, ip, tcp, 32)});
    }
  }
  return items;
}

bm::ProcessResult fake_result(std::uint16_t port, std::uint8_t byte,
                              std::size_t drops) {
  bm::ProcessResult r;
  if (drops == 0) {
    bm::OutputPacket o;
    o.port = port;
    o.packet = net::Packet({byte, byte, byte});
    r.outputs.push_back(o);
  }
  bm::AppliedTable t;
  t.table = "t" + std::to_string(port);
  t.hit = drops == 0;
  t.ternary_bits_total = 8;
  t.ternary_bits_active = drops == 0 ? 5 : 0;
  t.used_ternary = true;
  r.applied.push_back(t);
  r.resubmits = 1;
  r.drops = drops;
  return r;
}

// ---------------------------------------------------------------------------
// merge_results

TEST(EngineMerge, SumsCountersAndConcatsDeterministically) {
  std::vector<bm::ProcessResult> per;
  per.push_back(fake_result(1, 0xaa, 0));
  per.push_back(fake_result(2, 0xbb, 1));
  per.push_back(fake_result(3, 0xcc, 0));

  const engine::MergedResult m = engine::merge_results(per);
  EXPECT_EQ(m.packets, 3u);
  EXPECT_EQ(m.totals.drops, 1u);
  EXPECT_EQ(m.totals.resubmits, 3u);
  ASSERT_EQ(m.totals.outputs.size(), 2u);
  // Concatenation preserves input (injection-sequence) order.
  EXPECT_EQ(m.totals.outputs[0].port, 1);
  EXPECT_EQ(m.totals.outputs[0].packet.at(0), 0xaa);
  EXPECT_EQ(m.totals.outputs[1].port, 3);
  ASSERT_EQ(m.totals.applied.size(), 3u);
  EXPECT_EQ(m.totals.applied[0].table, "t1");
  EXPECT_EQ(m.totals.applied[1].table, "t2");
  EXPECT_EQ(m.totals.applied[2].table, "t3");
  // Ternary accounting sums through the merged applied list.
  EXPECT_EQ(m.totals.ternary_bits_total(), 24u);
  EXPECT_EQ(m.totals.ternary_bits_active(), 10u);
  EXPECT_EQ(m.totals.ternary_match_count(), 3u);
  ASSERT_EQ(m.per_packet.size(), 3u);
  expect_result_eq(m.per_packet[1], per[1], "per_packet[1]");
}

TEST(EngineMerge, EmptyInput) {
  const engine::MergedResult m = engine::merge_results({});
  EXPECT_EQ(m.packets, 0u);
  EXPECT_TRUE(m.totals.outputs.empty());
  EXPECT_EQ(m.totals.drops, 0u);
}

// ---------------------------------------------------------------------------
// Flow classification

TEST(EngineFlow, ParsesIpv4TcpFiveTuple) {
  net::EthHeader eth;
  eth.src = net::mac_from_string(bench::kMacH1);
  eth.dst = net::mac_from_string(bench::kMacH2);
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string("10.0.0.1");
  ip.dst = net::ipv4_from_string("10.0.0.2");
  ip.protocol = net::kIpProtoTcp;
  net::TcpHeader tcp;
  tcp.src_port = 1234;
  tcp.dst_port = 80;
  const net::Packet p = net::make_ipv4_tcp(eth, ip, tcp, 16);

  const engine::FlowKey k = engine::flow_key(p);
  EXPECT_TRUE(k.is_ipv4);
  EXPECT_EQ(k.src_ip, net::ipv4_from_string("10.0.0.1"));
  EXPECT_EQ(k.dst_ip, net::ipv4_from_string("10.0.0.2"));
  EXPECT_EQ(k.proto, net::kIpProtoTcp);
  EXPECT_EQ(k.src_port, 1234);
  EXPECT_EQ(k.dst_port, 80);
}

TEST(EngineFlow, HashIsStableAndPayloadIndependent) {
  net::EthHeader eth;
  eth.src = net::mac_from_string(bench::kMacH1);
  eth.dst = net::mac_from_string(bench::kMacH2);
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string("10.0.0.1");
  ip.dst = net::ipv4_from_string("10.0.0.2");
  ip.protocol = net::kIpProtoUdp;
  net::UdpHeader udp;
  udp.src_port = 53;
  udp.dst_port = 53;
  const net::Packet a = net::make_ipv4_udp(eth, ip, udp, 8, 0x11);
  const net::Packet b = net::make_ipv4_udp(eth, ip, udp, 64, 0x22);
  // Same flow, different payloads → same shard.
  EXPECT_EQ(engine::flow_hash(a), engine::flow_hash(b));

  net::Ipv4Header ip2 = ip;
  ip2.dst = net::ipv4_from_string("10.0.0.3");
  const net::Packet c = net::make_ipv4_udp(eth, ip2, udp, 8, 0x11);
  EXPECT_NE(engine::flow_hash(a), engine::flow_hash(c));
}

TEST(EngineFlow, NonIpFallsBackToFrameHash) {
  const net::Packet arp = net::make_arp_request(
      net::mac_from_string(bench::kMacH1), net::ipv4_from_string("10.0.0.1"),
      net::ipv4_from_string("10.0.0.2"));
  EXPECT_FALSE(engine::flow_key(arp).is_ipv4);
  EXPECT_EQ(engine::flow_hash(arp), engine::flow_hash(arp));
}

// ---------------------------------------------------------------------------
// Metrics registry

TEST(EngineMetrics, CountersAndHistogramJson) {
  engine::MetricsRegistry reg;
  reg.counter("packets").inc(41);
  reg.counter("packets").inc();
  EXPECT_EQ(reg.counter("packets").value(), 42u);

  engine::Histogram& h = reg.histogram("lat", {1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(5000.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket_count(0), 1u);  // <= 1
  EXPECT_EQ(h.bucket_count(1), 1u);  // <= 10
  EXPECT_EQ(h.bucket_count(2), 0u);  // <= 100
  EXPECT_EQ(h.bucket_count(3), 1u);  // +inf
  EXPECT_NEAR(h.sum(), 5005.5, 1e-6);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"packets\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lat\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"le\":\"inf\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":3"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// workers=1 bit-equivalence with direct inject, on every equivalence-test
// program (native side and HyPer4-persona side).

TEST(EngineEquivalence, SingleWorkerMatchesDirectInjectOnAllPrograms) {
  for (const std::string& name : bench::function_names()) {
    bench::Harness h(name);

    EngineOptions opts;
    opts.workers = 1;
    TrafficEngine eng(apps::program_by_name(name), opts);
    eng.sync_from(*h.native);

    std::vector<InjectItem> items;
    items.push_back({1, bench::worst_case_packet(name)});
    for (auto& it : l2_workload(4, 2)) items.push_back(std::move(it));

    // Direct path first (the reference), on a second identical switch so
    // stateful effects accumulate exactly as the engine replica's will.
    bm::Switch ref(apps::program_by_name(name));
    ref.sync_state_from(*h.native);
    std::vector<bm::ProcessResult> direct;
    for (const auto& it : items) direct.push_back(ref.inject(it.port, it.packet));

    eng.inject_batch(items);
    const engine::MergedResult m = eng.drain();
    ASSERT_EQ(m.per_packet.size(), direct.size()) << name;
    for (std::size_t i = 0; i < direct.size(); ++i) {
      expect_result_eq(m.per_packet[i], direct[i],
                       name + " packet " + std::to_string(i));
    }
  }
}

TEST(EngineEquivalence, SingleWorkerMatchesPersonaDataplane) {
  // Engine running the *persona* program, mirrored from a controller via
  // attach_engine: the virtualized pipeline behaves identically under the
  // engine.
  bench::Harness h("l2_sw");
  EngineOptions opts;
  opts.workers = 1;
  TrafficEngine eng(h.ctl->generator().generate(), opts);
  h.ctl->attach_engine(&eng);
  const std::uint64_t epoch_before = eng.epoch();

  const net::Packet probe = bench::worst_case_packet("l2_sw");
  const bm::ProcessResult direct = h.ctl->dataplane().inject(1, probe);
  eng.inject(1, probe);
  const engine::MergedResult m = eng.drain();
  ASSERT_EQ(m.per_packet.size(), 1u);
  expect_result_eq(m.per_packet[0], direct, "persona probe");

  // Controller ops keep fanning out: adding a rule bumps the epoch.
  h.ctl->add_rule(h.vdev,
                  bench::vr(apps::l2_forward("02:00:00:00:00:33", 3)));
  EXPECT_GT(eng.epoch(), epoch_before);
  h.ctl->attach_engine(nullptr);
}

// ---------------------------------------------------------------------------
// Determinism across worker counts on a flow-disjoint workload.

TEST(EngineDeterminism, OneVsEightWorkersIdenticalMergedTrace) {
  bench::Harness h("l2_sw");
  const auto items = l2_workload(32, 6);

  auto run = [&](std::size_t workers) {
    EngineOptions opts;
    opts.workers = workers;
    opts.batch_size = 8;
    TrafficEngine eng(apps::program_by_name("l2_sw"), opts);
    eng.sync_from(*h.native);
    eng.inject_batch(items);
    return eng.drain();
  };

  const engine::MergedResult a = run(1);
  const engine::MergedResult b = run(8);
  ASSERT_EQ(a.per_packet.size(), items.size());
  ASSERT_EQ(b.per_packet.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    expect_result_eq(b.per_packet[i], a.per_packet[i],
                     "packet " + std::to_string(i));
  }
  // And the merged concatenations agree wholesale.
  ASSERT_EQ(a.totals.outputs.size(), b.totals.outputs.size());
  for (std::size_t i = 0; i < a.totals.outputs.size(); ++i)
    EXPECT_EQ(a.totals.outputs[i].packet, b.totals.outputs[i].packet);
}

TEST(EngineDeterminism, ShardingIsStable) {
  EngineOptions opts;
  opts.workers = 4;
  TrafficEngine eng(apps::l2_switch(), opts);
  const auto items = l2_workload(16, 1);
  for (const auto& it : items)
    EXPECT_EQ(eng.shard_of(it.packet), eng.shard_of(it.packet));
}

// ---------------------------------------------------------------------------
// Control plane: fan-out, epochs, handle interchangeability.

TEST(EngineControl, TableOpsFanOutToAllReplicas) {
  EngineOptions opts;
  opts.workers = 3;
  TrafficEngine eng(apps::l2_switch(), opts);
  EXPECT_EQ(eng.epoch(), 0u);

  const std::uint64_t handle = eng.table_add(
      "dmac", "forward",
      {bm::KeyParam::exact(util::BitVec(
          48, net::mac_to_u64(net::mac_from_string(bench::kMacH2))))},
      {util::BitVec(9, 2)});
  EXPECT_EQ(eng.epoch(), 1u);
  for (std::size_t i = 0; i < eng.workers(); ++i)
    EXPECT_TRUE(eng.replica(i).table("dmac").has_entry(handle)) << i;

  eng.table_modify("dmac", "forward", handle, {util::BitVec(9, 3)});
  EXPECT_EQ(eng.epoch(), 2u);
  eng.table_delete("dmac", handle);
  EXPECT_EQ(eng.epoch(), 3u);
  for (std::size_t i = 0; i < eng.workers(); ++i)
    EXPECT_FALSE(eng.replica(i).table("dmac").has_entry(handle)) << i;
}

TEST(EngineControl, SyncedHandlesAreInterchangeable) {
  bm::Switch native(apps::l2_switch());
  const std::uint64_t h1 =
      apps::apply_rule(native, apps::l2_forward(bench::kMacH1, 1));
  const std::uint64_t h2 =
      apps::apply_rule(native, apps::l2_forward(bench::kMacH2, 2));

  EngineOptions opts;
  opts.workers = 2;
  TrafficEngine eng(apps::l2_switch(), opts);
  eng.sync_from(native);
  // A handle minted by the source switch is valid on every replica...
  eng.table_delete("dmac", h1);
  native.table_delete("dmac", h1);
  // ...and post-sync adds continue the same handle sequence as the source
  // switch would.
  const std::uint64_t h3 = eng.table_add(
      "dmac", "forward",
      {bm::KeyParam::exact(util::BitVec(
          48, net::mac_to_u64(net::mac_from_string(bench::kMacH1))))},
      {util::BitVec(9, 1)});
  EXPECT_EQ(h3, apps::apply_rule(native, apps::l2_forward(bench::kMacH1, 1)));
  EXPECT_NE(h3, h2);
}

// Compiled-index coherence across replicas: every table mutation bumps the
// table's index epoch identically on all replicas (the fan-out applies the
// same op everywhere), and sync_from adopts the source's epochs — so a
// replica whose epoch matches the source is guaranteed to serve lookups
// from an index rebuilt over identical entries.
TEST(EngineControl, ReplicaIndexEpochsStayCoherent) {
  bm::Switch native(apps::l2_switch());
  apps::apply_rule(native, apps::l2_forward(bench::kMacH1, 1));
  const std::uint64_t h2 =
      apps::apply_rule(native, apps::l2_forward(bench::kMacH2, 2));
  native.table_delete("dmac", h2);  // pre-sync churn on the source

  EngineOptions opts;
  opts.workers = 3;
  TrafficEngine eng(apps::l2_switch(), opts);
  eng.sync_from(native);
  const std::uint64_t src_epoch = native.table("dmac").index_epoch();
  for (std::size_t i = 0; i < eng.workers(); ++i)
    EXPECT_EQ(eng.replica(i).table("dmac").index_epoch(), src_epoch) << i;

  // Post-sync mutations through the engine keep the replicas in lockstep.
  const std::uint64_t h = eng.table_add(
      "dmac", "forward",
      {bm::KeyParam::exact(util::BitVec(
          48, net::mac_to_u64(net::mac_from_string(bench::kMacH2))))},
      {util::BitVec(9, 2)});
  eng.table_modify("dmac", "forward", h, {util::BitVec(9, 3)});
  const std::uint64_t e0 = eng.replica(0).table("dmac").index_epoch();
  EXPECT_GT(e0, src_epoch);
  for (std::size_t i = 1; i < eng.workers(); ++i)
    EXPECT_EQ(eng.replica(i).table("dmac").index_epoch(), e0) << i;

  // And the rebuilt indexes actually serve traffic: a packet to the
  // freshly-added MAC forwards on the modified port from every worker.
  auto items = l2_workload(6, 2);
  eng.inject_batch(items);
  const engine::MergedResult m = eng.drain();
  EXPECT_EQ(m.packets, items.size());
}

// ---------------------------------------------------------------------------
// Metrics wired through the engine.

TEST(EngineMetrics, EngineCountsPacketsDropsAndStages) {
  bench::Harness h("l2_sw");
  EngineOptions opts;
  opts.workers = 2;
  TrafficEngine eng(apps::program_by_name("l2_sw"), opts);
  eng.sync_from(*h.native);

  auto items = l2_workload(8, 2);
  // One unknown-MAC packet that the l2 demo rules drop (miss → default).
  net::EthHeader eth;
  eth.src = net::mac_from_string(bench::kMacH1);
  eth.dst = net::mac_from_string("02:ff:ff:ff:ff:fe");
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string("10.9.9.1");
  ip.dst = net::ipv4_from_string("10.9.9.2");
  ip.protocol = net::kIpProtoTcp;
  net::TcpHeader tcp;
  tcp.src_port = 1;
  tcp.dst_port = 2;
  items.push_back({1, net::make_ipv4_tcp(eth, ip, tcp, 8)});

  eng.inject_batch(items);
  const engine::MergedResult m = eng.drain();
  EXPECT_EQ(m.packets, items.size());

  EXPECT_EQ(eng.metrics().counter("packets").value(), items.size());
  EXPECT_EQ(eng.metrics().counter("drops").value(), m.totals.drops);
  EXPECT_GE(eng.metrics().counter("batches").value(), 1u);
  const engine::Histogram& stages =
      eng.metrics().histogram("stages_per_packet", {});
  EXPECT_EQ(stages.count(), items.size());
  // l2_switch applies smac + dmac per packet.
  EXPECT_NEAR(stages.mean(), 2.0, 1e-9);
  const std::string json = eng.metrics().to_json();
  EXPECT_NE(json.find("\"packet_latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"control_ops\""), std::string::npos);

  // Aggregate switch stats sum across replicas.
  EXPECT_EQ(eng.stats_total().packets_in, items.size());
}

// ---------------------------------------------------------------------------
// Streaming consumption (collect_ready) and worker pinning.

TEST(EngineStreaming, CollectReadyConsumesInInjectionOrder) {
  bench::Harness h("l2_sw");
  EngineOptions opts;
  opts.workers = 3;
  opts.batch_size = 4;
  TrafficEngine eng(apps::program_by_name("l2_sw"), opts);
  eng.sync_from(*h.native);

  const auto items = l2_workload(12, 4);
  eng.inject_batch(items);

  // Pull the wave out incrementally; concatenated prefixes must equal what
  // a single drain() would have produced, in injection-sequence order.
  std::vector<bm::ProcessResult> streamed;
  std::uint64_t total = 0;
  while (total < items.size()) {
    engine::MergedResult part = eng.collect_ready();
    total += part.packets;
    for (auto& r : part.per_packet) streamed.push_back(std::move(r));
  }
  ASSERT_EQ(streamed.size(), items.size());

  // Reference: workers=1 sequential engine over the same workload.
  EngineOptions ref_opts;
  ref_opts.workers = 1;
  TrafficEngine ref(apps::program_by_name("l2_sw"), ref_opts);
  ref.sync_from(*h.native);
  ref.inject_batch(items);
  const engine::MergedResult want = ref.drain();
  ASSERT_EQ(want.per_packet.size(), streamed.size());
  for (std::size_t i = 0; i < streamed.size(); ++i)
    expect_result_eq(streamed[i], want.per_packet[i],
                     "streamed packet " + std::to_string(i));

  // Fully caught up: a final drain returns an empty merge.
  const engine::MergedResult rest = eng.drain();
  EXPECT_EQ(rest.packets, 0u);
}

TEST(EngineStreaming, CollectReadyRequiresCollectResults) {
  EngineOptions opts;
  opts.collect_results = false;
  TrafficEngine eng(apps::l2_switch(), opts);
  EXPECT_THROW(eng.collect_ready(), util::ConfigError);
}

TEST(EngineStreaming, PinnedWorkersProcessNormally) {
  bench::Harness h("l2_sw");
  EngineOptions opts;
  opts.workers = 2;
  opts.pin_workers = true;  // best-effort affinity must never break results
  TrafficEngine eng(apps::program_by_name("l2_sw"), opts);
  eng.sync_from(*h.native);
  const auto items = l2_workload(8, 3);
  eng.inject_batch(items);
  const engine::MergedResult m = eng.drain();
  EXPECT_EQ(m.packets, items.size());
  ASSERT_EQ(m.per_packet.size(), items.size());
}

TEST(EngineStreaming, MutexQueueFallbackMatchesRing) {
  bench::Harness h("l2_sw");
  const auto items = l2_workload(10, 3);
  engine::MergedResult got[2];
  for (int mode = 0; mode < 2; ++mode) {
    EngineOptions opts;
    opts.workers = 2;
    opts.batch_size = 4;
    opts.use_mutex_queue = mode == 1;
    TrafficEngine eng(apps::program_by_name("l2_sw"), opts);
    eng.sync_from(*h.native);
    eng.inject_batch(items);
    got[mode] = eng.drain();
  }
  ASSERT_EQ(got[0].per_packet.size(), items.size());
  ASSERT_EQ(got[1].per_packet.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i)
    expect_result_eq(got[0].per_packet[i], got[1].per_packet[i],
                     "ring vs mutex queue, packet " + std::to_string(i));
}

}  // namespace
}  // namespace hyper4
