// Fault-injection suite for the fabric, driven end to end through the real
// hyper4_fabric binary: a follower process SIGKILLed mid-wave (while the
// controller keeps committing and injecting) must restart from its store
// (checkpoint + journal tail), catch up over the replication channel, and
// land on a digest equal to a never-killed run of the same workload. Plus
// the quorum contract: below quorum, commits block; they never diverge.
#include <sys/wait.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include "apps/apps.h"
#include "bench/common.h"
#include "fabric/fabric.h"
#include "hp4/p4_emit.h"
#include "util/error.h"

namespace hyper4 {
namespace {

namespace fs = std::filesystem;

struct RunResult {
  int code = -1;
  std::string out;
};

RunResult run(const std::string& cmd) {
  RunResult r;
  std::FILE* p = ::popen(cmd.c_str(), "r");
  if (!p) return r;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), p)) > 0) r.out.append(buf, n);
  const int st = ::pclose(p);
  r.code = WIFEXITED(st) ? WEXITSTATUS(st) : -WTERMSIG(st);
  return r;
}

// The summary line ends "...digest <hex>, all replicas converged".
std::string parse_digest(const std::string& out) {
  const auto pos = out.find("digest ");
  if (pos == std::string::npos) return "";
  const auto start = pos + 7;
  auto end = start;
  while (end < out.size() && std::isxdigit(static_cast<unsigned char>(out[end])))
    ++end;
  return out.substr(start, end - start);
}

const std::string kFabric = HP4_FABRIC_PATH;

std::string temp_dir(const std::string& tag) {
  const std::string d =
      (fs::temp_directory_path() / ("hp4_fabric_part_" + tag)).string();
  fs::remove_all(d);
  return d;
}

TEST(FabricPartition, SigkilledFollowerRejoinsWithUnkilledRunDigest) {
  const std::string killed_store = temp_dir("killed");
  const std::string clean_store = temp_dir("clean");
  const std::string workload =
      " --preset line --nodes 3 --waves 5 --packets 4";

  // Run A: follower 1 is a separate process, SIGKILL -9'd after wave 1
  // while the controller keeps committing and injecting, respawned one
  // wave later, and must catch up digest-clean (the tool exits 3 if not).
  const RunResult killed =
      run(kFabric + " run" + workload +
          " --transport socket --kill-node 1 --kill-wave 1 --store " +
          killed_store + " 2>&1");
  EXPECT_EQ(0, killed.code) << killed.out;
  EXPECT_NE(std::string::npos, killed.out.find("all replicas converged"))
      << killed.out;

  // Run B: the same control workload, nobody killed. The quorum is pinned
  // to 2 to match run A's auto N-1 (quorum changes no journaled state, but
  // keeps the runs symmetric).
  const RunResult clean = run(kFabric + " run" + workload +
                              " --quorum 2 --store " + clean_store + " 2>&1");
  EXPECT_EQ(0, clean.code) << clean.out;

  // The headline assertion: identical final state digests.
  const std::string killed_digest = parse_digest(killed.out);
  const std::string clean_digest = parse_digest(clean.out);
  ASSERT_FALSE(killed_digest.empty()) << killed.out;
  EXPECT_EQ(clean_digest, killed_digest);

  // And the victim's on-disk store recovers offline to that same digest.
  const RunResult status =
      run(kFabric + " status --store " + killed_store + "/node1 2>&1");
  EXPECT_EQ(0, status.code) << status.out;
  EXPECT_NE(std::string::npos, status.out.find(killed_digest)) << status.out;

  fs::remove_all(killed_store);
  fs::remove_all(clean_store);
}

TEST(FabricPartition, TornJournalVictimStillRejoins) {
  const std::string store = temp_dir("torn");
  // Ring transport with --tear: the victim's journal loses its final bytes
  // at the crash, so restart must truncate the torn suffix and have the
  // leader reship it.
  const RunResult r = run(kFabric +
                          " run --preset line --nodes 3 --waves 5 --packets 4"
                          " --kill-node 2 --kill-wave 1 --tear --store " +
                          store + " 2>&1");
  EXPECT_EQ(0, r.code) << r.out;
  EXPECT_NE(std::string::npos, r.out.find("all replicas converged")) << r.out;
  fs::remove_all(store);
}

TEST(FabricPartition, QuorumLossBlocksCommitsUntilReconnect) {
  const std::string dir = temp_dir("quorum");
  fabric::FabricOptions fo;
  fo.store_dir = dir;
  fo.topology = fabric::FabricTopology::line(3);
  fo.quorum = 3;  // every replica must ack
  fo.commit_timeout_ms = 300;
  fabric::FabricController ctl(fo);

  const auto vdev = ctl.load_source(
      "l2_sw", hp4::emit_p4(apps::program_by_name("l2_sw")));
  ctl.attach_ports(vdev, {1, 2});
  ctl.bind(vdev, 1);
  ctl.bind(vdev, 2);

  // Partition two followers: 1 of 3 alive is below quorum, so the commit
  // must block and time out — never apply on a minority.
  ctl.disconnect(1);
  ctl.disconnect(2);
  const std::uint64_t lsn_before = ctl.committed_lsn();
  EXPECT_THROW(
      ctl.add_rule(vdev, bench::vr(apps::l2_forward(bench::kMacH1, 1))),
      util::ConfigError);
  EXPECT_EQ(lsn_before, ctl.committed_lsn());

  // Heal the partition: the tail reships and commits flow again.
  ctl.reconnect(1);
  ctl.reconnect(2);
  ctl.add_rule(vdev, bench::vr(apps::l2_forward(bench::kMacH2, 2)));
  const std::uint64_t want = ctl.leader_digest();
  for (std::size_t i = 0; i < 3; ++i) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (ctl.node_acked_lsn(i) < ctl.leader().last_lsn() &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(ctl.leader().last_lsn(), ctl.node_acked_lsn(i)) << i;
    EXPECT_EQ(want, ctl.node_acked_digest(i)) << i;
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace hyper4
