// Concurrency stress for the traffic engine: many flows injected from
// multiple producer threads while a control thread fires table_modify
// fan-outs into the same replicas. Designed to be ThreadSanitizer-clean —
// every cross-thread touch goes through the engine's queues, replica locks
// or atomics — while still passing (with a single-worker variant) under
// plain ctest.
//
// Scale knobs (environment):
//   ENGINE_STRESS_PACKETS  total packets per test (default 2000)
//   ENGINE_STRESS_WORKERS  worker count for the concurrent test (default 4)
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/apps.h"
#include "bench/common.h"
#include "engine/engine.h"
#include "net/headers.h"
#include "util/rng.h"

namespace hyper4 {
namespace {

using engine::EngineOptions;
using engine::InjectItem;
using engine::TrafficEngine;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  const long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

net::Packet flow_packet(std::size_t flow, std::uint32_t seq) {
  net::EthHeader eth;
  eth.src = net::mac_from_string(bench::kMacH1);
  eth.dst = net::mac_from_string(bench::kMacH2);
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string("10.1.0.0") + static_cast<std::uint32_t>(flow);
  ip.dst = net::ipv4_from_string("10.2.0.0") + static_cast<std::uint32_t>(flow);
  ip.protocol = net::kIpProtoTcp;
  net::TcpHeader tcp;
  tcp.src_port = static_cast<std::uint16_t>(20000 + flow % 1000);
  tcp.dst_port = 443;
  tcp.seq = seq;
  return net::make_ipv4_tcp(eth, ip, tcp, 16);
}

// Shared body: inject `packets` spread over `flows` flows from
// `producers` threads while the main thread alternates the dmac entry's
// egress port between 2 and 3. Every delivered packet must leave on one of
// those two ports, and nothing may be lost or double-counted.
void run_stress(std::size_t workers, std::size_t producers,
                std::size_t packets, bool use_mutex_queue = false) {
  const std::size_t flows = 64;
  // HP4_CHECK_SEED re-randomizes the packet→flow assignment (shared seed
  // discipline with the fuzz and check suites). Precomputed so producer
  // threads never share the Rng.
  const std::uint64_t seed = util::env_seed(0x57E55);
  util::Rng rng(seed);
  std::vector<std::size_t> flow_of(packets);
  for (auto& f : flow_of)
    f = static_cast<std::size_t>(rng.uniform(0, flows - 1));
  bm::Switch native(apps::l2_switch());
  apps::apply_rule(native, apps::l2_forward(bench::kMacH1, 1));
  const std::uint64_t h2 =
      apps::apply_rule(native, apps::l2_forward(bench::kMacH2, 2));

  EngineOptions opts;
  opts.workers = workers;
  opts.queue_capacity = 128;  // small queue → exercises backpressure
  opts.batch_size = 16;
  opts.use_mutex_queue = use_mutex_queue;
  TrafficEngine eng(apps::l2_switch(), opts);
  eng.sync_from(native);

  std::atomic<bool> done{false};
  std::thread control([&] {
    std::uint16_t port = 3;
    while (!done.load(std::memory_order_acquire)) {
      eng.table_modify("dmac", "forward", h2, {util::BitVec(9, port)});
      port = port == 2 ? 3 : 2;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> prod;
  const std::size_t per_producer = packets / producers;
  for (std::size_t t = 0; t < producers; ++t) {
    prod.emplace_back([&, t] {
      for (std::size_t i = 0; i < per_producer; ++i) {
        const std::size_t flow = flow_of[t * per_producer + i];
        eng.inject(1, flow_packet(flow, static_cast<std::uint32_t>(i)));
      }
    });
  }
  for (auto& th : prod) th.join();

  const engine::MergedResult m = eng.drain();
  done.store(true, std::memory_order_release);
  control.join();

  const std::size_t injected = per_producer * producers;
  EXPECT_EQ(m.packets, injected) << "seed=" << seed;
  ASSERT_EQ(m.per_packet.size(), injected) << "seed=" << seed;
  EXPECT_EQ(m.totals.drops, 0u);
  EXPECT_EQ(m.totals.outputs.size(), injected);
  for (const auto& o : m.totals.outputs) {
    EXPECT_TRUE(o.port == 2 || o.port == 3) << "port " << o.port;
  }
  EXPECT_EQ(eng.metrics().counter("packets").value(), injected);
  EXPECT_EQ(eng.stats_total().packets_in, injected);
  // Control thread really ran concurrently.
  EXPECT_GE(eng.epoch(), 2u);
}

TEST(EngineStress, SingleWorkerWithConcurrentControl) {
  run_stress(1, 1, env_size("ENGINE_STRESS_PACKETS", 2000));
}

TEST(EngineStress, ManyWorkersManyProducers) {
  run_stress(env_size("ENGINE_STRESS_WORKERS", 4), 2,
             env_size("ENGINE_STRESS_PACKETS", 2000));
}

// Observability under concurrency: per-worker stage profiling on, with a
// control thread hammering export_profile() (merges worker histograms
// under the replica locks) and MetricsRegistry::snapshot() while
// producers inject. ThreadSanitizer-clean is the point; the content
// assertions at the end are secondary.
TEST(EngineStress, ProfileExportAndSnapshotRaceFree) {
  bm::Switch native(apps::l2_switch());
  apps::apply_rule(native, apps::l2_forward(bench::kMacH1, 1));
  apps::apply_rule(native, apps::l2_forward(bench::kMacH2, 2));

  EngineOptions opts;
  opts.workers = env_size("ENGINE_STRESS_WORKERS", 4);
  opts.batch_size = 16;
  opts.profile = true;
  TrafficEngine eng(apps::l2_switch(), opts);
  eng.sync_from(native);

  std::atomic<bool> done{false};
  std::thread exporter([&] {
    while (!done.load(std::memory_order_acquire)) {
      eng.export_profile();
      const engine::MetricsSnapshot snap = eng.metrics().snapshot();
      (void)snap;
      std::this_thread::yield();
    }
  });

  const std::size_t n = env_size("ENGINE_STRESS_PACKETS", 2000);
  std::vector<std::thread> prod;
  for (std::size_t t = 0; t < 2; ++t) {
    prod.emplace_back([&, t] {
      for (std::size_t i = 0; i < n / 2; ++i)
        eng.inject(1, flow_packet((t * 31 + i) % 64,
                                  static_cast<std::uint32_t>(i)));
    });
  }
  for (auto& th : prod) th.join();
  const engine::MergedResult m = eng.drain();
  done.store(true, std::memory_order_release);
  exporter.join();

  EXPECT_EQ(m.packets, (n / 2) * 2);
  // One final export picks up whatever the racing exports left behind;
  // the registry histogram totals must then cover every packet's parse.
  eng.export_profile();
  const engine::MetricsSnapshot snap = eng.metrics().snapshot();
  const auto it = snap.histograms.find("stage_ns_parser");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_EQ(it->second.count, (n / 2) * 2)
      << "stage histograms must not lose or double-count observations";
}

// The BoundedQueue fallback must survive the identical stress (it is the
// differential implementation that keeps the SPSC ring honest).
TEST(EngineStress, MutexQueueFallbackManyWorkersManyProducers) {
  run_stress(env_size("ENGINE_STRESS_WORKERS", 4), 2,
             env_size("ENGINE_STRESS_PACKETS", 2000),
             /*use_mutex_queue=*/true);
}

// Single-flow hot-spot: every packet hashes to ONE shard while the other
// workers idle. The worst case for the sharded design — ordering must hold
// (per-flow FIFO == global injection order here) and nothing may be lost
// even though three of four rings never see a packet.
TEST(EngineStress, SingleFlowHotSpotKeepsOrder) {
  EngineOptions opts;
  opts.workers = 4;
  opts.queue_capacity = 32;  // small: the hot ring backpressures constantly
  opts.batch_size = 8;
  TrafficEngine eng(apps::l2_switch(), opts);
  bm::Switch native(apps::l2_switch());
  apps::apply_rule(native, apps::l2_forward(bench::kMacH2, 2));
  eng.sync_from(native);

  const std::size_t n = env_size("ENGINE_STRESS_PACKETS", 2000);
  std::vector<InjectItem> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    items.push_back({1, flow_packet(7, static_cast<std::uint32_t>(i))});
  // All packets share one 5-tuple → one shard.
  const std::size_t shard = eng.shard_of(items[0].packet);
  for (const auto& it : items) ASSERT_EQ(eng.shard_of(it.packet), shard);

  eng.inject_batch(items);
  const engine::MergedResult m = eng.drain();
  ASSERT_EQ(m.per_packet.size(), n);
  ASSERT_EQ(m.totals.outputs.size(), n);
  // TCP seq was the injection index: outputs must carry it back in order.
  for (std::size_t i = 0; i < n; ++i) {
    const net::Packet& p = m.totals.outputs[i].packet;
    const std::size_t off = 14 + 20;  // eth + ipv4, no options
    const std::uint32_t seq =
        (std::uint32_t(p.at(off + 4)) << 24) |
        (std::uint32_t(p.at(off + 5)) << 16) |
        (std::uint32_t(p.at(off + 6)) << 8) | std::uint32_t(p.at(off + 7));
    ASSERT_EQ(seq, static_cast<std::uint32_t>(i)) << "order broke at " << i;
  }
}

// queue_capacity=0 must clamp to a working (capacity-1) channel rather
// than wedge or crash, in both channel implementations.
TEST(EngineStress, ZeroCapacityQueueStillFlows) {
  for (const bool mutex_queue : {false, true}) {
    EngineOptions opts;
    opts.workers = 2;
    opts.queue_capacity = 0;
    opts.batch_size = 4;
    opts.use_mutex_queue = mutex_queue;
    TrafficEngine eng(apps::l2_switch(), opts);
    bm::Switch native(apps::l2_switch());
    apps::apply_rule(native, apps::l2_forward(bench::kMacH2, 2));
    eng.sync_from(native);
    const std::size_t n = 200;
    std::vector<InjectItem> items;
    for (std::size_t i = 0; i < n; ++i)
      items.push_back({1, flow_packet(i % 8, static_cast<std::uint32_t>(i))});
    eng.inject_batch(items);
    const engine::MergedResult m = eng.drain();
    EXPECT_EQ(m.packets, n) << (mutex_queue ? "mutex queue" : "ring");
    EXPECT_EQ(m.totals.outputs.size(), n);
  }
}

// Mid-run close: destroy the engine while packets are still queued. The
// destructor closes every ring, workers drain what was already enqueued,
// and join must not hang. (No result assertions — the point is clean
// teardown under load, which TSan also watches.)
TEST(EngineStress, DestructorClosesRingsMidRun) {
  for (const bool mutex_queue : {false, true}) {
    EngineOptions opts;
    opts.workers = 2;
    opts.queue_capacity = 16;
    opts.batch_size = 4;
    opts.collect_results = false;
    opts.use_mutex_queue = mutex_queue;
    auto eng = std::make_unique<TrafficEngine>(apps::l2_switch(), opts);
    for (std::size_t i = 0; i < 500; ++i)
      eng->inject(1, flow_packet(i % 16, static_cast<std::uint32_t>(i)));
    eng.reset();  // close + join while the rings are likely non-empty
  }
}

TEST(EngineStress, BackpressureEngages) {
  // Queue of 4 with thousands of packets from one producer: the producer
  // must outrun the consumer at least once, and nothing is dropped.
  bm::Switch native(apps::l2_switch());
  apps::apply_rule(native, apps::l2_forward(bench::kMacH2, 2));

  EngineOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 4;
  opts.batch_size = 4;
  opts.collect_results = false;
  TrafficEngine eng(apps::l2_switch(), opts);
  eng.sync_from(native);

  const std::size_t n = env_size("ENGINE_STRESS_PACKETS", 2000);
  for (std::size_t i = 0; i < n; ++i)
    eng.inject(1, flow_packet(i % 8, static_cast<std::uint32_t>(i)));
  const engine::MergedResult m = eng.drain();
  EXPECT_EQ(m.packets, n);
  EXPECT_TRUE(m.per_packet.empty());  // collect_results off
  EXPECT_EQ(m.totals.drops, 0u);
  EXPECT_GE(eng.metrics().counter("backpressure_waits").value(), 1u);
}

}  // namespace
}  // namespace hyper4
