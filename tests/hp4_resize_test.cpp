// Emulation of packet-structure changes: remove_header (the persona's
// RESIZE behaviour — shifting `extracted`, adjusting the write-back size).
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "bm/cli.h"
#include "hp4/controller.h"
#include "p4/builder.h"

namespace hyper4::hp4 {
namespace {

using p4::Const;
using p4::Param;
using p4::ProgramBuilder;

// A decapsulation program: 14-byte outer header, 10-byte shim; traffic
// matching the outer tag has the shim stripped and is forwarded.
p4::Program decap_program() {
  ProgramBuilder b("decap");
  b.header_type("outer_t", {{"dst", 48}, {"src", 48}, {"tag", 16}});
  b.header_type("shim_t", {{"label", 32}, {"meta1", 32}, {"meta2", 16}});
  b.header("outer_t", "outer");
  b.header("shim_t", "shim");
  b.parser("start").extract("outer").extract("shim").to_ingress();
  b.action("decap_fwd", {{"port", p4::kPortWidth}})
      .remove_header("shim")
      .modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec}, Param(0));
  b.action("fwd", {{"port", p4::kPortWidth}})
      .modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec}, Param(0));
  b.action("_drop").drop();
  b.table("t")
      .key_exact({"outer", "tag"})
      .action_ref("decap_fwd")
      .action_ref("fwd")
      .action_ref("_drop")
      .default_action("_drop");
  b.ingress().apply("t");
  return b.build();
}

net::Packet decap_packet(std::uint16_t tag, std::size_t payload = 36) {
  net::Packet p;
  for (int i = 0; i < 12; ++i) p.append_byte(static_cast<std::uint8_t>(i));
  p.append_byte(static_cast<std::uint8_t>(tag >> 8));
  p.append_byte(static_cast<std::uint8_t>(tag & 0xff));
  for (int i = 0; i < 10; ++i) p.append_byte(static_cast<std::uint8_t>(0xA0 + i));
  for (std::size_t i = 0; i < payload; ++i)
    p.append_byte(static_cast<std::uint8_t>(0xC0 + (i & 0x0f)));
  return p;
}

class DecapEquiv : public ::testing::Test {
 protected:
  DecapEquiv() : native_(decap_program()) {
    bm::run_cli_command(native_, "table_add t decap_fwd 0x0042 => 2");
    bm::run_cli_command(native_, "table_add t fwd 0x0043 => 2");
    vdev_ = ctl_.load("decap", decap_program());
    ctl_.attach_ports(vdev_, {1, 2});
    ctl_.bind(vdev_, 1);
    ctl_.add_rule(vdev_, VirtualRule{"t", "decap_fwd", {"0x0042"}, {"2"}, -1});
    ctl_.add_rule(vdev_, VirtualRule{"t", "fwd", {"0x0043"}, {"2"}, -1});
  }
  bm::Switch native_;
  Controller ctl_;
  VdevId vdev_ = 0;
};

TEST_F(DecapEquiv, StripsShimIdenticallyToNative) {
  auto pkt = decap_packet(0x0042);
  auto n = native_.inject(1, pkt);
  auto e = ctl_.dataplane().inject(1, pkt);
  ASSERT_EQ(n.outputs.size(), 1u);
  ASSERT_EQ(e.outputs.size(), 1u);
  EXPECT_EQ(n.outputs[0].packet.size(), pkt.size() - 10);
  EXPECT_EQ(e.outputs[0].packet, n.outputs[0].packet);
  EXPECT_EQ(e.outputs[0].port, n.outputs[0].port);
}

TEST_F(DecapEquiv, NonMatchingTagKeepsShim) {
  auto pkt = decap_packet(0x0043);
  auto n = native_.inject(1, pkt);
  auto e = ctl_.dataplane().inject(1, pkt);
  ASSERT_EQ(n.outputs.size(), 1u);
  ASSERT_EQ(e.outputs.size(), 1u);
  EXPECT_EQ(n.outputs[0].packet, pkt);
  EXPECT_EQ(e.outputs[0].packet, pkt);
}

TEST_F(DecapEquiv, UnknownTagDroppedBothWays) {
  auto pkt = decap_packet(0x9999);
  EXPECT_TRUE(native_.inject(1, pkt).outputs.empty());
  EXPECT_TRUE(ctl_.dataplane().inject(1, pkt).outputs.empty());
}

TEST_F(DecapEquiv, PayloadBytesSurviveTheShift) {
  // The bytes after the shim slide down 10 positions in `extracted` and
  // the write-back emits the shrunken parsed representation; payload bytes
  // past the extraction window ride along untouched.
  auto pkt = decap_packet(0x0042, /*payload=*/100);
  auto n = native_.inject(1, pkt);
  auto e = ctl_.dataplane().inject(1, pkt);
  ASSERT_EQ(e.outputs.size(), 1u);
  EXPECT_EQ(e.outputs[0].packet, n.outputs[0].packet);
  // Spot-check: byte 14 of the output is the first payload byte (0xC0).
  EXPECT_EQ(e.outputs[0].packet.at(14), 0xC0);
}

}  // namespace
}  // namespace hyper4::hp4
