// Operator tooling: table_dump, DPMU report, P4 source emission / LoC
// accounting, table-usage analysis, and load/unload stability — plus
// documented native-vs-emulated divergences (§4.7).
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "bm/cli.h"
#include "hp4/analysis.h"
#include "hp4/controller.h"
#include "hp4/p4_emit.h"

namespace hyper4::hp4 {
namespace {

using apps::Rule;

VirtualRule vr(const Rule& r) {
  return VirtualRule{r.table, r.action, r.keys, r.args, r.priority};
}

// --- table_dump ---------------------------------------------------------------

TEST(TableDump, ShowsEntriesActionsAndHits) {
  bm::Switch sw(apps::l2_switch());
  apps::apply_rules(sw, {apps::l2_forward("02:00:00:00:00:02", 2)});
  net::EthHeader eth;
  eth.src = net::mac_from_string("02:00:00:00:00:01");
  eth.dst = net::mac_from_string("02:00:00:00:00:02");
  sw.inject(1, net::make_ipv4_tcp(eth, net::Ipv4Header{}, net::TcpHeader{}, 8));

  const std::string dump = sw.table_dump("dmac");
  EXPECT_NE(dump.find("1/1024 entries"), std::string::npos) << dump;
  EXPECT_NE(dump.find("0x020000000002"), std::string::npos) << dump;
  EXPECT_NE(dump.find("forward(0x002)"), std::string::npos) << dump;
  EXPECT_NE(dump.find("hits=1"), std::string::npos) << dump;
}

TEST(TableDump, RendersEveryMatchKind) {
  bm::Switch sw(apps::firewall());
  apps::apply_rules(sw, {apps::firewall_block_tcp_dport(22, 10)});
  const std::string dump = sw.table_dump("l4_filter");
  EXPECT_NE(dump.find("&&&"), std::string::npos) << dump;       // ternary
  EXPECT_NE(dump.find("valid(tcp)=0x1"), std::string::npos) << dump;
  EXPECT_NE(dump.find("prio=10"), std::string::npos) << dump;

  bm::Switch rtr(apps::ipv4_router());
  apps::apply_rules(rtr, {apps::router_route("10.0.1.0", 24, "10.0.1.1", 2)});
  const std::string rd = rtr.table_dump("ipv4_lpm");
  EXPECT_NE(rd.find("/24"), std::string::npos) << rd;
}

TEST(TableDump, AvailableViaCli) {
  bm::Switch sw(apps::l2_switch());
  auto r = bm::run_cli_command(sw, "table_dump smac");
  EXPECT_TRUE(r.ok);
  EXPECT_NE(r.message.find("table smac"), std::string::npos);
  EXPECT_FALSE(bm::run_cli_command(sw, "table_dump nope").ok);
}

// --- DPMU report ---------------------------------------------------------------

TEST(DpmuReport, ListsDevicesBindingsAndQuotas) {
  Controller ctl;
  auto l2 = ctl.load("my_l2", apps::l2_switch(), "tenant_a", 64);
  auto fw = ctl.load("my_fw", apps::firewall(), "tenant_b");
  ctl.attach_ports(l2, {1, 2});
  ctl.attach_ports(fw, {3});
  ctl.bind(l2, 1);
  ctl.bind(fw, std::nullopt);
  ctl.add_rule(l2, vr(apps::l2_forward("02:00:00:00:00:02", 2)), "tenant_a");

  const std::string rep = ctl.dpmu().report();
  EXPECT_NE(rep.find("2 virtual device(s)"), std::string::npos) << rep;
  EXPECT_NE(rep.find("'my_l2' owner=tenant_a"), std::string::npos) << rep;
  EXPECT_NE(rep.find("1/64 virtual"), std::string::npos) << rep;
  EXPECT_NE(rep.find("numbytes=60 (resubmit)"), std::string::npos) << rep;
  EXPECT_NE(rep.find("port 1 -> vdev"), std::string::npos) << rep;
  EXPECT_NE(rep.find("all ports -> vdev"), std::string::npos) << rep;
}

// --- P4 emission / LoC ------------------------------------------------------------

TEST(P4Emit, AppsEmitNonTrivialSource) {
  for (auto& [name, prog] : apps::all_programs()) {
    const std::string src = emit_p4(prog);
    EXPECT_GT(count_loc(src), 30u) << name;
    EXPECT_NE(src.find("parser start"), std::string::npos) << name;
    EXPECT_NE(src.find("control ingress"), std::string::npos) << name;
  }
}

TEST(P4Emit, CountLocSkipsBlanksAndComments) {
  EXPECT_EQ(count_loc("a;\n\n// comment\n  b;\n   \n"), 2u);
  EXPECT_EQ(count_loc(""), 0u);
}

TEST(P4Emit, SubsetSelectsByNeedle) {
  PersonaGenerator gen{PersonaConfig{}};
  const auto prog = gen.generate();
  const std::string drops = emit_p4_subset(prog, "_drop");
  EXPECT_NE(drops.find("s1p1_drop"), std::string::npos);
  EXPECT_EQ(drops.find("s1p1_mod"), std::string::npos);
}

// --- table-usage analysis -----------------------------------------------------------

TEST(Analysis, ReferencedTablesIncludeFixedPipeline) {
  Hp4Compiler c{PersonaConfig{}};
  const auto art = c.compile(apps::l2_switch());
  const auto refs = referenced_tables(art);
  for (const auto& t : {tbl_setup_a(), tbl_setup_b(), tbl_vparse(), tbl_vnet(),
                        tbl_eg_writeback()}) {
    EXPECT_TRUE(refs.contains(t)) << t;
  }
  EXPECT_FALSE(refs.contains(tbl_eg_csum()));  // no checksum in l2
  const auto router = c.compile(apps::ipv4_router());
  EXPECT_TRUE(referenced_tables(router).contains(tbl_eg_csum()));
}

TEST(Analysis, SharedPlusUniqueEqualsTotal) {
  Hp4Compiler c{PersonaConfig{}};
  const auto a = c.compile(apps::firewall());
  const auto b = c.compile(apps::arp_proxy());
  EXPECT_EQ(shared_table_count(a, b) + unique_table_count(a, b),
            referenced_tables(a).size());
  EXPECT_EQ(shared_table_count(a, a), referenced_tables(a).size());
  EXPECT_EQ(unique_table_count(a, a), 0u);
}

TEST(Analysis, EntryBitArithmetic) {
  PersonaConfig cfg;
  EXPECT_EQ(extracted_entry_bits(cfg), 2 * 800 + 16u);
  EXPECT_EQ(meta_entry_bits(cfg), 2 * 256 + 16u);
}

// --- stability -----------------------------------------------------------------------

TEST(Stability, RepeatedLoadUnloadLeavesNoResidue) {
  Controller ctl;
  auto& sw = ctl.dataplane();
  std::map<std::string, std::size_t> baseline;
  for (const auto& t : sw.table_names()) baseline[t] = sw.table(t).size();

  for (int round = 0; round < 5; ++round) {
    auto fw = ctl.load("fw", apps::firewall());
    auto rtr = ctl.load("rtr", apps::ipv4_router());
    ctl.chain({fw, rtr}, {1, 2});
    ctl.add_rule(fw, vr(apps::firewall_l2_forward("02:00:00:00:00:02", 2)));
    ctl.add_rule(rtr, vr(apps::router_route("10.0.1.0", 24, "10.0.1.1", 2)));
    ctl.unload(fw);
    ctl.unload(rtr);
  }
  for (const auto& t : sw.table_names()) {
    EXPECT_EQ(sw.table(t).size(), baseline[t]) << t;
  }
}

// --- documented divergences (§4.7) -----------------------------------------------------

// The persona decides parsing in the ingress pipeline from whatever bytes
// it extracted; a *truncated* TCP packet (IPv4 claims TCP but the L4 header
// is cut short) parse-errors natively yet still matches the TCP virtual
// parse path under emulation. The paper owns this: "HyPer4 can send packets
// that are, in effect, completely different than what it can effectively
// receive... HyPer4 makes an end run around a restriction normally imposed
// by P4, for better or for worse."
TEST(KnownDivergence, TruncatedTcpPacketHandledMoreLiberally) {
  bm::Switch native(apps::firewall());
  apps::apply_rules(native, {apps::firewall_l2_forward("02:00:00:00:00:02", 2)});
  Controller ctl;
  auto vdev = ctl.load("fw", apps::firewall());
  ctl.attach_ports(vdev, {1, 2});
  ctl.bind(vdev, 1);
  ctl.add_rule(vdev, vr(apps::firewall_l2_forward("02:00:00:00:00:02", 2)));

  net::EthHeader eth;
  eth.src = net::mac_from_string("02:00:00:00:00:01");
  eth.dst = net::mac_from_string("02:00:00:00:00:02");
  eth.ethertype = net::kEtherTypeIpv4;
  net::Ipv4Header ip;
  ip.protocol = net::kIpProtoTcp;  // claims TCP...
  net::Packet pkt;
  net::append_eth(pkt, eth);
  net::append_ipv4(pkt, ip);
  for (int i = 0; i < 11; ++i) pkt.append_byte(0);  // ...but only 11 L4 bytes

  auto n = native.inject(1, pkt);
  EXPECT_EQ(n.parse_errors, 1u);       // native parser rejects
  EXPECT_TRUE(n.outputs.empty());
  auto e = ctl.dataplane().inject(1, pkt);
  EXPECT_EQ(e.parse_errors, 0u);       // persona extracts what exists
  EXPECT_EQ(e.outputs.size(), 1u);     // and forwards at L2
}

}  // namespace
}  // namespace hyper4::hp4
