// Golden-keys contract for the engine's observability surface (the shape
// the C ABI exports as JSON and dashboards scrape): every counter and
// histogram MetricsRegistry::snapshot() must carry, the to_json()
// structure, and the packet_path_diagnostics() keys of the VM tier.
// Renaming or dropping a key is an observability break — update the
// goldens here AND DESIGN.md deliberately.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "apps/apps.h"
#include "bench/common.h"
#include "engine/engine.h"
#include "engine/metrics.h"
#include "vm/vm.h"

namespace hyper4 {
namespace {

using bench::Harness;

const std::set<std::string> kCounterGolden = {
    "packets",          "outputs",
    "drops",            "resubmits",
    "recirculates",     "parse_errors",
    "loop_kills",       "batches",
    "backpressure_waits", "consumer_waits",
    "queue_producer_wakeups", "queue_consumer_wakeups",
    "merge_stall_ns",   "drain_wait_ns",
    "arena_fresh_allocs", "control_ops",
    "txn_batches",
};

const std::set<std::string> kHistogramGolden = {
    "packet_latency_us",
    "stages_per_packet",
};

engine::MergedResult run_traffic(engine::TrafficEngine& eng, int packets) {
  const net::Packet probe = bench::worst_case_packet("l2_sw");
  for (int i = 0; i < packets; ++i) eng.inject(1, probe);
  return eng.drain();
}

TEST(EngineMetricsShape, SnapshotCarriesExactlyTheGoldenCounters) {
  Harness h("l2_sw");
  engine::EngineOptions opts;
  opts.workers = 2;
  engine::TrafficEngine eng(h.ctl->generator().generate(), opts);
  (void)run_traffic(eng, 8);

  const engine::MetricsSnapshot snap = eng.metrics().snapshot();
  std::set<std::string> counters;
  for (const auto& [name, v] : snap.counters) counters.insert(name);
  EXPECT_EQ(kCounterGolden, counters);
  std::set<std::string> histograms;
  for (const auto& [name, h2] : snap.histograms) histograms.insert(name);
  EXPECT_EQ(kHistogramGolden, histograms);

  // Traffic actually moved the load-bearing counters.
  EXPECT_EQ(8u, snap.counters.at("packets"));
  EXPECT_GE(snap.counters.at("batches"), 1u);
}

TEST(EngineMetricsShape, ToJsonHasTheDocumentedStructure) {
  Harness h("l2_sw");
  engine::EngineOptions opts;
  opts.workers = 1;
  opts.profile = true;  // populate the histograms too
  engine::TrafficEngine eng(h.ctl->generator().generate(), opts);
  (void)run_traffic(eng, 4);

  const std::string json = eng.metrics().to_json();
  EXPECT_EQ(0u, json.find("{\"counters\":{"));
  EXPECT_NE(std::string::npos, json.find("},\"histograms\":{"));
  for (const std::string& name : kCounterGolden)
    EXPECT_NE(std::string::npos, json.find("\"" + name + "\":"))
        << "counter " << name << " missing from to_json()";
  for (const std::string& name : kHistogramGolden) {
    const auto at = json.find("\"" + name + "\":{\"buckets\":[{\"le\":");
    EXPECT_NE(std::string::npos, at)
        << "histogram " << name << " missing or misshapen in to_json()";
  }
  EXPECT_NE(std::string::npos, json.find("\"count\":"));
  EXPECT_NE(std::string::npos, json.find("\"sum\":"));
  EXPECT_NE(std::string::npos, json.find("\"mean\":"));
}

TEST(EngineMetricsShape, PacketPathDiagnosticsEmptyWithoutVmTier) {
  Harness h("l2_sw");
  engine::EngineOptions opts;
  opts.workers = 2;
  engine::TrafficEngine eng(h.ctl->generator().generate(), opts);
  (void)run_traffic(eng, 4);
  EXPECT_TRUE(eng.packet_path_diagnostics().empty());
}

TEST(EngineMetricsShape, PacketPathDiagnosticsGoldenKeysWithVmTier) {
  Harness h("l2_sw");
  engine::EngineOptions opts;
  opts.workers = 2;
  engine::TrafficEngine eng(h.ctl->generator().generate(), opts);
  h.ctl->attach_engine(&eng);
  eng.set_packet_path(vm::engine_fast_path(h.ctl->generator().config()));
  const engine::MergedResult m = run_traffic(eng, 8);
  EXPECT_EQ(8u, m.per_packet.size());

  const std::map<std::string, std::uint64_t> diag =
      eng.packet_path_diagnostics();
  for (const char* key :
       {"packets_bytecode", "packets_fallback", "compiles", "recompiles"})
    EXPECT_TRUE(diag.count(key)) << "diagnostic key " << key << " missing";
  // Every packet went through a tier, and the bytecode tier compiled at
  // least once; any fallback names its reason as "fallback.<reason>".
  EXPECT_EQ(8u, diag.at("packets_bytecode") + diag.at("packets_fallback"));
  EXPECT_GE(diag.at("compiles"), 1u);
  std::uint64_t fallback_by_reason = 0;
  for (const auto& [key, v] : diag)
    if (key.rfind("fallback.", 0) == 0) fallback_by_reason += v;
  EXPECT_EQ(diag.at("packets_fallback"), fallback_by_reason);
  h.ctl->attach_engine(nullptr);
}

}  // namespace
}  // namespace hyper4
