// The core HyPer4 property: a persona configured by the compiler/DPMU is
// functionally equivalent to the native program — identical packets out of
// identical ports — for all four of the paper's network functions.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "hp4/analysis.h"
#include "hp4/controller.h"
#include "net/checksum.h"
#include "util/rng.h"

namespace hyper4::hp4 {
namespace {

using apps::Rule;

VirtualRule vr(const Rule& r) {
  return VirtualRule{r.table, r.action, r.keys, r.args, r.priority};
}

const char* kMacH1 = "02:00:00:00:00:01";
const char* kMacH2 = "02:00:00:00:00:02";
const char* kMacH3 = "02:00:00:00:00:03";
const char* kMacRtr = "02:aa:00:00:00:ff";

net::Packet tcp_packet(const char* smac, const char* dmac, const char* sip,
                       const char* dip, std::uint16_t dport,
                       std::size_t payload = 64) {
  net::EthHeader eth;
  eth.src = net::mac_from_string(smac);
  eth.dst = net::mac_from_string(dmac);
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string(sip);
  ip.dst = net::ipv4_from_string(dip);
  net::TcpHeader tcp;
  tcp.src_port = 40000;
  tcp.dst_port = dport;
  return net::make_ipv4_tcp(eth, ip, tcp, payload);
}

// Sort outputs so multi-packet comparisons are order-insensitive.
std::vector<std::pair<std::uint16_t, std::string>> canon(
    const bm::ProcessResult& r) {
  std::vector<std::pair<std::uint16_t, std::string>> out;
  for (const auto& o : r.outputs) out.emplace_back(o.port, o.packet.to_hex());
  std::sort(out.begin(), out.end());
  return out;
}

// Harness: the same program + rules, native and emulated, fed the same
// packets.
class EquivHarness {
 public:
  EquivHarness(const p4::Program& prog, const std::vector<Rule>& rules,
               const std::vector<std::uint16_t>& ports)
      : native_(prog), ctl_() {
    vdev_ = ctl_.load(prog.name, prog);
    ctl_.attach_ports(vdev_, ports);
    for (auto p : ports) ctl_.bind(vdev_, p);
    for (const auto& r : rules) {
      apps::apply_rule(native_, r);
      ctl_.add_rule(vdev_, vr(r));
    }
  }

  // Inject into both and assert identical (port, bytes) outputs.
  void expect_equal(std::uint16_t port, const net::Packet& pkt,
                    const std::string& what) {
    auto n = native_.inject(port, pkt);
    auto e = ctl_.dataplane().inject(port, pkt);
    EXPECT_EQ(canon(n), canon(e)) << what;
    last_native_ = std::move(n);
    last_emulated_ = std::move(e);
  }

  bm::Switch& native() { return native_; }
  Controller& controller() { return ctl_; }
  VdevId vdev() const { return vdev_; }
  const bm::ProcessResult& last_native() const { return last_native_; }
  const bm::ProcessResult& last_emulated() const { return last_emulated_; }

 private:
  bm::Switch native_;
  Controller ctl_;
  VdevId vdev_ = 0;
  bm::ProcessResult last_native_, last_emulated_;
};

std::vector<Rule> l2_rules() {
  return {apps::l2_forward(kMacH1, 1), apps::l2_forward(kMacH2, 2),
          apps::l2_forward(kMacH3, 3)};
}

// ---------------------------------------------------------------------------
// L2 switch

class L2Equiv : public ::testing::Test {
 protected:
  L2Equiv() : h_(apps::l2_switch(), l2_rules(), {1, 2, 3}) {}
  EquivHarness h_;
};

TEST_F(L2Equiv, ForwardsKnownMac) {
  h_.expect_equal(1, tcp_packet(kMacH1, kMacH2, "10.0.0.1", "10.0.0.2", 80),
                  "h1->h2");
  ASSERT_EQ(h_.last_emulated().outputs.size(), 1u);
  EXPECT_EQ(h_.last_emulated().outputs[0].port, 2);
}

TEST_F(L2Equiv, DropsUnknownMac) {
  h_.expect_equal(1, tcp_packet(kMacH1, "02:00:00:00:00:99", "10.0.0.1",
                                "10.0.0.2", 80),
                  "unknown dmac");
  EXPECT_TRUE(h_.last_emulated().outputs.empty());
}

TEST_F(L2Equiv, PayloadRidesThrough) {
  auto pkt = tcp_packet(kMacH1, kMacH3, "10.0.0.1", "10.0.0.3", 80, 400);
  h_.expect_equal(1, pkt, "payload");
  ASSERT_EQ(h_.last_emulated().outputs.size(), 1u);
  EXPECT_EQ(h_.last_emulated().outputs[0].packet, pkt);
}

TEST_F(L2Equiv, Table1EmulatedMatchCount) {
  h_.expect_equal(1, tcp_packet(kMacH1, kMacH2, "10.0.0.1", "10.0.0.2", 80),
                  "match count probe");
  // Paper Table 1: l2 switch native 2, HyPer4 13.
  EXPECT_EQ(h_.last_native().match_count(), 2u);
  EXPECT_EQ(h_.last_emulated().match_count(), 13u);
  EXPECT_EQ(h_.last_emulated().resubmits, 0u);  // fits the 20-byte default
}

TEST_F(L2Equiv, RandomPacketSweep) {
  util::Rng rng(42);
  const char* macs[] = {kMacH1, kMacH2, kMacH3, "02:00:00:00:00:99"};
  for (int i = 0; i < 40; ++i) {
    const char* src = macs[rng.uniform(0, 3)];
    const char* dst = macs[rng.uniform(0, 3)];
    auto pkt = tcp_packet(src, dst, "10.0.0.1", "10.0.0.9",
                          static_cast<std::uint16_t>(rng.uniform(1, 65535)),
                          rng.uniform(0, 200));
    h_.expect_equal(static_cast<std::uint16_t>(rng.uniform(1, 3)), pkt,
                    "sweep " + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// Firewall

std::vector<Rule> firewall_rules() {
  return {
      apps::firewall_l2_forward(kMacH1, 1),
      apps::firewall_l2_forward(kMacH2, 2),
      apps::firewall_block_tcp_dport(22, 10),
      apps::firewall_block_udp_dport(53, 10),
      apps::firewall_block_ip("10.6.6.6", "255.255.255.255", "0.0.0.0",
                              "0.0.0.0", 20),
  };
}

class FirewallEquiv : public ::testing::Test {
 protected:
  FirewallEquiv() : h_(apps::firewall(), firewall_rules(), {1, 2}) {}
  EquivHarness h_;
};

TEST_F(FirewallEquiv, AllowsUnfilteredTcp) {
  h_.expect_equal(1, tcp_packet(kMacH1, kMacH2, "10.0.0.1", "10.0.0.2", 80),
                  "tcp 80");
  ASSERT_EQ(h_.last_emulated().outputs.size(), 1u);
  EXPECT_EQ(h_.last_emulated().outputs[0].port, 2);
}

TEST_F(FirewallEquiv, BlocksTcpPort22) {
  h_.expect_equal(1, tcp_packet(kMacH1, kMacH2, "10.0.0.1", "10.0.0.2", 22),
                  "tcp 22");
  EXPECT_TRUE(h_.last_emulated().outputs.empty());
}

TEST_F(FirewallEquiv, UdpVsTcpValidityDisambiguation) {
  net::EthHeader eth;
  eth.src = net::mac_from_string(kMacH1);
  eth.dst = net::mac_from_string(kMacH2);
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string("10.0.0.1");
  ip.dst = net::ipv4_from_string("10.0.0.2");
  net::UdpHeader udp;
  udp.src_port = 1111;
  udp.dst_port = 22;  // UDP 22 is allowed (only TCP 22 blocked)
  h_.expect_equal(1, net::make_ipv4_udp(eth, ip, udp, 16), "udp 22");
  EXPECT_EQ(h_.last_emulated().outputs.size(), 1u);
  udp.dst_port = 53;  // UDP 53 is blocked
  h_.expect_equal(1, net::make_ipv4_udp(eth, ip, udp, 16), "udp 53");
  EXPECT_TRUE(h_.last_emulated().outputs.empty());
}

TEST_F(FirewallEquiv, BlocksBySourceIp) {
  h_.expect_equal(1, tcp_packet(kMacH1, kMacH2, "10.6.6.6", "10.0.0.2", 80),
                  "bad source");
  EXPECT_TRUE(h_.last_emulated().outputs.empty());
}

TEST_F(FirewallEquiv, NonIpBypassesFilters) {
  auto arp = net::make_arp_reply(net::mac_from_string(kMacH1),
                                 net::ipv4_from_string("10.0.0.1"),
                                 net::mac_from_string(kMacH2),
                                 net::ipv4_from_string("10.0.0.2"));
  h_.expect_equal(1, arp, "arp through firewall");
  ASSERT_EQ(h_.last_emulated().outputs.size(), 1u);
  EXPECT_EQ(h_.last_emulated().outputs[0].port, 2);
}

TEST_F(FirewallEquiv, Table1EmulatedMatchCountAndResubmit) {
  h_.expect_equal(1, tcp_packet(kMacH1, kMacH2, "10.0.0.1", "10.0.0.2", 80),
                  "probe");
  EXPECT_EQ(h_.last_native().match_count(), 3u);
  // Paper Table 1: firewall HyPer4 = 22; our persona layout yields 18
  // (documented in EXPERIMENTS.md) — the shape (≈6–7×) is what matters.
  EXPECT_EQ(h_.last_emulated().match_count(), 18u);
  // The 54-byte requirement rounds to 60 and forces one resubmit (§6.4).
  EXPECT_EQ(h_.last_emulated().resubmits, 1u);
  EXPECT_EQ(h_.last_native().resubmits, 0u);
}

TEST_F(FirewallEquiv, RandomPacketSweep) {
  util::Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    const std::uint16_t dport =
        rng.coin(0.3) ? 22 : static_cast<std::uint16_t>(rng.uniform(1, 65535));
    const char* sip = rng.coin(0.2) ? "10.6.6.6" : "10.0.0.1";
    auto pkt = tcp_packet(kMacH1, kMacH2, sip, "10.0.0.2", dport,
                          rng.uniform(0, 300));
    h_.expect_equal(1, pkt, "sweep " + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// ARP proxy

std::vector<Rule> arp_rules() {
  return {
      apps::arp_proxy_entry("10.0.0.2", kMacH2),
      apps::arp_proxy_entry("10.0.0.3", kMacH3),
      apps::arp_proxy_l2_forward(kMacH1, 1),
      apps::arp_proxy_l2_forward(kMacH2, 2),
      apps::arp_proxy_l2_forward(kMacH3, 3),
  };
}

class ArpProxyEquiv : public ::testing::Test {
 protected:
  ArpProxyEquiv() : h_(apps::arp_proxy(), arp_rules(), {1, 2, 3}) {}
  EquivHarness h_;

  net::Packet request(const char* smac, const char* sip, const char* tip) {
    return net::make_arp_request(net::mac_from_string(smac),
                                 net::ipv4_from_string(sip),
                                 net::ipv4_from_string(tip));
  }
};

TEST_F(ArpProxyEquiv, AnswersProxiedRequest) {
  h_.expect_equal(1, request(kMacH1, "10.0.0.1", "10.0.0.2"), "arp for h2");
  ASSERT_EQ(h_.last_emulated().outputs.size(), 1u);
  EXPECT_EQ(h_.last_emulated().outputs[0].port, 1);
  auto arp = net::read_arp(h_.last_emulated().outputs[0].packet);
  ASSERT_TRUE(arp);
  EXPECT_EQ(arp->oper, net::kArpOpReply);
  EXPECT_EQ(net::mac_to_string(arp->sha), kMacH2);
  EXPECT_EQ(arp->spa, net::ipv4_from_string("10.0.0.2"));
}

TEST_F(ArpProxyEquiv, UnknownTargetNotAnswered) {
  h_.expect_equal(1, request(kMacH1, "10.0.0.1", "10.0.0.77"), "unknown tpa");
  EXPECT_TRUE(h_.last_emulated().outputs.empty());
}

TEST_F(ArpProxyEquiv, SwitchesNonArpTraffic) {
  h_.expect_equal(1, tcp_packet(kMacH1, kMacH3, "10.0.0.1", "10.0.0.3", 80),
                  "tcp through proxy");
  ASSERT_EQ(h_.last_emulated().outputs.size(), 1u);
  EXPECT_EQ(h_.last_emulated().outputs[0].port, 3);
}

TEST_F(ArpProxyEquiv, Table1NinePrimitiveAction) {
  h_.expect_equal(2, request(kMacH2, "10.0.0.2", "10.0.0.3"), "arp worst case");
  EXPECT_EQ(h_.last_native().match_count(), 4u);
  // Paper Table 1: arp_proxy HyPer4 = 48; our layout yields 46 (the paper's
  // own §6.5 count is 46 ingress + 2 egress).
  EXPECT_EQ(h_.last_emulated().match_count(), 46u);
}

TEST_F(ArpProxyEquiv, RandomSweep) {
  util::Rng rng(11);
  const char* ips[] = {"10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.99"};
  for (int i = 0; i < 30; ++i) {
    auto pkt = request(kMacH1, ips[rng.uniform(0, 3)], ips[rng.uniform(0, 3)]);
    h_.expect_equal(static_cast<std::uint16_t>(rng.uniform(1, 3)), pkt,
                    "sweep " + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// IPv4 router

std::vector<Rule> router_rules() {
  return {
      apps::router_accept_mac(kMacRtr),
      apps::router_route("10.0.1.0", 24, "10.0.1.10", 2),
      apps::router_route("10.0.0.0", 16, "10.0.99.1", 3),
      apps::router_arp_entry("10.0.1.10", kMacH2),
      apps::router_arp_entry("10.0.99.1", kMacH3),
      apps::router_port_mac(2, kMacRtr),
      apps::router_port_mac(3, kMacRtr),
  };
}

class RouterEquiv : public ::testing::Test {
 protected:
  RouterEquiv() : h_(apps::ipv4_router(), router_rules(), {1, 2, 3}) {}
  EquivHarness h_;
};

TEST_F(RouterEquiv, RoutesRewritesAndFixesChecksum) {
  h_.expect_equal(1, tcp_packet(kMacH1, kMacRtr, "10.0.0.1", "10.0.1.7", 80),
                  "routed packet");
  ASSERT_EQ(h_.last_emulated().outputs.size(), 1u);
  const auto& out = h_.last_emulated().outputs[0];
  EXPECT_EQ(out.port, 2);
  auto ip = net::read_ipv4(out.packet);
  ASSERT_TRUE(ip);
  EXPECT_EQ(ip->ttl, 63);
  EXPECT_EQ(net::internet_checksum(out.packet.bytes().subspan(
                net::kEthHeaderLen, net::kIpv4HeaderLen)),
            0);
}

TEST_F(RouterEquiv, LongestPrefixWinsViaDpmuPriorities) {
  h_.expect_equal(1, tcp_packet(kMacH1, kMacRtr, "10.0.0.1", "10.0.1.9", 80),
                  "/24 route");
  ASSERT_EQ(h_.last_emulated().outputs.size(), 1u);
  EXPECT_EQ(h_.last_emulated().outputs[0].port, 2);
  h_.expect_equal(1, tcp_packet(kMacH1, kMacRtr, "10.0.0.1", "10.0.2.9", 80),
                  "/16 route");
  ASSERT_EQ(h_.last_emulated().outputs.size(), 1u);
  EXPECT_EQ(h_.last_emulated().outputs[0].port, 3);
}

TEST_F(RouterEquiv, DropsWrongMacNoRouteAndNonIp) {
  h_.expect_equal(1, tcp_packet(kMacH1, kMacH2, "10.0.0.1", "10.0.1.7", 80),
                  "wrong dmac");
  EXPECT_TRUE(h_.last_emulated().outputs.empty());
  h_.expect_equal(1, tcp_packet(kMacH1, kMacRtr, "10.0.0.1", "99.9.9.9", 80),
                  "no route");
  EXPECT_TRUE(h_.last_emulated().outputs.empty());
  auto arp = net::make_arp_request(net::mac_from_string(kMacH1),
                                   net::ipv4_from_string("10.0.0.1"),
                                   net::ipv4_from_string("10.0.0.2"));
  h_.expect_equal(1, arp, "non-ip parser drop");
  EXPECT_TRUE(h_.last_emulated().outputs.empty());
}

TEST_F(RouterEquiv, Table1EmulatedMatchCount) {
  h_.expect_equal(1, tcp_packet(kMacH1, kMacRtr, "10.0.0.1", "10.0.1.7", 80),
                  "probe");
  EXPECT_EQ(h_.last_native().match_count(), 4u);
  // Paper Table 1: router HyPer4 = 28; our pipeline adds the egress
  // checksum fix-up table, yielding 29.
  EXPECT_EQ(h_.last_emulated().match_count(), 29u);
}

TEST_F(RouterEquiv, RandomSweep) {
  util::Rng rng(23);
  const char* dips[] = {"10.0.1.1", "10.0.1.200", "10.0.2.3", "10.0.44.5",
                        "172.16.0.1"};
  for (int i = 0; i < 30; ++i) {
    auto pkt = tcp_packet(kMacH1, rng.coin(0.8) ? kMacRtr : kMacH2, "10.0.0.1",
                          dips[rng.uniform(0, 4)],
                          static_cast<std::uint16_t>(rng.uniform(1, 65535)),
                          rng.uniform(0, 128));
    h_.expect_equal(1, pkt, "sweep " + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// DPMU isolation

TEST(DpmuIsolation, UnauthorizedRequesterRejected) {
  Controller ctl;
  auto id = ctl.load("l2", apps::l2_switch(), "tenant_a");
  ctl.attach_ports(id, {1, 2});
  EXPECT_THROW(
      ctl.dpmu().table_add(id, vr(apps::l2_forward(kMacH1, 1)), "tenant_b"),
      util::IsolationError);
  EXPECT_NO_THROW(
      ctl.dpmu().table_add(id, vr(apps::l2_forward(kMacH1, 1)), "tenant_a"));
  ctl.dpmu().authorize(id, "tenant_b");
  EXPECT_NO_THROW(
      ctl.dpmu().table_add(id, vr(apps::l2_forward(kMacH2, 2)), "tenant_b"));
}

TEST(DpmuIsolation, QuotaEnforced) {
  Controller ctl;
  auto id = ctl.dpmu().load_program(
      "l2", ctl.compile(apps::l2_switch()), "admin", /*entry_quota=*/2);
  ctl.attach_ports(id, {1, 2});
  ctl.dpmu().table_add(id, vr(apps::l2_forward(kMacH1, 1)), "admin");
  ctl.dpmu().table_add(id, vr(apps::l2_forward(kMacH2, 2)), "admin");
  EXPECT_THROW(ctl.dpmu().table_add(id, vr(apps::l2_forward(kMacH3, 1)), "admin"),
               util::IsolationError);
  // Deleting frees quota.
  ctl.dpmu().table_delete(id, 1, "admin");
  EXPECT_NO_THROW(
      ctl.dpmu().table_add(id, vr(apps::l2_forward(kMacH3, 1)), "admin"));
}

TEST(DpmuIsolation, EntryDeleteRestoresMiss) {
  Controller ctl;
  auto id = ctl.load("l2", apps::l2_switch());
  ctl.attach_ports(id, {1, 2});
  ctl.bind(id, 1);
  auto vh = ctl.add_rule(id, vr(apps::l2_forward(kMacH2, 2)));
  auto pkt = tcp_packet(kMacH1, kMacH2, "10.0.0.1", "10.0.0.2", 80);
  EXPECT_EQ(ctl.dataplane().inject(1, pkt).outputs.size(), 1u);
  ctl.dpmu().table_delete(id, vh, "admin");
  EXPECT_TRUE(ctl.dataplane().inject(1, pkt).outputs.empty());
}

TEST(DpmuIsolation, TwoProgramsDoNotInterfere) {
  // Two l2 switches with conflicting forwarding: same MAC, different port.
  Controller ctl;
  auto a = ctl.load("l2_a", apps::l2_switch(), "a");
  auto b = ctl.load("l2_b", apps::l2_switch(), "b");
  ctl.attach_ports(a, {1, 2});
  ctl.attach_ports(b, {3, 4});
  ctl.bind(a, 1);
  ctl.bind(b, 3);
  ctl.dpmu().table_add(a, vr(apps::l2_forward(kMacH2, 2)), "a");
  ctl.dpmu().table_add(b, vr(apps::l2_forward(kMacH2, 4)), "b");
  auto pkt = tcp_packet(kMacH1, kMacH2, "10.0.0.1", "10.0.0.2", 80);
  auto ra = ctl.dataplane().inject(1, pkt);
  ASSERT_EQ(ra.outputs.size(), 1u);
  EXPECT_EQ(ra.outputs[0].port, 2);
  auto rb = ctl.dataplane().inject(3, pkt);
  ASSERT_EQ(rb.outputs.size(), 1u);
  EXPECT_EQ(rb.outputs[0].port, 4);
}

TEST(DpmuIsolation, UnloadRemovesAllState) {
  Controller ctl;
  auto& sw = ctl.dataplane();
  const auto baseline_vparse = sw.table(tbl_vparse()).size();
  auto id = ctl.load("fw", apps::firewall());
  ctl.attach_ports(id, {1, 2});
  ctl.bind(id, 1);
  ctl.add_rule(id, vr(apps::firewall_l2_forward(kMacH2, 2)));
  EXPECT_GT(sw.table(tbl_vparse()).size(), baseline_vparse);
  ctl.dpmu().unload(id);
  EXPECT_EQ(sw.table(tbl_vparse()).size(), baseline_vparse);
  EXPECT_EQ(sw.table(tbl_setup_a()).size(), 0u);
  EXPECT_EQ(sw.table(tbl_vnet()).size(), 0u);
}

}  // namespace
}  // namespace hyper4::hp4
