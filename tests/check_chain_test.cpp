// The chained multi-vdev differential oracle (ISSUE 7): generation
// determinism, four-backend equivalence over seeded chains, mutation
// catching, vdev-name attribution (S2), chain repro round-trips, the chain
// reducer, and the friendly replay-file hint (S1).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "check/diff_runner.h"
#include "check/program_gen.h"
#include "check/reducer.h"
#include "check/repro.h"
#include "util/error.h"

namespace fs = std::filesystem;

namespace hyper4::check {
namespace {

ChainCase gen_chain(std::uint64_t seed, std::size_t depth) {
  return ProgramGen().generate_chain(seed, depth);
}

TEST(ChainGen, DeterministicAndDistinctLinks) {
  const ChainCase a = gen_chain(7, 3);
  const ChainCase b = gen_chain(7, 3);
  ASSERT_EQ(a.links.size(), 3u);
  EXPECT_EQ(chain_repro_commands_text(a), chain_repro_commands_text(b));
  // Links are independently generated programs with distinct names.
  EXPECT_NE(a.links[0].name, a.links[1].name);
  EXPECT_NE(a.links[1].name, a.links[2].name);
  EXPECT_FALSE(a.packets.empty());
  // Chains are always stateless (the persona would skip the whole case).
  for (const auto& l : a.links) {
    EXPECT_TRUE(l.program.counters.empty()) << l.name;
    EXPECT_TRUE(l.program.registers.empty()) << l.name;
  }
}

TEST(ChainDiff, SeededChainsAreEquivalentAcrossAllBackends) {
  const DiffRunner runner;
  std::size_t checked = 0;
  std::size_t skipped = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const ChainCase c = gen_chain(seed, 2 + (seed % 2));
    const DiffReport rep = runner.run_chain(c);
    ASSERT_TRUE(rep.equivalent) << "seed " << seed << ": " << rep.str();
    if (rep.persona_ran) {
      ++checked;
      EXPECT_TRUE(rep.vm_ran) << "seed " << seed;
    } else {
      ++skipped;
    }
  }
  // The generator targets the persona envelope; most chains must actually
  // exercise all four backends.
  EXPECT_GT(checked, skipped);
}

TEST(ChainDiff, DropRuleMutationIsCaught) {
  DiffOptions opts;
  opts.mutation = Mutation::kDropPersonaRule;
  const DiffRunner runner(opts);
  const DiffRunner clean;
  bool caught = false;
  for (std::uint64_t seed = 1; seed <= 30 && !caught; ++seed) {
    const ChainCase c = gen_chain(seed, 2);
    if (!clean.run_chain(c).equivalent) continue;  // only plant on clean
    const DiffReport rep = runner.run_chain(c);
    if (!rep.persona_ran) continue;
    if (!rep.equivalent) {
      caught = true;
      ASSERT_TRUE(rep.divergence.has_value());
      EXPECT_EQ(rep.divergence->rhs, "persona");
    }
  }
  EXPECT_TRUE(caught) << "drop-rule plant never diverged a chain";
}

TEST(ChainDiff, CorruptEngineByteMutationIsCaught) {
  DiffOptions opts;
  opts.mutation = Mutation::kCorruptEngineByte;
  const DiffRunner runner(opts);
  bool caught = false;
  for (std::uint64_t seed = 1; seed <= 20 && !caught; ++seed) {
    const DiffReport rep = runner.run_chain(gen_chain(seed, 2));
    if (!rep.persona_ran) continue;
    if (!rep.equivalent) {
      caught = true;
      ASSERT_TRUE(rep.divergence.has_value());
      EXPECT_EQ(rep.divergence->rhs, "engine");
    }
  }
  EXPECT_TRUE(caught) << "corrupt-byte plant never diverged a chain";
}

TEST(ChainDiff, TmDivergenceAttributionNamesTheVdev) {
  const std::vector<std::string> names = {"l0_nat", "l1_acl", "l2_tag"};
  // Agreeing recirculation counts: the packet was inside that link.
  EXPECT_EQ(tm_divergence_vdev(names, 0, 0), "l0_nat");
  EXPECT_EQ(tm_divergence_vdev(names, 1, 1), "l1_acl");
  EXPECT_EQ(tm_divergence_vdev(names, 2, 2), "l2_tag");
  // Disagreeing counts: the smaller one is the last agreed hop.
  EXPECT_EQ(tm_divergence_vdev(names, 2, 1), "l1_acl");
  EXPECT_EQ(tm_divergence_vdev(names, 0, 2), "l0_nat");
  // Clamped to the chain (extra recirculations past the last hop, e.g. a
  // resubmitting final link).
  EXPECT_EQ(tm_divergence_vdev(names, 9, 7), "l2_tag");
  EXPECT_EQ(tm_divergence_vdev({}, 1, 1), "?");
}

TEST(ChainRepro, RoundTripsThroughDisk) {
  const ChainCase c = gen_chain(11, 3);
  const std::string base = testing::TempDir() + "/chain_repro_rt";
  const std::string cmds = write_chain_repro(c, base);
  const ChainCase back = load_chain_repro(cmds);

  ASSERT_EQ(back.links.size(), c.links.size());
  for (std::size_t i = 0; i < c.links.size(); ++i) {
    EXPECT_EQ(back.links[i].name, c.links[i].name);
    EXPECT_EQ(back.links[i].rules.size(), c.links[i].rules.size());
  }
  EXPECT_EQ(back.packets.size(), c.packets.size());
  EXPECT_EQ(back.seed, c.seed);
  EXPECT_EQ(back.ports, c.ports);

  // The reloaded case must behave identically through the oracle.
  const DiffRunner runner;
  EXPECT_EQ(runner.run_chain(back).equivalent,
            runner.run_chain(c).equivalent);
}

TEST(ChainRepro, LoadRejectsMalformedFiles) {
  const std::string dir = testing::TempDir() + "/chain_repro_bad";
  fs::create_directories(dir);
  {
    std::ofstream out(dir + "/bad.cmds");
    out << "chain 2\nlink 0 a missing0.p4\n";
  }
  EXPECT_THROW(load_chain_repro(dir + "/bad.cmds"), util::Error);
  EXPECT_THROW(load_chain_repro(dir + "/nonexistent.cmds"), util::Error);
}

TEST(ChainReduce, ShrinksWhilePinningTheDivergence) {
  DiffOptions opts;
  opts.mutation = Mutation::kDropPersonaRule;
  const DiffRunner runner(opts);
  const DiffRunner clean;

  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const ChainCase c = gen_chain(seed, 2);
    if (!clean.run_chain(c).equivalent) continue;
    const DiffReport rep = runner.run_chain(c);
    if (rep.equivalent || !rep.persona_ran) continue;

    const Divergence want = *rep.divergence;
    ReduceStats stats;
    const ChainCase minimal = reduce_chain(
        c,
        [&](const ChainCase& cand) {
          const DiffReport r = runner.run_chain(cand);
          return !r.equivalent && r.divergence &&
                 r.divergence->kind == want.kind &&
                 clean.run_chain(cand).equivalent;
        },
        &stats);
    EXPECT_GT(stats.attempts, 0u);
    // Still fails the same way, and got no bigger.
    EXPECT_FALSE(runner.run_chain(minimal).equivalent);
    EXPECT_LE(minimal.packets.size(), c.packets.size());
    std::size_t rules_before = 0, rules_after = 0;
    for (const auto& l : c.links) rules_before += l.rules.size();
    for (const auto& l : minimal.links) rules_after += l.rules.size();
    EXPECT_LE(rules_after, rules_before);
    return;  // one reduced case is enough
  }
  GTEST_SKIP() << "no divergent chain seed found in range";
}

TEST(ReplayHint, SuggestsSiblingReproFiles) {
  const std::string dir = testing::TempDir() + "/replay_hint";
  fs::create_directories(dir);
  { std::ofstream out(dir + "/repro_41.cmds"); out << "seed 41\n"; }
  { std::ofstream out(dir + "/repro_41.p4"); out << "// p4\n"; }

  const std::string hint = replay_file_hint(dir + "/repro_42.cmds");
  EXPECT_NE(hint.find("does not exist"), std::string::npos) << hint;
  EXPECT_NE(hint.find("repro_41.cmds"), std::string::npos) << hint;

  // Missing directory: says so instead of suggesting.
  const std::string nodir = replay_file_hint(dir + "/nope/x.cmds");
  EXPECT_NE(nodir.find("does not exist"), std::string::npos) << nodir;

  // A directory path is diagnosed as such.
  const std::string isdir = replay_file_hint(dir);
  EXPECT_NE(isdir.find("directory"), std::string::npos) << isdir;
}

}  // namespace
}  // namespace hyper4::check
