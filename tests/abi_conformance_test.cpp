// Conformance suite for the stable C ABI (include/hyper4/hyper4.h).
//
// Exercises EVERY exported function on its success path and on every
// documented error path: null/stale handles, double-destroy, buffer-too-
// small NOSPACE (with required-size agreement), wrong-configuration
// rejections, and error-code/h4_err_str agreement. Also pins ABI
// stability: the header's H4_API declarations, the committed allowlist
// (tests/fixtures/abi_symbols.txt) and the shared library's dynamic
// symbol table must all name the same set, and the header must compile
// as strict C11 (tests/abi_header_c11.c, compiled with the C toolchain,
// drives a probe through C linkage).
#include <hyper4/hyper4.h>

#include <dlfcn.h>
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

extern "C" int h4_header_c_probe(void);

namespace {

namespace fs = std::filesystem;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string l2_source() {
  return read_file(std::string(HP4_SOURCE_DIR) + "/examples/p4/l2_switch.p4");
}
std::string firewall_source() {
  return read_file(std::string(HP4_SOURCE_DIR) + "/examples/p4/firewall.p4");
}

// A 64-byte ethernet frame (the persona parser wants full-size frames).
std::vector<uint8_t> frame(const std::array<uint8_t, 6>& dst,
                           const std::array<uint8_t, 6>& src) {
  std::vector<uint8_t> b(64, 0);
  std::memcpy(b.data(), dst.data(), 6);
  std::memcpy(b.data() + 6, src.data(), 6);
  b[12] = 0x08;
  b[13] = 0x00;
  return b;
}

constexpr std::array<uint8_t, 6> kMacA{0, 0, 0, 0, 0, 1};
constexpr std::array<uint8_t, 6> kMacB{0, 0, 0, 0, 0, 2};

// Instance with l2_switch loaded on ports 1,2, bound to all ingress, and a
// dmac rule forwarding MacB -> port 2.
struct Fixture {
  h4_instance* inst = nullptr;
  h4_vdev vdev = 0;

  explicit Fixture(const h4_options* opt = nullptr) {
    h4_options o;
    h4_options_init(&o);
    if (opt) o = *opt;
    EXPECT_EQ(H4_OK, h4_open(&o, &inst));
    const std::string src = l2_source();
    EXPECT_EQ(H4_OK, h4_vdev_load(inst, "l2", src.c_str(), &vdev));
    const uint16_t ports[] = {1, 2};
    EXPECT_EQ(H4_OK, h4_vdev_attach_ports(inst, vdev, ports, 2));
    EXPECT_EQ(H4_OK, h4_vdev_bind(inst, vdev, -1));
    const char* keys[] = {"00:00:00:00:00:02"};
    const char* args[] = {"2"};
    uint64_t handle = 0;
    EXPECT_EQ(H4_OK, h4_rule_add(inst, vdev, "dmac", "forward", keys, 1,
                                 args, 1, -1, &handle));
  }
  ~Fixture() {
    if (inst) h4_close(inst);
  }
};

std::string fetch(h4_instance* inst,
                  int (*fn)(h4_instance*, char*, size_t, size_t*)) {
  size_t need = 0;
  int rc = fn(inst, nullptr, 0, &need);
  EXPECT_TRUE(rc == H4_OK || rc == H4_ERR_NOSPACE);
  std::string buf(need, '\0');
  EXPECT_EQ(H4_OK, fn(inst, buf.data(), buf.size(), &need));
  buf.resize(need > 0 ? need - 1 : 0);
  return buf;
}

// ---- ABI stability -------------------------------------------------------

std::set<std::string> header_symbols() {
  const std::string hdr =
      read_file(std::string(HP4_SOURCE_DIR) + "/include/hyper4/hyper4.h");
  // Every exported function is declared "H4_API <ret> h4_name(".
  std::set<std::string> out;
  const std::regex decl(R"(H4_API[^;]*?\b(h4_[a-z0-9_]+)\s*\()");
  for (auto it = std::sregex_iterator(hdr.begin(), hdr.end(), decl);
       it != std::sregex_iterator(); ++it)
    out.insert((*it)[1]);
  return out;
}

std::set<std::string> allowlist_symbols() {
  std::ifstream in(std::string(HP4_SOURCE_DIR) +
                   "/tests/fixtures/abi_symbols.txt");
  EXPECT_TRUE(in.good());
  std::set<std::string> out;
  for (std::string line; std::getline(in, line);) {
    if (line.empty() || line[0] == '#') continue;
    out.insert(line);
  }
  return out;
}

TEST(AbiStability, HeaderMatchesCommittedAllowlist) {
  const auto header = header_symbols();
  const auto allow = allowlist_symbols();
  EXPECT_EQ(allow, header)
      << "include/hyper4/hyper4.h and tests/fixtures/abi_symbols.txt "
         "disagree: an ABI change must update both deliberately";
  EXPECT_EQ(25u, allow.size());
}

TEST(AbiStability, EverySymbolExportedWithCLinkage) {
  for (const std::string& sym : allowlist_symbols())
    EXPECT_NE(nullptr, ::dlsym(RTLD_DEFAULT, sym.c_str()))
        << sym << " not found in the dynamic symbol table — dropped from "
        << "the shared library or C++-mangled";
}

TEST(AbiStability, HeaderCompilesAndRunsAsC11) {
  // h4_header_c_probe is compiled from tests/abi_header_c11.c as strict
  // C11; a nonzero value identifies the failing step.
  EXPECT_EQ(0, h4_header_c_probe());
}

TEST(AbiStability, VersionMacrosMatchRuntime) {
  int32_t maj = -1, min = -1, pat = -1;
  EXPECT_EQ(H4_OK, h4_version(&maj, &min, &pat));
  EXPECT_EQ(H4_VERSION_MAJOR, maj);
  EXPECT_EQ(H4_VERSION_MINOR, min);
  EXPECT_EQ(H4_VERSION_PATCH, pat);
  // Any pointer may be NULL.
  EXPECT_EQ(H4_OK, h4_version(nullptr, nullptr, nullptr));
}

TEST(AbiStability, ErrStrNamesEveryCodeAndNeverReturnsNull) {
  const std::pair<int, const char*> codes[] = {
      {H4_OK, "H4_OK"},
      {H4_ERR_ARG, "H4_ERR_ARG"},
      {H4_ERR_HANDLE, "H4_ERR_HANDLE"},
      {H4_ERR_PARSE, "H4_ERR_PARSE"},
      {H4_ERR_CONFIG, "H4_ERR_CONFIG"},
      {H4_ERR_COMMAND, "H4_ERR_COMMAND"},
      {H4_ERR_ISOLATION, "H4_ERR_ISOLATION"},
      {H4_ERR_NOSPACE, "H4_ERR_NOSPACE"},
      {H4_ERR_STATE, "H4_ERR_STATE"},
      {H4_ERR_INTERNAL, "H4_ERR_INTERNAL"},
  };
  for (const auto& [code, name] : codes) {
    const char* s = h4_err_str(code);
    ASSERT_NE(nullptr, s);
    EXPECT_NE(nullptr, std::strstr(s, name))
        << "h4_err_str(" << code << ") = '" << s << "' does not name "
        << name;
  }
  // Unknown codes still get a string.
  EXPECT_NE(nullptr, h4_err_str(-1234));
  EXPECT_NE(nullptr, h4_err_str(77));
}

// ---- lifecycle and handle staleness --------------------------------------

TEST(AbiLifecycle, OpenCloseAndNullArgs) {
  h4_options opts;
  EXPECT_EQ(H4_ERR_ARG, h4_options_init(nullptr));
  EXPECT_EQ(H4_OK, h4_options_init(&opts));
  h4_instance* inst = nullptr;
  EXPECT_EQ(H4_ERR_ARG, h4_open(nullptr, &inst));
  EXPECT_EQ(H4_ERR_ARG, h4_open(&opts, nullptr));
  EXPECT_EQ(H4_OK, h4_open(&opts, &inst));
  ASSERT_NE(nullptr, inst);
  EXPECT_EQ(H4_OK, h4_close(inst));
}

TEST(AbiLifecycle, DoubleCloseAndStaleInstanceAreHandleErrors) {
  h4_options opts;
  h4_options_init(&opts);
  h4_instance* inst = nullptr;
  ASSERT_EQ(H4_OK, h4_open(&opts, &inst));
  ASSERT_EQ(H4_OK, h4_close(inst));
  EXPECT_EQ(H4_ERR_HANDLE, h4_close(inst));  // double-destroy
  // Every entry point detects the stale instance.
  uint64_t u64 = 0;
  size_t need = 0;
  char buf[64];
  h4_vdev vd = 0;
  h4_drain_stats stats;
  EXPECT_EQ(H4_ERR_HANDLE, h4_close(nullptr));
  EXPECT_EQ(H4_ERR_HANDLE, h4_last_error(inst, buf, sizeof(buf), &need));
  EXPECT_EQ(H4_ERR_HANDLE, h4_compile(inst, "x", buf, sizeof(buf), &need));
  EXPECT_EQ(H4_ERR_HANDLE, h4_vdev_load(inst, "a", "x", &vd));
  EXPECT_EQ(H4_ERR_HANDLE, h4_vdev_unload(inst, 1));
  EXPECT_EQ(H4_ERR_HANDLE, h4_vdev_attach_ports(inst, 1, nullptr, 0));
  EXPECT_EQ(H4_ERR_HANDLE, h4_vdev_bind(inst, 1, -1));
  EXPECT_EQ(H4_ERR_HANDLE, h4_chain(inst, nullptr, 0, nullptr, 0));
  EXPECT_EQ(H4_ERR_HANDLE, h4_rule_add(inst, 1, "t", "a", nullptr, 0,
                                       nullptr, 0, -1, &u64));
  EXPECT_EQ(H4_ERR_HANDLE, h4_rule_delete(inst, 1, 1));
  EXPECT_EQ(H4_ERR_HANDLE, h4_vdev_hot_swap(inst, 1, "x", &vd));
  EXPECT_EQ(H4_ERR_HANDLE, h4_snapshot(inst, buf, sizeof(buf), &need));
  EXPECT_EQ(H4_ERR_HANDLE, h4_restore(inst, buf, 1));
  EXPECT_EQ(H4_ERR_HANDLE, h4_state_digest(inst, &u64));
  EXPECT_EQ(H4_ERR_HANDLE, h4_checkpoint(inst, &u64));
  EXPECT_EQ(H4_ERR_HANDLE,
            h4_recovery_report(inst, buf, sizeof(buf), &need));
  EXPECT_EQ(H4_ERR_HANDLE, h4_inject_batch(inst, nullptr, 0));
  EXPECT_EQ(H4_ERR_HANDLE, h4_drain(inst, &stats));
  EXPECT_EQ(H4_ERR_HANDLE, h4_drain_outputs(inst, nullptr, 0, nullptr, 0,
                                            &need, &need));
  EXPECT_EQ(H4_ERR_HANDLE, h4_metrics_json(inst, buf, sizeof(buf), &need));
  EXPECT_EQ(H4_ERR_HANDLE,
            h4_diagnostics_json(inst, buf, sizeof(buf), &need));
}

TEST(AbiLifecycle, UnloadedVdevIdGoesStale) {
  Fixture fx;
  h4_vdev second = 0;
  const std::string fw = firewall_source();
  ASSERT_EQ(H4_OK, h4_vdev_load(fx.inst, "fw", fw.c_str(), &second));
  ASSERT_EQ(H4_OK, h4_vdev_unload(fx.inst, second));
  const uint16_t ports[] = {1};
  uint64_t handle = 0;
  EXPECT_EQ(H4_ERR_HANDLE, h4_vdev_unload(fx.inst, second));
  EXPECT_EQ(H4_ERR_HANDLE,
            h4_vdev_attach_ports(fx.inst, second, ports, 1));
  EXPECT_EQ(H4_ERR_HANDLE, h4_vdev_bind(fx.inst, second, -1));
  EXPECT_EQ(H4_ERR_HANDLE, h4_rule_add(fx.inst, second, "dmac", "forward",
                                       nullptr, 0, nullptr, 0, -1, &handle));
  EXPECT_EQ(H4_ERR_HANDLE, h4_rule_delete(fx.inst, second, 1));
  h4_vdev out = 0;
  EXPECT_EQ(H4_ERR_HANDLE,
            h4_vdev_hot_swap(fx.inst, second, fw.c_str(), &out));
  EXPECT_EQ(H4_ERR_HANDLE, h4_chain(fx.inst, &second, 1, ports, 1));
  // Vdev id 0 is never valid.
  EXPECT_EQ(H4_ERR_HANDLE, h4_vdev_unload(fx.inst, 0));
}

// ---- errors and last_error -----------------------------------------------

TEST(AbiErrors, ParseFailureCarriesDetailInLastError) {
  Fixture fx;
  char buf[16];
  size_t need = 0;
  EXPECT_EQ(H4_ERR_PARSE,
            h4_compile(fx.inst, "not p4 at all", buf, sizeof(buf), &need));
  h4_vdev vd = 0;
  EXPECT_EQ(H4_ERR_PARSE,
            h4_vdev_load(fx.inst, "bad", "also not p4", &vd));
  // last_error: NOSPACE sets required, a big-enough buffer round-trips.
  EXPECT_EQ(H4_ERR_NOSPACE, h4_last_error(fx.inst, buf, 1, &need));
  EXPECT_GT(need, 1u);
  std::string msg(need, '\0');
  ASSERT_EQ(H4_OK, h4_last_error(fx.inst, msg.data(), msg.size(), &need));
  EXPECT_NE(std::string::npos, msg.find("parse"));
  EXPECT_EQ(H4_ERR_ARG, h4_last_error(fx.inst, nullptr, 8, &need));
}

TEST(AbiErrors, NullArgumentChecks) {
  Fixture fx;
  size_t need = 0;
  h4_vdev vd = 0;
  uint64_t u64 = 0;
  EXPECT_EQ(H4_ERR_ARG, h4_compile(fx.inst, nullptr, nullptr, 0, &need));
  EXPECT_EQ(H4_ERR_ARG, h4_vdev_load(fx.inst, nullptr, "x", &vd));
  EXPECT_EQ(H4_ERR_ARG, h4_vdev_load(fx.inst, "n", nullptr, &vd));
  EXPECT_EQ(H4_ERR_ARG, h4_vdev_load(fx.inst, "n", "x", nullptr));
  EXPECT_EQ(H4_ERR_ARG,
            h4_vdev_attach_ports(fx.inst, fx.vdev, nullptr, 3));
  EXPECT_EQ(H4_ERR_ARG, h4_rule_add(fx.inst, fx.vdev, nullptr, "a", nullptr,
                                    0, nullptr, 0, -1, &u64));
  EXPECT_EQ(H4_ERR_ARG, h4_rule_add(fx.inst, fx.vdev, "t", nullptr, nullptr,
                                    0, nullptr, 0, -1, &u64));
  EXPECT_EQ(H4_ERR_ARG, h4_vdev_hot_swap(fx.inst, fx.vdev, nullptr, &vd));
  EXPECT_EQ(H4_ERR_ARG, h4_vdev_hot_swap(fx.inst, fx.vdev, "x", nullptr));
  EXPECT_EQ(H4_ERR_ARG, h4_state_digest(fx.inst, nullptr));
  EXPECT_EQ(H4_ERR_ARG, h4_inject_batch(fx.inst, nullptr, 2));
  EXPECT_EQ(H4_ERR_ARG, h4_restore(fx.inst, nullptr, 4));
  EXPECT_EQ(H4_ERR_ARG, h4_chain(fx.inst, nullptr, 2, nullptr, 0));
}

TEST(AbiErrors, CommandAndConfigMappings) {
  Fixture fx;
  uint64_t handle = 0;
  const char* keys[] = {"00:00:00:00:00:09"};
  const char* args[] = {"1"};
  // Unknown table is a configuration-namespace miss (H4_ERR_CONFIG); a
  // stale rule handle is a runtime command failure (H4_ERR_COMMAND).
  EXPECT_EQ(H4_ERR_CONFIG,
            h4_rule_add(fx.inst, fx.vdev, "no_such_table", "forward", keys,
                        1, args, 1, -1, &handle));
  EXPECT_EQ(H4_ERR_COMMAND, h4_rule_delete(fx.inst, fx.vdev, 999999));
  // Duplicate vdev name -> H4_ERR_CONFIG.
  h4_vdev vd = 0;
  const std::string src = l2_source();
  EXPECT_EQ(H4_ERR_CONFIG, h4_vdev_load(fx.inst, "l2", src.c_str(), &vd));
  // Durable-only calls on an in-memory instance -> H4_ERR_CONFIG.
  uint64_t lsn = 0;
  EXPECT_EQ(H4_ERR_CONFIG, h4_checkpoint(fx.inst, &lsn));
  char buf[256];
  size_t need = 0;
  EXPECT_EQ(H4_ERR_CONFIG,
            h4_recovery_report(fx.inst, buf, sizeof(buf), &need));
}

// ---- buffer protocol (NOSPACE) -------------------------------------------

TEST(AbiBuffers, NospaceReturnsRequiredSizeForEveryStringCall) {
  Fixture fx;
  int (*string_calls[])(h4_instance*, char*, size_t, size_t*) = {
      h4_metrics_json, h4_diagnostics_json, h4_last_error};
  for (auto* fn : string_calls) {
    size_t need = 0;
    ASSERT_EQ(H4_ERR_NOSPACE, fn(fx.inst, nullptr, 0, &need));
    ASSERT_GT(need, 0u);
    std::string buf(need, '\0');
    size_t need2 = 0;
    ASSERT_EQ(H4_OK, fn(fx.inst, buf.data(), buf.size(), &need2));
    EXPECT_EQ(need, need2);
    EXPECT_EQ('\0', buf[need2 - 1]) << "strings must be NUL-terminated";
  }
  // h4_compile uses the same protocol.
  const std::string src = l2_source();
  size_t need = 0;
  ASSERT_EQ(H4_ERR_NOSPACE,
            h4_compile(fx.inst, src.c_str(), nullptr, 0, &need));
  std::string buf(need, '\0');
  ASSERT_EQ(H4_OK,
            h4_compile(fx.inst, src.c_str(), buf.data(), buf.size(), &need));
  EXPECT_NE(std::string::npos, buf.find("\"tables\":2"));
  // required output pointer itself is mandatory.
  EXPECT_EQ(H4_ERR_ARG, h4_metrics_json(fx.inst, nullptr, 0, nullptr));
}

TEST(AbiBuffers, SnapshotNospaceThenExactSize) {
  Fixture fx;
  size_t need = 0;
  ASSERT_EQ(H4_ERR_NOSPACE, h4_snapshot(fx.inst, nullptr, 0, &need));
  ASSERT_GT(need, 0u);
  std::vector<char> img(need);
  char tiny[4];
  EXPECT_EQ(H4_ERR_NOSPACE, h4_snapshot(fx.inst, tiny, sizeof(tiny), &need));
  EXPECT_EQ(img.size(), need);
  ASSERT_EQ(H4_OK, h4_snapshot(fx.inst, img.data(), img.size(), &need));
  EXPECT_EQ(img.size(), need);
}

// ---- snapshot / restore / digest -----------------------------------------

TEST(AbiState, SnapshotRestoreRoundTripsDigest) {
  Fixture fx;
  uint64_t before = 0;
  ASSERT_EQ(H4_OK, h4_state_digest(fx.inst, &before));

  size_t need = 0;
  ASSERT_EQ(H4_ERR_NOSPACE, h4_snapshot(fx.inst, nullptr, 0, &need));
  std::vector<char> img(need);
  ASSERT_EQ(H4_OK, h4_snapshot(fx.inst, img.data(), img.size(), &need));

  // Mutate: one more rule changes the digest.
  const char* keys[] = {"00:00:00:00:00:03"};
  const char* args[] = {"1"};
  uint64_t handle = 0;
  ASSERT_EQ(H4_OK, h4_rule_add(fx.inst, fx.vdev, "dmac", "forward", keys, 1,
                               args, 1, -1, &handle));
  uint64_t mutated = 0;
  ASSERT_EQ(H4_OK, h4_state_digest(fx.inst, &mutated));
  EXPECT_NE(before, mutated);

  // Restore brings the digest back.
  ASSERT_EQ(H4_OK, h4_restore(fx.inst, img.data(), img.size()));
  uint64_t after = 0;
  ASSERT_EQ(H4_OK, h4_state_digest(fx.inst, &after));
  EXPECT_EQ(before, after);

  // Garbage image is a state error, not a crash.
  EXPECT_EQ(H4_ERR_STATE, h4_restore(fx.inst, "garbage-image", 13));
}

TEST(AbiState, DurableInstanceRecoversAndRejectsRestore) {
  const std::string dir =
      (fs::temp_directory_path() / "h4_abi_durable_test").string();
  fs::remove_all(dir);
  h4_options opts;
  h4_options_init(&opts);
  opts.durable_dir = dir.c_str();

  uint64_t digest_before = 0;
  {
    h4_instance* inst = nullptr;
    ASSERT_EQ(H4_OK, h4_open(&opts, &inst));
    h4_vdev vd = 0;
    const std::string src = l2_source();
    ASSERT_EQ(H4_OK, h4_vdev_load(inst, "l2", src.c_str(), &vd));
    const uint16_t ports[] = {1, 2};
    ASSERT_EQ(H4_OK, h4_vdev_attach_ports(inst, vd, ports, 2));
    ASSERT_EQ(H4_OK, h4_vdev_bind(inst, vd, -1));
    const char* keys[] = {"00:00:00:00:00:02"};
    const char* args[] = {"2"};
    uint64_t handle = 0;
    ASSERT_EQ(H4_OK, h4_rule_add(inst, vd, "dmac", "forward", keys, 1, args,
                                 1, -1, &handle));
    uint64_t lsn = 0;
    EXPECT_EQ(H4_OK, h4_checkpoint(inst, &lsn));
    ASSERT_EQ(H4_OK, h4_state_digest(inst, &digest_before));
    // Restore is checkpoint/journal's job on a durable instance.
    char img[4] = {0};
    EXPECT_EQ(H4_ERR_CONFIG, h4_restore(inst, img, sizeof(img)));
    ASSERT_EQ(H4_OK, h4_close(inst));
  }
  {
    h4_instance* inst = nullptr;
    ASSERT_EQ(H4_OK, h4_open(&opts, &inst));
    uint64_t digest_after = 0;
    ASSERT_EQ(H4_OK, h4_state_digest(inst, &digest_after));
    EXPECT_EQ(digest_before, digest_after);
    // The recovery report exists and mentions the digest check.
    const std::string rep = fetch(inst, h4_recovery_report);
    EXPECT_NE(std::string::npos, rep.find("digest"));
    // The recovered vdev id from snapshot time works again.
    const char* keys[] = {"00:00:00:00:00:04"};
    const char* args[] = {"1"};
    uint64_t handle = 0;
    EXPECT_EQ(H4_OK, h4_rule_add(inst, 1, "dmac", "forward", keys, 1, args,
                                 1, -1, &handle));
    ASSERT_EQ(H4_OK, h4_close(inst));
  }
  fs::remove_all(dir);
}

// ---- data plane ----------------------------------------------------------

TEST(AbiDataPlane, InjectDrainAndOutputs) {
  Fixture fx;
  const auto fwd = frame(kMacB, kMacA);   // dmac rule -> port 2
  const auto drop = frame(kMacA, kMacB);  // no rule -> default _drop
  const h4_packet pkts[] = {
      {1, fwd.data(), fwd.size()},
      {1, drop.data(), drop.size()},
  };
  ASSERT_EQ(H4_OK, h4_inject_batch(fx.inst, pkts, 2));
  h4_drain_stats st{};
  ASSERT_EQ(H4_OK, h4_drain(fx.inst, &st));
  EXPECT_EQ(2u, st.packets);
  EXPECT_EQ(1u, st.outputs);
  EXPECT_EQ(1u, st.drops);
  EXPECT_EQ(0u, st.parse_errors);
  EXPECT_GT(st.epoch, 0u);
  // NULL stats is allowed.
  ASSERT_EQ(H4_OK, h4_inject_batch(fx.inst, pkts, 1));
  ASSERT_EQ(H4_OK, h4_drain(fx.inst, nullptr));

  // Outputs: NOSPACE sets both sizes without consuming; the exact-size
  // call takes everything (both drains' outputs, injection order).
  size_t nout = 0, nbytes = 0;
  ASSERT_EQ(H4_ERR_NOSPACE,
            h4_drain_outputs(fx.inst, nullptr, 0, nullptr, 0, &nout,
                             &nbytes));
  EXPECT_EQ(2u, nout);
  EXPECT_EQ(2 * fwd.size(), nbytes);
  std::vector<h4_output> outs(nout);
  std::vector<uint8_t> bytes(nbytes);
  ASSERT_EQ(H4_OK,
            h4_drain_outputs(fx.inst, outs.data(), outs.size(), bytes.data(),
                             bytes.size(), &nout, &nbytes));
  ASSERT_EQ(2u, nout);
  for (size_t i = 0; i < nout; ++i) {
    EXPECT_EQ(2, outs[i].port);
    ASSERT_EQ(fwd.size(), outs[i].len);
    EXPECT_EQ(0, std::memcmp(bytes.data() + outs[i].offset, fwd.data(),
                             fwd.size()));
  }
  // The set was consumed: an empty take succeeds with zero counts.
  ASSERT_EQ(H4_OK, h4_drain_outputs(fx.inst, outs.data(), outs.size(),
                                    bytes.data(), bytes.size(), &nout,
                                    &nbytes));
  EXPECT_EQ(0u, nout);
  EXPECT_EQ(0u, nbytes);
  // Zero-length batches are fine.
  EXPECT_EQ(H4_OK, h4_inject_batch(fx.inst, nullptr, 0));
}

TEST(AbiDataPlane, DrainOutputsRejectedWithoutCollectResults) {
  h4_options opts;
  h4_options_init(&opts);
  opts.collect_results = 0;
  Fixture fx(&opts);
  const auto fwd = frame(kMacB, kMacA);
  const h4_packet pkts[] = {{1, fwd.data(), fwd.size()}};
  ASSERT_EQ(H4_OK, h4_inject_batch(fx.inst, pkts, 1));
  ASSERT_EQ(H4_OK, h4_drain(fx.inst, nullptr));
  size_t nout = 0, nbytes = 0;
  EXPECT_EQ(H4_ERR_CONFIG, h4_drain_outputs(fx.inst, nullptr, 0, nullptr, 0,
                                            &nout, &nbytes));
}

TEST(AbiDataPlane, EngineOptionsAreHonored) {
  h4_options opts;
  h4_options_init(&opts);
  opts.workers = 3;
  opts.vm_fast_path = 1;
  Fixture fx(&opts);
  const auto fwd = frame(kMacB, kMacA);
  std::vector<h4_packet> pkts(32, h4_packet{1, fwd.data(), fwd.size()});
  ASSERT_EQ(H4_OK, h4_inject_batch(fx.inst, pkts.data(), pkts.size()));
  h4_drain_stats st{};
  ASSERT_EQ(H4_OK, h4_drain(fx.inst, &st));
  EXPECT_EQ(32u, st.packets);
  const std::string diag = fetch(fx.inst, h4_diagnostics_json);
  EXPECT_NE(std::string::npos, diag.find("\"workers\":3"));
  // The VM tier actually ran: bytecode packets show up in packet_path.
  EXPECT_NE(std::string::npos, diag.find("packets_bytecode"));
}

// ---- hot swap and chaining -----------------------------------------------

TEST(AbiTopology, HotSwapKeepsPortsAndBindings) {
  Fixture fx;
  const std::string fw = firewall_source();
  h4_vdev nid = 0;
  ASSERT_EQ(H4_OK, h4_vdev_hot_swap(fx.inst, fx.vdev, fw.c_str(), &nid));
  EXPECT_NE(fx.vdev, nid);
  // Old id is stale.
  EXPECT_EQ(H4_ERR_HANDLE, h4_vdev_bind(fx.inst, fx.vdev, -1));
  // Rules are not carried: re-add against the new program, then traffic
  // flows through the swapped device without re-attaching or re-binding.
  const char* keys[] = {"00:00:00:00:00:02"};
  const char* args[] = {"2"};
  uint64_t handle = 0;
  ASSERT_EQ(H4_OK, h4_rule_add(fx.inst, nid, "dmac", "forward", keys, 1,
                               args, 1, -1, &handle));
  const auto fwd = frame(kMacB, kMacA);
  const h4_packet pkts[] = {{1, fwd.data(), fwd.size()}};
  ASSERT_EQ(H4_OK, h4_inject_batch(fx.inst, pkts, 1));
  h4_drain_stats st{};
  ASSERT_EQ(H4_OK, h4_drain(fx.inst, &st));
  EXPECT_EQ(1u, st.packets);
  EXPECT_EQ(1u, st.outputs);
  // A swap to unparsable source fails cleanly and keeps the old device.
  h4_vdev bad = 0;
  EXPECT_EQ(H4_ERR_PARSE, h4_vdev_hot_swap(fx.inst, nid, "not p4", &bad));
  ASSERT_EQ(H4_OK, h4_inject_batch(fx.inst, pkts, 1));
  ASSERT_EQ(H4_OK, h4_drain(fx.inst, &st));
  EXPECT_EQ(1u, st.outputs);
}

TEST(AbiTopology, ChainTwoDevices) {
  h4_options opts;
  h4_options_init(&opts);
  h4_instance* inst = nullptr;
  ASSERT_EQ(H4_OK, h4_open(&opts, &inst));
  const std::string l2 = l2_source();
  const std::string fw = firewall_source();
  h4_vdev a = 0, b = 0;
  ASSERT_EQ(H4_OK, h4_vdev_load(inst, "fw", fw.c_str(), &a));
  ASSERT_EQ(H4_OK, h4_vdev_load(inst, "l2", l2.c_str(), &b));
  const h4_vdev chain[] = {a, b};
  const uint16_t ports[] = {1, 2};
  ASSERT_EQ(H4_OK, h4_chain(inst, chain, 2, ports, 2));
  // fw forwards MacB to its vport; l2 then forwards to physical port 2.
  const char* fkeys[] = {"00:00:00:00:00:02"};
  const char* fargs[] = {"1"};
  uint64_t handle = 0;
  const char* bargs[] = {"2"};
  ASSERT_EQ(H4_OK, h4_rule_add(inst, a, "dmac", "forward", fkeys, 1, fargs,
                               1, -1, &handle));
  ASSERT_EQ(H4_OK, h4_rule_add(inst, b, "dmac", "forward", fkeys, 1, bargs,
                               1, -1, &handle));
  const auto fwd = frame(kMacB, kMacA);
  const h4_packet pkts[] = {{1, fwd.data(), fwd.size()}};
  ASSERT_EQ(H4_OK, h4_inject_batch(inst, pkts, 1));
  h4_drain_stats st{};
  ASSERT_EQ(H4_OK, h4_drain(inst, &st));
  EXPECT_EQ(1u, st.outputs);
  size_t nout = 0, nbytes = 0;
  h4_drain_outputs(inst, nullptr, 0, nullptr, 0, &nout, &nbytes);
  std::vector<h4_output> outs(nout);
  std::vector<uint8_t> bytes(nbytes);
  ASSERT_EQ(H4_OK, h4_drain_outputs(inst, outs.data(), outs.size(),
                                    bytes.data(), bytes.size(), &nout,
                                    &nbytes));
  ASSERT_EQ(1u, nout);
  EXPECT_EQ(2, outs[0].port);
  ASSERT_EQ(H4_OK, h4_close(inst));
}

}  // namespace
