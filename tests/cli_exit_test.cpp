// Exit-code contract of the tools/ binaries, exercised end to end on the
// real executables. One convention across all four:
//
//   0  success
//   1  usage error   (message + usage on stderr; --help prints usage on
//                     stdout and exits 0)
//   2  runtime error (I/O failures, store corruption, harness errors)
//   3  findings      (divergence, delivery failure, digest/fuzz failure)
//
// CI's smoke jobs and operator scripts branch on these — renumbering is a
// breaking change to every caller, which is exactly why this test exists.
#include <sys/wait.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

namespace fs = std::filesystem;

namespace {

struct RunResult {
  int code = -1;
  std::string out;  // stdout only; stderr goes to /dev/null or a file
};

// Run a shell command, capture its stdout and decoded exit code.
RunResult run(const std::string& cmd) {
  RunResult r;
  std::FILE* p = ::popen(cmd.c_str(), "r");
  if (!p) return r;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), p)) > 0) r.out.append(buf, n);
  const int st = ::pclose(p);
  r.code = WIFEXITED(st) ? WEXITSTATUS(st) : -WTERMSIG(st);
  return r;
}

const std::string kCheck = HP4_CHECK_PATH;
const std::string kFleet = HP4_FLEET_PATH;
const std::string kState = HP4_STATE_PATH;
const std::string kDaemon = HP4_HYPER4D_PATH;
const std::string kFabric = HP4_FABRIC_PATH;

TEST(CliExit, HelpPrintsUsageOnStdoutAndExitsZero) {
  for (const std::string& bin : {kCheck, kFleet, kState, kDaemon, kFabric}) {
    const RunResult r = run(bin + " --help 2>/dev/null");
    EXPECT_EQ(0, r.code) << bin;
    EXPECT_NE(std::string::npos, r.out.find("usage:"))
        << bin << " --help must print usage on STDOUT";
  }
}

TEST(CliExit, UsageErrorsExitOneWithStderrMessage) {
  const std::string cases[] = {
      kCheck + " --no-such-flag",
      kCheck + " --seed",              // flag missing its value
      kCheck + " --mutate bogus",
      kCheck + " --weights bogus",
      kCheck + " --backends bogus",
      kCheck + " --chain 0",
      kFleet + " --no-such-flag",
      kFleet + " --tenants",           // flag missing its value
      kState + "",                     // no command at all
      kState + " no-such-command",
      kState + " recover",             // command missing its DIR
      kState + " fuzz --no-such-flag",
      kDaemon + " --no-such-flag",
      kDaemon + " --socket",           // flag missing its value
      kDaemon + " --socket /tmp/x.sock",  // --store missing
      kFabric + "",                       // no command at all
      kFabric + " no-such-command",
      kFabric + " status",                // --store missing
      kFabric + " kill",                  // --pid-file missing
      kFabric + " run --transport bogus",
      kFabric + " run --kill-node 9 --nodes 2",  // victim out of range
      kFabric + " topology --no-such-flag",
  };
  for (const std::string& c : cases) {
    // stdout must NOT carry the usage text on errors; stderr must.
    const RunResult quiet = run(c + " 2>/dev/null");
    EXPECT_EQ(1, quiet.code) << c;
    EXPECT_EQ(std::string::npos, quiet.out.find("usage:")) << c;
    const RunResult loud = run(c + " 2>&1 >/dev/null");
    EXPECT_NE(std::string::npos, loud.out.find("usage:"))
        << c << " must print usage on stderr";
  }
}

TEST(CliExit, FabricSuggestsNearbySubcommands) {
  // Typos within edit distance get a did-you-mean hint on stderr.
  const struct {
    const char* typo;
    const char* want;
  } cases[] = {{"runn", "run"},
               {"topolog", "topology"},
               {"statsu", "status"},
               {"kil", "kill"}};
  for (const auto& c : cases) {
    const RunResult r =
        run(kFabric + " " + c.typo + " 2>&1 >/dev/null");
    EXPECT_NE(std::string::npos,
              r.out.find(std::string("did you mean '") + c.want + "'"))
        << c.typo;
  }
}

TEST(CliExit, RuntimeErrorsExitTwo) {
  const std::string missing =
      (fs::temp_directory_path() / "h4_cli_exit_no_such_store").string();
  fs::remove_all(missing);
  // hyper4_state on a store path that cannot be recovered.
  EXPECT_EQ(2, run(kState + " recover /dev/null/not-a-dir 2>/dev/null").code);
  // hyper4_check replaying artifacts that do not exist.
  EXPECT_EQ(2, run(kCheck + " --replay /no/such.p4 /no/such.cmds "
                            "2>/dev/null")
                   .code);
  EXPECT_EQ(2, run(kCheck + " --replay-chain /no/such.cmds 2>/dev/null").code);
  // hyper4d on an unbindable socket path.
  EXPECT_EQ(2, run(kDaemon + " --socket /dev/null/x.sock --store " + missing +
                   " 2>/dev/null")
                   .code);
  // hyper4_fabric status on an unreadable store; kill with an empty pid file.
  EXPECT_EQ(2, run(kFabric + " status --store /dev/null/not-a-dir "
                             "2>/dev/null")
                   .code);
  EXPECT_EQ(2, run(kFabric + " kill --pid-file /dev/null 2>/dev/null").code);
  fs::remove_all(missing);
}

TEST(CliExit, FindingsExitThree) {
  const std::string fixtures = std::string(HP4_SOURCE_DIR) + "/tests/fixtures";
  // A caught divergence (the committed mutation repro) is a finding.
  const RunResult diverge =
      run(kCheck + " --replay " + fixtures + "/check_repro_drop_rule.p4 " +
          fixtures + "/check_repro_drop_rule.cmds --mutate drop-rule "
          "2>/dev/null");
  EXPECT_EQ(3, diverge.code);
  EXPECT_NE(std::string::npos, diverge.out.find("native vs persona"));
}

TEST(CliExit, SuccessPathsExitZero) {
  // The cheapest real run of each binary.
  EXPECT_EQ(0, run(kCheck + " --seed 1 --iters 2 2>/dev/null").code);
  EXPECT_EQ(0, run(kFleet + " --tenants 2 --depth 1 --waves 1 --quiet "
                            "2>/dev/null")
                   .code);
  const std::string store =
      (fs::temp_directory_path() / "h4_cli_exit_store").string();
  fs::remove_all(store);
  // An empty store recovers to an empty state: still exit 0.
  EXPECT_EQ(0, run(kState + " recover " + store + " 2>/dev/null").code);
  EXPECT_EQ(0, run(kState + " verify " + store + " 2>/dev/null").code);
  fs::remove_all(store);
  // hyper4_fabric: topology print and the cheapest real replicated run.
  EXPECT_EQ(0, run(kFabric + " topology --preset line --nodes 2 "
                             "2>/dev/null")
                   .code);
  const std::string fab =
      (fs::temp_directory_path() / "h4_cli_exit_fabric").string();
  fs::remove_all(fab);
  EXPECT_EQ(0, run(kFabric + " run --nodes 2 --waves 1 --packets 2 --store " +
                   fab + " 2>/dev/null")
                   .code);
  fs::remove_all(fab);
}

}  // namespace
