// Parse-ladder and write-back properties (§4.2, §4.4): for every ladder
// byte-requirement and a sweep of packet lengths, a pass-through persona
// configuration must reproduce the packet byte-for-byte — the extraction,
// concatenation into `extracted`, and per-size write-back round-trip — with
// exactly the expected number of resubmits.
#include <gtest/gtest.h>

#include "bm/cli.h"
#include "bm/switch.h"
#include "hp4/persona.h"
#include "util/rng.h"

namespace hyper4::hp4 {
namespace {

// A persona configured by hand (no compiler): all traffic on port 1 maps to
// program 7 with a chosen byte requirement; the virtual parse and vnet
// catch-alls forward everything to physical port 2 unchanged.
class LadderHarness {
 public:
  explicit LadderHarness(std::size_t numbytes)
      : gen_(PersonaConfig{}), sw_(gen_.generate()) {
    bm::run_cli_text(sw_, gen_.base_commands());
    const std::string setup_action =
        numbytes > gen_.config().parse_default_bytes ? kActSetProgramResub
                                                     : kActSetProgram;
    bm::run_cli_text(sw_,
                     "table_add " + tbl_setup_a() + " " + setup_action +
                         " 0&&&0xffff 1&&&0x1ff => 7 " +
                         std::to_string(numbytes) + " 1 10\n"
                         "table_add " + tbl_vparse() + " " + kActSetParse +
                         " 7 0x0&&&0x0 => 0 0 0 50\n"
                         "table_add " + tbl_vnet() + " " + kActVfwdPhys +
                         " 7 0&&&0 => 2 50\n");
  }

  bm::Switch& sw() { return sw_; }

 private:
  PersonaGenerator gen_;
  bm::Switch sw_;
};

class LadderProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LadderProperty, PassThroughIsByteExact) {
  const auto [numbytes, length] = GetParam();
  LadderHarness h(static_cast<std::size_t>(numbytes));
  util::Rng rng(static_cast<std::uint64_t>(numbytes) * 7919 +
                static_cast<std::uint64_t>(length));
  const net::Packet pkt(rng.bytes(static_cast<std::size_t>(length)));

  const auto res = h.sw().inject(1, pkt);
  if (length < 20) {
    // Below the unguarded default extraction: parser error, dropped.
    EXPECT_TRUE(res.outputs.empty());
    EXPECT_EQ(res.parse_errors, 1u);
    return;
  }
  ASSERT_EQ(res.outputs.size(), 1u)
      << "numbytes=" << numbytes << " length=" << length;
  EXPECT_EQ(res.outputs[0].port, 2);
  EXPECT_EQ(res.outputs[0].packet, pkt)
      << "numbytes=" << numbytes << " length=" << length;
  EXPECT_EQ(res.resubmits, numbytes > 20 ? 1u : 0u);
  EXPECT_EQ(res.recirculations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LadderProperty,
    ::testing::Combine(
        ::testing::Values(20, 30, 50, 60, 100),          // byte requirement
        ::testing::Values(10, 20, 21, 45, 60, 64, 99, 100, 101, 250)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_len" +
             std::to_string(std::get<1>(info.param));
    });

TEST(LadderProperty, UnboundPortsUntouched) {
  LadderHarness h(60);
  util::Rng rng(3);
  // Port 5 has no setup_a entry: program stays 0, vparse misses, dropped.
  auto res = h.sw().inject(5, net::Packet(rng.bytes(80)));
  EXPECT_TRUE(res.outputs.empty());
  EXPECT_EQ(res.resubmits, 0u);
}

}  // namespace
}  // namespace hyper4::hp4
