// Native behaviour of the paper's four network functions on the
// behavioral-model switch, including the Table 1 "native" match counts.
#include "apps/apps.h"

#include <gtest/gtest.h>

#include "net/checksum.h"
#include "util/error.h"

namespace hyper4::apps {
namespace {

using net::EthHeader;
using net::Ipv4Header;
using net::TcpHeader;
using net::UdpHeader;

const char* kMacH1 = "02:00:00:00:00:01";
const char* kMacH2 = "02:00:00:00:00:02";
const char* kMacRtr = "02:aa:00:00:00:ff";

net::Packet tcp_packet(const char* smac, const char* dmac, const char* sip,
                       const char* dip, std::uint16_t dport,
                       std::size_t payload = 64) {
  EthHeader eth;
  eth.src = net::mac_from_string(smac);
  eth.dst = net::mac_from_string(dmac);
  Ipv4Header ip;
  ip.src = net::ipv4_from_string(sip);
  ip.dst = net::ipv4_from_string(dip);
  TcpHeader tcp;
  tcp.src_port = 40000;
  tcp.dst_port = dport;
  return net::make_ipv4_tcp(eth, ip, tcp, payload);
}

// ---------------------------------------------------------------------------
// L2 switch

class L2SwitchTest : public ::testing::Test {
 protected:
  L2SwitchTest() : sw_(l2_switch()) {
    apply_rules(sw_, {l2_forward(kMacH1, 1), l2_forward(kMacH2, 2)});
  }
  bm::Switch sw_;
};

TEST_F(L2SwitchTest, ForwardsKnownMac) {
  auto res = sw_.inject(1, tcp_packet(kMacH1, kMacH2, "10.0.0.1", "10.0.0.2", 80));
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].port, 2);
}

TEST_F(L2SwitchTest, PacketUnmodified) {
  auto pkt = tcp_packet(kMacH1, kMacH2, "10.0.0.1", "10.0.0.2", 80);
  auto res = sw_.inject(1, pkt);
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].packet, pkt);
}

TEST_F(L2SwitchTest, UnknownMacDropped) {
  auto res = sw_.inject(1, tcp_packet(kMacH1, "02:00:00:00:00:99", "10.0.0.1",
                                      "10.0.0.2", 80));
  EXPECT_TRUE(res.outputs.empty());
  EXPECT_EQ(res.drops, 1u);
}

TEST_F(L2SwitchTest, Table1NativeMatchCountIsTwo) {
  auto res = sw_.inject(1, tcp_packet(kMacH1, kMacH2, "10.0.0.1", "10.0.0.2", 80));
  EXPECT_EQ(res.match_count(), 2u);  // smac + dmac (paper Table 1)
}

TEST_F(L2SwitchTest, NoTernaryMatches) {
  auto res = sw_.inject(1, tcp_packet(kMacH1, kMacH2, "10.0.0.1", "10.0.0.2", 80));
  EXPECT_EQ(res.ternary_match_count(), 0u);
}

// ---------------------------------------------------------------------------
// IPv4 router

class RouterTest : public ::testing::Test {
 protected:
  RouterTest() : sw_(ipv4_router()) {
    apply_rules(sw_, {
        router_accept_mac(kMacRtr),
        router_route("10.0.1.0", 24, "10.0.1.10", 2),
        router_route("10.0.0.0", 16, "10.0.99.1", 3),
        router_arp_entry("10.0.1.10", kMacH2),
        router_arp_entry("10.0.99.1", "02:00:00:00:00:63"),
        router_port_mac(2, kMacRtr),
        router_port_mac(3, kMacRtr),
    });
  }
  bm::Switch sw_;
};

TEST_F(RouterTest, RoutesAndRewrites) {
  auto res = sw_.inject(1, tcp_packet(kMacH1, kMacRtr, "10.0.0.1", "10.0.1.7", 80));
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].port, 2);
  auto eth = net::read_eth(res.outputs[0].packet);
  ASSERT_TRUE(eth);
  EXPECT_EQ(net::mac_to_string(eth->dst), kMacH2);
  EXPECT_EQ(net::mac_to_string(eth->src), kMacRtr);
}

TEST_F(RouterTest, DecrementsTtlAndFixesChecksum) {
  auto res = sw_.inject(1, tcp_packet(kMacH1, kMacRtr, "10.0.0.1", "10.0.1.7", 80));
  ASSERT_EQ(res.outputs.size(), 1u);
  auto ip = net::read_ipv4(res.outputs[0].packet);
  ASSERT_TRUE(ip);
  EXPECT_EQ(ip->ttl, 63);
  // Recomputed header checksum must verify.
  EXPECT_EQ(net::internet_checksum(res.outputs[0].packet.bytes().subspan(
                net::kEthHeaderLen, net::kIpv4HeaderLen)),
            0);
}

TEST_F(RouterTest, LongestPrefixWins) {
  // 10.0.1.x hits the /24 (port 2); 10.0.2.x falls to the /16 (port 3).
  EXPECT_EQ(sw_.inject(1, tcp_packet(kMacH1, kMacRtr, "10.0.0.1", "10.0.1.9", 80))
                .outputs[0].port, 2);
  EXPECT_EQ(sw_.inject(1, tcp_packet(kMacH1, kMacRtr, "10.0.0.1", "10.0.2.9", 80))
                .outputs[0].port, 3);
}

TEST_F(RouterTest, WrongDmacDropped) {
  auto res = sw_.inject(1, tcp_packet(kMacH1, kMacH2, "10.0.0.1", "10.0.1.7", 80));
  EXPECT_TRUE(res.outputs.empty());
}

TEST_F(RouterTest, NoRouteDropped) {
  auto res = sw_.inject(1, tcp_packet(kMacH1, kMacRtr, "10.0.0.1", "99.1.2.3", 80));
  EXPECT_TRUE(res.outputs.empty());
}

TEST_F(RouterTest, NonIpv4DroppedInParser) {
  auto arp = net::make_arp_request(net::mac_from_string(kMacH1),
                                   net::ipv4_from_string("10.0.0.1"),
                                   net::ipv4_from_string("10.0.0.2"));
  auto res = sw_.inject(1, arp);
  EXPECT_TRUE(res.outputs.empty());
  EXPECT_EQ(res.match_count(), 0u);
}

TEST_F(RouterTest, Table1NativeMatchCountIsFour) {
  auto res = sw_.inject(1, tcp_packet(kMacH1, kMacRtr, "10.0.0.1", "10.0.1.7", 80));
  EXPECT_EQ(res.match_count(), 4u);  // dmac_check, ipv4_lpm, forward, send_frame
}

// ---------------------------------------------------------------------------
// ARP proxy

class ArpProxyTest : public ::testing::Test {
 protected:
  ArpProxyTest() : sw_(arp_proxy()) {
    apply_rules(sw_, {
        arp_proxy_entry("10.0.0.2", kMacH2),
        arp_proxy_l2_forward(kMacH1, 1),
        arp_proxy_l2_forward(kMacH2, 2),
    });
  }
  bm::Switch sw_;
};

TEST_F(ArpProxyTest, AnswersProxiedRequest) {
  auto req = net::make_arp_request(net::mac_from_string(kMacH1),
                                   net::ipv4_from_string("10.0.0.1"),
                                   net::ipv4_from_string("10.0.0.2"));
  auto res = sw_.inject(1, req);
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].port, 1);  // straight back to the requester
  auto arp = net::read_arp(res.outputs[0].packet);
  ASSERT_TRUE(arp);
  EXPECT_EQ(arp->oper, net::kArpOpReply);
  EXPECT_EQ(net::mac_to_string(arp->sha), kMacH2);
  EXPECT_EQ(arp->spa, net::ipv4_from_string("10.0.0.2"));
  EXPECT_EQ(arp->tpa, net::ipv4_from_string("10.0.0.1"));
  EXPECT_EQ(net::mac_to_string(arp->tha), kMacH1);
  auto eth = net::read_eth(res.outputs[0].packet);
  EXPECT_EQ(net::mac_to_string(eth->dst), kMacH1);
  EXPECT_EQ(net::mac_to_string(eth->src), kMacH2);
}

TEST_F(ArpProxyTest, IgnoresRequestForUnknownIp) {
  auto req = net::make_arp_request(net::mac_from_string(kMacH1),
                                   net::ipv4_from_string("10.0.0.1"),
                                   net::ipv4_from_string("10.0.0.99"));
  auto res = sw_.inject(1, req);
  // Not proxied; broadcast dmac is unknown → no output, no reply.
  for (const auto& o : res.outputs) {
    auto arp = net::read_arp(o.packet);
    ASSERT_TRUE(arp);
    EXPECT_NE(arp->oper, net::kArpOpReply);
  }
}

TEST_F(ArpProxyTest, ArpRepliesPassThroughUntouched) {
  auto reply = net::make_arp_reply(net::mac_from_string(kMacH2),
                                   net::ipv4_from_string("10.0.0.2"),
                                   net::mac_from_string(kMacH1),
                                   net::ipv4_from_string("10.0.0.1"));
  auto res = sw_.inject(2, reply);
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].port, 1);
  EXPECT_EQ(res.outputs[0].packet, reply);
}

TEST_F(ArpProxyTest, SwitchesNonArpTraffic) {
  auto res = sw_.inject(1, tcp_packet(kMacH1, kMacH2, "10.0.0.1", "10.0.0.2", 80));
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].port, 2);
}

TEST_F(ArpProxyTest, Table1NativeMatchCountIsFour) {
  auto req = net::make_arp_request(net::mac_from_string(kMacH1),
                                   net::ipv4_from_string("10.0.0.1"),
                                   net::ipv4_from_string("10.0.0.2"));
  auto res = sw_.inject(1, req);
  EXPECT_EQ(res.match_count(), 4u);  // smac, arp_resp, dmac, arp_monitor
}

TEST_F(ArpProxyTest, DirectCounterCountsArp) {
  auto req = net::make_arp_request(net::mac_from_string(kMacH1),
                                   net::ipv4_from_string("10.0.0.1"),
                                   net::ipv4_from_string("10.0.0.2"));
  sw_.inject(1, req);
  sw_.inject(1, req);
  EXPECT_EQ(sw_.table("arp_monitor").hit_count(), 0u);  // no entries yet
  // Install a monitor entry and observe its direct counter.
  bm::KeyParam v = bm::KeyParam::valid(true);
  auto h = sw_.table_add("arp_monitor", "nop", {v}, {});
  sw_.inject(1, req);
  EXPECT_EQ(sw_.table("arp_monitor").entry(h).hits, 1u);
}

// ---------------------------------------------------------------------------
// Firewall

class FirewallTest : public ::testing::Test {
 protected:
  FirewallTest() : sw_(firewall()) {
    apply_rules(sw_, {
        firewall_l2_forward(kMacH1, 1),
        firewall_l2_forward(kMacH2, 2),
        firewall_block_tcp_dport(22, 10),
        firewall_block_udp_dport(53, 10),
        firewall_block_ip("10.6.6.6", "255.255.255.255", "0.0.0.0", "0.0.0.0", 20),
    });
  }
  bm::Switch sw_;
};

TEST_F(FirewallTest, AllowsUnfilteredTcp) {
  auto res = sw_.inject(1, tcp_packet(kMacH1, kMacH2, "10.0.0.1", "10.0.0.2", 80));
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].port, 2);
}

TEST_F(FirewallTest, BlocksTcpDstPort) {
  auto res = sw_.inject(1, tcp_packet(kMacH1, kMacH2, "10.0.0.1", "10.0.0.2", 22));
  EXPECT_TRUE(res.outputs.empty());
}

TEST_F(FirewallTest, TcpFilterDoesNotCatchUdp) {
  EthHeader eth;
  eth.src = net::mac_from_string(kMacH1);
  eth.dst = net::mac_from_string(kMacH2);
  Ipv4Header ip;
  ip.src = net::ipv4_from_string("10.0.0.1");
  ip.dst = net::ipv4_from_string("10.0.0.2");
  UdpHeader udp;
  udp.src_port = 1000;
  udp.dst_port = 22;  // TCP 22 is blocked; UDP 22 is not
  auto res = sw_.inject(1, net::make_ipv4_udp(eth, ip, udp, 16));
  ASSERT_EQ(res.outputs.size(), 1u);

  udp.dst_port = 53;  // UDP 53 is blocked
  res = sw_.inject(1, net::make_ipv4_udp(eth, ip, udp, 16));
  EXPECT_TRUE(res.outputs.empty());
}

TEST_F(FirewallTest, BlocksBySourceIp) {
  auto res = sw_.inject(1, tcp_packet(kMacH1, kMacH2, "10.6.6.6", "10.0.0.2", 80));
  EXPECT_TRUE(res.outputs.empty());
}

TEST_F(FirewallTest, NonIpBypassesFilters) {
  auto arp = net::make_arp_reply(net::mac_from_string(kMacH1),
                                 net::ipv4_from_string("10.0.0.1"),
                                 net::mac_from_string(kMacH2),
                                 net::ipv4_from_string("10.0.0.2"));
  auto res = sw_.inject(1, arp);
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.match_count(), 1u);  // dmac only; the if(valid) skips filters
}

TEST_F(FirewallTest, Table1NativeMatchCountIsThree) {
  auto res = sw_.inject(1, tcp_packet(kMacH1, kMacH2, "10.0.0.1", "10.0.0.2", 80));
  EXPECT_EQ(res.match_count(), 3u);  // dmac, ip_filter, l4_filter
}

TEST_F(FirewallTest, TernaryAccountingPopulated) {
  auto res = sw_.inject(1, tcp_packet(kMacH1, kMacH2, "10.0.0.1", "10.0.0.2", 80));
  EXPECT_EQ(res.ternary_match_count(), 2u);  // ip_filter + l4_filter
  EXPECT_GT(res.ternary_bits_total(), 0u);
}

// ---------------------------------------------------------------------------

TEST(AppCatalog, AllProgramsValidateAndInstantiate) {
  for (auto& [name, prog] : all_programs()) {
    EXPECT_NO_THROW({ bm::Switch sw(prog); }) << name;
  }
  EXPECT_EQ(program_by_name("l2_sw").name, "l2_switch");
  EXPECT_THROW(program_by_name("nope"), util::ConfigError);
}

}  // namespace
}  // namespace hyper4::apps
