// Black-box conformance and soak of hyper4d over its wire protocol: the
// daemon is spawned as a real child process and driven only through the
// unix socket — no in-process shortcuts. Covers the full command set, the
// SIGKILL-under-live-traffic contract (restart on the same store recovers
// digest-clean against the last acknowledged management state), and an
// env-scaled kill/recover loop:
//
//   HP4_SOAK_SECONDS   duration of DaemonSoak.KillRecoverLoop (default 5;
//                      the CI smoke job sets 60, the nightly soak 600 via
//                      the `soak`-labeled daemon_soak_nightly ctest).
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "abi/wire.h"
#include "hyper4/hyper4.h"
#include "util/error.h"

namespace fs = std::filesystem;

namespace hyper4 {
namespace {

using abi::DaemonClient;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string l2_source() {
  return read_file(std::string(HP4_SOURCE_DIR) + "/examples/p4/l2_switch.p4");
}
std::string firewall_source() {
  return read_file(std::string(HP4_SOURCE_DIR) + "/examples/p4/firewall.p4");
}

// A 64-byte frame as an inject line "port hexbytes".
std::string inject_line(int port, int dst_low, int src_low) {
  std::vector<uint8_t> b(64, 0);
  b[5] = static_cast<uint8_t>(dst_low);
  b[11] = static_cast<uint8_t>(src_low);
  b[12] = 0x08;
  return std::to_string(port) + " " + abi::to_hex(b.data(), b.size());
}

int soak_seconds() {
  if (const char* s = std::getenv("HP4_SOAK_SECONDS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return 5;
}

// One daemon process on its own socket + store. Not copyable; the
// destructor SIGKILLs and reaps whatever is still running.
class Daemon {
 public:
  Daemon(std::string socket_path, std::string store_dir,
         std::vector<std::string> extra = {})
      : socket_(std::move(socket_path)), store_(std::move(store_dir)) {
    pid_ = ::fork();
    if (pid_ == 0) {
      std::vector<std::string> args = {HP4_HYPER4D_PATH, "--socket", socket_,
                                       "--store", store_, "--quiet"};
      for (auto& a : extra) args.push_back(std::move(a));
      std::vector<char*> argv;
      for (auto& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      ::_exit(127);
    }
  }
  ~Daemon() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      (void)reap();
    }
  }

  pid_t pid() const { return pid_; }

  void sigkill() {
    ::kill(pid_, SIGKILL);
    const int st = reap();
    EXPECT_TRUE(WIFSIGNALED(st) && WTERMSIG(st) == SIGKILL);
  }

  // Exit status after the daemon ends on its own (shutdown command).
  int wait_exit() {
    const int st = reap();
    return WIFEXITED(st) ? WEXITSTATUS(st) : -WTERMSIG(st);
  }

 private:
  int reap() {
    int st = 0;
    if (pid_ > 0) ::waitpid(pid_, &st, 0);
    pid_ = -1;
    return st;
  }
  std::string socket_;
  std::string store_;
  pid_t pid_ = -1;
};

class DaemonSoak : public ::testing::Test {
 protected:
  DaemonSoak() {
    static int counter = 0;
    const std::string tag = "h4d_" + std::to_string(::getpid()) + "_" +
                            std::to_string(counter++);
    socket_ = "/tmp/" + tag + ".sock";
    store_ = (fs::temp_directory_path() / (tag + "_store")).string();
    fs::remove_all(store_);
  }
  ~DaemonSoak() override {
    fs::remove_all(store_);
    ::unlink(socket_.c_str());
  }

  // Load a tenant, attach ports 1,2, bind all, one forwarding rule.
  uint64_t setup_tenant(DaemonClient& c, const std::string& name,
                        const std::string& src) {
    auto r = c.request("load " + name, src);
    EXPECT_TRUE(r.ok) << r.head;
    const uint64_t id = std::stoull(r.head);
    EXPECT_TRUE(c.request("attach " + std::to_string(id) + " 1,2").ok);
    EXPECT_TRUE(c.request("bind " + std::to_string(id) + " -1").ok);
    EXPECT_TRUE(
        c.request("rule-add " + std::to_string(id) +
                  " dmac forward 1 00:00:00:00:00:02 1 2 -1")
            .ok);
    return id;
  }

  std::string digest(DaemonClient& c) {
    auto r = c.request("digest");
    EXPECT_TRUE(r.ok);
    return r.head;
  }

  std::string socket_;
  std::string store_;
};

TEST_F(DaemonSoak, WireProtocolAndCleanShutdown) {
  Daemon d(socket_, store_);
  DaemonClient c(socket_);

  EXPECT_EQ("pong", c.request("ping").head);

  // Error responses carry the ABI error code and a message.
  auto bad = c.request("no-such-command");
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(H4_ERR_ARG, bad.code);
  bad = c.request("load t0", "not p4");
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(H4_ERR_PARSE, bad.code);
  EXPECT_NE(std::string::npos, bad.head.find("parse"));

  auto r = c.request("compile", l2_source());
  ASSERT_TRUE(r.ok);
  EXPECT_NE(std::string::npos, r.body.find("\"tables\":2"));

  const uint64_t t0 = setup_tenant(c, "t0", l2_source());
  const uint64_t t1 = setup_tenant(c, "t1", firewall_source());

  // Traffic: tenant t0 owns the binding made last? No — bind -1 rebinds.
  // Re-bind t0 so the forwarded frame below deterministically hits it.
  ASSERT_TRUE(c.request("bind " + std::to_string(t0) + " -1").ok);
  r = c.request("inject",
                inject_line(1, 2, 9) + "\n" + inject_line(1, 7, 9) + "\n");
  ASSERT_TRUE(r.ok);
  r = c.request("drain");
  ASSERT_TRUE(r.ok);
  EXPECT_NE(std::string::npos, r.head.find("packets=2"));
  EXPECT_NE(std::string::npos, r.head.find("outputs=1"));
  EXPECT_NE(std::string::npos, r.head.find("drops=1"));
  EXPECT_NE(std::string::npos, r.body.find("2 "));  // forwarded to port 2

  // Observability and state over the wire.
  EXPECT_NE(std::string::npos,
            c.request("metrics").body.find("\"counters\""));
  EXPECT_NE(std::string::npos,
            c.request("diag").body.find("\"workers\""));
  EXPECT_FALSE(c.request("snapshot").body.empty());
  EXPECT_EQ(16u, digest(c).size());
  r = c.request("checkpoint");
  ASSERT_TRUE(r.ok);
  EXPECT_GT(std::stoull(r.head), 0u);
  EXPECT_NE(std::string::npos, c.request("recovery").body.find("replayed"));

  // Hot-swap t1 under the same wire session; old id goes stale.
  r = c.request("hot-swap " + std::to_string(t1), l2_source());
  ASSERT_TRUE(r.ok);
  const uint64_t t1b = std::stoull(r.head);
  EXPECT_NE(t1, t1b);
  bad = c.request("unload " + std::to_string(t1));
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(H4_ERR_HANDLE, bad.code);
  EXPECT_TRUE(c.request("unload " + std::to_string(t1b)).ok);

  EXPECT_EQ("bye", c.request("shutdown").head);
  EXPECT_EQ(0, d.wait_exit());
}

TEST_F(DaemonSoak, SigkillUnderLiveTrafficRecoversDigestClean) {
  std::string pre_kill;
  {
    Daemon d(socket_, store_);
    DaemonClient c(socket_);
    setup_tenant(c, "t0", l2_source());
    setup_tenant(c, "t1", firewall_source());
    setup_tenant(c, "t2", l2_source());
    pre_kill = digest(c);

    // Put real packets in flight, then SIGKILL without draining: the
    // engine dies mid-work, the journal already holds every acked op.
    std::string wave;
    for (int i = 0; i < 256; ++i) wave += inject_line(1, 2, i % 13) + "\n";
    ASSERT_TRUE(c.request("inject", wave).ok);
    d.sigkill();
  }
  {
    Daemon d(socket_, store_);
    DaemonClient c(socket_);
    EXPECT_EQ(pre_kill, digest(c)) << "recovery diverged from the last "
                                      "acknowledged control-plane state";
    const auto rep = c.request("recovery");
    ASSERT_TRUE(rep.ok);
    EXPECT_NE(std::string::npos, rep.body.find("all ok"));
    // The recovered instance still switches packets.
    ASSERT_TRUE(c.request("inject", inject_line(1, 2, 9) + "\n").ok);
    const auto r = c.request("drain");
    ASSERT_TRUE(r.ok);
    EXPECT_NE(std::string::npos, r.head.find("packets=1"));
    EXPECT_EQ("bye", c.request("shutdown").head);
    EXPECT_EQ(0, d.wait_exit());
  }
}

// The env-scaled loop: keep a tenant fleet under management churn and
// traffic, SIGKILL at arbitrary points (including torn, unacknowledged
// requests), restart on the same store every time. After every recovery
// the digest must match the last ACKED management state, the store's own
// replay digests must check out, and the daemon must keep serving.
TEST_F(DaemonSoak, KillRecoverLoop) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(soak_seconds());
  std::mt19937 rng(20260809);
  int cycles = 0, torn = 0;
  std::string acked_digest;

  while (std::chrono::steady_clock::now() < deadline) {
    Daemon d(socket_, store_);
    DaemonClient c(socket_);

    if (cycles == 0) {
      setup_tenant(c, "t0", l2_source());
      setup_tenant(c, "t1", firewall_source());
    } else {
      // Digest-clean vs the last acked state of the previous cycle.
      ASSERT_EQ(acked_digest, digest(c)) << "cycle " << cycles;
      const auto rep = c.request("recovery");
      ASSERT_TRUE(rep.ok);
      EXPECT_NE(std::string::npos, rep.body.find("all ok"))
          << "cycle " << cycles << ":\n"
          << rep.body;
    }

    // Churn: rules come and go, traffic flows, occasional checkpoint
    // keeps the journal short so recovery exercises both sources.
    const int ops = 1 + static_cast<int>(rng() % 8);
    for (int i = 0; i < ops; ++i) {
      switch (rng() % 4) {
        case 0:
          (void)c.request("rule-add 1 dmac forward 1 00:00:00:00:00:0" +
                          std::to_string(1 + rng() % 9) + " 1 " +
                          std::to_string(1 + rng() % 2) + " -1");
          break;
        case 1: {
          std::string wave;
          for (int k = 0; k < 32; ++k)
            wave += inject_line(1, 2, static_cast<int>(rng() % 17)) + "\n";
          ASSERT_TRUE(c.request("inject", wave).ok);
          break;
        }
        case 2:
          ASSERT_TRUE(c.request("drain").ok);
          break;
        case 3:
          if (rng() % 4 == 0) ASSERT_TRUE(c.request("checkpoint").ok);
          break;
      }
    }
    acked_digest = digest(c);

    // Half the cycles die with a torn, never-acknowledged request on the
    // wire; recovery must land on an op boundary regardless (the final
    // digest query above is the last ACK either way).
    if (rng() % 2 == 0) {
      ++torn;
      std::string wave = "inject\n";
      for (int k = 0; k < 64; ++k) wave += inject_line(1, 2, k % 7) + "\n";
      // Fire the frame WITHOUT reading the response — the kill races the
      // daemon mid-request and the reply is never collected.
      (void)abi::write_frame(c.fd(), wave);
    }
    d.sigkill();
    ++cycles;
  }
  // The loop must have actually cycled (one kill/recover minimum even at
  // the 5-second default).
  EXPECT_GE(cycles, 2) << "soak loop too slow to cycle";
  ::testing::Test::RecordProperty("cycles", cycles);
  ::testing::Test::RecordProperty("torn_kills", torn);
}

}  // namespace
}  // namespace hyper4
