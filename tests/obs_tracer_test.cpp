// Unit tests for the observability core: ring-buffer semantics, histogram
// bucketing, name binding, and the exporters — all independent of bm.
#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/tracer.h"

namespace hyper4::obs {
namespace {

TEST(TraceEventTest, PackedLayoutAndFlagAccessors) {
  EXPECT_EQ(sizeof(TraceEvent), 40u);
  TraceEvent e;
  e.flags = kFlagHit | kFlagEgress |
            static_cast<std::uint8_t>(2u << kFlagIndexShift);
  EXPECT_TRUE(e.hit());
  EXPECT_TRUE(e.egress());
  EXPECT_EQ(e.index_kind(), 2u);  // ternary scan
}

TEST(RingTest, RecordsInOrderUntilCapacity) {
  TracerOptions o;
  o.capacity = 8;
  PipelineTracer t(o);
  for (std::uint32_t i = 0; i < 5; ++i)
    t.record(EventKind::kInject, 0, static_cast<std::uint16_t>(i), i, 0, i);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.total_recorded(), 5u);
  EXPECT_EQ(t.dropped(), 0u);
  const auto ev = t.events();
  ASSERT_EQ(ev.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(ev[i].id, i);
}

TEST(RingTest, WrapsKeepingMostRecentAndCountsOverwritten) {
  TracerOptions o;
  o.capacity = 4;
  PipelineTracer t(o);
  for (std::uint32_t i = 0; i < 11; ++i)
    t.record(EventKind::kInject, 0, 0, i, 0, 0);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.total_recorded(), 11u);
  EXPECT_EQ(t.dropped(), 7u);
  const auto ev = t.events();
  ASSERT_EQ(ev.size(), 4u);
  // Oldest-first across the wrap point: ids 7,8,9,10.
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(ev[i].id, 7 + i);
}

TEST(RingTest, ClearDropsEventsButKeepsProfile) {
  TracerOptions o;
  o.capacity = 4;
  o.profile = true;
  PipelineTracer t(o);
  t.record(EventKind::kInject, 0, 0, 0, 0, 0);
  t.observe_stage(Stage::kParser, 100);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.profile().stages[0].count, 1u);
}

TEST(RingTest, BeginWorkStampsSequenceOnSubsequentEvents) {
  PipelineTracer t;
  const auto s0 = t.begin_work(EventKind::kTraversalStart, 1, 0);
  t.record(EventKind::kParserAccept, 0, 1, 0, 0, 14);
  const auto s1 = t.begin_work(EventKind::kTraversalStart, 1, 0);
  t.record(EventKind::kParserAccept, 0, 1, 0, 0, 14);
  EXPECT_NE(s0, s1);
  const auto ev = t.events();
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_EQ(ev[0].seq, s0);
  EXPECT_EQ(ev[1].seq, s0);
  EXPECT_EQ(ev[2].seq, s1);
  EXPECT_EQ(ev[3].seq, s1);
}

TEST(RingTest, DisabledEventRecordingStillProfiles) {
  TracerOptions o;
  o.record_events = false;
  o.profile = true;
  PipelineTracer t(o);
  t.record(EventKind::kInject, 0, 0, 0, 0, 0);
  t.observe_stage(Stage::kLookup, 50);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.total_recorded(), 0u);
  EXPECT_EQ(t.profile().stages[1].count, 1u);
  EXPECT_TRUE(t.timing());  // profile implies timing
}

TEST(HistTest, Log2Bucketing) {
  LatencyHist h;
  h.observe(0);     // bucket 0
  h.observe(1);     // bucket 1: [1,1]
  h.observe(2);     // bucket 2: [2,3]
  h.observe(3);     // bucket 2
  h.observe(1024);  // bucket 11: [1024,2047]
  EXPECT_EQ(h.count, 5u);
  EXPECT_EQ(h.sum_ns, 0u + 1 + 2 + 3 + 1024);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 2u);
  EXPECT_EQ(h.buckets[11], 1u);
}

TEST(HistTest, MergeAndReset) {
  LatencyHist a, b;
  a.observe(5);
  b.observe(5);
  b.observe(100);
  a.merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.sum_ns, 110u);
  EXPECT_EQ(a.buckets[3], 2u);  // [4,7]
  a.reset();
  EXPECT_EQ(a.count, 0u);
  EXPECT_EQ(a.buckets[3], 0u);
}

TEST(HistTest, BucketBoundsAlignWithObserve) {
  const auto bounds = latency_bucket_bounds();
  ASSERT_EQ(bounds.size(), LatencyHist::kBuckets - 1);
  EXPECT_EQ(bounds[0], 0.0);
  EXPECT_EQ(bounds[1], 1.0);
  EXPECT_EQ(bounds[2], 3.0);
  EXPECT_EQ(bounds[3], 7.0);
  // observe(n) for n <= bounds[i] must land in bucket <= i.
  LatencyHist h;
  h.observe(7);
  EXPECT_EQ(h.buckets[3], 1u);
}

TEST(BindTest, ResolvesNamesAndFallsBack) {
  PipelineTracer t;
  t.bind({"t0", "t1"}, {"a0"}, {"eth"});
  EXPECT_EQ(t.table_name(1), "t1");
  EXPECT_EQ(t.action_name(0), "a0");
  EXPECT_EQ(t.instance_name(0), "eth");
  EXPECT_EQ(t.table_name(99), "?");
  EXPECT_EQ(t.action_name(kNoAction), "?");
}

TEST(BindTest, RebindWithDifferentNamesClearsEvents) {
  PipelineTracer t;
  t.bind({"t0"}, {}, {});
  t.record(EventKind::kTableApply, kFlagHit, 0, 0, 1, 0);
  t.bind({"t0"}, {}, {});  // identical names: events survive
  EXPECT_EQ(t.size(), 1u);
  t.bind({"other"}, {}, {});  // different program: ids would dangle
  EXPECT_EQ(t.size(), 0u);
}

TEST(ExportTest, FormatEventsNamesTablesAndActions) {
  PipelineTracer t;
  t.bind({"ipv4_lpm"}, {"set_nhop"}, {"eth"});
  t.record(EventKind::kTableApply,
           kFlagHit | static_cast<std::uint8_t>(1u << kFlagIndexShift), 0, 0,
           7, 0);
  const std::string s = format_events(t);
  EXPECT_NE(s.find("ipv4_lpm"), std::string::npos);
  EXPECT_NE(s.find("hit"), std::string::npos);
  EXPECT_NE(s.find("lpm"), std::string::npos);
}

TEST(ExportTest, ChromeTraceIsWellFormedJson) {
  TracerOptions o;
  o.timestamps = true;
  PipelineTracer t(o);
  t.bind({"t0"}, {"a0"}, {});
  t.begin_work(EventKind::kTraversalStart, 1, 0);
  t.record(EventKind::kTableApply, kFlagHit, 1, 0, 1, 0, 250);
  t.record(EventKind::kEmit, 0, 2, 0, 0, 64);
  const std::string json = chrome_trace_json({{"native", &t}});
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"native\""), std::string::npos);
  // The timed table apply exports as a complete slice, the emit as instant.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(ExportTest, ProfileJsonListsStagesAndTables) {
  TracerOptions o;
  o.profile = true;
  PipelineTracer t(o);
  t.bind({"dmac", "smac"}, {}, {});
  t.observe_stage(Stage::kLookup, 120);
  t.observe_table(1, 120);
  const std::string json = profile_json(t.profile(), t.table_names());
  EXPECT_NE(json.find("\"lookup\""), std::string::npos);
  EXPECT_NE(json.find("\"smac\""), std::string::npos);
  // Untouched tables are omitted.
  EXPECT_EQ(json.find("\"dmac\""), std::string::npos);
}

}  // namespace
}  // namespace hyper4::obs
