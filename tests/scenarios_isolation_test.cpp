// Slice isolation under load (ISSUE 7 / S4): snapshotting and restoring
// one tenant's slice — with churn and a hot-swap in between, and traffic
// flowing throughout — must leave every OTHER tenant untouched: their DPMU
// table state (entries, handles, counters-to-come), their per-entry hit
// behavior, and the VM tier serving their packets.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bm/switch.h"
#include "scenarios/fleet.h"
#include "vm/vm.h"

namespace hyper4 {
namespace {

using scenarios::FleetOptions;
using scenarios::ScenarioFleet;

FleetOptions iso_opts() {
  FleetOptions o;
  o.tenants = 4;
  o.chain_depth = 2;
  o.engine_workers = 2;
  return o;
}

// Sum of per-entry hit counters, across every engine replica, for every
// persona entry the DPMU attributes to one of tenant `i`'s vdevs (static
// program entries, translated rules, and ingress bindings alike).
std::uint64_t tenant_hits(ScenarioFleet& fleet, std::size_t i) {
  const auto& vdevs = fleet.tenant(i).vdevs;
  const std::set<hp4::VdevId> mine(vdevs.begin(), vdevs.end());
  // (persona table) -> handles owned by this tenant.
  std::map<std::string, std::set<std::uint64_t>> owned;
  for (const auto& [key, origin] : fleet.controller().dpmu().entry_origins())
    if (mine.count(origin.vdev)) owned[key.first].insert(key.second);

  std::uint64_t total = 0;
  for (std::size_t w = 0; w < fleet.engine().workers(); ++w) {
    const bm::Switch& rep = fleet.engine().replica(w);
    for (const auto& [table, handles] : owned)
      for (const auto& e : rep.table(table).export_state().entries)
        if (handles.count(e.handle)) total += e.hits;
  }
  return total;
}

// Hit delta each "other" tenant accrues over one quiescent wave (no
// control ops inside the window, so replica counters are not re-mirrored).
std::vector<std::uint64_t> wave_hit_deltas(ScenarioFleet& fleet,
                                           std::size_t skip,
                                           std::size_t packets) {
  std::vector<std::uint64_t> before(fleet.tenants());
  for (std::size_t t = 0; t < fleet.tenants(); ++t)
    if (t != skip) before[t] = tenant_hits(fleet, t);
  fleet.inject_wave(packets);
  EXPECT_TRUE(fleet.drain_wave().all_delivered);
  std::vector<std::uint64_t> delta(fleet.tenants());
  for (std::size_t t = 0; t < fleet.tenants(); ++t)
    if (t != skip) delta[t] = tenant_hits(fleet, t) - before[t];
  return delta;
}

// The DPMU's exported image of one vdev, reduced to the fields that define
// the slice: virtual-rule map, static handles, vports, id counter.
struct VdevImage {
  std::map<std::uint64_t, std::vector<std::pair<std::string, std::uint64_t>>>
      entries;
  std::vector<std::pair<std::string, std::uint64_t>> static_handles;
  std::map<std::uint64_t, std::uint16_t> vport_to_phys;
  std::uint64_t next_vhandle = 0;
  bool operator==(const VdevImage&) const = default;
};

std::map<hp4::VdevId, VdevImage> other_tenant_images(ScenarioFleet& fleet,
                                                     std::size_t skip) {
  std::set<hp4::VdevId> skipped(fleet.tenant(skip).vdevs.begin(),
                                fleet.tenant(skip).vdevs.end());
  std::map<hp4::VdevId, VdevImage> out;
  for (const auto& v : fleet.controller().dpmu().export_state().vdevs) {
    if (skipped.count(v.id)) continue;
    out[v.id] = VdevImage{v.entries, v.static_handles, v.vport_to_phys,
                          v.next_vhandle};
  }
  return out;
}

TEST(ScenarioIsolation, SnapshotRestoreLeavesOtherTenantsUntouched) {
  ScenarioFleet fleet(iso_opts());
  const std::size_t kVictim = 0;

  fleet.inject_wave(2);  // warm every path
  ASSERT_TRUE(fleet.drain_wave().all_delivered);

  const auto images_before = other_tenant_images(fleet, kVictim);
  std::vector<std::vector<scenarios::NfKind>> chains_before;
  for (std::size_t t = 0; t < fleet.tenants(); ++t)
    chains_before.push_back(fleet.tenant(t).chain);
  const auto delta_before = wave_hit_deltas(fleet, kVictim, 3);

  // The S4 sequence: snapshot, mutate hard, restore — all under load.
  const auto snap = fleet.snapshot_tenant(kVictim);
  fleet.inject_wave(1);
  fleet.churn_tenant(kVictim, 15);
  fleet.hot_swap(kVictim);
  ASSERT_TRUE(fleet.drain_wave().all_delivered);
  fleet.inject_wave(1);
  fleet.restore_tenant(kVictim, snap);
  ASSERT_TRUE(fleet.drain_wave().all_delivered);

  // Other tenants' DPMU state: bit-identical images, same vdev ids, same
  // virtual handles, same vports, same id counters.
  EXPECT_EQ(other_tenant_images(fleet, kVictim), images_before);
  for (std::size_t t = 0; t < fleet.tenants(); ++t)
    if (t != kVictim) EXPECT_EQ(fleet.tenant(t).chain, chains_before[t]);

  // Other tenants' per-entry hit behavior: an identical wave accrues the
  // identical hit deltas it did before the snapshot/restore cycle.
  const auto delta_after = wave_hit_deltas(fleet, kVictim, 3);
  for (std::size_t t = 0; t < fleet.tenants(); ++t) {
    if (t == kVictim) continue;
    EXPECT_GT(delta_before[t], 0u) << "tenant " << t;
    EXPECT_EQ(delta_after[t], delta_before[t]) << "tenant " << t;
  }

  // The victim is back to its snapshot image.
  EXPECT_EQ(fleet.tenant(kVictim).chain, snap.chain);
  for (std::size_t pos = 0; pos < snap.chain.size(); ++pos)
    EXPECT_EQ(fleet.installed_rules(kVictim, pos), snap.rules[pos].size());
}

TEST(ScenarioIsolation, RestoreKeepsVmTierServingOtherTenants) {
  FleetOptions o = iso_opts();
  o.vm_path = true;
  ScenarioFleet fleet(o);

  fleet.inject_wave(2);
  ASSERT_TRUE(fleet.drain_wave().all_delivered);
  const auto diag0 = fleet.engine().packet_path_diagnostics();
  ASSERT_EQ(diag0.at("packets_fallback"), 0u);
  ASSERT_GT(diag0.at("cached_units"), 0u);

  const auto snap = fleet.snapshot_tenant(1);
  fleet.churn_tenant(1, 10);
  fleet.hot_swap(1);
  fleet.inject_wave(2);
  ASSERT_TRUE(fleet.drain_wave().all_delivered);
  fleet.restore_tenant(1, snap);

  // After the restore cycle the VM still serves every tenant from
  // bytecode: zero fallbacks, zero compile failures, and all units back in
  // cache once traffic touches them again.
  fleet.inject_wave(2);
  ASSERT_TRUE(fleet.drain_wave().all_delivered);
  const auto diag = fleet.engine().packet_path_diagnostics();
  EXPECT_EQ(diag.at("packets_fallback"), 0u);
  EXPECT_EQ(diag.at("compile_failures"), 0u);
  EXPECT_GE(diag.at("cached_units"), diag0.at("cached_units"));
  for (const auto& [k, v] : diag)
    if (k.rfind("fallback.", 0) == 0) EXPECT_EQ(v, 0u) << k;
}

TEST(ScenarioIsolation, ChurnOnOneTenantNeverLeaksIntoOthers) {
  ScenarioFleet fleet(iso_opts());
  const auto images_before = other_tenant_images(fleet, 2);
  fleet.inject_wave(1);
  fleet.churn_tenant(2, 40);  // heavy churn, window-bounded
  ASSERT_TRUE(fleet.drain_wave().all_delivered);
  EXPECT_EQ(other_tenant_images(fleet, 2), images_before);
}

}  // namespace
}  // namespace hyper4
