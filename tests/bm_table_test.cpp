#include "bm/runtime_table.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace hyper4::bm {
namespace {

using util::BitVec;
using util::CommandError;

KeySpec exact_spec(std::size_t width, const char* name = "k") {
  return KeySpec{p4::MatchType::kExact, 0, width, name};
}
KeySpec ternary_spec(std::size_t width, const char* name = "k") {
  return KeySpec{p4::MatchType::kTernary, 0, width, name};
}
KeySpec lpm_spec(std::size_t width, const char* name = "k") {
  return KeySpec{p4::MatchType::kLpm, 0, width, name};
}

TEST(RuntimeTable, ExactHitAndMiss) {
  RuntimeTable t("t", {exact_spec(16)}, 16);
  const auto h = t.add({KeyParam::exact(BitVec(16, 80))}, 1, {BitVec(9, 3)});
  EXPECT_TRUE(t.has_entry(h));
  const TableEntry* e = t.lookup({BitVec(16, 80)});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->action, 1u);
  EXPECT_EQ(e->action_args[0].to_u64(), 3u);
  EXPECT_EQ(t.lookup({BitVec(16, 81)}), nullptr);
  EXPECT_EQ(t.applied_count(), 2u);
  EXPECT_EQ(t.hit_count(), 1u);
}

TEST(RuntimeTable, ExactDuplicateRejected) {
  RuntimeTable t("t", {exact_spec(8)}, 16);
  t.add({KeyParam::exact(BitVec(8, 5))}, 0, {});
  EXPECT_THROW(t.add({KeyParam::exact(BitVec(8, 5))}, 0, {}), CommandError);
}

TEST(RuntimeTable, ArityChecked) {
  RuntimeTable t("t", {exact_spec(8), exact_spec(8)}, 16);
  EXPECT_THROW(t.add({KeyParam::exact(BitVec(8, 5))}, 0, {}), CommandError);
}

TEST(RuntimeTable, CapacityEnforced) {
  RuntimeTable t("t", {exact_spec(8)}, 2);
  t.add({KeyParam::exact(BitVec(8, 1))}, 0, {});
  t.add({KeyParam::exact(BitVec(8, 2))}, 0, {});
  EXPECT_THROW(t.add({KeyParam::exact(BitVec(8, 3))}, 0, {}), CommandError);
}

TEST(RuntimeTable, TernaryMaskedMatch) {
  RuntimeTable t("t", {ternary_spec(16)}, 16);
  t.add({KeyParam::ternary(BitVec(16, 0x1200), BitVec(16, 0xff00))}, 7, {}, 10);
  EXPECT_NE(t.lookup({BitVec(16, 0x12ab)}), nullptr);
  EXPECT_EQ(t.lookup({BitVec(16, 0x13ab)}), nullptr);
}

TEST(RuntimeTable, TernaryRequiresMask) {
  RuntimeTable t("t", {ternary_spec(16)}, 16);
  EXPECT_THROW(t.add({KeyParam::exact(BitVec(16, 1))}, 0, {}, 1), CommandError);
}

TEST(RuntimeTable, TernaryPriorityOrder) {
  RuntimeTable t("t", {ternary_spec(8)}, 16);
  t.add({KeyParam::ternary(BitVec(8, 0), BitVec(8, 0))}, 1, {}, 100);  // any
  const auto h2 =
      t.add({KeyParam::ternary(BitVec(8, 5), BitVec(8, 0xff))}, 2, {}, 1);
  const TableEntry* e = t.lookup({BitVec(8, 5)});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->handle, h2);  // lower priority number wins
  e = t.lookup({BitVec(8, 6)});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->action, 1u);
}

TEST(RuntimeTable, TernaryEqualPriorityInsertionOrder) {
  RuntimeTable t("t", {ternary_spec(8)}, 16);
  const auto h1 = t.add({KeyParam::ternary(BitVec(8, 0), BitVec(8, 0))}, 1, {}, 5);
  t.add({KeyParam::ternary(BitVec(8, 0), BitVec(8, 0))}, 2, {}, 5);
  const TableEntry* e = t.lookup({BitVec(8, 0)});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->handle, h1);
}

TEST(RuntimeTable, LpmLongestPrefixWins) {
  RuntimeTable t("t", {lpm_spec(32)}, 16);
  t.add({KeyParam::lpm(BitVec(32, 0x0a000000), 8)}, 1, {});
  const auto h24 = t.add({KeyParam::lpm(BitVec(32, 0x0a000100), 24)}, 2, {});
  t.add({KeyParam::lpm(BitVec(32, 0), 0)}, 3, {});  // default route

  const TableEntry* e = t.lookup({BitVec(32, 0x0a000105)});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->handle, h24);
  e = t.lookup({BitVec(32, 0x0a020304)});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->action, 1u);
  e = t.lookup({BitVec(32, 0xc0000001)});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->action, 3u);  // /0 catches everything else
}

TEST(RuntimeTable, LpmPrefixTooLongRejected) {
  RuntimeTable t("t", {lpm_spec(32)}, 16);
  EXPECT_THROW(t.add({KeyParam::lpm(BitVec(32, 0), 33)}, 0, {}), CommandError);
}

TEST(RuntimeTable, ValidMatch) {
  RuntimeTable t("t", {KeySpec{p4::MatchType::kValid, 0, 1, "valid(h)"}}, 4);
  t.add({KeyParam::valid(true)}, 1, {});
  EXPECT_NE(t.lookup({BitVec(1, 1)}), nullptr);
  EXPECT_EQ(t.lookup({BitVec(1, 0)}), nullptr);
}

TEST(RuntimeTable, RangeMatch) {
  RuntimeTable t("t", {KeySpec{p4::MatchType::kRange, 0, 16, "r"}}, 4);
  t.add({KeyParam::range(BitVec(16, 1000), BitVec(16, 2000))}, 1, {}, 1);
  EXPECT_NE(t.lookup({BitVec(16, 1000)}), nullptr);
  EXPECT_NE(t.lookup({BitVec(16, 1500)}), nullptr);
  EXPECT_NE(t.lookup({BitVec(16, 2000)}), nullptr);
  EXPECT_EQ(t.lookup({BitVec(16, 999)}), nullptr);
  EXPECT_EQ(t.lookup({BitVec(16, 2001)}), nullptr);
}

TEST(RuntimeTable, MixedExactTernaryKey) {
  RuntimeTable t("t", {exact_spec(8, "a"), ternary_spec(8, "b")}, 16);
  t.add({KeyParam::exact(BitVec(8, 1)),
         KeyParam::ternary(BitVec(8, 0xf0), BitVec(8, 0xf0))},
        1, {}, 1);
  EXPECT_NE(t.lookup({BitVec(8, 1), BitVec(8, 0xf5)}), nullptr);
  EXPECT_EQ(t.lookup({BitVec(8, 2), BitVec(8, 0xf5)}), nullptr);
  EXPECT_EQ(t.lookup({BitVec(8, 1), BitVec(8, 0x05)}), nullptr);
}

TEST(RuntimeTable, DeleteRemovesEntry) {
  RuntimeTable t("t", {exact_spec(8)}, 16);
  const auto h = t.add({KeyParam::exact(BitVec(8, 9))}, 0, {});
  EXPECT_NE(t.lookup({BitVec(8, 9)}), nullptr);
  t.remove(h);
  EXPECT_EQ(t.lookup({BitVec(8, 9)}), nullptr);
  EXPECT_THROW(t.remove(h), CommandError);
  // The key can be re-added after deletion.
  EXPECT_NO_THROW(t.add({KeyParam::exact(BitVec(8, 9))}, 0, {}));
}

TEST(RuntimeTable, ModifyChangesActionArgs) {
  RuntimeTable t("t", {exact_spec(8)}, 16);
  const auto h = t.add({KeyParam::exact(BitVec(8, 9))}, 0, {BitVec(9, 1)});
  t.modify(h, 2, {BitVec(9, 7)});
  const TableEntry* e = t.lookup({BitVec(8, 9)});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->action, 2u);
  EXPECT_EQ(e->action_args[0].to_u64(), 7u);
}

TEST(RuntimeTable, DefaultAction) {
  RuntimeTable t("t", {exact_spec(8)}, 16);
  EXPECT_FALSE(t.has_default());
  EXPECT_THROW(t.default_action(), CommandError);
  t.set_default(4, {BitVec(8, 1)});
  EXPECT_TRUE(t.has_default());
  EXPECT_EQ(t.default_action(), 4u);
}

TEST(RuntimeTable, HitCountersPerEntry) {
  RuntimeTable t("t", {exact_spec(8)}, 16);
  const auto h = t.add({KeyParam::exact(BitVec(8, 1))}, 0, {});
  t.lookup({BitVec(8, 1)});
  t.lookup({BitVec(8, 1)});
  t.lookup({BitVec(8, 2)});
  EXPECT_EQ(t.entry(h).hits, 2u);
  t.reset_counters();
  EXPECT_EQ(t.entry(h).hits, 0u);
  EXPECT_EQ(t.applied_count(), 0u);
}

TEST(RuntimeTable, WideKeys) {
  // HyPer4-style 800-bit ternary match against extracted packet data.
  RuntimeTable t("t", {ternary_spec(800)}, 16);
  BitVec value(800);
  value.set_slice(700, BitVec(16, 0x0800));
  BitVec mask = BitVec::mask_range(800, 700, 16);
  t.add({KeyParam::ternary(value, mask)}, 1, {}, 1);
  BitVec pkt(800);
  pkt.set_slice(700, BitVec(16, 0x0800));
  pkt.set_slice(0, BitVec(64, 0xdeadbeef12345678ull));
  EXPECT_NE(t.lookup({pkt}), nullptr);
  pkt.set_slice(700, BitVec(16, 0x0806));
  EXPECT_EQ(t.lookup({pkt}), nullptr);
}

}  // namespace
}  // namespace hyper4::bm
