#include "bm/runtime_table.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace hyper4::bm {
namespace {

using util::BitVec;
using util::CommandError;

KeySpec exact_spec(std::size_t width, const char* name = "k") {
  return KeySpec{p4::MatchType::kExact, 0, width, name};
}
KeySpec ternary_spec(std::size_t width, const char* name = "k") {
  return KeySpec{p4::MatchType::kTernary, 0, width, name};
}
KeySpec lpm_spec(std::size_t width, const char* name = "k") {
  return KeySpec{p4::MatchType::kLpm, 0, width, name};
}

TEST(RuntimeTable, ExactHitAndMiss) {
  RuntimeTable t("t", {exact_spec(16)}, 16);
  const auto h = t.add({KeyParam::exact(BitVec(16, 80))}, 1, {BitVec(9, 3)});
  EXPECT_TRUE(t.has_entry(h));
  const TableEntry* e = t.lookup({BitVec(16, 80)});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->action, 1u);
  EXPECT_EQ(e->action_args[0].to_u64(), 3u);
  EXPECT_EQ(t.lookup({BitVec(16, 81)}), nullptr);
  EXPECT_EQ(t.applied_count(), 2u);
  EXPECT_EQ(t.hit_count(), 1u);
}

TEST(RuntimeTable, ExactDuplicateRejected) {
  RuntimeTable t("t", {exact_spec(8)}, 16);
  t.add({KeyParam::exact(BitVec(8, 5))}, 0, {});
  EXPECT_THROW(t.add({KeyParam::exact(BitVec(8, 5))}, 0, {}), CommandError);
}

TEST(RuntimeTable, ArityChecked) {
  RuntimeTable t("t", {exact_spec(8), exact_spec(8)}, 16);
  EXPECT_THROW(t.add({KeyParam::exact(BitVec(8, 5))}, 0, {}), CommandError);
}

TEST(RuntimeTable, CapacityEnforced) {
  RuntimeTable t("t", {exact_spec(8)}, 2);
  t.add({KeyParam::exact(BitVec(8, 1))}, 0, {});
  t.add({KeyParam::exact(BitVec(8, 2))}, 0, {});
  EXPECT_THROW(t.add({KeyParam::exact(BitVec(8, 3))}, 0, {}), CommandError);
}

TEST(RuntimeTable, TernaryMaskedMatch) {
  RuntimeTable t("t", {ternary_spec(16)}, 16);
  t.add({KeyParam::ternary(BitVec(16, 0x1200), BitVec(16, 0xff00))}, 7, {}, 10);
  EXPECT_NE(t.lookup({BitVec(16, 0x12ab)}), nullptr);
  EXPECT_EQ(t.lookup({BitVec(16, 0x13ab)}), nullptr);
}

TEST(RuntimeTable, TernaryRequiresMask) {
  RuntimeTable t("t", {ternary_spec(16)}, 16);
  EXPECT_THROW(t.add({KeyParam::exact(BitVec(16, 1))}, 0, {}, 1), CommandError);
}

TEST(RuntimeTable, TernaryPriorityOrder) {
  RuntimeTable t("t", {ternary_spec(8)}, 16);
  t.add({KeyParam::ternary(BitVec(8, 0), BitVec(8, 0))}, 1, {}, 100);  // any
  const auto h2 =
      t.add({KeyParam::ternary(BitVec(8, 5), BitVec(8, 0xff))}, 2, {}, 1);
  const TableEntry* e = t.lookup({BitVec(8, 5)});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->handle, h2);  // lower priority number wins
  e = t.lookup({BitVec(8, 6)});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->action, 1u);
}

TEST(RuntimeTable, TernaryEqualPriorityInsertionOrder) {
  RuntimeTable t("t", {ternary_spec(8)}, 16);
  const auto h1 = t.add({KeyParam::ternary(BitVec(8, 0), BitVec(8, 0))}, 1, {}, 5);
  t.add({KeyParam::ternary(BitVec(8, 0), BitVec(8, 0))}, 2, {}, 5);
  const TableEntry* e = t.lookup({BitVec(8, 0)});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->handle, h1);
}

TEST(RuntimeTable, LpmLongestPrefixWins) {
  RuntimeTable t("t", {lpm_spec(32)}, 16);
  t.add({KeyParam::lpm(BitVec(32, 0x0a000000), 8)}, 1, {});
  const auto h24 = t.add({KeyParam::lpm(BitVec(32, 0x0a000100), 24)}, 2, {});
  t.add({KeyParam::lpm(BitVec(32, 0), 0)}, 3, {});  // default route

  const TableEntry* e = t.lookup({BitVec(32, 0x0a000105)});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->handle, h24);
  e = t.lookup({BitVec(32, 0x0a020304)});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->action, 1u);
  e = t.lookup({BitVec(32, 0xc0000001)});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->action, 3u);  // /0 catches everything else
}

TEST(RuntimeTable, LpmPrefixTooLongRejected) {
  RuntimeTable t("t", {lpm_spec(32)}, 16);
  EXPECT_THROW(t.add({KeyParam::lpm(BitVec(32, 0), 33)}, 0, {}), CommandError);
}

TEST(RuntimeTable, ValidMatch) {
  RuntimeTable t("t", {KeySpec{p4::MatchType::kValid, 0, 1, "valid(h)"}}, 4);
  t.add({KeyParam::valid(true)}, 1, {});
  EXPECT_NE(t.lookup({BitVec(1, 1)}), nullptr);
  EXPECT_EQ(t.lookup({BitVec(1, 0)}), nullptr);
}

TEST(RuntimeTable, RangeMatch) {
  RuntimeTable t("t", {KeySpec{p4::MatchType::kRange, 0, 16, "r"}}, 4);
  t.add({KeyParam::range(BitVec(16, 1000), BitVec(16, 2000))}, 1, {}, 1);
  EXPECT_NE(t.lookup({BitVec(16, 1000)}), nullptr);
  EXPECT_NE(t.lookup({BitVec(16, 1500)}), nullptr);
  EXPECT_NE(t.lookup({BitVec(16, 2000)}), nullptr);
  EXPECT_EQ(t.lookup({BitVec(16, 999)}), nullptr);
  EXPECT_EQ(t.lookup({BitVec(16, 2001)}), nullptr);
}

TEST(RuntimeTable, MixedExactTernaryKey) {
  RuntimeTable t("t", {exact_spec(8, "a"), ternary_spec(8, "b")}, 16);
  t.add({KeyParam::exact(BitVec(8, 1)),
         KeyParam::ternary(BitVec(8, 0xf0), BitVec(8, 0xf0))},
        1, {}, 1);
  EXPECT_NE(t.lookup({BitVec(8, 1), BitVec(8, 0xf5)}), nullptr);
  EXPECT_EQ(t.lookup({BitVec(8, 2), BitVec(8, 0xf5)}), nullptr);
  EXPECT_EQ(t.lookup({BitVec(8, 1), BitVec(8, 0x05)}), nullptr);
}

TEST(RuntimeTable, DeleteRemovesEntry) {
  RuntimeTable t("t", {exact_spec(8)}, 16);
  const auto h = t.add({KeyParam::exact(BitVec(8, 9))}, 0, {});
  EXPECT_NE(t.lookup({BitVec(8, 9)}), nullptr);
  t.remove(h);
  EXPECT_EQ(t.lookup({BitVec(8, 9)}), nullptr);
  EXPECT_THROW(t.remove(h), CommandError);
  // The key can be re-added after deletion.
  EXPECT_NO_THROW(t.add({KeyParam::exact(BitVec(8, 9))}, 0, {}));
}

TEST(RuntimeTable, ModifyChangesActionArgs) {
  RuntimeTable t("t", {exact_spec(8)}, 16);
  const auto h = t.add({KeyParam::exact(BitVec(8, 9))}, 0, {BitVec(9, 1)});
  t.modify(h, 2, {BitVec(9, 7)});
  const TableEntry* e = t.lookup({BitVec(8, 9)});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->action, 2u);
  EXPECT_EQ(e->action_args[0].to_u64(), 7u);
}

TEST(RuntimeTable, DefaultAction) {
  RuntimeTable t("t", {exact_spec(8)}, 16);
  EXPECT_FALSE(t.has_default());
  EXPECT_THROW(t.default_action(), CommandError);
  t.set_default(4, {BitVec(8, 1)});
  EXPECT_TRUE(t.has_default());
  EXPECT_EQ(t.default_action(), 4u);
}

TEST(RuntimeTable, HitCountersPerEntry) {
  RuntimeTable t("t", {exact_spec(8)}, 16);
  const auto h = t.add({KeyParam::exact(BitVec(8, 1))}, 0, {});
  t.lookup({BitVec(8, 1)});
  t.lookup({BitVec(8, 1)});
  t.lookup({BitVec(8, 2)});
  EXPECT_EQ(t.entry(h).hits, 2u);
  t.reset_counters();
  EXPECT_EQ(t.entry(h).hits, 0u);
  EXPECT_EQ(t.applied_count(), 0u);
}

TEST(RuntimeTable, WideKeys) {
  // HyPer4-style 800-bit ternary match against extracted packet data.
  RuntimeTable t("t", {ternary_spec(800)}, 16);
  BitVec value(800);
  value.set_slice(700, BitVec(16, 0x0800));
  BitVec mask = BitVec::mask_range(800, 700, 16);
  t.add({KeyParam::ternary(value, mask)}, 1, {}, 1);
  BitVec pkt(800);
  pkt.set_slice(700, BitVec(16, 0x0800));
  pkt.set_slice(0, BitVec(64, 0xdeadbeef12345678ull));
  EXPECT_NE(t.lookup({pkt}), nullptr);
  pkt.set_slice(700, BitVec(16, 0x0806));
  EXPECT_EQ(t.lookup({pkt}), nullptr);
}

// ---------------------------------------------------------------------------
// Compiled match index: classification, invalidation, bmv2 rule pinning.

TEST(RuntimeTableIndex, KindClassification) {
  RuntimeTable exact("e", {exact_spec(16)}, 16);
  EXPECT_EQ(exact.index_kind(), RuntimeTable::IndexKind::kExactHash);
  RuntimeTable wide_exact("we", {exact_spec(48), exact_spec(48)}, 16);
  EXPECT_EQ(wide_exact.index_kind(), RuntimeTable::IndexKind::kExactHash);
  RuntimeTable lpm("l", {lpm_spec(32)}, 16);
  EXPECT_EQ(lpm.index_kind(), RuntimeTable::IndexKind::kPureLpm);
  RuntimeTable tern("t", {ternary_spec(16)}, 16);
  EXPECT_EQ(tern.index_kind(), RuntimeTable::IndexKind::kTernaryScan);
  // A mixed table (exact + lpm) cannot use the pure-LPM buckets.
  RuntimeTable mixed("m", {exact_spec(8), lpm_spec(32)}, 16);
  EXPECT_EQ(mixed.index_kind(), RuntimeTable::IndexKind::kTernaryScan);
  RuntimeTable valid("v", {KeySpec{p4::MatchType::kValid, 0, 1, "v"}}, 16);
  EXPECT_EQ(valid.index_kind(), RuntimeTable::IndexKind::kExactHash);
}

// bmv2 rule, pinned: for a pure-LPM table the longest prefix wins and
// priority is *ignored*, even when an entry carries an explicit priority.
// (An earlier implementation let an explicit-priority entry short-circuit
// longest-prefix selection; this is the regression test for that bug.)
TEST(RuntimeTableIndex, LpmExplicitPriorityDoesNotBeatLongerPrefix) {
  RuntimeTable t("t", {lpm_spec(32)}, 16);
  // /8 entry with the "best possible" explicit priority...
  t.add({KeyParam::lpm(BitVec(32, 0x0a000000), 8)}, 1, {}, 0);
  // ...must still lose to a longer /24 entry with no priority at all.
  const auto h24 = t.add({KeyParam::lpm(BitVec(32, 0x0a0b0c00), 24)}, 2, {});
  const TableEntry* e = t.lookup({BitVec(32, 0x0a0b0c0d)});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->handle, h24);
  EXPECT_EQ(e->action, 2u);
}

TEST(RuntimeTableIndex, LpmEqualPrefixInsertionOrderTieBreak) {
  RuntimeTable t("t", {lpm_spec(32)}, 16);
  const auto first = t.add({KeyParam::lpm(BitVec(32, 0x0a000000), 8)}, 1, {});
  // Same prefix value+length added again via a non-canonical value (host
  // bits set get masked at lookup): first insertion must keep winning.
  t.add({KeyParam::lpm(BitVec(32, 0x0a000001), 8)}, 2, {});
  const TableEntry* e = t.lookup({BitVec(32, 0x0a123456)});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->handle, first);
}

TEST(RuntimeTableIndex, LpmDeleteUnshadowsDuplicatePrefix) {
  RuntimeTable t("t", {lpm_spec(32)}, 16);
  const auto a = t.add({KeyParam::lpm(BitVec(32, 0x0a000000), 8)}, 1, {});
  const auto b = t.add({KeyParam::lpm(BitVec(32, 0x0a000000), 8)}, 2, {});
  ASSERT_EQ(t.lookup({BitVec(32, 0x0a0000ff)})->handle, a);
  t.remove(a);
  // The previously-shadowed duplicate must become reachable.
  const TableEntry* e = t.lookup({BitVec(32, 0x0a0000ff)});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->handle, b);
}

TEST(RuntimeTableIndex, LpmWideKeysUseBuckets) {
  // >64-bit pure-LPM (e.g. IPv6-style) goes through the wide bucket path.
  RuntimeTable t("t", {lpm_spec(128)}, 16);
  BitVec v16(128);
  v16.set_slice(112, BitVec(16, 0x2001));
  const auto h16 = t.add({KeyParam::lpm(v16, 16)}, 1, {});
  BitVec v32(128);
  v32.set_slice(112, BitVec(16, 0x2001));
  v32.set_slice(96, BitVec(16, 0x0db8));
  const auto h32 = t.add({KeyParam::lpm(v32, 32)}, 2, {});
  BitVec probe = v32;
  probe.set_slice(0, BitVec(64, 0x1234567890abcdefull));
  ASSERT_NE(t.lookup({probe}), nullptr);
  EXPECT_EQ(t.lookup({probe})->handle, h32);
  BitVec probe2 = v16;
  probe2.set_slice(96, BitVec(16, 0xffff));
  ASSERT_NE(t.lookup({probe2}), nullptr);
  EXPECT_EQ(t.lookup({probe2})->handle, h16);
}

// add -> lookup -> delete -> lookup -> re-add -> modify -> lookup, per
// index kind: the compiled index must track every mutation (stale-index
// bugs show up as hits on deleted entries or misses on fresh ones).
void invalidation_roundtrip(RuntimeTable& t, std::vector<KeyParam> key,
                            const std::vector<BitVec>& probe,
                            std::int32_t priority) {
  const std::uint64_t e0 = t.index_epoch();
  const auto h = t.add(key, 0, {}, priority);
  EXPECT_GT(t.index_epoch(), e0);
  ASSERT_NE(t.lookup(probe), nullptr);
  EXPECT_EQ(t.lookup(probe)->handle, h);

  const std::uint64_t e1 = t.index_epoch();
  t.remove(h);
  EXPECT_GT(t.index_epoch(), e1);
  EXPECT_EQ(t.lookup(probe), nullptr);

  const auto h2 = t.add(key, 0, {}, priority);
  ASSERT_NE(t.lookup(probe), nullptr);
  EXPECT_EQ(t.lookup(probe)->handle, h2);

  const std::uint64_t e2 = t.index_epoch();
  t.modify(h2, 1, {BitVec(9, 7)});
  EXPECT_GT(t.index_epoch(), e2);
  const TableEntry* e = t.lookup(probe);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->handle, h2);
  EXPECT_EQ(e->action, 1u);
  ASSERT_EQ(e->action_args.size(), 1u);
  EXPECT_EQ(e->action_args[0].to_u64(), 7u);
}

TEST(RuntimeTableIndex, InvalidationExactU64) {
  RuntimeTable t("t", {exact_spec(48)}, 16);
  invalidation_roundtrip(t, {KeyParam::exact(BitVec(48, 42))},
                         {BitVec(48, 42)}, -1);
}

TEST(RuntimeTableIndex, InvalidationExactWide) {
  RuntimeTable t("t", {exact_spec(48), exact_spec(48)}, 16);
  invalidation_roundtrip(
      t,
      {KeyParam::exact(BitVec(48, 0xaabbccddeeffull)),
       KeyParam::exact(BitVec(48, 0x112233445566ull))},
      {BitVec(48, 0xaabbccddeeffull), BitVec(48, 0x112233445566ull)}, -1);
}

TEST(RuntimeTableIndex, InvalidationLpm) {
  RuntimeTable t("t", {lpm_spec(32)}, 16);
  invalidation_roundtrip(t, {KeyParam::lpm(BitVec(32, 0x0a0b0000), 16)},
                         {BitVec(32, 0x0a0b1234)}, -1);
}

TEST(RuntimeTableIndex, InvalidationTernaryFastPath) {
  RuntimeTable t("t", {ternary_spec(48)}, 16);
  invalidation_roundtrip(
      t, {KeyParam::ternary(BitVec(48, 0x120000000000ull),
                            BitVec(48, 0xff0000000000ull))},
      {BitVec(48, 0x12deadbeef00ull)}, 5);
}

TEST(RuntimeTableIndex, InvalidationTernaryWide) {
  RuntimeTable t("t", {ternary_spec(800)}, 16);
  BitVec v(800);
  v.set_slice(700, BitVec(16, 0x0800));
  BitVec probe = v;
  probe.set_slice(0, BitVec(64, 0x1234));
  invalidation_roundtrip(
      t, {KeyParam::ternary(v, BitVec::mask_range(800, 700, 16))}, {probe}, 3);
}

TEST(RuntimeTableIndex, TernaryDeleteExposesLowerPriority) {
  RuntimeTable t("t", {ternary_spec(16)}, 16);
  const auto hi =
      t.add({KeyParam::ternary(BitVec(16, 0x1200), BitVec(16, 0xff00))}, 1, {},
            1);
  const auto lo =
      t.add({KeyParam::ternary(BitVec(16, 0), BitVec(16, 0))}, 2, {}, 9);
  ASSERT_EQ(t.lookup({BitVec(16, 0x12ab)})->handle, hi);
  t.remove(hi);
  ASSERT_EQ(t.lookup({BitVec(16, 0x12ab)})->handle, lo);
}

TEST(RuntimeTableIndex, CloneStateRebuildsIndexAndAdoptsEpoch) {
  RuntimeTable src("t", {ternary_spec(48)}, 16);
  RuntimeTable dst("t", {ternary_spec(48)}, 16);
  // Mutate the source after the replica was created: add, delete, re-add.
  const auto h1 = src.add(
      {KeyParam::ternary(BitVec(48, 0xaa0000000000ull),
                         BitVec(48, 0xff0000000000ull))},
      1, {}, 2);
  src.add({KeyParam::ternary(BitVec(48, 0), BitVec(48, 0))}, 2, {}, 9);
  src.remove(h1);
  src.add({KeyParam::ternary(BitVec(48, 0xbb0000000000ull),
                             BitVec(48, 0xff0000000000ull))},
          3, {}, 1);

  dst.clone_state_from(src);
  EXPECT_EQ(dst.index_epoch(), src.index_epoch());
  // The replica's rebuilt index must agree with the source on every probe,
  // including keys whose entry was deleted pre-clone.
  for (const std::uint64_t k :
       {0xaa1111111111ull, 0xbb2222222222ull, 0xcc3333333333ull}) {
    const TableEntry* se = src.lookup({BitVec(48, k)});
    const TableEntry* de = dst.lookup({BitVec(48, k)});
    ASSERT_EQ(se == nullptr, de == nullptr) << std::hex << k;
    if (se != nullptr) {
      EXPECT_EQ(se->handle, de->handle) << std::hex << k;
      EXPECT_EQ(se->action, de->action) << std::hex << k;
    }
  }
  // Post-clone mutations on the replica keep its own index coherent.
  dst.remove(dst.lookup({BitVec(48, 0xbb0000000000ull)})->handle);
  EXPECT_EQ(dst.lookup({BitVec(48, 0xbb4444444444ull)})->action, 2u);
}

TEST(RuntimeTableIndex, ExtraTrailingKeyComponentsIgnored) {
  // The switch hands every table the full scratch key vector; components
  // past the table's arity must be ignored by all index paths.
  RuntimeTable t("t", {exact_spec(16)}, 16);
  t.add({KeyParam::exact(BitVec(16, 7))}, 1, {});
  EXPECT_NE(t.lookup({BitVec(16, 7), BitVec(32, 999)}), nullptr);
  EXPECT_EQ(t.lookup({BitVec(16, 8), BitVec(32, 999)}), nullptr);
}

}  // namespace
}  // namespace hyper4::bm
