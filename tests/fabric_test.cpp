// The replicated multi-switch fabric (src/fabric): topology presets, the
// frame codec (including torn-frame rejection), the replication primitives
// (tail_from streaming, duplicate/gap outcomes, wire surgery on the
// journal), and full FabricController runs over both transports — local
// packet delivery, multi-hop trunk traversal, engine-mode equivalence,
// crash + torn-journal recovery, quorum-loss blocking, merged metrics and
// sim::Network delegation.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/apps.h"
#include "bench/common.h"
#include "fabric/fabric.h"
#include "fabric/topology.h"
#include "fabric/wire.h"
#include "hp4/p4_emit.h"
#include "sim/network.h"
#include "state/journal.h"
#include "state/store.h"
#include "util/error.h"

namespace hyper4 {
namespace {

namespace fs = std::filesystem;
using fabric::FabricController;
using fabric::FabricOptions;
using fabric::FabricTopology;
using fabric::Frame;
using fabric::FrameType;
using state::DurableController;
using state::Journal;
using state::ReplicaApply;

std::string temp_dir(const std::string& tag) {
  const std::string d =
      (fs::temp_directory_path() / ("hp4_fabric_test_" + tag)).string();
  fs::remove_all(d);
  return d;
}

// --- topology ---------------------------------------------------------------

TEST(FabricTopology, LineTreeAndFatTreeShapes) {
  const FabricTopology line = FabricTopology::line(4);
  EXPECT_EQ(4u, line.nodes);
  EXPECT_EQ(3u, line.wires.size());
  EXPECT_EQ(8u, line.hosts.size());  // two hosts per node

  const FabricTopology tree = FabricTopology::tree(2, 7);
  EXPECT_EQ(7u, tree.nodes);
  EXPECT_EQ(6u, tree.wires.size());  // n-1 edges in a tree

  const FabricTopology fat = FabricTopology::fat_tree(2);
  // k=2: 1 core + 2 pods x (1 agg + 1 edge) = 5 switches.
  EXPECT_EQ(5u, fat.nodes);
  // Hosts hang only off edge switches.
  for (const auto& h : fat.hosts) EXPECT_LT(h.port, fabric::kTrunkBase);

  EXPECT_THROW(FabricTopology::by_name("mesh", 4), util::ConfigError);
  // by_name("fat-tree", n) picks the smallest even k covering n switches.
  EXPECT_EQ(5u, FabricTopology::by_name("fat-tree", 4).nodes);
}

TEST(FabricTopology, TrunkPortsNeverCollideWithHostPorts) {
  for (const auto& topo :
       {FabricTopology::line(4), FabricTopology::tree(2, 5),
        FabricTopology::fat_tree(4)}) {
    for (const auto& w : topo.wires) {
      EXPECT_GE(w.a_port, fabric::kTrunkBase);
      EXPECT_GE(w.b_port, fabric::kTrunkBase);
    }
    for (const auto& h : topo.hosts) EXPECT_LT(h.port, fabric::kTrunkBase);
  }
}

// --- frame codec ------------------------------------------------------------

TEST(FabricWire, RoundTripsReplicationAndPacketFrames) {
  Frame apply;
  apply.type = FrameType::kApply;
  apply.epoch = 7;
  apply.record.lsn = 42;
  apply.record.type = state::RecordType::kOp;
  apply.record.has_digest = true;
  apply.record.digest = 0xdeadbeef;
  apply.record.body = std::string("op-bytes\x00with-nul", 17);
  const Frame apply2 = fabric::decode(fabric::encode(apply));
  EXPECT_EQ(FrameType::kApply, apply2.type);
  EXPECT_EQ(7u, apply2.epoch);
  EXPECT_EQ(42u, apply2.record.lsn);
  EXPECT_TRUE(apply2.record.has_digest);
  EXPECT_EQ(0xdeadbeefu, apply2.record.digest);
  EXPECT_EQ(apply.record.body, apply2.record.body);

  Frame pkt;
  pkt.type = FrameType::kPacket;
  pkt.seq = 99;
  pkt.dst_node = 3;
  pkt.port = 101;
  pkt.hops = 2;
  pkt.bytes = std::string("\x01\x02\x00\x03", 4);
  const Frame pkt2 = fabric::decode(fabric::encode(pkt));
  EXPECT_EQ(99u, pkt2.seq);
  EXPECT_EQ(3u, pkt2.dst_node);
  EXPECT_EQ(101u, pkt2.port);
  EXPECT_EQ(2u, pkt2.hops);
  EXPECT_EQ(pkt.bytes, pkt2.bytes);

  Frame cfg;
  cfg.type = FrameType::kConfig;
  cfg.links = {{100, 1, 101}, {101, 2, 100}};
  cfg.host_ports = {{1, "h0a"}, {2, "h0b"}};
  const Frame cfg2 = fabric::decode(fabric::encode(cfg));
  ASSERT_EQ(2u, cfg2.links.size());
  EXPECT_EQ(1u, cfg2.links[0].dst_node);
  EXPECT_EQ(101u, cfg2.links[0].dst_port);
  ASSERT_EQ(2u, cfg2.host_ports.size());
  EXPECT_EQ("h0b", cfg2.host_ports[1].second);

  Frame status;
  status.type = FrameType::kStatus;
  status.node = 2;
  status.lsn = 10;
  status.digest = 0xabc;
  status.counters = {{"packets", 5}, {"acks", 10}};
  status.metrics_json = "{\"counters\":{}}";
  const Frame status2 = fabric::decode(fabric::encode(status));
  EXPECT_EQ(status.counters, status2.counters);
  EXPECT_EQ(status.metrics_json, status2.metrics_json);
}

TEST(FabricWire, TornAndGarbledFramesThrowParseError) {
  Frame apply;
  apply.type = FrameType::kApply;
  apply.record.lsn = 5;
  apply.record.body = "0123456789";
  const std::string good = fabric::encode(apply);

  // A torn final record on the replication stream: every truncation point
  // must throw, never yield a half-applied record.
  for (std::size_t cut = 1; cut < good.size(); ++cut) {
    EXPECT_THROW(fabric::decode(good.substr(0, cut)), util::ParseError)
        << "cut at " << cut;
  }
  // Trailing garbage is as suspect as a missing tail.
  EXPECT_THROW(fabric::decode(good + "x"), util::ParseError);
  // A frame type outside the enum range.
  std::string bad = good;
  bad[0] = '\x7f';
  EXPECT_THROW(fabric::decode(bad), util::ParseError);
  EXPECT_THROW(fabric::decode(""), util::ParseError);
}

// --- replication primitives (wire surgery) ----------------------------------

// A leader store with a few ops journaled, plus the scanned records.
struct LeaderFixture {
  std::string dir;
  std::unique_ptr<DurableController> st;
  std::vector<state::Record> records;

  explicit LeaderFixture(const std::string& tag) : dir(temp_dir(tag)) {
    st = std::make_unique<DurableController>(dir);
    const auto id = st->load("l2", apps::l2_switch(), "admin", 64);
    st->attach_ports(id, {1, 2});
    st->bind(id);
    for (int i = 0; i < 4; ++i)
      st->add_rule(id, bench::vr(apps::l2_forward(
                           "02:00:00:00:01:0" + std::to_string(i),
                           static_cast<std::uint16_t>(1 + i % 2))));
    records = Journal::scan(dir).records;
  }
  ~LeaderFixture() { fs::remove_all(dir); }
};

TEST(FabricReplication, DuplicateLsnIsSkippedAndGapIsRefused) {
  LeaderFixture leader("dupgap_leader");
  const std::string fdir = temp_dir("dupgap_follower");
  DurableController follower(fdir);

  // In-order apply: every record lands.
  for (const auto& r : leader.records)
    EXPECT_EQ(ReplicaApply::kApplied, follower.apply_replicated(r));
  EXPECT_EQ(leader.st->last_lsn(), follower.last_lsn());
  EXPECT_EQ(leader.st->digest(), follower.digest());

  // A retransmitted record (duplicate LSN) is skipped, not re-applied.
  EXPECT_EQ(ReplicaApply::kDuplicate,
            follower.apply_replicated(leader.records.back()));
  EXPECT_EQ(leader.st->digest(), follower.digest());

  // A record past the follower's tail (gap) is refused — the caller must
  // resend the missing range, never apply over a hole.
  state::Record future = leader.records.back();
  future.lsn += 3;
  EXPECT_EQ(ReplicaApply::kGap, follower.apply_replicated(future));
  EXPECT_EQ(leader.st->last_lsn(), follower.last_lsn());
  fs::remove_all(fdir);
}

TEST(FabricReplication, TailFromStreamsExactlyThePastLsnSuffix) {
  LeaderFixture leader("tail_leader");
  ASSERT_GE(leader.records.size(), 4u);
  const std::uint64_t from = leader.records[2].lsn;

  auto tail = Journal::tail_from(leader.dir, from);
  std::vector<state::Record> got;
  state::Record rec;
  while (tail.next(&rec)) got.push_back(rec);
  EXPECT_FALSE(tail.truncated());

  std::vector<std::uint64_t> want;
  for (const auto& r : leader.records)
    if (r.lsn > from) want.push_back(r.lsn);
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i], got[i].lsn);
    EXPECT_EQ(leader.records[leader.records.size() - want.size() + i].body,
              got[i].body);
  }
}

TEST(FabricReplication, TornFinalRecordEndsTheTrustedPrefix) {
  LeaderFixture leader("torn_leader");
  const auto segments = Journal::segment_files(leader.dir);
  ASSERT_FALSE(segments.empty());

  // Wire surgery: cut bytes off the newest segment so its final record is
  // torn, exactly what a crash mid-append leaves behind.
  const std::string& last_seg = segments.back();
  const auto size = fs::file_size(last_seg);
  ASSERT_GT(size, 4u);
  fs::resize_file(last_seg, size - 3);

  auto tail = Journal::tail_from(leader.dir, 0);
  std::vector<std::uint64_t> lsns;
  state::Record rec;
  while (tail.next(&rec)) lsns.push_back(rec.lsn);
  EXPECT_TRUE(tail.truncated());
  // The trusted prefix is everything but the torn record.
  ASSERT_EQ(leader.records.size() - 1, lsns.size());
  for (std::size_t i = 0; i < lsns.size(); ++i)
    EXPECT_EQ(leader.records[i].lsn, lsns[i]);
}

// --- fabric runs ------------------------------------------------------------

constexpr const char* kMacRelay = "02:00:00:00:00:aa";

// Stand up a line fabric with the l2 program and local forwarding rules
// replicated to every node.
struct FabricFixture {
  std::string dir;
  FabricOptions fo;
  std::unique_ptr<FabricController> ctl;
  hp4::VdevId vdev = 0;

  FabricFixture(const std::string& tag, std::size_t nodes,
                std::size_t workers = 0, std::size_t quorum = 0,
                int timeout_ms = 5000)
      : dir(temp_dir(tag)) {
    fo.store_dir = dir;
    fo.topology = FabricTopology::line(nodes);
    fo.quorum = quorum;
    fo.commit_timeout_ms = timeout_ms;
    fo.node.engine_workers = workers;
    ctl = std::make_unique<FabricController>(fo);
    vdev = ctl->load_source(
        "l2_sw", hp4::emit_p4(apps::program_by_name("l2_sw")));
    std::vector<std::uint16_t> ports{1, 2, fabric::kTrunkBase,
                                     fabric::kTrunkBase + 1};
    ctl->attach_ports(vdev, ports);
    for (const auto p : ports) ctl->bind(vdev, p);
    ctl->add_rule(vdev, bench::vr(apps::l2_forward(bench::kMacH1, 1)));
    ctl->add_rule(vdev, bench::vr(apps::l2_forward(bench::kMacH2, 2)));
  }
  ~FabricFixture() {
    ctl.reset();
    fs::remove_all(dir);
  }

  net::Packet packet_to(const char* dst_mac) const {
    net::EthHeader eth;
    eth.src = net::mac_from_string(bench::kMacH1);
    eth.dst = net::mac_from_string(dst_mac);
    net::Ipv4Header ip;
    ip.src = net::ipv4_from_string("10.0.0.1");
    ip.dst = net::ipv4_from_string("10.0.0.2");
    net::TcpHeader tcp;
    tcp.src_port = 40000;
    return net::make_ipv4_tcp(eth, ip, tcp, 64);
  }

  void expect_converged() {
    const std::uint64_t want = ctl->leader_digest();
    for (std::size_t i = 0; i < ctl->nodes(); ++i) {
      EXPECT_EQ(ctl->leader().last_lsn(), ctl->node_acked_lsn(i)) << i;
      EXPECT_EQ(want, ctl->node_acked_digest(i)) << i;
    }
  }

  bool wait_acked(std::size_t node, std::uint64_t lsn, int ms = 10000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (ctl->node_acked_lsn(node) >= lsn) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }
};

TEST(Fabric, TwoNodeRingDeliversLocallyAndConverges) {
  FabricFixture f("ring2", 2);
  for (int k = 0; k < 8; ++k) {
    f.ctl->inject("h0a", f.packet_to(bench::kMacH2));
    f.ctl->inject("h1a", f.packet_to(bench::kMacH2));
  }
  f.ctl->drain();
  const auto dels = f.ctl->take_deliveries();
  EXPECT_EQ(16u, dels.size());
  for (const auto& d : dels) EXPECT_EQ(2u, d.port);  // h?b is port 2
  f.expect_converged();
  EXPECT_EQ(f.ctl->leader().last_lsn(), f.ctl->committed_lsn());
}

TEST(Fabric, MultiHopRelayCrossesTheTrunk) {
  FabricFixture f("relay", 3);
  // Every replica forwards the relay MAC one hop down the line; the last
  // node's unwired "next" trunk port absorbs it.
  f.ctl->add_rule(f.vdev, bench::vr(apps::l2_forward(
                              kMacRelay, fabric::kTrunkBase + 1)));
  for (int k = 0; k < 4; ++k) f.ctl->inject("h0a", f.packet_to(kMacRelay));
  f.ctl->drain();

  const auto c0 = f.ctl->node(0).counters();
  const auto c1 = f.ctl->node(1).counters();
  const auto c2 = f.ctl->node(2).counters();
  EXPECT_EQ(4u, c0.at("forwards"));
  EXPECT_EQ(4u, c1.at("forwards"));
  EXPECT_EQ(4u, c2.at("drops_unwired"));
  EXPECT_EQ(0u, f.ctl->take_deliveries().size());
  f.expect_converged();
}

TEST(Fabric, EngineModeMatchesDirectMode) {
  std::uint64_t direct_digest = 0;
  std::size_t direct_deliveries = 0;
  {
    FabricFixture f("engine_a", 2, /*workers=*/0);
    for (int k = 0; k < 12; ++k)
      f.ctl->inject("h0a", f.packet_to(bench::kMacH2));
    f.ctl->drain();
    direct_deliveries = f.ctl->take_deliveries().size();
    direct_digest = f.ctl->leader_digest();
    f.expect_converged();
  }
  {
    FabricFixture f("engine_b", 2, /*workers=*/2);
    for (int k = 0; k < 12; ++k)
      f.ctl->inject("h0a", f.packet_to(bench::kMacH2));
    f.ctl->drain();
    EXPECT_EQ(direct_deliveries, f.ctl->take_deliveries().size());
    EXPECT_EQ(direct_digest, f.ctl->leader_digest());
    f.expect_converged();
  }
}

TEST(Fabric, CrashedFollowerCatchesUpDigestClean) {
  FabricFixture f("crash", 3, 0, /*quorum=*/2);
  f.ctl->inject("h0a", f.packet_to(bench::kMacH2));
  f.ctl->drain();

  f.ctl->crash_node(1);
  EXPECT_FALSE(f.ctl->alive(1));
  // The fabric keeps committing at quorum 2 while node 1 is down.
  for (int i = 0; i < 3; ++i)
    f.ctl->add_rule(f.vdev, bench::vr(apps::l2_forward(
                                "02:00:00:00:02:0" + std::to_string(i), 2)));
  f.ctl->inject("h0a", f.packet_to(bench::kMacH2));
  f.ctl->inject("h2a", f.packet_to(bench::kMacH2));
  f.ctl->drain();

  // Restart: store recovery (checkpoint + journal tail) + shipped tail.
  f.ctl->restart_node(1);
  EXPECT_TRUE(f.ctl->alive(1));
  ASSERT_TRUE(f.wait_acked(1, f.ctl->leader().last_lsn()));
  f.expect_converged();
}

TEST(Fabric, TornJournalFollowerStillRecovers) {
  FabricFixture f("torn", 2, 0, /*quorum=*/1);
  for (int i = 0; i < 3; ++i)
    f.ctl->add_rule(f.vdev, bench::vr(apps::l2_forward(
                                "02:00:00:00:03:0" + std::to_string(i), 1)));
  // Crash node 1 AND tear the final bytes off its journal — restart must
  // truncate the torn suffix and re-fetch it from the leader.
  f.ctl->crash_node(1, /*tear_journal_tail=*/true);
  f.ctl->add_rule(f.vdev, bench::vr(apps::l2_forward("02:00:00:00:03:99", 2)));
  f.ctl->restart_node(1);
  ASSERT_TRUE(f.wait_acked(1, f.ctl->leader().last_lsn()));
  f.expect_converged();
}

TEST(Fabric, BelowQuorumCommitsBlockUntilReconnect) {
  FabricFixture f("quorum", 2, 0, /*quorum=*/2, /*timeout_ms=*/300);
  f.ctl->disconnect(1);
  // With only 1 of 2 replicas reachable the fabric refuses to commit.
  EXPECT_THROW(f.ctl->add_rule(f.vdev, bench::vr(apps::l2_forward(
                                           "02:00:00:00:04:01", 1))),
               util::ConfigError);
  f.ctl->reconnect(1);
  ASSERT_TRUE(f.wait_acked(1, f.ctl->leader().last_lsn()));
  // Back at quorum, commits flow again and the fabric converges.
  f.ctl->add_rule(f.vdev, bench::vr(apps::l2_forward("02:00:00:00:04:02", 2)));
  f.expect_converged();
}

TEST(Fabric, SocketTransportRunsServeNodeOutOfProcessStyle) {
  const std::string dir = temp_dir("socket");
  FabricOptions fo;
  fo.store_dir = dir;
  fo.topology = FabricTopology::line(2);
  fo.remote_nodes = {1};  // node 1 lives behind a socket

  const std::string sock = dir + "/node1.sock";
  fs::create_directories(dir);
  const int lfd = fabric::listen_unix(sock);
  // serve_node on its own thread stands in for the separate process; the
  // byte stream is identical either way.
  std::thread server([&] {
    fabric::NodeOptions no;
    no.store_dir = dir + "/node1";
    const int fd = fabric::connect_unix(sock);
    fabric::serve_node(fd, 1, std::move(no));
    ::close(fd);
  });

  {
    FabricController ctl(fo);
    ctl.attach_remote(1, fabric::accept_unix(lfd));
    const auto vdev = ctl.load_source(
        "l2_sw", hp4::emit_p4(apps::program_by_name("l2_sw")));
    ctl.attach_ports(vdev, {1, 2});
    ctl.bind(vdev, 1);
    ctl.bind(vdev, 2);
    ctl.add_rule(vdev, bench::vr(apps::l2_forward(bench::kMacH2, 2)));

    net::EthHeader eth;
    eth.src = net::mac_from_string(bench::kMacH1);
    eth.dst = net::mac_from_string(bench::kMacH2);
    net::Ipv4Header ip;
    ip.src = net::ipv4_from_string("10.0.0.1");
    ip.dst = net::ipv4_from_string("10.0.0.2");
    net::TcpHeader tcp;
    const net::Packet pkt = net::make_ipv4_tcp(eth, ip, tcp, 64);
    for (int k = 0; k < 6; ++k) {
      ctl.inject("h0a", pkt);
      ctl.inject("h1a", pkt);  // lands on the remote node
    }
    ctl.drain();
    EXPECT_EQ(12u, ctl.take_deliveries().size());
    const std::uint64_t want = ctl.leader_digest();
    EXPECT_EQ(want, ctl.node_acked_digest(0));
    EXPECT_EQ(want, ctl.node_acked_digest(1));
  }  // dtor sends kShutdown; serve_node returns
  server.join();
  ::close(lfd);
  fs::remove_all(dir);
}

TEST(Fabric, StatusJsonMergesPerNodeMetrics) {
  FabricFixture f("status", 2);
  for (int k = 0; k < 4; ++k) f.ctl->inject("h0a", f.packet_to(bench::kMacH2));
  f.ctl->drain();
  const std::string j = f.ctl->status_json();
  EXPECT_NE(std::string::npos, j.find("\"fabric\""));
  EXPECT_NE(std::string::npos, j.find("\"totals\""));
  EXPECT_NE(std::string::npos, j.find("\"nodes\""));
  EXPECT_NE(std::string::npos, j.find("\"applied_records\""));
  EXPECT_NE(std::string::npos, j.find("\"leader_digest\""));
  // Both per-node blocks are present.
  EXPECT_NE(std::string::npos, j.find("\"node\": 0"));
  EXPECT_NE(std::string::npos, j.find("\"node\": 1"));
}

// --- sim::Network delegation ------------------------------------------------

TEST(Fabric, SimNetworkDelegatesASwitchToAFabricNode) {
  // A fabric node can stand in for one switch of a simulated network: the
  // Network routes traversals of "s1" through FabricNode::process_sync.
  const std::string dir = temp_dir("sim_delegate");

  struct NullCb : fabric::NodeCallbacks {
    void on_ack(std::uint32_t, std::uint64_t, std::uint64_t) override {}
    void on_resend(std::uint32_t, std::uint64_t) override {}
    void on_deliver(std::uint32_t, std::uint16_t, const std::string&,
                    fabric::PacketMsg&&) override {}
    void forward(std::uint32_t, std::uint32_t, fabric::PacketMsg&&) override {}
    void on_done(std::uint32_t, std::uint32_t) override {}
  } cb;

  fabric::NodeOptions no;
  no.store_dir = dir;
  fabric::FabricNode node(0, no, &cb);
  const auto vdev =
      node.store().load("l2", apps::l2_switch(), "admin", 64);
  node.store().attach_ports(vdev, {1, 2});
  node.store().bind(vdev);
  node.store().add_rule(vdev, bench::vr(apps::l2_forward(bench::kMacH1, 1)));
  node.store().add_rule(vdev, bench::vr(apps::l2_forward(bench::kMacH2, 2)));

  sim::Network net;
  net.add_delegate_switch("s1", [&](std::uint16_t port, const net::Packet& p) {
    return node.process_sync(port, p);
  });
  net.add_host("h1", "s1", 1);
  net.add_host("h2", "s1", 2);

  const net::Packet pkt = bench::worst_case_packet("l2_sw");
  const auto dels = net.send("h1", pkt);
  ASSERT_EQ(1u, dels.size());
  EXPECT_EQ("h2", dels[0].host);
  fs::remove_all(dir);
}

// --- BENCH_fabric.json shape ------------------------------------------------

TEST(BenchFabricShape, CommittedJsonCarriesHostBlockAndTrajectory) {
  // The committed trajectory file: the common host block every BENCH_*.json
  // now embeds, plus the 1/2/4-node runs and the wall-clock scaling gate.
  std::ifstream in(std::string(HP4_SOURCE_DIR) + "/BENCH_fabric.json");
  ASSERT_TRUE(in.good()) << "BENCH_fabric.json must be committed";
  std::string j((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  for (const char* key :
       {"\"host\"", "\"nproc\"", "\"pin_workers\"", "\"sanitizer\"",
        "\"runs\"", "\"nodes\": 1", "\"nodes\": 2", "\"nodes\": 4",
        "\"agg_pps\"", "\"speedup_vs_1\"", "\"wall_scaling\"", "\"active\"",
        "\"speedup_4node\""}) {
    EXPECT_NE(std::string::npos, j.find(key)) << key;
  }
}

}  // namespace
}  // namespace hyper4
