// Tests for the engine's lock-free-ish data-path building blocks:
// SpscRing (per-shard hand-off), PacketArena (buffer recycling),
// ReorderBuffer (streaming deterministic merge), and the BoundedQueue
// fallback's wakeup accounting. The two-thread hand-off tests are the ones
// CI runs under ThreadSanitizer (tsan job, ctest -R 'Engine').
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "engine/arena.h"
#include "engine/metrics.h"
#include "engine/queue.h"
#include "engine/reorder.h"
#include "engine/ring.h"

namespace hyper4 {
namespace {

using engine::BoundedQueue;
using engine::Counter;
using engine::MergedResult;
using engine::PacketArena;
using engine::ReorderBuffer;
using engine::SpscRing;

// ---------------------------------------------------------------------------
// SpscRing

TEST(EngineRingTest, Pow2CapacityRounding) {
  EXPECT_EQ(engine::ring_pow2_capacity(1), 1u);
  EXPECT_EQ(engine::ring_pow2_capacity(2), 2u);
  EXPECT_EQ(engine::ring_pow2_capacity(3), 4u);
  EXPECT_EQ(engine::ring_pow2_capacity(1000), 1024u);
  EXPECT_EQ(engine::ring_pow2_capacity(1024), 1024u);
  SpscRing<int> r(0);  // zero clamps to a usable ring
  EXPECT_EQ(r.capacity(), 1u);
}

TEST(EngineRingTest, FifoThroughWraparound) {
  SpscRing<int> r(4);  // tiny: forces many wraparounds
  std::vector<int> out;
  int next_in = 0, next_out = 0;
  for (int round = 0; round < 100; ++round) {
    int batch[3];
    for (int& v : batch) v = next_in++;
    ASSERT_TRUE(r.push(batch, 3));
    ASSERT_TRUE(r.pop_batch(out, 8));
    for (int v : out) EXPECT_EQ(v, next_out++);
  }
  EXPECT_EQ(next_out, next_in);
  EXPECT_EQ(r.size(), 0u);
}

TEST(EngineRingTest, TryPushRespectsCapacity) {
  SpscRing<int> r(4);
  int vals[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(r.try_push(vals, 8), 4u);  // partial push: ring full after 4
  EXPECT_EQ(r.try_push(vals + 4, 4), 0u);
  std::vector<int> out;
  ASSERT_TRUE(r.pop_batch(out, 8));
  ASSERT_EQ(out.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], i);
}

TEST(EngineRingTest, CloseDrainsThenReportsClosure) {
  SpscRing<int> r(8);
  int vals[3] = {7, 8, 9};
  ASSERT_TRUE(r.push(vals, 3));
  r.close();
  int extra = 10;
  EXPECT_FALSE(r.push(&extra, 1));  // pushes fail after close
  std::vector<int> out;
  ASSERT_TRUE(r.pop_batch(out, 2));  // drains what remains, batched
  EXPECT_EQ(out.size(), 2u);
  ASSERT_TRUE(r.pop_batch(out, 2));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 9);
  EXPECT_FALSE(r.pop_batch(out, 2));  // closed and drained
}

TEST(EngineRingTest, CloseUnblocksWaitingConsumer) {
  SpscRing<int> r(4);
  std::atomic<bool> exited{false};
  std::thread consumer([&] {
    std::vector<int> out;
    while (r.pop_batch(out, 4)) {
    }
    exited.store(true);
  });
  // Consumer is (eventually) parked on the empty ring; close must wake it.
  r.close();
  consumer.join();
  EXPECT_TRUE(exited.load());
}

TEST(EngineRingTest, CloseUnblocksWaitingProducer) {
  SpscRing<int> r(2);
  int vals[2] = {1, 2};
  ASSERT_TRUE(r.push(vals, 2));  // ring now full
  std::atomic<bool> push_result{true};
  std::thread producer([&] {
    int more[2] = {3, 4};
    push_result.store(r.push(more, 2));  // blocks on full ring
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  r.close();
  producer.join();
  EXPECT_FALSE(push_result.load());
}

// The TSan target: sustained two-thread hand-off with batched push/pop,
// wraparound, and both slow paths (tiny ring forces producer waits; bursty
// producer forces consumer waits). Values must come out in FIFO order with
// nothing lost or duplicated.
TEST(EngineRingTest, TwoThreadHandOffIsFifoAndLossless) {
  engine::Counter prod_waits, cons_waits;
  SpscRing<std::uint64_t> r(8, &prod_waits, &cons_waits);
  constexpr std::uint64_t kCount = 200000;
  std::thread producer([&] {
    std::uint64_t batch[5];
    std::uint64_t next = 0;
    while (next < kCount) {
      std::size_t n = 0;
      while (n < 5 && next < kCount) batch[n++] = next++;
      ASSERT_TRUE(r.push(batch, n));
    }
    r.close();
  });
  std::uint64_t expect = 0, sum = 0;
  std::vector<std::uint64_t> out;
  while (r.pop_batch(out, 7)) {
    for (std::uint64_t v : out) {
      ASSERT_EQ(v, expect) << "FIFO violated";
      ++expect;
      sum += v;
    }
  }
  producer.join();
  EXPECT_EQ(expect, kCount);
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

// ---------------------------------------------------------------------------
// PacketArena

TEST(EngineArenaTest, RecycledBufferCapacityIsReused) {
  engine::Counter fresh;
  PacketArena arena(4, &fresh);
  std::vector<std::uint8_t> payload(256, 0xAB);
  net::Packet p = arena.acquire(payload);
  EXPECT_EQ(p.size(), 256u);
  const std::size_t grown_capacity = p.capacity();
  arena.recycle(std::move(p));
  // The next acquire of a same-or-smaller packet reuses the grown buffer:
  // capacity is at least what the recycled buffer had grown to.
  net::Packet q = arena.acquire(std::span<const std::uint8_t>(payload.data(), 64));
  EXPECT_EQ(q.size(), 64u);
  EXPECT_GE(q.capacity(), grown_capacity);
  EXPECT_EQ(fresh.value(), 0u);
}

TEST(EngineArenaTest, FreshAllocCountedOnlyWhenStockExhausted) {
  engine::Counter fresh;
  PacketArena arena(2, &fresh);
  std::vector<std::uint8_t> payload(16, 0x01);
  net::Packet a = arena.acquire(payload);
  net::Packet b = arena.acquire(payload);
  EXPECT_EQ(fresh.value(), 0u);  // both served from stock
  net::Packet c = arena.acquire(payload);
  EXPECT_EQ(fresh.value(), 1u);  // stock empty, nothing recycled yet
  arena.recycle(std::move(a));
  net::Packet d = arena.acquire(payload);
  EXPECT_EQ(fresh.value(), 1u);  // served from the return ring
  (void)b;
  (void)c;
  (void)d;
}

TEST(EngineArenaTest, ContentIsCallersBytes) {
  PacketArena arena(1);
  std::vector<std::uint8_t> first = {1, 2, 3, 4};
  std::vector<std::uint8_t> second = {9, 8};
  net::Packet p = arena.acquire(first);
  EXPECT_EQ(p.bytes().size(), 4u);
  EXPECT_EQ(p.at(0), 1);
  arena.recycle(std::move(p));
  net::Packet q = arena.acquire(second);
  ASSERT_EQ(q.size(), 2u);  // stale tail bytes must not leak through
  EXPECT_EQ(q.at(0), 9);
  EXPECT_EQ(q.at(1), 8);
}

// ---------------------------------------------------------------------------
// ReorderBuffer

bm::ProcessResult marked(std::uint32_t drops) {
  bm::ProcessResult r;
  r.drops = drops;  // use drops as a payload marker
  return r;
}

TEST(EngineReorderTest, InOrderDeliveryEmitsImmediately) {
  ReorderBuffer rb;
  std::vector<std::pair<std::uint64_t, bm::ProcessResult>> batch;
  batch.emplace_back(0, marked(10));
  batch.emplace_back(1, marked(11));
  rb.deliver(batch);
  EXPECT_TRUE(batch.empty());  // moved in
  EXPECT_EQ(rb.next_seq(), 2u);
  EXPECT_EQ(rb.pending(), 0u);
  MergedResult m = rb.take_ready();
  ASSERT_EQ(m.per_packet.size(), 2u);
  EXPECT_EQ(m.per_packet[0].drops, 10u);
  EXPECT_EQ(m.per_packet[1].drops, 11u);
  EXPECT_EQ(m.totals.drops, 21u);
  EXPECT_EQ(m.packets, 2u);
}

TEST(EngineReorderTest, OutOfOrderBuffersUntilGapFills) {
  ReorderBuffer rb;
  std::vector<std::pair<std::uint64_t, bm::ProcessResult>> batch;
  batch.emplace_back(2, marked(2));
  batch.emplace_back(1, marked(1));
  rb.deliver(batch);
  EXPECT_EQ(rb.next_seq(), 0u);  // nothing emitted: 0 is missing
  EXPECT_EQ(rb.pending(), 2u);
  batch.emplace_back(0, marked(0));
  rb.deliver(batch);
  EXPECT_EQ(rb.next_seq(), 3u);  // gap filled, everything cascades out
  EXPECT_EQ(rb.pending(), 0u);
  MergedResult m = rb.take_ready();
  ASSERT_EQ(m.per_packet.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i)
    EXPECT_EQ(m.per_packet[i].drops, i) << "emission order broke";
}

TEST(EngineReorderTest, TakeReadyStreamsIncrementalPrefixes) {
  ReorderBuffer rb;
  std::vector<std::pair<std::uint64_t, bm::ProcessResult>> batch;
  batch.emplace_back(0, marked(0));
  rb.deliver(batch);
  MergedResult first = rb.take_ready();
  EXPECT_EQ(first.packets, 1u);
  batch.emplace_back(1, marked(1));
  rb.deliver(batch);
  MergedResult second = rb.take_ready();
  ASSERT_EQ(second.per_packet.size(), 1u);
  EXPECT_EQ(second.per_packet[0].drops, 1u);  // only the new suffix
  EXPECT_EQ(rb.next_seq(), 2u);               // sequence survives takes
  MergedResult third = rb.take_ready();
  EXPECT_EQ(third.packets, 0u);  // caught up: empty take
}

TEST(EngineReorderTest, WaitEmittedBlocksUntilStragglerLands) {
  ReorderBuffer rb;
  std::thread straggler([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    std::vector<std::pair<std::uint64_t, bm::ProcessResult>> batch;
    batch.emplace_back(1, marked(1));
    batch.emplace_back(0, marked(0));
    rb.deliver(batch);
  });
  rb.wait_emitted(2);
  EXPECT_EQ(rb.next_seq(), 2u);
  straggler.join();
}

TEST(EngineReorderTest, StallCounterAdvancesOnDeliver) {
  engine::Counter stall;
  ReorderBuffer rb(&stall);
  std::vector<std::pair<std::uint64_t, bm::ProcessResult>> batch;
  batch.emplace_back(0, marked(0));
  rb.deliver(batch);
  // Wall-clock delta may round to 0ns, but deliver must have touched it;
  // deliver an out-of-order + cascade round too for coverage.
  batch.emplace_back(2, marked(2));
  rb.deliver(batch);
  batch.emplace_back(1, marked(1));
  rb.deliver(batch);
  EXPECT_EQ(rb.next_seq(), 3u);
}

// ---------------------------------------------------------------------------
// BoundedQueue fallback: wakeup accounting + proportional notify behaviour.

TEST(EngineQueueTest, WakeupCountersRecordBlocking) {
  engine::Counter prod_wakeups, cons_wakeups;
  BoundedQueue<int> q(2, &prod_wakeups, &cons_wakeups);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  std::thread producer([&] { ASSERT_TRUE(q.push(3)); });  // blocks: full
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::vector<int> out;
  ASSERT_TRUE(q.pop_batch(out, 1));  // frees one slot -> wakes the producer
  producer.join();
  EXPECT_GE(prod_wakeups.value(), 1u);

  std::thread consumer([&] {
    std::vector<int> got;
    ASSERT_TRUE(q.pop_batch(got, 4));  // drains 2,3 eventually
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  consumer.join();
  // Consumer never had to block on an empty queue here (2,3 were present);
  // force one blocking pop.
  std::thread blocked_consumer([&] {
    std::vector<int> got;
    ASSERT_TRUE(q.pop_batch(got, 1));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(q.push(4));
  blocked_consumer.join();
  EXPECT_GE(cons_wakeups.value(), 1u);
}

TEST(EngineQueueTest, ManyBlockedProducersAllEventuallyAdmitted) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(0));
  constexpr int kProducers = 8;
  std::vector<std::thread> producers;
  std::atomic<int> pushed{0};
  for (int i = 0; i < kProducers; ++i) {
    producers.emplace_back([&q, &pushed, i] {
      ASSERT_TRUE(q.push(i + 1));
      pushed.fetch_add(1);
    });
  }
  std::vector<int> out;
  int drained = 0;
  while (drained < kProducers + 1) {
    ASSERT_TRUE(q.pop_batch(out, 2));
    drained += static_cast<int>(out.size());
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(pushed.load(), kProducers);
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace hyper4
