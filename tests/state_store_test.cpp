// DurableController behaviour: journal-then-apply round trips across a
// reopen, checkpoints with journal truncation, transactions (atomic
// commit, abort, failure rollback) and their single-epoch propagation to
// an attached traffic engine.
#include "state/store.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "apps/apps.h"
#include "engine/engine.h"
#include "state/digest.h"
#include "state/journal.h"
#include "util/error.h"

namespace hyper4::state {
namespace {

namespace fs = std::filesystem;

hp4::VirtualRule vr(const apps::Rule& r) {
  return hp4::VirtualRule{r.table, r.action, r.keys, r.args, r.priority};
}

net::Packet eth_packet(const char* smac, const char* dmac) {
  net::EthHeader eth;
  eth.src = net::mac_from_string(smac);
  eth.dst = net::mac_from_string(dmac);
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string("10.0.0.1");
  ip.dst = net::ipv4_from_string("10.0.0.2");
  net::TcpHeader tcp;
  tcp.src_port = 40000;
  tcp.dst_port = 80;
  return net::make_ipv4_tcp(eth, ip, tcp, 64);
}

class StoreTest : public ::testing::Test {
 protected:
  StoreTest() {
    dir_ = (fs::temp_directory_path() /
            ("hp4_store_test_" + std::string(::testing::UnitTest::GetInstance()
                                                 ->current_test_info()
                                                 ->name())))
               .string();
    fs::remove_all(dir_);
  }
  ~StoreTest() override { fs::remove_all(dir_); }

  // A store with the l2 switch loaded on ports 1..3 and one rule.
  hp4::VdevId setup_l2(DurableController& st) {
    const hp4::VdevId id = st.load("l2", apps::l2_switch());
    st.attach_ports(id, {1, 2, 3});
    st.bind(id);
    st.add_rule(id, vr(apps::l2_forward("02:00:00:00:00:01", 1)));
    return id;
  }

  std::string dir_;
};

TEST_F(StoreTest, FreshStoreHasCleanRecovery) {
  DurableController st(dir_);
  EXPECT_FALSE(st.recovery().checkpoint_loaded);
  EXPECT_EQ(st.recovery().replayed, 0u);
  EXPECT_TRUE(st.recovery().digest_ok);
  EXPECT_EQ(st.last_lsn(), 0u);
}

TEST_F(StoreTest, OpsSurviveReopenByteForByte) {
  std::uint64_t live_digest = 0;
  {
    DurableController st(dir_);
    const hp4::VdevId id = setup_l2(st);
    st.add_rule(id, vr(apps::l2_forward("02:00:00:00:00:02", 2)));
    st.authorize(id, "alice");
    live_digest = st.digest();
  }
  DurableController st(dir_);
  EXPECT_FALSE(st.recovery().checkpoint_loaded);
  EXPECT_GE(st.recovery().replayed, 5u);  // load, attach, bind, 2 rules, auth
  EXPECT_TRUE(st.recovery().digest_ok);
  EXPECT_GT(st.recovery().digests_checked, 0u);
  EXPECT_EQ(st.digest(), live_digest);
  // The recovered persona forwards: dst 02:00:00:00:00:02 out of port 2.
  const auto res = st.controller().dataplane().inject(
      1, eth_packet("02:00:00:00:00:01", "02:00:00:00:00:02"));
  ASSERT_EQ(res.outputs.size(), 1u);
  EXPECT_EQ(res.outputs[0].port, 2);
}

TEST_F(StoreTest, FailedOpsReplayAsFailuresWithoutDivergence) {
  std::uint64_t live_digest = 0;
  {
    DurableController st(dir_);
    const hp4::VdevId id = setup_l2(st);
    // A rule against a table the target does not have: journaled first,
    // fails on apply, and must fail identically during replay.
    EXPECT_THROW(
        st.add_rule(id, hp4::VirtualRule{"no_such_table", "fwd", {}, {}, -1}),
        util::Error);
    st.add_rule(id, vr(apps::l2_forward("02:00:00:00:00:03", 3)));
    live_digest = st.digest();
  }
  DurableController st(dir_);
  EXPECT_EQ(st.recovery().replay_failures, 1u);
  EXPECT_TRUE(st.recovery().digest_ok);
  EXPECT_EQ(st.digest(), live_digest);
}

TEST_F(StoreTest, CheckpointTruncatesJournalAndRestores) {
  std::uint64_t live_digest = 0;
  std::uint64_t ck_lsn = 0;
  {
    DurableController st(dir_);
    const hp4::VdevId id = setup_l2(st);
    ck_lsn = st.checkpoint();
    ASSERT_EQ(DurableController::checkpoint_files(dir_).size(), 1u);
    st.add_rule(id, vr(apps::l2_forward("02:00:00:00:00:02", 2)));
    live_digest = st.digest();
  }
  DurableController st(dir_);
  EXPECT_TRUE(st.recovery().checkpoint_loaded);
  EXPECT_EQ(st.recovery().checkpoint_lsn, ck_lsn);
  EXPECT_EQ(st.recovery().replayed, 1u);  // only the post-checkpoint rule
  EXPECT_TRUE(st.recovery().digest_ok);
  EXPECT_EQ(st.digest(), live_digest);
}

TEST_F(StoreTest, KeepsTwoCheckpointsAndJournalCoversTheOlder) {
  DurableController st(dir_);
  const hp4::VdevId id = setup_l2(st);
  const std::uint64_t ck1 = st.checkpoint();
  st.add_rule(id, vr(apps::l2_forward("02:00:00:00:00:02", 2)));
  st.checkpoint();
  st.add_rule(id, vr(apps::l2_forward("02:00:00:00:00:03", 3)));
  st.checkpoint();
  EXPECT_EQ(DurableController::checkpoint_files(dir_).size(), 2u);
  // The journal still reaches back past the OLDER retained image, so a
  // fallback restore replays the gap instead of silently losing it.
  const ScanResult sr = Journal::scan(dir_, ck1);
  std::size_t ops = 0;
  for (const auto& r : sr.records)
    if (r.type != RecordType::kFsyncPoint) ++ops;
  EXPECT_GE(ops, 2u);
}

TEST_F(StoreTest, TxnCommitIsOneRecordAndOneEngineEpoch) {
  DurableController st(dir_);
  const hp4::VdevId id = setup_l2(st);

  engine::TrafficEngine eng(st.controller().dataplane().program(),
                            engine::EngineOptions{});
  st.controller().attach_engine(&eng);
  const std::uint64_t epoch0 = eng.epoch();
  const std::size_t records0 = Journal::scan(dir_).records.size();

  st.txn_begin();
  EXPECT_TRUE(st.in_txn());
  st.add_rule(id, vr(apps::l2_forward("02:00:00:00:00:02", 2)));
  st.add_rule(id, vr(apps::l2_forward("02:00:00:00:00:03", 3)));
  // Nothing journaled and nothing propagated until commit.
  EXPECT_EQ(Journal::scan(dir_).records.size(), records0);
  EXPECT_EQ(eng.epoch(), epoch0);
  st.txn_commit();
  EXPECT_FALSE(st.in_txn());
  EXPECT_EQ(eng.epoch(), epoch0 + 1);  // the whole batch is one bump

  // One kTxn record (plus its fsync marker).
  const auto recs = Journal::scan(dir_).records;
  std::size_t txns = 0;
  for (const auto& r : recs)
    if (r.type == RecordType::kTxn) ++txns;
  EXPECT_EQ(txns, 1u);

  // Both rules visible through the engine.
  eng.inject(1, eth_packet("02:00:00:00:00:01", "02:00:00:00:00:03"));
  const engine::MergedResult m = eng.drain();
  ASSERT_EQ(m.per_packet.size(), 1u);
  ASSERT_EQ(m.per_packet[0].outputs.size(), 1u);
  EXPECT_EQ(m.per_packet[0].outputs[0].port, 3);
  st.controller().attach_engine(nullptr);
}

TEST_F(StoreTest, TxnAbortRestoresPreTxnState) {
  DurableController st(dir_);
  const hp4::VdevId id = setup_l2(st);
  const std::uint64_t before = st.digest();
  const std::size_t records0 = Journal::scan(dir_).records.size();

  st.txn_begin();
  const std::uint64_t aborted_vh =
      st.add_rule(id, vr(apps::l2_forward("02:00:00:00:00:02", 2)));
  st.add_rule(id, vr(apps::l2_forward("02:00:00:00:00:03", 3)));
  EXPECT_NE(st.digest(), before);  // ops apply immediately inside the txn
  st.txn_abort();

  EXPECT_FALSE(st.in_txn());
  EXPECT_EQ(st.digest(), before);
  EXPECT_EQ(Journal::scan(dir_).records.size(), records0);
  // The vhandle sequence rewinds with the rollback: the next rule gets the
  // handle the first aborted rule had been assigned.
  const std::uint64_t vh =
      st.add_rule(id, vr(apps::l2_forward("02:00:00:00:00:04", 2)));
  EXPECT_EQ(vh, aborted_vh);
}

TEST_F(StoreTest, TxnOpFailureAutoAbortsWhole) {
  DurableController st(dir_);
  const hp4::VdevId id = setup_l2(st);
  const std::uint64_t before = st.digest();

  st.txn_begin();
  st.add_rule(id, vr(apps::l2_forward("02:00:00:00:00:02", 2)));
  EXPECT_THROW(
      st.add_rule(id, hp4::VirtualRule{"no_such_table", "fwd", {}, {}, -1}),
      util::Error);
  // The failing op aborted the whole transaction, including the good rule.
  EXPECT_FALSE(st.in_txn());
  EXPECT_EQ(st.digest(), before);
}

TEST_F(StoreTest, TxnGuards) {
  DurableController st(dir_);
  EXPECT_THROW(st.txn_commit(), util::ConfigError);
  EXPECT_THROW(st.txn_abort(), util::ConfigError);
  st.txn_begin();
  EXPECT_THROW(st.txn_begin(), util::ConfigError);
  EXPECT_THROW(st.checkpoint(), util::ConfigError);
  st.txn_abort();
}

TEST_F(StoreTest, ConfigOpsAreJournaled) {
  std::uint64_t live_digest = 0;
  std::string active;
  {
    DurableController st(dir_);
    const hp4::VdevId l2 = st.load("l2", apps::l2_switch());
    st.attach_ports(l2, {1, 2, 3});
    const hp4::VdevId fw = st.load("fw", apps::firewall());
    st.attach_ports(fw, {1, 2, 3});
    st.define_config("switching", {{std::nullopt, l2}});
    st.define_config("filtering", {{std::nullopt, fw}});
    st.activate_config("switching");
    st.activate_config("filtering");
    live_digest = st.digest();
    active = st.controller().active_config();
  }
  DurableController st(dir_);
  EXPECT_EQ(st.digest(), live_digest);
  EXPECT_EQ(st.controller().active_config(), active);
  EXPECT_EQ(st.vdev_sources().size(), 2u);
}

TEST_F(StoreTest, UnloadSurvivesReopen) {
  std::uint64_t live_digest = 0;
  {
    DurableController st(dir_);
    const hp4::VdevId id = setup_l2(st);
    st.unload(id);
    EXPECT_TRUE(st.vdev_sources().empty());
    live_digest = st.digest();
  }
  DurableController st(dir_);
  EXPECT_EQ(st.digest(), live_digest);
  EXPECT_TRUE(st.vdev_sources().empty());
}

}  // namespace
}  // namespace hyper4::state
