// Hot-swap-under-load soak (ISSUE 7 / S3): engine traffic keeps flowing
// while one tenant's program is transactionally swapped 100 times. Asserts
// the epoch-per-commit contract (zero dropped or coalesced engine epochs),
// digest-clean recovery from a crash torn mid-swap, and that the VM tier's
// per-reason fallback counters stay stable across every swap.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>

#include "scenarios/fleet.h"
#include "state/digest.h"
#include "state/journal.h"
#include "vm/vm.h"

namespace fs = std::filesystem;

namespace hyper4 {
namespace {

using scenarios::FleetOptions;
using scenarios::ScenarioFleet;
using scenarios::WaveResult;

constexpr std::size_t kSwaps = 100;

std::uint64_t journal_bytes(const std::string& dir) {
  std::uint64_t total = 0;
  for (const auto& f : state::Journal::segment_files(dir))
    total += fs::file_size(f);
  return total;
}

// Copy `src` and truncate the journal to its first `keep` bytes — the
// moral equivalent of the machine dying that many bytes into the WAL.
void crash_copy(const std::string& src, const std::string& dst,
                std::uint64_t keep) {
  fs::remove_all(dst);
  fs::create_directories(dst);
  for (const auto& e : fs::directory_iterator(src))
    fs::copy_file(e.path(), fs::path(dst) / e.path().filename());
  std::uint64_t acc = 0;
  bool cut = false;
  for (const auto& f : state::Journal::segment_files(dst)) {
    const std::uint64_t sz = fs::file_size(f);
    if (cut) {
      fs::remove(f);
    } else if (acc + sz <= keep) {
      acc += sz;
    } else {
      fs::resize_file(f, keep - acc);
      cut = true;
    }
  }
}

TEST(ScenarioSoak, HundredHotSwapsUnderLoadDropNoEpochs) {
  FleetOptions o;
  o.tenants = 4;
  o.chain_depth = 3;
  o.engine_workers = 2;
  o.vm_path = true;
  ScenarioFleet fleet(o);

  // Fallback counters at rest: the fleet programs must be fully inside the
  // compiled tier's envelope.
  fleet.inject_wave(2);
  ASSERT_TRUE(fleet.drain_wave().all_delivered);
  const auto diag0 = fleet.engine().packet_path_diagnostics();
  ASSERT_EQ(diag0.at("packets_fallback"), 0u);

  std::uint64_t delivered_waves = 0;
  for (std::size_t s = 0; s < kSwaps; ++s) {
    const std::size_t t = s % fleet.tenants();
    const std::uint64_t epoch_before = fleet.engine().epoch();

    fleet.inject_wave(1);      // packets in flight...
    fleet.hot_swap(t);         // ...while the txn swap lands
    const WaveResult w = fleet.drain_wave();

    ASSERT_TRUE(w.all_delivered) << "swap " << s << " broke tenant traffic";
    ++delivered_waves;
    // Exactly one epoch per commit: none dropped, none coalesced, no
    // hidden extra syncs from the swap's load/chain/rule churn.
    ASSERT_EQ(fleet.engine().epoch(), epoch_before + 1)
        << "swap " << s << " was not a single engine epoch";
  }
  EXPECT_EQ(delivered_waves, kSwaps);

  // Per-reason fallback stability: after 100 swaps the VM tier must not
  // have started falling back for any reason, and its compile counters
  // must have tracked the swaps (each swap invalidates via sync).
  const auto diag = fleet.engine().packet_path_diagnostics();
  EXPECT_EQ(diag.at("packets_fallback"), 0u);
  for (const auto& [k, v] : diag) {
    if (k.rfind("fallback.", 0) == 0)
      EXPECT_EQ(v, 0u) << "fallback reason appeared under soak: " << k;
  }
  EXPECT_GT(diag.at("packets_bytecode"), diag0.at("packets_bytecode"));
  EXPECT_GT(diag.at("compiles") + diag.at("recompiles"), 0u);
  EXPECT_EQ(diag.at("compile_failures"), 0u);
}

TEST(ScenarioSoak, MidSwapCrashRecoversDigestClean) {
  const std::string dir = testing::TempDir() + "/soak_crash_store";
  const std::string crash_dir = testing::TempDir() + "/soak_crash_cut";
  fs::remove_all(dir);

  std::uint64_t digest_before_swap = 0;
  std::uint64_t bytes_before_swap = 0;
  {
    FleetOptions o;
    o.tenants = 3;
    o.chain_depth = 2;
    o.engine_workers = 2;
    o.durable_dir = dir;
    ScenarioFleet fleet(o);

    // A few committed swaps and churn first, so recovery replays a
    // non-trivial prefix, with live traffic throughout.
    for (std::size_t s = 0; s < 5; ++s) {
      fleet.inject_wave(1);
      fleet.hot_swap(s % fleet.tenants());
      fleet.churn_tenant(s % fleet.tenants(), 5);
      ASSERT_TRUE(fleet.drain_wave().all_delivered);
    }

    digest_before_swap = fleet.store()->digest();
    bytes_before_swap = journal_bytes(dir);

    // The swap whose commit record the crash will tear.
    fleet.hot_swap(1);
    ASSERT_GT(journal_bytes(dir), bytes_before_swap);
    ASSERT_NE(fleet.store()->digest(), digest_before_swap);
  }

  // Crash one byte into the swap's commit record: the torn tail must be
  // dropped and the store must recover to exactly the pre-swap state.
  crash_copy(dir, crash_dir, bytes_before_swap + 1);
  state::DurableController rec(crash_dir);
  EXPECT_TRUE(rec.recovery().digest_ok)
      << rec.recovery().str();
  EXPECT_GT(rec.recovery().dropped_bytes, 0u);
  EXPECT_EQ(rec.digest(), digest_before_swap);

  // And a crash *after* the commit record keeps the swap.
  const std::string crash_dir2 = testing::TempDir() + "/soak_crash_keep";
  crash_copy(dir, crash_dir2, journal_bytes(dir));
  state::DurableController rec2(crash_dir2);
  EXPECT_TRUE(rec2.recovery().digest_ok);
  EXPECT_NE(rec2.digest(), digest_before_swap);
}

TEST(ScenarioSoak, SwapStormAcrossAllTenantsStaysConsistent) {
  // Every tenant swapped every round, traffic interleaved — the fleet
  // must keep the one-persona invariant (tenants x depth vdevs, no leaks).
  FleetOptions o;
  o.tenants = 5;
  o.chain_depth = 3;
  o.engine_workers = 2;
  ScenarioFleet fleet(o);
  const std::size_t expect_vdevs = o.tenants * o.chain_depth;

  for (std::size_t round = 0; round < 8; ++round) {
    fleet.inject_wave(1);
    for (std::size_t t = 0; t < fleet.tenants(); ++t) fleet.hot_swap(t);
    ASSERT_TRUE(fleet.drain_wave().all_delivered) << "round " << round;
    ASSERT_EQ(fleet.controller().dpmu().vdev_ids().size(), expect_vdevs)
        << "vdev leak after round " << round;
  }
  // 8 rounds x 5 tenants of swaps actually happened.
  std::size_t swaps = 0;
  for (std::size_t t = 0; t < fleet.tenants(); ++t)
    swaps += fleet.tenant(t).swaps;
  EXPECT_EQ(swaps, 40u);
}

}  // namespace
}  // namespace hyper4
