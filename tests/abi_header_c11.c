/* Compiled as strict C11 (CMAKE_C_STANDARD 11, no extensions): the stable
 * header must be consumable by a plain C toolchain, and the shared library
 * must satisfy C linkage. The probe runs a tiny success path end to end;
 * the C++ conformance suite calls it and checks the result. */
#include <hyper4/hyper4.h>

#include <string.h>

int h4_header_c_probe(void) {
  int32_t major = -1, minor = -1, patch = -1;
  if (h4_version(&major, &minor, &patch) != H4_OK) return 1;
  if (major != H4_VERSION_MAJOR || minor != H4_VERSION_MINOR ||
      patch != H4_VERSION_PATCH)
    return 2;
  if (h4_err_str(H4_ERR_PARSE) == NULL) return 3;
  h4_options opts;
  if (h4_options_init(&opts) != H4_OK) return 4;
  h4_instance* inst = NULL;
  if (h4_open(&opts, &inst) != H4_OK || inst == NULL) return 5;
  uint64_t digest = 0;
  if (h4_state_digest(inst, &digest) != H4_OK) return 6;
  if (h4_close(inst) != H4_OK) return 7;
  if (h4_close(inst) != H4_ERR_HANDLE) return 8; /* stale handle detected */
  return 0;
}
