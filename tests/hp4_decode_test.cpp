// Persona trace-decoder edge cases: vdev attribution across virtual-link
// recirculations (chains), resubmit ladders, virtual multicast
// replication, write-back ladders, and the first-divergence report's
// handling of a genuinely diverging persona.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/apps.h"
#include "hp4/controller.h"
#include "hp4/trace_decode.h"
#include "net/headers.h"
#include "obs/tracer.h"

namespace hyper4::hp4 {
namespace {

using apps::Rule;
using DE = DecodedEvent;

VirtualRule vr(const Rule& r) {
  return VirtualRule{r.table, r.action, r.keys, r.args, r.priority};
}

const char* kMacH1 = "02:00:00:00:00:01";
const char* kMacH2 = "02:00:00:00:00:02";

net::Packet tcp_packet(std::uint16_t dport = 80) {
  net::EthHeader eth;
  eth.src = net::mac_from_string(kMacH1);
  eth.dst = net::mac_from_string(kMacH2);
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string("10.0.0.1");
  ip.dst = net::ipv4_from_string("10.0.0.2");
  net::TcpHeader tcp;
  tcp.src_port = 40000;
  tcp.dst_port = dport;
  return net::make_ipv4_tcp(eth, ip, tcp, 64);
}

std::size_t count_kind(const std::vector<DE>& ev, DE::Kind k,
                       const std::string& vdev = "") {
  return static_cast<std::size_t>(
      std::count_if(ev.begin(), ev.end(), [&](const DE& e) {
        return e.kind == k && (vdev.empty() || e.vdev == vdev);
      }));
}

// ---------------------------------------------------------------------------
// Single-device decoding: emulated tables, guard misses, write-back ladder.

TEST(DecodeTest, AttributesStageTablesToEmulatedNames) {
  Controller ctl;
  auto id = ctl.load("l2", apps::l2_switch());
  ctl.attach_ports(id, {1, 2});
  ctl.bind(id, 1);
  ctl.add_rule(id, vr(apps::l2_forward(kMacH2, 2)));

  obs::PipelineTracer tr;
  ctl.dataplane().set_tracer(&tr);
  ctl.dataplane().inject(1, tcp_packet());

  const TraceDecoder dec(ctl.dpmu());
  const DecodedTrace t = dec.decode(tr);
  const auto view = t.emulated_view();

  // smac has no entries (decoded miss), dmac hits the installed rule.
  auto is_apply = [&](const char* tbl, bool hit) {
    return std::any_of(view.begin(), view.end(), [&](const DE& e) {
      return e.kind == DE::Kind::kTableApply && e.table == tbl &&
             e.hit == hit && e.vdev == "l2";
    });
  };
  EXPECT_TRUE(is_apply("smac", false));
  EXPECT_TRUE(is_apply("dmac", true));
  // The hit carries the virtual rule handle the DPMU handed out.
  for (const auto& e : view)
    if (e.kind == DE::Kind::kTableApply && e.table == "dmac")
      EXPECT_NE(e.vhandle, 0u);
  EXPECT_EQ(count_kind(view, DE::Kind::kEmit), 1u);
}

TEST(DecodeTest, WritebackLadderDecodesAsMachineryWithBytes) {
  Controller ctl;
  auto id = ctl.load("l2", apps::l2_switch());
  ctl.attach_ports(id, {1, 2});
  ctl.bind(id, 1);
  ctl.add_rule(id, vr(apps::l2_forward(kMacH2, 2)));

  obs::PipelineTracer tr;
  ctl.dataplane().set_tracer(&tr);
  ctl.dataplane().inject(1, tcp_packet());

  const DecodedTrace t = TraceDecoder(ctl.dpmu()).decode(tr);
  bool saw_writeback = false;
  for (const auto& e : t.events) {
    if (e.kind != DE::Kind::kWriteback) continue;
    saw_writeback = true;
    EXPECT_TRUE(e.machinery);
    EXPECT_GT(e.bytes, 0u);
  }
  EXPECT_TRUE(saw_writeback);
  // Machinery never leaks into the emulated view.
  EXPECT_EQ(count_kind(t.emulated_view(), DE::Kind::kWriteback), 0u);
  EXPECT_EQ(count_kind(t.emulated_view(), DE::Kind::kMachinery), 0u);
}

// The firewall's 54-byte parse requirement forces one resubmit through the
// persona's parse ladder (§6.4): structural machinery, absent from the
// emulated view.
TEST(DecodeTest, ResubmitLadderIsMachinery) {
  Controller ctl;
  auto id = ctl.load("fw", apps::firewall());
  ctl.attach_ports(id, {1, 2});
  ctl.bind(id, 1);
  ctl.add_rule(id, vr(apps::firewall_l2_forward(kMacH2, 2)));

  obs::PipelineTracer tr;
  ctl.dataplane().set_tracer(&tr);
  const auto res = ctl.dataplane().inject(1, tcp_packet());
  ASSERT_EQ(res.resubmits, 1u);

  const DecodedTrace t = TraceDecoder(ctl.dpmu()).decode(tr);
  EXPECT_EQ(count_kind(t.events, DE::Kind::kResubmit), 1u);
  for (const auto& e : t.events)
    if (e.kind == DE::Kind::kResubmit) EXPECT_TRUE(e.machinery);
  EXPECT_EQ(count_kind(t.emulated_view(), DE::Kind::kResubmit), 0u);
}

// ---------------------------------------------------------------------------
// Chains: the virtual link recirculates, and decoding must re-attribute
// events to the downstream device after the hop.

TEST(DecodeTest, ChainAttributesEventsToBothDevices) {
  Controller ctl;
  auto l2 = ctl.load("l2", apps::l2_switch());
  auto fw = ctl.load("fw", apps::firewall());
  ctl.chain({l2, fw}, {1, 2});
  ctl.add_rule(l2, vr(apps::l2_forward(kMacH2, 2)));
  ctl.add_rule(fw, vr(apps::firewall_l2_forward(kMacH2, 2)));

  obs::PipelineTracer tr;
  ctl.dataplane().set_tracer(&tr);
  const auto res = ctl.dataplane().inject(1, tcp_packet());
  ASSERT_EQ(res.outputs.size(), 1u);

  const DecodedTrace t = TraceDecoder(ctl.dpmu()).decode(tr);
  // The virtual link shows up as a recirculation in the full view...
  EXPECT_GE(count_kind(t.events, DE::Kind::kRecirculate), 1u);
  // ...and table applies are attributed to each device by name.
  EXPECT_GT(count_kind(t.events, DE::Kind::kTableApply, "l2"), 0u);
  EXPECT_GT(count_kind(t.events, DE::Kind::kTableApply, "fw"), 0u);
  // The whole chain traversal is one injected packet.
  for (const auto& e : t.events) EXPECT_EQ(e.packet, 0u);
}

TEST(DecodeTest, ChainDropInSecondDeviceAttributedDownstream) {
  Controller ctl;
  auto l2 = ctl.load("l2", apps::l2_switch());
  auto fw = ctl.load("fw", apps::firewall());
  ctl.chain({l2, fw}, {1, 2});
  ctl.add_rule(l2, vr(apps::l2_forward(kMacH2, 2)));
  ctl.add_rule(fw, vr(apps::firewall_l2_forward(kMacH2, 2)));
  ctl.add_rule(fw, vr(apps::firewall_block_tcp_dport(22, 10)));

  obs::PipelineTracer tr;
  ctl.dataplane().set_tracer(&tr);
  const auto res = ctl.dataplane().inject(1, tcp_packet(22));
  ASSERT_TRUE(res.outputs.empty());

  const DecodedTrace t = TraceDecoder(ctl.dpmu()).decode(tr);
  // The blocking filter hit happens inside the firewall device.
  bool saw_fw_filter = false;
  for (const auto& e : t.events)
    if (e.kind == DE::Kind::kTableApply && e.vdev == "fw" && e.hit &&
        e.table == "l4_filter")
      saw_fw_filter = true;
  EXPECT_TRUE(saw_fw_filter);
  EXPECT_EQ(count_kind(t.emulated_view(), DE::Kind::kEmit), 0u);
}

// ---------------------------------------------------------------------------
// Virtual multicast: one emitted packet replicated to a port set.

TEST(DecodeTest, VirtualMulticastCopiesDecodePerPort) {
  Controller ctl;
  auto id = ctl.load("l2", apps::l2_switch());
  ctl.attach_ports(id, {1, 2, 3, 4});
  ctl.bind(id, 1);
  ctl.add_rule(id, vr(apps::l2_forward(kMacH2, 2)));
  ctl.dpmu().set_vport_target_mcast(id, 2, {2, 3, 4});

  obs::PipelineTracer tr;
  ctl.dataplane().set_tracer(&tr);
  const auto res = ctl.dataplane().inject(1, tcp_packet());
  ASSERT_EQ(res.outputs.size(), 3u);

  const DecodedTrace t = TraceDecoder(ctl.dpmu()).decode(tr);
  const auto view = t.emulated_view();
  std::vector<std::uint16_t> copy_ports, emit_ports;
  for (const auto& e : view) {
    if (e.kind == DE::Kind::kMulticast) copy_ports.push_back(e.port);
    if (e.kind == DE::Kind::kEmit) emit_ports.push_back(e.port);
  }
  std::sort(copy_ports.begin(), copy_ports.end());
  std::sort(emit_ports.begin(), emit_ports.end());
  EXPECT_EQ(copy_ports, (std::vector<std::uint16_t>{2, 3, 4}));
  EXPECT_EQ(emit_ports, (std::vector<std::uint16_t>{2, 3, 4}));
}

// ---------------------------------------------------------------------------
// Divergence reporting.

TEST(DecodeTest, AgreeingBackendsProduceEmptyReport) {
  bm::Switch native(apps::l2_switch());
  apps::apply_rule(native, apps::l2_forward(kMacH2, 2));

  Controller ctl;
  auto id = ctl.load("l2_switch", apps::l2_switch());
  ctl.attach_ports(id, {1, 2});
  ctl.bind(id, 1);
  ctl.add_rule(id, vr(apps::l2_forward(kMacH2, 2)));

  obs::PipelineTracer nt, pt;
  native.set_tracer(&nt);
  ctl.dataplane().set_tracer(&pt);
  const auto pkt = tcp_packet();
  native.inject(1, pkt);
  ctl.dataplane().inject(1, pkt);

  const DecodedTrace dn = decode_native_trace(nt);
  const DecodedTrace dp = TraceDecoder(ctl.dpmu()).decode(pt);
  EXPECT_EQ(first_divergence_report(dn, dp), "");
}

TEST(DecodeTest, MissingPersonaRuleNamesTableInReport) {
  bm::Switch native(apps::l2_switch());
  apps::apply_rule(native, apps::l2_forward(kMacH2, 2));

  Controller ctl;
  auto id = ctl.load("l2_switch", apps::l2_switch());
  ctl.attach_ports(id, {1, 2});
  ctl.bind(id, 1);
  // The forwarding rule is deliberately NOT installed in the persona.

  obs::PipelineTracer nt, pt;
  native.set_tracer(&nt);
  ctl.dataplane().set_tracer(&pt);
  const auto pkt = tcp_packet();
  native.inject(1, pkt);
  ctl.dataplane().inject(1, pkt);

  const DecodedTrace dn = decode_native_trace(nt);
  const DecodedTrace dp = TraceDecoder(ctl.dpmu()).decode(pt);
  const std::string report = first_divergence_report(dn, dp);
  ASSERT_NE(report, "");
  EXPECT_NE(report.find("first divergence"), std::string::npos);
  // The report speaks the emulated program's vocabulary.
  EXPECT_NE(report.find("dmac"), std::string::npos);
}

}  // namespace
}  // namespace hyper4::hp4
