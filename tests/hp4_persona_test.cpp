// Persona generation invariants: structure, table counts, base entries,
// and that the persona itself is a valid program the switch can run.
#include "hp4/persona.h"

#include <gtest/gtest.h>

#include "bm/cli.h"
#include "bm/switch.h"
#include "hp4/p4_emit.h"
#include "util/error.h"

namespace hyper4::hp4 {
namespace {

TEST(PersonaConfig, LadderGeneration) {
  PersonaConfig cfg;
  EXPECT_EQ(cfg.parse_ladder(),
            (std::vector<std::size_t>{20, 30, 40, 50, 60, 70, 80, 90, 100}));
  cfg.parse_step_bytes = 40;
  EXPECT_EQ(cfg.parse_ladder(), (std::vector<std::size_t>{20, 60, 100}));
}

TEST(PersonaConfig, ValidationRejectsNonsense) {
  PersonaConfig cfg;
  cfg.num_stages = 0;
  EXPECT_THROW(cfg.validate(), util::ConfigError);
  cfg = PersonaConfig{};
  cfg.parse_default_bytes = 200;
  EXPECT_THROW(cfg.validate(), util::ConfigError);
  cfg = PersonaConfig{};
  cfg.extracted_bits = 100;  // < 8 * parse_max_bytes
  EXPECT_THROW(cfg.validate(), util::ConfigError);
}

TEST(PersonaGenerator, GeneratesValidProgram) {
  PersonaGenerator gen{PersonaConfig{}};
  p4::Program p = gen.generate();
  EXPECT_EQ(p.name, "hyper4_persona");
  EXPECT_NO_THROW(p.validate());
}

TEST(PersonaGenerator, SwitchInstantiates) {
  PersonaGenerator gen{PersonaConfig{}};
  bm::Switch sw(gen.generate());
  EXPECT_TRUE(sw.has_table(tbl_setup_a()));
  EXPECT_TRUE(sw.has_table(tbl_vparse()));
  EXPECT_TRUE(sw.has_table(tbl_vnet()));
  EXPECT_TRUE(sw.has_table(tbl_stage_match(1, MatchSource::kExtracted)));
  EXPECT_TRUE(sw.has_table(tbl_prim_exec(4, 9, PrimType::kMod)));
  EXPECT_FALSE(sw.has_table(tbl_stage_match(5, MatchSource::kExtracted)));
}

TEST(PersonaGenerator, TableCountMatchesFormula) {
  // fixed: setup_a, setup_b, vparse, vnet, eg_csum, eg_writeback = 6
  // per stage: 3 match tables; per (stage, slot): setup + 5 exec + tx = 7.
  for (auto [k, p] : {std::pair<std::size_t, std::size_t>{1, 1},
                      {2, 3},
                      {4, 9},
                      {5, 9}}) {
    PersonaConfig cfg;
    cfg.num_stages = k;
    cfg.max_primitives = p;
    PersonaGenerator gen{cfg};
    const auto prog = gen.generate();
    EXPECT_EQ(prog.tables.size(), 6 + 3 * k + 7 * k * p)
        << "stages=" << k << " prims=" << p;
  }
}

TEST(PersonaGenerator, TableCountGrowsLinearly) {
  auto tables_at = [](std::size_t k, std::size_t p) {
    PersonaConfig cfg;
    cfg.num_stages = k;
    cfg.max_primitives = p;
    return PersonaGenerator{cfg}.generate().tables.size();
  };
  // Linear in stages at fixed primitives: equal second differences of zero.
  const auto d1 = tables_at(2, 5) - tables_at(1, 5);
  const auto d2 = tables_at(3, 5) - tables_at(2, 5);
  EXPECT_EQ(d1, d2);
  // Linear in primitives at fixed stages.
  const auto e1 = tables_at(3, 4) - tables_at(3, 3);
  const auto e2 = tables_at(3, 5) - tables_at(3, 4);
  EXPECT_EQ(e1, e2);
}

TEST(PersonaGenerator, EmittedSourceGrowsWithConfig) {
  auto loc_at = [](std::size_t k, std::size_t p) {
    PersonaConfig cfg;
    cfg.num_stages = k;
    cfg.max_primitives = p;
    return count_loc(emit_p4(PersonaGenerator{cfg}.generate()));
  };
  EXPECT_LT(loc_at(1, 1), loc_at(5, 1));
  EXPECT_LT(loc_at(5, 1), loc_at(5, 9));
}

TEST(PersonaGenerator, BaseCommandsApplyCleanly) {
  PersonaGenerator gen{PersonaConfig{}};
  bm::Switch sw(gen.generate());
  EXPECT_NO_THROW(bm::run_cli_text(sw, gen.base_commands()));
  EXPECT_EQ(sw.table(tbl_setup_b()).size(), gen.config().parse_ladder().size());
  EXPECT_EQ(sw.table(tbl_eg_writeback()).size(),
            gen.config().writeback_ladder().size());
}

TEST(PersonaGenerator, UnconfiguredPersonaDropsEverything) {
  PersonaGenerator gen{PersonaConfig{}};
  bm::Switch sw(gen.generate());
  bm::run_cli_text(sw, gen.base_commands());
  net::Packet pkt(std::vector<std::uint8_t>(64, 0xab));
  auto res = sw.inject(1, pkt);
  EXPECT_TRUE(res.outputs.empty());
  EXPECT_EQ(res.drops, 1u);
}

TEST(PersonaGenerator, SmallConfigStillValid) {
  PersonaConfig cfg;
  cfg.num_stages = 1;
  cfg.max_primitives = 1;
  cfg.parse_step_bytes = 20;
  cfg.parse_max_bytes = 40;
  PersonaGenerator gen{cfg};
  EXPECT_NO_THROW({ bm::Switch sw(gen.generate()); });
}

}  // namespace
}  // namespace hyper4::hp4
