// Satellite: vdev isolation must survive a checkpoint/restore cycle.
// Ownership, authorization grants, entry quotas, and vhandle ownership
// are all part of the persisted DPMU state; a restore that weakened any
// of them would let one slice touch another's entries.
#include <gtest/gtest.h>

#include <filesystem>

#include "apps/apps.h"
#include "state/store.h"
#include "util/error.h"

namespace hyper4::state {
namespace {

namespace fs = std::filesystem;

hp4::VirtualRule vr(const apps::Rule& r) {
  return hp4::VirtualRule{r.table, r.action, r.keys, r.args, r.priority};
}

class IsolationTest : public ::testing::Test {
 protected:
  IsolationTest() {
    dir_ = (fs::temp_directory_path() /
            ("hp4_isolation_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  ~IsolationTest() override { fs::remove_all(dir_); }

  // Two tenants: alice owns an l2 switch (tight quota, carol authorized),
  // bob owns a router. Returns {alice_vdev, bob_vdev, alice_rule_vhandle}.
  struct Setup {
    hp4::VdevId alice_dev;
    hp4::VdevId bob_dev;
    std::uint64_t alice_vh;
  };
  Setup build(DurableController& st) {
    Setup s;
    s.alice_dev = st.load("alice_l2", apps::l2_switch(), "alice", 3);
    st.attach_ports(s.alice_dev, {1, 2});
    s.bob_dev = st.load("bob_router", apps::ipv4_router(), "bob", 1024);
    st.attach_ports(s.bob_dev, {3, 4});
    st.bind(s.alice_dev, 1);
    st.bind(s.bob_dev, 3);
    s.alice_vh = st.add_rule(
        s.alice_dev, vr(apps::l2_forward("02:00:00:00:00:01", 2)), "alice");
    st.authorize(s.alice_dev, "carol");
    return s;
  }

  std::string dir_;
};

TEST_F(IsolationTest, OwnershipSurvivesCheckpointRestore) {
  Setup s{};
  {
    DurableController st(dir_);
    s = build(st);
    st.checkpoint();
  }
  DurableController st(dir_);
  ASSERT_TRUE(st.recovery().checkpoint_loaded);

  // bob cannot touch alice's device, before or after adding to his own.
  EXPECT_THROW(st.add_rule(s.alice_dev,
                           vr(apps::l2_forward("02:00:00:00:00:02", 2)), "bob"),
               util::IsolationError);
  EXPECT_THROW(st.delete_rule(s.alice_dev, s.alice_vh, "bob"),
               util::IsolationError);

  // carol's grant survived the cycle; alice's own rights obviously too.
  const std::uint64_t carol_vh = st.add_rule(
      s.alice_dev, vr(apps::l2_forward("02:00:00:00:00:03", 2)), "carol");
  st.delete_rule(s.alice_dev, carol_vh, "alice");

  // alice can delete her pre-checkpoint rule by its preserved vhandle.
  st.delete_rule(s.alice_dev, s.alice_vh, "alice");
}

TEST_F(IsolationTest, QuotaSurvivesCheckpointRestore) {
  Setup s{};
  {
    DurableController st(dir_);
    s = build(st);
    st.add_rule(s.alice_dev, vr(apps::l2_forward("02:00:00:00:00:02", 2)),
                "alice");
    st.checkpoint();
  }
  DurableController st(dir_);
  // Quota is 3 with 2 entries installed: one more fits, the next must be
  // rejected — the restored count includes pre-checkpoint entries.
  st.add_rule(s.alice_dev, vr(apps::l2_forward("02:00:00:00:00:03", 2)),
              "alice");
  EXPECT_THROW(st.add_rule(s.alice_dev,
                           vr(apps::l2_forward("02:00:00:00:00:04", 2)),
                           "alice"),
               util::IsolationError);
}

TEST_F(IsolationTest, VhandlesStayPerDeviceAcrossRestore) {
  Setup s{};
  std::uint64_t bob_vh = 0;
  {
    DurableController st(dir_);
    s = build(st);
    bob_vh = st.add_rule(s.bob_dev,
                         vr(apps::router_accept_mac("02:00:00:00:00:09")),
                         "bob");
    st.checkpoint();
  }
  DurableController st(dir_);
  // alice's vhandle means nothing on bob's device and vice versa: the
  // handle-remap is per-vdev, so cross-device deletion must fail even for
  // the device's own authorized requester.
  EXPECT_THROW(st.delete_rule(s.bob_dev, 99999, "bob"), util::Error);
  st.delete_rule(s.bob_dev, bob_vh, "bob");          // the real one works
  st.delete_rule(s.alice_dev, s.alice_vh, "alice");  // and alice's on hers
}

TEST_F(IsolationTest, IsolationHoldsAfterJournalOnlyRecovery) {
  Setup s{};
  {
    DurableController st(dir_);
    s = build(st);  // no checkpoint: pure journal replay
  }
  DurableController st(dir_);
  ASSERT_FALSE(st.recovery().checkpoint_loaded);
  EXPECT_THROW(st.delete_rule(s.alice_dev, s.alice_vh, "bob"),
               util::IsolationError);
  st.delete_rule(s.alice_dev, s.alice_vh, "carol");  // grant replayed too
}

}  // namespace
}  // namespace hyper4::state
