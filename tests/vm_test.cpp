// Tiered execution (src/vm): bytecode verifier rejections, encode/decode
// round-trips, epoch-staleness recompiles, tier equivalence on the paper's
// four functions (plus resubmit / recirculation / multicast / checksum /
// write-back paths), transparent fallback accounting, the engine fast path
// and the `vm` CLI command family.
#include <gtest/gtest.h>

#include "bench/common.h"
#include "bm/cli.h"
#include "check/trace_diff.h"
#include "engine/engine.h"
#include "hp4/controller.h"
#include "net/headers.h"
#include "util/error.h"
#include "vm/bytecode.h"
#include "vm/compiler.h"
#include "vm/vm.h"

namespace hyper4::vm {
namespace {

using bench::Harness;

net::Packet tcp_packet(std::uint16_t dport) {
  net::EthHeader eth;
  eth.src = net::mac_from_string(bench::kMacH1);
  eth.dst = net::mac_from_string(bench::kMacH2);
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string("10.0.0.1");
  ip.dst = net::ipv4_from_string("10.0.0.2");
  net::TcpHeader tcp;
  tcp.src_port = 40000;
  tcp.dst_port = dport;
  return net::make_ipv4_tcp(eth, ip, tcp, 64);
}

// Observable + TM-counter comparison between the interpreted persona and
// the VM tier; returns true (and passes EXPECT) when they agree.
void expect_tiers_equal(const bm::ProcessResult& persona,
                        const bm::ProcessResult& vm, const std::string& what) {
  auto d = check::diff_observable(persona, vm, 0);
  EXPECT_FALSE(d.has_value()) << what << ": " << (d ? d->str() : "");
  EXPECT_EQ(persona.drops, vm.drops) << what;
  EXPECT_EQ(persona.resubmits, vm.resubmits) << what;
  EXPECT_EQ(persona.recirculations, vm.recirculations) << what;
  EXPECT_EQ(persona.parse_errors, vm.parse_errors) << what;
  EXPECT_EQ(persona.loop_kills, vm.loop_kills) << what;
  EXPECT_EQ(persona.multicast_copies, vm.multicast_copies) << what;
}

// A minimal structurally-valid unit for verifier tests.
Unit tiny_unit() {
  Unit u;
  u.program = 7;
  u.num_stages = 2;
  u.max_primitives = 3;
  u.pr_headers = 100;
  u.tables = {"t_a", "t_b"};
  u.prim_tables = {0, 1, 0, 1, 0, 1, 0};  // one slot window
  u.code.push_back(Instr{static_cast<std::uint8_t>(Op::kLookup),
                         static_cast<std::uint8_t>(LookupMode::kSetupB), 0, 0,
                         0});
  u.code.push_back(Instr{static_cast<std::uint8_t>(Op::kHalt), 0, 0, 0, 0});
  u.egress_pc = 1;
  return u;
}

// ---------------------------------------------------------------------------
// Bytecode container: round-trip and decode rejections

TEST(VmBytecode, EncodeDecodeRoundTrip) {
  const Unit u = tiny_unit();
  const std::vector<std::uint8_t> bytes = encode(u);
  const Unit v = decode(bytes);
  EXPECT_EQ(v.program, u.program);
  EXPECT_EQ(v.egress_pc, u.egress_pc);
  EXPECT_EQ(v.num_stages, u.num_stages);
  EXPECT_EQ(v.max_primitives, u.max_primitives);
  EXPECT_EQ(v.pr_headers, u.pr_headers);
  EXPECT_EQ(v.tables, u.tables);
  EXPECT_EQ(v.prim_tables, u.prim_tables);
  ASSERT_EQ(v.code.size(), u.code.size());
  for (std::size_t i = 0; i < u.code.size(); ++i) {
    EXPECT_EQ(v.code[i].op, u.code[i].op) << i;
    EXPECT_EQ(v.code[i].mode, u.code[i].mode) << i;
    EXPECT_EQ(v.code[i].a, u.code[i].a) << i;
    EXPECT_EQ(v.code[i].b, u.code[i].b) << i;
    EXPECT_EQ(v.code[i].c, u.code[i].c) << i;
  }
}

TEST(VmBytecode, DecodeRejectsTruncation) {
  const std::vector<std::uint8_t> bytes = encode(tiny_unit());
  // Chop at every prefix boundary class: inside the magic, inside the
  // header, inside the code section, and one byte short of complete.
  for (std::size_t keep :
       {std::size_t{0}, std::size_t{4}, std::size_t{12}, bytes.size() / 2,
        bytes.size() - 1}) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() +
                                            static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW(decode(cut), util::ParseError) << "kept " << keep;
  }
}

TEST(VmBytecode, DecodeRejectsBadMagic) {
  std::vector<std::uint8_t> bytes = encode(tiny_unit());
  bytes[0] ^= 0xFF;
  EXPECT_THROW(decode(bytes), util::ParseError);
}

// ---------------------------------------------------------------------------
// Verifier rejections

TEST(VmVerify, AcceptsTinyUnit) {
  EXPECT_TRUE(verify(tiny_unit()).empty());
  EXPECT_NO_THROW(verify_or_throw(tiny_unit()));
}

TEST(VmVerify, RejectsEmptyCode) {
  Unit u = tiny_unit();
  u.code.clear();
  EXPECT_FALSE(verify(u).empty());
  EXPECT_THROW(verify_or_throw(u), util::ConfigError);
}

TEST(VmVerify, RejectsOutOfRangeRegister) {
  Unit u = tiny_unit();
  u.code.insert(u.code.begin(),
                Instr{static_cast<std::uint8_t>(Op::kJeq),
                      static_cast<std::uint8_t>(kRegCount), 0, 0, 1});
  ++u.egress_pc;
  EXPECT_THROW(verify_or_throw(u), util::ConfigError);
}

TEST(VmVerify, RejectsOutOfRangeTableIndex) {
  Unit u = tiny_unit();
  u.code[0].a = static_cast<std::uint32_t>(u.tables.size());  // one past
  EXPECT_THROW(verify_or_throw(u), util::ConfigError);
}

TEST(VmVerify, RejectsOutOfRangeLookupMode) {
  Unit u = tiny_unit();
  u.code[0].mode = static_cast<std::uint8_t>(LookupMode::kModeCount);
  EXPECT_THROW(verify_or_throw(u), util::ConfigError);
}

TEST(VmVerify, RejectsJumpTargetOutsideProgram) {
  Unit u = tiny_unit();
  u.code.insert(u.code.begin(),
                Instr{static_cast<std::uint8_t>(Op::kJmp), 0, 0, 0,
                      static_cast<std::uint32_t>(u.code.size() + 5)});
  ++u.egress_pc;
  EXPECT_THROW(verify_or_throw(u), util::ConfigError);
}

TEST(VmVerify, RejectsEgressPcOutsideProgram) {
  Unit u = tiny_unit();
  u.egress_pc = static_cast<std::uint32_t>(u.code.size());
  EXPECT_THROW(verify_or_throw(u), util::ConfigError);
}

TEST(VmVerify, RejectsFallThroughPastEnd) {
  Unit u = tiny_unit();
  u.code.pop_back();  // drop the trailing halt: last op is now a lookup
  u.egress_pc = 0;
  EXPECT_THROW(verify_or_throw(u), util::ConfigError);
}

TEST(VmVerify, RejectsInvalidOpcode) {
  Unit u = tiny_unit();
  u.code[0].op = 0xEE;
  EXPECT_THROW(verify_or_throw(u), util::ConfigError);
}

TEST(VmVerify, RejectsPrimWindowOutsideRegistry) {
  Unit u = tiny_unit();
  // Slot window [0, 7) exists but claims 2 slots -> [0, 14) overruns.
  u.code.insert(u.code.begin(),
                Instr{static_cast<std::uint8_t>(Op::kPrims), 0, 1, 2, 0});
  ++u.egress_pc;
  EXPECT_THROW(verify_or_throw(u), util::ConfigError);
}

// ---------------------------------------------------------------------------
// Compilation from a live persona

TEST(VmCompiler, CompilesPersonaProgramAndDisassembles) {
  Harness h("l2_sw");
  VmExecutor vm(h.ctl->dataplane(), h.ctl->generator().config());
  const Unit& u = vm.unit(static_cast<std::uint16_t>(h.vdev));
  EXPECT_FALSE(u.code.empty());
  EXPECT_GT(u.egress_pc, 0u);
  EXPECT_TRUE(verify(u).empty());

  const std::string dis = vm.disassemble(static_cast<std::uint16_t>(h.vdev));
  EXPECT_NE(dis.find("lookup"), std::string::npos);
  EXPECT_NE(dis.find("halt"), std::string::npos);
  EXPECT_NE(dis.find("egress:"), std::string::npos);
}

TEST(VmCompiler, NonPersonaSwitchRejected) {
  bm::Switch plain(apps::program_by_name("l2_sw"));
  EXPECT_THROW(VmExecutor(plain, hp4::PersonaConfig{}), util::ConfigError);
}

TEST(VmCompiler, CompileThenMutateRecompilesAtNextPacket) {
  Harness h("l2_sw");
  bm::Switch& dp = h.ctl->dataplane();
  VmExecutor vm(dp, h.ctl->generator().config());
  const net::Packet probe = bench::worst_case_packet("l2_sw");

  vm.process(1, probe);
  EXPECT_EQ(vm.stats().compiles, 1u);
  EXPECT_EQ(vm.stats().recompiles, 0u);
  const std::uint64_t epoch0 =
      vm.unit(static_cast<std::uint16_t>(h.vdev)).pruned_epoch_sum;

  // Mutate a pruned table through the DPMU: the next packet must observe
  // the epoch drift and recompile rather than run stale bytecode.
  h.ctl->add_rule(h.vdev,
                  bench::vr(apps::l2_forward("02:00:00:00:00:42", 3)));
  const bm::ProcessResult persona = dp.inject(1, probe);
  const bm::ProcessResult tier = vm.process(1, probe);
  expect_tiers_equal(persona, tier, "post-mutation probe");
  EXPECT_EQ(vm.stats().recompiles, 1u);
  EXPECT_GT(vm.unit(static_cast<std::uint16_t>(h.vdev)).pruned_epoch_sum,
            epoch0);
  EXPECT_EQ(vm.stats().packets_fallback, 0u);
}

// ---------------------------------------------------------------------------
// Tier equivalence

TEST(VmEquivalence, FourFunctionsWorstCase) {
  for (const std::string& name : bench::function_names()) {
    Harness h(name);
    bm::Switch& dp = h.ctl->dataplane();
    VmExecutor vm(dp, h.ctl->generator().config());
    const net::Packet probe = bench::worst_case_packet(name);
    for (std::uint16_t port : {std::uint16_t{1}, std::uint16_t{2}}) {
      const bm::ProcessResult persona = dp.inject(port, probe);
      const bm::ProcessResult tier = vm.process(port, probe);
      expect_tiers_equal(persona, tier,
                         name + " port " + std::to_string(port));
    }
    EXPECT_EQ(vm.stats().packets_fallback, 0u) << name;
    EXPECT_GE(vm.stats().packets_bytecode, 2u) << name;
  }
}

TEST(VmEquivalence, FirewallDropPath) {
  Harness h("firewall");
  bm::Switch& dp = h.ctl->dataplane();
  VmExecutor vm(dp, h.ctl->generator().config());
  const net::Packet blocked = tcp_packet(22);  // demo rules block dport 22
  const bm::ProcessResult persona = dp.inject(1, blocked);
  const bm::ProcessResult tier = vm.process(1, blocked);
  EXPECT_TRUE(tier.outputs.empty());
  expect_tiers_equal(persona, tier, "blocked tcp/22");
}

TEST(VmEquivalence, ResubmitOnDeepParse) {
  // The firewall parses eth+ip+tcp (54B) — deeper than the persona's
  // 20-byte first parse pass — so every packet takes the resubmit path.
  Harness h("firewall");
  bm::Switch& dp = h.ctl->dataplane();
  VmExecutor vm(dp, h.ctl->generator().config());
  const bm::ProcessResult tier =
      vm.process(1, bench::worst_case_packet("firewall"));
  EXPECT_GT(tier.resubmits, 0u);
  EXPECT_EQ(vm.stats().packets_fallback, 0u);
}

TEST(VmEquivalence, ChainRecirculates) {
  // l2_switch -> firewall chained inside one persona: crossing the virtual
  // link is a recirculation, exercising a_vfwd_vdev + preserved metadata.
  hp4::Controller ctl;
  const hp4::VdevId l2 = ctl.load("l2", apps::l2_switch());
  const hp4::VdevId fw = ctl.load("fw", apps::firewall());
  ctl.chain({l2, fw}, {1, 2});
  for (const auto& r :
       {apps::l2_forward(bench::kMacH1, 1), apps::l2_forward(bench::kMacH2, 2)})
    ctl.add_rule(l2, bench::vr(r));
  for (const auto& r : {apps::firewall_l2_forward(bench::kMacH1, 1),
                        apps::firewall_l2_forward(bench::kMacH2, 2),
                        apps::firewall_block_tcp_dport(22, 10)})
    ctl.add_rule(fw, bench::vr(r));

  bm::Switch& dp = ctl.dataplane();
  VmExecutor vm(dp, ctl.generator().config());

  const net::Packet allowed = tcp_packet(80);
  bm::ProcessResult persona = dp.inject(1, allowed);
  bm::ProcessResult tier = vm.process(1, allowed);
  EXPECT_GT(tier.recirculations, 0u);
  EXPECT_FALSE(tier.outputs.empty());
  expect_tiers_equal(persona, tier, "chained allowed");

  const net::Packet blocked = tcp_packet(22);
  persona = dp.inject(1, blocked);
  tier = vm.process(1, blocked);
  EXPECT_TRUE(tier.outputs.empty());
  expect_tiers_equal(persona, tier, "chained blocked");
  EXPECT_EQ(vm.stats().packets_fallback, 0u);
}

TEST(VmEquivalence, MulticastReplication) {
  Harness h("l2_sw");
  bm::Switch& dp = h.ctl->dataplane();
  // Retarget the vport behind phys port 2 at a replication group {2, 3}.
  h.ctl->dpmu().set_vport_target_mcast(h.vdev, 2, {2, 3});
  VmExecutor vm(dp, h.ctl->generator().config());

  const net::Packet probe = bench::worst_case_packet("l2_sw");  // -> port 2
  const bm::ProcessResult persona = dp.inject(1, probe);
  const bm::ProcessResult tier = vm.process(1, probe);
  EXPECT_EQ(tier.multicast_copies, 2u);
  EXPECT_EQ(tier.outputs.size(), 2u);
  expect_tiers_equal(persona, tier, "mcast probe");
  EXPECT_EQ(vm.stats().packets_fallback, 0u);
}

TEST(VmEquivalence, RouterChecksumAndWriteback) {
  // The router decrements TTL and rewrites MACs: the deparse write-back and
  // the generated ipv4 checksum action must both match the interpreter
  // byte-for-byte.
  Harness h("router");
  bm::Switch& dp = h.ctl->dataplane();
  VmExecutor vm(dp, h.ctl->generator().config());
  const net::Packet probe = bench::worst_case_packet("router");
  const bm::ProcessResult persona = dp.inject(1, probe);
  const bm::ProcessResult tier = vm.process(1, probe);
  ASSERT_FALSE(persona.outputs.empty());
  ASSERT_EQ(tier.outputs.size(), persona.outputs.size());
  // The routed packet differs from the input (TTL, MACs, checksum), so this
  // is a real write-back, not a pass-through.
  EXPECT_NE(std::vector<std::uint8_t>(tier.outputs[0].packet.bytes().begin(),
                                      tier.outputs[0].packet.bytes().end()),
            std::vector<std::uint8_t>(probe.bytes().begin(),
                                      probe.bytes().end()));
  expect_tiers_equal(persona, tier, "router probe");
  EXPECT_EQ(vm.stats().packets_fallback, 0u);
}

// ---------------------------------------------------------------------------
// Transparent fallback

TEST(VmFallback, IngressMeterOutsideTier) {
  hp4::PersonaConfig cfg;
  cfg.ingress_meter = true;
  hp4::Controller ctl(cfg);
  const hp4::VdevId v = ctl.load("l2", apps::l2_switch());
  ctl.attach_ports(v, {1, 2});
  for (std::uint16_t p : {1, 2}) ctl.bind(v, p);
  for (const auto& r :
       {apps::l2_forward(bench::kMacH1, 1), apps::l2_forward(bench::kMacH2, 2)})
    ctl.add_rule(v, bench::vr(r));

  bm::Switch& dp = ctl.dataplane();
  VmExecutor vm(dp, cfg);
  const net::Packet probe = bench::worst_case_packet("l2_sw");
  const bm::ProcessResult persona = dp.inject(1, probe);
  const bm::ProcessResult tier = vm.process(1, probe);
  expect_tiers_equal(persona, tier, "metered probe");
  EXPECT_EQ(vm.stats().packets_bytecode, 0u);
  EXPECT_EQ(vm.stats().packets_fallback, 1u);
  EXPECT_EQ(vm.stats().fallback_reasons.at("ingress-meter"), 1u);
}

TEST(VmFallback, RecordPrimitivesOutsideTier) {
  Harness h("l2_sw");
  bm::Switch& dp = h.ctl->dataplane();
  VmExecutor vm(dp, h.ctl->generator().config());

  obs::TracerOptions topts;
  topts.record_primitives = true;
  obs::PipelineTracer tr(topts);
  vm.set_tracer(&tr);

  vm.process(1, bench::worst_case_packet("l2_sw"));
  EXPECT_EQ(vm.stats().packets_fallback, 1u);
  EXPECT_EQ(vm.stats().fallback_reasons.at("record-primitives"), 1u);

  // Detach: the next packet runs on bytecode again.
  vm.set_tracer(nullptr);
  vm.process(1, bench::worst_case_packet("l2_sw"));
  EXPECT_EQ(vm.stats().packets_bytecode, 1u);
}

// ---------------------------------------------------------------------------
// Tracer conformance: the VM emits the interpreter's exact event stream

TEST(VmTracer, EventStreamMatchesInterpreter) {
  // Deterministic tracers (no timestamps): every event the interpreter
  // records for a traversal — inject, parser extracts, accepts, table
  // applies with hit/index flags and handles, action execs, TM verdicts,
  // deparse, emit — must appear identically from the VM tier, so the trace
  // decoder and golden-trace tooling work unchanged on compiled packets.
  for (const std::string& name : bench::function_names()) {
    Harness h(name);
    bm::Switch& dp = h.ctl->dataplane();
    VmExecutor vm(dp, h.ctl->generator().config());
    const net::Packet probe = bench::worst_case_packet(name);
    vm.process(1, probe);  // compile outside the traced window

    obs::TracerOptions topts;
    topts.timestamps = false;
    obs::PipelineTracer interp_tr(topts);
    dp.set_tracer(&interp_tr);
    dp.inject(1, probe);
    dp.set_tracer(nullptr);

    obs::PipelineTracer vm_tr(topts);
    vm.set_tracer(&vm_tr);
    vm.process(1, probe);
    vm.set_tracer(nullptr);

    const std::vector<obs::TraceEvent> a = interp_tr.events();
    const std::vector<obs::TraceEvent> b = vm_tr.events();
    ASSERT_EQ(a.size(), b.size()) << name;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(static_cast<int>(a[i].kind), static_cast<int>(b[i].kind))
          << name << " event " << i;
      EXPECT_EQ(a[i].flags, b[i].flags) << name << " event " << i;
      EXPECT_EQ(a[i].port, b[i].port) << name << " event " << i;
      EXPECT_EQ(a[i].id, b[i].id) << name << " event " << i;
      EXPECT_EQ(a[i].seq, b[i].seq) << name << " event " << i;
      EXPECT_EQ(a[i].handle, b[i].handle) << name << " event " << i;
      EXPECT_EQ(a[i].aux, b[i].aux) << name << " event " << i;
    }
    EXPECT_EQ(vm.stats().packets_fallback, 0u) << name;
  }
}

// ---------------------------------------------------------------------------
// Engine integration

TEST(VmEngine, FastPathMatchesDirectPersona) {
  Harness h("l2_sw");
  engine::EngineOptions opts;
  opts.workers = 2;
  engine::TrafficEngine eng(h.ctl->generator().generate(), opts);
  h.ctl->attach_engine(&eng);
  eng.set_packet_path(engine_fast_path(h.ctl->generator().config()));

  const net::Packet probe = bench::worst_case_packet("l2_sw");
  const bm::ProcessResult direct = h.ctl->dataplane().inject(1, probe);
  for (int i = 0; i < 8; ++i) eng.inject(1, probe);
  const engine::MergedResult m = eng.drain();
  ASSERT_EQ(m.per_packet.size(), 8u);
  for (std::size_t i = 0; i < m.per_packet.size(); ++i) {
    auto d = check::diff_observable(direct, m.per_packet[i], i);
    EXPECT_FALSE(d.has_value()) << (d ? d->str() : "");
  }

  // Clearing the path restores the interpreted pipeline.
  eng.set_packet_path(nullptr);
  eng.inject(1, probe);
  const engine::MergedResult m2 = eng.drain();
  ASSERT_EQ(m2.per_packet.size(), 1u);
  auto d = check::diff_observable(direct, m2.per_packet[0], 0);
  EXPECT_FALSE(d.has_value()) << (d ? d->str() : "");
  h.ctl->attach_engine(nullptr);
}

// ---------------------------------------------------------------------------
// CLI

TEST(VmCli, CommandFamily) {
  Harness h("l2_sw");
  bm::Switch& dp = h.ctl->dataplane();
  VmExecutor vm(dp, h.ctl->generator().config());
  const bm::CliExtensions ext = vm_cli_extensions(vm);
  const std::string prog = std::to_string(h.vdev);

  bm::CliResult r = bm::run_cli_command(dp, "vm status", &ext);
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_NE(r.message.find("0 cached unit(s)"), std::string::npos)
      << r.message;

  r = bm::run_cli_command(dp, "vm compile " + prog, &ext);
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_NE(r.message.find("compiled program"), std::string::npos);

  r = bm::run_cli_command(dp, "vm disasm " + prog, &ext);
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_NE(r.message.find("lookup"), std::string::npos);

  r = bm::run_cli_command(dp, "vm stats", &ext);
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_NE(r.message.find("packets_bytecode="), std::string::npos);

  // Errors surface as ok=false through the CLI's util::Error conversion.
  EXPECT_FALSE(bm::run_cli_command(dp, "vm", &ext).ok);
  EXPECT_FALSE(bm::run_cli_command(dp, "vm bogus", &ext).ok);
  EXPECT_FALSE(bm::run_cli_command(dp, "vm compile", &ext).ok);
  EXPECT_FALSE(bm::run_cli_command(dp, "vm compile notanumber", &ext).ok);
  EXPECT_FALSE(bm::run_cli_command(dp, "vm compile 99999", &ext).ok);

  // Without the extension table the command is unknown.
  EXPECT_FALSE(bm::run_cli_command(dp, "vm status").ok);
}

}  // namespace
}  // namespace hyper4::vm
