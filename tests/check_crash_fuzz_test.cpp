// Smoke coverage for the crash-point fuzzer: a handful of seeded cases
// must all recover byte-identically (the CI recover-smoke job runs the
// same driver at 200 iterations; nightly at 2000).
#include "check/crash_fuzz.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace hyper4::check {
namespace {

namespace fs = std::filesystem;

TEST(CrashFuzz, SeededRunRecoversEverywhere) {
  const std::string work =
      (fs::temp_directory_path() / "hp4_crash_fuzz_test").string();
  fs::remove_all(work);

  CrashFuzzOptions opts;
  opts.seed = 7;
  opts.iters = 5;
  opts.kills_per_iter = 2;
  opts.engine_workers = 2;
  opts.work_dir = work;
  const CrashFuzzResult res = crash_fuzz(opts);

  EXPECT_TRUE(res.ok()) << res.str();
  for (const auto& f : res.failures)
    ADD_FAILURE() << "seed " << f.seed << " kill@" << f.kill_offset << ": "
                  << f.detail << " (repro: " << f.dir << ")";
  EXPECT_GT(res.recoveries, 0u);
  // The forced kill inside each committing case's txn-record window means
  // any run with transactions exercises all-or-nothing recovery.
  EXPECT_GT(res.txn_kills, 0u);
  fs::remove_all(work);
}

TEST(CrashFuzz, SameSeedIsDeterministic) {
  const std::string work =
      (fs::temp_directory_path() / "hp4_crash_fuzz_det_test").string();
  CrashFuzzOptions opts;
  opts.seed = 11;
  opts.iters = 2;
  opts.kills_per_iter = 1;
  opts.work_dir = work + "_a";
  fs::remove_all(opts.work_dir);
  const CrashFuzzResult a = crash_fuzz(opts);
  opts.work_dir = work + "_b";
  fs::remove_all(opts.work_dir);
  const CrashFuzzResult b = crash_fuzz(opts);
  EXPECT_EQ(a.str(), b.str());
  fs::remove_all(work + "_a");
  fs::remove_all(work + "_b");
}

}  // namespace
}  // namespace hyper4::check
