/*
 * hyper4.h — the stable C ABI of the HyPer4 virtualization layer.
 *
 * This is the embeddable service surface (DESIGN.md "Embeddable service
 * surface"): everything a production system needs to drive the data plane
 * as a black box — compile P4-14 source, create/configure/hot-swap/
 * snapshot/restore virtual devices, inject packet batches through the
 * concurrent traffic engine, and read metrics/diagnostics as JSON —
 * without linking any C++20 internals. The header compiles as C11; the
 * symbol set is pinned by tests/fixtures/abi_symbols.txt and the
 * conformance suite (tests/abi_conformance_test.cpp).
 *
 * Conventions:
 *   - Every function returns H4_OK (0) on success or a negative error
 *     code; h4_err_str() names any code, h4_last_error() carries the
 *     detailed message of the most recent failure on an instance.
 *   - All output buffers are caller-owned. Functions filling one take
 *     (buf, cap, required): on success they write at most cap bytes and
 *     set *required to the byte count (strings include the NUL); when cap
 *     is too small they write nothing, set *required, and return
 *     H4_ERR_NOSPACE — call again with a buffer of *required bytes.
 *   - Handles are opaque. A closed instance or an unloaded vdev id is
 *     STALE: every use returns H4_ERR_HANDLE (double-close included).
 *   - An instance is not thread-safe; confine it to one thread or lock
 *     externally. Distinct instances are independent.
 */
#ifndef HYPER4_HYPER4_H_
#define HYPER4_HYPER4_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

#define H4_API __attribute__((visibility("default")))

#define H4_VERSION_MAJOR 0
#define H4_VERSION_MINOR 9
#define H4_VERSION_PATCH 0

/* ---- error codes (negative; 0 is success) ------------------------------ */
#define H4_OK 0
#define H4_ERR_ARG (-1)       /* null pointer / out-of-range argument */
#define H4_ERR_HANDLE (-2)    /* null, stale or foreign handle */
#define H4_ERR_PARSE (-3)     /* P4-14 source failed to parse/compile */
#define H4_ERR_CONFIG (-4)    /* operation invalid for this configuration */
#define H4_ERR_COMMAND (-5)   /* runtime table/rule operation failed */
#define H4_ERR_ISOLATION (-6) /* DPMU rejected: authorization or quota */
#define H4_ERR_NOSPACE (-7)   /* caller buffer too small; *required set */
#define H4_ERR_STATE (-8)     /* durable store / journal / image failure */
#define H4_ERR_INTERNAL (-9)  /* unexpected internal failure */

/* ---- opaque handles ---------------------------------------------------- */
typedef struct h4_instance h4_instance;
/* Virtual-device id (the persona program id). 0 is never a valid vdev. */
typedef uint64_t h4_vdev;

/* ---- construction ------------------------------------------------------ */
typedef struct h4_options {
  uint32_t workers;        /* engine worker threads; 0 = 1 */
  uint32_t queue_capacity; /* per-worker ring capacity; 0 = default */
  uint32_t batch_size;     /* max packets per worker batch; 0 = default */
  int32_t pin_workers;     /* nonzero: pin worker i to core i (best effort) */
  int32_t use_mutex_queue; /* nonzero: mutex BoundedQueue fallback channel */
  int32_t vm_fast_path;    /* nonzero: per-worker VM bytecode tier */
  int32_t collect_results; /* nonzero: keep outputs for h4_drain_outputs */
  uint32_t persona_stages; /* emulated match-action stages; 0 = default */
  /* Non-NULL: durable instance rooted at this directory — every management
   * op is write-ahead journaled and h4_open() recovers an existing store
   * (checkpoint + journal tail). NULL: in-memory instance. */
  const char* durable_dir;
} h4_options;

/* Fill `opts` with defaults (1 worker, results collected, in-memory).
 * Always call this first; the struct may grow in minor versions. */
H4_API int h4_options_init(h4_options* opts);

/* Library version; any pointer may be NULL. Never fails. */
H4_API int h4_version(int32_t* major, int32_t* minor, int32_t* patch);

/* Static name for any error code ("H4_ERR_PARSE: ..."). Never NULL. */
H4_API const char* h4_err_str(int32_t err);

/* Create an instance: persona switch + DPMU + controller + traffic engine
 * (and, with durable_dir, the write-ahead-journaled store). */
H4_API int h4_open(const h4_options* opts, h4_instance** out);

/* Destroy an instance. The handle is stale afterwards: a second close (or
 * any other use) returns H4_ERR_HANDLE. */
H4_API int h4_close(h4_instance* inst);

/* Message of the most recent failing call on `inst` (empty string when no
 * call has failed yet). Buffer protocol as documented above. */
H4_API int h4_last_error(h4_instance* inst, char* buf, size_t cap,
                         size_t* required);

/* ---- programs ---------------------------------------------------------- */
/* Compile-check P4-14 source against this instance's persona envelope
 * without loading it. On success writes a one-line JSON summary
 * {"name":...,"tables":N,"commands":N}. H4_ERR_PARSE on bad source. */
H4_API int h4_compile(h4_instance* inst, const char* p4_source, char* buf,
                      size_t cap, size_t* required);

/* Compile `p4_source` and load it as virtual device `name` (must be unique
 * among loaded devices). */
H4_API int h4_vdev_load(h4_instance* inst, const char* name,
                        const char* p4_source, h4_vdev* out);

/* Unload a device: drops its persona entries, vports and ingress bindings.
 * The id is stale afterwards (H4_ERR_HANDLE on reuse). */
H4_API int h4_vdev_unload(h4_instance* inst, h4_vdev vdev);

/* Allot vports for the given physical ports (egress defaults to the
 * physical port itself). */
H4_API int h4_vdev_attach_ports(h4_instance* inst, h4_vdev vdev,
                                const uint16_t* ports, size_t nports);

/* Bind traffic entering `port` to the device; port -1 binds all ports. */
H4_API int h4_vdev_bind(h4_instance* inst, h4_vdev vdev, int32_t port);

/* Compose devices in sequence over `ports`: every non-final device's
 * vports are retargeted at the next device; the final device emits
 * physically; ingress is bound to the first device. */
H4_API int h4_chain(h4_instance* inst, const h4_vdev* devs, size_t ndevs,
                    const uint16_t* ports, size_t nports);

/* Install one rule in the device's own table namespace. Keys/args use the
 * target program's CLI value syntax (e.g. "10.0.0.0/8", "0x0800").
 * `priority` is -1 for non-ternary tables. Returns the virtual handle. */
H4_API int h4_rule_add(h4_instance* inst, h4_vdev vdev, const char* table,
                       const char* action, const char* const* keys,
                       size_t nkeys, const char* const* args, size_t nargs,
                       int32_t priority, uint64_t* handle_out);

H4_API int h4_rule_delete(h4_instance* inst, h4_vdev vdev, uint64_t handle);

/* Atomically replace the program behind `vdev` with newly compiled
 * `p4_source`: the new device inherits the old one's attached ports and
 * ingress bindings (made through this ABI) inside ONE engine epoch — a
 * worker never observes the half-swapped state — then the old device is
 * unloaded and its id goes stale. Rules are NOT carried over (the new
 * program's tables may differ); re-add them, and re-issue h4_chain for
 * chained topologies. On a durable instance the swap is one transaction. */
H4_API int h4_vdev_hot_swap(h4_instance* inst, h4_vdev vdev,
                            const char* p4_source, h4_vdev* out);

/* ---- snapshot / restore ------------------------------------------------ */
/* Serialize the instance's full control-plane state (programs as P4-14
 * source, every table entry, registers, bindings, configs) into a
 * versioned binary image. Buffer protocol. */
H4_API int h4_snapshot(h4_instance* inst, void* buf, size_t cap,
                       size_t* required);

/* Wholesale-replace state from an image taken on an instance with the same
 * persona geometry. Vdev ids from snapshot time are valid again; ids
 * created after the snapshot go stale. In-memory instances only — a
 * durable instance recovers from its checkpoint + journal instead
 * (H4_ERR_CONFIG). */
H4_API int h4_restore(h4_instance* inst, const void* buf, size_t len);

/* 64-bit control-plane state digest (FNV-1a over the canonical state
 * serialization). Equal digests = the two control planes install
 * byte-identical match state. */
H4_API int h4_state_digest(h4_instance* inst, uint64_t* out);

/* ---- durable store (durable instances only; H4_ERR_CONFIG otherwise) --- */
/* Write a checkpoint image and truncate the journal; returns covered LSN. */
H4_API int h4_checkpoint(h4_instance* inst, uint64_t* lsn_out);

/* Human-readable report of what h4_open()'s recovery found and did
 * (checkpoint loaded, records replayed, bytes dropped, digest checks). */
H4_API int h4_recovery_report(h4_instance* inst, char* buf, size_t cap,
                              size_t* required);

/* ---- data plane -------------------------------------------------------- */
typedef struct h4_packet {
  uint16_t port;       /* ingress physical port */
  const uint8_t* data; /* raw packet bytes (caller-owned) */
  size_t len;
} h4_packet;

/* Flow-shard and enqueue a batch onto the engine workers. Bytes are copied
 * into arena-recycled buffers before return; at steady state this path
 * performs the same number of heap allocations as the native C++
 * inject_batch — zero (gated by tests/abi_overhead_test.cpp). */
H4_API int h4_inject_batch(h4_instance* inst, const h4_packet* pkts,
                           size_t n);

typedef struct h4_drain_stats {
  uint64_t packets;      /* packets processed by this drain */
  uint64_t outputs;      /* packets emitted on physical ports */
  uint64_t drops;
  uint64_t parse_errors;
  uint64_t resubmits;
  uint64_t recirculations;
  uint64_t epoch;        /* control-plane generation at drain time */
} h4_drain_stats;

/* Block until every injected packet is processed; fill `stats` (may be
 * NULL). With collect_results, the per-packet outputs are retained (in
 * injection order, appended across drains) until h4_drain_outputs takes
 * them. */
H4_API int h4_drain(h4_instance* inst, h4_drain_stats* stats);

typedef struct h4_output {
  uint16_t port;   /* egress physical port */
  uint32_t offset; /* byte offset into the `bytes` buffer */
  uint32_t len;
} h4_output;

/* Take the retained output packets: descriptors into `outs`, packet bytes
 * concatenated into `bytes`. Two-buffer protocol: when either buffer is
 * too small nothing is consumed, *nout and *nbytes are set to the required
 * counts and H4_ERR_NOSPACE is returned. On success the retained set is
 * cleared. H4_ERR_CONFIG when the instance was opened with
 * collect_results = 0. */
H4_API int h4_drain_outputs(h4_instance* inst, h4_output* outs,
                            size_t outs_cap, uint8_t* bytes,
                            size_t bytes_cap, size_t* nout, size_t* nbytes);

/* ---- observability ----------------------------------------------------- */
/* Engine MetricsRegistry snapshot as JSON: {"counters":{...},
 * "histograms":{name:{"buckets":[{"le":..,"count":..}...],...}}}. */
H4_API int h4_metrics_json(h4_instance* inst, char* buf, size_t cap,
                           size_t* required);

/* Engine/tier diagnostics as JSON: {"workers":N,"epoch":E,
 * "packet_path":{...}} where packet_path carries the VM tier's cumulative
 * counters (packets_bytecode, packets_fallback, per-reason "fallback.*",
 * compiles, recompiles) and is empty without vm_fast_path. */
H4_API int h4_diagnostics_json(h4_instance* inst, char* buf, size_t cap,
                               size_t* required);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* HYPER4_HYPER4_H_ */
