// §7.1 / Figure 9: partial virtualization analysis.
//
// Decomposes each emulated program's measured per-packet match stages into
// the persona's functional blocks and projects the per-packet cost of the
// four virtualization mixes of Figure 9:
//   (a) full virtualization           : all blocks
//   (b) virtual parser + direct MA    : parse-emulation blocks + native MA
//   (c) direct parser + virtual MA    : match-action blocks (+ deparse)
//   (d) fully direct (native)         : the native program
#include <cstdio>

#include "bench/common.h"
#include "hp4/persona.h"

using namespace hyper4;

namespace {

struct Blocks {
  std::size_t parse = 0;    // setup_a, setup_b, vparse (+ resubmit passes)
  std::size_t ma = 0;       // stage matches + primitive slots + vnet
  std::size_t deparse = 0;  // egress checksum + write-back
  std::size_t total() const { return parse + ma + deparse; }
};

Blocks decompose(const bm::ProcessResult& res) {
  Blocks b;
  for (const auto& a : res.applied) {
    if (a.table == hp4::tbl_setup_a() || a.table == hp4::tbl_setup_b() ||
        a.table == hp4::tbl_vparse()) {
      ++b.parse;
    } else if (a.table.rfind("tbl_eg_", 0) == 0) {
      ++b.deparse;
    } else {
      ++b.ma;
    }
  }
  return b;
}

}  // namespace

int main() {
  std::puts("=== Figure 9: projected match stages per virtualization mix ===");
  std::printf("%-10s | %7s | %11s | %11s | %9s | %28s\n", "program", "native",
              "(a) full", "(b) v-parse", "(c) v-MA",
              "blocks (parse / MA / deparse)");
  std::puts("-----------+---------+-------------+-------------+-----------+"
            "-----------------------------");
  for (const auto& app : bench::function_names()) {
    bench::Harness h(app);
    const auto pkt = bench::worst_case_packet(app);
    const std::size_t native = h.native->inject(1, pkt).match_count();
    const auto res = h.ctl->dataplane().inject(1, pkt);
    const Blocks blk = decompose(res);
    // (b): keep the emulated parse and deparse (the flexible part), run the
    // target's own match-action stages directly.
    const std::size_t mix_b = blk.parse + native + blk.deparse;
    // (c): a direct parser feeds the virtual match-action pipeline; the
    // write-back/deparse emulation is still needed to serialize changes.
    const std::size_t mix_c = blk.ma + blk.deparse;
    std::printf("%-10s | %7zu | %11zu | %11zu | %9zu | %9zu / %3zu / %zu\n",
                app.c_str(), native, blk.total(), mix_b, mix_c, blk.parse,
                blk.ma, blk.deparse);
  }
  std::puts("\nReading: mix (b) keeps runtime-reconfigurable parsing at a");
  std::puts("small overhead over native; mix (c) keeps reprogrammable");
  std::puts("behaviour while shedding the parse emulation — the middle");
  std::puts("options the paper proposes for resource-constrained targets.");
  return 0;
}
