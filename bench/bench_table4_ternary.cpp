// Table 4: ternary match usage in HyPer4 for packets incurring the most
// complex processing: total bits offered (including wildcards), bits
// actively compared (mask popcount), and the number of ternary matches.
#include <cstdio>

#include "bench/common.h"

namespace {

struct PaperRow {
  int total, active, matches;
};
PaperRow paper(const std::string& name) {
  if (name == "l2_sw") return {808, 56, 2};
  if (name == "router") return {1224, 80, 4};
  if (name == "arp_proxy") return {1848, 66, 5};
  return {1928, 59, 6};  // firewall
}

}  // namespace

int main() {
  using namespace hyper4;
  std::puts("=== Table 4: ternary match usage in HyPer4 (worst-case packet) ===");
  std::printf("%-10s | %11s | %12s | %15s | %26s\n", "program", "total bits",
              "active bits", "ternary matches", "paper (total/active/cnt)");
  std::puts("-----------+-------------+--------------+-----------------+---------------------------");
  for (const auto& name : bench::function_names()) {
    bench::Harness h(name);
    const auto res =
        h.ctl->dataplane().inject(1, bench::worst_case_packet(name));
    const auto p = paper(name);
    std::printf("%-10s | %11zu | %12zu | %15zu | %10d / %4d / %d\n",
                name.c_str(), res.ternary_bits_total(),
                res.ternary_bits_active(), res.ternary_match_count(), p.total,
                p.active, p.matches);
  }
  std::puts("\nOur persona keys every stage table on [program, validity,");
  std::puts("extracted(800b)] ternary triples and also prices setup/vparse/");
  std::puts("vnet lookups, so absolute totals exceed the paper's; the ordering");
  std::puts("(l2_sw lightest, multi-stage programs heaviest) is preserved and");
  std::puts("active bits stay small relative to totals, the paper's TCAM-");
  std::puts("pressure point (§6.3).");
  return 0;
}
