// Engine throughput bench: single-thread vs N flow-sharded workers on the
// L2-switch workload, written to BENCH_engine.json.
//
// Two throughput figures are reported per worker count:
//
//   wall_pps   packets / wall-clock seconds for the whole run. Honest but
//              hardware-bound: on a single-core container (this repo's CI
//              box has nproc=1) threads time-slice and wall_pps cannot
//              exceed the 1-worker figure.
//
//   model_pps  packets / max per-worker busy time, where busy time is the
//              wall time each worker spent inside Switch::inject(). This
//              is the bottleneck-makespan measure — the same methodology
//              sim::run_iperf uses (goodput / bottleneck switch busy time)
//              for the paper's §6.4 bandwidth numbers — and is what
//              wall-clock converges to given one core per worker. The
//              scaling acceptance figure (>= 2x at 4 workers) is evaluated
//              on model_pps.
//
// The bench also asserts the workers=1 engine path is byte-identical to
// direct bm::Switch::inject() on the same workload before timing anything.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "check/trace_diff.h"
#include "engine/engine.h"
#include "net/headers.h"

namespace hyper4::bench {
namespace {

using engine::EngineOptions;
using engine::InjectItem;
using engine::TrafficEngine;

std::vector<InjectItem> l2_workload(std::size_t flows, std::size_t per_flow) {
  std::vector<InjectItem> items;
  items.reserve(flows * per_flow);
  for (std::size_t k = 0; k < per_flow; ++k) {
    for (std::size_t f = 0; f < flows; ++f) {
      net::EthHeader eth;
      eth.src = net::mac_from_string(kMacH1);
      eth.dst = net::mac_from_string(f % 2 ? kMacH1 : kMacH2);
      net::Ipv4Header ip;
      ip.src = net::ipv4_from_string("10.1.0.1") + static_cast<uint32_t>(f);
      ip.dst = net::ipv4_from_string("10.2.0.1") + static_cast<uint32_t>(f);
      ip.protocol = net::kIpProtoTcp;
      net::TcpHeader tcp;
      tcp.src_port = static_cast<std::uint16_t>(10000 + f);
      tcp.dst_port = 5001;
      tcp.seq = static_cast<std::uint32_t>(k);
      items.push_back({static_cast<std::uint16_t>(f % 2 ? 2 : 1),
                       net::make_ipv4_tcp(eth, ip, tcp, 64)});
    }
  }
  return items;
}

struct Run {
  std::size_t workers = 0;
  std::size_t packets = 0;
  double wall_s = 0;
  double bottleneck_busy_s = 0;
  double wall_pps = 0;
  double model_pps = 0;
};

Run run_engine(const bm::Switch& configured, std::size_t workers,
               const std::vector<InjectItem>& items, bool profile = false) {
  EngineOptions opts;
  opts.workers = workers;
  opts.queue_capacity = 4096;
  opts.batch_size = 64;
  opts.collect_results = false;  // pure throughput: no result accumulation
  opts.profile = profile;
  TrafficEngine eng(apps::program_by_name("l2_sw"), opts);
  eng.sync_from(configured);

  const auto t0 = std::chrono::steady_clock::now();
  eng.inject_batch(items);
  const engine::MergedResult m = eng.drain();
  const auto t1 = std::chrono::steady_clock::now();

  Run r;
  r.workers = workers;
  r.packets = m.packets;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.bottleneck_busy_s = eng.max_busy_seconds();
  r.wall_pps = r.wall_s > 0 ? static_cast<double>(r.packets) / r.wall_s : 0;
  r.model_pps = r.bottleneck_busy_s > 0
                    ? static_cast<double>(r.packets) / r.bottleneck_busy_s
                    : 0;
  return r;
}

// Full structural trace comparison (ports, final packet bytes, applied
// tables, drop/resubmit counters, digests) via the check library's differ;
// on mismatch the first divergence is printed and the bench fails.
bool check_equivalence(const bm::Switch& configured,
                       const std::vector<InjectItem>& items) {
  bm::Switch ref(apps::program_by_name("l2_sw"));
  ref.sync_state_from(configured);

  EngineOptions opts;
  opts.workers = 1;
  TrafficEngine eng(apps::program_by_name("l2_sw"), opts);
  eng.sync_from(configured);
  eng.inject_batch(items);
  const engine::MergedResult m = eng.drain();
  if (m.per_packet.size() != items.size()) {
    std::printf("EQUIVALENCE FAILURE: %zu packets injected, %zu drained\n",
                items.size(), m.per_packet.size());
    return false;
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    const bm::ProcessResult direct = ref.inject(items[i].port, items[i].packet);
    if (auto d = check::diff_results(direct, m.per_packet[i], i)) {
      d->lhs = "direct";
      d->rhs = "engine";
      std::printf("EQUIVALENCE FAILURE: %s\n", d->str().c_str());
      return false;
    }
  }
  return true;
}

int main_impl() {
  // The L2-switch workload: demo rules, 256 flows x 64 packets.
  bm::Switch configured(apps::program_by_name("l2_sw"));
  for (const auto& r : demo_rules("l2_sw")) apps::apply_rule(configured, r);
  const auto items = l2_workload(256, 64);

  std::printf("engine throughput — l2_switch, %zu packets, %u flows\n\n",
              items.size(), 256u);

  const bool equiv = check_equivalence(configured, items);
  std::printf("workers=1 vs direct inject: %s\n\n",
              equiv ? "byte-identical" : "DIVERGED");

  std::vector<Run> runs;
  for (std::size_t workers : {1, 2, 4, 8})
    runs.push_back(run_engine(configured, workers, items));

  const double base_model = runs[0].model_pps;
  const double base_wall = runs[0].wall_pps;
  std::printf("%8s %10s %12s %12s %10s %10s\n", "workers", "packets",
              "wall_pps", "model_pps", "x(wall)", "x(model)");
  for (const auto& r : runs) {
    std::printf("%8zu %10zu %12.0f %12.0f %10.2f %10.2f\n", r.workers,
                r.packets, r.wall_pps, r.model_pps,
                base_wall > 0 ? r.wall_pps / base_wall : 0,
                base_model > 0 ? r.model_pps / base_model : 0);
  }
  std::printf(
      "\nmodel_pps = packets / bottleneck-worker busy time (the iperf\n"
      "methodology from sim::run_iperf); wall_pps is bounded by the\n"
      "machine's core count.\n");

  // Tracing overhead: the same single-worker run with per-stage profiling
  // enabled (per-worker obs::PipelineTracer, two clock reads per stage per
  // packet, no event ring). The plain runs above use no tracer at all —
  // the hot path pays one null check per hook — so `runs` doubles as the
  // tracing-disabled baseline.
  const Run profiled = run_engine(configured, 1, items, /*profile=*/true);
  const double overhead_ratio =
      base_model > 0 ? profiled.model_pps / base_model : 0;
  std::printf(
      "\ntracing overhead (workers=1): plain %.0f pps, profiled %.0f pps "
      "(%.2fx)\n",
      base_model, profiled.model_pps, overhead_ratio);

  std::ofstream json("BENCH_engine.json");
  json << "{\n  \"workload\": \"l2_switch\",\n  \"packets\": " << items.size()
       << ",\n  \"flows\": 256,\n  \"workers1_equivalent_to_direct_inject\": "
       << (equiv ? "true" : "false") << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    json << "    {\"workers\": " << r.workers << ", \"packets\": " << r.packets
         << ", \"wall_s\": " << r.wall_s
         << ", \"bottleneck_busy_s\": " << r.bottleneck_busy_s
         << ", \"wall_pps\": " << r.wall_pps
         << ", \"model_pps\": " << r.model_pps << ", \"speedup_model_vs_1\": "
         << (base_model > 0 ? r.model_pps / base_model : 0) << "}"
         << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  // wall_pps non-regression floors, relative to the 1-worker model figure:
  // wall-clock includes queue handoff and thread scheduling, so it is never
  // the full model_pps, but a collapse below these ratios means the engine
  // is burning its budget outside Switch::inject (queue contention, merge
  // overhead). The 4-worker floor is laxer because on a small container the
  // workers time-slice a shared core.
  const double wall1_floor = 0.5, wall4_floor = 0.25;
  const Run& four = runs[2];
  const bool wall1_ok =
      base_model <= 0 || runs[0].wall_pps >= wall1_floor * base_model;
  const bool wall4_ok =
      base_model <= 0 || four.wall_pps >= wall4_floor * base_model;

  json << "  ],\n  \"profiled_workers1_model_pps\": " << profiled.model_pps
       << ",\n  \"profiled_over_plain_model\": " << overhead_ratio
       << ",\n  \"floors\": {\"wall1_over_model1_min\": " << wall1_floor
       << ", \"wall4_over_model1_min\": " << wall4_floor
       << ", \"wall1_over_model1\": "
       << (base_model > 0 ? runs[0].wall_pps / base_model : 0)
       << ", \"wall4_over_model1\": "
       << (base_model > 0 ? four.wall_pps / base_model : 0)
       << ", \"wall1_ok\": " << (wall1_ok ? "true" : "false")
       << ", \"wall4_ok\": " << (wall4_ok ? "true" : "false") << "}\n}\n";
  std::printf("\nwrote BENCH_engine.json\n");

  if (!equiv) {
    std::printf("FAIL: workers=1 diverged from direct inject\n");
    return 1;
  }
  if (base_model > 0 && four.model_pps / base_model < 2.0) {
    std::printf("FAIL: model speedup at 4 workers < 2x\n");
    return 1;
  }
  if (!wall1_ok) {
    std::printf("FAIL: wall_pps[1w] < %.2fx of model_pps[1w]\n", wall1_floor);
    return 1;
  }
  if (!wall4_ok) {
    std::printf("FAIL: wall_pps[4w] < %.2fx of model_pps[1w]\n", wall4_floor);
    return 1;
  }
  // Profiling reads the clock twice per stage; even so it must keep at
  // least a quarter of the untraced throughput, else the observability
  // layer has grown a real hot-path cost.
  if (base_model > 0 && overhead_ratio < 0.25) {
    std::printf("FAIL: profiled throughput < 0.25x of untraced\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hyper4::bench

int main() { return hyper4::bench::main_impl(); }
