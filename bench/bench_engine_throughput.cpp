// Engine throughput bench: single-thread vs N flow-sharded workers on the
// L2-switch workload, written to BENCH_engine.json.
//
// Two throughput figures are reported per worker count:
//
//   wall_pps   packets / wall-clock seconds for the whole run (best of
//              --reps repetitions). With the sharded SPSC-ring data path
//              this is the headline figure: on a machine with >= 4 cores
//              the 4-worker wall_pps must reach 2x the 1-worker wall_pps
//              (the wall-clock scaling gate). On a smaller container the
//              gate deactivates with a printed notice — wall-clock cannot
//              scale past the core count — and model_pps carries the
//              scaling assertion alone.
//
//   model_pps  packets / max per-worker busy time, where busy time is the
//              per-thread CPU time each worker spent inside
//              Switch::inject(). This is the bottleneck-makespan measure —
//              the same methodology sim::run_iperf uses (goodput /
//              bottleneck switch busy time) for the paper's §6.4 bandwidth
//              numbers — and is what wall-clock converges to given one
//              core per worker.
//
// Every run also emits serial-fraction evidence into BENCH_engine.json:
// per-worker busy seconds, producer/consumer ring waits, fallback-queue
// wakeups, merge-stall and drain-wait nanoseconds, and arena fresh-alloc
// counts — the numbers that say *where* a scaling shortfall comes from.
//
// The bench asserts the workers=1 engine path is byte-identical to direct
// bm::Switch::inject() on the same workload before timing anything.
//
// Usage: bench_engine_throughput [--workers 1,2,4,8] [--reps 3]
//                                [--profile-json <path>]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "check/trace_diff.h"
#include "engine/engine.h"
#include "net/headers.h"

namespace hyper4::bench {
namespace {

using engine::EngineOptions;
using engine::InjectItem;
using engine::TrafficEngine;

std::vector<InjectItem> l2_workload(std::size_t flows, std::size_t per_flow) {
  std::vector<InjectItem> items;
  items.reserve(flows * per_flow);
  for (std::size_t k = 0; k < per_flow; ++k) {
    for (std::size_t f = 0; f < flows; ++f) {
      net::EthHeader eth;
      eth.src = net::mac_from_string(kMacH1);
      eth.dst = net::mac_from_string(f % 2 ? kMacH1 : kMacH2);
      net::Ipv4Header ip;
      ip.src = net::ipv4_from_string("10.1.0.1") + static_cast<uint32_t>(f);
      ip.dst = net::ipv4_from_string("10.2.0.1") + static_cast<uint32_t>(f);
      ip.protocol = net::kIpProtoTcp;
      net::TcpHeader tcp;
      tcp.src_port = static_cast<std::uint16_t>(10000 + f);
      tcp.dst_port = 5001;
      tcp.seq = static_cast<std::uint32_t>(k);
      items.push_back({static_cast<std::uint16_t>(f % 2 ? 2 : 1),
                       net::make_ipv4_tcp(eth, ip, tcp, 64)});
    }
  }
  return items;
}

struct Run {
  std::size_t workers = 0;
  std::size_t packets = 0;
  double wall_s = 0;
  double bottleneck_busy_s = 0;
  double wall_pps = 0;
  double model_pps = 0;
  std::vector<double> busy_s;  // per worker, from the best repetition
  // Serial-fraction evidence (cumulative over the best repetition).
  std::uint64_t backpressure_waits = 0;
  std::uint64_t consumer_waits = 0;
  std::uint64_t queue_producer_wakeups = 0;
  std::uint64_t queue_consumer_wakeups = 0;
  std::uint64_t merge_stall_ns = 0;
  std::uint64_t drain_wait_ns = 0;
  std::uint64_t arena_fresh_allocs = 0;
};

Run run_engine_once(const bm::Switch& configured, std::size_t workers,
                    const std::vector<InjectItem>& items, bool profile,
                    const std::string& profile_json) {
  EngineOptions opts;
  opts.workers = workers;
  opts.queue_capacity = 4096;
  opts.batch_size = 64;
  opts.collect_results = false;  // pure throughput: no result accumulation
  opts.profile = profile;
  opts.pin_workers = true;  // one core per worker when the machine has them
  TrafficEngine eng(apps::program_by_name("l2_sw"), opts);
  eng.sync_from(configured);

  // Warm-up wave: grow arena buffers and fault in the replicas, so the
  // timed wave measures the steady state the allocation gate defends.
  eng.inject_batch(items);
  (void)eng.drain();
  eng.reset_busy();

  const auto t0 = std::chrono::steady_clock::now();
  eng.inject_batch(items);
  const engine::MergedResult m = eng.drain();
  const auto t1 = std::chrono::steady_clock::now();

  Run r;
  r.workers = workers;
  r.packets = m.packets;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.bottleneck_busy_s = eng.max_busy_seconds();
  r.wall_pps = r.wall_s > 0 ? static_cast<double>(r.packets) / r.wall_s : 0;
  r.model_pps = r.bottleneck_busy_s > 0
                    ? static_cast<double>(r.packets) / r.bottleneck_busy_s
                    : 0;
  for (std::size_t i = 0; i < workers; ++i)
    r.busy_s.push_back(eng.busy_seconds(i));
  auto& mx = eng.metrics();
  r.backpressure_waits = mx.counter("backpressure_waits").value();
  r.consumer_waits = mx.counter("consumer_waits").value();
  r.queue_producer_wakeups = mx.counter("queue_producer_wakeups").value();
  r.queue_consumer_wakeups = mx.counter("queue_consumer_wakeups").value();
  r.merge_stall_ns = mx.counter("merge_stall_ns").value();
  r.drain_wait_ns = mx.counter("drain_wait_ns").value();
  r.arena_fresh_allocs = mx.counter("arena_fresh_allocs").value();

  if (profile && !profile_json.empty()) {
    eng.export_profile();
    std::ofstream out(profile_json);
    out << eng.metrics().to_json() << "\n";
    std::printf("wrote %s\n", profile_json.c_str());
  }
  return r;
}

// Best-of-`reps` by wall time (each repetition is a fresh engine).
Run run_engine(const bm::Switch& configured, std::size_t workers,
               const std::vector<InjectItem>& items, int reps,
               bool profile = false, const std::string& profile_json = "") {
  Run best;
  for (int i = 0; i < reps; ++i) {
    // Only the last repetition writes the profile artifact (any would do;
    // the last keeps the code simple and the file consistent with `best`
    // often enough).
    const bool write_json = profile && i == reps - 1;
    Run r = run_engine_once(configured, workers, items, profile,
                            write_json ? profile_json : "");
    if (best.workers == 0 || r.wall_s < best.wall_s) best = std::move(r);
  }
  return best;
}

// Full structural trace comparison (ports, final packet bytes, applied
// tables, drop/resubmit counters, digests) via the check library's differ;
// on mismatch the first divergence is printed and the bench fails.
bool check_equivalence(const bm::Switch& configured,
                       const std::vector<InjectItem>& items) {
  bm::Switch ref(apps::program_by_name("l2_sw"));
  ref.sync_state_from(configured);

  EngineOptions opts;
  opts.workers = 1;
  TrafficEngine eng(apps::program_by_name("l2_sw"), opts);
  eng.sync_from(configured);
  eng.inject_batch(items);
  const engine::MergedResult m = eng.drain();
  if (m.per_packet.size() != items.size()) {
    std::printf("EQUIVALENCE FAILURE: %zu packets injected, %zu drained\n",
                items.size(), m.per_packet.size());
    return false;
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    const bm::ProcessResult direct = ref.inject(items[i].port, items[i].packet);
    if (auto d = check::diff_results(direct, m.per_packet[i], i)) {
      d->lhs = "direct";
      d->rhs = "engine";
      std::printf("EQUIVALENCE FAILURE: %s\n", d->str().c_str());
      return false;
    }
  }
  return true;
}

std::vector<std::size_t> parse_workers(const std::string& csv) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const long v = std::strtol(tok.c_str(), nullptr, 10);
    if (v > 0) out.push_back(static_cast<std::size_t>(v));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

void emit_run_json(std::ofstream& json, const Run& r, double base_model,
                   double base_wall, bool last) {
  json << "    {\"workers\": " << r.workers << ", \"packets\": " << r.packets
       << ", \"wall_s\": " << r.wall_s
       << ", \"bottleneck_busy_s\": " << r.bottleneck_busy_s
       << ", \"wall_pps\": " << r.wall_pps << ", \"model_pps\": " << r.model_pps
       << ", \"speedup_model_vs_1\": "
       << (base_model > 0 ? r.model_pps / base_model : 0)
       << ", \"speedup_wall_vs_1\": "
       << (base_wall > 0 ? r.wall_pps / base_wall : 0)
       << ",\n     \"busy_s\": [";
  for (std::size_t i = 0; i < r.busy_s.size(); ++i)
    json << (i ? ", " : "") << r.busy_s[i];
  json << "],\n     \"backpressure_waits\": " << r.backpressure_waits
       << ", \"consumer_waits\": " << r.consumer_waits
       << ", \"queue_producer_wakeups\": " << r.queue_producer_wakeups
       << ", \"queue_consumer_wakeups\": " << r.queue_consumer_wakeups
       << ",\n     \"merge_stall_ns\": " << r.merge_stall_ns
       << ", \"drain_wait_ns\": " << r.drain_wait_ns
       << ", \"arena_fresh_allocs\": " << r.arena_fresh_allocs << "}"
       << (last ? "" : ",") << "\n";
}

int main_impl(int argc, char** argv) {
  std::vector<std::size_t> worker_counts = {1, 2, 4, 8};
  int reps = 3;
  std::string profile_json;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--workers" && i + 1 < argc) {
      worker_counts = parse_workers(argv[++i]);
    } else if (a == "--reps" && i + 1 < argc) {
      reps = std::max(1, static_cast<int>(std::strtol(argv[++i], nullptr, 10)));
    } else if (a == "--profile-json" && i + 1 < argc) {
      profile_json = argv[++i];
    } else {
      std::printf(
          "usage: %s [--workers 1,2,4,8] [--reps N] [--profile-json path]\n",
          argv[0]);
      return 2;
    }
  }
  if (worker_counts.empty()) worker_counts = {1, 2, 4, 8};

  // The L2-switch workload: demo rules, 256 flows x 64 packets.
  bm::Switch configured(apps::program_by_name("l2_sw"));
  for (const auto& r : demo_rules("l2_sw")) apps::apply_rule(configured, r);
  const auto items = l2_workload(256, 64);
  const unsigned nproc = std::thread::hardware_concurrency();

  std::printf(
      "engine throughput — l2_switch, %zu packets, %u flows, nproc=%u, "
      "reps=%d\n\n",
      items.size(), 256u, nproc, reps);

  const bool equiv = check_equivalence(configured, items);
  std::printf("workers=1 vs direct inject: %s\n\n",
              equiv ? "byte-identical" : "DIVERGED");

  std::vector<Run> runs;
  for (std::size_t workers : worker_counts)
    runs.push_back(run_engine(configured, workers, items, reps));

  const Run* one = nullptr;
  const Run* four = nullptr;
  for (const auto& r : runs) {
    if (r.workers == 1) one = &r;
    if (r.workers == 4) four = &r;
  }
  const double base_model = one ? one->model_pps : 0;
  const double base_wall = one ? one->wall_pps : 0;

  std::printf("%8s %10s %12s %12s %10s %10s\n", "workers", "packets",
              "wall_pps", "model_pps", "x(wall)", "x(model)");
  for (const auto& r : runs) {
    std::printf("%8zu %10zu %12.0f %12.0f %10.2f %10.2f\n", r.workers,
                r.packets, r.wall_pps, r.model_pps,
                base_wall > 0 ? r.wall_pps / base_wall : 0,
                base_model > 0 ? r.model_pps / base_model : 0);
  }
  std::printf(
      "\nmodel_pps = packets / bottleneck-worker busy time (the iperf\n"
      "methodology from sim::run_iperf); wall_pps is bounded by the\n"
      "machine's core count.\n");

  // Tracing overhead: the same single-worker run with per-stage profiling
  // enabled (per-worker obs::PipelineTracer, two clock reads per stage per
  // packet, no event ring). The plain runs above use no tracer at all —
  // the hot path pays one null check per hook — so `runs` doubles as the
  // tracing-disabled baseline.
  const Run profiled =
      run_engine(configured, 1, items, reps, /*profile=*/true, profile_json);
  const double overhead_ratio =
      base_model > 0 ? profiled.model_pps / base_model : 0;
  std::printf(
      "\ntracing overhead (workers=1): plain %.0f pps, profiled %.0f pps "
      "(%.2fx)\n",
      base_model, profiled.model_pps, overhead_ratio);

  // --- gates ---------------------------------------------------------------
  // Wall-clock scaling: the tentpole claim. Active only when the machine
  // has cores for 4 workers AND both 1- and 4-worker runs happened.
  const double wall_scaling_min = 2.0;
  const bool wall_scaling_active = nproc >= 4 && one && four;
  const double wall_scaling =
      (four && base_wall > 0) ? four->wall_pps / base_wall : 0;
  bool wall_scaling_ok = true;
  if (wall_scaling_active) {
    wall_scaling_ok = wall_scaling >= wall_scaling_min;
    std::printf("\nwall scaling gate: wall_pps[4w] = %.2fx wall_pps[1w] "
                "(need >= %.1fx): %s\n",
                wall_scaling, wall_scaling_min,
                wall_scaling_ok ? "ok" : "FAIL");
  } else {
    std::printf(
        "\nwall scaling gate SKIPPED: nproc=%u < 4 or missing 1/4-worker "
        "runs — wall-clock cannot scale past the core count; model_pps "
        "carries the scaling assertion.\n",
        nproc);
  }

  // wall_pps non-regression floors, relative to the 1-worker model figure:
  // wall-clock includes queue handoff and thread scheduling, so it is never
  // the full model_pps, but a collapse below these ratios means the engine
  // is burning its budget outside Switch::inject (queue contention, merge
  // overhead). The 4-worker floor is laxer because on a small container the
  // workers time-slice a shared core.
  const double wall1_floor = 0.5, wall4_floor = 0.25;
  const bool wall1_ok =
      !one || base_model <= 0 || one->wall_pps >= wall1_floor * base_model;
  const bool wall4_ok =
      !four || base_model <= 0 || four->wall_pps >= wall4_floor * base_model;

  std::ofstream json("BENCH_engine.json");
  json << "{\n  \"host\": " << host_block_json(/*pin_workers=*/true)
       << ",\n  \"workload\": \"l2_switch\",\n  \"packets\": " << items.size()
       << ",\n  \"flows\": 256,\n  \"nproc\": " << nproc
       << ",\n  \"reps\": " << reps
       << ",\n  \"workers1_equivalent_to_direct_inject\": "
       << (equiv ? "true" : "false") << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i)
    emit_run_json(json, runs[i], base_model, base_wall, i + 1 == runs.size());
  json << "  ],\n  \"profiled_workers1_model_pps\": " << profiled.model_pps
       << ",\n  \"profiled_over_plain_model\": " << overhead_ratio
       << ",\n  \"wall_scaling\": {\"active\": "
       << (wall_scaling_active ? "true" : "false")
       << ", \"min\": " << wall_scaling_min
       << ", \"wall4_over_wall1\": " << wall_scaling
       << ", \"ok\": " << (wall_scaling_ok ? "true" : "false")
       << "},\n  \"floors\": {\"wall1_over_model1_min\": " << wall1_floor
       << ", \"wall4_over_model1_min\": " << wall4_floor
       << ", \"wall1_over_model1\": "
       << (one && base_model > 0 ? one->wall_pps / base_model : 0)
       << ", \"wall4_over_model1\": "
       << (four && base_model > 0 ? four->wall_pps / base_model : 0)
       << ", \"wall1_ok\": " << (wall1_ok ? "true" : "false")
       << ", \"wall4_ok\": " << (wall4_ok ? "true" : "false") << "}\n}\n";
  std::printf("\nwrote BENCH_engine.json\n");

  if (!equiv) {
    std::printf("FAIL: workers=1 diverged from direct inject\n");
    return 1;
  }
  if (one && four && base_model > 0 && four->model_pps / base_model < 2.0) {
    std::printf("FAIL: model speedup at 4 workers < 2x\n");
    return 1;
  }
  if (!wall_scaling_ok) {
    std::printf("FAIL: wall_pps[4w] < %.1fx wall_pps[1w] with %u cores\n",
                wall_scaling_min, nproc);
    return 1;
  }
  if (!wall1_ok) {
    std::printf("FAIL: wall_pps[1w] < %.2fx of model_pps[1w]\n", wall1_floor);
    return 1;
  }
  if (!wall4_ok) {
    std::printf("FAIL: wall_pps[4w] < %.2fx of model_pps[1w]\n", wall4_floor);
    return 1;
  }
  // Profiling reads the clock twice per stage; even so it must keep at
  // least a quarter of the untraced throughput, else the observability
  // layer has grown a real hot-path cost.
  if (base_model > 0 && overhead_ratio < 0.25) {
    std::printf("FAIL: profiled throughput < 0.25x of untraced\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hyper4::bench

int main(int argc, char** argv) {
  return hyper4::bench::main_impl(argc, argv);
}
