// Table 2: number of persona tables referenced by both programs of each
// pair (diagonal: total tables referenced by the program).
#include <cstdio>
#include <map>

#include "bench/common.h"
#include "hp4/analysis.h"

int main() {
  using namespace hyper4;
  hp4::Hp4Compiler compiler{hp4::PersonaConfig{}};
  std::map<std::string, hp4::Hp4Artifact> arts;
  for (const auto& name : bench::function_names()) {
    arts.emplace(name, compiler.compile(apps::program_by_name(name)));
  }

  std::puts("=== Table 2: persona tables referenced by both programs ===");
  std::printf("%-10s", "");
  for (const auto& name : bench::function_names()) std::printf(" | %9s", name.c_str());
  std::puts("");
  std::puts("-----------+-----------+-----------+-----------+-----------");
  for (std::size_t i = 0; i < bench::function_names().size(); ++i) {
    const auto& a = bench::function_names()[i];
    std::printf("%-10s", a.c_str());
    for (std::size_t j = 0; j < bench::function_names().size(); ++j) {
      const auto& b = bench::function_names()[j];
      if (j < i) {
        std::printf(" | %9s", "");
        continue;
      }
      std::printf(" | %9zu", hp4::shared_table_count(arts.at(a), arts.at(b)));
    }
    std::puts("");
  }
  std::puts("\nPaper diagonal (total referenced): l2_sw 19, arp_proxy 57,");
  std::puts("router 33, firewall 35; most pairs share more tables than not,");
  std::puts("amortizing persona table declarations across programs (§6.2).");

  // The paper's amortization observation, checked on our numbers.
  std::size_t shared_wins = 0, cases = 0;
  for (const auto& a : bench::function_names()) {
    for (const auto& b : bench::function_names()) {
      if (a == b) continue;
      ++cases;
      if (hp4::shared_table_count(arts.at(a), arts.at(b)) >
          hp4::unique_table_count(arts.at(a), arts.at(b)))
        ++shared_wins;
    }
  }
  std::printf("\nour data: %zu of %zu ordered pairs share more tables than "
              "they hold uniquely\n", shared_wins, cases);
  return 0;
}
