// Table 3: number of persona tables referenced *only* by the row program
// within each (row, column) pair.
#include <cstdio>
#include <map>

#include "bench/common.h"
#include "hp4/analysis.h"

int main() {
  using namespace hyper4;
  hp4::Hp4Compiler compiler{hp4::PersonaConfig{}};
  std::map<std::string, hp4::Hp4Artifact> arts;
  for (const auto& name : bench::function_names()) {
    arts.emplace(name, compiler.compile(apps::program_by_name(name)));
  }

  std::puts("=== Table 3: persona tables uniquely referenced by the row program ===");
  std::printf("%-10s", "");
  for (const auto& name : bench::function_names()) std::printf(" | %9s", name.c_str());
  std::puts("");
  std::puts("-----------+-----------+-----------+-----------+-----------");
  for (const auto& a : bench::function_names()) {
    std::printf("%-10s", a.c_str());
    for (const auto& b : bench::function_names()) {
      if (a == b) {
        std::printf(" | %9s", "-");
      } else {
        std::printf(" | %9zu", hp4::unique_table_count(arts.at(a), arts.at(b)));
      }
    }
    std::puts("");
  }
  std::puts("\nPaper: arp_proxy dominates unique references (43/34/27 across");
  std::puts("pairs) because it alone executes a nine-primitive action; the");
  std::puts("same skew should appear in the arp_proxy row above.");
  return 0;
}
