// Fleet-scale scenario bench: multi-tenant NF chains on one persona with
// live control-plane reconfiguration, written to BENCH_fleet.json.
//
// Each cell of a (tenants x chain-depth x reconfig-rate) matrix hosts the
// full tenant fleet (src/scenarios), then times waves of canonical-flow
// traffic through the concurrent engine while the configured reconfig mix
// (per-wave churn transactions and transactional hot-swaps of whole tenant
// chains) lands between inject and drain. Throughput is drained packets per
// second over the timed waves only — fleet setup is excluded.
//
// Correctness gates before any number counts: every wave must deliver every
// tenant's canonical flow (a hot-swap that drops packets is not "fast"),
// and reconfig cells must have advanced the engine epoch by exactly the
// number of transactions issued (no silently skipped or split epochs).
//
// Acceptance floor: every cell must clear its pps floor, including the
// headline 100-tenant x depth-3 cell with hot-swap churn. Floors are set
// ~4-5x below measured dev-container throughput so the gate catches
// order-of-magnitude regressions (an accidental full-fleet resync per
// packet, a lost engine worker), not machine jitter.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "scenarios/fleet.h"

namespace hyper4::bench {
namespace {

struct Cell {
  std::string name;
  std::size_t tenants = 0;
  std::size_t depth = 0;
  std::size_t churn_per_wave = 0;  // churn ops per wave (one tenant)
  bool swap_per_wave = false;      // one hot-swap txn per wave
  double pps_floor = 0;
};

struct CellResult {
  Cell cell;
  std::uint64_t packets = 0;
  std::uint64_t swaps = 0;
  std::size_t churn_ops = 0;
  double seconds = 0;
  double pps = 0;
  bool delivered = true;
  bool epochs_ok = true;
  bool ok = false;
};

constexpr std::size_t kWarmupWaves = 2;
constexpr std::size_t kTimedWaves = 24;
constexpr std::size_t kPacketsPerTenant = 4;

CellResult run_cell(const Cell& cell) {
  CellResult res;
  res.cell = cell;

  scenarios::FleetOptions fo;
  fo.tenants = cell.tenants;
  fo.chain_depth = cell.depth;
  fo.seed = 1;
  scenarios::ScenarioFleet fleet(fo);

  auto wave = [&](std::size_t w) {
    fleet.inject_wave(kPacketsPerTenant);
    std::uint64_t txns = 0;
    if (cell.churn_per_wave > 0) {
      res.churn_ops += fleet.churn_tenant(w % fleet.tenants(),
                                          cell.churn_per_wave);
      ++txns;  // churn_tenant is one transaction = one epoch
    }
    if (cell.swap_per_wave) {
      fleet.hot_swap(w % fleet.tenants());
      ++res.swaps;
      ++txns;
    }
    const scenarios::WaveResult r = fleet.drain_wave();
    if (!r.all_delivered) res.delivered = false;
    res.packets += r.drained;
    return txns;
  };

  for (std::size_t w = 0; w < kWarmupWaves; ++w) wave(w);
  res.packets = 0;
  res.churn_ops = 0;
  res.swaps = 0;

  const std::uint64_t epoch0 = fleet.engine().epoch();
  std::uint64_t txns = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t w = 0; w < kTimedWaves; ++w) txns += wave(kWarmupWaves + w);
  res.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  res.epochs_ok = fleet.engine().epoch() == epoch0 + txns;
  res.pps = res.seconds > 0 ? static_cast<double>(res.packets) / res.seconds
                            : 0;
  res.ok = res.delivered && res.epochs_ok && res.pps >= cell.pps_floor;
  return res;
}

int main_impl() {
  // Floors ~4-5x below dev-container measurements (see header comment).
  const std::vector<Cell> matrix = {
      {"t8_d2_steady", 8, 2, 0, false, 2000},
      {"t8_d2_churn", 8, 2, 8, false, 1000},
      {"t32_d3_churn_swap", 32, 3, 8, true, 800},
      {"t100_d3_steady", 100, 3, 0, false, 900},
      {"t100_d3_churn_swap", 100, 3, 8, true, 500},
  };

  std::printf("fleet bench — tenants x depth x reconfig, pps over %zu timed "
              "waves\n\n",
              kTimedWaves);
  std::printf("%22s %8s %6s %8s %6s %10s %10s %5s\n", "cell", "tenants",
              "depth", "packets", "swaps", "pps", "floor", "ok");

  std::vector<CellResult> results;
  for (const auto& cell : matrix) {
    CellResult r = run_cell(cell);
    std::printf("%22s %8zu %6zu %8llu %6llu %10.0f %10.0f %5s\n",
                r.cell.name.c_str(), r.cell.tenants, r.cell.depth,
                static_cast<unsigned long long>(r.packets),
                static_cast<unsigned long long>(r.swaps), r.pps,
                r.cell.pps_floor, r.ok ? "yes" : "NO");
    results.push_back(std::move(r));
  }

  std::ofstream json("BENCH_fleet.json");
  json << "{\n  \"host\": " << host_block_json()
       << ",\n  \"timed_waves\": " << kTimedWaves
       << ",\n  \"packets_per_tenant_per_wave\": " << kPacketsPerTenant
       << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    json << "    {\"name\": \"" << r.cell.name
         << "\", \"tenants\": " << r.cell.tenants
         << ", \"depth\": " << r.cell.depth
         << ", \"churn_per_wave\": " << r.cell.churn_per_wave
         << ", \"hot_swap_per_wave\": " << (r.cell.swap_per_wave ? "true"
                                                                 : "false")
         << ", \"packets\": " << r.packets << ", \"hot_swaps\": " << r.swaps
         << ", \"churn_ops\": " << r.churn_ops
         << ", \"seconds\": " << r.seconds << ", \"pps\": " << r.pps
         << ", \"pps_floor\": " << r.cell.pps_floor
         << ", \"all_delivered\": " << (r.delivered ? "true" : "false")
         << ", \"epochs_ok\": " << (r.epochs_ok ? "true" : "false")
         << ", \"ok\": " << (r.ok ? "true" : "false") << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nwrote BENCH_fleet.json\n");

  bool all_ok = true;
  for (const auto& r : results) {
    if (r.ok) continue;
    all_ok = false;
    if (!r.delivered)
      std::printf("FAIL: %s dropped tenant flows\n", r.cell.name.c_str());
    else if (!r.epochs_ok)
      std::printf("FAIL: %s epoch count drifted from issued transactions\n",
                  r.cell.name.c_str());
    else
      std::printf("FAIL: %s pps %.0f < %.0f floor\n", r.cell.name.c_str(),
                  r.pps, r.cell.pps_floor);
  }
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace hyper4::bench

int main() { return hyper4::bench::main_impl(); }
