// VM-tier micro-bench: interpreted persona vs compiled bytecode (src/vm),
// per-packet, on the paper's four network functions, written to
// BENCH_vm.json.
//
// For each function the worst-case probe packet runs through the SAME
// persona dataplane twice — once via Switch::inject (the control-graph
// interpreter walking the persona's dispatch ladder) and once via
// vm::VmExecutor::process (the flattened bytecode unit). Before timing, the
// two tiers are checked for observable equality on every warm-up packet and
// the VM must have served everything from bytecode (zero fallbacks): a
// speedup number for a tier that silently fell back to the interpreter
// would be measuring nothing.
//
// Acceptance floor: >= 5x per-packet speedup on each function. The ladder
// walk the interpreter does per packet (guarded parse states, per-stage
// dispatch conditionals, per-slot primitive chains) is exactly what the
// compiler folds away, so the tier must clear a wide margin or it is not
// earning its complexity.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "check/trace_diff.h"
#include "vm/vm.h"

namespace hyper4::bench {
namespace {

struct AppResult {
  std::string name;
  double interp_ns = 0;
  double vm_ns = 0;
  double speedup = 0;
  std::uint64_t vm_fallbacks = 0;
  bool equivalent = true;
  bool ok = false;
};

constexpr double kSpeedupFloor = 5.0;
constexpr std::size_t kVerifyIters = 64;
constexpr std::size_t kWarmupIters = 256;
constexpr std::size_t kTimedIters = 20000;

double time_ns_per_packet(const std::function<void()>& fn, std::size_t iters) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(iters);
}

AppResult run_app(const std::string& name) {
  AppResult res;
  res.name = name;

  Harness h(name);
  bm::Switch& dp = h.ctl->dataplane();
  vm::VmExecutor vm(dp, h.ctl->generator().config());
  const net::Packet pkt = worst_case_packet(name);
  const std::uint16_t port = 1;

  // Equivalence gate: every verification packet must agree observably.
  for (std::size_t i = 0; i < kVerifyIters; ++i) {
    const bm::ProcessResult ip = dp.inject(port, pkt);
    const bm::ProcessResult vp = vm.process(port, pkt);
    if (auto d = check::diff_observable(ip, vp, i)) {
      d->lhs = "persona";
      d->rhs = "vm";
      std::printf("  %s: EQUIVALENCE FAILURE: %s\n", name.c_str(),
                  d->str().c_str());
      res.equivalent = false;
      return res;
    }
  }

  for (std::size_t i = 0; i < kWarmupIters; ++i) {
    dp.inject(port, pkt);
    vm.process(port, pkt);
  }

  res.interp_ns =
      time_ns_per_packet([&] { dp.inject(port, pkt); }, kTimedIters);
  res.vm_ns = time_ns_per_packet([&] { vm.process(port, pkt); }, kTimedIters);
  res.speedup = res.vm_ns > 0 ? res.interp_ns / res.vm_ns : 0;
  res.vm_fallbacks = vm.stats().packets_fallback;
  res.ok = res.equivalent && res.vm_fallbacks == 0 &&
           res.speedup >= kSpeedupFloor;
  return res;
}

int main_impl() {
  std::printf("vm tier — interpreted persona vs compiled bytecode, "
              "per-packet\n\n");
  std::printf("%10s %12s %12s %9s %10s %5s\n", "function", "interp_ns",
              "vm_ns", "speedup", "fallbacks", "ok");

  std::vector<AppResult> results;
  for (const auto& name : function_names()) {
    AppResult r = run_app(name);
    std::printf("%10s %12.0f %12.0f %8.1fx %10llu %5s\n", r.name.c_str(),
                r.interp_ns, r.vm_ns, r.speedup,
                static_cast<unsigned long long>(r.vm_fallbacks),
                r.ok ? "yes" : "NO");
    results.push_back(std::move(r));
  }

  std::ofstream json("BENCH_vm.json");
  json << "{\n  \"host\": " << host_block_json()
       << ",\n  \"speedup_floor\": " << kSpeedupFloor
       << ",\n  \"timed_iters\": " << kTimedIters << ",\n  \"apps\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    json << "    {\"name\": \"" << r.name
         << "\", \"interp_ns_per_packet\": " << r.interp_ns
         << ", \"vm_ns_per_packet\": " << r.vm_ns
         << ", \"speedup\": " << r.speedup
         << ", \"vm_fallbacks\": " << r.vm_fallbacks
         << ", \"equivalent\": " << (r.equivalent ? "true" : "false")
         << ", \"ok\": " << (r.ok ? "true" : "false") << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nwrote BENCH_vm.json\n");

  bool all_ok = true;
  for (const auto& r : results) {
    if (r.ok) continue;
    all_ok = false;
    if (!r.equivalent)
      std::printf("FAIL: %s diverged between tiers\n", r.name.c_str());
    else if (r.vm_fallbacks != 0)
      std::printf("FAIL: %s had %llu vm fallbacks\n", r.name.c_str(),
                  static_cast<unsigned long long>(r.vm_fallbacks));
    else
      std::printf("FAIL: %s speedup %.1fx < %.1fx floor\n", r.name.c_str(),
                  r.speedup, kSpeedupFloor);
  }
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace hyper4::bench

int main() { return hyper4::bench::main_impl(); }
