// §6.5: can HyPer4 run on RMT-like ASIC hardware? PHV footprint and the
// physical-stage expansion of the arp_proxy worst case, measured from the
// actual emulation trace.
#include <cstdio>

#include "bench/common.h"
#include "rmt/rmt.h"

int main() {
  using namespace hyper4;
  const rmt::RmtSpec spec;
  hp4::PersonaGenerator gen{hp4::PersonaConfig{}};
  const auto persona = gen.generate();

  std::puts("=== §6.5: deploying HyPer4 on RMT ===");
  std::printf("RMT: %zu-bit PHV, %zu+%zu stages, %zu-bit SRAM / %zu-bit TCAM "
              "match per stage\n",
              spec.phv_bits, spec.ingress_stages, spec.egress_stages,
              spec.sram_match_bits, spec.tcam_match_bits);
  const std::size_t phv = rmt::phv_bits(persona);
  std::printf("persona PHV footprint: %zu bits (paper: 3312; RMT capacity "
              "%zu) -> %s\n",
              phv, spec.phv_bits, phv <= spec.phv_bits ? "fits" : "DOES NOT FIT");

  // Stage requirements measured from the arp_proxy worst-case trace (the
  // paper's most demanding single program).
  for (const auto& name : bench::function_names()) {
    bench::Harness h(name);
    const auto res =
        h.ctl->dataplane().inject(1, bench::worst_case_packet(name));
    std::vector<rmt::StageRequirement> ingress, egress;
    for (const auto& a : res.applied) {
      rmt::StageRequirement s;
      s.table = a.table;
      s.ternary = a.used_ternary;
      s.match_bits = a.used_ternary ? a.ternary_bits_total : 64;
      const bool is_egress =
          a.table.rfind("tbl_eg_", 0) == 0;  // csum + write-back stages
      (is_egress ? egress : ingress).push_back(s);
    }
    const auto fit = rmt::fit(spec, phv, ingress, egress);
    std::printf(
        "%-10s: %2zu ingress + %zu egress logical -> %2zu + %zu physical "
        "stages; ingress at %3zu%% of RMT capacity -> %s\n",
        name.c_str(), fit.ingress_logical, fit.egress_logical,
        fit.ingress_physical, fit.egress_physical,
        fit.ingress_capacity_pct(spec), fit.fits() ? "fits" : "exceeds");
  }
  std::puts("\nPaper: arp_proxy needs 46 ingress (+2 egress) HyPer4 stages =");
  std::puts("51 physical stages, 60% over RMT's 32-stage ingress pipeline; a");
  std::puts("variant shifting 19 egress stages to ingress could host it. The");
  std::puts("simpler functions fit comfortably — same conclusion here.");
  return 0;
}
