// Fabric scaling bench: aggregate packets-per-second over a replicated
// line fabric at 1, 2 and 4 nodes, written to BENCH_fabric.json.
//
// Each node runs its own switch on its own thread (src/fabric), all nodes
// replicate the same l2 program + rules, and each node gets a dedicated
// injector thread pushing disjoint local traffic (host a -> host b on the
// same node). Aggregate pps = total packets / wall-clock for the whole
// fleet, best of --reps repetitions. Since the nodes share nothing on the
// data path — per-node stores, per-node switches, per-node inboxes — the
// fabric is embarrassingly parallel and wall-clock throughput must scale
// with node count up to the core count:
//
//   wall-clock gate: on a machine with >= 4 cores, 4-node aggregate pps
//   must reach 2x the 1-node figure. Below 4 cores the gate deactivates
//   with a printed notice ("active": false in the JSON) — wall-clock
//   cannot scale past the cores the container has.
//
// Usage: bench_fabric [--packets N] [--waves W] [--reps R]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "fabric/fabric.h"
#include "hp4/p4_emit.h"

namespace hyper4::bench {
namespace {

namespace fs = std::filesystem;
namespace fabric = hyper4::fabric;

struct Run {
  std::size_t nodes = 0;
  std::size_t packets = 0;  // total across the fleet
  double seconds = 0;       // best rep
  double pps = 0;
  double speedup = 0;  // vs the 1-node run
};

double one_rep(std::size_t nodes, std::size_t packets_per_node,
               std::size_t waves, const std::string& store) {
  fs::remove_all(store);
  fabric::FabricOptions fo;
  fo.store_dir = store;
  fo.topology = fabric::FabricTopology::line(nodes);
  fabric::FabricController ctl(fo);

  const auto vdev =
      ctl.load_source("l2_sw", hp4::emit_p4(apps::program_by_name("l2_sw")));
  ctl.attach_ports(vdev, {1, 2});
  ctl.bind(vdev, 1);
  ctl.bind(vdev, 2);
  ctl.add_rule(vdev, vr(apps::l2_forward(kMacH1, 1)));
  ctl.add_rule(vdev, vr(apps::l2_forward(kMacH2, 2)));

  const net::Packet pkt = worst_case_packet("l2_sw");

  // Warm every node's persona before timing.
  for (std::size_t i = 0; i < nodes; ++i)
    ctl.inject_at(i, 1, pkt);
  ctl.drain();
  ctl.take_deliveries();

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> injectors;
  injectors.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    injectors.emplace_back([&, i] {
      for (std::size_t w = 0; w < waves; ++w)
        for (std::size_t k = 0; k < packets_per_node; ++k)
          ctl.inject_at(i, 1, pkt);
    });
  }
  for (auto& t : injectors) t.join();
  ctl.drain();
  const double s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  fs::remove_all(store);
  return s;
}

int main_impl(int argc, char** argv) {
  std::size_t packets = 2000;
  std::size_t waves = 4;
  std::size_t reps = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--packets" && i + 1 < argc) packets = std::strtoull(argv[++i], nullptr, 0);
    else if (a == "--waves" && i + 1 < argc) waves = std::strtoull(argv[++i], nullptr, 0);
    else if (a == "--reps" && i + 1 < argc) reps = std::strtoull(argv[++i], nullptr, 0);
    else {
      std::fprintf(stderr, "usage: bench_fabric [--packets N] [--waves W] "
                           "[--reps R]\n");
      return 1;
    }
  }

  const unsigned nproc = std::thread::hardware_concurrency();
  const std::string store =
      (fs::temp_directory_path() / "hp4_bench_fabric").string();

  std::printf("fabric bench — line fabric, %zu pkts x %zu waves per node, "
              "best of %zu (nproc %u)\n\n",
              packets, waves, reps, nproc);
  std::printf("%6s %10s %10s %12s %9s\n", "nodes", "packets", "seconds",
              "agg_pps", "speedup");

  std::vector<Run> runs;
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    Run r;
    r.nodes = n;
    r.packets = n * packets * waves;
    double best = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const double s = one_rep(n, packets, waves, store);
      if (best == 0 || s < best) best = s;
    }
    r.seconds = best;
    r.pps = best > 0 ? static_cast<double>(r.packets) / best : 0;
    r.speedup = runs.empty() || runs.front().pps <= 0
                    ? 1.0
                    : r.pps / runs.front().pps;
    std::printf("%6zu %10zu %10.3f %12.0f %8.2fx\n", r.nodes, r.packets,
                r.seconds, r.pps, r.speedup);
    runs.push_back(r);
  }

  // The wall-clock scaling gate (see header comment).
  const bool gate_active = nproc >= 4;
  const double floor = 2.0;
  const double speedup4 = runs.back().speedup;
  const bool gate_ok = !gate_active || speedup4 >= floor;

  std::ofstream json("BENCH_fabric.json");
  json << "{\n  \"host\": " << host_block_json()
       << ",\n  \"topology\": \"line\",\n  \"packets_per_node\": "
       << packets * waves << ",\n  \"reps\": " << reps << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    json << "    {\"nodes\": " << r.nodes << ", \"packets\": " << r.packets
         << ", \"seconds\": " << r.seconds << ", \"agg_pps\": " << r.pps
         << ", \"speedup_vs_1\": " << r.speedup << "}"
         << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"wall_scaling\": {\"active\": "
       << (gate_active ? "true" : "false") << ", \"floor\": " << floor
       << ", \"speedup_4node\": " << speedup4
       << ", \"ok\": " << (gate_ok ? "true" : "false") << "}\n}\n";
  std::printf("\nwrote BENCH_fabric.json\n");

  if (!gate_active) {
    std::printf("NOTICE: wall-clock scaling gate skipped — %u core(s) < 4, "
                "a fleet cannot scale past the machine\n",
                nproc);
    return 0;
  }
  if (!gate_ok) {
    std::printf("FAIL: 4-node aggregate pps only %.2fx the single-node "
                "figure (floor %.1fx)\n",
                speedup4, floor);
    return 1;
  }
  std::printf("wall-clock scaling gate: 4-node %.2fx >= %.1fx floor\n",
              speedup4, floor);
  return 0;
}

}  // namespace
}  // namespace hyper4::bench

int main(int argc, char** argv) {
  return hyper4::bench::main_impl(argc, argv);
}
