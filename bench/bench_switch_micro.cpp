// Microbenchmarks (google-benchmark): raw behavioral-model throughput for
// native programs vs. HyPer4 emulation. Not a paper table — these quantify
// the *interpreter's* cost so the simulated Table 5 numbers can be
// distinguished from host overheads.
#include <benchmark/benchmark.h>

#include "bench/common.h"

namespace {

using namespace hyper4;

void BM_NativeSwitch(benchmark::State& state,
                     const std::string& name) {
  bench::Harness h(name);
  const auto pkt = bench::worst_case_packet(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.native->inject(1, pkt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_Hyper4Switch(benchmark::State& state,
                     const std::string& name) {
  bench::Harness h(name);
  const auto pkt = bench::worst_case_packet(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.ctl->dataplane().inject(1, pkt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_PersonaLoad(benchmark::State& state) {
  for (auto _ : state) {
    hp4::Controller ctl;
    auto id = ctl.load("fw", apps::firewall());
    benchmark::DoNotOptimize(id);
  }
}

void BM_CompileArtifact(benchmark::State& state) {
  hp4::Hp4Compiler compiler{hp4::PersonaConfig{}};
  const auto prog = apps::arp_proxy();
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler.compile(prog));
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& name : bench::function_names()) {
    benchmark::RegisterBenchmark(("BM_Native/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   BM_NativeSwitch(s, name);
                                 });
    benchmark::RegisterBenchmark(("BM_Hyper4/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   BM_Hyper4Switch(s, name);
                                 });
  }
  benchmark::RegisterBenchmark("BM_PersonaLoad", BM_PersonaLoad);
  benchmark::RegisterBenchmark("BM_CompileArtifact", BM_CompileArtifact);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
