// §6.2 space accounting: per-entry storage for the wide ternary matches,
// persona action census, and the test-configuration table count.
#include <cstdio>

#include "hp4/analysis.h"
#include "hp4/persona.h"

int main() {
  using namespace hyper4;
  hp4::PersonaConfig cfg;  // the paper's test configuration (4 stages, 9 prims)
  hp4::PersonaGenerator gen{cfg};
  const auto prog = gen.generate();

  std::puts("=== §6.2: space requirements ===");
  std::printf("extracted-data match entry : %zu bits "
              "(paper: >= 1600 value+mask, +program id)\n",
              hp4::extracted_entry_bits(cfg));
  std::printf("emulated-metadata entry    : %zu bits "
              "(paper: >= 512 value+mask, +program id)\n",
              hp4::meta_entry_bits(cfg));
  std::printf("tables declared            : %zu (paper: 346)\n",
              prog.tables.size());
  std::printf("actions declared           : %zu (paper: 130, of which 80\n",
              prog.actions.size());
  std::puts("                             resize the parsed representation;");

  std::size_t wb = 0, concat = 0, mod = 0;
  for (const auto& a : prog.actions) {
    if (a.name.rfind("a_wb_", 0) == 0) ++wb;
    if (a.name.rfind("a_concat_", 0) == 0) ++concat;
    if (a.name.rfind("a_mod_", 0) == 0) ++mod;
  }
  std::printf("                             ours: %zu write-back + %zu concat\n",
              wb, concat);
  std::printf("                             at %zu-byte granularity, %zu\n",
              cfg.writeback_step_bytes, mod);
  std::puts("                             modify_field variants)");

  // Maximum actions referenced by a single table (paper: up to 14 for the
  // modify_field tables).
  std::size_t max_actions = 0;
  std::string max_table;
  for (const auto& t : prog.tables) {
    if (t.actions.size() > max_actions) {
      max_actions = t.actions.size();
      max_table = t.name;
    }
  }
  std::printf("max actions on one table   : %zu (%s; paper: up to 14 on the\n",
              max_actions, max_table.c_str());
  std::puts("                             modify_field tables)");
  return 0;
}
