// Durability bench: checkpoint write / restore latency and journal replay
// throughput on an l2_switch store carrying a realistic rule load,
// written to BENCH_state.json.
//
// Three figures:
//
//   checkpoint_write_ms   median wall time of DurableController::checkpoint()
//                         (serialize + CRC + tmp/rename + prune + truncate).
//
//   restore_ms            wall time to construct a DurableController over a
//                         checkpointed store (image load, vdev source
//                         recompile, state import, short journal tail).
//
//   replay_ops_per_s      journal-only recovery throughput, reported with
//                         per-record digest verification off and on (the
//                         `digest` variant pays a full state digest per op
//                         and is the crash-fuzzer configuration).
//
// Floors are deliberately loose — they gate regressions of an order of
// magnitude (a serialization rewrite gone quadratic), not scheduler noise.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "apps/apps.h"
#include "state/store.h"

namespace hyper4::bench {
namespace {

namespace fs = std::filesystem;
using state::DurableController;
using state::StoreOptions;

constexpr std::size_t kRules = 400;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

hp4::VirtualRule nth_rule(std::size_t i) {
  char mac[18];
  std::snprintf(mac, sizeof mac, "02:00:00:%02zx:%02zx:%02zx", (i >> 16) & 0xff,
                (i >> 8) & 0xff, i & 0xff);
  const apps::Rule r =
      apps::l2_forward(mac, static_cast<std::uint16_t>(1 + i % 4));
  return hp4::VirtualRule{r.table, r.action, r.keys, r.args, r.priority};
}

// Load the l2 switch and install kRules forwarding entries.
hp4::VdevId populate(DurableController& st) {
  const hp4::VdevId id =
      st.load("l2", apps::l2_switch(), "admin", kRules + 16);
  st.attach_ports(id, {1, 2, 3, 4});
  st.bind(id);
  for (std::size_t i = 0; i < kRules; ++i) st.add_rule(id, nth_rule(i));
  return id;
}

double replay_bench(const std::string& dir, std::size_t digest_every,
                    std::size_t* replayed) {
  fs::remove_all(dir);
  StoreOptions opts;
  opts.digest_every = digest_every;
  {
    DurableController st(dir, {}, opts);
    populate(st);
  }
  const auto t0 = std::chrono::steady_clock::now();
  DurableController st(dir, {}, opts);
  const double s = seconds_since(t0);
  *replayed = st.recovery().replayed;
  fs::remove_all(dir);
  return s > 0 ? static_cast<double>(*replayed) / s : 0;
}

int main_impl() {
  const std::string dir =
      (fs::temp_directory_path() / "hp4_bench_state").string();
  fs::remove_all(dir);

  // --- checkpoint write + restore -----------------------------------------
  std::vector<double> write_ms;
  double restore_ms = 0;
  {
    StoreOptions opts;
    opts.digest_every = 16;
    {
      DurableController st(dir, {}, opts);
      const hp4::VdevId id = populate(st);
      for (int i = 0; i < 5; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        st.checkpoint();
        write_ms.push_back(seconds_since(t0) * 1e3);
        // Keep an op between images so each checkpoint covers fresh state.
        st.add_rule(id, nth_rule(kRules + static_cast<std::size_t>(i)));
      }
    }
    const auto t0 = std::chrono::steady_clock::now();
    DurableController st(dir, {}, opts);
    restore_ms = seconds_since(t0) * 1e3;
    if (!st.recovery().checkpoint_loaded) {
      std::printf("FAIL: restore did not use the checkpoint image\n");
      return 1;
    }
  }
  fs::remove_all(dir);
  std::sort(write_ms.begin(), write_ms.end());
  const double write_median = write_ms[write_ms.size() / 2];

  // --- journal replay ------------------------------------------------------
  std::size_t replayed_plain = 0, replayed_digest = 0;
  const double replay_plain = replay_bench(dir, 0, &replayed_plain);
  const double replay_digest = replay_bench(dir, 1, &replayed_digest);

  std::printf("durable state — l2_switch, %zu rules\n\n", kRules);
  std::printf("  checkpoint write (median of %zu): %8.2f ms\n",
              write_ms.size(), write_median);
  std::printf("  restore from checkpoint:          %8.2f ms\n", restore_ms);
  std::printf("  journal replay (no digests):      %8.0f ops/s  (%zu ops)\n",
              replay_plain, replayed_plain);
  std::printf("  journal replay (digest every op): %8.0f ops/s  (%zu ops)\n",
              replay_digest, replayed_digest);

  std::ofstream json("BENCH_state.json");
  json << "{\n  \"host\": " << host_block_json()
       << ",\n  \"workload\": \"l2_switch\",\n  \"rules\": " << kRules
       << ",\n  \"checkpoint_write_ms_median\": " << write_median
       << ",\n  \"restore_ms\": " << restore_ms
       << ",\n  \"replay_ops_per_s\": " << replay_plain
       << ",\n  \"replay_ops_per_s_digest_every_op\": " << replay_digest
       << ",\n  \"replayed_ops\": " << replayed_plain << "\n}\n";
  std::printf("\nwrote BENCH_state.json\n");

  // Floors: an order of magnitude under current figures, so they catch
  // accidental quadratic blowups without flaking on slow CI boxes.
  if (write_median > 2000.0) {
    std::printf("FAIL: checkpoint write median > 2s\n");
    return 1;
  }
  if (restore_ms > 5000.0) {
    std::printf("FAIL: restore > 5s\n");
    return 1;
  }
  if (replay_plain < 200.0) {
    std::printf("FAIL: journal replay < 200 ops/s\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hyper4::bench

int main() { return hyper4::bench::main_impl(); }
