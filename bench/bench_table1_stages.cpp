// Table 1: number of match-action stages incurred by the most complex
// processing of each function, native vs. HyPer4 emulation.
#include <cstdio>

#include "bench/common.h"

namespace {

struct PaperRow {
  int native;
  int hp4;
};
// The paper's reported values for reference alongside our measurements.
PaperRow paper(const std::string& name) {
  if (name == "l2_sw") return {2, 13};
  if (name == "firewall") return {3, 22};
  if (name == "router") return {4, 28};
  return {4, 48};  // arp_proxy
}

}  // namespace

int main() {
  using namespace hyper4;
  std::puts("=== Table 1: matches for most complex processing, native vs HyPer4 ===");
  std::printf("%-10s | %14s | %14s | %8s | %18s\n", "program", "native (meas.)",
              "hyper4 (meas.)", "ratio", "paper (nat / hp4)");
  std::puts("-----------+----------------+----------------+----------+-------------------");
  for (const auto& name : bench::function_names()) {
    bench::Harness h(name);
    const auto pkt = bench::worst_case_packet(name);
    const auto rn = h.native->inject(1, pkt);
    const auto re = h.ctl->dataplane().inject(1, pkt);
    const auto p = paper(name);
    std::printf("%-10s | %14zu | %14zu | %7.1fx | %8d / %d\n", name.c_str(),
                rn.match_count(), re.match_count(),
                rn.match_count()
                    ? static_cast<double>(re.match_count()) /
                          static_cast<double>(rn.match_count())
                    : 0.0,
                p.native, p.hp4);
  }
  std::puts("\nNote: the HyPer4 counts depend on the persona's table layout;");
  std::puts("ours folds the paper's separate setup-b/virtual-parse tables into");
  std::puts("one of each and one egress write-back stage (see EXPERIMENTS.md).");
  return 0;
}
