// Table 5: iperf-style bandwidth and ping-flood latency, native vs HyPer4,
// for the four measured configurations (l2_sw, firewall, Ex.1 B, Ex.1 C).
// Mean and standard deviation over 10 runs, as in the paper.
#include <cstdio>
#include <vector>

#include "sim/scenarios.h"

namespace {

struct PaperRow {
  double native_mbps, hp4_mbps, native_ms, hp4_ms;
};
PaperRow paper(const std::string& kind) {
  if (kind == "l2_sw") return {110.3, 18.7, 451, 1540};
  if (kind == "firewall") return {63.7, 7.2, 483, 2277};
  if (kind == "ex1b") return {37.7, 6.3, 1454, 5011};
  return {26.3, 3.1, 2247, 8736};  // ex1c
}

}  // namespace

int main() {
  using namespace hyper4;
  constexpr int kRuns = 10;
  constexpr std::size_t kIperfPackets = 120;
  constexpr std::size_t kPings = 200;  // scaled from the paper's 1000

  std::puts("=== Table 5: bandwidth (iperf-style) and latency (ping flood) ===");
  std::printf("%-9s | %-21s | %-21s | %-23s | %-23s\n", "", "native Mbps (u/s)",
              "hp4 Mbps (u/s)", "native ms/1000 (u/s)", "hp4 ms/1000 (u/s)");
  std::puts("----------+-----------------------+-----------------------+"
            "-------------------------+------------------------");
  for (const char* kind : {"l2_sw", "firewall", "ex1b", "ex1c"}) {
    sim::Stats mbps[2], ms[2];
    for (int variant = 0; variant < 2; ++variant) {
      const bool hyper4 = variant == 1;
      auto sc = sim::Scenario::make(kind, hyper4);
      util::Rng rng(0xBEEF + static_cast<std::uint64_t>(variant));
      std::vector<double> bw, lat;
      for (int run = 0; run < kRuns; ++run) {
        bw.push_back(sc->iperf(kIperfPackets, &rng).mbps);
        // Scale the flood to the paper's 1000-ping column.
        lat.push_back(sc->ping_flood(kPings, &rng).total_ms * 1000.0 /
                      static_cast<double>(kPings));
      }
      mbps[variant] = sim::mean_stddev(bw);
      ms[variant] = sim::mean_stddev(lat);
    }
    const PaperRow p = paper(kind);
    std::printf("%-9s | %8.1f / %-10.2f | %8.1f / %-10.2f | %9.0f / %-11.1f | %9.0f / %-9.1f\n",
                kind, mbps[0].mean, mbps[0].stddev, mbps[1].mean,
                mbps[1].stddev, ms[0].mean, ms[0].stddev, ms[1].mean,
                ms[1].stddev);
    std::printf("%-9s | paper: %8.1f       | %8.1f              | %9.0f"
                "               | %9.0f\n",
                "", p.native_mbps, p.hp4_mbps, p.native_ms, p.hp4_ms);
    const double bw_penalty =
        100.0 * (1.0 - mbps[1].mean / (mbps[0].mean > 0 ? mbps[0].mean : 1));
    const double lat_factor = ms[0].mean > 0 ? ms[1].mean / ms[0].mean : 0;
    std::printf("%-9s | measured bandwidth penalty %.0f%%, latency factor %.1fx"
                " (paper: %.0f%%, %.1fx)\n\n",
                "", bw_penalty, lat_factor,
                100.0 * (1.0 - p.hp4_mbps / p.native_mbps),
                p.hp4_ms / p.native_ms);
  }
  std::puts("Cost model: per-stage/resubmit/recirculate pricing calibrated to");
  std::puts("the paper's native L2 row; see DESIGN.md for the substitution.");
  return 0;
}
