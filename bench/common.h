// Shared fixtures for the evaluation benches: canonical rule sets and
// worst-case probe packets for the paper's four network functions, plus a
// harness that runs a function natively and under HyPer4 side by side.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/apps.h"
#include "hp4/controller.h"

namespace hyper4::bench {

// The common `host` block every BENCH_*.json carries, so numbers from
// different machines (or sanitizer builds) are never compared blind:
//   {"nproc": N, "pin_workers": bool, "sanitizer": "none"|"address,..."}
// `pin_workers` is whatever the bench actually passed to its engines.
inline std::string host_block_json(bool pin_workers = false) {
#ifdef HP4_SANITIZER
  const std::string san = HP4_SANITIZER;
#else
  const std::string san = "none";
#endif
  return std::string("{\"nproc\": ") +
         std::to_string(std::thread::hardware_concurrency()) +
         ", \"pin_workers\": " + (pin_workers ? "true" : "false") +
         ", \"sanitizer\": \"" + san + "\"}";
}

inline constexpr const char* kMacH1 = "02:00:00:00:00:01";
inline constexpr const char* kMacH2 = "02:00:00:00:00:02";
inline constexpr const char* kMacRtr = "02:aa:00:00:00:ff";

inline hp4::VirtualRule vr(const apps::Rule& r) {
  return hp4::VirtualRule{r.table, r.action, r.keys, r.args, r.priority};
}

// Canonical demo rule set per function (what §3.1's controllers install).
inline std::vector<apps::Rule> demo_rules(const std::string& name) {
  if (name == "l2_sw") {
    return {apps::l2_forward(kMacH1, 1), apps::l2_forward(kMacH2, 2)};
  }
  if (name == "router") {
    return {apps::router_accept_mac(kMacRtr),
            apps::router_route("10.0.1.0", 24, "10.0.1.10", 2),
            apps::router_route("10.0.0.0", 16, "10.0.99.1", 3),
            apps::router_arp_entry("10.0.1.10", kMacH2),
            apps::router_arp_entry("10.0.99.1", kMacH1),
            apps::router_port_mac(2, kMacRtr),
            apps::router_port_mac(3, kMacRtr)};
  }
  if (name == "arp_proxy") {
    return {apps::arp_proxy_entry("10.0.0.2", kMacH2),
            apps::arp_proxy_l2_forward(kMacH1, 1),
            apps::arp_proxy_l2_forward(kMacH2, 2)};
  }
  if (name == "firewall") {
    return {apps::firewall_l2_forward(kMacH1, 1),
            apps::firewall_l2_forward(kMacH2, 2),
            apps::firewall_block_tcp_dport(22, 10),
            apps::firewall_block_udp_dport(53, 11)};
  }
  throw util::ConfigError("bench: unknown function '" + name + "'");
}

// The packet incurring each function's most complex processing (Table 1's
// "most complex processing per function").
inline net::Packet worst_case_packet(const std::string& name) {
  if (name == "arp_proxy") {
    return net::make_arp_request(net::mac_from_string(kMacH1),
                                 net::ipv4_from_string("10.0.0.1"),
                                 net::ipv4_from_string("10.0.0.2"));
  }
  net::EthHeader eth;
  eth.src = net::mac_from_string(kMacH1);
  eth.dst = net::mac_from_string(name == "router" ? kMacRtr : kMacH2);
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string("10.0.0.1");
  ip.dst = net::ipv4_from_string("10.0.1.7");
  net::TcpHeader tcp;
  tcp.src_port = 40000;
  tcp.dst_port = 80;
  return net::make_ipv4_tcp(eth, ip, tcp, 64);
}

inline const std::vector<std::string>& function_names() {
  static const std::vector<std::string> names{"l2_sw", "firewall", "router",
                                              "arp_proxy"};
  return names;
}

// Side-by-side native / emulated instance of one function.
struct Harness {
  std::unique_ptr<bm::Switch> native;
  std::unique_ptr<hp4::Controller> ctl;
  hp4::VdevId vdev = 0;

  explicit Harness(const std::string& name) {
    native = std::make_unique<bm::Switch>(apps::program_by_name(name));
    ctl = std::make_unique<hp4::Controller>();
    vdev = ctl->load(name, apps::program_by_name(name));
    ctl->attach_ports(vdev, {1, 2, 3});
    for (std::uint16_t p : {1, 2, 3}) ctl->bind(vdev, p);
    for (const auto& r : demo_rules(name)) {
      apps::apply_rule(*native, r);
      ctl->add_rule(vdev, vr(r));
    }
  }
};

}  // namespace hyper4::bench
