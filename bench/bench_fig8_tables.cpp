// Figure 8: number of tables declared in the persona as a function of
// emulated stages (1..5) and primitives per action (1,3,5,7,9).
#include <cstdio>

#include "hp4/persona.h"

int main() {
  using namespace hyper4;
  std::puts("=== Figure 8: HyPer4 tables by stages and primitives per stage ===");
  std::printf("%-8s", "stages");
  for (int p : {1, 3, 5, 7, 9}) std::printf(" | prims=%-2d", p);
  std::puts("");
  for (std::size_t stages = 1; stages <= 5; ++stages) {
    std::printf("%-8zu", stages);
    for (std::size_t prims : {1u, 3u, 5u, 7u, 9u}) {
      hp4::PersonaConfig cfg;
      cfg.num_stages = stages;
      cfg.max_primitives = prims;
      hp4::PersonaGenerator gen{cfg};
      std::printf(" | %8zu", gen.generate().tables.size());
    }
    std::puts("");
  }
  hp4::PersonaConfig test_cfg;  // the paper's test configuration: (4, 9)
  hp4::PersonaGenerator gen{test_cfg};
  std::printf("\nTest configuration (4 stages, 9 primitives): %zu tables "
              "(paper: 346 with its per-primitive table split).\n",
              gen.generate().tables.size());
  std::puts("Growth is linear in both dimensions, as in the paper.");
  return 0;
}
