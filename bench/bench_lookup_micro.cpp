// Table lookup microbench: the compiled match index (RuntimeTable::lookup)
// against a faithful reimplementation of the pre-index linear-scan engine,
// per match kind and entry count, written to BENCH_lookup.json.
//
// The baseline reproduces the seed-era lookup exactly: exact tables probed
// through a hex-string hash key rebuilt per lookup, everything else a
// linear scan over (priority, insertion)-sorted handles where every probed
// entry pays a `resized()` copy per key component plus an lpm mask rebuilt
// with `mask_range()` — i.e. per-packet heap allocation, which is what the
// compiled index removes. Both engines are driven over identical entries
// and probes and must agree on every matched handle before anything is
// timed (a mini differential oracle; hyper4_check is the full one).
//
// Acceptance gates (ISSUE 3): indexed >= 3x baseline on ternary@256 and
// >= 5x on exact@1024.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "bench/common.h"
#include "bm/runtime_table.h"
#include "util/rng.h"

namespace hyper4::bench {
namespace {

using bm::KeyParam;
using bm::KeySpec;
using bm::RuntimeTable;
using bm::TableEntry;
using util::BitVec;

// --- the pre-index lookup engine, verbatim semantics ------------------------

class LegacyTable {
 public:
  LegacyTable(std::vector<KeySpec> keys, const RuntimeTable& src)
      : keys_(std::move(keys)) {
    for (const auto& k : keys_) {
      if (k.type != p4::MatchType::kExact && k.type != p4::MatchType::kValid)
        all_exact_ = false;
    }
    for (const auto h : src.handles()) {
      entries_.emplace(h, src.entry(h));
      if (all_exact_) exact_index_[exact_key_string(src.entry(h).key)] = h;
    }
    for (const auto& [h, e] : entries_) {
      const std::int64_t prio =
          e.priority < 0 ? (std::int64_t{1} << 40) : e.priority;
      order_.emplace_back(prio, h, h);
    }
    std::sort(order_.begin(), order_.end());
  }

  const TableEntry* lookup(const std::vector<BitVec>& key) {
    if (all_exact_) {
      auto it = exact_index_.find(exact_key_string(key));
      if (it == exact_index_.end()) return nullptr;
      return &entries_.at(it->second);
    }
    const TableEntry* best = nullptr;
    std::size_t best_lpm_len = 0;
    const bool pure_lpm =
        keys_.size() == 1 && keys_[0].type == p4::MatchType::kLpm;
    for (const auto& [prio, seq, h] : order_) {
      const TableEntry& e = entries_.at(h);
      if (!entry_matches(e, key)) continue;
      if (pure_lpm && e.priority < 0) {
        if (!best || *e.key[0].prefix_len > best_lpm_len) {
          best = &e;
          best_lpm_len = *e.key[0].prefix_len;
        }
        continue;
      }
      best = &e;
      break;
    }
    return best;
  }

 private:
  bool entry_matches(const TableEntry& e,
                     const std::vector<BitVec>& key) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      const KeySpec& spec = keys_[i];
      const KeyParam& kp = e.key[i];
      const BitVec v = key[i].resized(spec.width);
      switch (spec.type) {
        case p4::MatchType::kExact:
        case p4::MatchType::kValid:
          if (!(v == kp.value)) return false;
          break;
        case p4::MatchType::kTernary:
          if (!((v & *kp.mask) == kp.value)) return false;
          break;
        case p4::MatchType::kLpm: {
          const std::size_t plen = *kp.prefix_len;
          if (plen == 0) break;
          const BitVec mask =
              BitVec::mask_range(spec.width, spec.width - plen, plen);
          if (!((v & mask) == (kp.value & mask))) return false;
          break;
        }
        case p4::MatchType::kRange:
          if (v < kp.value || *kp.range_hi < v) return false;
          break;
      }
    }
    return true;
  }

  std::string exact_key_string(const std::vector<KeyParam>& key) const {
    std::string s;
    for (const auto& k : key) {
      s += k.value.to_hex();
      s.push_back('|');
    }
    return s;
  }
  std::string exact_key_string(const std::vector<BitVec>& key) const {
    std::string s;
    for (std::size_t i = 0; i < key.size(); ++i) {
      s += key[i].resized(keys_[i].width).to_hex();
      s.push_back('|');
    }
    return s;
  }

  std::vector<KeySpec> keys_;
  bool all_exact_ = true;
  std::map<std::uint64_t, TableEntry> entries_;
  std::vector<std::tuple<std::int64_t, std::uint64_t, std::uint64_t>> order_;
  std::unordered_map<std::string, std::uint64_t> exact_index_;
};

// --- scenarios --------------------------------------------------------------

struct Scenario {
  std::string kind;
  std::size_t key_bits = 0;
  std::vector<KeySpec> keys;
  // Fills the table; probes are generated afterwards.
  void (*populate)(RuntimeTable&, std::size_t, util::Rng&) = nullptr;
  std::vector<BitVec> (*probe)(std::size_t entries, util::Rng&) = nullptr;
};

void populate_exact(RuntimeTable& t, std::size_t n, util::Rng& rng) {
  for (std::size_t i = 0; i < n; ++i) {
    // Spread values so the probe's hit/miss split is controlled below.
    t.add({KeyParam::exact(BitVec(48, i * 2 + 1))}, i % 4, {BitVec(9, i)});
  }
  (void)rng;
}
std::vector<BitVec> probe_exact(std::size_t entries, util::Rng& rng) {
  // ~50% hits (odd values are installed), ~50% misses.
  const std::uint64_t v = rng.uniform(0, entries * 2 - 1);
  return {BitVec(48, v)};
}

void populate_lpm(RuntimeTable& t, std::size_t n, util::Rng& rng) {
  t.add({KeyParam::lpm(BitVec(32, 0), 0)}, 0, {});  // default route
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t plen = 8 * rng.uniform(1, 4);  // /8 /16 /24 /32
    const std::uint64_t base = rng.uniform(0, (1ull << 32) - 1);
    const std::uint64_t masked =
        plen == 0 ? 0 : (base >> (32 - plen)) << (32 - plen);
    t.add({KeyParam::lpm(BitVec(32, masked), plen)}, i % 4, {});
  }
}
std::vector<BitVec> probe_lpm(std::size_t entries, util::Rng& rng) {
  (void)entries;
  return {BitVec(32, rng.uniform(0, (1ull << 32) - 1))};
}

void populate_ternary(RuntimeTable& t, std::size_t n, util::Rng& rng) {
  for (std::size_t i = 0; i + 1 < n; ++i) {
    // Prefix-style masks of varying specificity, distinct priorities.
    const std::size_t mbits = 8 * rng.uniform(1, 6);
    const std::uint64_t mask =
        mbits >= 48 ? (1ull << 48) - 1
                    : (((1ull << mbits) - 1) << (48 - mbits));
    const std::uint64_t val = rng.uniform(0, (1ull << 48) - 1) & mask;
    t.add({KeyParam::ternary(BitVec(48, val), BitVec(48, mask))}, i % 4, {},
          static_cast<std::int32_t>(i));
  }
  // Catch-all so every probe terminates with a hit (worst case: full scan).
  t.add({KeyParam::ternary(BitVec(48, 0), BitVec(48, 0))}, 0, {},
        static_cast<std::int32_t>(n));
}
std::vector<BitVec> probe_ternary(std::size_t entries, util::Rng& rng) {
  (void)entries;
  return {BitVec(48, rng.uniform(0, (1ull << 48) - 1))};
}

// HyPer4's persona shape: one 800-bit ternary stage over extracted bytes.
void populate_ternary_wide(RuntimeTable& t, std::size_t n, util::Rng& rng) {
  for (std::size_t i = 0; i + 1 < n; ++i) {
    BitVec value(800);
    value.set_slice(700, BitVec(16, rng.uniform(0, 0xffff)));
    const BitVec mask = BitVec::mask_range(800, 700, 16);
    t.add({KeyParam::ternary(value, mask)}, i % 4, {},
          static_cast<std::int32_t>(i));
  }
  BitVec zero(800);
  t.add({KeyParam::ternary(zero, BitVec(800))}, 0, {},
        static_cast<std::int32_t>(n));
}
std::vector<BitVec> probe_ternary_wide(std::size_t entries, util::Rng& rng) {
  (void)entries;
  BitVec pkt(800);
  pkt.set_slice(700, BitVec(16, rng.uniform(0, 0xffff)));
  pkt.set_slice(0, BitVec(64, rng.engine()()));
  return {pkt};
}

struct Case {
  std::string kind;
  std::size_t entries = 0;
  std::size_t key_bits = 0;
  std::size_t probes = 0;
  double baseline_pps = 0;
  double indexed_pps = 0;
  double speedup = 0;
};

template <typename Fn>
double time_pps(std::size_t probes_per_pass, Fn&& pass) {
  using clock = std::chrono::steady_clock;
  // Warm-up pass (also populates scratch capacities), then run passes
  // until >= 0.2 s of wall time has accumulated.
  pass();
  std::size_t total = 0;
  const auto t0 = clock::now();
  double elapsed = 0;
  do {
    pass();
    total += probes_per_pass;
    elapsed = std::chrono::duration<double>(clock::now() - t0).count();
  } while (elapsed < 0.2);
  return static_cast<double>(total) / elapsed;
}

Case run_case(const Scenario& s, std::size_t entries) {
  util::Rng rng(0x10F4 + entries);
  RuntimeTable indexed("t", s.keys, entries + 8);
  s.populate(indexed, entries, rng);
  LegacyTable baseline(s.keys, indexed);

  constexpr std::size_t kProbes = 2048;
  std::vector<std::vector<BitVec>> probes;
  probes.reserve(kProbes);
  for (std::size_t i = 0; i < kProbes; ++i)
    probes.push_back(s.probe(entries, rng));

  // Differential gate: both engines must pick the same entry everywhere.
  for (const auto& p : probes) {
    const TableEntry* a = baseline.lookup(p);
    const TableEntry* b = indexed.lookup(p);
    const std::uint64_t ha = a ? a->handle : 0;
    const std::uint64_t hb = b ? b->handle : 0;
    if (ha != hb) {
      std::fprintf(stderr,
                   "MISMATCH %s/%zu: baseline handle %llu vs indexed %llu\n",
                   s.kind.c_str(), entries,
                   static_cast<unsigned long long>(ha),
                   static_cast<unsigned long long>(hb));
      std::exit(1);
    }
  }

  // The sink defeats dead-code elimination.
  volatile std::uint64_t sink = 0;
  Case c;
  c.kind = s.kind;
  c.entries = entries;
  c.key_bits = s.key_bits;
  c.probes = kProbes;
  c.baseline_pps = time_pps(kProbes, [&] {
    std::uint64_t acc = 0;
    for (const auto& p : probes) {
      const TableEntry* e = baseline.lookup(p);
      acc += e ? e->handle : 0;
    }
    sink = acc;
  });
  c.indexed_pps = time_pps(kProbes, [&] {
    std::uint64_t acc = 0;
    for (const auto& p : probes) {
      const TableEntry* e = indexed.lookup(p);
      acc += e ? e->handle : 0;
    }
    sink = acc;
  });
  c.speedup = c.baseline_pps > 0 ? c.indexed_pps / c.baseline_pps : 0;
  return c;
}

int main_impl() {
  const std::vector<Scenario> scenarios = {
      {"exact", 48, {KeySpec{p4::MatchType::kExact, 0, 48, "k"}},
       populate_exact, probe_exact},
      {"lpm", 32, {KeySpec{p4::MatchType::kLpm, 0, 32, "k"}},
       populate_lpm, probe_lpm},
      {"ternary", 48, {KeySpec{p4::MatchType::kTernary, 0, 48, "k"}},
       populate_ternary, probe_ternary},
      {"ternary_wide", 800, {KeySpec{p4::MatchType::kTernary, 0, 800, "k"}},
       populate_ternary_wide, probe_ternary_wide},
  };
  const std::vector<std::size_t> counts = {16, 256, 1024};

  std::printf("%-14s %8s %12s %12s %9s\n", "kind", "entries", "baseline_pps",
              "indexed_pps", "speedup");
  std::vector<Case> cases;
  for (const auto& s : scenarios) {
    for (const std::size_t n : counts) {
      const Case c = run_case(s, n);
      std::printf("%-14s %8zu %12.0f %12.0f %8.2fx\n", c.kind.c_str(),
                  c.entries, c.baseline_pps, c.indexed_pps, c.speedup);
      cases.push_back(c);
    }
  }

  std::ofstream json("BENCH_lookup.json");
  json << "{\n  \"host\": " << host_block_json()
       << ",\n  \"bench\": \"lookup_micro\",\n  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    json << "    {\"kind\": \"" << c.kind << "\", \"entries\": " << c.entries
         << ", \"key_bits\": " << c.key_bits
         << ", \"baseline_pps\": " << c.baseline_pps
         << ", \"indexed_pps\": " << c.indexed_pps
         << ", \"speedup\": " << c.speedup << "}"
         << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nwrote BENCH_lookup.json\n");

  // ISSUE 3 acceptance gates.
  int rc = 0;
  for (const Case& c : cases) {
    if (c.kind == "ternary" && c.entries == 256 && c.speedup < 3.0) {
      std::printf("FAIL: ternary@256 speedup %.2fx < 3x\n", c.speedup);
      rc = 1;
    }
    if (c.kind == "exact" && c.entries == 1024 && c.speedup < 5.0) {
      std::printf("FAIL: exact@1024 speedup %.2fx < 5x\n", c.speedup);
      rc = 1;
    }
  }
  return rc;
}

}  // namespace
}  // namespace hyper4::bench

int main() { return hyper4::bench::main_impl(); }
