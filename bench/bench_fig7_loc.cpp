// Figure 7: lines of generated persona P4 source as a function of the
// number of emulated match-action stages (1..5) and primitives per action
// (1,3,5,7,9): (a) whole program, (b) drop-primitive support only,
// (c) modify_field-primitive support only.
#include <cstdio>

#include "hp4/p4_emit.h"
#include "hp4/persona.h"

namespace {

void sweep(const char* title, const char* needle) {
  using namespace hyper4;
  std::printf("--- %s ---\n", title);
  std::printf("%-8s", "stages");
  for (int p : {1, 3, 5, 7, 9}) std::printf(" | prims=%-2d", p);
  std::puts("");
  for (std::size_t stages = 1; stages <= 5; ++stages) {
    std::printf("%-8zu", stages);
    for (std::size_t prims : {1u, 3u, 5u, 7u, 9u}) {
      hp4::PersonaConfig cfg;
      cfg.num_stages = stages;
      cfg.max_primitives = prims;
      hp4::PersonaGenerator gen{cfg};
      const auto prog = gen.generate();
      const std::string src = needle == nullptr
                                  ? hp4::emit_p4(prog)
                                  : hp4::emit_p4_subset(prog, needle);
      std::printf(" | %8zu", hp4::count_loc(src));
    }
    std::puts("");
  }
  std::puts("");
}

}  // namespace

int main() {
  std::puts("=== Figure 7: HyPer4 P4 LoC by stages and primitives per stage ===");
  sweep("(a) entire persona source", nullptr);
  sweep("(b) drop-primitive support", "_drop");
  sweep("(c) modify_field-primitive support", "_mod");
  std::puts("Paper: ~6400 LoC at the (4 stages, 9 primitives) test");
  std::puts("configuration, growing linearly in both dimensions; our");
  std::puts("generator reproduces the linear growth (exact LoC differs with");
  std::puts("persona layout and the write-back action granularity).");
  return 0;
}
