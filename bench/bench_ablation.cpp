// Ablations of the persona design choices DESIGN.md calls out:
//   (1) the §4.5 ingress isolation meter (cost of the protection),
//   (2) the parse-ladder default (resubmits traded against default
//       extraction width),
//   (3) write-back action granularity (generated-source size traded
//       against resize resolution),
//   (4) stage budget K (persona size traded against emulable programs).
#include <cstdio>

#include "bench/common.h"
#include "hp4/p4_emit.h"

using namespace hyper4;

namespace {

std::size_t emulated_matches(const hp4::PersonaConfig& cfg,
                             const std::string& app) {
  hp4::Controller ctl(cfg);
  auto id = ctl.load(app, apps::program_by_name(app));
  ctl.attach_ports(id, {1, 2, 3});
  for (std::uint16_t p : {1, 2, 3}) ctl.bind(id, p);
  for (const auto& r : bench::demo_rules(app)) ctl.add_rule(id, bench::vr(r));
  return ctl.dataplane().inject(1, bench::worst_case_packet(app)).match_count();
}

std::size_t emulated_resubmits(const hp4::PersonaConfig& cfg,
                               const std::string& app) {
  hp4::Controller ctl(cfg);
  auto id = ctl.load(app, apps::program_by_name(app));
  ctl.attach_ports(id, {1, 2, 3});
  for (std::uint16_t p : {1, 2, 3}) ctl.bind(id, p);
  for (const auto& r : bench::demo_rules(app)) ctl.add_rule(id, bench::vr(r));
  return ctl.dataplane().inject(1, bench::worst_case_packet(app)).resubmits;
}

}  // namespace

int main() {
  std::puts("=== Ablation 1: ingress isolation meter (§4.5) ===");
  {
    hp4::PersonaConfig off;
    hp4::PersonaConfig on = off;
    on.ingress_meter = true;
    on.meter_burst = 1 << 20;  // never drops; measure pure overhead
    std::printf("%-10s | %10s | %10s\n", "program", "matches", "with meter");
    for (const auto& app : bench::function_names()) {
      std::printf("%-10s | %10zu | %10zu\n", app.c_str(),
                  emulated_matches(off, app), emulated_matches(on, app));
    }
    std::puts("cost: one extra match stage per traversal; in exchange each");
    std::puts("virtual device gets a rate cap that cuts recirculation storms");
    std::puts("(tested in hp4_extensions_test).\n");
  }

  std::puts("=== Ablation 2: parse-ladder default width vs resubmits ===");
  {
    std::printf("%-10s", "default");
    for (const auto& app : bench::function_names())
      std::printf(" | %16s", app.c_str());
    std::puts("  (matches / resubmits)");
    for (std::size_t def : {20u, 40u, 60u}) {
      hp4::PersonaConfig cfg;
      cfg.parse_default_bytes = def;
      std::printf("%-10zu", def);
      for (const auto& app : bench::function_names()) {
        std::printf(" | %9zu / %4zu", emulated_matches(cfg, app),
                    emulated_resubmits(cfg, app));
      }
      std::puts("");
    }
    std::puts("a wider default removes the resubmit (and its setup_a pass)");
    std::puts("for deep-parsing programs, at the cost of extracting and");
    std::puts("concatenating more bytes for every packet of every program.\n");
  }

  std::puts("=== Ablation 3: write-back granularity vs generated source ===");
  {
    std::printf("%-10s | %12s | %14s\n", "step", "LoC", "wb actions");
    for (std::size_t step : {1u, 2u, 5u, 10u}) {
      hp4::PersonaConfig cfg;
      cfg.writeback_step_bytes = step;
      hp4::PersonaGenerator gen{cfg};
      const auto prog = gen.generate();
      std::size_t wb = 0;
      for (const auto& a : prog.actions) {
        if (a.name.rfind("a_wb_", 0) == 0) ++wb;
      }
      std::printf("%-10zu | %12zu | %14zu\n", step,
                  hp4::count_loc(hp4::emit_p4(prog)), wb);
    }
    std::puts("the paper's 1-byte granularity is its \"80 actions\" (§6.2);");
    std::puts("coarser steps shrink the persona at the cost of resize");
    std::puts("resolution for emulated add/remove_header.\n");
  }

  std::puts("=== Ablation 4: stage budget K ===");
  {
    std::printf("%-8s | %8s | %26s\n", "stages", "tables",
                "emulable demo functions");
    for (std::size_t k : {1u, 2u, 3u, 4u}) {
      hp4::PersonaConfig cfg;
      cfg.num_stages = k;
      hp4::PersonaGenerator gen{cfg};
      std::string ok;
      hp4::Hp4Compiler compiler{cfg};
      for (const auto& app : bench::function_names()) {
        try {
          compiler.compile(apps::program_by_name(app));
          ok += app + " ";
        } catch (const hp4::UnsupportedFeature&) {
        }
      }
      std::printf("%-8zu | %8zu | %s\n", k, gen.generate().tables.size(),
                  ok.empty() ? "(none)" : ok.c_str());
    }
    std::puts("K trades persona size (Fig. 8) against which programs fit;");
    std::puts("the paper's test configuration (K=4) is the smallest that");
    std::puts("hosts all four demo functions.");
  }
  return 0;
}
