/* Minimal C client of the stable HyPer4 ABI — everything here is plain
 * C11 against include/hyper4/hyper4.h and libhyper4_abi only.
 *
 * Creates an in-memory instance, loads the example l2_switch as a virtual
 * device, wires ports 1 and 2, installs one forwarding rule, pushes a
 * batch of frames through the traffic engine, and prints the drained
 * outputs plus the engine metrics JSON.
 *
 *   usage: abi_client <path/to/l2_switch.p4>
 */
#include <hyper4/hyper4.h>

#include <stdio.h>
#include <stdlib.h>
#include <string.h>

/* Every ABI call returns 0 or a negative error code; a real embedding
 * would branch — an example just explains and stops. */
static void check(h4_instance* inst, int rc, const char* what) {
  if (rc == H4_OK) return;
  fprintf(stderr, "%s failed: %s\n", what, h4_err_str(rc));
  if (inst) {
    char detail[512];
    size_t need = 0;
    if (h4_last_error(inst, detail, sizeof(detail), &need) == H4_OK)
      fprintf(stderr, "  %s\n", detail);
  }
  exit(2);
}

static char* read_file(const char* path) {
  FILE* f = fopen(path, "rb");
  if (!f) {
    fprintf(stderr, "cannot open %s\n", path);
    exit(2);
  }
  fseek(f, 0, SEEK_END);
  const long len = ftell(f);
  fseek(f, 0, SEEK_SET);
  char* buf = malloc((size_t)len + 1);
  if (!buf || fread(buf, 1, (size_t)len, f) != (size_t)len) {
    fprintf(stderr, "cannot read %s\n", path);
    exit(2);
  }
  buf[len] = '\0';
  fclose(f);
  return buf;
}

int main(int argc, char** argv) {
  if (argc != 2) {
    fprintf(stderr, "usage: abi_client <path/to/l2_switch.p4>\n");
    return 1;
  }

  h4_options opts;
  h4_options_init(&opts);
  opts.workers = 2;

  h4_instance* inst = NULL;
  check(NULL, h4_open(&opts, &inst), "h4_open");

  char* source = read_file(argv[1]);
  h4_vdev sw = 0;
  check(inst, h4_vdev_load(inst, "l2", source, &sw), "h4_vdev_load");
  free(source);

  const uint16_t ports[2] = {1, 2};
  check(inst, h4_vdev_attach_ports(inst, sw, ports, 2), "attach_ports");
  check(inst, h4_vdev_bind(inst, sw, -1), "bind");

  /* dmac 00:00:00:00:00:02 -> forward out of physical port 2 */
  const char* keys[1] = {"00:00:00:00:00:02"};
  const char* args[1] = {"2"};
  uint64_t rule = 0;
  check(inst, h4_rule_add(inst, sw, "dmac", "forward", keys, 1, args, 1, -1,
                          &rule),
        "h4_rule_add");

  /* Eight 64-byte frames to that MAC, injected as one batch. */
  uint8_t frame[64] = {0};
  frame[5] = 0x02;  /* dst 00:00:00:00:00:02 */
  frame[11] = 0x01; /* src 00:00:00:00:00:01 */
  frame[12] = 0x08; /* ethertype 0x0800 */
  h4_packet batch[8];
  for (int i = 0; i < 8; ++i) {
    batch[i].port = 1;
    batch[i].data = frame;
    batch[i].len = sizeof(frame);
  }
  check(inst, h4_inject_batch(inst, batch, 8), "h4_inject_batch");

  h4_drain_stats stats;
  check(inst, h4_drain(inst, &stats), "h4_drain");
  printf("drained: %llu packets, %llu forwarded, %llu dropped\n",
         (unsigned long long)stats.packets, (unsigned long long)stats.outputs,
         (unsigned long long)stats.drops);

  /* Outputs use the two-buffer protocol: ask for sizes, then take. */
  size_t nout = 0, nbytes = 0;
  int rc = h4_drain_outputs(inst, NULL, 0, NULL, 0, &nout, &nbytes);
  if (rc == H4_ERR_NOSPACE && nout > 0) {
    h4_output* outs = malloc(nout * sizeof(h4_output));
    uint8_t* bytes = malloc(nbytes);
    check(inst, h4_drain_outputs(inst, outs, nout, bytes, nbytes, &nout,
                                 &nbytes),
          "h4_drain_outputs");
    for (size_t i = 0; i < nout; ++i)
      printf("  out[%zu]: port %u, %u bytes\n", i, outs[i].port,
             outs[i].len);
    free(outs);
    free(bytes);
  }

  /* Metrics as JSON, same grow-on-NOSPACE dance. */
  size_t need = 0;
  rc = h4_metrics_json(inst, NULL, 0, &need);
  if (rc == H4_ERR_NOSPACE) {
    char* json = malloc(need);
    check(inst, h4_metrics_json(inst, json, need, &need), "h4_metrics_json");
    printf("metrics: %s\n", json);
    free(json);
  }

  uint64_t digest = 0;
  check(inst, h4_state_digest(inst, &digest), "h4_state_digest");
  printf("state digest: %016llx\n", (unsigned long long)digest);

  check(NULL, h4_close(inst), "h4_close");
  return 0;
}
