// hp4_shell: an interactive operator console for a HyPer4 switch.
//
// Drives one persona dataplane through the controller/DPMU with simple
// commands (type `help`). Reads stdin, so it works interactively or
// scripted:
//
//   $ ./hp4_shell < examples/shell_demo.txt
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "apps/apps.h"
#include "bm/cli.h"
#include "hp4/controller.h"
#include "p4/frontend.h"
#include "util/strings.h"

using namespace hyper4;

namespace {

const char* kHelp = R"(commands:
  load <name> <l2_sw|router|arp_proxy|firewall|file.p4>   compile & load a program
  ports <vdev> <p1> [p2 ...]        allot vports for physical ports
  bind <vdev> <port|all>            steer ingress traffic to the device
  link <vdev> <port> <next_vdev>    virtual link: vport -> next device
  unload <vdev>                     remove a device and all its state
  rule <vdev> <table> <action> <keys...> => <args...> [prio]
  send <port> tcp <smac> <dmac> <sip> <dip> <dport>
  send <port> arp <smac> <sip> <tip>
  send <port> raw <hexbytes>
  dump <persona-table>              list a persona table's entries
  intermediate <vdev>               show the device's compiled artifact
  report                            DPMU inventory
  stats                             dataplane counters
  ! <cli command>                   raw persona CLI (table_add, ...)
  help | quit
)";

p4::Program resolve_program(const std::string& spec) {
  if (spec.size() > 3 && spec.substr(spec.size() - 3) == ".p4") {
    std::ifstream in(spec);
    if (!in) throw util::ConfigError("cannot open '" + spec + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return p4::parse_p4(ss.str(), spec);
  }
  return apps::program_by_name(spec);
}

net::Packet parse_send(const std::vector<std::string>& tok) {
  const std::string& kind = tok[2];
  if (kind == "tcp") {
    if (tok.size() != 8) throw util::ParseError("send tcp: wrong arity");
    net::EthHeader eth;
    eth.src = net::mac_from_string(tok[3]);
    eth.dst = net::mac_from_string(tok[4]);
    net::Ipv4Header ip;
    ip.src = net::ipv4_from_string(tok[5]);
    ip.dst = net::ipv4_from_string(tok[6]);
    net::TcpHeader tcp;
    tcp.src_port = 40000;
    tcp.dst_port = static_cast<std::uint16_t>(util::parse_uint(tok[7]));
    return net::make_ipv4_tcp(eth, ip, tcp, 64);
  }
  if (kind == "arp") {
    if (tok.size() != 6) throw util::ParseError("send arp: wrong arity");
    return net::make_arp_request(net::mac_from_string(tok[3]),
                                 net::ipv4_from_string(tok[4]),
                                 net::ipv4_from_string(tok[5]));
  }
  if (kind == "raw") {
    if (tok.size() != 4) throw util::ParseError("send raw: wrong arity");
    std::vector<std::uint8_t> bytes;
    const std::string& hex = tok[3];
    if (hex.size() % 2) throw util::ParseError("send raw: odd hex length");
    for (std::size_t i = 0; i < hex.size(); i += 2) {
      bytes.push_back(static_cast<std::uint8_t>(
          util::parse_uint("0x" + hex.substr(i, 2))));
    }
    return net::Packet(std::move(bytes));
  }
  throw util::ParseError("send: unknown packet kind '" + kind + "'");
}

}  // namespace

int main() {
  hp4::Controller ctl;
  std::printf("hp4_shell: persona up (%zu tables); type 'help'\n",
              ctl.dataplane().table_names().size());

  std::string line;
  while (std::printf("hp4> "), std::fflush(stdout), std::getline(std::cin, line)) {
    // Echo scripted input so piped sessions read like transcripts.
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::printf("%s\n", std::string(trimmed).c_str());
    try {
      const auto tok = util::split(trimmed);
      const std::string& cmd = tok[0];
      if (cmd == "quit" || cmd == "exit") break;
      if (cmd == "help") {
        std::fputs(kHelp, stdout);
      } else if (cmd == "load" && tok.size() == 3) {
        const auto id = ctl.load(tok[1], resolve_program(tok[2]));
        std::printf("loaded '%s' as vdev %llu\n", tok[1].c_str(),
                    static_cast<unsigned long long>(id));
      } else if (cmd == "ports" && tok.size() >= 3) {
        std::vector<std::uint16_t> ports;
        for (std::size_t i = 2; i < tok.size(); ++i) {
          ports.push_back(static_cast<std::uint16_t>(util::parse_uint(tok[i])));
        }
        ctl.attach_ports(util::parse_uint(tok[1]), ports);
        std::printf("attached %zu port(s)\n", ports.size());
      } else if (cmd == "bind" && tok.size() == 3) {
        if (tok[2] == "all") {
          ctl.bind(util::parse_uint(tok[1]));
        } else {
          ctl.bind(util::parse_uint(tok[1]),
                   static_cast<std::uint16_t>(util::parse_uint(tok[2])));
        }
        std::puts("bound");
      } else if (cmd == "link" && tok.size() == 4) {
        ctl.dpmu().set_vport_target_vdev(
            util::parse_uint(tok[1]),
            static_cast<std::uint16_t>(util::parse_uint(tok[2])),
            util::parse_uint(tok[3]));
        std::puts("linked");
      } else if (cmd == "unload" && tok.size() == 2) {
        ctl.unload(util::parse_uint(tok[1]));
        std::puts("unloaded");
      } else if (cmd == "rule" && tok.size() >= 5) {
        hp4::VirtualRule rule;
        const hp4::VdevId id = util::parse_uint(tok[1]);
        rule.table = tok[2];
        rule.action = tok[3];
        std::size_t i = 4;
        while (i < tok.size() && tok[i] != "=>") rule.keys.push_back(tok[i++]);
        if (i == tok.size()) throw util::ParseError("rule: missing '=>'");
        ++i;
        std::vector<std::string> rest(tok.begin() + static_cast<long>(i),
                                      tok.end());
        // Trailing integer = priority when the table needs one; keep the
        // CLI convention: priority only when a ternary/lpm table.
        rule.args = rest;
        if (!rest.empty() && util::is_uint(rest.back())) {
          const auto& ts = ctl.dpmu().artifact(id).table(rule.table);
          bool needs_prio = false;
          for (const auto& k : ts.keys) {
            if (k.type == p4::MatchType::kTernary) needs_prio = true;
          }
          if (needs_prio) {
            rule.priority = static_cast<std::int32_t>(util::parse_uint(rest.back()));
            rule.args.pop_back();
          }
        }
        const auto vh = ctl.add_rule(id, rule);
        std::printf("virtual entry %llu\n", static_cast<unsigned long long>(vh));
      } else if (cmd == "send" && tok.size() >= 4) {
        const auto port = static_cast<std::uint16_t>(util::parse_uint(tok[1]));
        const auto res = ctl.dataplane().inject(port, parse_send(tok));
        if (res.outputs.empty()) {
          std::printf("dropped (%zu stages", res.match_count());
        } else {
          std::printf("-> port %u (%zu bytes, %zu stages",
                      res.outputs[0].port, res.outputs[0].packet.size(),
                      res.match_count());
        }
        std::printf(", %zu resubmit, %zu recirculate)\n", res.resubmits,
                    res.recirculations);
      } else if (cmd == "dump" && tok.size() == 2) {
        std::fputs(ctl.dataplane().table_dump(tok[1]).c_str(), stdout);
      } else if (cmd == "intermediate" && tok.size() == 2) {
        std::fputs(
            ctl.dpmu().artifact(util::parse_uint(tok[1])).intermediate_text().c_str(),
            stdout);
      } else if (cmd == "report") {
        std::fputs(ctl.dpmu().report().c_str(), stdout);
      } else if (cmd == "stats") {
        const auto& s = ctl.dataplane().stats();
        std::printf("in=%llu out=%llu drops=%llu resubmits=%llu "
                    "recirculations=%llu parse_errors=%llu\n",
                    static_cast<unsigned long long>(s.packets_in),
                    static_cast<unsigned long long>(s.packets_out),
                    static_cast<unsigned long long>(s.drops),
                    static_cast<unsigned long long>(s.resubmits),
                    static_cast<unsigned long long>(s.recirculations),
                    static_cast<unsigned long long>(s.parse_errors));
      } else if (cmd == "!") {
        const auto r = bm::run_cli_command(
            ctl.dataplane(), std::string(trimmed.substr(1)));
        std::printf("%s%s\n", r.ok ? "" : "error: ", r.message.c_str());
      } else {
        std::printf("unknown command (try 'help'): %s\n",
                    std::string(trimmed).c_str());
      }
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  std::puts("bye");
  return 0;
}
