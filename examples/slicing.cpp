// §3.3 / Figure 4: network slicing and composition on a single switch.
//
// One physical switch s1, four hosts. Ports 1–2 belong to one logical
// device (an L2 switch); ports 3–4 belong to another (a firewall → router
// chain). Each slice is owned by a different tenant; the DPMU rejects
// cross-tenant table operations.
#include <cstdio>

#include "apps/apps.h"
#include "hp4/controller.h"

using namespace hyper4;

namespace {

constexpr const char* kMacH1 = "02:00:00:00:00:01";
constexpr const char* kMacH2 = "02:00:00:00:00:02";
constexpr const char* kMacH3 = "02:00:00:00:00:03";
constexpr const char* kMacH4 = "02:00:00:00:00:04";
constexpr const char* kMacGw = "02:aa:00:00:00:01";

hp4::VirtualRule vr(const apps::Rule& r) {
  return hp4::VirtualRule{r.table, r.action, r.keys, r.args, r.priority};
}

net::Packet tcp(const char* smac, const char* dmac, const char* sip,
                const char* dip, std::uint16_t dport) {
  net::EthHeader eth;
  eth.src = net::mac_from_string(smac);
  eth.dst = net::mac_from_string(dmac);
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string(sip);
  ip.dst = net::ipv4_from_string(dip);
  net::TcpHeader t;
  t.src_port = 40000;
  t.dst_port = dport;
  return net::make_ipv4_tcp(eth, ip, t, 64);
}

void report(const char* what, const bm::ProcessResult& r) {
  if (r.outputs.empty()) {
    std::printf("  %-40s -> dropped\n", what);
  } else {
    std::printf("  %-40s -> out port %u\n", what, r.outputs[0].port);
  }
}

}  // namespace

int main() {
  std::puts("== Example 2 (Fig. 4): slicing and composition on one switch ==\n");

  hp4::Controller ctl;

  // Slice A (tenant_a): ports 1–2, plain L2 switching between h1 and h2.
  auto l2 = ctl.load("sliceA_l2", apps::l2_switch(), "tenant_a");
  ctl.attach_ports(l2, {1, 2});
  ctl.bind(l2, 1);
  ctl.bind(l2, 2);
  ctl.dpmu().table_add(l2, vr(apps::l2_forward(kMacH1, 1)), "tenant_a");
  ctl.dpmu().table_add(l2, vr(apps::l2_forward(kMacH2, 2)), "tenant_a");

  // Slice B (tenant_b): ports 3–4, firewall → router chain (h3 and h4 sit
  // in different IP networks, per the figure).
  auto fw = ctl.load("sliceB_fw", apps::firewall(), "tenant_b");
  auto rtr = ctl.load("sliceB_rtr", apps::ipv4_router(), "tenant_b");
  ctl.chain({fw, rtr}, {3, 4});
  for (const auto& r : {apps::firewall_l2_forward(kMacGw, 4),
                        apps::firewall_l2_forward(kMacH3, 3),
                        apps::firewall_block_tcp_dport(23, 10)}) {
    ctl.dpmu().table_add(fw, vr(r), "tenant_b");
  }
  for (const auto& r : {apps::router_accept_mac(kMacGw),
                        apps::router_route("10.2.0.0", 16, "10.2.0.4", 4),
                        apps::router_route("10.1.0.0", 16, "10.1.0.3", 3),
                        apps::router_arp_entry("10.2.0.4", kMacH4),
                        apps::router_arp_entry("10.1.0.3", kMacH3),
                        apps::router_port_mac(4, kMacGw),
                        apps::router_port_mac(3, kMacGw)}) {
    ctl.dpmu().table_add(rtr, vr(r), "tenant_b");
  }

  std::printf("slice A: vdev %llu (tenant_a, ports 1-2)\n",
              static_cast<unsigned long long>(l2));
  std::printf("slice B: vdevs %llu -> %llu (tenant_b, ports 3-4)\n\n",
              static_cast<unsigned long long>(fw),
              static_cast<unsigned long long>(rtr));

  auto& dp = ctl.dataplane();
  std::puts("-- slice A traffic (L2 only; telnet NOT filtered here) --");
  report("h1 -> h2, TCP 80",
         dp.inject(1, tcp(kMacH1, kMacH2, "10.0.0.1", "10.0.0.2", 80)));
  report("h1 -> h2, TCP 23",
         dp.inject(1, tcp(kMacH1, kMacH2, "10.0.0.1", "10.0.0.2", 23)));

  std::puts("\n-- slice B traffic (firewalled, then routed) --");
  report("h3 -> h4 via gw, TCP 80",
         dp.inject(3, tcp(kMacH3, kMacGw, "10.1.0.3", "10.2.0.4", 80)));
  report("h3 -> h4 via gw, TCP 23 (blocked)",
         dp.inject(3, tcp(kMacH3, kMacGw, "10.1.0.3", "10.2.0.4", 23)));

  std::puts("\n-- isolation --");
  // Slice A's traffic never sees slice B's filter...
  auto r = dp.inject(1, tcp(kMacH1, kMacH2, "10.0.0.1", "10.0.0.2", 23));
  std::printf("  slice A TCP 23 still forwarded: %s\n",
              r.outputs.empty() ? "NO (bug!)" : "yes");
  // ...and tenant_a cannot touch slice B.
  try {
    ctl.dpmu().table_add(fw, vr(apps::firewall_l2_forward(kMacH1, 3)),
                         "tenant_a");
    std::puts("  tenant_a modified slice B: SHOULD NOT HAPPEN");
    return 1;
  } catch (const util::IsolationError& e) {
    std::printf("  tenant_a rejected by DPMU: %s\n", e.what());
  }
  return 0;
}
