// §5.2 workflow tour: foo.p4 → HLIR → HyPer4 commands.
//
// Parses a P4-14 source file (default: examples/p4/firewall.p4, or pass a
// path), compiles it for the persona, prints the *intermediate* commands
// file (with load-time tokens), loads it into a live persona, and pushes
// traffic through the emulated program.
//
//   $ ./p4_frontend_tour [path/to/program.p4]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "hp4/controller.h"
#include "net/headers.h"
#include "p4/frontend.h"

using namespace hyper4;

namespace {

// Embedded fallback so the tour runs from any working directory.
const char* kFallbackSource = R"(
header_type ethernet_t {
    fields { dstAddr : 48; srcAddr : 48; etherType : 16; }
}
header ethernet_t ethernet;
parser start { extract(ethernet); return ingress; }
action nop() { no_op(); }
action forward(port) { modify_field(standard_metadata.egress_spec, port); }
action _drop() { drop(); }
table smac {
    reads { ethernet.srcAddr : exact; }
    actions { nop; }
    default_action : nop;
}
table dmac {
    reads { ethernet.dstAddr : exact; }
    actions { forward; _drop; }
    default_action : _drop;
}
control ingress { apply(smac); apply(dmac); }
)";

}  // namespace

int main(int argc, char** argv) {
  std::puts("== P4 front-end tour: foo.p4 -> HyPer4 commands ==\n");

  // 1. Read and parse the source.
  std::string source;
  std::string origin = "embedded l2 switch";
  const char* path = argc > 1 ? argv[1] : "examples/p4/firewall.p4";
  if (std::ifstream in{path}) {
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
    origin = path;
  } else {
    source = kFallbackSource;
  }
  std::printf("parsing %s (%zu bytes)\n", origin.c_str(), source.size());
  p4::Program prog = p4::parse_p4(source, "tour_program");
  std::printf("parsed: %zu header types, %zu parser states, %zu actions, "
              "%zu tables\n\n",
              prog.header_types.size(), prog.parser_states.size(),
              prog.actions.size(), prog.tables.size());

  // 2. Compile for the persona; show the intermediate artifact.
  hp4::Controller ctl;
  hp4::Hp4Artifact art = ctl.compile(prog);
  std::puts("-- intermediate commands file --");
  std::fputs(art.intermediate_text().c_str(), stdout);

  // 3. Load (token substitution happens here) and steer ports 1-2 into it.
  hp4::VdevId vdev = ctl.load("tour", prog);
  ctl.attach_ports(vdev, {1, 2});
  ctl.bind(vdev, 1);
  ctl.bind(vdev, 2);
  std::printf("\nloaded as virtual device %llu (numbytes=%zu%s)\n",
              static_cast<unsigned long long>(vdev), art.numbytes,
              art.needs_resubmit ? ", resubmits for extra bytes" : "");

  // 4. Populate one forwarding entry through the DPMU and send a packet.
  //    The demo rule assumes an l2-style `dmac` table; programs without one
  //    still get loaded and inspected above.
  bool has_dmac = false;
  for (const auto& ts : art.tables) has_dmac |= ts.name == "dmac";
  if (!has_dmac) {
    std::puts("\n(program has no 'dmac' table; skipping the traffic demo)");
    return 0;
  }
  ctl.add_rule(vdev, hp4::VirtualRule{"dmac",
                                      "forward",
                                      {"02:00:00:00:00:02"},
                                      {"2"},
                                      -1});
  net::EthHeader eth;
  eth.src = net::mac_from_string("02:00:00:00:00:01");
  eth.dst = net::mac_from_string("02:00:00:00:00:02");
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string("10.0.0.1");
  ip.dst = net::ipv4_from_string("10.0.0.2");
  net::TcpHeader tcp;
  tcp.dst_port = 80;
  auto res =
      ctl.dataplane().inject(1, net::make_ipv4_tcp(eth, ip, tcp, 64));
  if (res.outputs.empty()) {
    std::puts("packet dropped (unexpected)");
    return 1;
  }
  std::printf("packet emulated through '%s': out port %u, %zu persona match "
              "stages\n",
              origin.c_str(), res.outputs[0].port, res.match_count());
  return 0;
}
