// l2_switch (generated P4-14 source)

header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}

header ethernet_t ethernet;

parser start {
    extract(ethernet);
    return ingress;
}

action nop() {
    no_op();
}

action forward(port) {
    modify_field(standard_metadata.egress_spec, port);
}

action _drop() {
    drop();
}

table smac {
    reads {
        ethernet.srcAddr : exact;
    }
    actions {
        nop;
    }
    default_action : nop;
    size : 1024;
}

table dmac {
    reads {
        ethernet.dstAddr : exact;
    }
    actions {
        forward;
        _drop;
    }
    default_action : _drop;
    size : 1024;
}

control ingress {
    apply(smac);
    apply(dmac);
}

control egress {
}

