// arp_proxy (generated P4-14 source)

header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}

header_type arp_t {
    fields {
        htype : 16;
        ptype : 16;
        hlen : 8;
        plen : 8;
        oper : 16;
        sha : 48;
        spa : 32;
        tha : 48;
        tpa : 32;
    }
}

header_type arp_meta_t {
    fields {
        tmp_ip : 32;
    }
}

header ethernet_t ethernet;
header arp_t arp;
metadata arp_meta_t meta;

counter arp_seen {
    type : packets;
    direct : arp_monitor;
}

parser start {
    extract(ethernet);
    return select(ethernet.etherType) {
        0x0806 : parse_arp;
        default : ingress;
    }
}

parser parse_arp {
    extract(arp);
    return ingress;
}

action nop() {
    no_op();
}

action forward(port) {
    modify_field(standard_metadata.egress_spec, port);
}

action _drop() {
    drop();
}

action arp_reply(mac) {
    modify_field(ethernet.dstAddr, ethernet.srcAddr);
    modify_field(arp.oper, 0x0002);
    modify_field(arp.tha, arp.sha);
    modify_field(arp.sha, mac);
    modify_field(ethernet.srcAddr, mac);
    modify_field(meta.tmp_ip, arp.spa);
    modify_field(arp.spa, arp.tpa);
    modify_field(arp.tpa, meta.tmp_ip);
    modify_field(standard_metadata.egress_spec, standard_metadata.ingress_port);
}

table smac {
    reads {
        ethernet.srcAddr : exact;
    }
    actions {
        nop;
    }
    default_action : nop;
    size : 1024;
}

table arp_resp {
    reads {
        arp : valid;
        arp.oper : ternary;
        arp.tpa : ternary;
    }
    actions {
        arp_reply;
        nop;
    }
    default_action : nop;
    size : 1024;
}

table dmac {
    reads {
        ethernet.dstAddr : exact;
    }
    actions {
        forward;
        _drop;
    }
    default_action : _drop;
    size : 1024;
}

table arp_monitor {
    reads {
        arp : valid;
    }
    actions {
        nop;
    }
    default_action : nop;
    size : 1024;
}

control ingress {
    apply(smac);
    apply(arp_resp);
    apply(dmac);
}

control egress {
    apply(arp_monitor);
}

