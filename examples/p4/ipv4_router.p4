// ipv4_router (generated P4-14 source)

header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}

header_type ipv4_t {
    fields {
        version : 4;
        ihl : 4;
        diffserv : 8;
        totalLen : 16;
        identification : 16;
        flags : 3;
        fragOffset : 13;
        ttl : 8;
        protocol : 8;
        hdrChecksum : 16;
        srcAddr : 32;
        dstAddr : 32;
    }
}

header_type router_meta_t {
    fields {
        nhop_ipv4 : 32;
    }
}

header ethernet_t ethernet;
header ipv4_t ipv4;
metadata router_meta_t meta;

field_list ipv4_checksum_list {
    ipv4.version;
    ipv4.ihl;
    ipv4.diffserv;
    ipv4.totalLen;
    ipv4.identification;
    ipv4.flags;
    ipv4.fragOffset;
    ipv4.ttl;
    ipv4.protocol;
    ipv4.srcAddr;
    ipv4.dstAddr;
}

field_list_calculation ipv4_hdrChecksum_calc {
    input { ipv4_checksum_list; }
    algorithm : csum16;
    output_width : 16;
}
calculated_field ipv4.hdrChecksum {
    update ipv4_hdrChecksum_calc;
}

parser start {
    extract(ethernet);
    return select(ethernet.etherType) {
        0x0800 : parse_ipv4;
        default : parse_drop;
    }
}

parser parse_ipv4 {
    extract(ipv4);
    return ingress;
}

action nop() {
    no_op();
}

action _drop() {
    drop();
}

action set_nhop(nhop_ipv4, port) {
    modify_field(meta.nhop_ipv4, nhop_ipv4);
    modify_field(standard_metadata.egress_spec, port);
    add_to_field(ipv4.ttl, 0xff);
}

action set_dmac(dmac) {
    modify_field(ethernet.dstAddr, dmac);
}

action rewrite_mac(smac) {
    modify_field(ethernet.srcAddr, smac);
}

table dmac_check {
    reads {
        ethernet.dstAddr : exact;
    }
    actions {
        nop;
        _drop;
    }
    default_action : _drop;
    size : 1024;
}

table ipv4_lpm {
    reads {
        ipv4.dstAddr : lpm;
    }
    actions {
        set_nhop;
        _drop;
    }
    default_action : _drop;
    size : 1024;
}

table forward {
    reads {
        meta.nhop_ipv4 : exact;
    }
    actions {
        set_dmac;
        _drop;
    }
    default_action : _drop;
    size : 1024;
}

table send_frame {
    reads {
        standard_metadata.egress_port : exact;
    }
    actions {
        rewrite_mac;
        _drop;
    }
    default_action : _drop;
    size : 1024;
}

control ingress {
    apply(ipv4_lpm);
    apply(dmac_check);
    apply(forward);
}

control egress {
    apply(send_frame);
}

