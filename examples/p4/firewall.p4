// The paper's firewall (§3.1 #4): filters traffic on IPv4, TCP and UDP
// sources and destinations, forwarding at L2 otherwise.
header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}
header_type ipv4_t {
    fields {
        version : 4;
        ihl : 4;
        diffserv : 8;
        totalLen : 16;
        identification : 16;
        flags : 3;
        fragOffset : 13;
        ttl : 8;
        protocol : 8;
        hdrChecksum : 16;
        srcAddr : 32;
        dstAddr : 32;
    }
}
header_type tcp_t {
    fields {
        srcPort : 16;
        dstPort : 16;
        seqNo : 32;
        ackNo : 32;
        dataOffset : 4;
        res : 4;
        flags : 8;
        window : 16;
        checksum : 16;
        urgentPtr : 16;
    }
}
header_type udp_t {
    fields {
        srcPort : 16;
        dstPort : 16;
        length_ : 16;
        checksum : 16;
    }
}

header ethernet_t ethernet;
header ipv4_t ipv4;
header tcp_t tcp;
header udp_t udp;

parser start {
    extract(ethernet);
    return select(ethernet.etherType) {
        0x0800 : parse_ipv4;
        default : ingress;
    }
}
parser parse_ipv4 {
    extract(ipv4);
    return select(ipv4.protocol) {
        6 : parse_tcp;
        17 : parse_udp;
        default : ingress;
    }
}
parser parse_tcp { extract(tcp); return ingress; }
parser parse_udp { extract(udp); return ingress; }

action nop() { no_op(); }
action forward(port) { modify_field(standard_metadata.egress_spec, port); }
action _drop() { drop(); }
action fw_drop() { drop(); }

table dmac {
    reads { ethernet.dstAddr : exact; }
    actions { forward; _drop; }
    default_action : _drop;
}
table ip_filter {
    reads {
        ipv4.srcAddr : ternary;
        ipv4.dstAddr : ternary;
    }
    actions { fw_drop; nop; }
    default_action : nop;
}
table l4_filter {
    reads {
        tcp : valid;
        tcp.dstPort : ternary;
        udp : valid;
        udp.dstPort : ternary;
    }
    actions { fw_drop; nop; }
    default_action : nop;
}

control ingress {
    apply(dmac);
    if (valid(ipv4)) {
        apply(ip_filter);
        apply(l4_filter);
    }
}
