// §3.4 / Figure 5: virtual networking between virtual devices.
//
// One physical switch, four hosts, each in its own IPv4 network. Eight
// virtual devices are loaded into the persona:
//   r1..r4   — one router per tenant (the tenant's gateway)
//   f1, f2   — inbound firewalls protecting h1 and h2
//   l2_s1, l2_s2 — two L2 switches forming the internal fabric
// Tenants reach each other across virtual links only; traffic to h1/h2
// must pass the owning tenant's firewall.
#include <cstdio>

#include "apps/apps.h"
#include "hp4/controller.h"

using namespace hyper4;

namespace {

hp4::VirtualRule vr(const apps::Rule& r) {
  return hp4::VirtualRule{r.table, r.action, r.keys, r.args, r.priority};
}

std::string host_mac(int i) { return "02:00:00:00:00:0" + std::to_string(i); }
std::string gw_mac(int i) { return "02:aa:00:00:00:0" + std::to_string(i); }
std::string host_ip(int i) { return "10." + std::to_string(i) + ".0.10"; }
std::string subnet(int i) { return "10." + std::to_string(i) + ".0.0"; }

net::Packet tenant_tcp(int src, int dst, std::uint16_t dport) {
  net::EthHeader eth;
  eth.src = net::mac_from_string(host_mac(src));
  eth.dst = net::mac_from_string(gw_mac(src));  // tenants send via gateway
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string(host_ip(src));
  ip.dst = net::ipv4_from_string(host_ip(dst));
  net::TcpHeader t;
  t.src_port = 40000;
  t.dst_port = dport;
  return net::make_ipv4_tcp(eth, ip, t, 64);
}

void report(const char* what, const bm::ProcessResult& r) {
  if (r.outputs.empty()) {
    std::printf("  %-36s -> dropped\n", what);
  } else {
    std::printf("  %-36s -> out port %u after %zu virtual hops\n", what,
                r.outputs[0].port, r.recirculations + 1);
  }
}

}  // namespace

int main() {
  std::puts("== Example 3 (Fig. 5): eight virtual devices, one switch ==\n");

  hp4::Controller ctl;

  // --- load the eight devices ----------------------------------------------------
  hp4::VdevId r[5], f[3], l2a, l2b;
  for (int i = 1; i <= 4; ++i) {
    r[i] = ctl.load("r" + std::to_string(i), apps::ipv4_router(),
                    "tenant" + std::to_string(i));
    ctl.attach_ports(r[i], {1, 2, 3, 4});
  }
  for (int i = 1; i <= 2; ++i) {
    f[i] = ctl.load("f" + std::to_string(i), apps::firewall(),
                    "tenant" + std::to_string(i));
    ctl.attach_ports(f[i], {1, 2, 3, 4});
  }
  l2a = ctl.load("l2_s1", apps::l2_switch(), "operator");
  l2b = ctl.load("l2_s2", apps::l2_switch(), "operator");
  ctl.attach_ports(l2a, {1, 2, 3, 4});
  ctl.attach_ports(l2b, {1, 2, 3, 4});

  // --- virtual links ---------------------------------------------------------------
  // Ingress: each host's traffic starts at its tenant's router.
  for (int i = 1; i <= 4; ++i) ctl.bind(r[i], static_cast<std::uint16_t>(i));
  // Routers emit into the fabric: ports 1-2 via l2_s1, ports 3-4 via l2_s2.
  for (int i = 1; i <= 4; ++i) {
    ctl.dpmu().set_vport_target_vdev(r[i], 1, l2a);
    ctl.dpmu().set_vport_target_vdev(r[i], 2, l2a);
    ctl.dpmu().set_vport_target_vdev(r[i], 3, l2b);
    ctl.dpmu().set_vport_target_vdev(r[i], 4, l2b);
  }
  // The fabric delivers: toward h1/h2 through their firewalls, h3/h4 direct.
  ctl.dpmu().set_vport_target_vdev(l2a, 1, f[1]);
  ctl.dpmu().set_vport_target_vdev(l2a, 2, f[2]);
  // l2_s2's vports for ports 3/4 already default to the physical ports.

  // --- populate virtual tables -------------------------------------------------------
  for (int i = 1; i <= 4; ++i) {
    const std::string owner = "tenant" + std::to_string(i);
    ctl.dpmu().table_add(r[i], vr(apps::router_accept_mac(gw_mac(i))), owner);
    for (int j = 1; j <= 4; ++j) {
      if (j == i) continue;
      ctl.dpmu().table_add(
          r[i],
          vr(apps::router_route(subnet(j), 16, host_ip(j),
                                static_cast<std::uint16_t>(j))),
          owner);
      ctl.dpmu().table_add(r[i], vr(apps::router_arp_entry(host_ip(j), host_mac(j))),
                           owner);
      ctl.dpmu().table_add(
          r[i],
          vr(apps::router_port_mac(static_cast<std::uint16_t>(j), gw_mac(i))),
          owner);
    }
  }
  for (int i = 1; i <= 2; ++i) {
    const std::string owner = "tenant" + std::to_string(i);
    ctl.dpmu().table_add(
        f[i],
        vr(apps::firewall_l2_forward(host_mac(i), static_cast<std::uint16_t>(i))),
        owner);
    // Tenants 1 and 2 refuse telnet from the other tenants.
    ctl.dpmu().table_add(f[i], vr(apps::firewall_block_tcp_dport(23, 10)), owner);
  }
  for (int j = 1; j <= 2; ++j) {
    ctl.dpmu().table_add(
        l2a, vr(apps::l2_forward(host_mac(j), static_cast<std::uint16_t>(j))),
        "operator");
  }
  for (int j = 3; j <= 4; ++j) {
    ctl.dpmu().table_add(
        l2b, vr(apps::l2_forward(host_mac(j), static_cast<std::uint16_t>(j))),
        "operator");
  }

  std::printf("loaded %zu virtual devices\n\n", ctl.dpmu().vdev_ids().size());

  auto& dp = ctl.dataplane();
  std::puts("-- tenant-to-tenant traffic --");
  report("h1 -> h3 (TCP 80)", dp.inject(1, tenant_tcp(1, 3, 80)));
  report("h3 -> h1 (TCP 80, via f1)", dp.inject(3, tenant_tcp(3, 1, 80)));
  report("h3 -> h1 (TCP 23, f1 blocks)", dp.inject(3, tenant_tcp(3, 1, 23)));
  report("h4 -> h2 (TCP 80, via f2)", dp.inject(4, tenant_tcp(4, 2, 80)));
  report("h2 -> h4 (TCP 80)", dp.inject(2, tenant_tcp(2, 4, 80)));
  report("h3 -> h4 (TCP 23, no firewall)", dp.inject(3, tenant_tcp(3, 4, 23)));

  std::puts("\n-- TTL evidence that a tenant router handled each flow --");
  auto res = dp.inject(1, tenant_tcp(1, 3, 80));
  if (!res.outputs.empty()) {
    auto ip = net::read_ipv4(res.outputs[0].packet);
    std::printf("  h1 -> h3 arrived with TTL %u (sent 64)\n", ip->ttl);
  }
  return 0;
}
