// Quickstart: load a P4 program into a HyPer4 persona, populate its tables
// through the DPMU, and watch it forward — then run the same program
// natively and confirm the outputs are identical.
//
//   $ ./quickstart
#include <cstdio>

#include "apps/apps.h"
#include "hp4/controller.h"
#include "hp4/p4_emit.h"

using namespace hyper4;

namespace {

hp4::VirtualRule vr(const apps::Rule& r) {
  return hp4::VirtualRule{r.table, r.action, r.keys, r.args, r.priority};
}

net::Packet sample_packet() {
  net::EthHeader eth;
  eth.src = net::mac_from_string("02:00:00:00:00:01");
  eth.dst = net::mac_from_string("02:00:00:00:00:02");
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string("10.0.0.1");
  ip.dst = net::ipv4_from_string("10.0.0.2");
  net::TcpHeader tcp;
  tcp.src_port = 40000;
  tcp.dst_port = 80;
  return net::make_ipv4_tcp(eth, ip, tcp, 32);
}

}  // namespace

int main() {
  std::puts("== HyPer4 quickstart ==\n");

  // 1. The target program: the paper's layer-2 switch, expressed in the IR.
  p4::Program l2 = apps::l2_switch();
  std::printf("target program '%s': %zu tables, %zu actions\n\n",
              l2.name.c_str(), l2.tables.size(), l2.actions.size());

  // 2. A switch configured with the HyPer4 persona (Fig. 2a). The
  //    Controller generates the persona, instantiates the dataplane and
  //    wires up the DPMU.
  hp4::Controller ctl;
  std::printf("persona loaded: %zu tables on the dataplane\n\n",
              ctl.dataplane().table_names().size());

  // 3. Compile l2_switch for the persona (Fig. 2b). The intermediate
  //    artifact is a command file with load-time tokens.
  hp4::Hp4Artifact art = ctl.compile(l2);
  std::puts("-- intermediate commands file (first lines) --");
  const std::string inter = art.intermediate_text();
  std::size_t shown = 0, pos = 0;
  while (shown < 12 && pos < inter.size()) {
    auto nl = inter.find('\n', pos);
    std::printf("  %s\n", inter.substr(pos, nl - pos).c_str());
    pos = nl + 1;
    ++shown;
  }
  std::puts("  ...\n");

  // 4. Load it as a virtual device, attach ports, steer ingress traffic.
  hp4::VdevId vdev = ctl.load("l2_demo", l2);
  ctl.attach_ports(vdev, {1, 2});
  ctl.bind(vdev, 1);
  ctl.bind(vdev, 2);

  // 5. Populate the *virtual* tables through the DPMU (Fig. 2c): these are
  //    l2_switch's own table names, translated into persona entries.
  ctl.add_rule(vdev, vr(apps::l2_forward("02:00:00:00:00:01", 1)));
  ctl.add_rule(vdev, vr(apps::l2_forward("02:00:00:00:00:02", 2)));
  std::printf("installed %zu virtual entries\n\n",
              ctl.dpmu().entry_count(vdev));

  // 6. Send a packet and compare against the native program.
  bm::Switch native(l2);
  apps::apply_rules(native, {apps::l2_forward("02:00:00:00:00:01", 1),
                             apps::l2_forward("02:00:00:00:00:02", 2)});
  const net::Packet pkt = sample_packet();
  const auto emulated = ctl.dataplane().inject(1, pkt);
  const auto ref = native.inject(1, pkt);

  std::printf("native : port %u, %zu bytes, %zu match stages\n",
              ref.outputs.at(0).port, ref.outputs.at(0).packet.size(),
              ref.match_count());
  std::printf("hyper4 : port %u, %zu bytes, %zu match stages\n",
              emulated.outputs.at(0).port, emulated.outputs.at(0).packet.size(),
              emulated.match_count());
  const bool same = emulated.outputs.at(0).packet == ref.outputs.at(0).packet &&
                    emulated.outputs.at(0).port == ref.outputs.at(0).port;
  std::printf("outputs identical: %s\n", same ? "yes" : "NO");
  return same ? 0 : 1;
}
