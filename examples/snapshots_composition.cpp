// §3.2 / Figure 3: network snapshots and composition.
//
// Three switches s1–s2–s3 between hosts h1 and h2, each running HyPer4.
// Every device logically stores the programs for three configurations:
//   A: s1/s3 = ARP proxy,  s2 = L2 switch
//   B: s1/s3 = L2 switch,  s2 = firewall
//   C: s1/s3 = L2 switch,  s2 = ARP proxy → firewall → router composition
// Switching the active configuration is a table modification on each
// device — program state is never rebuilt.
#include <cstdio>

#include "apps/apps.h"
#include "hp4/controller.h"
#include "sim/network.h"

using namespace hyper4;

namespace {

constexpr const char* kMacH1 = "02:00:00:00:00:01";
constexpr const char* kMacH2 = "02:00:00:00:00:02";
constexpr const char* kMacGwL = "02:aa:00:00:00:01";
constexpr const char* kMacGwR = "02:aa:00:00:00:02";

hp4::VirtualRule vr(const apps::Rule& r) {
  return hp4::VirtualRule{r.table, r.action, r.keys, r.args, r.priority};
}

net::Packet tcp(const char* dmac, const char* dip, std::uint16_t dport) {
  net::EthHeader eth;
  eth.src = net::mac_from_string(kMacH1);
  eth.dst = net::mac_from_string(dmac);
  net::Ipv4Header ip;
  ip.src = net::ipv4_from_string("10.0.0.1");
  ip.dst = net::ipv4_from_string(dip);
  net::TcpHeader t;
  t.src_port = 40000;
  t.dst_port = dport;
  return net::make_ipv4_tcp(eth, ip, t, 64);
}

void report(const char* what, const std::vector<sim::Network::Delivery>& d) {
  if (d.empty()) {
    std::printf("  %-34s -> dropped\n", what);
  } else {
    std::printf("  %-34s -> delivered to %s (%.0f us)\n", what,
                d[0].host.c_str(), d[0].latency_us);
  }
}

}  // namespace

int main() {
  std::puts("== Example 1 (Fig. 3): snapshots and composition ==\n");

  // One controller (= one HyPer4 persona) per physical switch.
  hp4::Controller s1, s2, s3;

  // --- logically store every program on every device -----------------------
  auto setup_edge = [&](hp4::Controller& ctl) {
    auto arp = ctl.load("arp", apps::arp_proxy());
    auto l2 = ctl.load("l2", apps::l2_switch());
    ctl.attach_ports(arp, {1, 2});
    ctl.attach_ports(l2, {1, 2});
    for (const auto& r : {apps::arp_proxy_entry("10.0.0.254", kMacGwL),
                          apps::arp_proxy_l2_forward(kMacH1, 1),
                          apps::arp_proxy_l2_forward(kMacH2, 2),
                          apps::arp_proxy_l2_forward(kMacGwL, 2)}) {
      ctl.add_rule(arp, vr(r));
    }
    for (const auto& r : {apps::l2_forward(kMacH1, 1),
                          apps::l2_forward(kMacH2, 2),
                          apps::l2_forward(kMacGwL, 2),
                          apps::l2_forward(kMacGwR, 1)}) {
      ctl.add_rule(l2, vr(r));
    }
    ctl.define_config("A", {{std::nullopt, arp}});
    ctl.define_config("B", {{std::nullopt, l2}});
    ctl.define_config("C", {{std::nullopt, l2}});
  };
  setup_edge(s1);
  setup_edge(s3);

  {
    auto l2 = s2.load("l2", apps::l2_switch());
    auto fw = s2.load("fw", apps::firewall());
    auto arp = s2.load("c_arp", apps::arp_proxy());
    auto cfw = s2.load("c_fw", apps::firewall());
    auto rtr = s2.load("c_rtr", apps::ipv4_router());
    s2.attach_ports(l2, {1, 2});
    s2.attach_ports(fw, {1, 2});
    // The composition: arp proxy → firewall → router over ports 1,2; the
    // proxy's client-facing side (port 1) exits physically so ARP replies
    // turn around.
    s2.chain({arp, cfw, rtr}, {1, 2});
    s2.dpmu().set_vport_target_phys(arp, 1);

    for (const auto& r : {apps::l2_forward(kMacH1, 1),
                          apps::l2_forward(kMacH2, 2)}) {
      s2.add_rule(l2, vr(r));
    }
    for (const auto& r : {apps::firewall_l2_forward(kMacH1, 1),
                          apps::firewall_l2_forward(kMacH2, 2),
                          apps::firewall_block_tcp_dport(23, 10)}) {
      s2.add_rule(fw, vr(r));
    }
    for (const auto& r : {apps::arp_proxy_entry("10.0.0.254", kMacGwL),
                          apps::arp_proxy_l2_forward(kMacH1, 1),
                          apps::arp_proxy_l2_forward(kMacGwL, 2),
                          apps::arp_proxy_l2_forward(kMacGwR, 1)}) {
      s2.add_rule(arp, vr(r));
    }
    for (const auto& r : {apps::firewall_l2_forward(kMacGwL, 2),
                          apps::firewall_l2_forward(kMacGwR, 1),
                          apps::firewall_block_tcp_dport(23, 10)}) {
      s2.add_rule(cfw, vr(r));
    }
    for (const auto& r : {apps::router_accept_mac(kMacGwL),
                          apps::router_accept_mac(kMacGwR),
                          apps::router_route("10.0.1.0", 24, "10.0.1.2", 2),
                          apps::router_route("10.0.0.0", 24, "10.0.0.1", 1),
                          apps::router_arp_entry("10.0.1.2", kMacH2),
                          apps::router_arp_entry("10.0.0.1", kMacH1),
                          apps::router_port_mac(2, kMacGwR),
                          apps::router_port_mac(1, kMacGwL)}) {
      s2.add_rule(rtr, vr(r));
    }
    s2.define_config("A", {{std::nullopt, l2}});
    s2.define_config("B", {{std::nullopt, fw}});
    // Configuration C rebinds ingress to the head of the chain per port
    // (the chain already bound ports; reuse those bindings).
    s2.define_config("C", {{1, arp}, {2, arp}});
  }

  // --- the physical network ---------------------------------------------------
  sim::Network net;
  net.add_switch("s1", s1.dataplane());
  net.add_switch("s2", s2.dataplane());
  net.add_switch("s3", s3.dataplane());
  net.add_host("h1", "s1", 1);
  net.link("s1", 2, "s2", 1);
  net.link("s2", 2, "s3", 1);
  net.add_host("h2", "s3", 2);

  auto activate = [&](const char* name) {
    s1.activate_config(name);
    s2.activate_config(name);
    s3.activate_config(name);
    std::printf("\n-- configuration %s active (%zu dataplane op(s) on s2) --\n",
                name, s2.last_activation_ops());
  };

  // --- configuration A: ARP proxies at the edges, plain switching ---------------
  activate("A");
  {
    auto req = net::make_arp_request(net::mac_from_string(kMacH1),
                                     net::ipv4_from_string("10.0.0.1"),
                                     net::ipv4_from_string("10.0.0.254"));
    auto d = net.send("h1", req);
    report("ARP for the gateway", d);
    report("TCP h1->h2 port 80", net.send("h1", tcp(kMacH2, "10.0.0.2", 80)));
    report("TCP h1->h2 port 23", net.send("h1", tcp(kMacH2, "10.0.0.2", 23)));
  }

  // --- configuration B: firewall in the middle ----------------------------------
  activate("B");
  report("TCP h1->h2 port 80", net.send("h1", tcp(kMacH2, "10.0.0.2", 80)));
  report("TCP h1->h2 port 23 (blocked)",
         net.send("h1", tcp(kMacH2, "10.0.0.2", 23)));

  // --- configuration C: arp -> firewall -> router composition --------------------
  activate("C");
  report("TCP to gateway, port 80",
         net.send("h1", tcp(kMacGwL, "10.0.1.2", 80)));
  report("TCP to gateway, port 23 (blocked)",
         net.send("h1", tcp(kMacGwL, "10.0.1.2", 23)));

  // And back to B, instantly.
  activate("B");
  report("TCP h1->h2 port 80", net.send("h1", tcp(kMacH2, "10.0.0.2", 80)));
  return 0;
}
