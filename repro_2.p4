// gen_2 (generated P4-14 source)

header_type h0_t {
    fields {
        f0 : 8;
        f1 : 32;
        f2 : 12;
        f3 : 32;
        f4 : 8;
        f5 : 4;
    }
}

header h0_t h0;

parser start {
    extract(h0);
    return ingress;
}

action act1(port, p1) {
    modify_field(standard_metadata.egress_spec, port);
}

action act2(port) {
}

action a_drop() {
}

table t1 {
    reads {
        h0.f5 : exact;
    }
    actions {
        act1;
        act2;
        a_drop;
    }
    default_action : a_drop;
    size : 1024;
}

control ingress {
    apply(t1);
}

control egress {
}

