// Static analysis over compiled artifacts, backing Tables 2 and 3 of the
// paper (shared vs. uniquely referenced persona tables per program pair)
// and the §6.2 space accounting.
#pragma once

#include <set>
#include <string>

#include "hp4/compiler.h"

namespace hyper4::hp4 {

// The persona tables a program's emulation references: the fixed pipeline
// tables it traverses plus every stage/slot table its actions exercise.
std::set<std::string> referenced_tables(const Hp4Artifact& art);

// |A ∩ B| — Table 2's off-diagonal; |A| on the diagonal.
std::size_t shared_table_count(const Hp4Artifact& a, const Hp4Artifact& b);

// |A \ B| — Table 3.
std::size_t unique_table_count(const Hp4Artifact& a, const Hp4Artifact& b);

// §6.2: storage for one match entry against `extracted` is value+mask
// (2 × extracted width) plus the program id; against `ext_meta` likewise.
std::size_t extracted_entry_bits(const PersonaConfig& cfg);
std::size_t meta_entry_bits(const PersonaConfig& cfg);

}  // namespace hyper4::hp4
