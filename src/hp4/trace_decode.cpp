#include "hp4/trace_decode.h"

#include <sstream>

namespace hyper4::hp4 {

namespace {

using obs::EventKind;
using obs::TraceEvent;

// "t<stage>_<ext|meta|stdmeta>" → (stage, source); false otherwise.
bool parse_stage_table(const std::string& name, std::size_t* stage,
                       MatchSource* src) {
  if (name.size() < 3 || name[0] != 't' || !std::isdigit(name[1]))
    return false;
  std::size_t i = 1;
  std::size_t s = 0;
  while (i < name.size() && std::isdigit(name[i]))
    s = s * 10 + static_cast<std::size_t>(name[i++] - '0');
  if (i >= name.size() || name[i] != '_') return false;
  const std::string suffix = name.substr(i + 1);
  if (suffix == "ext") {
    *src = MatchSource::kExtracted;
  } else if (suffix == "meta") {
    *src = MatchSource::kMeta;
  } else if (suffix == "stdmeta") {
    *src = MatchSource::kStdMeta;
  } else {
    return false;
  }
  *stage = s;
  return true;
}

// "s<stage>p<slot>_<setup|tx|noop|mod|addsub|drop|resize>" primitive table?
bool is_prim_table(const std::string& name) {
  if (name.size() < 4 || name[0] != 's' || !std::isdigit(name[1]))
    return false;
  std::size_t i = 1;
  while (i < name.size() && std::isdigit(name[i])) ++i;
  if (i >= name.size() || name[i] != 'p') return false;
  ++i;
  if (i >= name.size() || !std::isdigit(name[i])) return false;
  while (i < name.size() && std::isdigit(name[i])) ++i;
  return i < name.size() && name[i] == '_';
}

// The emulated table for (stage, source) in an artifact, nullptr if none.
const TableSpec* find_table_spec(const Hp4Artifact& art, std::size_t stage,
                                 MatchSource src) {
  for (const auto& t : art.tables) {
    if (t.stage == stage && t.source == src) return &t;
  }
  return nullptr;
}

// The emulated action with persona action_id `id`, nullptr if none.
const ActionSpec* find_action_by_id(const Hp4Artifact& art, std::uint64_t id) {
  if (id == 0) return nullptr;
  for (const auto& [name, spec] : art.actions) {
    if (spec.action_id == id) return &spec;
  }
  return nullptr;
}

const char* itype_str(std::uint64_t itype) {
  switch (itype) {
    case 0: return "normal";
    case 1: return "ingress-clone";
    case 2: return "egress-clone";
    case 4: return "resubmit";
    case 5: return "replication";
    case 6: return "recirculate";
  }
  return "?";
}

}  // namespace

const char* DecodedEvent::kind_name(Kind k) {
  switch (k) {
    case Kind::kInject: return "inject";
    case Kind::kTraversal: return "traversal";
    case Kind::kParseError: return "parse_error";
    case Kind::kTableApply: return "apply";
    case Kind::kWriteback: return "writeback";
    case Kind::kResubmit: return "resubmit";
    case Kind::kRecirculate: return "recirculate";
    case Kind::kClone: return "clone";
    case Kind::kMulticast: return "mcast_copy";
    case Kind::kDrop: return "drop";
    case Kind::kEmit: return "emit";
    case Kind::kMachinery: return "machinery";
  }
  return "?";
}

std::string DecodedEvent::line() const {
  std::ostringstream os;
  os << "pkt" << packet;
  if (!vdev.empty()) os << " [" << vdev << "]";
  os << " " << kind_name(kind);
  switch (kind) {
    case Kind::kInject:
      os << " port=" << port << " bytes=" << bytes;
      break;
    case Kind::kTableApply:
      os << " " << table << (hit ? " hit" : " miss");
      if (!action.empty()) os << " action=" << action;
      if (vhandle) os << " vh=" << vhandle;
      break;
    case Kind::kWriteback:
      os << " bytes=" << bytes;
      break;
    case Kind::kEmit:
      os << " port=" << port << " bytes=" << bytes;
      break;
    case Kind::kMulticast:
      os << " port=" << port;
      break;
    default:
      break;
  }
  if (!detail.empty()) os << " (" << detail << ")";
  return os.str();
}

std::vector<DecodedEvent> DecodedTrace::emulated_view() const {
  std::vector<DecodedEvent> out;
  for (const auto& e : events) {
    if (e.machinery) continue;
    switch (e.kind) {
      case DecodedEvent::Kind::kInject:
      case DecodedEvent::Kind::kTableApply:
      case DecodedEvent::Kind::kClone:
      case DecodedEvent::Kind::kMulticast:
      case DecodedEvent::Kind::kDrop:
      case DecodedEvent::Kind::kEmit:
        out.push_back(e);
        break;
      default:
        break;
    }
  }
  return out;
}

std::string DecodedTrace::serialize(bool with_machinery) const {
  std::ostringstream os;
  if (with_machinery) {
    for (const auto& e : events) os << e.line() << "\n";
  } else {
    for (const auto& e : emulated_view()) os << e.line() << "\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Native decode: identity on tables/actions, shared TM classification.

DecodedTrace decode_native_trace(const obs::PipelineTracer& tracer) {
  DecodedTrace out;
  std::size_t packet = 0;
  bool any = false;
  for (const TraceEvent& e : tracer.events()) {
    DecodedEvent d;
    d.traversal = e.seq;
    d.packet = packet == 0 ? 0 : packet - 1;
    switch (e.kind) {
      case EventKind::kInject:
        d.packet = packet++;
        d.kind = DecodedEvent::Kind::kInject;
        d.port = e.port;
        d.bytes = e.aux;
        break;
      case EventKind::kTraversalStart:
      case EventKind::kEgressStart:
        d.kind = DecodedEvent::Kind::kTraversal;
        d.port = e.port;
        d.detail = std::string(e.kind == EventKind::kEgressStart
                                   ? "egress "
                                   : "ingress ") +
                   itype_str(e.aux);
        break;
      case EventKind::kParseError:
        d.kind = DecodedEvent::Kind::kParseError;
        break;
      case EventKind::kTableApply:
        d.kind = DecodedEvent::Kind::kTableApply;
        d.table = tracer.table_name(e.id);
        d.hit = e.hit();
        // Record the action that ran, including a miss's default action —
        // the persona decodes its compiled miss path the same way, so the
        // two views stay comparable.
        if (e.aux != obs::kNoAction) d.action = tracer.action_name(e.aux);
        if (!e.hit() && !d.action.empty()) d.detail = "default action";
        break;
      case EventKind::kResubmit:
        d.kind = DecodedEvent::Kind::kResubmit;
        break;
      case EventKind::kRecirculate:
        d.kind = DecodedEvent::Kind::kRecirculate;
        break;
      case EventKind::kCloneI2E:
      case EventKind::kCloneE2E:
        d.kind = DecodedEvent::Kind::kClone;
        d.port = e.port;
        break;
      case EventKind::kMulticastCopy:
        d.kind = DecodedEvent::Kind::kMulticast;
        d.port = e.port;
        break;
      case EventKind::kDrop:
        d.kind = DecodedEvent::Kind::kDrop;
        break;
      case EventKind::kEmit:
        d.kind = DecodedEvent::Kind::kEmit;
        d.port = e.port;
        d.bytes = e.aux;
        break;
      default:
        continue;  // extracts / accepts / action internals: skip for native
    }
    if (!any && d.kind != DecodedEvent::Kind::kInject) d.packet = 0;
    any = true;
    out.events.push_back(std::move(d));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Persona decode.

TraceDecoder::TraceDecoder(const Dpmu& dpmu)
    : dpmu_(dpmu), origins_(dpmu.entry_origins()) {}

DecodedTrace TraceDecoder::decode(const obs::PipelineTracer& tracer) const {
  DecodedTrace out;
  std::size_t packet = 0;
  VdevId cur_vdev = 0;  // 0 = not yet attributed

  const auto vdev_label = [&](VdevId id) -> std::string {
    if (id == 0 || !dpmu_.has_vdev(id)) return "";
    return dpmu_.vdev_name(id);
  };

  for (const TraceEvent& e : tracer.events()) {
    DecodedEvent d;
    d.traversal = e.seq;
    d.packet = packet == 0 ? 0 : packet - 1;
    switch (e.kind) {
      case EventKind::kInject:
        d.packet = packet++;
        d.kind = DecodedEvent::Kind::kInject;
        d.port = e.port;
        d.bytes = e.aux;
        cur_vdev = 0;
        break;
      case EventKind::kTraversalStart:
      case EventKind::kEgressStart:
        d.kind = DecodedEvent::Kind::kTraversal;
        d.machinery = true;  // persona traversal count is an artifact of
                             // the ladder/vnet, not of the emulated program
        d.port = e.port;
        d.detail = std::string(e.kind == EventKind::kEgressStart
                                   ? "egress "
                                   : "ingress ") +
                   itype_str(e.aux);
        break;
      case EventKind::kParseError:
        d.kind = DecodedEvent::Kind::kParseError;
        d.machinery = true;
        break;
      case EventKind::kTableApply: {
        const std::string& tname = tracer.table_name(e.id);
        // Entry-origin attribution (also tracks the current vdev across
        // virtual-link recirculations: vparse and stage entries carry the
        // program id of their device).
        const Dpmu::EntryOrigin* origin = nullptr;
        if (e.hit()) {
          const auto oit = origins_.find({tname, e.handle});
          if (oit != origins_.end()) {
            origin = &oit->second;
            cur_vdev = origin->vdev;
          }
        }
        const std::string persona_action =
            e.aux != obs::kNoAction ? tracer.action_name(e.aux) : "";

        std::size_t stage = 0;
        MatchSource src = MatchSource::kExtracted;
        if (parse_stage_table(tname, &stage, &src)) {
          // A persona stage table: an emulated table apply when the device
          // has a table in this (stage, source) slot. A hit that executed
          // a_match_result is an emulated hit; a hit on a static guard /
          // catch-all entry (a_match_miss) is an emulated miss.
          const Hp4Artifact* art =
              cur_vdev && dpmu_.has_vdev(cur_vdev)
                  ? &dpmu_.artifact(cur_vdev)
                  : nullptr;
          const TableSpec* spec =
              art ? find_table_spec(*art, stage, src) : nullptr;
          if (!spec) {
            d.kind = DecodedEvent::Kind::kMachinery;
            d.machinery = true;
            d.detail = tname + (e.hit() ? " hit" : " miss");
            break;
          }
          d.kind = DecodedEvent::Kind::kTableApply;
          d.table = spec->name;
          d.vdev = vdev_label(cur_vdev);
          if (e.hit() && persona_action == kActMatchResult) {
            // Translated entries (vhandle != 0) are emulated hits; static
            // a_match_result entries are the compiled *miss path* — the
            // emulated table's default action running — and decode as a
            // miss, exactly like the native switch records one.
            const bool translated = !origin || origin->vhandle != 0;
            d.hit = translated;
            if (translated && origin) d.vhandle = origin->vhandle;
            if (!translated) d.detail = "default action";
            // The matched entry's args are [match_id, action_id,
            // prim_count, next_table]; action_id resolves the emulated
            // action through the artifact.
            const bm::RuntimeTable& rt = dpmu_.dataplane().table(tname);
            if (rt.has_entry(e.handle)) {
              const auto& args = rt.entry(e.handle).action_args;
              if (args.size() >= 2) {
                const std::uint64_t aid = args[1].low_u64();
                if (const ActionSpec* as = find_action_by_id(*art, aid)) {
                  d.action = as->name;
                } else if (aid == 0) {
                  d.detail = "no-op action";
                }
              }
            }
          } else {
            d.hit = false;
            if (e.hit() && origin && !origin->vhandle)
              d.detail = "guard/catch-all";
          }
          break;
        }

        // Non-stage persona tables: machinery, decoded where informative.
        d.machinery = true;
        d.vdev = vdev_label(cur_vdev);
        if (tname == tbl_eg_writeback() && e.hit() &&
            persona_action.rfind("a_wb_", 0) == 0) {
          d.kind = DecodedEvent::Kind::kWriteback;
          d.bytes = std::strtoull(persona_action.c_str() + 5, nullptr, 10);
          break;
        }
        d.kind = DecodedEvent::Kind::kMachinery;
        if (tname == tbl_setup_a()) {
          if (origin && origin->is_binding) {
            d.detail = "steer -> " + vdev_label(origin->vdev);
          } else {
            d.detail = "setup_a " + persona_action;
          }
        } else if (tname == tbl_vparse()) {
          d.detail = e.hit() ? "vparse path" : "vparse miss";
        } else if (tname == tbl_vnet()) {
          if (persona_action == kActVfwdPhys) {
            d.detail = "vnet: forward phys";
          } else if (persona_action == kActVfwdVdev) {
            d.detail = "vnet: virtual link";
          } else if (persona_action == kActVfwdMcast) {
            d.detail = "vnet: virtual multicast";
          } else if (persona_action == kActVdrop) {
            d.detail = "vnet: drop";
          } else {
            d.detail = "vnet " + persona_action;
          }
        } else if (is_prim_table(tname)) {
          d.detail = tname + " " + persona_action;
        } else {
          d.detail = tname + (e.hit() ? " hit" : " miss");
        }
        break;
      }
      case EventKind::kResubmit:
        d.kind = DecodedEvent::Kind::kResubmit;
        d.machinery = true;  // parse-ladder continuation
        d.detail = "parse ladder";
        break;
      case EventKind::kRecirculate:
        d.kind = DecodedEvent::Kind::kRecirculate;
        d.machinery = true;  // virtual link hop
        d.detail = "virtual link";
        break;
      case EventKind::kCloneI2E:
      case EventKind::kCloneE2E:
        d.kind = DecodedEvent::Kind::kClone;
        d.port = e.port;
        break;
      case EventKind::kMulticastCopy:
        d.kind = DecodedEvent::Kind::kMulticast;
        d.port = e.port;
        break;
      case EventKind::kDrop:
        d.kind = DecodedEvent::Kind::kDrop;
        d.vdev = vdev_label(cur_vdev);
        break;
      case EventKind::kEmit:
        d.kind = DecodedEvent::Kind::kEmit;
        d.port = e.port;
        d.bytes = e.aux;
        d.vdev = vdev_label(cur_vdev);
        break;
      default:
        continue;  // extracts / accepts / persona action internals
    }
    out.events.push_back(std::move(d));
  }
  return out;
}

// ---------------------------------------------------------------------------
// First-divergence report.

namespace {

bool events_match(const DecodedEvent& a, const DecodedEvent& b) {
  if (a.kind != b.kind || a.packet != b.packet) return false;
  switch (a.kind) {
    case DecodedEvent::Kind::kTableApply:
      return a.table == b.table && a.hit == b.hit && a.action == b.action;
    case DecodedEvent::Kind::kEmit:
      return a.port == b.port && a.bytes == b.bytes;
    case DecodedEvent::Kind::kMulticast:
    case DecodedEvent::Kind::kClone:
      return a.port == b.port;
    case DecodedEvent::Kind::kInject:
      return a.port == b.port && a.bytes == b.bytes;
    default:
      return true;
  }
}

void context_lines(std::ostringstream& os, const char* label,
                   const std::vector<DecodedEvent>& v, std::size_t upto) {
  os << "  " << label << " context:\n";
  const std::size_t start = upto > 5 ? upto - 5 : 0;
  for (std::size_t i = start; i < upto && i < v.size(); ++i)
    os << "    " << v[i].line() << "\n";
}

}  // namespace

std::string first_divergence_report(const DecodedTrace& native,
                                    const DecodedTrace& persona) {
  const std::vector<DecodedEvent> nv = native.emulated_view();
  const std::vector<DecodedEvent> pv = persona.emulated_view();
  std::size_t i = 0, j = 0;
  while (i < nv.size() || j < pv.size()) {
    if (i < nv.size() && j < pv.size() && events_match(nv[i], pv[j])) {
      ++i;
      ++j;
      continue;
    }
    // Structural tolerance: an unmatched table-apply *miss* on either side
    // is a control-flow representation difference (the persona's guard
    // entries materialize skips the native control graph never visits, and
    // vice versa), not behaviour.
    if (j < pv.size() && pv[j].kind == DecodedEvent::Kind::kTableApply &&
        !pv[j].hit &&
        !(i < nv.size() && nv[i].kind == DecodedEvent::Kind::kTableApply &&
          nv[i].table == pv[j].table)) {
      ++j;
      continue;
    }
    if (i < nv.size() && nv[i].kind == DecodedEvent::Kind::kTableApply &&
        !nv[i].hit &&
        !(j < pv.size() && pv[j].kind == DecodedEvent::Kind::kTableApply &&
          pv[j].table == nv[i].table)) {
      ++i;
      continue;
    }
    // Divergence.
    std::ostringstream os;
    const std::size_t pkt =
        i < nv.size() ? nv[i].packet : (j < pv.size() ? pv[j].packet : 0);
    os << "first divergence at packet " << pkt << ":\n";
    os << "  native:  "
       << (i < nv.size() ? nv[i].line() : std::string("<no more events>"))
       << "\n";
    os << "  persona: "
       << (j < pv.size() ? pv[j].line() : std::string("<no more events>"))
       << "\n";
    context_lines(os, "native", nv, i);
    context_lines(os, "persona", pv, j);
    return os.str();
  }
  return "";
}

}  // namespace hyper4::hp4
