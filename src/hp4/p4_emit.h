// P4-14 source emission from the IR.
//
// Renders any p4::Program as P4-14 source text. Its primary role is the
// paper's Figure 7: the persona generator's output is emitted as source and
// its line count measured across (stages × primitives) configurations; it
// also makes generated programs inspectable.
#pragma once

#include <string>

#include "p4/ir.h"

namespace hyper4::hp4 {

// Full program text.
std::string emit_p4(const p4::Program& prog);

// Non-empty, non-comment line count of `source` (the Fig. 7 metric).
std::size_t count_loc(const std::string& source);

// Source text of only the pieces that implement one primitive behaviour in
// a persona program: tables/actions whose names contain `needle` (used for
// Fig. 7(b)/(c): drop-support LoC and modify_field-support LoC).
std::string emit_p4_subset(const p4::Program& prog, const std::string& needle);

}  // namespace hyper4::hp4
