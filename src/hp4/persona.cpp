#include "hp4/persona.h"

#include <sstream>

#include "p4/builder.h"
#include "util/error.h"

namespace hyper4::hp4 {

using p4::ActionArg;
using p4::Const;
using p4::Expr;
using p4::ExprOp;
using p4::F;
using p4::Param;
using p4::Primitive;
using p4::ProgramBuilder;
using util::BitVec;
using util::ConfigError;

// ---------------------------------------------------------------------------
// Config

std::vector<std::size_t> PersonaConfig::parse_ladder() const {
  std::vector<std::size_t> v;
  for (std::size_t n = parse_default_bytes; n <= parse_max_bytes;
       n += parse_step_bytes) {
    v.push_back(n);
    if (parse_step_bytes == 0) break;
  }
  return v;
}

std::vector<std::size_t> PersonaConfig::writeback_ladder() const {
  // Resize primitives move the write-back size off the parse ladder in
  // multiples of writeback_step_bytes, and a removal can shrink the parsed
  // region below the parse floor — so the ladder starts at the remainder
  // class of the floor, not at the floor itself.
  if (writeback_step_bytes == 0) return {parse_default_bytes};
  std::vector<std::size_t> v;
  for (std::size_t n = parse_default_bytes % writeback_step_bytes;
       n <= parse_max_bytes; n += writeback_step_bytes) {
    v.push_back(n);
  }
  return v;
}

void PersonaConfig::validate() const {
  if (num_stages == 0 || num_stages > 32)
    throw ConfigError("persona: num_stages must be in [1, 32]");
  if (max_primitives == 0 || max_primitives > 32)
    throw ConfigError("persona: max_primitives must be in [1, 32]");
  if (parse_default_bytes == 0 || parse_default_bytes > parse_max_bytes)
    throw ConfigError("persona: parse byte ladder is inconsistent");
  if (parse_step_bytes == 0 && parse_max_bytes != parse_default_bytes)
    throw ConfigError("persona: zero parse step with max > default");
  if (writeback_step_bytes == 0)
    throw ConfigError("persona: writeback step must be positive");
  if (extracted_bits < parse_max_bytes * 8)
    throw ConfigError("persona: extracted field narrower than parse maximum");
  if (meta_bits == 0) throw ConfigError("persona: meta_bits must be positive");
}

// ---------------------------------------------------------------------------
// Names

const char* prim_type_name(PrimType t) {
  switch (t) {
    case PrimType::kNoop: return "noop";
    case PrimType::kMod: return "mod";
    case PrimType::kAddSub: return "addsub";
    case PrimType::kDrop: return "drop";
    case PrimType::kResize: return "resize";
  }
  return "?";
}

std::string tbl_setup_a() { return "tbl_setup_a"; }
std::string tbl_setup_b() { return "tbl_setup_b"; }
std::string tbl_vparse() { return "tbl_vparse"; }
std::string tbl_stage_match(std::size_t stage, MatchSource m) {
  const char* src = m == MatchSource::kExtracted  ? "ext"
                    : m == MatchSource::kMeta     ? "meta"
                                                  : "stdmeta";
  return "t" + std::to_string(stage) + "_" + src;
}
std::string tbl_prim_setup(std::size_t stage, std::size_t slot) {
  return "s" + std::to_string(stage) + "p" + std::to_string(slot) + "_setup";
}
std::string tbl_prim_exec(std::size_t stage, std::size_t slot, PrimType t) {
  return "s" + std::to_string(stage) + "p" + std::to_string(slot) + "_" +
         prim_type_name(t);
}
std::string tbl_prim_tx(std::size_t stage, std::size_t slot) {
  return "s" + std::to_string(stage) + "p" + std::to_string(slot) + "_tx";
}
std::string tbl_vnet() { return "tbl_vnet"; }
std::string tbl_meter() { return "tbl_meter"; }
std::string tbl_meter_drop() { return "tbl_meter_drop"; }
std::string tbl_eg_csum() { return "tbl_eg_csum"; }
std::string tbl_eg_writeback() { return "tbl_eg_writeback"; }

// ---------------------------------------------------------------------------
// Generator

PersonaGenerator::PersonaGenerator(PersonaConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.validate();
}

namespace {

// Decompose [lo, 2^width) into (value, mask) pairs for masked select cases
// (classic TCAM range expansion), used for the packet-length guards in the
// parse ladder.
std::vector<std::pair<std::uint64_t, std::uint64_t>> ge_ranges(
    std::uint64_t lo, std::size_t width) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  const std::uint64_t limit = std::uint64_t{1} << width;
  std::uint64_t v = lo;
  while (v < limit) {
    std::size_t k = 0;
    while (k < width && (v & ((std::uint64_t{1} << (k + 1)) - 1)) == 0 &&
           v + (std::uint64_t{2} << k) <= limit) {
      ++k;
    }
    const std::uint64_t block = std::uint64_t{1} << k;
    const std::uint64_t mask = (limit - 1) & ~(block - 1);
    out.emplace_back(v, mask);
    v += block;
  }
  return out;
}

std::string pr_elem(std::size_t i) {
  return kPrStack + "[" + std::to_string(i) + "]";
}

}  // namespace

p4::Program PersonaGenerator::generate() const {
  const std::size_t E = cfg_.extracted_bits;
  const std::size_t M = cfg_.meta_bits;
  const auto ladder = cfg_.parse_ladder();
  const auto wb_ladder = cfg_.writeback_ladder();

  ProgramBuilder b("hyper4_persona");

  // --- headers and metadata --------------------------------------------------
  b.header_type("hp4_byte_t", {{"b", 8}});
  b.header_stack("hp4_byte_t", kPrStack, cfg_.parse_max_bytes);
  b.header_type("hp4_meta_t",
                {{kFProgram, kProgramBits},
                 {kFNumBytes, 8},
                 {kFBytesExtracted, 8},
                 {kFExtracted, E},
                 {kFExtMeta, M},
                 {kFValidity, kValidityBits},
                 {kFNextTable, kNextTableBits},
                 {kFMatchId, kMatchIdBits},
                 {kFActionId, kActionIdBits},
                 {kFPrimCount, 8},
                 {"prim_idx", 8},
                 {kFPrimType, 8},
                 {kFVirtEgress, kVPortBits},
                 {kFVirtIngress, kVPortBits},
                 {kFResize, 8},
                 {kFCsumOffset, 8},
                 {"meter_color", 8},
                 {kFTmp, E},
                 {"tmp2", E}});
  b.metadata("hp4_meta_t", kMeta);

  b.field_list(kFlResubmit, {{kMeta, kFProgram},
                             {kMeta, kFNumBytes},
                             {kMeta, kFVirtIngress}});
  b.field_list(kFlRecirculate, {{kMeta, kFProgram},
                                {kMeta, kFNumBytes},
                                {kMeta, kFVirtIngress}});

  // --- parser: guarded extraction ladder ---------------------------------------
  {
    auto add_extract_state = [&](const std::string& name, std::size_t from,
                                 std::size_t to, std::size_t ladder_pos) {
      auto ps = b.parser(name);
      for (std::size_t i = from; i < to; ++i) ps.extract(kPrStack);
      ps.set_meta({kMeta, kFBytesExtracted}, Expr::constant(8, to));
      if (ladder_pos + 1 >= ladder.size()) {
        ps.to_ingress();
        return;
      }
      // Continue the chain when numbytes asks for more than `to` bytes.
      ps.select_field(kMeta, kFNumBytes);
      const std::string next_guard = "g" + std::to_string(ladder[ladder_pos + 1]);
      for (std::size_t j = ladder_pos + 1; j < ladder.size(); ++j) {
        ps.when(BitVec(8, ladder[j]), next_guard);
      }
      ps.otherwise(p4::kParserAccept);
    };

    add_extract_state("start", 0, ladder[0], 0);
    for (std::size_t j = 1; j < ladder.size(); ++j) {
      const std::size_t target = ladder[j];
      // Guard: only extract further when the packet actually has the bytes.
      auto g = b.parser("g" + std::to_string(target));
      g.select_field(p4::kStandardMetadata, p4::kFieldPacketLength);
      for (auto [v, m] : ge_ranges(target, 16)) {
        g.when_masked(BitVec(16, v), BitVec(16, m), "e" + std::to_string(target));
      }
      g.otherwise(p4::kParserAccept);
      add_extract_state("e" + std::to_string(target), ladder[j - 1], target, j);
    }
  }

  // --- actions -------------------------------------------------------------------
  const p4::FieldRef fExtracted{kMeta, kFExtracted};
  const p4::FieldRef fMetaW{kMeta, kFExtMeta};
  const p4::FieldRef fTmp{kMeta, kFTmp};
  const p4::FieldRef fTmp2{kMeta, "tmp2"};
  const p4::FieldRef fVEgress{kMeta, kFVirtEgress};
  const p4::FieldRef fVIngress{kMeta, kFVirtIngress};
  const p4::FieldRef fProgram{kMeta, kFProgram};

  b.action(kActSetupSkip).no_op();
  b.action(kActSetProgram, {{"program", kProgramBits},
                            {"numbytes", 8},
                            {"vingress", kVPortBits}})
      .modify_field(fProgram, Param(0))
      .modify_field({kMeta, kFNumBytes}, Param(1))
      .modify_field(fVIngress, Param(2));
  b.action(kActSetProgramResub, {{"program", kProgramBits},
                                 {"numbytes", 8},
                                 {"vingress", kVPortBits}})
      .modify_field(fProgram, Param(0))
      .modify_field({kMeta, kFNumBytes}, Param(1))
      .modify_field(fVIngress, Param(2))
      .resubmit(kFlResubmit);

  // Byte concatenation: extracted = pr[0] ... pr[n-1], left-justified so a
  // field at byte offset o and width w sits at bits [E-8o-w, E-8o).
  for (std::size_t n : ladder) {
    auto a = b.action(act_concat(n));
    for (std::size_t i = 0; i < n; ++i) {
      a.prim(Primitive::kShiftLeft,
             {ActionArg::of_field(fExtracted), ActionArg::of_field(fExtracted),
              Const(16, 8)});
      a.prim(Primitive::kBitOr,
             {ActionArg::of_field(fExtracted), ActionArg::of_field(fExtracted),
              F(pr_elem(i), "b")});
    }
    a.prim(Primitive::kShiftLeft,
           {ActionArg::of_field(fExtracted), ActionArg::of_field(fExtracted),
            Const(16, E - 8 * n)});
    a.modify_field({kMeta, kFResize}, F(kMeta, kFBytesExtracted));
  }

  b.action(kActSetParse, {{"validity", kValidityBits},
                          {"next_table", kNextTableBits},
                          {"csum_offset", 8}})
      .modify_field({kMeta, kFValidity}, Param(0))
      .modify_field({kMeta, kFNextTable}, Param(1))
      .modify_field({kMeta, kFCsumOffset}, Param(2));
  b.action(kActParseMiss)
      .modify_field({kMeta, kFNextTable}, Const(kNextTableBits, 0))
      .modify_field(fVEgress, Const(kVPortBits, kVirtDrop));

  b.action(kActMatchResult, {{"match_id", kMatchIdBits},
                             {"action_id", kActionIdBits},
                             {"prim_count", 8},
                             {"next_table", kNextTableBits}})
      .modify_field({kMeta, kFMatchId}, Param(0))
      .modify_field({kMeta, kFActionId}, Param(1))
      .modify_field({kMeta, kFPrimCount}, Param(2))
      .modify_field({kMeta, kFNextTable}, Param(3))
      .modify_field({kMeta, "prim_idx"}, Const(8, 1));
  b.action(kActMatchMiss)
      .modify_field({kMeta, kFNextTable}, Const(kNextTableBits, 0))
      .modify_field({kMeta, kFPrimCount}, Const(8, 0));

  b.action(kActLoadPrim, {{"prim_type", 8}})
      .modify_field({kMeta, kFPrimType}, Param(0));

  // modify_field emulation variants. Field-to-field moves stage through the
  // tmp scratch field: tmp = ((src & smask) >> sshift) << dshift, then a
  // masked modify_field into the destination.
  b.action(kActModExtConst, {{"value", E}, {"mask", E}})
      .modify_field_masked(fExtracted, Param(0), Param(1));
  auto mod_via_tmp = [&](const std::string& name, const p4::FieldRef& src,
                         std::size_t src_w, const p4::FieldRef& dst,
                         std::size_t dst_w) {
    b.action(name,
             {{"smask", src_w}, {"sshift", 16}, {"dshift", 16}, {"dmask", dst_w}})
        .bit_op(Primitive::kBitAnd, fTmp, ActionArg::of_field(src), Param(0))
        .bit_op(Primitive::kShiftRight, fTmp, ActionArg::of_field(fTmp), Param(1))
        .bit_op(Primitive::kShiftLeft, fTmp, ActionArg::of_field(fTmp), Param(2))
        .modify_field_masked(dst, ActionArg::of_field(fTmp), Param(3));
  };
  mod_via_tmp(kActModExtExt, fExtracted, E, fExtracted, E);
  mod_via_tmp(kActModExtMeta, fMetaW, M, fExtracted, E);
  mod_via_tmp(kActModMetaMeta, fMetaW, M, fMetaW, M);
  mod_via_tmp(kActModMetaExt, fExtracted, E, fMetaW, M);
  b.action(kActModMetaConst, {{"value", M}, {"mask", M}})
      .modify_field_masked(fMetaW, Param(0), Param(1));
  b.action(kActModMetaVingress, {{"dshift", 16}, {"dmask", M}})
      .modify_field(fTmp, F(kMeta, kFVirtIngress))
      .bit_op(Primitive::kShiftLeft, fTmp, ActionArg::of_field(fTmp), Param(0))
      .modify_field_masked(fMetaW, ActionArg::of_field(fTmp), Param(1));
  b.action(kActModVegressConst, {{"vport", kVPortBits}})
      .modify_field(fVEgress, Param(0));
  b.action(kActModVegressMeta, {{"smask", M}, {"sshift", 16}})
      .bit_op(Primitive::kBitAnd, fTmp, ActionArg::of_field(fMetaW), Param(0))
      .bit_op(Primitive::kShiftRight, fTmp, ActionArg::of_field(fTmp), Param(1))
      .modify_field(fVEgress, F(kMeta, kFTmp));
  b.action(kActModVegressVingress)
      .modify_field(fVEgress, F(kMeta, kFVirtIngress));

  // add_to_field emulation: the destination slice is isolated, adjusted,
  // and written back under mask so the carry cannot leak into neighbours.
  auto add_via_tmp = [&](const std::string& name, const p4::FieldRef& dst,
                         std::size_t dst_w) {
    b.action(name, {{"delta", dst_w}, {"mask", dst_w}, {"shift", 16}})
        .bit_op(Primitive::kBitAnd, fTmp, ActionArg::of_field(dst), Param(1))
        .bit_op(Primitive::kShiftRight, fTmp, ActionArg::of_field(fTmp), Param(2))
        .prim(Primitive::kAdd,
              {ActionArg::of_field(fTmp), ActionArg::of_field(fTmp), Param(0)})
        .bit_op(Primitive::kShiftLeft, fTmp, ActionArg::of_field(fTmp), Param(2))
        .modify_field_masked(dst, ActionArg::of_field(fTmp), Param(1));
  };
  add_via_tmp(kActAddExt, fExtracted, E);
  add_via_tmp(kActAddMeta, fMetaW, M);

  b.action(kActVirtDrop).modify_field(fVEgress, Const(kVPortBits, kVirtDrop));
  b.action(kActExecNoop).no_op();

  b.action(kActResizeSet, {{"n", 8}}).modify_field({kMeta, kFResize}, Param(0));
  b.action(kActResizeInsert,
           {{"nbytes", 8}, {"himask", E}, {"lomask", E}, {"shift", 16}})
      .bit_op(Primitive::kBitAnd, fTmp, ActionArg::of_field(fExtracted), Param(2))
      .bit_op(Primitive::kShiftRight, fTmp, ActionArg::of_field(fTmp), Param(3))
      .bit_op(Primitive::kBitAnd, fExtracted, ActionArg::of_field(fExtracted),
              Param(1))
      .bit_op(Primitive::kBitOr, fExtracted, ActionArg::of_field(fExtracted),
              F(kMeta, kFTmp))
      .add_to_field({kMeta, kFResize}, Param(0));
  b.action(kActResizeRemove,
           {{"nbytes_delta", 8}, {"himask", E}, {"lomask", E}, {"shift", 16}})
      .bit_op(Primitive::kBitAnd, fTmp, ActionArg::of_field(fExtracted), Param(2))
      .bit_op(Primitive::kShiftLeft, fTmp, ActionArg::of_field(fTmp), Param(3))
      .bit_op(Primitive::kBitAnd, fExtracted, ActionArg::of_field(fExtracted),
              Param(1))
      .bit_op(Primitive::kBitOr, fExtracted, ActionArg::of_field(fExtracted),
              F(kMeta, kFTmp))
      .add_to_field({kMeta, kFResize}, Param(0));

  b.action(kActTx).add_to_field({kMeta, "prim_idx"}, Const(8, 1));

  if (cfg_.ingress_meter) {
    b.meter(kIngressMeter, cfg_.meter_cells, cfg_.meter_rate_pps,
            cfg_.meter_burst);
    b.action(kActMeterCheck)
        .prim(Primitive::kExecuteMeter,
              {ActionArg::named(kIngressMeter), F(kMeta, kFProgram),
               ActionArg::of_field({kMeta, "meter_color"})});
    // Punished packets lose their program binding: every per-program table
    // misses and the vnet default drops them.
    b.action(kActMeterPunish)
        .modify_field(fProgram, Const(kProgramBits, 0))
        .drop();
  }

  b.action(kActVfwdPhys, {{"port", p4::kPortWidth}})
      .modify_field({p4::kStandardMetadata, p4::kFieldEgressSpec}, Param(0));
  b.action(kActVfwdVdev, {{"program", kProgramBits},
                          {"numbytes", 8},
                          {"vingress", kVPortBits}})
      .modify_field(fProgram, Param(0))
      .modify_field({kMeta, kFNumBytes}, Param(1))
      .modify_field(fVIngress, Param(2))
      .recirculate(kFlRecirculate);
  b.action(kActVfwdMcast, {{"group", 16}})
      .modify_field({p4::kStandardMetadata, p4::kFieldMcastGrp}, Param(0));
  b.action(kActVdrop).drop();

  // IPv4 checksum fix-up (the paper's protocol-specific "cheat"): a
  // generated action per supported byte offset computes the RFC 1071 sum
  // over the 9 non-checksum words of the header with shift/and/add
  // primitives and splices it back into `extracted`.
  for (std::size_t off : cfg_.ipv4_csum_offsets) {
    if ((off + 20) * 8 > E) continue;
    auto a = b.action(act_ipv4_csum(off));
    a.modify_field(fTmp2, Const(E, 0));
    for (std::size_t w = 0; w < 10; ++w) {
      if (w == 5) continue;  // the checksum word itself
      const std::size_t lsb = E - 8 * off - 16 * (w + 1);
      a.prim(Primitive::kBitAnd,
             {ActionArg::of_field(fTmp), ActionArg::of_field(fExtracted),
              Const(BitVec::mask_range(E, lsb, 16))});
      a.prim(Primitive::kShiftRight,
             {ActionArg::of_field(fTmp), ActionArg::of_field(fTmp),
              Const(16, lsb)});
      a.prim(Primitive::kAdd,
             {ActionArg::of_field(fTmp2), ActionArg::of_field(fTmp2),
              F(kMeta, kFTmp)});
    }
    for (int fold = 0; fold < 2; ++fold) {
      a.prim(Primitive::kShiftRight,
             {ActionArg::of_field(fTmp), ActionArg::of_field(fTmp2),
              Const(16, 16)});
      a.prim(Primitive::kBitAnd,
             {ActionArg::of_field(fTmp2), ActionArg::of_field(fTmp2),
              Const(BitVec(E, 0xffff))});
      a.prim(Primitive::kAdd,
             {ActionArg::of_field(fTmp2), ActionArg::of_field(fTmp2),
              F(kMeta, kFTmp)});
    }
    // One more halving in case the second fold carried, then complement.
    a.prim(Primitive::kShiftRight,
           {ActionArg::of_field(fTmp), ActionArg::of_field(fTmp2),
            Const(16, 16)});
    a.prim(Primitive::kAdd,
           {ActionArg::of_field(fTmp2), ActionArg::of_field(fTmp2),
            F(kMeta, kFTmp)});
    a.prim(Primitive::kBitXor,
           {ActionArg::of_field(fTmp2), ActionArg::of_field(fTmp2),
            Const(BitVec(E, 0xffff))});
    a.prim(Primitive::kBitAnd,
           {ActionArg::of_field(fTmp2), ActionArg::of_field(fTmp2),
            Const(BitVec(E, 0xffff))});
    const std::size_t csum_lsb = E - 8 * off - 16 * 6;
    a.prim(Primitive::kShiftLeft,
           {ActionArg::of_field(fTmp2), ActionArg::of_field(fTmp2),
            Const(16, csum_lsb)});
    a.modify_field_masked(fExtracted, ActionArg::of_field(fTmp2),
                          Const(BitVec::mask_range(E, csum_lsb, 16)));
  }

  // Write-back (§4.4): restore the pr stack from `extracted` at the target
  // size — one generated action per supported byte count.
  for (std::size_t n : wb_ladder) {
    auto a = b.action(act_writeback(n));
    for (std::size_t i = 0; i < n; ++i) a.add_header(pr_elem(i));
    for (std::size_t i = n; i < cfg_.parse_max_bytes; ++i)
      a.remove_header(pr_elem(i));
    a.bit_op(Primitive::kShiftRight, fTmp, ActionArg::of_field(fExtracted),
             Const(16, E - 8 * n));
    for (std::size_t i = n; i-- > 0;) {
      a.modify_field({pr_elem(i), "b"}, F(kMeta, kFTmp));
      a.bit_op(Primitive::kShiftRight, fTmp, ActionArg::of_field(fTmp),
               Const(16, 8));
    }
  }

  // --- tables ------------------------------------------------------------------
  b.table(tbl_setup_a())
      .key_ternary(fProgram)
      .key_ternary({p4::kStandardMetadata, p4::kFieldIngressPort})
      .action_ref(kActSetProgram)
      .action_ref(kActSetProgramResub)
      .action_ref(kActSetupSkip)
      .default_action(kActSetupSkip)
      .size(4096);
  {
    auto t = b.table(tbl_setup_b())
                 .key_exact({kMeta, kFBytesExtracted})
                 .default_action(kActSetupSkip)
                 .size(64);
    t.action_ref(kActSetupSkip);
    for (std::size_t n : ladder) t.action_ref(act_concat(n));
  }
  b.table(tbl_vparse())
      .key_exact(fProgram)
      .key_ternary(fExtracted)
      .action_ref(kActSetParse)
      .action_ref(kActParseMiss)
      .default_action(kActParseMiss)
      .size(4096);

  for (std::size_t s = 1; s <= cfg_.num_stages; ++s) {
    b.table(tbl_stage_match(s, MatchSource::kExtracted))
        .key_exact(fProgram)
        .key_ternary({kMeta, kFValidity})
        .key_ternary(fExtracted)
        .action_ref(kActMatchResult)
        .action_ref(kActMatchMiss)
        .default_action(kActMatchMiss)
        .size(8192);
    b.table(tbl_stage_match(s, MatchSource::kMeta))
        .key_exact(fProgram)
        .key_ternary({kMeta, kFValidity})
        .key_ternary(fMetaW)
        .action_ref(kActMatchResult)
        .action_ref(kActMatchMiss)
        .default_action(kActMatchMiss)
        .size(8192);
    b.table(tbl_stage_match(s, MatchSource::kStdMeta))
        .key_exact(fProgram)
        .key_ternary(fVIngress)
        .key_ternary(fVEgress)
        .action_ref(kActMatchResult)
        .action_ref(kActMatchMiss)
        .default_action(kActMatchMiss)
        .size(8192);

    for (std::size_t p = 1; p <= cfg_.max_primitives; ++p) {
      b.table(tbl_prim_setup(s, p))
          .key_exact(fProgram)
          .key_exact({kMeta, kFActionId})
          .action_ref(kActLoadPrim)
          .default_action(
              kActLoadPrim,
              {BitVec(8, static_cast<std::uint64_t>(PrimType::kNoop))})
          .size(4096);
      b.table(tbl_prim_exec(s, p, PrimType::kMod))
          .key_exact(fProgram)
          .key_exact({kMeta, kFActionId})
          .key_ternary({kMeta, kFMatchId})
          .action_ref(kActModExtConst)
          .action_ref(kActModExtExt)
          .action_ref(kActModExtMeta)
          .action_ref(kActModMetaConst)
          .action_ref(kActModMetaMeta)
          .action_ref(kActModMetaExt)
          .action_ref(kActModMetaVingress)
          .action_ref(kActModVegressConst)
          .action_ref(kActModVegressMeta)
          .action_ref(kActModVegressVingress)
          .action_ref(kActExecNoop)
          .default_action(kActExecNoop)
          .size(8192);
      b.table(tbl_prim_exec(s, p, PrimType::kAddSub))
          .key_exact(fProgram)
          .key_exact({kMeta, kFActionId})
          .key_ternary({kMeta, kFMatchId})
          .action_ref(kActAddExt)
          .action_ref(kActAddMeta)
          .action_ref(kActExecNoop)
          .default_action(kActExecNoop)
          .size(8192);
      b.table(tbl_prim_exec(s, p, PrimType::kDrop))
          .key_exact(fProgram)
          .action_ref(kActVirtDrop)
          .default_action(kActVirtDrop)
          .size(64);
      b.table(tbl_prim_exec(s, p, PrimType::kNoop))
          .key_exact(fProgram)
          .action_ref(kActExecNoop)
          .default_action(kActExecNoop)
          .size(64);
      b.table(tbl_prim_exec(s, p, PrimType::kResize))
          .key_exact(fProgram)
          .key_exact({kMeta, kFActionId})
          .key_ternary({kMeta, kFMatchId})
          .action_ref(kActResizeSet)
          .action_ref(kActResizeInsert)
          .action_ref(kActResizeRemove)
          .action_ref(kActExecNoop)
          .default_action(kActExecNoop)
          .size(4096);
      b.table(tbl_prim_tx(s, p))
          .key_exact(fProgram)
          .action_ref(kActTx)
          .default_action(kActTx)
          .size(64);
    }
  }

  if (cfg_.ingress_meter) {
    b.table(tbl_meter())
        .key_exact(fProgram)
        .action_ref(kActMeterCheck)
        .default_action(kActMeterCheck)
        .size(64);
    b.table(tbl_meter_drop())
        .key_exact(fProgram)
        .action_ref(kActMeterPunish)
        .default_action(kActMeterPunish)
        .size(64);
  }
  b.table(tbl_vnet())
      .key_exact(fProgram)
      .key_ternary(fVEgress)
      .action_ref(kActVfwdPhys)
      .action_ref(kActVfwdVdev)
      .action_ref(kActVfwdMcast)
      .action_ref(kActVdrop)
      .default_action(kActVdrop)
      .size(4096);
  {
    auto t = b.table(tbl_eg_csum())
                 .key_exact({kMeta, kFCsumOffset})
                 .default_action(kActExecNoop)
                 .size(64);
    t.action_ref(kActExecNoop);
    for (std::size_t off : cfg_.ipv4_csum_offsets) {
      if ((off + 20) * 8 > E) continue;
      t.action_ref(act_ipv4_csum(off));
    }
  }
  {
    auto t = b.table(tbl_eg_writeback())
                 .key_exact({kMeta, kFResize})
                 .default_action(act_writeback(cfg_.parse_default_bytes))
                 .size(256);
    for (std::size_t n : wb_ladder) t.action_ref(act_writeback(n));
  }

  // --- ingress control graph ---------------------------------------------------
  {
    auto ing = b.ingress();

    struct Slot {
      std::size_t guard, setup, d_mod, d_add, d_drop, d_resize;
      std::size_t e_mod, e_add, e_drop, e_resize, e_noop, tx;
    };
    struct Stage {
      std::size_t sel_ext, sel_meta, sel_std;
      std::size_t n_ext, n_meta, n_std;
      std::vector<Slot> slots;
    };

    auto eq = [&](const std::string& field, std::size_t width,
                  std::uint64_t value) {
      return Expr::binary(ExprOp::kEq, Expr::field(kMeta, field),
                          Expr::constant(width, value));
    };

    const auto nSetupA = ing.apply(tbl_setup_a());
    const auto nResubIf = ing.branch(Expr::binary(
        ExprOp::kLAnd,
        Expr::binary(ExprOp::kGt, Expr::field(kMeta, kFNumBytes),
                     Expr::field(kMeta, kFBytesExtracted)),
        Expr::binary(ExprOp::kEq,
                     Expr::field(p4::kStandardMetadata, p4::kFieldInstanceType),
                     Expr::constant(8, 0))));
    const auto nSetupB = ing.apply(tbl_setup_b());
    const auto nVparse = ing.apply(tbl_vparse());

    // Create all stage nodes first, wire afterwards.
    std::vector<Stage> stages;
    for (std::size_t s = 1; s <= cfg_.num_stages; ++s) {
      Stage st{};
      st.sel_ext = ing.branch(
          eq(kFNextTable, kNextTableBits,
             next_table_code(s, MatchSource::kExtracted)));
      st.sel_meta = ing.branch(eq(kFNextTable, kNextTableBits,
                                  next_table_code(s, MatchSource::kMeta)));
      st.sel_std = ing.branch(eq(kFNextTable, kNextTableBits,
                                 next_table_code(s, MatchSource::kStdMeta)));
      st.n_ext = ing.apply(tbl_stage_match(s, MatchSource::kExtracted));
      st.n_meta = ing.apply(tbl_stage_match(s, MatchSource::kMeta));
      st.n_std = ing.apply(tbl_stage_match(s, MatchSource::kStdMeta));
      for (std::size_t p = 1; p <= cfg_.max_primitives; ++p) {
        Slot sl{};
        sl.guard = ing.branch(
            Expr::binary(ExprOp::kGe, Expr::field(kMeta, kFPrimCount),
                         Expr::constant(8, p)));
        sl.setup = ing.apply(tbl_prim_setup(s, p));
        sl.d_mod = ing.branch(
            eq(kFPrimType, 8, static_cast<std::uint64_t>(PrimType::kMod)));
        sl.d_add = ing.branch(
            eq(kFPrimType, 8, static_cast<std::uint64_t>(PrimType::kAddSub)));
        sl.d_drop = ing.branch(
            eq(kFPrimType, 8, static_cast<std::uint64_t>(PrimType::kDrop)));
        sl.d_resize = ing.branch(
            eq(kFPrimType, 8, static_cast<std::uint64_t>(PrimType::kResize)));
        sl.e_mod = ing.apply(tbl_prim_exec(s, p, PrimType::kMod));
        sl.e_add = ing.apply(tbl_prim_exec(s, p, PrimType::kAddSub));
        sl.e_drop = ing.apply(tbl_prim_exec(s, p, PrimType::kDrop));
        sl.e_resize = ing.apply(tbl_prim_exec(s, p, PrimType::kResize));
        sl.e_noop = ing.apply(tbl_prim_exec(s, p, PrimType::kNoop));
        sl.tx = ing.apply(tbl_prim_tx(s, p));
        st.slots.push_back(sl);
      }
      stages.push_back(std::move(st));
    }
    const auto nVnet = ing.apply(tbl_vnet());

    // Optional §4.5 ingress meter: police per-program packet rates on
    // every full traversal (resubmit passes are exempt; the recirculation
    // storms the paper worries about are metered).
    std::size_t meter_entry = nSetupB;
    if (cfg_.ingress_meter) {
      const auto nMeter = ing.apply(tbl_meter());
      const auto colorIf = ing.branch(eq("meter_color", 8, 2 /*red*/));
      const auto nPunish = ing.apply(tbl_meter_drop());
      ing.on_default(nMeter, colorIf);
      ing.on_true(colorIf, nPunish);
      ing.on_false(colorIf, nSetupB);
      ing.on_default(nPunish, nSetupB);
      meter_entry = nMeter;
    }

    // Wiring.
    ing.on_default(nSetupA, nResubIf);
    ing.on_true(nResubIf, p4::kEndOfControl);
    ing.on_false(nResubIf, meter_entry);
    ing.on_default(nSetupB, nVparse);
    ing.on_default(nVparse, stages.front().sel_ext);

    for (std::size_t i = 0; i < stages.size(); ++i) {
      Stage& st = stages[i];
      const std::size_t next_stage =
          (i + 1 < stages.size()) ? stages[i + 1].sel_ext : nVnet;
      ing.on_true(st.sel_ext, st.n_ext);
      ing.on_false(st.sel_ext, st.sel_meta);
      ing.on_true(st.sel_meta, st.n_meta);
      ing.on_false(st.sel_meta, st.sel_std);
      ing.on_true(st.sel_std, st.n_std);
      ing.on_false(st.sel_std, next_stage);

      const std::size_t first_guard = st.slots.front().guard;
      ing.on_default(st.n_ext, first_guard);
      ing.on_default(st.n_meta, first_guard);
      ing.on_default(st.n_std, first_guard);

      for (std::size_t p = 0; p < st.slots.size(); ++p) {
        Slot& sl = st.slots[p];
        const std::size_t after_slot = (p + 1 < st.slots.size())
                                           ? st.slots[p + 1].guard
                                           : next_stage;
        ing.on_true(sl.guard, sl.setup);
        ing.on_false(sl.guard, next_stage);  // action complete
        ing.on_default(sl.setup, sl.d_mod);
        ing.on_true(sl.d_mod, sl.e_mod);
        ing.on_false(sl.d_mod, sl.d_add);
        ing.on_true(sl.d_add, sl.e_add);
        ing.on_false(sl.d_add, sl.d_drop);
        ing.on_true(sl.d_drop, sl.e_drop);
        ing.on_false(sl.d_drop, sl.d_resize);
        ing.on_true(sl.d_resize, sl.e_resize);
        ing.on_false(sl.d_resize, sl.e_noop);
        ing.on_default(sl.e_mod, sl.tx);
        ing.on_default(sl.e_add, sl.tx);
        ing.on_default(sl.e_drop, sl.tx);
        ing.on_default(sl.e_resize, sl.tx);
        ing.on_default(sl.e_noop, sl.tx);
        ing.on_default(sl.tx, after_slot);
      }
    }
    // nVnet's default edge already ends the control.
  }

  // --- egress control ---------------------------------------------------------
  {
    auto eg = b.egress();
    const auto csumIf = eg.branch(Expr::binary(
        ExprOp::kNe, Expr::field(kMeta, kFCsumOffset), Expr::constant(8, 0)));
    const auto nCsum = eg.apply(tbl_eg_csum());
    const auto nWb = eg.apply(tbl_eg_writeback());
    eg.on_true(csumIf, nCsum);
    eg.on_false(csumIf, nWb);
    eg.on_default(nCsum, nWb);
  }

  return b.build();
}

std::string PersonaGenerator::base_commands() const {
  std::ostringstream os;
  os << "# HyPer4 persona base entries (generated)\n";
  os << "# -- setup_b: byte-concatenation ladder\n";
  for (std::size_t n : cfg_.parse_ladder()) {
    os << "table_add " << tbl_setup_b() << " " << act_concat(n) << " " << n
       << " =>\n";
  }
  os << "# -- egress checksum fix-up offsets\n";
  for (std::size_t off : cfg_.ipv4_csum_offsets) {
    if ((off + 20) * 8 > cfg_.extracted_bits) continue;
    os << "table_add " << tbl_eg_csum() << " " << act_ipv4_csum(off) << " "
       << off << " =>\n";
  }
  os << "# -- egress write-back ladder\n";
  for (std::size_t n : cfg_.writeback_ladder()) {
    os << "table_add " << tbl_eg_writeback() << " " << act_writeback(n) << " "
       << n << " =>\n";
  }
  return os.str();
}

}  // namespace hyper4::hp4
