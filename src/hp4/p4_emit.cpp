#include "hp4/p4_emit.h"

#include <functional>
#include <sstream>

#include "util/strings.h"

namespace hyper4::hp4 {

namespace {

void emit_header_type(std::ostringstream& os, const p4::HeaderType& t) {
  os << "header_type " << t.name << " {\n    fields {\n";
  for (const auto& f : t.fields) {
    os << "        " << f.name << " : " << f.width << ";\n";
  }
  os << "    }\n}\n\n";
}

std::string arg_str(const p4::ActionArg& a, const p4::ActionDef& act) {
  switch (a.kind) {
    case p4::ActionArg::Kind::kConst:
      return "0x" + a.value.to_hex();
    case p4::ActionArg::Kind::kParam:
      return act.params[a.param_index].name;
    case p4::ActionArg::Kind::kField:
      return a.field.str();
    case p4::ActionArg::Kind::kHeader:
    case p4::ActionArg::Kind::kNamedRef:
      return a.name;
  }
  return "?";
}

void emit_action(std::ostringstream& os, const p4::ActionDef& a) {
  os << "action " << a.name << "(";
  for (std::size_t i = 0; i < a.params.size(); ++i) {
    if (i) os << ", ";
    os << a.params[i].name;
  }
  os << ") {\n";
  for (const auto& call : a.body) {
    os << "    " << p4::primitive_name(call.op) << "(";
    for (std::size_t i = 0; i < call.args.size(); ++i) {
      if (i) os << ", ";
      os << arg_str(call.args[i], a);
    }
    os << ");\n";
  }
  os << "}\n\n";
}

void emit_table(std::ostringstream& os, const p4::TableDef& t) {
  os << "table " << t.name << " {\n";
  if (!t.keys.empty()) {
    os << "    reads {\n";
    for (const auto& k : t.keys) {
      if (k.type == p4::MatchType::kValid) {
        os << "        " << k.field.header << " : valid;\n";
      } else {
        os << "        " << k.field.str() << " : "
           << p4::match_type_name(k.type) << ";\n";
      }
    }
    os << "    }\n";
  }
  os << "    actions {\n";
  for (const auto& a : t.actions) os << "        " << a << ";\n";
  os << "    }\n";
  if (!t.default_action.empty()) {
    os << "    default_action : " << t.default_action << ";\n";
  }
  os << "    size : " << t.max_size << ";\n";
  os << "}\n\n";
}

void emit_parser_state(std::ostringstream& os, const p4::ParserState& s) {
  os << "parser " << (s.name == "start" ? "start" : s.name) << " {\n";
  for (const auto& e : s.extracts) os << "    extract(" << e << ");\n";
  for (const auto& [f, expr] : s.sets) {
    os << "    set_metadata(" << f.str() << ", " << (expr ? expr->str() : "0")
       << ");\n";
  }
  auto state_name = [](const std::string& n) {
    if (n == p4::kParserAccept) return std::string("ingress");
    if (n == p4::kParserDrop) return std::string("parse_drop");
    return n;
  };
  if (s.select.empty()) {
    os << "    return " << state_name(s.cases[0].next_state) << ";\n";
  } else {
    os << "    return select(";
    for (std::size_t i = 0; i < s.select.size(); ++i) {
      if (i) os << ", ";
      const auto& k = s.select[i];
      if (k.is_current) {
        os << "current(" << k.current_offset << ", " << k.current_width << ")";
      } else {
        os << k.field.str();
      }
    }
    os << ") {\n";
    for (const auto& c : s.cases) {
      if (c.is_default) {
        os << "        default : " << state_name(c.next_state) << ";\n";
      } else if (c.mask) {
        os << "        0x" << c.value.to_hex() << " mask 0x" << c.mask->to_hex()
           << " : " << state_name(c.next_state) << ";\n";
      } else {
        os << "        0x" << c.value.to_hex() << " : "
           << state_name(c.next_state) << ";\n";
      }
    }
    os << "    }\n";
  }
  os << "}\n\n";
}

// Render a control graph as nested apply/if blocks. Control graphs are
// DAGs; shared continuations are emitted once via explicit "goto-style"
// sequencing: we emit each node at its first visit and reference
// already-emitted nodes with a comment (sufficient for LoC accounting and
// human inspection).
void emit_control(std::ostringstream& os, const p4::Control& c) {
  if (c.empty()) {
    os << "control " << c.name << " {\n}\n\n";
    return;
  }
  os << "control " << c.name << " {\n";
  std::vector<bool> emitted(c.nodes.size(), false);

  std::function<void(std::size_t, int)> emit = [&](std::size_t idx, int depth) {
    std::string ind(static_cast<std::size_t>(depth) * 4, ' ');
    while (idx != p4::kEndOfControl) {
      if (emitted[idx]) {
        os << ind << "// continue at node " << idx << "\n";
        return;
      }
      emitted[idx] = true;
      const p4::ControlNode& n = c.nodes[idx];
      if (n.kind == p4::ControlNode::Kind::kApply) {
        os << ind << "apply(" << n.table << ");\n";
        idx = n.next_default;
      } else {
        os << ind << "if (" << (n.condition ? n.condition->str() : "true")
           << ") {\n";
        emit(n.next_true, depth + 1);
        os << ind << "} else {\n";
        emit(n.next_false, depth + 1);
        os << ind << "}\n";
        return;
      }
    }
  };
  emit(0, 1);
  os << "}\n\n";
}

}  // namespace

std::string emit_p4(const p4::Program& prog) {
  std::ostringstream os;
  os << "// " << prog.name << " (generated P4-14 source)\n\n";
  for (const auto& t : prog.header_types) emit_header_type(os, t);
  for (const auto& i : prog.instances) {
    if (i.metadata) {
      os << "metadata " << i.type << " " << i.name << ";\n";
    } else if (i.is_stack()) {
      os << "header " << i.type << " " << i.name << "[" << i.stack_size
         << "];\n";
    } else {
      os << "header " << i.type << " " << i.name << ";\n";
    }
  }
  os << "\n";
  for (const auto& fl : prog.field_lists) {
    os << "field_list " << fl.name << " {\n";
    for (const auto& f : fl.fields) os << "    " << f.str() << ";\n";
    os << "}\n\n";
  }
  for (const auto& cf : prog.calculated_fields) {
    std::string calc_name = cf.field.header + "_" + cf.field.field + "_calc";
    os << "field_list_calculation " << calc_name << " {\n"
       << "    input { " << cf.field_list << "; }\n"
       << "    algorithm : csum16;\n    output_width : 16;\n}\n"
       << "calculated_field " << cf.field.str() << " {\n"
       << "    update " << calc_name
       << (cf.update_condition ? " if (" + cf.update_condition->str() + ")" : "")
       << ";\n}\n\n";
  }
  for (const auto& r : prog.registers) {
    os << "register " << r.name << " {\n    width : " << r.width
       << ";\n    instance_count : " << r.instance_count << ";\n}\n\n";
  }
  for (const auto& cnt : prog.counters) {
    os << "counter " << cnt.name << " {\n    type : packets;\n";
    if (!cnt.direct_table.empty()) {
      os << "    direct : " << cnt.direct_table << ";\n";
    } else {
      os << "    instance_count : " << cnt.instance_count << ";\n";
    }
    os << "}\n\n";
  }
  for (const auto& m : prog.meters) {
    os << "meter " << m.name << " {\n    type : packets;\n    instance_count : "
       << m.instance_count << ";\n}\n\n";
  }
  for (const auto& s : prog.parser_states) emit_parser_state(os, s);
  for (const auto& a : prog.actions) emit_action(os, a);
  for (const auto& t : prog.tables) emit_table(os, t);
  emit_control(os, prog.ingress);
  emit_control(os, prog.egress);
  return os.str();
}

std::size_t count_loc(const std::string& source) {
  std::size_t n = 0;
  std::istringstream in(source);
  std::string line;
  while (std::getline(in, line)) {
    const auto t = util::trim(line);
    if (t.empty()) continue;
    if (t.size() >= 2 && t[0] == '/' && t[1] == '/') continue;
    ++n;
  }
  return n;
}

std::string emit_p4_subset(const p4::Program& prog, const std::string& needle) {
  std::ostringstream os;
  for (const auto& a : prog.actions) {
    if (a.name.find(needle) != std::string::npos) emit_action(os, a);
  }
  for (const auto& t : prog.tables) {
    if (t.name.find(needle) != std::string::npos) emit_table(os, t);
  }
  return os.str();
}

}  // namespace hyper4::hp4
