#include "hp4/dpmu.h"

#include <sstream>

#include "bm/cli.h"
#include "util/strings.h"
#include "util/error.h"

namespace hyper4::hp4 {

using util::CommandError;
using util::ConfigError;
using util::IsolationError;

Dpmu::Dpmu(bm::Switch& sw, const PersonaGenerator& gen)
    : sw_(sw), cfg_(gen.config()) {
  bm::run_cli_text(sw_, gen.base_commands());
}

std::string Dpmu::no_vdev_message(VdevId id) const {
  std::string msg = "dpmu: no virtual device " + std::to_string(id);
  if (vdevs_.empty()) return msg + " (none loaded)";
  std::vector<std::string> ids;
  std::string listing;
  for (const auto& [vid, v] : vdevs_) {
    ids.push_back(std::to_string(vid));
    if (!listing.empty()) listing += ", ";
    listing += std::to_string(vid) + " ('" + v.name + "')";
  }
  return msg + util::did_you_mean(std::to_string(id), ids) +
         " (loaded: " + listing + ")";
}

Dpmu::Vdev& Dpmu::vdev(VdevId id) {
  auto it = vdevs_.find(id);
  if (it == vdevs_.end()) throw ConfigError(no_vdev_message(id));
  return it->second;
}

const Dpmu::Vdev& Dpmu::vdev(VdevId id) const {
  auto it = vdevs_.find(id);
  if (it == vdevs_.end()) throw ConfigError(no_vdev_message(id));
  return it->second;
}

const Hp4Artifact& Dpmu::artifact(VdevId id) const { return vdev(id).art; }
const std::string& Dpmu::vdev_name(VdevId id) const { return vdev(id).name; }

std::vector<VdevId> Dpmu::vdev_ids() const {
  std::vector<VdevId> out;
  for (const auto& [id, v] : vdevs_) out.push_back(id);
  return out;
}

void Dpmu::check_auth(const Vdev& v, const std::string& requester) const {
  if (requester == v.owner) return;
  for (const auto& a : v.authorized)
    if (a == requester) return;
  throw IsolationError("dpmu: requester '" + requester +
                       "' is not authorized for device '" + v.name + "'");
}

std::uint64_t Dpmu::run(
    const std::string& cmd,
    std::vector<std::pair<std::string, std::uint64_t>>* sink) {
  const bm::CliResult r = bm::run_cli_command(sw_, cmd);
  if (!r.ok) throw CommandError("dpmu: " + r.message + "  [" + cmd + "]");
  if (sink && r.handle != 0) {
    const auto tok = util::split(cmd);
    sink->emplace_back(tok.at(1), r.handle);
  }
  return r.handle;
}

VdevId Dpmu::load_program(const std::string& name, const Hp4Artifact& art,
                          const std::string& owner, std::size_t entry_quota) {
  const VdevId id = next_id_++;
  Vdev v;
  v.name = name;
  v.art = art;
  v.owner = owner;
  v.quota = entry_quota;
  vdevs_.emplace(id, std::move(v));
  Vdev& ref = vdevs_.at(id);
  try {
    for (const auto& tmpl : art.static_commands) {
      std::string cmd = tmpl;
      std::size_t pos;
      while ((pos = cmd.find("[program]")) != std::string::npos) {
        cmd.replace(pos, 9, std::to_string(id));
      }
      run(cmd, &ref.static_handles);
    }
  } catch (...) {
    // Roll back whatever was installed so a failed load leaves no residue.
    for (auto it = ref.static_handles.rbegin(); it != ref.static_handles.rend();
         ++it) {
      sw_.table_delete(it->first, it->second);
    }
    vdevs_.erase(id);
    throw;
  }
  return id;
}

void Dpmu::unload(VdevId id) {
  Vdev& v = vdev(id);
  for (const auto& [vh, phys] : v.entries) {
    for (const auto& [table, handle] : phys) sw_.table_delete(table, handle);
  }
  for (const auto& [vport, handle] : v.vnet_handles) {
    sw_.table_delete(tbl_vnet(), handle);
  }
  for (auto group : v.mcast_groups) sw_.mc_group_set(group, {});
  for (auto it = v.static_handles.rbegin(); it != v.static_handles.rend();
       ++it) {
    sw_.table_delete(it->first, it->second);
  }
  // Remove ingress bindings pointing at this device.
  for (auto it = bindings_.begin(); it != bindings_.end();) {
    if (it->second.vdev == id) {
      sw_.table_delete(tbl_setup_a(), it->second.handle);
      it = bindings_.erase(it);
    } else {
      ++it;
    }
  }
  vdevs_.erase(id);
}

// ---------------------------------------------------------------------------
// Virtual networking

std::uint64_t Dpmu::attach_port(VdevId id, std::uint16_t phys) {
  Vdev& v = vdev(id);
  if (v.ports.phys_to_vport.contains(phys))
    throw ConfigError("dpmu: device '" + v.name + "' already has a vport for port " +
                      std::to_string(phys));
  const std::uint64_t vport = next_vport_++;
  v.ports.phys_to_vport[phys] = vport;
  v.ports.vport_to_phys[vport] = phys;
  std::ostringstream os;
  os << "table_add " << tbl_vnet() << " " << kActVfwdPhys << " " << id << " "
     << vport << "&&&0xffff => " << phys << " 10";
  v.vnet_handles[vport] = run(os.str(), nullptr);
  return vport;
}

void Dpmu::set_vport_target_phys(VdevId id, std::uint16_t phys) {
  Vdev& v = vdev(id);
  const std::uint64_t vport = vport_of(id, phys);
  sw_.table_modify(tbl_vnet(), kActVfwdPhys, v.vnet_handles.at(vport),
                   {util::BitVec(p4::kPortWidth, phys)});
}

void Dpmu::set_vport_target_vdev(VdevId id, std::uint16_t phys, VdevId next) {
  Vdev& v = vdev(id);
  const Vdev& nv = vdev(next);
  const std::uint64_t vport = vport_of(id, phys);
  const std::uint64_t next_vingress =
      nv.ports.phys_to_vport.contains(phys) ? nv.ports.phys_to_vport.at(phys)
                                            : 0;
  sw_.table_modify(tbl_vnet(), kActVfwdVdev, v.vnet_handles.at(vport),
                   {util::BitVec(kProgramBits, next),
                    util::BitVec(8, nv.art.numbytes),
                    util::BitVec(kVPortBits, next_vingress)});
}

void Dpmu::set_vport_target_mcast(VdevId id, std::uint16_t phys,
                                  const std::vector<std::uint16_t>& ports) {
  Vdev& v = vdev(id);
  const std::uint64_t vport = vport_of(id, phys);
  const std::uint16_t group = next_mcast_group_++;
  std::vector<std::pair<std::uint16_t, std::uint16_t>> members;
  std::uint16_t rid = 1;
  for (auto p : ports) members.emplace_back(p, rid++);
  sw_.mc_group_set(group, std::move(members));
  v.mcast_groups.push_back(group);
  sw_.table_modify(tbl_vnet(), kActVfwdMcast, v.vnet_handles.at(vport),
                   {util::BitVec(16, group)});
}

std::uint64_t Dpmu::vport_of(VdevId id, std::uint16_t phys) const {
  return vdev(id).ports.to_vport(phys);
}

const VPortMap& Dpmu::ports(VdevId id) const { return vdev(id).ports; }

// ---------------------------------------------------------------------------
// Ingress steering

void Dpmu::bind_args(std::ostringstream& os, const Vdev& v,
                     std::optional<std::uint16_t> port) const {
  // program, numbytes, vingress
  std::uint64_t vingress = 0;
  if (port && v.ports.phys_to_vport.contains(*port)) {
    vingress = v.ports.phys_to_vport.at(*port);
  }
  os << v.art.numbytes << " " << vingress;
}

std::uint64_t Dpmu::bind_ingress(VdevId id,
                                 std::optional<std::uint16_t> port) {
  Vdev& v = vdev(id);
  const std::string action =
      v.art.needs_resubmit ? kActSetProgramResub : kActSetProgram;
  std::ostringstream os;
  os << "table_add " << tbl_setup_a() << " " << action << " 0&&&0xffff ";
  if (port) {
    os << *port << "&&&0x1ff";
  } else {
    os << "0&&&0";
  }
  os << " => " << id << " ";
  bind_args(os, v, port);
  os << " " << (port ? 10 : 100);
  const std::uint64_t handle = run(os.str(), nullptr);
  const std::uint64_t b = next_binding_++;
  bindings_[b] = Binding{handle, port, id};
  return b;
}

void Dpmu::rebind_ingress(std::uint64_t binding, VdevId new_vdev) {
  auto it = bindings_.find(binding);
  if (it == bindings_.end())
    throw ConfigError("dpmu: unknown ingress binding " + std::to_string(binding));
  Vdev& v = vdev(new_vdev);
  const std::string action =
      v.art.needs_resubmit ? kActSetProgramResub : kActSetProgram;
  std::uint64_t vingress = 0;
  if (it->second.port && v.ports.phys_to_vport.contains(*it->second.port)) {
    vingress = v.ports.phys_to_vport.at(*it->second.port);
  }
  sw_.table_modify(tbl_setup_a(), action, it->second.handle,
                   {util::BitVec(kProgramBits, new_vdev),
                    util::BitVec(8, v.art.numbytes),
                    util::BitVec(kVPortBits, vingress)});
  it->second.vdev = new_vdev;
}

void Dpmu::unbind_ingress(std::uint64_t binding) {
  auto it = bindings_.find(binding);
  if (it == bindings_.end())
    throw ConfigError("dpmu: unknown ingress binding " + std::to_string(binding));
  sw_.table_delete(tbl_setup_a(), it->second.handle);
  bindings_.erase(it);
}

// ---------------------------------------------------------------------------
// Virtual table operations

std::uint64_t Dpmu::table_add(VdevId id, const VirtualRule& rule,
                              const std::string& requester) {
  Vdev& v = vdev(id);
  check_auth(v, requester);
  if (v.entries.size() >= v.quota)
    throw IsolationError("dpmu: device '" + v.name + "' exceeded its quota of " +
                         std::to_string(v.quota) + " entries");
  const std::uint64_t mid = next_match_id_++;
  const auto cmds = translate_rule(v.art, rule, id, mid, v.ports);
  std::vector<std::pair<std::string, std::uint64_t>> installed;
  try {
    for (const auto& c : cmds) run(c, &installed);
  } catch (...) {
    for (auto it = installed.rbegin(); it != installed.rend(); ++it) {
      sw_.table_delete(it->first, it->second);
    }
    throw;
  }
  const std::uint64_t vh = v.next_vhandle++;
  v.entries[vh] = std::move(installed);
  return vh;
}

void Dpmu::table_delete(VdevId id, std::uint64_t vhandle,
                        const std::string& requester) {
  Vdev& v = vdev(id);
  check_auth(v, requester);
  auto it = v.entries.find(vhandle);
  if (it == v.entries.end())
    throw CommandError("dpmu: device '" + v.name + "' has no entry " +
                       std::to_string(vhandle));
  for (const auto& [table, handle] : it->second) {
    sw_.table_delete(table, handle);
  }
  v.entries.erase(it);
}

std::size_t Dpmu::entry_count(VdevId id) const { return vdev(id).entries.size(); }

std::uint64_t Dpmu::entry_hits(VdevId id, std::uint64_t vhandle) const {
  const Vdev& v = vdev(id);
  auto it = v.entries.find(vhandle);
  if (it == v.entries.end())
    throw CommandError("dpmu: no entry " + std::to_string(vhandle));
  // The first installed command is always the stage-table match entry.
  const auto& [table, handle] = it->second.front();
  return sw_.table(table).entry(handle).hits;
}

void Dpmu::authorize(VdevId id, const std::string& requester) {
  vdev(id).authorized.push_back(requester);
}

std::map<std::pair<std::string, std::uint64_t>, Dpmu::EntryOrigin>
Dpmu::entry_origins() const {
  std::map<std::pair<std::string, std::uint64_t>, EntryOrigin> out;
  for (const auto& [id, v] : vdevs_) {
    for (const auto& [table, handle] : v.static_handles)
      out[{table, handle}] = EntryOrigin{id, 0, false};
    for (const auto& [vh, list] : v.entries)
      for (const auto& [table, handle] : list)
        out[{table, handle}] = EntryOrigin{id, vh, false};
  }
  for (const auto& [b, binding] : bindings_)
    out[{tbl_setup_a(), binding.handle}] =
        EntryOrigin{binding.vdev, 0, true};
  return out;
}

Dpmu::ExportedState Dpmu::export_state() const {
  ExportedState s;
  s.vdevs.reserve(vdevs_.size());
  for (const auto& [id, v] : vdevs_) {
    ExportedVdev ev;
    ev.id = id;
    ev.name = v.name;
    ev.owner = v.owner;
    ev.authorized = v.authorized;
    ev.quota = v.quota;
    ev.vport_to_phys = v.ports.vport_to_phys;
    ev.phys_to_vport = v.ports.phys_to_vport;
    ev.vnet_handles = v.vnet_handles;
    ev.mcast_groups = v.mcast_groups;
    ev.entries = v.entries;
    ev.static_handles = v.static_handles;
    ev.next_vhandle = v.next_vhandle;
    s.vdevs.push_back(std::move(ev));
  }
  s.bindings.reserve(bindings_.size());
  for (const auto& [id, b] : bindings_) {
    ExportedBinding eb;
    eb.id = id;
    eb.handle = b.handle;
    eb.has_port = b.port.has_value();
    eb.port = b.port.value_or(0);
    eb.vdev = b.vdev;
    s.bindings.push_back(eb);
  }
  s.next_id = next_id_;
  s.next_vport = next_vport_;
  s.next_mcast_group = next_mcast_group_;
  s.next_match_id = next_match_id_;
  s.next_binding = next_binding_;
  return s;
}

void Dpmu::import_state(const ExportedState& s,
                        const std::map<VdevId, Hp4Artifact>& artifacts) {
  std::map<VdevId, Vdev> vdevs;
  for (const auto& ev : s.vdevs) {
    auto ait = artifacts.find(ev.id);
    if (ait == artifacts.end())
      throw ConfigError("dpmu import: no artifact for vdev " +
                        std::to_string(ev.id));
    Vdev v;
    v.name = ev.name;
    v.art = ait->second;
    v.owner = ev.owner;
    v.authorized = ev.authorized;
    v.quota = ev.quota;
    v.ports.vport_to_phys = ev.vport_to_phys;
    v.ports.phys_to_vport = ev.phys_to_vport;
    v.vnet_handles = ev.vnet_handles;
    v.mcast_groups = ev.mcast_groups;
    v.entries = ev.entries;
    v.static_handles = ev.static_handles;
    v.next_vhandle = ev.next_vhandle;
    if (!vdevs.emplace(ev.id, std::move(v)).second)
      throw ConfigError("dpmu import: duplicate vdev " + std::to_string(ev.id));
  }
  std::map<std::uint64_t, Binding> bindings;
  for (const auto& eb : s.bindings) {
    Binding b;
    b.handle = eb.handle;
    if (eb.has_port) b.port = eb.port;
    b.vdev = eb.vdev;
    if (!bindings.emplace(eb.id, b).second)
      throw ConfigError("dpmu import: duplicate binding " +
                        std::to_string(eb.id));
  }
  vdevs_ = std::move(vdevs);
  bindings_ = std::move(bindings);
  next_id_ = s.next_id;
  next_vport_ = s.next_vport;
  next_mcast_group_ = s.next_mcast_group;
  next_match_id_ = s.next_match_id;
  next_binding_ = s.next_binding;
}

std::string Dpmu::report() const {
  std::ostringstream os;
  os << "DPMU: " << vdevs_.size() << " virtual device(s), "
     << bindings_.size() << " ingress binding(s)\n";
  for (const auto& [id, v] : vdevs_) {
    std::size_t phys_entries = 0;
    for (const auto& [vh, list] : v.entries) phys_entries += list.size();
    os << "  vdev " << id << " '" << v.name << "' owner=" << v.owner
       << " program=" << v.art.program_name << " numbytes=" << v.art.numbytes
       << (v.art.needs_resubmit ? " (resubmit)" : "") << "\n";
    os << "    entries: " << v.entries.size() << "/" << v.quota
       << " virtual (" << phys_entries << " persona, "
       << v.static_handles.size() << " static)\n";
    for (const auto& [phys, vport] : v.ports.phys_to_vport) {
      os << "    vport " << vport << " <-> phys " << phys << "\n";
    }
  }
  for (const auto& [b, binding] : bindings_) {
    os << "  binding " << b << ": ";
    if (binding.port) {
      os << "port " << *binding.port;
    } else {
      os << "all ports";
    }
    os << " -> vdev " << binding.vdev << "\n";
  }
  return os.str();
}

}  // namespace hyper4::hp4
