#include "hp4/controller.h"

#include <set>

#include "engine/engine.h"
#include "util/error.h"

namespace hyper4::hp4 {

using util::ConfigError;

void Controller::attach_engine(engine::TrafficEngine* eng) {
  engine_ = eng;
  refresh_engine();
}

void Controller::refresh_engine(bool force) {
  if (!engine_) return;
  if (refresh_suspended_ > 0 && !force) {
    refresh_pending_ = true;
    return;
  }
  engine_->sync_from(*sw_);
  refresh_pending_ = false;
}

void Controller::suspend_engine_refresh() { ++refresh_suspended_; }

void Controller::resume_engine_refresh() {
  if (refresh_suspended_ == 0)
    throw ConfigError("controller: resume_engine_refresh without suspend");
  if (--refresh_suspended_ == 0 && refresh_pending_) refresh_engine();
}

Controller::Controller(PersonaConfig cfg)
    : Controller(std::move(cfg), bm::Switch::Options{}) {}

Controller::Controller(PersonaConfig cfg, bm::Switch::Options opts)
    : gen_(std::move(cfg)),
      sw_(std::make_unique<bm::Switch>(gen_.generate(), opts)),
      dpmu_(std::make_unique<Dpmu>(*sw_, gen_)),
      compiler_(gen_.config()) {}

Hp4Artifact Controller::compile(const p4::Program& target) const {
  return compiler_.compile(target);
}

VdevId Controller::load(const std::string& name, const p4::Program& target,
                        const std::string& owner, std::size_t quota) {
  const VdevId id =
      dpmu_->load_program(name, compiler_.compile(target), owner, quota);
  refresh_engine();
  return id;
}

void Controller::attach_ports(VdevId id,
                              const std::vector<std::uint16_t>& ports) {
  for (auto p : ports) dpmu_->attach_port(id, p);
  refresh_engine();
}

void Controller::chain(const std::vector<VdevId>& devices,
                       const std::vector<std::uint16_t>& ports) {
  if (devices.empty()) throw ConfigError("controller: empty chain");
  for (VdevId id : devices) {
    for (auto p : ports) {
      if (!dpmu_->ports(id).phys_to_vport.contains(p)) dpmu_->attach_port(id, p);
    }
  }
  for (std::size_t i = 0; i + 1 < devices.size(); ++i) {
    for (auto p : ports) {
      dpmu_->set_vport_target_vdev(devices[i], p, devices[i + 1]);
    }
  }
  for (auto p : ports) bind(devices.front(), p);
  refresh_engine();
}

void Controller::bind(VdevId id, std::optional<std::uint16_t> port) {
  const PortKey key = port_key(port);
  auto it = live_bindings_.find(key);
  // A binding can disappear underneath us when its device is unloaded
  // through the DPMU directly; treat it as gone.
  if (it != live_bindings_.end() && !dpmu_->has_binding(it->second)) {
    live_bindings_.erase(it);
    it = live_bindings_.end();
  }
  if (it != live_bindings_.end()) {
    dpmu_->rebind_ingress(it->second, id);
  } else {
    live_bindings_[key] = dpmu_->bind_ingress(id, port);
  }
  refresh_engine();
}

void Controller::unload(VdevId id) {
  dpmu_->unload(id);
  for (auto it = live_bindings_.begin(); it != live_bindings_.end();) {
    if (!dpmu_->has_binding(it->second)) {
      it = live_bindings_.erase(it);
    } else {
      ++it;
    }
  }
  refresh_engine();
}

std::uint64_t Controller::add_rule(VdevId id, const VirtualRule& rule,
                                   const std::string& requester) {
  const std::uint64_t handle = dpmu_->table_add(id, rule, requester);
  refresh_engine();
  return handle;
}

void Controller::delete_rule(VdevId id, std::uint64_t vhandle,
                             const std::string& requester) {
  dpmu_->table_delete(id, vhandle, requester);
  refresh_engine();
}

void Controller::authorize(VdevId id, const std::string& requester) {
  dpmu_->authorize(id, requester);
}

void Controller::register_write(const std::string& reg, std::size_t index,
                                const util::BitVec& v) {
  sw_->register_write(reg, index, v);
  refresh_engine();
}

Controller::ExportedState Controller::export_state() const {
  ExportedState s;
  s.live_bindings.assign(live_bindings_.begin(), live_bindings_.end());
  for (const auto& [name, bindings] : configs_) {
    std::vector<std::pair<std::int32_t, VdevId>> bs;
    bs.reserve(bindings.size());
    for (const auto& [port, vdev] : bindings)
      bs.emplace_back(port_key(port), vdev);
    s.configs.emplace_back(name, std::move(bs));
  }
  s.active_config = active_config_;
  s.last_activation_ops = last_activation_ops_;
  return s;
}

void Controller::import_state(const ExportedState& s) {
  live_bindings_.clear();
  for (const auto& [key, handle] : s.live_bindings)
    live_bindings_[key] = handle;
  configs_.clear();
  for (const auto& [name, bindings] : s.configs) {
    std::vector<std::pair<std::optional<std::uint16_t>, VdevId>> bs;
    bs.reserve(bindings.size());
    for (const auto& [key, vdev] : bindings) {
      std::optional<std::uint16_t> port;
      if (key >= 0) port = static_cast<std::uint16_t>(key);
      bs.emplace_back(port, vdev);
    }
    configs_[name] = std::move(bs);
  }
  active_config_ = s.active_config;
  last_activation_ops_ = s.last_activation_ops;
}

void Controller::define_config(
    const std::string& name,
    std::vector<std::pair<std::optional<std::uint16_t>, VdevId>> bindings) {
  configs_[name] = std::move(bindings);
}

void Controller::activate_config(const std::string& name) {
  auto it = configs_.find(name);
  if (it == configs_.end())
    throw ConfigError("controller: no configuration named '" + name + "'");
  last_activation_ops_ = 0;
  // Rebind (or create) each binding in the configuration.
  std::set<PortKey> wanted;
  for (const auto& [port, vdev] : it->second) {
    const PortKey key = port_key(port);
    wanted.insert(key);
    auto lit = live_bindings_.find(key);
    if (lit != live_bindings_.end()) {
      dpmu_->rebind_ingress(lit->second, vdev);
    } else {
      live_bindings_[key] = dpmu_->bind_ingress(vdev, port);
    }
    ++last_activation_ops_;
  }
  // Remove bindings not present in the new configuration.
  for (auto lit = live_bindings_.begin(); lit != live_bindings_.end();) {
    if (!wanted.contains(lit->first)) {
      dpmu_->unbind_ingress(lit->second);
      ++last_activation_ops_;
      lit = live_bindings_.erase(lit);
    } else {
      ++lit;
    }
  }
  active_config_ = name;
  refresh_engine();
}

}  // namespace hyper4::hp4
