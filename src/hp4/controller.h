// The HyPer4 controller: owns a persona-running switch and its DPMU, and
// provides the operator-level workflows from §3 —
//   - program slots (compile + load a target program as a virtual device),
//   - network snapshots (named configurations hot-swapped with table
//     modifications on setup_a),
//   - composition chains (virtual links between consecutive devices), and
//   - slicing (per-port ingress bindings).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bm/switch.h"
#include "hp4/compiler.h"
#include "hp4/dpmu.h"
#include "hp4/persona.h"

namespace hyper4::engine {
class TrafficEngine;
}

namespace hyper4::hp4 {

class Controller {
 public:
  explicit Controller(PersonaConfig cfg = PersonaConfig{});
  Controller(PersonaConfig cfg, bm::Switch::Options opts);

  bm::Switch& dataplane() { return *sw_; }
  const bm::Switch& dataplane() const { return *sw_; }
  Dpmu& dpmu() { return *dpmu_; }
  const Dpmu& dpmu() const { return *dpmu_; }
  const PersonaGenerator& generator() const { return gen_; }

  // Attach a traffic engine built from this controller's persona program.
  // The engine's replicas are synced immediately and then re-mirrored
  // after every controller operation that mutates the dataplane (load,
  // unload, attach_ports, chain, bind, add_rule, activate_config) — the
  // DPMU's persona table ops fan out to every worker replica atomically
  // under the engine's epoch counter. Pass nullptr to detach.
  void attach_engine(engine::TrafficEngine* eng);
  engine::TrafficEngine* engine() const { return engine_; }

  // Compile `target` and load it as a virtual device.
  VdevId load(const std::string& name, const p4::Program& target,
              const std::string& owner = "admin", std::size_t quota = 1024);
  // Compile only (for inspection of the intermediate artifact).
  Hp4Artifact compile(const p4::Program& target) const;

  // Unload a device and drop any ingress bindings that pointed at it.
  void unload(VdevId id);

  // Allot vports for the given physical ports (egress targets default to
  // the physical ports themselves).
  void attach_ports(VdevId id, const std::vector<std::uint16_t>& ports);

  // Compose devices in sequence over the given physical ports: every
  // non-final device's vports are retargeted at the next device; the final
  // device emits physically. Ingress is bound to the first device.
  void chain(const std::vector<VdevId>& devices,
             const std::vector<std::uint16_t>& ports);

  // Bind traffic entering `port` (all ports when nullopt) to the device.
  void bind(VdevId id, std::optional<std::uint16_t> port = std::nullopt);

  // Virtual table operation, forwarded through the DPMU.
  std::uint64_t add_rule(VdevId id, const VirtualRule& rule,
                         const std::string& requester = "admin");

  // --- snapshots (§3.2) --------------------------------------------------------
  // A configuration is a set of ingress bindings. Activating a different
  // configuration re-points the existing setup_a entries (table_modify),
  // without touching any program state.
  void define_config(const std::string& name,
                     std::vector<std::pair<std::optional<std::uint16_t>, VdevId>>
                         bindings);
  void activate_config(const std::string& name);
  const std::string& active_config() const { return active_config_; }
  // Number of dataplane operations the last activation needed (the paper:
  // "a single table entry modification" per device for whole-switch swaps).
  std::size_t last_activation_ops() const { return last_activation_ops_; }

 private:
  // Mirror the dataplane's current state into the attached engine (no-op
  // when none is attached).
  void refresh_engine();

  PersonaGenerator gen_;
  std::unique_ptr<bm::Switch> sw_;
  std::unique_ptr<Dpmu> dpmu_;
  Hp4Compiler compiler_;
  engine::TrafficEngine* engine_ = nullptr;

  using PortKey = std::int32_t;  // -1 = wildcard
  static PortKey port_key(std::optional<std::uint16_t> p) {
    return p ? static_cast<PortKey>(*p) : -1;
  }
  std::map<PortKey, std::uint64_t> live_bindings_;  // port → binding handle
  std::map<std::string,
           std::vector<std::pair<std::optional<std::uint16_t>, VdevId>>>
      configs_;
  std::string active_config_;
  std::size_t last_activation_ops_ = 0;
};

}  // namespace hyper4::hp4
