// The HyPer4 controller: owns a persona-running switch and its DPMU, and
// provides the operator-level workflows from §3 —
//   - program slots (compile + load a target program as a virtual device),
//   - network snapshots (named configurations hot-swapped with table
//     modifications on setup_a),
//   - composition chains (virtual links between consecutive devices), and
//   - slicing (per-port ingress bindings).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bm/switch.h"
#include "hp4/compiler.h"
#include "hp4/dpmu.h"
#include "hp4/persona.h"

namespace hyper4::engine {
class TrafficEngine;
}

namespace hyper4::hp4 {

class Controller {
 public:
  explicit Controller(PersonaConfig cfg = PersonaConfig{});
  Controller(PersonaConfig cfg, bm::Switch::Options opts);

  bm::Switch& dataplane() { return *sw_; }
  const bm::Switch& dataplane() const { return *sw_; }
  Dpmu& dpmu() { return *dpmu_; }
  const Dpmu& dpmu() const { return *dpmu_; }
  const PersonaGenerator& generator() const { return gen_; }

  // Attach a traffic engine built from this controller's persona program.
  // The engine's replicas are synced immediately and then re-mirrored
  // after every controller operation that mutates the dataplane (load,
  // unload, attach_ports, chain, bind, add_rule, activate_config) — the
  // DPMU's persona table ops fan out to every worker replica atomically
  // under the engine's epoch counter. Pass nullptr to detach.
  void attach_engine(engine::TrafficEngine* eng);
  engine::TrafficEngine* engine() const { return engine_; }

  // Compile `target` and load it as a virtual device.
  VdevId load(const std::string& name, const p4::Program& target,
              const std::string& owner = "admin", std::size_t quota = 1024);
  // Compile only (for inspection of the intermediate artifact).
  Hp4Artifact compile(const p4::Program& target) const;

  // Unload a device and drop any ingress bindings that pointed at it.
  void unload(VdevId id);

  // Allot vports for the given physical ports (egress targets default to
  // the physical ports themselves).
  void attach_ports(VdevId id, const std::vector<std::uint16_t>& ports);

  // Compose devices in sequence over the given physical ports: every
  // non-final device's vports are retargeted at the next device; the final
  // device emits physically. Ingress is bound to the first device.
  void chain(const std::vector<VdevId>& devices,
             const std::vector<std::uint16_t>& ports);

  // Bind traffic entering `port` (all ports when nullopt) to the device.
  void bind(VdevId id, std::optional<std::uint16_t> port = std::nullopt);

  // Virtual table operation, forwarded through the DPMU.
  std::uint64_t add_rule(VdevId id, const VirtualRule& rule,
                         const std::string& requester = "admin");
  void delete_rule(VdevId id, std::uint64_t vhandle,
                   const std::string& requester = "admin");
  // Grant `requester` table-operation rights on the device (owner-level
  // management op; journaled by src/state).
  void authorize(VdevId id, const std::string& requester);

  // Persona-level register write (operator tuning of emulation state),
  // mirrored into the attached engine like every other mutation.
  void register_write(const std::string& reg, std::size_t index,
                      const util::BitVec& v);

  // --- snapshots (§3.2) --------------------------------------------------------
  // A configuration is a set of ingress bindings. Activating a different
  // configuration re-points the existing setup_a entries (table_modify),
  // without touching any program state.
  void define_config(const std::string& name,
                     std::vector<std::pair<std::optional<std::uint16_t>, VdevId>>
                         bindings);
  void activate_config(const std::string& name);
  const std::string& active_config() const { return active_config_; }
  // Number of dataplane operations the last activation needed (the paper:
  // "a single table entry modification" per device for whole-switch swaps).
  std::size_t last_activation_ops() const { return last_activation_ops_; }

  // --- transactional engine propagation (src/state) -----------------------
  // While suspended, controller mutations do NOT mirror into the attached
  // engine; resume performs one atomic sync, so workers observe either none
  // or all of the suspended ops (a transaction is a single epoch bump).
  // Suspension nests (suspend twice → resume twice).
  void suspend_engine_refresh();
  void resume_engine_refresh();
  bool engine_refresh_suspended() const { return refresh_suspended_ > 0; }
  // Force one engine sync now (used after an out-of-band dataplane import).
  void flush_engine() { refresh_engine(true); }

  // --- durable-state export / import (src/state checkpoints) --------------
  // Controller-level management state; the dataplane and DPMU are exported
  // separately. PortKey -1 encodes the wildcard (all-ports) binding.
  struct ExportedState {
    std::vector<std::pair<std::int32_t, std::uint64_t>> live_bindings;
    std::vector<std::pair<std::string,
                          std::vector<std::pair<std::int32_t, VdevId>>>>
        configs;  // name → [(port key, vdev)]
    std::string active_config;
    std::uint64_t last_activation_ops = 0;
  };
  ExportedState export_state() const;
  void import_state(const ExportedState& s);

 private:
  // Mirror the dataplane's current state into the attached engine (no-op
  // when none is attached or refresh is suspended, unless forced).
  void refresh_engine(bool force = false);

  PersonaGenerator gen_;
  std::unique_ptr<bm::Switch> sw_;
  std::unique_ptr<Dpmu> dpmu_;
  Hp4Compiler compiler_;
  engine::TrafficEngine* engine_ = nullptr;

  using PortKey = std::int32_t;  // -1 = wildcard
  static PortKey port_key(std::optional<std::uint16_t> p) {
    return p ? static_cast<PortKey>(*p) : -1;
  }
  std::map<PortKey, std::uint64_t> live_bindings_;  // port → binding handle
  std::map<std::string,
           std::vector<std::pair<std::optional<std::uint16_t>, VdevId>>>
      configs_;
  std::string active_config_;
  std::size_t last_activation_ops_ = 0;
  int refresh_suspended_ = 0;
  bool refresh_pending_ = false;  // a mutation happened while suspended
};

}  // namespace hyper4::hp4
