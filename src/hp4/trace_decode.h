// Persona-aware trace decoding (the observability half of §5–§6's
// equivalence claim).
//
// An obs::PipelineTracer attached to the persona dataplane records events
// in *persona* terms: hits in t1_ext, ladder write-backs, vnet decisions.
// The decoder maps those back into the emulated program's vocabulary using
// the DPMU's entry-origin reverse map (which virtual device installed each
// persona entry) and the per-device Hp4Artifact (stage/source → emulated
// table, persona action_id → emulated action). A trace of the *native*
// switch running the same program decodes near-identically, so the two
// decoded traces are directly comparable — that is what
// first_divergence_report() and the golden-trace conformance suite do.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hp4/dpmu.h"
#include "obs/tracer.h"

namespace hyper4::hp4 {

struct DecodedEvent {
  enum class Kind {
    kInject,      // packet entered (emulated level)
    kTraversal,   // a parser/egress work item began
    kParseError,  // parser rejected the packet
    kTableApply,  // an *emulated* table was applied
    kWriteback,   // persona write-back ladder (bytes restored to wire)
    kResubmit,
    kRecirculate,
    kClone,
    kMulticast,   // one replication copy
    kDrop,        // packet instance dropped (emulated level)
    kEmit,        // packet left on a physical port
    kMachinery,   // persona plumbing with no emulated counterpart
  };
  Kind kind = Kind::kMachinery;
  // True for persona-internal events (setup/concat/vnet/ladder resubmits…).
  // The emulated view — what native-vs-persona comparison uses — excludes
  // machinery and structural (traversal/parse-error) events.
  bool machinery = false;
  std::size_t packet = 0;     // injection ordinal within the trace
  std::uint32_t traversal = 0;
  std::string vdev;           // emulated device name; "" = native/unknown
  std::string table;          // emulated table (kTableApply)
  std::string action;         // emulated action that ran
  std::string detail;         // free-form decoding notes
  bool hit = false;
  std::uint16_t port = 0;
  std::uint64_t vhandle = 0;  // virtual rule handle (persona hits)
  std::uint64_t bytes = 0;    // emit/writeback/inject sizes

  static const char* kind_name(Kind k);
  // Stable one-line serialization (no timestamps) — the golden-trace
  // fixture format.
  std::string line() const;
};

struct DecodedTrace {
  std::vector<DecodedEvent> events;

  // Events both backends must agree on: inject / table applies / clones /
  // multicast copies / drops / emits, machinery excluded.
  std::vector<DecodedEvent> emulated_view() const;

  // One line() per event; with_machinery=false restricts to the emulated
  // view. Ends with a trailing newline when non-empty.
  std::string serialize(bool with_machinery = true) const;
};

// Decode a native switch's trace: the identity mapping (tables and actions
// are already in emulated terms), with TM/parser events classified the same
// way as the persona decoder classifies theirs.
DecodedTrace decode_native_trace(const obs::PipelineTracer& tracer);

// Decodes persona traces for every device loaded into the DPMU. Snapshot
// semantics: the decoder captures the entry-origin map at construction, so
// build it after configuration and before decoding.
class TraceDecoder {
 public:
  explicit TraceDecoder(const Dpmu& dpmu);

  DecodedTrace decode(const obs::PipelineTracer& tracer) const;

 private:
  const Dpmu& dpmu_;
  std::map<std::pair<std::string, std::uint64_t>, Dpmu::EntryOrigin> origins_;
};

// Human-readable first-divergence report between the emulated views of two
// decoded traces (lhs is conventionally the native reference). Tolerant of
// the one systematic structural difference — persona guard entries turn a
// control-flow skip into an explicit miss — by skipping unmatched
// table-apply misses on either side. Returns "" when the views agree.
std::string first_divergence_report(const DecodedTrace& native,
                                    const DecodedTrace& persona);

}  // namespace hyper4::hp4
