#include "hp4/compiler.h"

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>

#include "bm/cli.h"
#include "util/strings.h"

namespace hyper4::hp4 {

using p4::Program;
using util::BitVec;
using util::CommandError;
using util::ConfigError;

namespace {

std::string hexv(const BitVec& v) { return "0x" + v.to_hex(); }

// Entry priorities inside the shared persona stage tables.
constexpr std::int32_t kGuardPriority = 1;
constexpr std::int32_t kRuleBasePriority = 10;
constexpr std::int32_t kDefaultRulePriority = 500;
constexpr std::int32_t kLoadTimeExecPriority = 100;
constexpr std::int32_t kPerEntryExecPriority = 10;
constexpr std::int32_t kCatchAllPriority = 1000000;

struct PathWalkState {
  std::string state;
  std::size_t cursor_bits = 0;
  std::vector<std::pair<std::string, std::size_t>> headers;  // name, byte off
  std::vector<ParsePath::Constraint> constraints;
};

}  // namespace

const TableSpec& Hp4Artifact::table(const std::string& name) const {
  for (const auto& t : tables)
    if (t.name == name) return t;
  throw ConfigError("hp4: program '" + program_name + "' has no emulated table '" +
                    name + "'");
}

std::uint64_t VPortMap::to_vport(std::uint16_t phys) const {
  auto it = phys_to_vport.find(phys);
  if (it == phys_to_vport.end())
    throw CommandError("hp4: no vport mapped to physical port " +
                       std::to_string(phys));
  return it->second;
}

// ---------------------------------------------------------------------------
// Compilation

Hp4Artifact Hp4Compiler::compile(const Program& target) const {
  cfg_.validate();
  Hp4Artifact art;
  art.program_name = target.name;
  art.cfg = cfg_;
  const std::size_t E = cfg_.extracted_bits;
  const std::size_t M = cfg_.meta_bits;

  // --- metadata layout & validity bits --------------------------------------
  {
    std::size_t moff = 0;
    std::size_t vbit = 0;
    for (const auto& inst : target.instances) {
      if (inst.is_stack())
        throw UnsupportedFeature("hp4: header stacks are not emulated ('" +
                                 inst.name + "')");
      if (inst.metadata) {
        const p4::HeaderType& t = target.header_type(inst.type);
        for (const auto& f : t.fields) {
          if (moff + f.width > M)
            throw UnsupportedFeature("hp4: emulated metadata exceeds " +
                                     std::to_string(M) + " bits");
          art.field_locs[inst.name + "." + f.name] =
              FieldLoc{Domain::kMeta, M - moff - f.width, f.width};
          moff += f.width;
        }
      } else {
        if (vbit >= kValidityBits)
          throw UnsupportedFeature("hp4: too many header instances");
        art.validity_bits[inst.name] = vbit++;
      }
    }
  }
  art.field_locs[p4::kStandardMetadata + "." + p4::kFieldEgressSpec] =
      FieldLoc{Domain::kVEgress, 0, kVPortBits};
  art.field_locs[p4::kStandardMetadata + "." + p4::kFieldEgressPort] =
      FieldLoc{Domain::kVEgress, 0, kVPortBits};
  art.field_locs[p4::kStandardMetadata + "." + p4::kFieldIngressPort] =
      FieldLoc{Domain::kVIngress, 0, kVPortBits};

  // --- parse-path enumeration -------------------------------------------------
  {
    std::map<std::string, std::size_t> header_offsets;  // byte offset, fixed
    std::int32_t prio = kRuleBasePriority;
    if (!target.has_parser_state("start"))
      throw UnsupportedFeature("hp4: target has no parser");

    // Recursive DFS, visiting non-default select cases before the default
    // so vparse entry priorities reproduce first-match-wins semantics.
    std::function<void(PathWalkState, std::size_t)> walk =
        [&](PathWalkState st, std::size_t depth) {
          if (depth > 32)
            throw UnsupportedFeature("hp4: parse graph too deep (loop?)");
          if (art.parse_paths.size() > 256)
            throw UnsupportedFeature("hp4: too many parse paths");

          auto finish = [&](bool drops) {
            ParsePath p;
            p.headers = st.headers;
            p.constraints = st.constraints;
            p.drops = drops;
            p.bytes_needed = (st.cursor_bits + 7) / 8;
            p.priority = prio++;
            art.parse_paths.push_back(std::move(p));
          };

          const p4::ParserState& ps = target.parser_state(st.state);
          for (const auto& ex : ps.extracts) {
            const std::size_t off = st.cursor_bits / 8;
            if (st.cursor_bits % 8 != 0)
              throw UnsupportedFeature("hp4: non-byte-aligned header '" + ex + "'");
            auto it = header_offsets.find(ex);
            if (it != header_offsets.end() && it->second != off)
              throw UnsupportedFeature(
                  "hp4: header '" + ex +
                  "' has different offsets on different parse paths");
            header_offsets[ex] = off;
            st.headers.emplace_back(ex, off);
            st.cursor_bits += target.instance_type(ex).width_bits();
            if (st.cursor_bits > 8 * cfg_.parse_max_bytes)
              throw UnsupportedFeature(
                  "hp4: parse path needs more than the persona's maximum of " +
                  std::to_string(cfg_.parse_max_bytes) + " bytes");
          }
          for (const auto& s : ps.sets) {
            (void)s;
            throw UnsupportedFeature(
                "hp4: parser set_metadata is not emulated");
          }

          // Bit position of each select key within `extracted`.
          struct KeyBits {
            std::size_t lsb;
            std::size_t width;
          };
          std::vector<KeyBits> kb;
          std::size_t total_w = 0;
          for (const auto& k : ps.select) {
            if (k.is_current) {
              kb.push_back(KeyBits{E - st.cursor_bits - k.current_offset -
                                       k.current_width,
                                   k.current_width});
              total_w += k.current_width;
            } else {
              bool found = false;
              for (const auto& [hname, hoff] : st.headers) {
                const p4::HeaderType& ht = target.instance_type(hname);
                if (k.field.header == hname && ht.has_field(k.field.field)) {
                  const std::size_t foff = ht.field_offset(k.field.field);
                  const std::size_t fw = ht.field_def(k.field.field).width;
                  kb.push_back(KeyBits{E - 8 * hoff - foff - fw, fw});
                  total_w += fw;
                  found = true;
                  break;
                }
              }
              if (!found)
                throw UnsupportedFeature("hp4: select on '" + k.field.str() +
                                         "' which is not extracted packet data");
            }
          }

          if (ps.select.empty()) {
            const auto& c = ps.cases[0];
            if (c.next_state == p4::kParserAccept) return finish(false);
            if (c.next_state == p4::kParserDrop) return finish(true);
            PathWalkState nxt = st;
            nxt.state = c.next_state;
            return walk(std::move(nxt), depth + 1);
          }

          auto follow = [&](const p4::ParserCase& c, PathWalkState nxt) {
            if (c.next_state == p4::kParserAccept) {
              std::swap(st, nxt);
              finish(false);
              std::swap(st, nxt);
            } else if (c.next_state == p4::kParserDrop) {
              std::swap(st, nxt);
              finish(true);
              std::swap(st, nxt);
            } else {
              nxt.state = c.next_state;
              walk(std::move(nxt), depth + 1);
            }
          };

          for (const auto& c : ps.cases) {
            PathWalkState nxt = st;
            if (!c.is_default) {
              // Slice the case value/mask across the keys (MSB first).
              std::size_t consumed = 0;
              for (const auto& k : kb) {
                const std::size_t vlsb = total_w - consumed - k.width;
                BitVec seg = c.value.slice(vlsb, k.width);
                BitVec segm = c.mask ? c.mask->slice(vlsb, k.width)
                                     : BitVec::ones(k.width);
                ParsePath::Constraint con;
                con.value = BitVec(E);
                con.mask = BitVec(E);
                con.value.set_slice(k.lsb, seg & segm);
                con.mask.set_slice(k.lsb, segm);
                nxt.constraints.push_back(std::move(con));
                consumed += k.width;
              }
            }
            follow(c, std::move(nxt));
            if (c.is_default) break;  // cases after a default are dead
          }
        };

    PathWalkState init;
    init.state = "start";
    walk(std::move(init), 0);

    // Field locations for packet headers (offsets are path-invariant by
    // construction above).
    for (const auto& [hname, hoff] : header_offsets) {
      const p4::HeaderType& ht = target.instance_type(hname);
      for (const auto& f : ht.fields) {
        const std::size_t foff = ht.field_offset(f.name);
        art.field_locs[hname + "." + f.name] = FieldLoc{
            Domain::kExtracted, E - 8 * hoff - foff - f.width, f.width};
      }
    }
  }

  // --- numbytes ------------------------------------------------------------------
  {
    std::size_t raw = 0;
    for (const auto& p : art.parse_paths)
      raw = std::max(raw, p.bytes_needed);
    const auto ladder = cfg_.parse_ladder();
    auto it = std::find_if(ladder.begin(), ladder.end(),
                           [&](std::size_t n) { return n >= raw; });
    if (it == ladder.end())
      throw UnsupportedFeature("hp4: program needs " + std::to_string(raw) +
                               " bytes, beyond the parse ladder maximum");
    art.numbytes = *it;
    art.needs_resubmit = art.numbytes > ladder.front();
  }

  // --- checksum fix-up ---------------------------------------------------------
  for (const auto& cf : target.calculated_fields) {
    const p4::HeaderType& ht = target.instance_type(cf.field.header);
    if (ht.width_bits() != 160 || ht.field_offset(cf.field.field) != 80)
      throw UnsupportedFeature(
          "hp4: only the IPv4 header checksum is supported (§5.3)");
    std::size_t offset = 0;
    bool found = false;
    for (const auto& p : art.parse_paths) {
      for (const auto& [h, off] : p.headers) {
        if (h == cf.field.header) {
          offset = off;
          found = true;
        }
      }
    }
    if (!found) continue;
    if (std::find(cfg_.ipv4_csum_offsets.begin(), cfg_.ipv4_csum_offsets.end(),
                  offset) == cfg_.ipv4_csum_offsets.end())
      throw UnsupportedFeature(
          "hp4: IPv4 checksum at byte offset " + std::to_string(offset) +
          " is not in the persona's configured offset set");
    art.csum_offset = offset;
  }

  // --- control linearization -----------------------------------------------------
  struct Cond {
    std::string header;
    bool expect_valid = true;
  };
  struct Lin {
    std::string table;
    std::vector<Cond> conds;
    bool egress = false;
  };
  std::vector<Lin> lins;
  {
    std::function<void(const p4::Control&, std::size_t, std::vector<Cond>, bool)>
        walk = [&](const p4::Control& c, std::size_t idx, std::vector<Cond> conds,
                   bool egress) {
          std::size_t steps = 0;
          while (idx != p4::kEndOfControl) {
            if (++steps > c.nodes.size() + 1)
              throw UnsupportedFeature("hp4: control graph loop");
            const p4::ControlNode& n = c.nodes[idx];
            if (n.kind == p4::ControlNode::Kind::kApply) {
              if (!n.on_action.empty() || n.on_hit || n.on_miss)
                throw UnsupportedFeature(
                    "hp4: hit/miss/action-based control flow on table '" +
                    n.table + "' is not emulated");
              lins.push_back(Lin{n.table, conds, egress});
              idx = n.next_default;
            } else {
              // Supported: valid(h) / not valid(h).
              const p4::ExprPtr& e = n.condition;
              std::string hdr;
              bool expect = true;
              if (e && e->op == p4::ExprOp::kValid) {
                hdr = e->fref.header;
              } else if (e && e->op == p4::ExprOp::kLNot &&
                         e->children[0]->op == p4::ExprOp::kValid) {
                hdr = e->children[0]->fref.header;
                expect = false;
              } else {
                throw UnsupportedFeature(
                    "hp4: only valid()-based conditionals are emulated (got " +
                    (e ? e->str() : std::string("null")) + ")");
              }
              auto tconds = conds;
              tconds.push_back(Cond{hdr, expect});
              auto fconds = conds;
              fconds.push_back(Cond{hdr, !expect});
              walk(c, n.next_true, std::move(tconds), egress);
              walk(c, n.next_false, std::move(fconds), egress);
              return;
            }
          }
        };
    if (!target.ingress.empty()) walk(target.ingress, 0, {}, false);
    if (!target.egress.empty()) walk(target.egress, 0, {}, true);
  }
  if (lins.size() > cfg_.num_stages)
    throw UnsupportedFeature(
        "hp4: program needs " + std::to_string(lins.size()) +
        " match-action stages; persona is configured for " +
        std::to_string(cfg_.num_stages));
  if (lins.empty())
    throw UnsupportedFeature("hp4: program applies no tables");

  // --- table specs ------------------------------------------------------------------
  for (std::size_t i = 0; i < lins.size(); ++i) {
    const p4::TableDef& td = target.table(lins[i].table);
    TableSpec ts;
    ts.name = td.name;
    ts.stage = i + 1;
    ts.in_egress = lins[i].egress;

    bool any_std = false, any_other = false, all_meta = true;
    for (const auto& k : td.keys) {
      TableSpec::Key key;
      key.type = k.type;
      if (k.type == p4::MatchType::kValid) {
        auto it = art.validity_bits.find(k.field.header);
        if (it == art.validity_bits.end())
          throw UnsupportedFeature("hp4: valid() match on unknown header '" +
                                   k.field.header + "'");
        key.is_valid_key = true;
        key.validity_bit = it->second;
        all_meta = false;
        any_other = true;
      } else {
        auto it = art.field_locs.find(k.field.str());
        if (it == art.field_locs.end())
          throw UnsupportedFeature("hp4: match field '" + k.field.str() +
                                   "' is never extracted");
        key.loc = it->second;
        if (key.loc.domain == Domain::kVEgress ||
            key.loc.domain == Domain::kVIngress) {
          any_std = true;
        } else {
          any_other = true;
          if (key.loc.domain != Domain::kMeta) all_meta = false;
        }
      }
      ts.keys.push_back(key);
      if (k.type == p4::MatchType::kRange)
        throw UnsupportedFeature("hp4: range matching is not emulated (§5.3)");
    }
    if (any_std && any_other)
      throw UnsupportedFeature(
          "hp4: table '" + td.name +
          "' mixes standard-metadata keys with other keys");
    ts.source = any_std ? MatchSource::kStdMeta
                        : (all_meta && !td.keys.empty() ? MatchSource::kMeta
                                                        : MatchSource::kExtracted);
    ts.next_code = 0;  // patched below
    art.tables.push_back(std::move(ts));
  }
  for (std::size_t i = 0; i + 1 < art.tables.size(); ++i) {
    art.tables[i].next_code =
        next_table_code(art.tables[i + 1].stage, art.tables[i + 1].source);
  }

  // Guards from path conditions: the first (and only) condition guards the
  // stage; the skip target is the first later stage whose conditions do not
  // include it.
  for (std::size_t i = 0; i < lins.size(); ++i) {
    if (lins[i].conds.empty()) continue;
    if (lins[i].conds.size() > 1)
      throw UnsupportedFeature("hp4: nested conditionals are not emulated");
    const Cond& c = lins[i].conds[0];
    TableSpec::Guard g;
    auto it = art.validity_bits.find(c.header);
    if (it == art.validity_bits.end())
      throw UnsupportedFeature("hp4: conditional on unknown header '" +
                               c.header + "'");
    g.validity_bit = it->second;
    g.expect_valid = c.expect_valid;
    g.next_code_on_skip = 0;
    for (std::size_t j = i + 1; j < lins.size(); ++j) {
      const bool same_branch =
          !lins[j].conds.empty() && lins[j].conds[0].header == c.header &&
          lins[j].conds[0].expect_valid == c.expect_valid;
      if (!same_branch) {
        g.next_code_on_skip =
            next_table_code(art.tables[j].stage, art.tables[j].source);
        break;
      }
    }
    if (art.tables[i].source == MatchSource::kStdMeta)
      throw UnsupportedFeature(
          "hp4: conditionals guarding standard-metadata tables");
    art.tables[i].guard = g;
  }

  // --- action specs --------------------------------------------------------------
  {
    std::set<std::string> action_names;
    for (const auto& ts : art.tables) {
      const p4::TableDef& td = target.table(ts.name);
      for (const auto& a : td.actions) action_names.insert(a);
      if (!td.default_action.empty()) action_names.insert(td.default_action);
    }
    std::size_t next_id = 1;
    for (const auto& an : action_names) {
      const p4::ActionDef& ad = target.action(an);
      ActionSpec spec;
      spec.name = an;
      spec.action_id = next_id++;

      auto loc_of = [&](const p4::FieldRef& f) -> FieldLoc {
        auto it = art.field_locs.find(f.str());
        if (it == art.field_locs.end())
          throw UnsupportedFeature("hp4: action '" + an + "' touches '" +
                                   f.str() + "' which is never extracted");
        return it->second;
      };
      for (const auto& call : ad.body) {
        PrimSpec ps;
        using PK = PrimSpec::Arg::Kind;
        auto const_arg = [&](BitVec v) {
          PrimSpec::Arg a;
          a.kind = PK::kConst;
          a.value = std::move(v);
          return a;
        };
        auto param_arg = [&](std::size_t idx, std::size_t shift,
                             std::size_t width, bool negate = false) {
          PrimSpec::Arg a;
          a.kind = PK::kParam;
          a.param_index = idx;
          a.shift = shift;
          a.width = width;
          a.negate = negate;
          ps.per_entry = true;
          return a;
        };

        switch (call.op) {
          case p4::Primitive::kNoOp:
            ps.type = PrimType::kNoop;
            break;
          case p4::Primitive::kDrop:
            ps.type = PrimType::kDrop;
            break;
          case p4::Primitive::kModifyField: {
            const p4::ActionArg& dst_a = call.args[0];
            const p4::ActionArg& src_a = call.args[1];
            if (dst_a.kind != p4::ActionArg::Kind::kField)
              throw UnsupportedFeature("hp4: modify_field destination kind");
            const FieldLoc dst = loc_of(dst_a.field);
            BitVec opt_mask;  // optional third arg, const only
            bool has_mask = call.args.size() >= 3;
            if (has_mask) {
              if (call.args[2].kind != p4::ActionArg::Kind::kConst)
                throw UnsupportedFeature(
                    "hp4: modify_field with non-constant mask");
              opt_mask = call.args[2].value;
            }

            ps.type = PrimType::kMod;
            const std::size_t wide =
                dst.domain == Domain::kMeta ? M : E;
            auto dst_mask = [&]() {
              BitVec m = BitVec::mask_range(wide, dst.lsb, dst.width);
              if (has_mask) {
                BitVec shifted(wide);
                shifted.set_slice(dst.lsb, opt_mask.resized(dst.width));
                m = m & shifted;
              }
              return m;
            };

            if (dst.domain == Domain::kVEgress) {
              if (src_a.kind == p4::ActionArg::Kind::kParam) {
                ps.exec_action = kActModVegressConst;
                PrimSpec::Arg a;
                a.kind = PK::kParamVPort;
                a.param_index = src_a.param_index;
                ps.per_entry = true;
                ps.args = {a};
              } else if (src_a.kind == p4::ActionArg::Kind::kConst) {
                throw UnsupportedFeature(
                    "hp4: constant egress ports must be action parameters");
              } else if (src_a.kind == p4::ActionArg::Kind::kField) {
                const FieldLoc src = loc_of(src_a.field);
                if (src.domain == Domain::kVIngress) {
                  ps.exec_action = kActModVegressVingress;
                } else if (src.domain == Domain::kMeta) {
                  ps.exec_action = kActModVegressMeta;
                  ps.args = {
                      const_arg(BitVec::mask_range(M, src.lsb, src.width)),
                      const_arg(BitVec(16, src.lsb))};
                } else {
                  throw UnsupportedFeature(
                      "hp4: egress_spec from packet data is not emulated");
                }
              }
              break;
            }
            if (dst.domain == Domain::kVIngress)
              throw UnsupportedFeature("hp4: writing the ingress port");

            const bool dst_ext = dst.domain == Domain::kExtracted;
            switch (src_a.kind) {
              case p4::ActionArg::Kind::kConst: {
                BitVec v(wide);
                v.set_slice(dst.lsb, src_a.value.resized(dst.width));
                ps.exec_action = dst_ext ? kActModExtConst : kActModMetaConst;
                ps.args = {const_arg(std::move(v)), const_arg(dst_mask())};
                break;
              }
              case p4::ActionArg::Kind::kParam: {
                ps.exec_action = dst_ext ? kActModExtConst : kActModMetaConst;
                ps.args = {param_arg(src_a.param_index, dst.lsb, dst.width),
                           const_arg(dst_mask())};
                break;
              }
              case p4::ActionArg::Kind::kField: {
                const FieldLoc src = loc_of(src_a.field);
                if (src.domain == Domain::kVIngress) {
                  if (dst_ext)
                    throw UnsupportedFeature(
                        "hp4: ingress port into packet data is not emulated");
                  ps.exec_action = kActModMetaVingress;
                  ps.args = {const_arg(BitVec(16, dst.lsb)),
                             const_arg(dst_mask())};
                  break;
                }
                if (src.domain == Domain::kVEgress)
                  throw UnsupportedFeature("hp4: reading egress_spec");
                const bool src_ext = src.domain == Domain::kExtracted;
                const std::size_t src_wide = src_ext ? E : M;
                if (src.width < dst.width)
                  throw UnsupportedFeature(
                      "hp4: widening field-to-field modify_field");
                // Copy dst.width low-order bits of the source field.
                const std::size_t eff_src_lsb = src.lsb;
                ps.exec_action = dst_ext
                                     ? (src_ext ? kActModExtExt : kActModExtMeta)
                                     : (src_ext ? kActModMetaExt : kActModMetaMeta);
                ps.args = {const_arg(BitVec::mask_range(src_wide, eff_src_lsb,
                                                        dst.width)),
                           const_arg(BitVec(16, eff_src_lsb)),
                           const_arg(BitVec(16, dst.lsb)),
                           const_arg(dst_mask())};
                break;
              }
              default:
                throw UnsupportedFeature("hp4: modify_field source kind");
            }
            break;
          }
          case p4::Primitive::kAddToField:
          case p4::Primitive::kSubtractFromField: {
            const bool sub = call.op == p4::Primitive::kSubtractFromField;
            const p4::ActionArg& dst_a = call.args[0];
            const p4::ActionArg& v_a = call.args[1];
            if (dst_a.kind != p4::ActionArg::Kind::kField)
              throw UnsupportedFeature("hp4: add_to_field destination kind");
            const FieldLoc dst = loc_of(dst_a.field);
            if (dst.domain != Domain::kExtracted && dst.domain != Domain::kMeta)
              throw UnsupportedFeature("hp4: add_to_field on this destination");
            const bool dst_ext = dst.domain == Domain::kExtracted;
            const std::size_t wide = dst_ext ? E : M;
            ps.type = PrimType::kAddSub;
            ps.exec_action = dst_ext ? kActAddExt : kActAddMeta;
            PrimSpec::Arg delta;
            if (v_a.kind == p4::ActionArg::Kind::kConst) {
              BitVec d = v_a.value.resized(dst.width);
              if (sub) d = BitVec(dst.width) - d;
              delta = const_arg(d.resized(wide));
            } else if (v_a.kind == p4::ActionArg::Kind::kParam) {
              delta = param_arg(v_a.param_index, 0, dst.width, sub);
            } else {
              throw UnsupportedFeature("hp4: field-valued add_to_field");
            }
            ps.args = {delta,
                       const_arg(BitVec::mask_range(wide, dst.lsb, dst.width)),
                       const_arg(BitVec(16, dst.lsb))};
            break;
          }
          case p4::Primitive::kAddHeader:
          case p4::Primitive::kRemoveHeader: {
            // Only supported for single-parse-path programs (offsets are
            // unambiguous); see DESIGN.md.
            std::size_t accept_paths = 0;
            for (const auto& p : art.parse_paths)
              if (!p.drops) ++accept_paths;
            if (accept_paths != 1)
              throw UnsupportedFeature(
                  "hp4: add/remove_header needs a single-path parser");
            const std::string& hname = call.args[0].name;
            const p4::HeaderType& ht = target.instance_type(hname);
            const std::size_t nbytes = ht.width_bits() / 8;
            // The egress write-back stage restores the parsed region at a
            // byte count from the write-back ladder; a resize whose delta is
            // off the ladder quantum would land between rungs and silently
            // re-emit at the wrong size.
            if (cfg_.writeback_step_bytes == 0 ||
                nbytes % cfg_.writeback_step_bytes != 0)
              throw UnsupportedFeature(
                  "hp4: add/remove_header of " + std::to_string(nbytes) +
                  " bytes; the persona write-back ladder quantum is " +
                  std::to_string(cfg_.writeback_step_bytes) + " bytes");
            // Offset: position of the header on the path (for remove) or
            // its deparse position (for add).
            std::size_t off = 0;
            bool found = false;
            for (const auto& p : art.parse_paths) {
              for (const auto& [h, o] : p.headers) {
                if (h == hname) {
                  off = o;
                  found = true;
                }
              }
            }
            if (!found)
              throw UnsupportedFeature(
                  "hp4: add/remove_header on a never-parsed header");
            const std::size_t pos_bits = 8 * off;
            const BitVec himask =
                pos_bits == 0 ? BitVec(E)
                              : BitVec::mask_range(E, E - pos_bits, pos_bits);
            ps.type = PrimType::kResize;
            if (call.op == p4::Primitive::kAddHeader) {
              ps.exec_action = kActResizeInsert;
              ps.args = {const_arg(BitVec(8, nbytes)), const_arg(himask),
                         const_arg(~himask), const_arg(BitVec(16, 8 * nbytes))};
            } else {
              ps.exec_action = kActResizeRemove;
              const BitVec tail = BitVec::mask_range(
                  E, 0, E - pos_bits - 8 * nbytes);
              ps.args = {const_arg(BitVec(8, (256 - nbytes) & 0xff)),
                         const_arg(himask), const_arg(tail),
                         const_arg(BitVec(16, 8 * nbytes))};
            }
            break;
          }
          default:
            throw UnsupportedFeature(std::string("hp4: primitive '") +
                                     p4::primitive_name(call.op) +
                                     "' is not emulated (§5.3)");
        }
        spec.prims.push_back(std::move(ps));
      }
      if (spec.prims.size() > cfg_.max_primitives)
        throw UnsupportedFeature(
            "hp4: action '" + an + "' uses " +
            std::to_string(spec.prims.size()) +
            " primitives; persona allows " +
            std::to_string(cfg_.max_primitives));
      art.actions[an] = std::move(spec);
    }
  }

  // --- static commands -----------------------------------------------------------
  {
    auto& out = art.static_commands;
    const std::uint64_t first_code =
        next_table_code(art.tables[0].stage, art.tables[0].source);

    // vparse entries, one per parse path.
    for (const auto& p : art.parse_paths) {
      BitVec value(E), mask(E);
      for (const auto& c : p.constraints) {
        value = value | c.value;
        mask = mask | c.mask;
      }
      std::ostringstream os;
      if (p.drops) {
        os << "table_add " << tbl_vparse() << " " << kActParseMiss
           << " [program] " << hexv(value) << "&&&" << hexv(mask) << " => "
           << p.priority;
      } else {
        BitVec validity(kValidityBits);
        for (const auto& [h, off] : p.headers)
          validity.set_bit(art.validity_bits.at(h), true);
        std::size_t csum = 0;
        if (art.csum_offset != 0) {
          for (const auto& [h, off] : p.headers) {
            if (off == art.csum_offset &&
                target.instance_type(h).width_bits() == 160)
              csum = art.csum_offset;
          }
        }
        os << "table_add " << tbl_vparse() << " " << kActSetParse
           << " [program] " << hexv(value) << "&&&" << hexv(mask) << " => "
           << hexv(validity) << " " << first_code << " " << csum << " "
           << p.priority;
      }
      out.push_back(os.str());
    }

    // Guard + catch-all entries per stage table.
    for (std::size_t i = 0; i < art.tables.size(); ++i) {
      const TableSpec& ts = art.tables[i];
      const std::string tname = tbl_stage_match(ts.stage, ts.source);
      auto key_cols = [&](const std::string& second,
                          const std::string& third) {
        return " [program] " + second + " " + third + " ";
      };
      const std::string wild_ext = "0x0&&&0x0";

      if (ts.guard) {
        BitVec gv(kValidityBits), gm(kValidityBits);
        gm.set_bit(ts.guard->validity_bit, true);
        // Guard entry matches the *negation* of the condition.
        gv.set_bit(ts.guard->validity_bit, !ts.guard->expect_valid);
        std::ostringstream os;
        os << "table_add " << tname << " " << kActMatchResult
           << key_cols(hexv(gv) + "&&&" + hexv(gm), wild_ext) << "=> 0 0 0 "
           << ts.guard->next_code_on_skip << " " << kGuardPriority;
        out.push_back(os.str());
      }

      // Catch-all: the target's default action (or "continue, no prims").
      const p4::TableDef& td = target.table(ts.name);
      std::size_t aid = 0, pc = 0;
      if (!td.default_action.empty()) {
        const ActionSpec& as = art.actions.at(td.default_action);
        for (const auto& prim : as.prims) {
          if (prim.per_entry)
            throw UnsupportedFeature(
                "hp4: default action '" + td.default_action +
                "' with runtime parameters");
        }
        aid = as.action_id;
        pc = as.prims.size();
      }
      std::ostringstream os;
      os << "table_add " << tname << " " << kActMatchResult
         << key_cols(wild_ext, wild_ext) << "=> 0 " << aid << " " << pc << " "
         << ts.next_code << " " << kCatchAllPriority;
      out.push_back(os.str());
    }

    // Primitive setup entries + load-time exec entries, deduplicated per
    // (stage, action, slot).
    std::set<std::string> seen;
    for (const auto& ts : art.tables) {
      const p4::TableDef& td = target.table(ts.name);
      std::set<std::string> acts(td.actions.begin(), td.actions.end());
      if (!td.default_action.empty()) acts.insert(td.default_action);
      for (const auto& an : acts) {
        const ActionSpec& as = art.actions.at(an);
        for (std::size_t slot = 1; slot <= as.prims.size(); ++slot) {
          const PrimSpec& prim = as.prims[slot - 1];
          const std::string dedup = std::to_string(ts.stage) + ":" +
                                    std::to_string(as.action_id) + ":" +
                                    std::to_string(slot);
          if (!seen.insert(dedup).second) continue;
          {
            std::ostringstream os;
            os << "table_add " << tbl_prim_setup(ts.stage, slot) << " "
               << kActLoadPrim << " [program] " << as.action_id << " => "
               << static_cast<std::uint64_t>(prim.type);
            out.push_back(os.str());
          }
          if (!prim.per_entry && (prim.type == PrimType::kMod ||
                                  prim.type == PrimType::kAddSub ||
                                  prim.type == PrimType::kResize)) {
            std::ostringstream os;
            os << "table_add " << tbl_prim_exec(ts.stage, slot, prim.type)
               << " " << prim.exec_action << " [program] " << as.action_id
               << " 0x0&&&0x0 =>";
            for (const auto& a : prim.args) os << " " << hexv(a.value);
            os << " " << kLoadTimeExecPriority;
            out.push_back(os.str());
          }
        }
      }
    }
  }

  return art;
}

// ---------------------------------------------------------------------------
// Intermediate artifact rendering

std::string Hp4Artifact::intermediate_text() const {
  std::ostringstream os;
  os << "# HyPer4 intermediate commands file\n";
  os << "# target program: " << program_name << "\n";
  os << "# numbytes: " << numbytes
     << (needs_resubmit ? " (resubmit required)" : "") << "\n";
  os << "# tokens resolved at load time: [program]\n";
  os << "#\n# -- virtual parse paths (" << parse_paths.size() << ")\n";
  std::size_t i = 0;
  for (const auto& cmd : static_commands) {
    if (i == parse_paths.size()) os << "#\n# -- stage guards and defaults\n";
    os << cmd << "\n";
    ++i;
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Runtime rule translation

namespace {

// Parse one CLI key token into (value, mask) within `width` bits.
std::pair<BitVec, BitVec> parse_key_vm(const std::string& tok,
                                       p4::MatchType type, std::size_t width) {
  switch (type) {
    case p4::MatchType::kExact:
      return {bm::parse_value(tok, width), BitVec::ones(width)};
    case p4::MatchType::kValid: {
      const bool v = util::parse_uint(tok) != 0;
      return {BitVec(1, v ? 1 : 0), BitVec::ones(1)};
    }
    case p4::MatchType::kTernary: {
      const auto pos = tok.find("&&&");
      if (pos == std::string::npos)
        throw CommandError("hp4: ternary key expects value&&&mask: " + tok);
      const BitVec m = bm::parse_value(tok.substr(pos + 3), width);
      return {bm::parse_value(tok.substr(0, pos), width) & m, m};
    }
    case p4::MatchType::kLpm: {
      const auto pos = tok.rfind('/');
      if (pos == std::string::npos)
        throw CommandError("hp4: lpm key expects value/len: " + tok);
      const std::size_t len = util::parse_uint(tok.substr(pos + 1));
      const BitVec m =
          len == 0 ? BitVec(width) : BitVec::mask_range(width, width - len, len);
      return {bm::parse_value(tok.substr(0, pos), width) & m, m};
    }
    default:
      throw CommandError("hp4: unsupported match type in rule");
  }
}

}  // namespace

std::vector<std::string> translate_rule(const Hp4Artifact& art,
                                        const VirtualRule& rule,
                                        std::uint64_t program_id,
                                        std::uint64_t match_id,
                                        const VPortMap& ports) {
  const TableSpec& ts = art.table(rule.table);
  const std::size_t E = art.cfg.extracted_bits;
  const std::size_t M = art.cfg.meta_bits;
  if (rule.keys.size() != ts.keys.size())
    throw CommandError("hp4: rule for '" + rule.table + "' has " +
                       std::to_string(rule.keys.size()) + " keys, expected " +
                       std::to_string(ts.keys.size()));
  auto ait = art.actions.find(rule.action);
  if (ait == art.actions.end())
    throw CommandError("hp4: unknown action '" + rule.action +
                       "' for emulated program");
  const ActionSpec& as = ait->second;

  // Accumulate the persona match key.
  BitVec val_v(kValidityBits), msk_v(kValidityBits);
  BitVec val_e(E), msk_e(E);
  BitVec val_m(M), msk_m(M);
  BitVec val_vi(kVPortBits), msk_vi(kVPortBits);
  BitVec val_ve(kVPortBits), msk_ve(kVPortBits);
  std::size_t total_lpm_len = 0;
  bool has_lpm = false;

  // Distinct target fields can overlap in `extracted` (e.g. tcp.dstPort and
  // udp.dstPort share bytes, disambiguated by validity bits), so slices are
  // OR-merged; genuinely conflicting constraints are rejected.
  auto merge_slice = [&](BitVec& val, BitVec& msk, std::size_t lsb,
                         const BitVec& v, const BitVec& m) {
    const std::size_t w = m.width();
    const BitVec old_m = msk.slice(lsb, w);
    const BitVec both = old_m & m;
    if (both.any() && !((val.slice(lsb, w) & both) == (v & both)))
      throw CommandError("hp4: rule for '" + rule.table +
                         "' has conflicting overlapping key constraints");
    val.set_slice(lsb, val.slice(lsb, w) | (v & m));
    msk.set_slice(lsb, old_m | m);
  };

  for (std::size_t i = 0; i < ts.keys.size(); ++i) {
    const TableSpec::Key& k = ts.keys[i];
    if (k.is_valid_key) {
      auto [v, m] = parse_key_vm(rule.keys[i], p4::MatchType::kValid, 1);
      val_v.set_bit(k.validity_bit, v.get_bit(0));
      msk_v.set_bit(k.validity_bit, true);
      continue;
    }
    auto [v, m] = parse_key_vm(rule.keys[i], k.type, k.loc.width);
    if (k.type == p4::MatchType::kLpm) {
      has_lpm = true;
      total_lpm_len += m.popcount();
    }
    switch (k.loc.domain) {
      case Domain::kExtracted:
        merge_slice(val_e, msk_e, k.loc.lsb, v, m);
        break;
      case Domain::kMeta:
        merge_slice(val_m, msk_m, k.loc.lsb, v, m);
        break;
      case Domain::kVEgress: {
        // Port-valued: translate the physical port to the vdev's vport.
        const std::uint64_t vport =
            ports.to_vport(static_cast<std::uint16_t>(v.low_u64()));
        val_ve = BitVec(kVPortBits, vport);
        msk_ve = BitVec::ones(kVPortBits);
        break;
      }
      case Domain::kVIngress: {
        const std::uint64_t vport =
            ports.to_vport(static_cast<std::uint16_t>(v.low_u64()));
        val_vi = BitVec(kVPortBits, vport);
        msk_vi = BitVec::ones(kVPortBits);
        break;
      }
    }
  }

  std::int32_t prio = kRuleBasePriority;
  if (rule.priority >= 0) {
    prio += rule.priority;
  } else if (has_lpm) {
    // DPMU-managed priorities emulate longest-prefix-first (§5.3).
    const std::size_t max_len = E;
    prio += static_cast<std::int32_t>(max_len - total_lpm_len);
  } else {
    prio += kDefaultRulePriority;
  }

  std::vector<std::string> out;
  {
    std::ostringstream os;
    os << "table_add " << tbl_stage_match(ts.stage, ts.source) << " "
       << kActMatchResult << " " << program_id << " ";
    switch (ts.source) {
      case MatchSource::kExtracted:
        os << hexv(val_v) << "&&&" << hexv(msk_v) << " " << hexv(val_e)
           << "&&&" << hexv(msk_e);
        break;
      case MatchSource::kMeta:
        os << hexv(val_v) << "&&&" << hexv(msk_v) << " " << hexv(val_m)
           << "&&&" << hexv(msk_m);
        break;
      case MatchSource::kStdMeta:
        os << hexv(val_vi) << "&&&" << hexv(msk_vi) << " " << hexv(val_ve)
           << "&&&" << hexv(msk_ve);
        break;
    }
    os << " => " << match_id << " " << as.action_id << " " << as.prims.size()
       << " " << ts.next_code << " " << prio;
    out.push_back(os.str());
  }

  // Per-entry exec entries for parameter-dependent primitives.
  for (std::size_t slot = 1; slot <= as.prims.size(); ++slot) {
    const PrimSpec& prim = as.prims[slot - 1];
    if (!prim.per_entry) continue;
    std::ostringstream os;
    os << "table_add " << tbl_prim_exec(ts.stage, slot, prim.type) << " "
       << prim.exec_action << " " << program_id << " " << as.action_id << " "
       << match_id << "&&&0xffffffff =>";
    for (const auto& a : prim.args) {
      switch (a.kind) {
        case PrimSpec::Arg::Kind::kConst:
          os << " " << hexv(a.value);
          break;
        case PrimSpec::Arg::Kind::kParam: {
          if (a.param_index >= rule.args.size())
            throw CommandError("hp4: rule for '" + rule.table +
                               "' is missing action arguments");
          BitVec v = bm::parse_value(rule.args[a.param_index], a.width);
          if (a.negate) v = BitVec(a.width) - v;
          // Place into the wide operand space expected by the exec action.
          const std::size_t wide_bits =
              prim.exec_action == kActModMetaConst ||
                      prim.exec_action == kActAddMeta
                  ? M
                  : E;
          BitVec placed(wide_bits);
          placed.set_slice(a.shift, v);
          os << " " << hexv(placed);
          break;
        }
        case PrimSpec::Arg::Kind::kParamVPort: {
          if (a.param_index >= rule.args.size())
            throw CommandError("hp4: rule for '" + rule.table +
                               "' is missing action arguments");
          const BitVec v = bm::parse_value(rule.args[a.param_index], 16);
          os << " "
             << ports.to_vport(static_cast<std::uint16_t>(v.low_u64()));
          break;
        }
      }
    }
    os << " " << kPerEntryExecPriority;
    out.push_back(os.str());
  }
  return out;
}

}  // namespace hyper4::hp4
