// The HyPer4 compiler (§5.2): translates a target p4::Program into the
// table entries that make the persona emulate it.
//
// Compilation produces an Hp4Artifact holding
//   - the static analysis (parse paths, field layout inside `extracted` /
//     `ext_meta`, validity-bit assignment, stage assignment for every
//     target table, per-action primitive specs), and
//   - the *intermediate commands file*: human-readable command lines with
//     load-time tokens such as [program] (exactly the paper's two-step
//     artifact flow — tokens are substituted when the program is loaded
//     into a slot).
//
// Runtime table operations on the emulated program (the DPMU's job) are
// translated entry-by-entry with translate_rule(): one native-style Rule
// becomes one persona match entry plus per-primitive exec entries.
//
// Supported target-language subset (limits mirror §5.3):
//   - parser DAGs over non-stack headers with field/current selects;
//   - exact / ternary / lpm / valid match keys (lpm via DPMU-managed
//     priorities, the paper's "second option");
//   - ingress control: linear apply chains with valid()-conditional
//     branches whose arms do not re-join; egress: linear apply chain;
//   - primitives: modify_field (incl. mask), add_to_field,
//     subtract_from_field, drop, no_op, add_header/remove_header
//     (single-parse-path programs), and reads of standard metadata
//     ingress_port / writes of egress_spec (virtualised through vports);
//   - one IPv4-style checksum calculated field at a configured offset.
// Anything else throws UnsupportedFeature with a precise message.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hp4/persona.h"
#include "p4/ir.h"
#include "util/bitvec.h"
#include "util/error.h"

namespace hyper4::hp4 {

class UnsupportedFeature : public util::Error {
 public:
  explicit UnsupportedFeature(const std::string& what) : util::Error(what) {}
};

// Where an emulated value lives inside the persona.
enum class Domain { kExtracted, kMeta, kVEgress, kVIngress };

struct FieldLoc {
  Domain domain = Domain::kExtracted;
  std::size_t lsb = 0;    // within extracted / ext_meta (LSB-based)
  std::size_t width = 0;  // bits
};

// One enumerated path through the target's parse graph.
struct ParsePath {
  struct Constraint {
    util::BitVec value;  // over the persona `extracted` field
    util::BitVec mask;
  };
  std::vector<std::pair<std::string, std::size_t>> headers;  // name, byte off
  std::vector<Constraint> constraints;
  bool drops = false;
  std::size_t bytes_needed = 0;
  std::int32_t priority = 0;  // vparse entry priority (specific first)
};

// How one primitive of a target action maps onto the persona.
struct PrimSpec {
  PrimType type = PrimType::kNoop;
  std::string exec_action;  // persona exec action (MOD/ADDSUB/RESIZE only)
  struct Arg {
    enum class Kind { kConst, kParam, kParamVPort };
    Kind kind = Kind::kConst;
    util::BitVec value;           // kConst: final value
    std::size_t param_index = 0;  // kParam / kParamVPort
    // kParam transform: place the (width)-bit value at bit `shift`, after
    // optional two's-complement negation (subtract_from_field).
    std::size_t shift = 0;
    std::size_t width = 0;
    bool negate = false;
  };
  std::vector<Arg> args;
  // True when any arg depends on runtime action parameters: the exec entry
  // must then be installed per table entry (keyed by match_id) rather than
  // once per action.
  bool per_entry = false;
};

struct ActionSpec {
  std::string name;
  std::size_t action_id = 0;  // persona action_id (per program; 0 = none)
  std::vector<PrimSpec> prims;
};

struct TableSpec {
  std::string name;
  std::size_t stage = 0;  // 1-based persona stage
  MatchSource source = MatchSource::kExtracted;
  // Per-target-key translation info, in key order.
  struct Key {
    p4::MatchType type = p4::MatchType::kExact;
    FieldLoc loc;                   // for field keys
    std::size_t validity_bit = 0;   // for valid keys
    bool is_valid_key = false;
  };
  std::vector<Key> keys;
  // next_table code installed by this stage's hit entries.
  std::uint64_t next_code = 0;
  // Guard: when set, packets failing `cond` skip this table.
  struct Guard {
    std::size_t validity_bit = 0;
    bool expect_valid = true;        // condition was valid(h) (vs !valid(h))
    std::uint64_t next_code_on_skip = 0;
  };
  std::optional<Guard> guard;
  bool in_egress = false;  // target placed it in egress (see DESIGN.md note)
};

struct Hp4Artifact {
  std::string program_name;
  PersonaConfig cfg;
  std::size_t numbytes = 0;        // ladder-rounded extraction requirement
  bool needs_resubmit = false;     // numbytes > ladder default
  std::map<std::string, std::size_t> validity_bits;  // header → bit index
  std::map<std::string, FieldLoc> field_locs;        // "hdr.field" → location
  std::vector<ParsePath> parse_paths;
  std::map<std::string, ActionSpec> actions;
  std::vector<TableSpec> tables;   // in stage order
  std::size_t csum_offset = 0;     // 0 = no IPv4 checksum fix-up

  // Static (load-time) persona commands with [program] tokens: vparse
  // entries, guard entries, catch-all (default-action) entries, primitive
  // setup entries and action-constant exec entries.
  std::vector<std::string> static_commands;

  const TableSpec& table(const std::string& name) const;

  // Pretty, commented rendition of the static commands — the paper's
  // *intermediate* commands file.
  std::string intermediate_text() const;
};

class Hp4Compiler {
 public:
  explicit Hp4Compiler(PersonaConfig cfg) : cfg_(std::move(cfg)) {}

  // Compile `target`; throws UnsupportedFeature / ConfigError on programs
  // outside the supported subset.
  Hp4Artifact compile(const p4::Program& target) const;

 private:
  PersonaConfig cfg_;
};

// --- runtime translation (used by the DPMU) ---------------------------------

// Physical port ↔ vport mapping for one virtual device instance.
struct VPortMap {
  // vport → physical port (for a_vfwd_phys) — owned by the controller.
  std::map<std::uint64_t, std::uint16_t> vport_to_phys;
  // physical port token → vport (translating port-valued rule arguments).
  std::map<std::uint16_t, std::uint64_t> phys_to_vport;

  std::uint64_t to_vport(std::uint16_t phys) const;
};

// A native-style rule (same shape as apps::Rule, duplicated here to keep
// hp4 independent of the apps library).
struct VirtualRule {
  std::string table;
  std::string action;
  std::vector<std::string> keys;  // CLI value syntax per target key
  std::vector<std::string> args;
  std::int32_t priority = -1;
};

// Translate one rule into persona command lines (no tokens — program id,
// vports and match id are resolved here).
std::vector<std::string> translate_rule(const Hp4Artifact& art,
                                        const VirtualRule& rule,
                                        std::uint64_t program_id,
                                        std::uint64_t match_id,
                                        const VPortMap& ports);

}  // namespace hyper4::hp4
