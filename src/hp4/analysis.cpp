#include "hp4/analysis.h"

namespace hyper4::hp4 {

std::set<std::string> referenced_tables(const Hp4Artifact& art) {
  std::set<std::string> out;
  out.insert(tbl_setup_a());
  out.insert(tbl_setup_b());
  out.insert(tbl_vparse());
  out.insert(tbl_vnet());
  out.insert(tbl_eg_writeback());
  if (art.csum_offset != 0) out.insert(tbl_eg_csum());

  for (const auto& ts : art.tables) {
    out.insert(tbl_stage_match(ts.stage, ts.source));
  }
  // Parse the static commands for slot-table references — exact by
  // construction (they were generated per (stage, action, slot)).
  for (const auto& cmd : art.static_commands) {
    // "table_add <table> ..." — take the second token.
    const auto sp1 = cmd.find(' ');
    const auto sp2 = cmd.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) continue;
    out.insert(cmd.substr(sp1 + 1, sp2 - sp1 - 1));
  }
  // Transition tables accompany every setup table referenced.
  std::set<std::string> with_tx = out;
  for (const auto& t : out) {
    const auto pos = t.rfind("_setup");
    if (pos != std::string::npos && t[0] == 's') {
      with_tx.insert(t.substr(0, pos) + "_tx");
      // The noop/drop exec tables are reachable for every staged slot.
    }
  }
  return with_tx;
}

std::size_t shared_table_count(const Hp4Artifact& a, const Hp4Artifact& b) {
  const auto ta = referenced_tables(a);
  const auto tb = referenced_tables(b);
  std::size_t n = 0;
  for (const auto& t : ta)
    if (tb.contains(t)) ++n;
  return n;
}

std::size_t unique_table_count(const Hp4Artifact& a, const Hp4Artifact& b) {
  const auto ta = referenced_tables(a);
  const auto tb = referenced_tables(b);
  std::size_t n = 0;
  for (const auto& t : ta)
    if (!tb.contains(t)) ++n;
  return n;
}

std::size_t extracted_entry_bits(const PersonaConfig& cfg) {
  return 2 * cfg.extracted_bits + kProgramBits;
}

std::size_t meta_entry_bits(const PersonaConfig& cfg) {
  return 2 * cfg.meta_bits + kProgramBits;
}

}  // namespace hyper4::hp4
