// The HyPer4 persona: a generated P4 program that emulates other P4
// programs purely through its table entries (§4 of the paper).
//
// PersonaGenerator plays the role of the paper's 900-LoC Python
// configuration script: given a PersonaConfig it produces
//   - the persona as a p4::Program (runnable on bm::Switch),
//   - the "base" command file that initializes program-independent entries
//     (byte-concatenation and write-back ladders, catch-alls), and
//   - P4-14 source text of the persona (via hp4::emit_p4), whose line
//     count reproduces Figure 7 and whose table count reproduces Figure 8.
//
// Persona structure (mirrors Figure 6):
//   parser      : ladder of states extracting {default, +step, ..., max}
//                 single-byte `pr` headers, selected by hp4_meta.numbytes
//   setup_a     : ternary [program, ingress_port] → assign program id,
//                 numbytes, virtual ingress port; resubmit when more bytes
//                 are needed (a_set_program_resub)
//   setup_b     : exact [bytes_extracted] → concatenate pr[] into the wide
//                 `extracted` field (one generated action per ladder value)
//   vparse      : ternary [program, extracted] → virtual parse-path
//                 resolution: header validity bitmap, initial next_table,
//                 IPv4-checksum offset
//   stages 1..K : per stage, match tables per data source (extracted /
//                 emulated metadata / standard metadata); a hit loads
//                 match_id, action_id, prim_count and the *next* stage's
//                 table selector
//   slots  1..P : per (stage, slot) a setup table (action_id → primitive
//                 type), one exec table per primitive behaviour
//                 (mod / addsub / drop / noop / resize), and a transition
//                 table — the paper's three tables per primitive
//   vnet        : ternary [program, virt_egress] → physical port, next
//                 virtual device (recirculate), or drop
//   egress      : exact [resize] → write-back actions copying `extracted`
//                 into the pr[] stack and resizing it (the paper's "80
//                 actions", one per byte count)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "p4/ir.h"

namespace hyper4::hp4 {

struct PersonaConfig {
  // Maximum number of emulated match-action stages (paper test config: 4).
  std::size_t num_stages = 4;
  // Maximum primitives per compound action (paper test config: 9).
  std::size_t max_primitives = 9;
  // Parse ladder: default, step and maximum byte counts (paper: 20/10/100).
  std::size_t parse_default_bytes = 20;
  std::size_t parse_step_bytes = 10;
  std::size_t parse_max_bytes = 100;
  // Width of the consolidated extracted-data field (paper: 800 bits).
  std::size_t extracted_bits = 800;
  // Width of the consolidated emulated-metadata field (paper: 256 bits).
  std::size_t meta_bits = 256;
  // Byte offsets at which an emulated IPv4 header checksum can be fixed up
  // (the paper's "cheat" for well-known protocols; 14 = after Ethernet).
  std::vector<std::size_t> ipv4_csum_offsets = {14};
  // Granularity of the generated write-back/resize actions. The paper
  // generates one action per byte count (80 actions); we default to the
  // parse-ladder step to keep the generated source compact (see DESIGN.md).
  std::size_t writeback_step_bytes = 10;
  // §4.5's proposed ingress-buffer protection: a meter at the start of the
  // ingress pipeline, indexed by program ID, that kills traffic above a
  // per-device threshold (protects against recirculation storms). Off by
  // default — it adds one match stage to every traversal.
  bool ingress_meter = false;
  std::uint64_t meter_rate_pps = 1000;
  std::uint64_t meter_burst = 64;
  // Number of meter cells (bounds the number of simultaneous program IDs
  // the meter can police).
  std::size_t meter_cells = 1024;

  // Ladder of byte counts the parser can extract: default, +step, ..., max.
  std::vector<std::size_t> parse_ladder() const;
  // Byte counts the write-back stage supports.
  std::vector<std::size_t> writeback_ladder() const;
  void validate() const;  // throws ConfigError on nonsense
};

// ---------------------------------------------------------------------------
// Shared encodings (generator, compiler and DPMU must agree on these).

// hp4_meta field names.
inline const std::string kMeta = "hp4_meta";
inline const std::string kFProgram = "program";
inline const std::string kFNumBytes = "numbytes";
inline const std::string kFBytesExtracted = "bytes_extracted";
inline const std::string kFExtracted = "extracted";
inline const std::string kFExtMeta = "ext_meta";
inline const std::string kFValidity = "vvalidity";
inline const std::string kFNextTable = "next_table";
inline const std::string kFMatchId = "match_id";
inline const std::string kFActionId = "action_id";
inline const std::string kFPrimCount = "prim_count";
inline const std::string kFPrimType = "prim_type";
inline const std::string kFVirtEgress = "virt_egress";
inline const std::string kFVirtIngress = "virt_ingress";
inline const std::string kFResize = "resize";
inline const std::string kFCsumOffset = "csum_offset";
inline const std::string kFTmp = "tmp";

inline constexpr std::size_t kProgramBits = 16;
inline constexpr std::size_t kValidityBits = 32;
inline constexpr std::size_t kNextTableBits = 16;
inline constexpr std::size_t kMatchIdBits = 32;
inline constexpr std::size_t kActionIdBits = 16;
inline constexpr std::size_t kVPortBits = 16;

// virt_egress sentinel meaning "emulated program dropped the packet".
inline constexpr std::uint64_t kVirtDrop = 0xFFFF;

// Match-table data sources within a stage.
enum class MatchSource : std::uint64_t {
  kExtracted = 1,  // [program, vvalidity, extracted]  (ternary)
  kMeta = 2,       // [program, ext_meta]               (ternary)
  kStdMeta = 3,    // [program, virt_ingress, virt_egress] (ternary)
};

// next_table encoding: stage s (1-based) with source m → s * 8 + m; 0 ends
// match-action emulation (proceed to vnet).
inline std::uint64_t next_table_code(std::size_t stage, MatchSource m) {
  return stage * 8 + static_cast<std::uint64_t>(m);
}

// Primitive behaviours the persona can execute (prim_type values).
enum class PrimType : std::uint64_t {
  kNoop = 1,
  kMod = 2,
  kAddSub = 3,
  kDrop = 4,
  kResize = 5,
};
inline constexpr std::size_t kNumPrimTypes = 5;
const char* prim_type_name(PrimType t);

// --- persona action names (shared by generator, compiler, DPMU) -------------
inline const std::string kActSetProgram = "a_set_program";
inline const std::string kActSetProgramResub = "a_set_program_resub";
inline const std::string kActSetupSkip = "a_setup_skip";
inline const std::string kActSetParse = "a_set_parse";
inline const std::string kActParseMiss = "a_parse_miss";
inline const std::string kActMatchResult = "a_match_result";
inline const std::string kActMatchMiss = "a_match_miss";
inline const std::string kActLoadPrim = "a_load_prim";
inline const std::string kActModExtConst = "a_mod_ext_const";
inline const std::string kActModExtExt = "a_mod_ext_ext";
inline const std::string kActModExtMeta = "a_mod_ext_meta";
inline const std::string kActModMetaConst = "a_mod_meta_const";
inline const std::string kActModMetaMeta = "a_mod_meta_meta";
inline const std::string kActModMetaExt = "a_mod_meta_ext";
inline const std::string kActModMetaVingress = "a_mod_meta_vingress";
inline const std::string kActModVegressConst = "a_mod_vegress_const";
inline const std::string kActModVegressMeta = "a_mod_vegress_meta";
inline const std::string kActModVegressVingress = "a_mod_vegress_vingress";
inline const std::string kActAddExt = "a_add_ext";
inline const std::string kActAddMeta = "a_add_meta";
inline const std::string kActVirtDrop = "a_virt_drop";
inline const std::string kActExecNoop = "a_exec_noop";
inline const std::string kActResizeSet = "a_resize_set";
inline const std::string kActResizeInsert = "a_resize_insert";
inline const std::string kActResizeRemove = "a_resize_remove";
inline const std::string kActTx = "a_tx";
inline const std::string kActVfwdPhys = "a_vfwd_phys";
inline const std::string kActVfwdVdev = "a_vfwd_vdev";
inline const std::string kActVfwdMcast = "a_vfwd_mcast";
inline const std::string kActVdrop = "a_vdrop";
inline const std::string kActMeterCheck = "a_meter_check";
inline const std::string kActMeterPunish = "a_meter_punish";
inline const std::string kIngressMeter = "hp4_ingress_meter";
inline std::string act_concat(std::size_t n) {
  return "a_concat_" + std::to_string(n);
}
inline std::string act_writeback(std::size_t n) {
  return "a_wb_" + std::to_string(n);
}
inline std::string act_ipv4_csum(std::size_t offset) {
  return "a_ipv4_csum_" + std::to_string(offset);
}
inline const std::string kFlResubmit = "fl_resubmit";
inline const std::string kFlRecirculate = "fl_recirculate";
inline const std::string kPrStack = "pr";

// --- persona table names ----------------------------------------------------
std::string tbl_setup_a();
std::string tbl_setup_b();
std::string tbl_vparse();
std::string tbl_stage_match(std::size_t stage, MatchSource m);
std::string tbl_prim_setup(std::size_t stage, std::size_t slot);
std::string tbl_prim_exec(std::size_t stage, std::size_t slot, PrimType t);
std::string tbl_prim_tx(std::size_t stage, std::size_t slot);
std::string tbl_vnet();
std::string tbl_meter();       // only when cfg.ingress_meter
std::string tbl_meter_drop();  // only when cfg.ingress_meter
std::string tbl_eg_csum();
std::string tbl_eg_writeback();

// --- the generator -----------------------------------------------------------
class PersonaGenerator {
 public:
  explicit PersonaGenerator(PersonaConfig cfg);

  const PersonaConfig& config() const { return cfg_; }

  // The persona program (validated).
  p4::Program generate() const;

  // Program-independent base entries (CLI command text): concatenation
  // ladder, write-back ladder, physical defaults, catch-alls.
  std::string base_commands() const;

 private:
  PersonaConfig cfg_;
};

}  // namespace hyper4::hp4
