#include "bm/runtime_table.h"

#include <algorithm>

#include "util/error.h"

namespace hyper4::bm {

using util::BitVec;
using util::CommandError;

namespace {
// All-ones in the low `w` bit positions of a word (w in [0, 64]).
inline std::uint64_t ones64(std::size_t w) {
  if (w == 0) return 0;
  return (~std::uint64_t{0}) >> (64 - w);
}
}  // namespace

KeyParam KeyParam::exact(BitVec v) {
  KeyParam k;
  k.value = std::move(v);
  return k;
}
KeyParam KeyParam::ternary(BitVec v, BitVec m) {
  KeyParam k;
  k.value = v & m;  // store pre-masked
  k.mask = std::move(m);
  return k;
}
KeyParam KeyParam::lpm(BitVec v, std::size_t prefix_len) {
  KeyParam k;
  k.value = std::move(v);
  k.prefix_len = prefix_len;
  return k;
}
KeyParam KeyParam::valid(bool v) {
  KeyParam k;
  k.value = BitVec(1, v ? 1 : 0);
  return k;
}
KeyParam KeyParam::range(BitVec lo, BitVec hi) {
  KeyParam k;
  k.value = std::move(lo);
  k.range_hi = std::move(hi);
  return k;
}

RuntimeTable::RuntimeTable(std::string name, std::vector<KeySpec> keys,
                           std::size_t max_size)
    : name_(std::move(name)), keys_(std::move(keys)), max_size_(max_size) {
  for (const auto& k : keys_) {
    if (k.type != p4::MatchType::kExact && k.type != p4::MatchType::kValid) {
      all_exact_ = false;
    }
    if (k.type == p4::MatchType::kRange) has_range_ = true;
    total_width_ += k.width;
  }
  if (all_exact_) {
    kind_ = IndexKind::kExactHash;
  } else if (keys_.size() == 1 && keys_[0].type == p4::MatchType::kLpm) {
    kind_ = IndexKind::kPureLpm;
  } else {
    kind_ = IndexKind::kTernaryScan;
  }
  use_u64_ = total_width_ <= 64 && !has_range_;
  // LSB offset of each component in the packed image: component 0 is the
  // most significant (matches the big-endian byte concatenation).
  shifts_.resize(keys_.size(), 0);
  std::size_t shift = 0;
  for (std::size_t i = keys_.size(); i-- > 0;) {
    shifts_[i] = shift;
    shift += keys_[i].width;
  }
  // Reserve the raw-byte probe scratch once so even the first wide-key
  // lookup allocates nothing.
  std::size_t bytes = 0;
  for (const auto& k : keys_) bytes += (k.width + 7) / 8;
  probe_.reserve(bytes);
}

const char* RuntimeTable::index_kind_name() const {
  switch (kind_) {
    case IndexKind::kExactHash: return use_u64_ ? "exact-hash/u64" : "exact-hash";
    case IndexKind::kPureLpm:
      return keys_[0].width <= 64 ? "lpm-buckets/u64" : "lpm-buckets";
    case IndexKind::kTernaryScan:
      return use_u64_ ? "ternary-scan/u64" : "ternary-scan";
  }
  return "?";
}

// --- packed-u64 images ------------------------------------------------------

std::uint64_t RuntimeTable::pack_key(const std::vector<BitVec>& key) const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    v |= key[i].low_bits_u64(keys_[i].width) << shifts_[i];
  }
  return v;
}

std::uint64_t RuntimeTable::pack_entry_value(
    const std::vector<KeyParam>& key) const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    v |= key[i].value.low_bits_u64(keys_[i].width) << shifts_[i];
  }
  return v;
}

void RuntimeTable::pack_entry_scan(const TableEntry& e, std::uint64_t* value,
                                   std::uint64_t* mask) const {
  std::uint64_t v = 0, m = 0;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    const KeySpec& spec = keys_[i];
    const KeyParam& kp = e.key[i];
    const std::size_t w = spec.width;
    std::uint64_t cm = 0;
    switch (spec.type) {
      case p4::MatchType::kExact:
      case p4::MatchType::kValid:
        cm = ones64(w);
        break;
      case p4::MatchType::kTernary:
        cm = kp.mask->low_bits_u64(w);
        break;
      case p4::MatchType::kLpm:
        cm = ones64(w) & ~ones64(w - *kp.prefix_len);
        break;
      case p4::MatchType::kRange:
        // excluded from the fast path (use_u64_ is false); unreachable
        break;
    }
    v |= (kp.value.low_bits_u64(w) & cm) << shifts_[i];
    m |= cm << shifts_[i];
  }
  *value = v;
  *mask = m;
}

void RuntimeTable::exact_key_bytes(const std::vector<KeyParam>& key,
                                   std::string& out) const {
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    key[i].value.append_bytes(out, keys_[i].width);
  }
}

void RuntimeTable::exact_key_bytes(const std::vector<BitVec>& key,
                                   std::string& out) const {
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    key[i].append_bytes(out, keys_[i].width);
  }
}

// --- index maintenance ------------------------------------------------------

void RuntimeTable::index_insert(TableEntry* e) {
  switch (kind_) {
    case IndexKind::kExactHash:
      if (use_u64_) {
        exact64_.emplace(pack_entry_value(e->key), e);
      } else {
        std::string k;
        exact_key_bytes(e->key, k);
        exact_raw_.emplace(std::move(k), e);
      }
      break;
    case IndexKind::kPureLpm: {
      const std::size_t w = keys_[0].width;
      const std::size_t plen = *e->key[0].prefix_len;
      // Buckets stay sorted by prefix length, longest first.
      auto it = std::lower_bound(
          lpm_buckets_.begin(), lpm_buckets_.end(), plen,
          [](const LpmBucket& b, std::size_t p) { return b.plen > p; });
      if (it == lpm_buckets_.end() || it->plen != plen) {
        LpmBucket b;
        b.plen = plen;
        if (w <= 64) b.mask64 = ones64(w) & ~ones64(w - plen);
        it = lpm_buckets_.insert(it, std::move(b));
      }
      if (w <= 64) {
        // emplace keeps the first insertion on a duplicate prefix, which is
        // exactly the tie-break rule (insertion order wins).
        it->map64.emplace(
            e->key[0].value.low_bits_u64(w) & it->mask64, e);
      } else {
        it->wide.push_back(e);
      }
      break;
    }
    case IndexKind::kTernaryScan: {
      ScanRow row{prio_key(e->priority), e->handle, e};
      auto cmp = [](const ScanRow& a, const ScanRow& b) {
        return a.prio != b.prio ? a.prio < b.prio : a.seq < b.seq;
      };
      const auto pos =
          std::upper_bound(rows_.begin(), rows_.end(), row, cmp);
      const std::size_t idx =
          static_cast<std::size_t>(pos - rows_.begin());
      rows_.insert(pos, row);
      if (use_u64_) {
        std::uint64_t v = 0, m = 0;
        pack_entry_scan(*e, &v, &m);
        fast_val_.insert(fast_val_.begin() + static_cast<std::ptrdiff_t>(idx),
                         v);
        fast_mask_.insert(
            fast_mask_.begin() + static_cast<std::ptrdiff_t>(idx), m);
      }
      break;
    }
  }
}

void RuntimeTable::index_erase(const TableEntry& e) {
  switch (kind_) {
    case IndexKind::kExactHash:
      if (use_u64_) {
        exact64_.erase(pack_entry_value(e.key));
      } else {
        probe_.clear();
        exact_key_bytes(e.key, probe_);
        exact_raw_.erase(probe_);
      }
      break;
    case IndexKind::kPureLpm: {
      // Rebuild just this entry's bucket from surviving entries: a removed
      // winner may have been shadowing an identical prefix inserted later.
      const std::size_t plen = *e.key[0].prefix_len;
      auto it = std::find_if(
          lpm_buckets_.begin(), lpm_buckets_.end(),
          [&](const LpmBucket& b) { return b.plen == plen; });
      if (it == lpm_buckets_.end()) return;
      it->map64.clear();
      it->wide.clear();
      const std::size_t w = keys_[0].width;
      for (auto& [h, other] : entries_) {
        if (h == e.handle || *other.key[0].prefix_len != plen) continue;
        if (w <= 64) {
          it->map64.emplace(other.key[0].value.low_bits_u64(w) & it->mask64,
                            &other);
        } else {
          it->wide.push_back(&other);
        }
      }
      if (it->map64.empty() && it->wide.empty()) lpm_buckets_.erase(it);
      break;
    }
    case IndexKind::kTernaryScan: {
      for (std::size_t i = 0; i < rows_.size(); ++i) {
        if (rows_[i].e->handle != e.handle) continue;
        rows_.erase(rows_.begin() + static_cast<std::ptrdiff_t>(i));
        if (use_u64_) {
          fast_val_.erase(fast_val_.begin() + static_cast<std::ptrdiff_t>(i));
          fast_mask_.erase(fast_mask_.begin() +
                           static_cast<std::ptrdiff_t>(i));
        }
        break;
      }
      break;
    }
  }
}

void RuntimeTable::index_build() {
  exact64_.clear();
  exact_raw_.clear();
  lpm_buckets_.clear();
  rows_.clear();
  fast_val_.clear();
  fast_mask_.clear();
  // Handles are monotonic in insertion order, so iterating entries_ (a map
  // keyed by handle) replays the original insertion sequence.
  for (auto& [h, e] : entries_) index_insert(&e);
}

// --- mutation ---------------------------------------------------------------

std::uint64_t RuntimeTable::add(std::vector<KeyParam> key, std::size_t action,
                                std::vector<BitVec> action_args,
                                std::int32_t priority) {
  if (entries_.size() >= max_size_)
    throw CommandError("table " + name_ + ": capacity (" +
                       std::to_string(max_size_) + ") exhausted");
  if (key.size() != keys_.size())
    throw CommandError("table " + name_ + ": key arity " +
                       std::to_string(key.size()) + " != " +
                       std::to_string(keys_.size()));
  for (std::size_t i = 0; i < key.size(); ++i) {
    const KeySpec& spec = keys_[i];
    KeyParam& kp = key[i];
    switch (spec.type) {
      case p4::MatchType::kExact:
      case p4::MatchType::kValid:
        if (kp.mask || kp.prefix_len || kp.range_hi)
          throw CommandError("table " + name_ + ": key " + spec.display_name +
                             " expects an exact value");
        break;
      case p4::MatchType::kTernary:
        if (!kp.mask)
          throw CommandError("table " + name_ + ": key " + spec.display_name +
                             " expects value&&&mask");
        kp.mask = kp.mask->resized(spec.width);
        break;
      case p4::MatchType::kLpm:
        if (!kp.prefix_len)
          throw CommandError("table " + name_ + ": key " + spec.display_name +
                             " expects value/prefix_len");
        if (*kp.prefix_len > spec.width)
          throw CommandError("table " + name_ + ": prefix length " +
                             std::to_string(*kp.prefix_len) + " > width " +
                             std::to_string(spec.width));
        break;
      case p4::MatchType::kRange:
        if (!kp.range_hi)
          throw CommandError("table " + name_ + ": key " + spec.display_name +
                             " expects lo->hi");
        kp.range_hi = kp.range_hi->resized(spec.width);
        break;
    }
    kp.value = kp.value.resized(spec.width);
    if (spec.type == p4::MatchType::kTernary) kp.value = kp.value & *kp.mask;
  }

  if (kind_ == IndexKind::kExactHash) {
    bool dup;
    if (use_u64_) {
      dup = exact64_.contains(pack_entry_value(key));
    } else {
      probe_.clear();
      exact_key_bytes(key, probe_);
      dup = exact_raw_.contains(probe_);
    }
    if (dup)
      throw CommandError("table " + name_ + ": duplicate exact match entry");
  }

  TableEntry e;
  e.handle = next_handle_++;
  e.key = std::move(key);
  e.priority = priority;
  e.action = action;
  e.action_args = std::move(action_args);
  const std::uint64_t h = e.handle;
  auto [it, inserted] = entries_.emplace(h, std::move(e));
  index_insert(&it->second);
  ++epoch_;
  return h;
}

void RuntimeTable::remove(std::uint64_t handle) {
  auto it = entries_.find(handle);
  if (it == entries_.end())
    throw CommandError("table " + name_ + ": no entry with handle " +
                       std::to_string(handle));
  index_erase(it->second);
  entries_.erase(it);
  ++epoch_;
}

void RuntimeTable::modify(std::uint64_t handle, std::size_t action,
                          std::vector<BitVec> action_args) {
  TableEntry& e = mutable_entry(handle);
  e.action = action;
  e.action_args = std::move(action_args);
  // The key (and so the index) is unchanged; only the epoch moves so
  // replica-coherence checks still see the mutation.
  ++epoch_;
}

bool RuntimeTable::has_entry(std::uint64_t handle) const {
  return entries_.contains(handle);
}

const TableEntry& RuntimeTable::entry(std::uint64_t handle) const {
  auto it = entries_.find(handle);
  if (it == entries_.end())
    throw CommandError("table " + name_ + ": no entry with handle " +
                       std::to_string(handle));
  return it->second;
}

TableEntry& RuntimeTable::mutable_entry(std::uint64_t handle) {
  auto it = entries_.find(handle);
  if (it == entries_.end())
    throw CommandError("table " + name_ + ": no entry with handle " +
                       std::to_string(handle));
  return it->second;
}

std::vector<std::uint64_t> RuntimeTable::handles() const {
  std::vector<std::uint64_t> out;
  out.reserve(entries_.size());
  for (const auto& [h, e] : entries_) out.push_back(h);
  return out;
}

void RuntimeTable::set_default(std::size_t action, std::vector<BitVec> args) {
  default_action_ = action;
  default_args_ = std::move(args);
  ++epoch_;
}

std::size_t RuntimeTable::default_action() const {
  if (!default_action_)
    throw CommandError("table " + name_ + ": no default action set");
  return *default_action_;
}

// --- lookup -----------------------------------------------------------------

TableEntry* RuntimeTable::lookup(const std::vector<BitVec>& key) {
  ++applied_;
  if (key.size() < keys_.size())
    throw CommandError("table " + name_ + ": lookup key arity " +
                       std::to_string(key.size()) + " < " +
                       std::to_string(keys_.size()));
  TableEntry* e = find_match(key);
  if (e) {
    ++e->hits;
    ++hits_;
  }
  return e;
}

TableEntry* RuntimeTable::find_match(const std::vector<BitVec>& key) {
  switch (kind_) {
    case IndexKind::kExactHash: {
      if (use_u64_) {
        const auto it = exact64_.find(pack_key(key));
        return it == exact64_.end() ? nullptr : it->second;
      }
      probe_.clear();
      exact_key_bytes(key, probe_);
      const auto it = exact_raw_.find(probe_);
      return it == exact_raw_.end() ? nullptr : it->second;
    }
    case IndexKind::kPureLpm: {
      const std::size_t w = keys_[0].width;
      if (w <= 64) {
        const std::uint64_t k = key[0].low_bits_u64(w);
        for (const auto& b : lpm_buckets_) {
          const auto it = b.map64.find(k & b.mask64);
          if (it != b.map64.end()) return it->second;
        }
        return nullptr;
      }
      for (const auto& b : lpm_buckets_) {
        for (TableEntry* e : b.wide) {
          if (key[0].prefix_equals(e->key[0].value, w, b.plen)) return e;
        }
      }
      return nullptr;
    }
    case IndexKind::kTernaryScan: {
      if (use_u64_) {
        const std::uint64_t p = pack_key(key);
        const std::size_t n = rows_.size();
        for (std::size_t i = 0; i < n; ++i) {
          if ((p & fast_mask_[i]) == fast_val_[i]) return rows_[i].e;
        }
        return nullptr;
      }
      for (const ScanRow& r : rows_) {
        if (entry_matches(*r.e, key)) return r.e;
      }
      return nullptr;
    }
  }
  return nullptr;
}

bool RuntimeTable::entry_matches(const TableEntry& e,
                                 const std::vector<BitVec>& key) const {
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    const KeySpec& spec = keys_[i];
    const KeyParam& kp = e.key[i];
    const BitVec& v = key[i];
    switch (spec.type) {
      case p4::MatchType::kExact:
      case p4::MatchType::kValid:
        if (!v.equals_resized(kp.value, spec.width)) return false;
        break;
      case p4::MatchType::kTernary:
        // kp.value is stored pre-masked, so (v & mask) == value suffices;
        // masked_equals masks both sides which is the same test.
        if (!v.masked_equals(kp.value, *kp.mask)) return false;
        break;
      case p4::MatchType::kLpm:
        if (!v.prefix_equals(kp.value, spec.width, *kp.prefix_len))
          return false;
        break;
      case p4::MatchType::kRange:
        if (v.compare_resized(kp.value, spec.width) == std::strong_ordering::less ||
            kp.range_hi->compare_resized(v, spec.width) ==
                std::strong_ordering::less)
          return false;
        break;
    }
  }
  return true;
}

void RuntimeTable::clone_state_from(const RuntimeTable& src) {
  if (keys_.size() != src.keys_.size() || name_ != src.name_)
    throw util::CommandError("table '" + name_ +
                             "': clone_state_from spec mismatch with '" +
                             src.name_ + "'");
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i].type != src.keys_[i].type ||
        keys_[i].width != src.keys_[i].width)
      throw util::CommandError("table '" + name_ +
                               "': clone_state_from key spec mismatch");
  }
  entries_ = src.entries_;
  next_handle_ = src.next_handle_;
  default_action_ = src.default_action_;
  default_args_ = src.default_args_;
  applied_ = src.applied_;
  hits_ = src.hits_;
  // The replica's index must point into its *own* entries_ map; rebuild it
  // and adopt the source epoch so coherence is checkable from outside.
  index_build();
  epoch_ = src.epoch_;
}

RuntimeTable::ExportedState RuntimeTable::export_state() const {
  ExportedState s;
  s.entries.reserve(entries_.size());
  for (const auto& [h, e] : entries_) s.entries.push_back(e);
  s.next_handle = next_handle_;
  s.default_action = default_action_;
  s.default_args = default_args_;
  s.epoch = epoch_;
  s.applied = applied_;
  s.hits = hits_;
  return s;
}

void RuntimeTable::import_state(const ExportedState& s) {
  // Validate before touching any state so a bad image leaves the table
  // intact (checkpoint restore wraps this in its own all-or-nothing logic,
  // but unit callers deserve the same guarantee).
  for (const auto& e : s.entries) {
    if (e.key.size() != keys_.size())
      throw CommandError("table " + name_ + ": imported entry " +
                         std::to_string(e.handle) + " key arity " +
                         std::to_string(e.key.size()) + " != " +
                         std::to_string(keys_.size()));
    if (e.handle == 0 || e.handle >= s.next_handle)
      throw CommandError("table " + name_ + ": imported entry handle " +
                         std::to_string(e.handle) +
                         " outside [1, next_handle)");
    for (std::size_t i = 0; i < e.key.size(); ++i) {
      const KeySpec& spec = keys_[i];
      const KeyParam& kp = e.key[i];
      switch (spec.type) {
        case p4::MatchType::kExact:
        case p4::MatchType::kValid:
          if (kp.mask || kp.prefix_len || kp.range_hi)
            throw CommandError("table " + name_ + ": imported entry " +
                               std::to_string(e.handle) + " key " +
                               spec.display_name + " is not exact");
          break;
        case p4::MatchType::kTernary:
          if (!kp.mask)
            throw CommandError("table " + name_ + ": imported entry " +
                               std::to_string(e.handle) + " key " +
                               spec.display_name + " lacks a mask");
          break;
        case p4::MatchType::kLpm:
          if (!kp.prefix_len || *kp.prefix_len > spec.width)
            throw CommandError("table " + name_ + ": imported entry " +
                               std::to_string(e.handle) + " key " +
                               spec.display_name + " has a bad prefix");
          break;
        case p4::MatchType::kRange:
          if (!kp.range_hi)
            throw CommandError("table " + name_ + ": imported entry " +
                               std::to_string(e.handle) + " key " +
                               spec.display_name + " lacks a range hi");
          break;
      }
    }
  }
  {
    std::vector<std::uint64_t> hs;
    hs.reserve(s.entries.size());
    for (const auto& e : s.entries) hs.push_back(e.handle);
    std::sort(hs.begin(), hs.end());
    if (std::adjacent_find(hs.begin(), hs.end()) != hs.end())
      throw CommandError("table " + name_ + ": duplicate imported handle");
  }
  entries_.clear();
  for (const auto& e : s.entries) entries_.emplace(e.handle, e);
  next_handle_ = s.next_handle;
  default_action_ = s.default_action;
  default_args_ = s.default_args;
  applied_ = s.applied;
  hits_ = s.hits;
  index_build();
  epoch_ = s.epoch;
}

void RuntimeTable::reset_counters() {
  applied_ = 0;
  hits_ = 0;
  for (auto& [h, e] : entries_) {
    e.hits = 0;
    e.hit_bytes = 0;
  }
}

}  // namespace hyper4::bm
