#include "bm/runtime_table.h"

#include <algorithm>

#include "util/error.h"

namespace hyper4::bm {

using util::BitVec;
using util::CommandError;

KeyParam KeyParam::exact(BitVec v) {
  KeyParam k;
  k.value = std::move(v);
  return k;
}
KeyParam KeyParam::ternary(BitVec v, BitVec m) {
  KeyParam k;
  k.value = v & m;  // store pre-masked
  k.mask = std::move(m);
  return k;
}
KeyParam KeyParam::lpm(BitVec v, std::size_t prefix_len) {
  KeyParam k;
  k.value = std::move(v);
  k.prefix_len = prefix_len;
  return k;
}
KeyParam KeyParam::valid(bool v) {
  KeyParam k;
  k.value = BitVec(1, v ? 1 : 0);
  return k;
}
KeyParam KeyParam::range(BitVec lo, BitVec hi) {
  KeyParam k;
  k.value = std::move(lo);
  k.range_hi = std::move(hi);
  return k;
}

RuntimeTable::RuntimeTable(std::string name, std::vector<KeySpec> keys,
                           std::size_t max_size)
    : name_(std::move(name)), keys_(std::move(keys)), max_size_(max_size) {
  for (const auto& k : keys_) {
    if (k.type != p4::MatchType::kExact && k.type != p4::MatchType::kValid) {
      all_exact_ = false;
    }
  }
}

std::uint64_t RuntimeTable::add(std::vector<KeyParam> key, std::size_t action,
                                std::vector<BitVec> action_args,
                                std::int32_t priority) {
  if (entries_.size() >= max_size_)
    throw CommandError("table " + name_ + ": capacity (" +
                       std::to_string(max_size_) + ") exhausted");
  if (key.size() != keys_.size())
    throw CommandError("table " + name_ + ": key arity " +
                       std::to_string(key.size()) + " != " +
                       std::to_string(keys_.size()));
  for (std::size_t i = 0; i < key.size(); ++i) {
    const KeySpec& spec = keys_[i];
    KeyParam& kp = key[i];
    switch (spec.type) {
      case p4::MatchType::kExact:
      case p4::MatchType::kValid:
        if (kp.mask || kp.prefix_len || kp.range_hi)
          throw CommandError("table " + name_ + ": key " + spec.display_name +
                             " expects an exact value");
        break;
      case p4::MatchType::kTernary:
        if (!kp.mask)
          throw CommandError("table " + name_ + ": key " + spec.display_name +
                             " expects value&&&mask");
        kp.mask = kp.mask->resized(spec.width);
        break;
      case p4::MatchType::kLpm:
        if (!kp.prefix_len)
          throw CommandError("table " + name_ + ": key " + spec.display_name +
                             " expects value/prefix_len");
        if (*kp.prefix_len > spec.width)
          throw CommandError("table " + name_ + ": prefix length " +
                             std::to_string(*kp.prefix_len) + " > width " +
                             std::to_string(spec.width));
        break;
      case p4::MatchType::kRange:
        if (!kp.range_hi)
          throw CommandError("table " + name_ + ": key " + spec.display_name +
                             " expects lo->hi");
        kp.range_hi = kp.range_hi->resized(spec.width);
        break;
    }
    kp.value = kp.value.resized(spec.width);
    if (spec.type == p4::MatchType::kTernary) kp.value = kp.value & *kp.mask;
  }

  if (all_exact_) {
    const std::string ks = exact_key_string(key);
    if (exact_index_.contains(ks))
      throw CommandError("table " + name_ + ": duplicate exact match entry");
  }

  TableEntry e;
  e.handle = next_handle_++;
  e.key = std::move(key);
  e.priority = priority;
  e.action = action;
  e.action_args = std::move(action_args);
  const std::uint64_t h = e.handle;
  if (all_exact_) exact_index_[exact_key_string(e.key)] = h;
  // Unspecified priority sorts after every explicit priority.
  const std::int64_t prio =
      priority < 0 ? (std::int64_t{1} << 40) : priority;
  order_.emplace_back(prio, insert_seq_++, h);
  entries_.emplace(h, std::move(e));
  std::sort(order_.begin(), order_.end());
  return h;
}

void RuntimeTable::remove(std::uint64_t handle) {
  auto it = entries_.find(handle);
  if (it == entries_.end())
    throw CommandError("table " + name_ + ": no entry with handle " +
                       std::to_string(handle));
  if (all_exact_) exact_index_.erase(exact_key_string(it->second.key));
  entries_.erase(it);
  rebuild_order();
}

void RuntimeTable::modify(std::uint64_t handle, std::size_t action,
                          std::vector<BitVec> action_args) {
  TableEntry& e = mutable_entry(handle);
  e.action = action;
  e.action_args = std::move(action_args);
}

bool RuntimeTable::has_entry(std::uint64_t handle) const {
  return entries_.contains(handle);
}

const TableEntry& RuntimeTable::entry(std::uint64_t handle) const {
  auto it = entries_.find(handle);
  if (it == entries_.end())
    throw CommandError("table " + name_ + ": no entry with handle " +
                       std::to_string(handle));
  return it->second;
}

TableEntry& RuntimeTable::mutable_entry(std::uint64_t handle) {
  auto it = entries_.find(handle);
  if (it == entries_.end())
    throw CommandError("table " + name_ + ": no entry with handle " +
                       std::to_string(handle));
  return it->second;
}

std::vector<std::uint64_t> RuntimeTable::handles() const {
  std::vector<std::uint64_t> out;
  out.reserve(entries_.size());
  for (const auto& [h, e] : entries_) out.push_back(h);
  return out;
}

void RuntimeTable::set_default(std::size_t action, std::vector<BitVec> args) {
  default_action_ = action;
  default_args_ = std::move(args);
}

std::size_t RuntimeTable::default_action() const {
  if (!default_action_)
    throw CommandError("table " + name_ + ": no default action set");
  return *default_action_;
}

void RuntimeTable::rebuild_order() {
  order_.clear();
  // Preserve original priorities; re-derive insertion order from handles
  // (handles are monotonic, so relative order is stable).
  for (const auto& [h, e] : entries_) {
    const std::int64_t prio =
        e.priority < 0 ? (std::int64_t{1} << 40) : e.priority;
    order_.emplace_back(prio, h, h);
  }
  std::sort(order_.begin(), order_.end());
}

std::string RuntimeTable::exact_key_string(
    const std::vector<KeyParam>& key) const {
  std::string s;
  for (const auto& k : key) {
    s += k.value.to_hex();
    s.push_back('|');
  }
  return s;
}

std::string RuntimeTable::exact_key_string(
    const std::vector<BitVec>& key) const {
  std::string s;
  for (std::size_t i = 0; i < key.size(); ++i) {
    s += key[i].resized(keys_[i].width).to_hex();
    s.push_back('|');
  }
  return s;
}

const TableEntry* RuntimeTable::lookup(const std::vector<BitVec>& key) {
  ++applied_;
  if (all_exact_) {
    auto it = exact_index_.find(exact_key_string(key));
    if (it == exact_index_.end()) return nullptr;
    TableEntry& e = entries_.at(it->second);
    ++e.hits;
    ++hits_;
    return &e;
  }
  const TableEntry* best = nullptr;
  std::size_t best_lpm_len = 0;
  // Entries are sorted by (priority, insertion); the first match wins,
  // except for a pure single-key lpm table where the longest prefix wins.
  const bool pure_lpm =
      keys_.size() == 1 && keys_[0].type == p4::MatchType::kLpm;
  for (const auto& [prio, seq, h] : order_) {
    const TableEntry& e = entries_.at(h);
    if (!entry_matches(e, key)) continue;
    if (pure_lpm && e.priority < 0) {
      if (!best || *e.key[0].prefix_len > best_lpm_len) {
        best = &e;
        best_lpm_len = *e.key[0].prefix_len;
      }
      continue;
    }
    best = &e;
    break;
  }
  if (best) {
    TableEntry& e = entries_.at(best->handle);
    ++e.hits;
    ++hits_;
    return &e;
  }
  return nullptr;
}

bool RuntimeTable::entry_matches(const TableEntry& e,
                                 const std::vector<BitVec>& key) const {
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    const KeySpec& spec = keys_[i];
    const KeyParam& kp = e.key[i];
    const BitVec v = key[i].resized(spec.width);
    switch (spec.type) {
      case p4::MatchType::kExact:
      case p4::MatchType::kValid:
        if (!(v == kp.value)) return false;
        break;
      case p4::MatchType::kTernary:
        if (!((v & *kp.mask) == kp.value)) return false;
        break;
      case p4::MatchType::kLpm: {
        const std::size_t plen = *kp.prefix_len;
        if (plen == 0) break;
        const BitVec mask =
            util::BitVec::mask_range(spec.width, spec.width - plen, plen);
        if (!((v & mask) == (kp.value & mask))) return false;
        break;
      }
      case p4::MatchType::kRange:
        if (v < kp.value || *kp.range_hi < v) return false;
        break;
    }
  }
  return true;
}

void RuntimeTable::clone_state_from(const RuntimeTable& src) {
  if (keys_.size() != src.keys_.size() || name_ != src.name_)
    throw util::CommandError("table '" + name_ +
                             "': clone_state_from spec mismatch with '" +
                             src.name_ + "'");
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i].type != src.keys_[i].type ||
        keys_[i].width != src.keys_[i].width)
      throw util::CommandError("table '" + name_ +
                               "': clone_state_from key spec mismatch");
  }
  entries_ = src.entries_;
  next_handle_ = src.next_handle_;
  insert_seq_ = src.insert_seq_;
  order_ = src.order_;
  exact_index_ = src.exact_index_;
  default_action_ = src.default_action_;
  default_args_ = src.default_args_;
  applied_ = src.applied_;
  hits_ = src.hits_;
}

void RuntimeTable::reset_counters() {
  applied_ = 0;
  hits_ = 0;
  for (auto& [h, e] : entries_) {
    e.hits = 0;
    e.hit_bytes = 0;
  }
}

}  // namespace hyper4::bm
