// Layout: the compiled, id-based view of a p4::Program used by the switch
// interpreter. Header stacks are expanded into per-element instances
// ("pr" with stack_size 3 becomes runtime instances "pr[0]".."pr[2]").
// standard_metadata is always instance 0.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "p4/ir.h"

namespace hyper4::bm {

using InstanceId = std::uint32_t;
using FieldId = std::uint32_t;

inline constexpr InstanceId kStandardMetadataId = 0;

struct InstanceInfo {
  std::string name;          // "ethernet" or "pr[4]"
  std::string type_name;
  bool metadata = false;
  // Stack bookkeeping: elements know their base and index.
  bool stack_element = false;
  std::string stack_base;
  std::size_t stack_index = 0;
  std::size_t width_bits = 0;
  FieldId first_field = 0;
  std::size_t field_count = 0;
};

struct FieldInfo {
  InstanceId instance = 0;
  std::string name;
  std::size_t width = 0;
  std::size_t offset_bits = 0;  // from start of header, MSB side
};

class Layout {
 public:
  explicit Layout(const p4::Program& prog);

  const std::vector<InstanceInfo>& instances() const { return instances_; }
  const std::vector<FieldInfo>& fields() const { return fields_; }

  const InstanceInfo& instance(InstanceId id) const { return instances_[id]; }
  const FieldInfo& field(FieldId id) const { return fields_[id]; }

  // Resolve an instance name (accepts "stack[3]"); throws ConfigError.
  InstanceId instance_id(const std::string& name) const;
  bool has_instance(const std::string& name) const;

  // Resolve "instance.field"; throws ConfigError.
  FieldId field_id(const p4::FieldRef& ref) const;
  FieldId field_id(const std::string& instance, const std::string& field) const;

  // For a stack base name, the element instance ids in index order.
  const std::vector<InstanceId>& stack_elements(const std::string& base) const;
  bool is_stack(const std::string& name) const {
    return stacks_.contains(name);
  }

 private:
  void add_instance(const std::string& name, const p4::HeaderType& type,
                    bool metadata, bool stack_element,
                    const std::string& stack_base, std::size_t stack_index);

  std::vector<InstanceInfo> instances_;
  std::vector<FieldInfo> fields_;
  std::unordered_map<std::string, InstanceId> by_name_;
  std::unordered_map<std::string, FieldId> field_by_name_;  // "inst.field"
  std::unordered_map<std::string, std::vector<InstanceId>> stacks_;
};

}  // namespace hyper4::bm
