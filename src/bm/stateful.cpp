#include "bm/stateful.h"

#include <algorithm>

#include "util/error.h"

namespace hyper4::bm {

using util::CommandError;

CounterArray::CounterArray(std::string name, std::size_t instances)
    : name_(std::move(name)), packets_(instances, 0), bytes_(instances, 0) {}

void CounterArray::count(std::size_t index, std::size_t bytes) {
  if (index >= packets_.size())
    throw CommandError("counter " + name_ + ": index " +
                       std::to_string(index) + " out of range");
  ++packets_[index];
  bytes_[index] += bytes;
}

std::uint64_t CounterArray::packets(std::size_t index) const {
  if (index >= packets_.size())
    throw CommandError("counter " + name_ + ": index out of range");
  return packets_[index];
}

std::uint64_t CounterArray::bytes(std::size_t index) const {
  if (index >= bytes_.size())
    throw CommandError("counter " + name_ + ": index out of range");
  return bytes_[index];
}

void CounterArray::set(std::size_t index, std::uint64_t packets,
                       std::uint64_t bytes) {
  if (index >= packets_.size())
    throw CommandError("counter " + name_ + ": index " +
                       std::to_string(index) + " out of range");
  packets_[index] = packets;
  bytes_[index] = bytes;
}

void CounterArray::reset() {
  std::fill(packets_.begin(), packets_.end(), 0);
  std::fill(bytes_.begin(), bytes_.end(), 0);
}

RegisterArray::RegisterArray(std::string name, std::size_t width,
                             std::size_t instances)
    : name_(std::move(name)),
      width_(width),
      cells_(instances, util::BitVec(width)) {}

const util::BitVec& RegisterArray::read(std::size_t index) const {
  if (index >= cells_.size())
    throw CommandError("register " + name_ + ": index " +
                       std::to_string(index) + " out of range");
  return cells_[index];
}

void RegisterArray::write(std::size_t index, const util::BitVec& v) {
  if (index >= cells_.size())
    throw CommandError("register " + name_ + ": index " +
                       std::to_string(index) + " out of range");
  cells_[index] = v.resized(width_);
}

void RegisterArray::reset() {
  std::fill(cells_.begin(), cells_.end(), util::BitVec(width_));
}

MeterArray::MeterArray(std::string name, std::size_t instances,
                       std::uint64_t rate_pps, std::uint64_t burst)
    : name_(std::move(name)),
      rate_pps_(rate_pps),
      burst_(burst),
      buckets_(instances) {}

MeterColor MeterArray::execute(std::size_t index, double now) {
  if (index >= buckets_.size())
    throw CommandError("meter " + name_ + ": index " + std::to_string(index) +
                       " out of range");
  Bucket& b = buckets_[index];
  if (!b.primed) {
    b.tokens = static_cast<double>(burst_);
    b.last = now;
    b.primed = true;
  }
  b.tokens = std::min(static_cast<double>(burst_),
                      b.tokens + (now - b.last) * static_cast<double>(rate_pps_));
  b.last = now;
  if (b.tokens >= 1.0) {
    b.tokens -= 1.0;
    return MeterColor::kGreen;
  }
  return MeterColor::kRed;
}

void MeterArray::reset() {
  for (auto& b : buckets_) b = Bucket{};
}

std::vector<MeterArray::ExportedBucket> MeterArray::export_buckets() const {
  std::vector<ExportedBucket> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_)
    out.push_back(ExportedBucket{b.tokens, b.last, b.primed});
  return out;
}

void MeterArray::import_buckets(const std::vector<ExportedBucket>& b) {
  if (b.size() != buckets_.size())
    throw CommandError("meter " + name_ + ": imported bucket count " +
                       std::to_string(b.size()) + " != " +
                       std::to_string(buckets_.size()));
  for (std::size_t i = 0; i < b.size(); ++i)
    buckets_[i] = Bucket{b[i].tokens, b[i].last, b[i].primed};
}

}  // namespace hyper4::bm
