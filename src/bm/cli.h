// bmv2-style runtime CLI.
//
// The HyPer4 compiler (src/hp4) emits "commands files" in this syntax,
// exactly as the paper's workflow does (§5.2); the loader replays them
// against a Switch after token substitution. Supported commands:
//
//   table_add <table> <action> <k1> <k2> ... => <a1> <a2> ... [priority]
//   table_set_default <table> <action> [args...]
//   table_delete <table> <handle>
//   table_modify <table> <action> <handle> [args...]
//   table_dump <table>
//   table_index <table>          (compiled match-index kind + epoch)
//   register_write <register> <index> <value>
//   register_read <register> <index>
//   counter_read <counter> <index>
//   counter_reset <counter>
//   mirroring_add <session> <port>
//   mc_group_set <group> <port:rid> [<port:rid> ...]
//   trace on [capacity] | off | status | dump [N] | clear | chrome
//   profile on | off | dump
//
// `trace on` attaches an obs::PipelineTracer (events + timestamps +
// primitives) to the switch; `trace dump` prints the buffered ring,
// `trace chrome` emits about://tracing-loadable JSON. `profile on`
// enables per-stage/per-table latency histograms instead; `profile dump`
// prints them as JSON.
//
// Match key formats per the table's key spec: exact values as decimal,
// 0x-hex, aa:bb:cc:dd:ee:ff or a.b.c.d; ternary as value&&&mask; lpm as
// value/prefix_len; valid as 0/1; range as lo->hi. Tables with ternary or
// range keys take a trailing priority (smaller wins), like bmv2. Pure
// single-key lpm tables take no priority: longest prefix wins, ties by
// insertion order (the bmv2 rule, pinned by RuntimeTable::lookup).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bm/switch.h"

namespace hyper4::bm {

struct CliResult {
  bool ok = true;
  std::string message;       // human-readable outcome or error
  std::uint64_t handle = 0;  // entry handle for table_add
};

// Extension commands registered by higher layers (e.g. the src/vm `vm`
// command). The dispatcher consults extensions only after every built-in
// fails to match, so extensions cannot shadow core commands. A handler
// receives the full token list (handler name included) and may throw
// util::Error; the dispatcher converts that to ok=false like any built-in.
struct CliExtensions {
  std::map<std::string,
           std::function<CliResult(Switch&, const std::vector<std::string>&)>>
      commands;
};

// Execute a single command. Returns ok=false (with message) on failure
// instead of throwing, so command files can report per-line errors.
CliResult run_cli_command(Switch& sw, const std::string& line,
                          const CliExtensions* ext = nullptr);

// Execute a multi-line command text: '#' comments and blank lines are
// skipped; occurrences of each substitution key (e.g. "[program]") are
// replaced before parsing. Throws CommandError on the first failing line.
std::vector<CliResult> run_cli_text(
    Switch& sw, const std::string& text,
    const std::map<std::string, std::string>& substitutions = {});

// Parse one value token into a BitVec of the given width (decimal, hex,
// MAC, or dotted-quad forms).
util::BitVec parse_value(const std::string& token, std::size_t width);

}  // namespace hyper4::bm
