// Runtime match-action table: entry storage and lookup for the five P4-14
// match kinds. Entries carry an action id and bound action parameters;
// per-entry hit counters double as direct counters.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "p4/ir.h"
#include "util/bitvec.h"

namespace hyper4::bm {

// One component of an entry's match key, interpreted per the table's key
// spec at the same position.
struct KeyParam {
  util::BitVec value;                     // exact value / ternary value /
                                          // lpm value / valid flag / range lo
  std::optional<util::BitVec> mask;       // ternary
  std::optional<std::size_t> prefix_len;  // lpm
  std::optional<util::BitVec> range_hi;   // range

  static KeyParam exact(util::BitVec v);
  static KeyParam ternary(util::BitVec v, util::BitVec m);
  static KeyParam lpm(util::BitVec v, std::size_t prefix_len);
  static KeyParam valid(bool v);
  static KeyParam range(util::BitVec lo, util::BitVec hi);
};

struct TableEntry {
  std::uint64_t handle = 0;
  std::vector<KeyParam> key;
  // Smaller = higher precedence (bmv2 convention). Entries with equal
  // priority match in insertion order.
  std::int32_t priority = 0;
  std::size_t action = 0;  // action id within the switch
  std::vector<util::BitVec> action_args;
  std::uint64_t hits = 0;
  std::uint64_t hit_bytes = 0;
};

// Static description of one key component (bound to compiled field ids by
// the switch).
struct KeySpec {
  p4::MatchType type = p4::MatchType::kExact;
  std::uint32_t field = 0;     // FieldId; for kValid: InstanceId
  std::size_t width = 0;       // bits (1 for kValid)
  std::string display_name;    // "ethernet.dstAddr" / "valid(ipv4)"
};

class RuntimeTable {
 public:
  RuntimeTable(std::string name, std::vector<KeySpec> keys,
               std::size_t max_size);

  const std::string& name() const { return name_; }
  const std::vector<KeySpec>& keys() const { return keys_; }
  std::size_t size() const { return entries_.size(); }
  std::size_t max_size() const { return max_size_; }

  // True when every key component is exact (enables hashed lookup).
  bool all_exact() const { return all_exact_; }

  // Insert an entry; validates arity/kinds/widths. `priority` < 0 means
  // "unspecified": ordered after all prioritized entries, by insertion.
  // Throws CommandError on validation failure or capacity exhaustion.
  std::uint64_t add(std::vector<KeyParam> key, std::size_t action,
                    std::vector<util::BitVec> action_args,
                    std::int32_t priority = -1);

  void remove(std::uint64_t handle);
  void modify(std::uint64_t handle, std::size_t action,
              std::vector<util::BitVec> action_args);
  bool has_entry(std::uint64_t handle) const;
  const TableEntry& entry(std::uint64_t handle) const;
  TableEntry& mutable_entry(std::uint64_t handle);
  std::vector<std::uint64_t> handles() const;

  void set_default(std::size_t action, std::vector<util::BitVec> args);
  bool has_default() const { return default_action_.has_value(); }
  std::size_t default_action() const;
  const std::vector<util::BitVec>& default_args() const { return default_args_; }

  // Look up; returns the matched entry or nullptr (miss → default applies).
  // `key` holds the evaluated key field values in spec order.
  const TableEntry* lookup(const std::vector<util::BitVec>& key);

  // Mirror the full runtime state (entries *including handles*, insertion
  // order, default action, hit/applied counters) of another table with the
  // same key spec. The traffic engine uses this to build worker replicas
  // whose entry handles stay interchangeable with the source switch's, so
  // a handle obtained anywhere is valid everywhere. Throws CommandError on
  // a spec mismatch.
  void clone_state_from(const RuntimeTable& src);

  // Cumulative applied-count (every lookup, hit or miss).
  std::uint64_t applied_count() const { return applied_; }
  std::uint64_t hit_count() const { return hits_; }
  void reset_counters();

 private:
  bool entry_matches(const TableEntry& e,
                     const std::vector<util::BitVec>& key) const;
  std::string exact_key_string(const std::vector<KeyParam>& key) const;
  std::string exact_key_string(const std::vector<util::BitVec>& key) const;
  void rebuild_order();

  std::string name_;
  std::vector<KeySpec> keys_;
  std::size_t max_size_;
  bool all_exact_ = true;

  std::map<std::uint64_t, TableEntry> entries_;  // by handle
  std::uint64_t next_handle_ = 1;
  std::uint64_t insert_seq_ = 0;
  // (priority, insert order, handle), kept sorted for the general path.
  std::vector<std::tuple<std::int64_t, std::uint64_t, std::uint64_t>> order_;
  std::unordered_map<std::string, std::uint64_t> exact_index_;

  std::optional<std::size_t> default_action_;
  std::vector<util::BitVec> default_args_;

  std::uint64_t applied_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace hyper4::bm
