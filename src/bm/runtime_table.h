// Runtime match-action table: entry storage and lookup for the five P4-14
// match kinds. Entries carry an action id and bound action parameters;
// per-entry hit counters double as direct counters.
//
// Lookup is served by a compiled per-table match index chosen from the key
// spec at construction time (see DESIGN.md "Compiled match indexes"):
//   - exact/valid-only tables hash the raw canonical key bytes (packed into
//     a single uint64 when the total key width fits in 64 bits);
//   - pure single-key lpm tables keep per-prefix-length buckets probed
//     longest-first;
//   - everything else (ternary / mixed / range) scans a dense
//     (priority, insertion)-ordered row array of entry pointers, with a
//     packed-uint64 value/mask image fast path for keys <= 64 bits total.
// The index is maintained incrementally on add/remove/modify, each of which
// bumps an epoch counter; clone_state_from rebuilds the index and adopts
// the source's epoch so engine replicas stay provably coherent. No path in
// lookup() allocates (scratch buffers are reserved up front).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "p4/ir.h"
#include "util/bitvec.h"

namespace hyper4::bm {

// One component of an entry's match key, interpreted per the table's key
// spec at the same position.
struct KeyParam {
  util::BitVec value;                     // exact value / ternary value /
                                          // lpm value / valid flag / range lo
  std::optional<util::BitVec> mask;       // ternary
  std::optional<std::size_t> prefix_len;  // lpm
  std::optional<util::BitVec> range_hi;   // range

  static KeyParam exact(util::BitVec v);
  static KeyParam ternary(util::BitVec v, util::BitVec m);
  static KeyParam lpm(util::BitVec v, std::size_t prefix_len);
  static KeyParam valid(bool v);
  static KeyParam range(util::BitVec lo, util::BitVec hi);
};

struct TableEntry {
  std::uint64_t handle = 0;
  std::vector<KeyParam> key;
  // Smaller = higher precedence (bmv2 convention). Entries with equal
  // priority match in insertion order. In a pure single-key lpm table the
  // priority is IGNORED for match selection (bmv2 rule: longest prefix
  // wins, ties broken by insertion order) — see RuntimeTable::lookup.
  std::int32_t priority = 0;
  std::size_t action = 0;  // action id within the switch
  std::vector<util::BitVec> action_args;
  std::uint64_t hits = 0;
  std::uint64_t hit_bytes = 0;
};

// Static description of one key component (bound to compiled field ids by
// the switch).
struct KeySpec {
  p4::MatchType type = p4::MatchType::kExact;
  std::uint32_t field = 0;     // FieldId; for kValid: InstanceId
  std::size_t width = 0;       // bits (1 for kValid)
  std::string display_name;    // "ethernet.dstAddr" / "valid(ipv4)"
};

class RuntimeTable {
 public:
  RuntimeTable(std::string name, std::vector<KeySpec> keys,
               std::size_t max_size);

  const std::string& name() const { return name_; }
  const std::vector<KeySpec>& keys() const { return keys_; }
  std::size_t size() const { return entries_.size(); }
  std::size_t max_size() const { return max_size_; }

  // True when every key component is exact (enables hashed lookup).
  bool all_exact() const { return all_exact_; }

  // Which compiled index serves this table's lookups (fixed by the key
  // spec at construction).
  enum class IndexKind { kExactHash, kPureLpm, kTernaryScan };
  IndexKind index_kind() const { return kind_; }
  const char* index_kind_name() const;

  // Bumped on every mutation (add / remove / modify / set_default);
  // clone_state_from adopts the source's epoch, so a replica whose epoch
  // equals its source's is guaranteed to serve the same entries.
  std::uint64_t index_epoch() const { return epoch_; }

  // Insert an entry; validates arity/kinds/widths. `priority` < 0 means
  // "unspecified": ordered after all prioritized entries, by insertion.
  // Throws CommandError on validation failure or capacity exhaustion.
  std::uint64_t add(std::vector<KeyParam> key, std::size_t action,
                    std::vector<util::BitVec> action_args,
                    std::int32_t priority = -1);

  void remove(std::uint64_t handle);
  void modify(std::uint64_t handle, std::size_t action,
              std::vector<util::BitVec> action_args);
  bool has_entry(std::uint64_t handle) const;
  const TableEntry& entry(std::uint64_t handle) const;
  TableEntry& mutable_entry(std::uint64_t handle);
  std::vector<std::uint64_t> handles() const;

  void set_default(std::size_t action, std::vector<util::BitVec> args);
  bool has_default() const { return default_action_.has_value(); }
  std::size_t default_action() const;
  const std::vector<util::BitVec>& default_args() const { return default_args_; }

  // Look up; returns the matched entry or nullptr (miss → default applies).
  // `key` holds the evaluated key field values in spec order; it may carry
  // extra trailing components (the switch reuses one scratch vector sized
  // for its widest table), only the first keys().size() are read. The
  // returned pointer is mutable so callers can update per-entry counters
  // without a second handle lookup; entry *keys* must never be mutated
  // through it (they are baked into the index).
  //
  // Match-selection rules (bmv2-compatible):
  //   - exact/valid tables: the unique entry with equal canonical bytes;
  //   - pure single-key lpm tables: longest matching prefix wins, ties
  //     broken by insertion order; entry priority is ignored (bmv2 only
  //     consults priority when a ternary or range key is present);
  //   - everything else: first match in (priority asc, insertion) order,
  //     entries with unspecified (< 0) priority after all explicit ones.
  TableEntry* lookup(const std::vector<util::BitVec>& key);

  // --- durable-state export / import (src/state checkpoints) -------------
  // A value-typed image of the full runtime state: entries in handle order
  // (handles are monotonic, so handle order IS insertion order — which the
  // ternary-scan tie-break depends on), the next free handle, and the
  // default action. Exported by checkpoints, restored byte-identically on
  // recovery: handles stay stable across a checkpoint/restore cycle, so
  // DPMU-held (table, handle) references remain valid.
  struct ExportedState {
    std::vector<TableEntry> entries;
    std::uint64_t next_handle = 1;
    std::optional<std::size_t> default_action;
    std::vector<util::BitVec> default_args;
    std::uint64_t epoch = 0;
    std::uint64_t applied = 0;
    std::uint64_t hits = 0;
  };
  ExportedState export_state() const;
  // Replace the full runtime state with a previously exported image and
  // rebuild the compiled index. Throws CommandError when an entry does not
  // fit this table's key spec (arity or per-kind shape mismatch) or when
  // a handle is duplicated / >= next_handle.
  void import_state(const ExportedState& s);
  std::uint64_t next_handle() const { return next_handle_; }

  // Mirror the full runtime state (entries *including handles*, insertion
  // order, default action, hit/applied counters) of another table with the
  // same key spec. The traffic engine uses this to build worker replicas
  // whose entry handles stay interchangeable with the source switch's, so
  // a handle obtained anywhere is valid everywhere. Throws CommandError on
  // a spec mismatch.
  void clone_state_from(const RuntimeTable& src);

  // Cumulative applied-count (every lookup, hit or miss).
  std::uint64_t applied_count() const { return applied_; }
  std::uint64_t hit_count() const { return hits_; }
  void reset_counters();

 private:
  bool entry_matches(const TableEntry& e,
                     const std::vector<util::BitVec>& key) const;

  // --- compiled match index --------------------------------------------
  // One dense scan row: entries ordered by (priority key, insertion seq).
  // `e` points into entries_ (std::map nodes are stable).
  struct ScanRow {
    std::int64_t prio = 0;
    std::uint64_t seq = 0;
    TableEntry* e = nullptr;
  };
  // One prefix length of a pure-lpm table. Fields <= 64 bits wide get a
  // hash bucket keyed on the prefix-masked packed value; wider fields fall
  // back to an insertion-ordered linear probe via BitVec::prefix_equals.
  struct LpmBucket {
    std::size_t plen = 0;
    std::uint64_t mask64 = 0;
    std::unordered_map<std::uint64_t, TableEntry*> map64;
    std::vector<TableEntry*> wide;
  };

  TableEntry* find_match(const std::vector<util::BitVec>& key);
  void index_insert(TableEntry* e);
  void index_erase(const TableEntry& e);
  void index_build();  // full rebuild (clone_state_from)
  // Packed-u64 images (valid only when use_u64_ / fast path applies).
  std::uint64_t pack_key(const std::vector<util::BitVec>& key) const;
  std::uint64_t pack_entry_value(const std::vector<KeyParam>& key) const;
  void pack_entry_scan(const TableEntry& e, std::uint64_t* value,
                       std::uint64_t* mask) const;
  // Raw canonical big-endian key bytes, appended to `out` (scratch reuse).
  void exact_key_bytes(const std::vector<KeyParam>& key,
                       std::string& out) const;
  void exact_key_bytes(const std::vector<util::BitVec>& key,
                       std::string& out) const;
  static std::int64_t prio_key(std::int32_t priority) {
    // Unspecified priority sorts after every explicit priority.
    return priority < 0 ? (std::int64_t{1} << 40) : priority;
  }

  std::string name_;
  std::vector<KeySpec> keys_;
  std::size_t max_size_;
  bool all_exact_ = true;
  IndexKind kind_ = IndexKind::kTernaryScan;
  std::size_t total_width_ = 0;    // sum of key component widths
  bool has_range_ = false;
  bool use_u64_ = false;           // total_width_ <= 64 and no range key
  std::vector<std::size_t> shifts_;  // per-component LSB offset in the
                                     // packed image (component 0 is MSB)

  std::map<std::uint64_t, TableEntry> entries_;  // by handle
  std::uint64_t next_handle_ = 1;
  std::uint64_t epoch_ = 0;

  // kExactHash state (one of the two maps, by use_u64_).
  std::unordered_map<std::uint64_t, TableEntry*> exact64_;
  std::unordered_map<std::string, TableEntry*> exact_raw_;
  std::string probe_;  // scratch for raw-byte probes; capacity reserved
  // kPureLpm state: buckets sorted by prefix length, longest first.
  std::vector<LpmBucket> lpm_buckets_;
  // kTernaryScan state: rows_ sorted by (prio, seq); fast_val_/fast_mask_
  // are the packed images aligned with rows_ when use_u64_.
  std::vector<ScanRow> rows_;
  std::vector<std::uint64_t> fast_val_;
  std::vector<std::uint64_t> fast_mask_;

  std::optional<std::size_t> default_action_;
  std::vector<util::BitVec> default_args_;

  std::uint64_t applied_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace hyper4::bm
