#include "bm/cli.h"

#include <sstream>

#include "net/headers.h"
#include "obs/export.h"
#include "util/error.h"
#include "util/strings.h"

namespace hyper4::bm {

using util::BitVec;
using util::CommandError;

util::BitVec parse_value(const std::string& token, std::size_t width) {
  if (token.find(':') != std::string::npos) {
    return BitVec(width, net::mac_to_u64(net::mac_from_string(token)));
  }
  if (token.find('.') != std::string::npos) {
    return BitVec(width, net::ipv4_from_string(token));
  }
  if (token.size() > 2 && token[0] == '0' &&
      (token[1] == 'x' || token[1] == 'X')) {
    return BitVec::from_hex(width, token);
  }
  return BitVec(width, util::parse_uint(token));
}

namespace {

KeyParam parse_key_param(const std::string& token, const KeySpec& spec) {
  switch (spec.type) {
    case p4::MatchType::kExact:
      return KeyParam::exact(parse_value(token, spec.width));
    case p4::MatchType::kValid: {
      const std::uint64_t v = util::parse_uint(token);
      return KeyParam::valid(v != 0);
    }
    case p4::MatchType::kTernary: {
      const auto pos = token.find("&&&");
      if (pos == std::string::npos)
        throw CommandError("ternary key '" + spec.display_name +
                           "' expects value&&&mask, got '" + token + "'");
      return KeyParam::ternary(parse_value(token.substr(0, pos), spec.width),
                               parse_value(token.substr(pos + 3), spec.width));
    }
    case p4::MatchType::kLpm: {
      const auto pos = token.rfind('/');
      if (pos == std::string::npos)
        throw CommandError("lpm key '" + spec.display_name +
                           "' expects value/prefix_len, got '" + token + "'");
      return KeyParam::lpm(
          parse_value(token.substr(0, pos), spec.width),
          static_cast<std::size_t>(util::parse_uint(token.substr(pos + 1))));
    }
    case p4::MatchType::kRange: {
      const auto pos = token.find("->");
      if (pos == std::string::npos)
        throw CommandError("range key '" + spec.display_name +
                           "' expects lo->hi, got '" + token + "'");
      return KeyParam::range(parse_value(token.substr(0, pos), spec.width),
                             parse_value(token.substr(pos + 2), spec.width));
    }
  }
  throw CommandError("unhandled match type");
}

bool table_needs_priority(const RuntimeTable& t) {
  for (const auto& k : t.keys()) {
    if (k.type == p4::MatchType::kTernary || k.type == p4::MatchType::kRange)
      return true;
  }
  return false;
}

CliResult do_table_add(Switch& sw, const std::vector<std::string>& tok) {
  if (tok.size() < 3) throw CommandError("table_add: too few arguments");
  const std::string& tname = tok[1];
  const std::string& aname = tok[2];
  const RuntimeTable& t = sw.table(tname);

  // Locate "=>".
  std::size_t arrow = tok.size();
  for (std::size_t i = 3; i < tok.size(); ++i) {
    if (tok[i] == "=>") {
      arrow = i;
      break;
    }
  }
  if (arrow == tok.size())
    throw CommandError("table_add: missing '=>' separator");
  const std::size_t nkeys = arrow - 3;
  if (nkeys != t.keys().size())
    throw CommandError("table_add: table '" + tname + "' expects " +
                       std::to_string(t.keys().size()) + " key(s), got " +
                       std::to_string(nkeys));
  std::vector<KeyParam> key;
  for (std::size_t i = 0; i < nkeys; ++i) {
    key.push_back(parse_key_param(tok[3 + i], t.keys()[i]));
  }

  std::vector<std::string> arg_toks(tok.begin() + static_cast<std::ptrdiff_t>(arrow) + 1,
                                    tok.end());
  std::int32_t priority = -1;
  if (table_needs_priority(t)) {
    if (arg_toks.empty())
      throw CommandError("table_add: table '" + tname +
                         "' requires a trailing priority");
    priority = static_cast<std::int32_t>(util::parse_uint(arg_toks.back()));
    arg_toks.pop_back();
  }
  std::vector<BitVec> args;
  for (const auto& a : arg_toks) args.push_back(parse_value(a, 1024));

  CliResult r;
  r.handle = sw.table_add(tname, aname, std::move(key), std::move(args), priority);
  r.message = "added entry " + std::to_string(r.handle) + " to " + tname;
  return r;
}

}  // namespace

CliResult run_cli_command(Switch& sw, const std::string& line,
                          const CliExtensions* ext) {
  try {
    const auto tok = util::split(util::trim(line));
    if (tok.empty()) return CliResult{true, "", 0};
    const std::string& cmd = tok[0];
    if (cmd == "table_add") return do_table_add(sw, tok);
    if (cmd == "table_set_default") {
      if (tok.size() < 3) throw CommandError("table_set_default: usage");
      std::vector<BitVec> args;
      for (std::size_t i = 3; i < tok.size(); ++i)
        args.push_back(parse_value(tok[i], 1024));
      sw.table_set_default(tok[1], tok[2], std::move(args));
      return CliResult{true, "default set on " + tok[1], 0};
    }
    if (cmd == "table_delete") {
      if (tok.size() != 3) throw CommandError("table_delete: usage");
      sw.table_delete(tok[1], util::parse_uint(tok[2]));
      return CliResult{true, "deleted", 0};
    }
    if (cmd == "table_modify") {
      if (tok.size() < 4) throw CommandError("table_modify: usage");
      std::vector<BitVec> args;
      for (std::size_t i = 4; i < tok.size(); ++i)
        args.push_back(parse_value(tok[i], 1024));
      sw.table_modify(tok[1], tok[2], util::parse_uint(tok[3]), std::move(args));
      return CliResult{true, "modified", 0};
    }
    if (cmd == "register_write") {
      if (tok.size() != 4) throw CommandError("register_write: usage");
      sw.register_write(tok[1], util::parse_uint(tok[2]),
                        parse_value(tok[3], 64));
      return CliResult{true, "ok", 0};
    }
    if (cmd == "register_read") {
      if (tok.size() != 3) throw CommandError("register_read: usage");
      const BitVec v = sw.register_read(tok[1], util::parse_uint(tok[2]));
      return CliResult{true, "0x" + v.to_hex(), 0};
    }
    if (cmd == "counter_read") {
      if (tok.size() != 3) throw CommandError("counter_read: usage");
      const auto idx = util::parse_uint(tok[2]);
      std::ostringstream os;
      os << sw.counter_packets(tok[1], idx) << " packets, "
         << sw.counter_bytes(tok[1], idx) << " bytes";
      return CliResult{true, os.str(), 0};
    }
    if (cmd == "counter_reset") {
      if (tok.size() != 2) throw CommandError("counter_reset: usage");
      sw.counter_reset(tok[1]);
      return CliResult{true, "ok", 0};
    }
    if (cmd == "table_dump") {
      if (tok.size() != 2) throw CommandError("table_dump: usage");
      return CliResult{true, sw.table_dump(tok[1]), 0};
    }
    if (cmd == "table_index") {
      // Introspection for the compiled match index: which per-kind
      // structure serves this table and the current invalidation epoch.
      if (tok.size() != 2) throw CommandError("table_index: usage");
      const RuntimeTable& t = sw.table(tok[1]);
      return CliResult{true,
                       std::string(t.index_kind_name()) + " epoch=" +
                           std::to_string(t.index_epoch()),
                       0};
    }
    if (cmd == "mirroring_add") {
      if (tok.size() != 3) throw CommandError("mirroring_add: usage");
      sw.mirror_add(static_cast<std::uint32_t>(util::parse_uint(tok[1])),
                    static_cast<std::uint16_t>(util::parse_uint(tok[2])));
      return CliResult{true, "ok", 0};
    }
    if (cmd == "mc_group_set") {
      if (tok.size() < 3) throw CommandError("mc_group_set: usage");
      std::vector<std::pair<std::uint16_t, std::uint16_t>> members;
      for (std::size_t i = 2; i < tok.size(); ++i) {
        const auto pos = tok[i].find(':');
        if (pos == std::string::npos)
          throw CommandError("mc_group_set: expected port:rid, got '" +
                             tok[i] + "'");
        members.emplace_back(
            static_cast<std::uint16_t>(util::parse_uint(tok[i].substr(0, pos))),
            static_cast<std::uint16_t>(util::parse_uint(tok[i].substr(pos + 1))));
      }
      sw.mc_group_set(static_cast<std::uint16_t>(util::parse_uint(tok[1])),
                      std::move(members));
      return CliResult{true, "ok", 0};
    }
    if (cmd == "trace") {
      if (tok.size() < 2) throw CommandError("trace: usage");
      const std::string& sub = tok[1];
      if (sub == "on") {
        obs::TracerOptions topts;
        if (tok.size() > 2)
          topts.capacity = static_cast<std::size_t>(util::parse_uint(tok[2]));
        topts.record_events = true;
        topts.record_primitives = true;
        topts.timestamps = true;
        sw.enable_tracing(topts);
        return CliResult{true,
                         "tracing on, ring capacity " +
                             std::to_string(topts.capacity),
                         0};
      }
      if (sub == "off") {
        sw.disable_tracing();
        return CliResult{true, "tracing off", 0};
      }
      obs::PipelineTracer* tr = sw.tracer();
      if (tr == nullptr) throw CommandError("trace " + sub + ": tracing is off");
      if (sub == "status") {
        std::ostringstream os;
        os << "tracing on: " << tr->size() << "/" << tr->capacity()
           << " events buffered, " << tr->total_recorded() << " recorded, "
           << tr->dropped() << " overwritten";
        return CliResult{true, os.str(), 0};
      }
      if (sub == "dump") {
        std::size_t limit = 0;
        if (tok.size() > 2)
          limit = static_cast<std::size_t>(util::parse_uint(tok[2]));
        return CliResult{true, obs::format_events(*tr, limit), 0};
      }
      if (sub == "clear") {
        tr->clear();
        return CliResult{true, "trace buffer cleared", 0};
      }
      if (sub == "chrome") {
        // about://tracing-loadable JSON for the buffered events.
        return CliResult{true, obs::chrome_trace_json({{"switch", tr}}), 0};
      }
      throw CommandError("trace: unknown subcommand '" + sub + "'");
    }
    if (cmd == "profile") {
      if (tok.size() != 2) throw CommandError("profile: usage");
      const std::string& sub = tok[1];
      if (sub == "on") {
        obs::TracerOptions topts;
        topts.record_events = false;
        topts.profile = true;
        sw.enable_tracing(topts);
        return CliResult{true, "profiling on", 0};
      }
      if (sub == "off") {
        sw.disable_tracing();
        return CliResult{true, "profiling off", 0};
      }
      obs::PipelineTracer* tr = sw.tracer();
      if (tr == nullptr || !tr->profiling())
        throw CommandError("profile " + sub + ": profiling is off");
      if (sub == "dump")
        return CliResult{true,
                         obs::profile_json(tr->profile(), tr->table_names()), 0};
      throw CommandError("profile: unknown subcommand '" + sub + "'");
    }
    if (ext != nullptr) {
      auto it = ext->commands.find(cmd);
      if (it != ext->commands.end()) return it->second(sw, tok);
    }
    throw CommandError("unknown command '" + cmd + "'");
  } catch (const util::Error& e) {
    return CliResult{false, e.what(), 0};
  }
}

std::vector<CliResult> run_cli_text(
    Switch& sw, const std::string& text,
    const std::map<std::string, std::string>& substitutions) {
  std::vector<CliResult> results;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    for (const auto& [from, to] : substitutions) {
      std::size_t pos = 0;
      while ((pos = line.find(from, pos)) != std::string::npos) {
        line.replace(pos, from.size(), to);
        pos += to.size();
      }
    }
    if (util::trim(line).empty()) continue;
    CliResult r = run_cli_command(sw, line);
    if (!r.ok) {
      throw CommandError("command file line " + std::to_string(lineno) +
                         ": " + r.message + "  [" + line + "]");
    }
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace hyper4::bm
