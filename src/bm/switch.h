// The behavioral-model switch: an interpreter for p4::Program with the
// architectural contract of bmv2's simple_switch.
//
// Pipeline per packet: parse → ingress match-action → traffic manager
// (resubmit / unicast / multicast / ingress-to-egress clones) → egress
// match-action → checksum update → deparse → (recirculate | emit).
//
// The switch is single-threaded and deterministic; injected packets are
// processed to completion (including all derived packet instances) before
// inject() returns, which is what makes the native-vs-HyPer4 equivalence
// tests and the evaluation benches exact.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bm/layout.h"
#include "bm/runtime_table.h"
#include "bm/stateful.h"
#include "bm/trace.h"
#include "net/packet.h"
#include "obs/tracer.h"
#include "p4/ir.h"

namespace hyper4::bm {

class Switch {
 public:
  struct Options {
    // Maximum parser entries (initial + resubmits + recirculations) per
    // injected packet before the engine declares a loop and kills the
    // packet. Models the paper's ingress-buffer interference concern.
    std::size_t max_traversals = 128;
    std::uint16_t num_ports = 64;
  };

  explicit Switch(p4::Program prog) : Switch(std::move(prog), Options{}) {}
  Switch(p4::Program prog, Options opts);

  const p4::Program& program() const { return prog_; }
  const Layout& layout() const { return layout_; }
  const Options& options() const { return opts_; }

  // --- packet path --------------------------------------------------------
  ProcessResult inject(std::uint16_t ingress_port, const net::Packet& packet);

  // --- runtime API (used directly and via the CLI in cli.h) ---------------
  std::uint64_t table_add(const std::string& table, const std::string& action,
                          std::vector<KeyParam> key,
                          std::vector<util::BitVec> action_args,
                          std::int32_t priority = -1);
  void table_set_default(const std::string& table, const std::string& action,
                         std::vector<util::BitVec> action_args = {});
  void table_delete(const std::string& table, std::uint64_t handle);
  void table_modify(const std::string& table, const std::string& action,
                    std::uint64_t handle, std::vector<util::BitVec> action_args);
  const RuntimeTable& table(const std::string& name) const;
  RuntimeTable& mutable_table(const std::string& name);
  bool has_table(const std::string& name) const;
  std::vector<std::string> table_names() const;
  // Action name for a compiled action id (for table dumps / diagnostics).
  const std::string& action_name(std::size_t action_id) const;
  // Human-readable listing of a table's entries (bmv2's table_dump).
  std::string table_dump(const std::string& name) const;

  // Mirror the full runtime state of another switch compiled from the same
  // program: table entries (with identical handles), registers, counters,
  // meters, mirror sessions, multicast groups, the logical clock and the
  // RNG state. Statistics are NOT copied. This is how the traffic engine
  // (src/engine) builds per-worker replicas that are bit-identical to the
  // source switch; it throws ConfigError when the object inventories
  // differ (i.e. the switches were not compiled from the same program).
  void sync_state_from(const Switch& src);

  void mirror_add(std::uint32_t session, std::uint16_t port);
  void mc_group_set(std::uint16_t group,
                    std::vector<std::pair<std::uint16_t, std::uint16_t>>
                        port_rid_pairs);

  util::BitVec register_read(const std::string& reg, std::size_t index) const;
  void register_write(const std::string& reg, std::size_t index,
                      const util::BitVec& v);
  std::uint64_t counter_packets(const std::string& counter,
                                std::size_t index) const;
  std::uint64_t counter_bytes(const std::string& counter,
                              std::size_t index) const;
  void counter_reset(const std::string& counter);

  // Logical clock for meters (abstract seconds). Advance from the harness.
  double now() const { return now_; }
  void set_time(double t) { now_ = t; }
  void advance_time(double dt) { now_ += dt; }

  // --- durable-state hooks (src/state checkpoints) ------------------------
  // Raw access to the stateful object inventories and switch config, used
  // by checkpoint export/import. Each array carries its own name; mutable
  // variants exist solely so a restore can write cells/buckets back.
  const std::vector<RegisterArray>& register_arrays() const {
    return registers_;
  }
  std::vector<RegisterArray>& mutable_register_arrays() { return registers_; }
  const std::vector<CounterArray>& counter_arrays() const { return counters_; }
  std::vector<CounterArray>& mutable_counter_arrays() { return counters_; }
  const std::vector<MeterArray>& meter_arrays() const { return meters_; }
  std::vector<MeterArray>& mutable_meter_arrays() { return meters_; }
  const std::unordered_map<std::uint32_t, std::uint16_t>& mirror_sessions()
      const {
    return mirror_sessions_;
  }
  const std::unordered_map<
      std::uint16_t, std::vector<std::pair<std::uint16_t, std::uint16_t>>>&
  mc_groups() const {
    return mcast_groups_;
  }
  std::uint64_t rng_state() const { return rng_state_; }
  void set_rng_state(std::uint64_t s) { rng_state_ = s; }
  // Compiled action id for a name; throws CommandError (with nearest-name
  // suggestions) when unknown.
  std::size_t action_id(const std::string& name) const;

  // --- statistics ----------------------------------------------------------
  struct Stats {
    std::uint64_t packets_in = 0;
    std::uint64_t packets_out = 0;
    std::uint64_t drops = 0;
    std::uint64_t resubmits = 0;
    std::uint64_t recirculations = 0;
    std::uint64_t clones = 0;
    std::uint64_t parse_errors = 0;
    std::uint64_t loop_kills = 0;
  };
  const Stats& stats() const { return stats_; }
  void reset_stats();

  // --- observability -------------------------------------------------------
  // Attach an external tracer (nullptr detaches). The tracer must outlive
  // the attachment; the switch binds its table/action/instance name tables
  // into it so exporters and the hp4 decoder can resolve event ids. When no
  // tracer is attached the packet path pays one null-pointer check per hook
  // site (see tests/obs_overhead_test.cpp).
  void set_tracer(obs::PipelineTracer* t);
  obs::PipelineTracer* tracer() const { return tracer_; }
  // Bind this switch's table/action/instance name tables into an external
  // tracer without attaching it — used by alternative execution backends
  // (src/vm) so their events resolve through the same names as ours.
  void bind_tracer_names(obs::PipelineTracer& t) const;
  // Compiled table id for a name (the id kTableApply events carry).
  std::size_t table_index(const std::string& name) const;
  // Convenience for the CLI: create (replacing any previous) an owned
  // tracer with the given options and attach it.
  obs::PipelineTracer& enable_tracing(const obs::TracerOptions& topts);
  // Drops the owned tracer if one is attached; external tracers are only
  // detached, never destroyed.
  void disable_tracing();

 private:
  // ---- compiled representations ----
  struct CompiledExpr {
    p4::ExprOp op = p4::ExprOp::kConst;
    util::BitVec value;
    FieldId field = 0;
    InstanceId instance = 0;
    std::vector<CompiledExpr> children;
  };

  struct CompiledArg {
    enum class Kind {
      kConst, kParam, kField, kInstance, kStack,
      kFieldList, kCounter, kMeter, kRegister,
    };
    Kind kind = Kind::kConst;
    util::BitVec value;
    std::size_t index = 0;   // param index or object index
    FieldId field = 0;
    InstanceId instance = 0;
    std::string stack_base;
  };

  struct CompiledPrim {
    p4::Primitive op;
    std::vector<CompiledArg> args;
  };

  struct CompiledAction {
    std::string name;
    std::vector<std::size_t> param_widths;
    std::vector<CompiledPrim> body;
  };

  struct CompiledCase {
    util::BitVec value;
    std::optional<util::BitVec> mask;
    bool is_default = false;
    // >= 0: state index; kAccept / kDrop otherwise.
    std::ptrdiff_t next = 0;
    static constexpr std::ptrdiff_t kAccept = -1;
    static constexpr std::ptrdiff_t kDrop = -2;
  };

  struct CompiledSelectKey {
    bool is_current = false;
    FieldId field = 0;
    std::size_t current_offset = 0;
    std::size_t current_width = 0;
    std::size_t width = 0;
  };

  struct CompiledParserState {
    std::string name;
    // Each extract is either a concrete instance or a stack base (next
    // free element extracted at runtime).
    struct Extract {
      bool is_stack = false;
      InstanceId instance = 0;
      std::string stack_base;
    };
    std::vector<Extract> extracts;
    std::vector<std::pair<FieldId, CompiledExpr>> sets;
    std::vector<CompiledSelectKey> select;
    std::vector<CompiledCase> cases;
  };

  struct CompiledControlNode {
    p4::ControlNode::Kind kind = p4::ControlNode::Kind::kApply;
    std::size_t table = 0;
    std::unordered_map<std::size_t, std::size_t> on_action;  // action id→node
    std::optional<std::size_t> on_hit, on_miss;
    std::size_t next_default = p4::kEndOfControl;
    CompiledExpr condition;
    std::size_t next_true = p4::kEndOfControl;
    std::size_t next_false = p4::kEndOfControl;
  };

  struct CompiledChecksum {
    FieldId field = 0;
    InstanceId owner = 0;
    std::size_t field_list = 0;
    std::optional<CompiledExpr> condition;
  };

  // ---- per-packet state ----
  struct Phv {
    std::vector<util::BitVec> fields;  // by FieldId
    std::vector<char> valid;           // by InstanceId
    std::unordered_map<std::string, std::size_t> stack_next;
  };

  struct Ctx {
    net::Packet packet;  // bytes as they entered the parser this traversal
    Phv phv;
    std::size_t payload_offset = 0;  // bytes consumed by the parser
    std::uint16_t ingress_port = 0;
    p4::InstanceType itype = p4::InstanceType::kNormal;
    bool drop_flag = false;
    bool in_egress = false;
    std::optional<std::size_t> truncate_bytes;
    bool resubmit_flag = false;
    std::optional<std::size_t> resubmit_fl;
    bool recirc_flag = false;
    std::optional<std::size_t> recirc_fl;
    std::vector<std::pair<std::uint32_t, std::optional<std::size_t>>> clones_i2e;
    std::vector<std::pair<std::uint32_t, std::optional<std::size_t>>> clones_e2e;
    // (field, value) pairs restored right after PHV initialization.
    std::vector<std::pair<FieldId, util::BitVec>> preserved;
  };

  // A unit of work for the traversal queue.
  struct Work {
    enum class Where { kParser, kEgress } where = Where::kParser;
    Ctx ctx;
    std::uint16_t egress_port = 0;  // when kEgress
    std::uint16_t egress_rid = 0;
  };

  // ---- compilation ----
  void compile();
  // Unknown-name diagnostics with nearest-candidate suggestions
  // ("no table named 'ipv4_lpn'; did you mean 'ipv4_lpm'?").
  [[noreturn]] void throw_no_table(const std::string& name) const;
  [[noreturn]] void throw_no_action(const std::string& name) const;
  CompiledExpr compile_expr(const p4::ExprPtr& e) const;
  CompiledArg compile_arg(const p4::ActionArg& a, p4::Primitive op,
                          std::size_t arg_pos,
                          const p4::ActionDef& action) const;
  std::size_t named_index(const std::vector<std::string>& names,
                          const std::string& n, const char* what) const;

  // ---- execution ----
  Phv fresh_phv() const;
  bool run_parser(Ctx& ctx, ProcessResult& res);
  // Returns false when the packet was consumed (dropped) by the control.
  void run_control(const std::vector<CompiledControlNode>& nodes, Ctx& ctx,
                   ProcessResult& res);
  util::BitVec eval_expr(const CompiledExpr& e, const Phv& phv) const;
  void exec_action(std::size_t action_id,
                   const std::vector<util::BitVec>& args, Ctx& ctx,
                   ProcessResult& res);
  void exec_primitive(const CompiledPrim& prim,
                      const std::vector<util::BitVec>& args, Ctx& ctx,
                      ProcessResult& res);
  util::BitVec read_arg(const CompiledArg& a,
                        const std::vector<util::BitVec>& args,
                        const Phv& phv) const;
  FieldId dst_field(const CompiledArg& a) const;
  std::vector<std::pair<FieldId, util::BitVec>> capture_field_list(
      std::size_t fl_index, const Phv& phv) const;
  net::Packet deparse(Ctx& ctx);
  void apply_checksums(Ctx& ctx);
  std::uint64_t field_u64(const Phv& phv, FieldId f) const {
    return phv.fields[f].low_u64();
  }
  void set_field_u64(Phv& phv, FieldId f, std::uint64_t v) {
    phv.fields[f] = util::BitVec(layout_.field(f).width, v);
  }

  p4::Program prog_;
  Options opts_;
  Layout layout_;

  // Compiled program.
  std::vector<CompiledAction> actions_;
  std::unordered_map<std::string, std::size_t> action_ids_;
  std::vector<std::unique_ptr<RuntimeTable>> tables_;
  std::unordered_map<std::string, std::size_t> table_ids_;
  // Reusable probe-key scratch for run_control (sized in compile() to the
  // widest table's key arity; the switch is single-threaded per instance).
  std::vector<util::BitVec> key_scratch_;
  std::vector<std::vector<std::size_t>> table_actions_;  // table → action ids
  std::vector<CompiledParserState> parser_;
  std::unordered_map<std::string, std::size_t> parser_ids_;
  std::vector<CompiledControlNode> ingress_, egress_;
  std::vector<std::vector<FieldId>> field_lists_;
  std::vector<std::string> field_list_names_;
  std::vector<CounterArray> counters_;
  std::vector<std::string> counter_names_;
  std::vector<MeterArray> meters_;
  std::vector<std::string> meter_names_;
  std::vector<RegisterArray> registers_;
  std::vector<std::string> register_names_;
  std::vector<CompiledChecksum> checksums_;
  std::vector<InstanceId> deparse_instances_;

  // Pre-resolved standard metadata field ids.
  FieldId f_ingress_port_, f_egress_spec_, f_egress_port_, f_instance_type_,
      f_packet_length_, f_mcast_grp_, f_egress_rid_;

  // Switch config.
  std::unordered_map<std::uint32_t, std::uint16_t> mirror_sessions_;
  std::unordered_map<std::uint16_t,
                     std::vector<std::pair<std::uint16_t, std::uint16_t>>>
      mcast_groups_;

  double now_ = 0;
  Stats stats_;
  std::uint64_t rng_state_ = 0x9e3779b97f4a7c15ull;

  // Observability hook: nullptr when tracing is off (the common case).
  obs::PipelineTracer* tracer_ = nullptr;
  std::unique_ptr<obs::PipelineTracer> owned_tracer_;  // CLI `trace on`
};

}  // namespace hyper4::bm
