#include "bm/switch.h"

#include <algorithm>
#include <deque>

#include "net/checksum.h"
#include "util/error.h"
#include "util/strings.h"

namespace hyper4::bm {

using util::BitVec;
using util::CommandError;
using util::ConfigError;

namespace {

// Read `width` bits starting at bit offset `off` (bit 0 = MSB of byte 0)
// from `data`, as a BitVec whose MSB is the first bit read.
BitVec read_bits(std::span<const std::uint8_t> data, std::size_t off,
                 std::size_t width) {
  BitVec v(width);
  for (std::size_t i = 0; i < width; ++i) {
    const std::size_t bit = off + i;
    const std::size_t byte = bit / 8;
    if (byte >= data.size()) break;  // callers bound-check; zero-fill guard
    const bool b = (data[byte] >> (7 - bit % 8)) & 1;
    v.set_bit(width - 1 - i, b);
  }
  return v;
}

// Append `width` bits of `v` (MSB first) at bit position `pos` of `out`,
// growing `out` as needed.
void append_bits(std::vector<std::uint8_t>& out, std::size_t& pos,
                 const BitVec& v, std::size_t width) {
  for (std::size_t i = 0; i < width; ++i) {
    const std::size_t bit = pos + i;
    if (bit / 8 >= out.size()) out.push_back(0);
    const bool b = v.get_bit(width - 1 - i);
    if (b) out[bit / 8] |= static_cast<std::uint8_t>(1u << (7 - bit % 8));
  }
  pos += width;
}

}  // namespace

Switch::Switch(p4::Program prog, Options opts)
    : prog_(std::move(prog)), opts_(opts), layout_(prog_) {
  prog_.validate();
  compile();
}

// ---------------------------------------------------------------------------
// Compilation

std::size_t Switch::named_index(const std::vector<std::string>& names,
                                const std::string& n, const char* what) const {
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == n) return i;
  throw ConfigError(std::string("switch: unknown ") + what + " '" + n + "'");
}

Switch::CompiledExpr Switch::compile_expr(const p4::ExprPtr& e) const {
  CompiledExpr c;
  if (!e) {
    c.op = p4::ExprOp::kConst;
    c.value = BitVec(1, 1);  // "always true"
    return c;
  }
  c.op = e->op;
  switch (e->op) {
    case p4::ExprOp::kConst:
      c.value = e->value;
      break;
    case p4::ExprOp::kField:
      c.field = layout_.field_id(e->fref);
      break;
    case p4::ExprOp::kValid:
      c.instance = layout_.instance_id(e->fref.header);
      break;
    default:
      for (const auto& ch : e->children) c.children.push_back(compile_expr(ch));
      break;
  }
  return c;
}

Switch::CompiledArg Switch::compile_arg(const p4::ActionArg& a,
                                        p4::Primitive op, std::size_t arg_pos,
                                        const p4::ActionDef& action) const {
  CompiledArg c;
  switch (a.kind) {
    case p4::ActionArg::Kind::kConst:
      c.kind = CompiledArg::Kind::kConst;
      c.value = a.value;
      break;
    case p4::ActionArg::Kind::kParam:
      c.kind = CompiledArg::Kind::kParam;
      c.index = a.param_index;
      break;
    case p4::ActionArg::Kind::kField:
      c.kind = CompiledArg::Kind::kField;
      c.field = layout_.field_id(a.field);
      break;
    case p4::ActionArg::Kind::kHeader:
      if ((op == p4::Primitive::kPush || op == p4::Primitive::kPop) &&
          arg_pos == 0) {
        c.kind = CompiledArg::Kind::kStack;
        c.stack_base = a.name;
        if (!layout_.is_stack(a.name))
          throw ConfigError("action " + action.name + ": '" + a.name +
                            "' is not a header stack");
      } else {
        c.kind = CompiledArg::Kind::kInstance;
        c.instance = layout_.instance_id(a.name);
      }
      break;
    case p4::ActionArg::Kind::kNamedRef:
      switch (op) {
        case p4::Primitive::kCount:
          c.kind = CompiledArg::Kind::kCounter;
          c.index = named_index(counter_names_, a.name, "counter");
          break;
        case p4::Primitive::kExecuteMeter:
          c.kind = CompiledArg::Kind::kMeter;
          c.index = named_index(meter_names_, a.name, "meter");
          break;
        case p4::Primitive::kRegisterRead:
        case p4::Primitive::kRegisterWrite:
          c.kind = CompiledArg::Kind::kRegister;
          c.index = named_index(register_names_, a.name, "register");
          break;
        default:
          c.kind = CompiledArg::Kind::kFieldList;
          c.index = named_index(field_list_names_, a.name, "field list");
          break;
      }
      break;
  }
  return c;
}

void Switch::compile() {
  // Standard metadata field ids.
  f_ingress_port_ = layout_.field_id(p4::kStandardMetadata, p4::kFieldIngressPort);
  f_egress_spec_ = layout_.field_id(p4::kStandardMetadata, p4::kFieldEgressSpec);
  f_egress_port_ = layout_.field_id(p4::kStandardMetadata, p4::kFieldEgressPort);
  f_instance_type_ =
      layout_.field_id(p4::kStandardMetadata, p4::kFieldInstanceType);
  f_packet_length_ =
      layout_.field_id(p4::kStandardMetadata, p4::kFieldPacketLength);
  f_mcast_grp_ = layout_.field_id(p4::kStandardMetadata, p4::kFieldMcastGrp);
  f_egress_rid_ = layout_.field_id(p4::kStandardMetadata, p4::kFieldEgressRid);

  // Stateful objects first (actions reference them by name).
  for (const auto& fl : prog_.field_lists) {
    std::vector<FieldId> ids;
    for (const auto& f : fl.fields) ids.push_back(layout_.field_id(f));
    field_lists_.push_back(std::move(ids));
    field_list_names_.push_back(fl.name);
  }
  for (const auto& c : prog_.counters) {
    counters_.emplace_back(c.name,
                           c.direct_table.empty() ? c.instance_count : 0);
    counter_names_.push_back(c.name);
  }
  for (const auto& m : prog_.meters) {
    meters_.emplace_back(m.name, m.instance_count, m.rate_pps, m.burst);
    meter_names_.push_back(m.name);
  }
  for (const auto& r : prog_.registers) {
    registers_.emplace_back(r.name, r.width, r.instance_count);
    register_names_.push_back(r.name);
  }

  // Actions.
  for (const auto& a : prog_.actions) {
    CompiledAction ca;
    ca.name = a.name;
    for (const auto& p : a.params) ca.param_widths.push_back(p.width);
    for (const auto& call : a.body) {
      CompiledPrim cp;
      cp.op = call.op;
      for (std::size_t i = 0; i < call.args.size(); ++i) {
        cp.args.push_back(compile_arg(call.args[i], call.op, i, a));
      }
      ca.body.push_back(std::move(cp));
    }
    action_ids_[a.name] = actions_.size();
    actions_.push_back(std::move(ca));
  }

  // Tables.
  for (const auto& t : prog_.tables) {
    std::vector<KeySpec> keys;
    for (const auto& k : t.keys) {
      KeySpec spec;
      spec.type = k.type;
      if (k.type == p4::MatchType::kValid) {
        spec.field = layout_.instance_id(k.field.header);
        spec.width = 1;
        spec.display_name = "valid(" + k.field.header + ")";
      } else {
        spec.field = layout_.field_id(k.field);
        spec.width = layout_.field(spec.field).width;
        spec.display_name = k.field.str();
      }
      keys.push_back(std::move(spec));
    }
    table_ids_[t.name] = tables_.size();
    tables_.push_back(
        std::make_unique<RuntimeTable>(t.name, std::move(keys), t.max_size));
    std::vector<std::size_t> aids;
    for (const auto& an : t.actions) aids.push_back(action_ids_.at(an));
    table_actions_.push_back(std::move(aids));
    if (!t.default_action.empty()) {
      tables_.back()->set_default(action_ids_.at(t.default_action),
                                  t.default_action_args);
    }
  }
  // One probe-key scratch sized for the widest table; run_control re-fills
  // the leading components per apply (RuntimeTable::lookup only reads the
  // first keys().size() slots).
  std::size_t max_key_arity = 0;
  for (const auto& t : tables_)
    max_key_arity = std::max(max_key_arity, t->keys().size());
  key_scratch_.resize(max_key_arity);

  // Parser.
  for (const auto& st : prog_.parser_states) {
    parser_ids_[st.name] = parser_.size();
    parser_.push_back(CompiledParserState{});
    parser_.back().name = st.name;
  }
  for (const auto& st : prog_.parser_states) {
    CompiledParserState& cs = parser_[parser_ids_.at(st.name)];
    for (const auto& ex : st.extracts) {
      CompiledParserState::Extract e;
      auto [base, idx] = p4::split_stack_ref(ex);
      if (idx.has_value()) {
        e.instance = layout_.instance_id(ex);
      } else if (layout_.is_stack(base)) {
        e.is_stack = true;
        e.stack_base = base;
      } else {
        e.instance = layout_.instance_id(base);
      }
      cs.extracts.push_back(std::move(e));
    }
    for (const auto& [f, expr] : st.sets) {
      cs.sets.emplace_back(layout_.field_id(f), compile_expr(expr));
    }
    std::size_t select_width = 0;
    for (const auto& k : st.select) {
      CompiledSelectKey ck;
      ck.is_current = k.is_current;
      if (k.is_current) {
        ck.current_offset = k.current_offset;
        ck.current_width = k.current_width;
        ck.width = k.current_width;
      } else {
        ck.field = layout_.field_id(k.field);
        ck.width = layout_.field(ck.field).width;
      }
      select_width += ck.width;
      cs.select.push_back(ck);
    }
    for (const auto& c : st.cases) {
      CompiledCase cc;
      cc.is_default = c.is_default;
      if (!c.is_default) {
        cc.value = c.value.resized(select_width);
        if (c.mask) cc.mask = c.mask->resized(select_width);
      }
      if (c.next_state == p4::kParserAccept) cc.next = CompiledCase::kAccept;
      else if (c.next_state == p4::kParserDrop) cc.next = CompiledCase::kDrop;
      else cc.next = static_cast<std::ptrdiff_t>(parser_ids_.at(c.next_state));
      cs.cases.push_back(std::move(cc));
    }
  }

  // Controls.
  auto compile_control = [&](const p4::Control& c,
                             std::vector<CompiledControlNode>& out) {
    for (const auto& n : c.nodes) {
      CompiledControlNode cn;
      cn.kind = n.kind;
      if (n.kind == p4::ControlNode::Kind::kApply) {
        cn.table = table_ids_.at(n.table);
        for (const auto& [an, nx] : n.on_action)
          cn.on_action[action_ids_.at(an)] = nx;
        cn.on_hit = n.on_hit;
        cn.on_miss = n.on_miss;
        cn.next_default = n.next_default;
      } else {
        cn.condition = compile_expr(n.condition);
        cn.next_true = n.next_true;
        cn.next_false = n.next_false;
      }
      out.push_back(std::move(cn));
    }
  };
  compile_control(prog_.ingress, ingress_);
  compile_control(prog_.egress, egress_);

  // Calculated fields.
  for (const auto& cf : prog_.calculated_fields) {
    CompiledChecksum cc;
    cc.field = layout_.field_id(cf.field);
    cc.owner = layout_.field(cc.field).instance;
    cc.field_list = named_index(field_list_names_, cf.field_list, "field list");
    if (cf.update_condition) cc.condition = compile_expr(cf.update_condition);
    checksums_.push_back(std::move(cc));
  }

  // Deparse order.
  for (const auto& name : prog_.deparse_order) {
    if (layout_.is_stack(name)) {
      for (InstanceId id : layout_.stack_elements(name))
        deparse_instances_.push_back(id);
    } else {
      deparse_instances_.push_back(layout_.instance_id(name));
    }
  }
}

// ---------------------------------------------------------------------------
// Runtime API

std::uint64_t Switch::table_add(const std::string& table,
                                const std::string& action,
                                std::vector<KeyParam> key,
                                std::vector<BitVec> action_args,
                                std::int32_t priority) {
  auto it = table_ids_.find(table);
  if (it == table_ids_.end())
    throw_no_table(table);
  auto ait = action_ids_.find(action);
  if (ait == action_ids_.end())
    throw_no_action(action);
  const auto& allowed = table_actions_[it->second];
  if (std::find(allowed.begin(), allowed.end(), ait->second) == allowed.end())
    throw CommandError("table '" + table + "' cannot invoke action '" +
                       action + "'");
  const CompiledAction& ca = actions_[ait->second];
  if (action_args.size() != ca.param_widths.size())
    throw CommandError("action '" + action + "' expects " +
                       std::to_string(ca.param_widths.size()) +
                       " argument(s), got " +
                       std::to_string(action_args.size()));
  for (std::size_t i = 0; i < action_args.size(); ++i) {
    if (ca.param_widths[i] != 0)
      action_args[i] = action_args[i].resized(ca.param_widths[i]);
  }
  return tables_[it->second]->add(std::move(key), ait->second,
                                  std::move(action_args), priority);
}

void Switch::table_set_default(const std::string& table,
                               const std::string& action,
                               std::vector<BitVec> action_args) {
  auto it = table_ids_.find(table);
  if (it == table_ids_.end())
    throw_no_table(table);
  auto ait = action_ids_.find(action);
  if (ait == action_ids_.end())
    throw_no_action(action);
  const CompiledAction& ca = actions_[ait->second];
  if (action_args.size() != ca.param_widths.size())
    throw CommandError("action '" + action + "' expects " +
                       std::to_string(ca.param_widths.size()) +
                       " argument(s)");
  for (std::size_t i = 0; i < action_args.size(); ++i) {
    if (ca.param_widths[i] != 0)
      action_args[i] = action_args[i].resized(ca.param_widths[i]);
  }
  tables_[it->second]->set_default(ait->second, std::move(action_args));
}

void Switch::table_delete(const std::string& table, std::uint64_t handle) {
  mutable_table(table).remove(handle);
}

void Switch::table_modify(const std::string& table, const std::string& action,
                          std::uint64_t handle,
                          std::vector<BitVec> action_args) {
  auto tit = table_ids_.find(table);
  if (tit == table_ids_.end())
    throw_no_table(table);
  auto ait = action_ids_.find(action);
  if (ait == action_ids_.end())
    throw_no_action(action);
  const auto& allowed = table_actions_[tit->second];
  if (std::find(allowed.begin(), allowed.end(), ait->second) == allowed.end())
    throw CommandError("table '" + table + "' cannot invoke action '" +
                       action + "'");
  const CompiledAction& ca = actions_[ait->second];
  if (action_args.size() != ca.param_widths.size())
    throw CommandError("action '" + action + "' expects " +
                       std::to_string(ca.param_widths.size()) +
                       " argument(s), got " +
                       std::to_string(action_args.size()));
  for (std::size_t i = 0; i < action_args.size(); ++i) {
    if (ca.param_widths[i] != 0)
      action_args[i] = action_args[i].resized(ca.param_widths[i]);
  }
  tables_[tit->second]->modify(handle, ait->second, std::move(action_args));
}

void Switch::throw_no_table(const std::string& name) const {
  throw CommandError("no table named '" + name + "'" +
                     util::did_you_mean(name, table_names()));
}

void Switch::throw_no_action(const std::string& name) const {
  std::vector<std::string> names;
  names.reserve(actions_.size());
  for (const auto& a : actions_) names.push_back(a.name);
  throw CommandError("no action named '" + name + "'" +
                     util::did_you_mean(name, names));
}

std::size_t Switch::action_id(const std::string& name) const {
  auto it = action_ids_.find(name);
  if (it == action_ids_.end()) throw_no_action(name);
  return it->second;
}

const RuntimeTable& Switch::table(const std::string& name) const {
  auto it = table_ids_.find(name);
  if (it == table_ids_.end())
    throw_no_table(name);
  return *tables_[it->second];
}

RuntimeTable& Switch::mutable_table(const std::string& name) {
  auto it = table_ids_.find(name);
  if (it == table_ids_.end())
    throw_no_table(name);
  return *tables_[it->second];
}

bool Switch::has_table(const std::string& name) const {
  return table_ids_.contains(name);
}

std::vector<std::string> Switch::table_names() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& t : tables_) out.push_back(t->name());
  return out;
}

const std::string& Switch::action_name(std::size_t action_id) const {
  if (action_id >= actions_.size())
    throw CommandError("no action with id " + std::to_string(action_id));
  return actions_[action_id].name;
}

std::string Switch::table_dump(const std::string& name) const {
  const RuntimeTable& t = table(name);
  std::string out = "table " + name + " (" + std::to_string(t.size()) + "/" +
                    std::to_string(t.max_size()) + " entries)\n";
  for (const auto h : t.handles()) {
    const TableEntry& e = t.entry(h);
    out += "  [" + std::to_string(h) + "]";
    for (std::size_t i = 0; i < e.key.size(); ++i) {
      const KeySpec& spec = t.keys()[i];
      const KeyParam& k = e.key[i];
      out += " " + spec.display_name + "=";
      switch (spec.type) {
        case p4::MatchType::kExact:
        case p4::MatchType::kValid:
          out += "0x" + k.value.to_hex();
          break;
        case p4::MatchType::kTernary:
          out += "0x" + k.value.to_hex() + "&&&0x" + k.mask->to_hex();
          break;
        case p4::MatchType::kLpm:
          out += "0x" + k.value.to_hex() + "/" + std::to_string(*k.prefix_len);
          break;
        case p4::MatchType::kRange:
          out += "0x" + k.value.to_hex() + "->0x" + k.range_hi->to_hex();
          break;
      }
    }
    out += " -> " + action_name(e.action) + "(";
    for (std::size_t i = 0; i < e.action_args.size(); ++i) {
      if (i) out += ", ";
      out += "0x" + e.action_args[i].to_hex();
    }
    out += ")";
    if (e.priority >= 0) out += " prio=" + std::to_string(e.priority);
    out += " hits=" + std::to_string(e.hits) + "\n";
  }
  return out;
}

void Switch::mirror_add(std::uint32_t session, std::uint16_t port) {
  mirror_sessions_[session] = port;
}

void Switch::mc_group_set(
    std::uint16_t group,
    std::vector<std::pair<std::uint16_t, std::uint16_t>> port_rid_pairs) {
  mcast_groups_[group] = std::move(port_rid_pairs);
}

BitVec Switch::register_read(const std::string& reg, std::size_t index) const {
  return registers_[named_index(register_names_, reg, "register")].read(index);
}

void Switch::register_write(const std::string& reg, std::size_t index,
                            const BitVec& v) {
  registers_[named_index(register_names_, reg, "register")].write(index, v);
}

std::uint64_t Switch::counter_packets(const std::string& counter,
                                      std::size_t index) const {
  return counters_[named_index(counter_names_, counter, "counter")].packets(
      index);
}

std::uint64_t Switch::counter_bytes(const std::string& counter,
                                    std::size_t index) const {
  return counters_[named_index(counter_names_, counter, "counter")].bytes(index);
}

void Switch::counter_reset(const std::string& counter) {
  counters_[named_index(counter_names_, counter, "counter")].reset();
}

void Switch::sync_state_from(const Switch& src) {
  if (tables_.size() != src.tables_.size() ||
      registers_.size() != src.registers_.size() ||
      counters_.size() != src.counters_.size() ||
      meters_.size() != src.meters_.size())
    throw util::ConfigError(
        "switch: sync_state_from requires switches compiled from the same "
        "program");
  for (std::size_t i = 0; i < tables_.size(); ++i)
    tables_[i]->clone_state_from(*src.tables_[i]);
  registers_ = src.registers_;
  counters_ = src.counters_;
  meters_ = src.meters_;
  mirror_sessions_ = src.mirror_sessions_;
  mcast_groups_ = src.mcast_groups_;
  now_ = src.now_;
  rng_state_ = src.rng_state_;
}

void Switch::reset_stats() {
  stats_ = Stats{};
  for (auto& t : tables_) t->reset_counters();
}

// ---------------------------------------------------------------------------
// Observability

void Switch::set_tracer(obs::PipelineTracer* t) {
  tracer_ = t;
  if (!tracer_) return;
  bind_tracer_names(*tracer_);
}

void Switch::bind_tracer_names(obs::PipelineTracer& t) const {
  std::vector<std::string> tnames(tables_.size());
  for (const auto& [name, id] : table_ids_) tnames[id] = name;
  std::vector<std::string> anames;
  anames.reserve(actions_.size());
  for (const auto& a : actions_) anames.push_back(a.name);
  std::vector<std::string> inames;
  inames.reserve(layout_.instances().size());
  for (const auto& info : layout_.instances()) inames.push_back(info.name);
  t.bind(std::move(tnames), std::move(anames), std::move(inames));
}

std::size_t Switch::table_index(const std::string& name) const {
  auto it = table_ids_.find(name);
  if (it == table_ids_.end()) throw_no_table(name);
  return it->second;
}

obs::PipelineTracer& Switch::enable_tracing(const obs::TracerOptions& topts) {
  owned_tracer_ = std::make_unique<obs::PipelineTracer>(topts);
  set_tracer(owned_tracer_.get());
  return *owned_tracer_;
}

void Switch::disable_tracing() {
  tracer_ = nullptr;
  owned_tracer_.reset();
}

// ---------------------------------------------------------------------------
// Packet path

Switch::Phv Switch::fresh_phv() const {
  Phv phv;
  phv.fields.reserve(layout_.fields().size());
  for (const auto& f : layout_.fields()) phv.fields.emplace_back(f.width);
  phv.valid.assign(layout_.instances().size(), 0);
  for (std::size_t i = 0; i < layout_.instances().size(); ++i) {
    if (layout_.instance(static_cast<InstanceId>(i)).metadata) phv.valid[i] = 1;
  }
  return phv;
}

ProcessResult Switch::inject(std::uint16_t ingress_port,
                             const net::Packet& packet) {
  ++stats_.packets_in;
  ProcessResult res;

  // Hoisted tracer state: `tr` is nullptr in the common (untraced) case and
  // every hook below is a single predicted-not-taken branch. `timing` only
  // ever reads the clock when the tracer asked for timestamps or profiles.
  obs::PipelineTracer* const tr = tracer_;
  const bool timing = tr && tr->timing();
  const bool prof = tr && tr->profiling();
  if (tr)
    tr->record(obs::EventKind::kInject, 0, ingress_port, 0, 0, packet.size());

  std::deque<Work> queue;
  {
    Work w;
    w.where = Work::Where::kParser;
    w.ctx.packet = packet;
    w.ctx.ingress_port = ingress_port;
    queue.push_back(std::move(w));
  }

  std::size_t parser_entries = 0;
  std::size_t total_work = 0;
  const std::size_t work_limit = opts_.max_traversals * 8;

  while (!queue.empty()) {
    Work w = std::move(queue.front());
    queue.pop_front();
    if (++total_work > work_limit) {
      ++stats_.loop_kills;
      ++res.loop_kills;
      if (tr) tr->record(obs::EventKind::kLoopKill, 0, 0, 0, 0, 0);
      break;
    }
    Ctx& ctx = w.ctx;

    if (w.where == Work::Where::kParser) {
      if (++parser_entries > opts_.max_traversals) {
        ++stats_.loop_kills;
        ++res.loop_kills;
        ++stats_.drops;
        ++res.drops;
        if (tr) tr->record(obs::EventKind::kLoopKill, 0, 0, 0, 0, 0);
        continue;
      }
      if (tr)
        tr->begin_work(obs::EventKind::kTraversalStart, ctx.ingress_port,
                       static_cast<std::uint64_t>(ctx.itype));
      ctx.phv = fresh_phv();
      set_field_u64(ctx.phv, f_ingress_port_, ctx.ingress_port);
      set_field_u64(ctx.phv, f_instance_type_,
                    static_cast<std::uint64_t>(ctx.itype));
      set_field_u64(ctx.phv, f_packet_length_, ctx.packet.size());
      for (const auto& [f, v] : ctx.preserved) {
        ctx.phv.fields[f] = v.resized(layout_.field(f).width);
      }
      ctx.preserved.clear();

      const std::uint64_t parse_t0 = timing ? tr->clock_ns() : 0;
      const bool parsed = run_parser(ctx, res);
      if (tr) {
        const std::uint64_t ns = timing ? tr->clock_ns() - parse_t0 : 0;
        if (prof) tr->observe_stage(obs::Stage::kParser, ns);
        tr->record(parsed ? obs::EventKind::kParserAccept
                          : obs::EventKind::kParseError,
                   0, 0, 0, 0, parsed ? ctx.payload_offset : 0,
                   static_cast<std::uint32_t>(ns));
      }
      if (!parsed) {
        ++stats_.drops;
        ++res.drops;
        if (tr) tr->record(obs::EventKind::kDrop, 0, 0, 0, 0, 0);
        continue;
      }

      run_control(ingress_, ctx, res);
      const std::uint64_t tm_t0 = timing ? tr->clock_ns() : 0;

      // Ingress-to-egress clones are scheduled regardless of the original
      // packet's fate.
      const auto observe_tm = [&] {
        if (prof) tr->observe_stage(obs::Stage::kTm, tr->clock_ns() - tm_t0);
      };
      for (const auto& [session, fl] : ctx.clones_i2e) {
        auto mit = mirror_sessions_.find(session);
        if (mit == mirror_sessions_.end()) continue;
        Work cw;
        cw.where = Work::Where::kEgress;
        cw.ctx.packet = ctx.packet;
        cw.ctx.ingress_port = ctx.ingress_port;
        cw.ctx.itype = p4::InstanceType::kIngressClone;
        cw.ctx.phv = ctx.phv;  // PHV as at end of ingress (see DESIGN.md)
        cw.ctx.payload_offset = ctx.payload_offset;
        cw.egress_port = mit->second;
        queue.push_back(std::move(cw));
        ++stats_.clones;
        ++res.clones_i2e;
        if (tr)
          tr->record(obs::EventKind::kCloneI2E, 0, mit->second, 0, session, 0);
      }
      ctx.clones_i2e.clear();

      if (ctx.resubmit_flag) {
        ++stats_.resubmits;
        ++res.resubmits;
        Work rw;
        rw.where = Work::Where::kParser;
        rw.ctx.packet = std::move(ctx.packet);
        rw.ctx.ingress_port = ctx.ingress_port;
        rw.ctx.itype = p4::InstanceType::kResubmit;
        if (ctx.resubmit_fl)
          rw.ctx.preserved = capture_field_list(*ctx.resubmit_fl, ctx.phv);
        queue.push_back(std::move(rw));
        if (tr) {
          tr->record(obs::EventKind::kResubmit, 0, rw.ctx.ingress_port, 0, 0,
                     0);
          observe_tm();
        }
        continue;
      }

      const std::uint64_t mcast = field_u64(ctx.phv, f_mcast_grp_);
      const std::uint64_t espec = field_u64(ctx.phv, f_egress_spec_);
      if (mcast != 0) {
        auto git = mcast_groups_.find(static_cast<std::uint16_t>(mcast));
        if (git != mcast_groups_.end()) {
          for (const auto& [port, rid] : git->second) {
            Work ew;
            ew.where = Work::Where::kEgress;
            ew.ctx = ctx;  // copy, replication semantics
            ew.ctx.itype = p4::InstanceType::kReplication;
            ew.egress_port = port;
            ew.egress_rid = rid;
            queue.push_back(std::move(ew));
            ++res.multicast_copies;
            if (tr)
              tr->record(obs::EventKind::kMulticastCopy, 0, port, 0, mcast,
                         rid);
          }
        }
        if (tr) observe_tm();
        continue;
      }
      if (espec == p4::kDropPort) {
        ++stats_.drops;
        ++res.drops;
        if (tr) {
          tr->record(obs::EventKind::kDrop, 0, 0, 0, 0, 0);
          observe_tm();
        }
        continue;
      }
      Work ew;
      ew.where = Work::Where::kEgress;
      ew.ctx = std::move(ctx);
      ew.egress_port = static_cast<std::uint16_t>(espec);
      queue.push_back(std::move(ew));
      if (tr) {
        tr->record(obs::EventKind::kUnicast, 0,
                   static_cast<std::uint16_t>(espec), 0, 0, 0);
        observe_tm();
      }
      continue;
    }

    // ---- egress ----
    set_field_u64(ctx.phv, f_egress_port_, w.egress_port);
    set_field_u64(ctx.phv, f_egress_rid_, w.egress_rid);
    set_field_u64(ctx.phv, f_instance_type_,
                  static_cast<std::uint64_t>(ctx.itype));
    ctx.drop_flag = false;  // egress fate decided by egress processing
    ctx.in_egress = true;
    if (tr)
      tr->begin_work(obs::EventKind::kEgressStart, w.egress_port,
                     static_cast<std::uint64_t>(ctx.itype));

    run_control(egress_, ctx, res);
    const std::uint64_t etm_t0 = timing ? tr->clock_ns() : 0;

    for (const auto& [session, fl] : ctx.clones_e2e) {
      auto mit = mirror_sessions_.find(session);
      if (mit == mirror_sessions_.end()) continue;
      Work cw;
      cw.where = Work::Where::kEgress;
      cw.ctx.packet = ctx.packet;
      cw.ctx.ingress_port = ctx.ingress_port;
      cw.ctx.payload_offset = ctx.payload_offset;
      cw.ctx.itype = p4::InstanceType::kEgressClone;
      cw.ctx.phv = ctx.phv;  // PHV as at end of egress
      cw.egress_port = mit->second;
      queue.push_back(std::move(cw));
      ++stats_.clones;
      ++res.clones_e2e;
      if (tr)
        tr->record(obs::EventKind::kCloneE2E, obs::kFlagEgress, mit->second,
                   0, session, 0);
    }
    ctx.clones_e2e.clear();
    if (prof) tr->observe_stage(obs::Stage::kTm, tr->clock_ns() - etm_t0);

    if (ctx.drop_flag) {
      ++stats_.drops;
      ++res.drops;
      if (tr) tr->record(obs::EventKind::kDrop, obs::kFlagEgress, 0, 0, 0, 0);
      continue;
    }

    const std::uint64_t dp_t0 = timing ? tr->clock_ns() : 0;
    apply_checksums(ctx);
    net::Packet out = deparse(ctx);
    if (tr) {
      const std::uint64_t ns = timing ? tr->clock_ns() - dp_t0 : 0;
      if (prof) tr->observe_stage(obs::Stage::kDeparse, ns);
      tr->record(obs::EventKind::kDeparse, obs::kFlagEgress, 0, 0, 0,
                 out.size(), static_cast<std::uint32_t>(ns));
    }

    if (ctx.recirc_flag) {
      ++stats_.recirculations;
      ++res.recirculations;
      Work rw;
      rw.where = Work::Where::kParser;
      rw.ctx.ingress_port = w.egress_port;
      rw.ctx.itype = p4::InstanceType::kRecirculate;
      if (ctx.recirc_fl)
        rw.ctx.preserved = capture_field_list(*ctx.recirc_fl, ctx.phv);
      rw.ctx.packet = std::move(out);
      queue.push_back(std::move(rw));
      if (tr)
        tr->record(obs::EventKind::kRecirculate, obs::kFlagEgress,
                   w.egress_port, 0, 0, 0);
      continue;
    }

    ++stats_.packets_out;
    if (tr)
      tr->record(obs::EventKind::kEmit, obs::kFlagEgress, w.egress_port, 0, 0,
                 out.size());
    res.outputs.push_back(OutputPacket{w.egress_port, std::move(out)});
  }

  return res;
}

bool Switch::run_parser(Ctx& ctx, ProcessResult& res) {
  if (parser_.empty()) return true;  // no parser: whole packet is payload
  auto sit = parser_ids_.find("start");
  if (sit == parser_ids_.end()) return true;
  std::size_t state = sit->second;
  std::size_t cursor = 0;  // bits
  const auto data = ctx.packet.bytes();
  const std::size_t total_bits = data.size() * 8;
  std::size_t visits = 0;

  while (true) {
    if (++visits > 1024) {
      ++stats_.parse_errors;
      ++res.parse_errors;
      return false;
    }
    const CompiledParserState& st = parser_[state];
    for (const auto& ex : st.extracts) {
      InstanceId inst;
      if (ex.is_stack) {
        std::size_t& next = ctx.phv.stack_next[ex.stack_base];
        const auto& elems = layout_.stack_elements(ex.stack_base);
        if (next >= elems.size()) {
          ++stats_.parse_errors;
          ++res.parse_errors;
          return false;
        }
        inst = elems[next++];
      } else {
        inst = ex.instance;
      }
      const InstanceInfo& info = layout_.instance(inst);
      if (cursor + info.width_bits > total_bits) {
        ++stats_.parse_errors;
        ++res.parse_errors;
        return false;
      }
      for (std::size_t fi = 0; fi < info.field_count; ++fi) {
        const FieldId fid = info.first_field + static_cast<FieldId>(fi);
        const FieldInfo& finfo = layout_.field(fid);
        ctx.phv.fields[fid] = read_bits(data, cursor + finfo.offset_bits,
                                        finfo.width);
      }
      ctx.phv.valid[inst] = 1;
      cursor += info.width_bits;
      if (tracer_)
        tracer_->record(obs::EventKind::kParserExtract, 0, 0, inst, 0, 0);
    }
    for (const auto& [fid, expr] : st.sets) {
      ctx.phv.fields[fid] =
          eval_expr(expr, ctx.phv).resized(layout_.field(fid).width);
    }

    // Transition.
    std::ptrdiff_t next = CompiledCase::kDrop;
    if (st.select.empty()) {
      next = st.cases[0].next;
    } else {
      BitVec key(0);
      std::size_t key_width = 0;
      for (const auto& k : st.select) key_width += k.width;
      key = BitVec(key_width);
      std::size_t pos = key_width;
      for (const auto& k : st.select) {
        BitVec v = k.is_current
                       ? read_bits(data, cursor + k.current_offset,
                                   k.current_width)
                       : ctx.phv.fields[k.field];
        pos -= k.width;
        key.set_slice(pos, v.resized(k.width));
      }
      bool matched = false;
      for (const auto& c : st.cases) {
        if (c.is_default) {
          next = c.next;
          matched = true;
          break;
        }
        if (c.mask ? ((key & *c.mask) == (c.value & *c.mask))
                   : (key == c.value)) {
          next = c.next;
          matched = true;
          break;
        }
      }
      if (!matched) {
        // No case and no default: P4-14 implicit drop.
        next = CompiledCase::kDrop;
      }
    }

    if (next == CompiledCase::kAccept) break;
    if (next == CompiledCase::kDrop) return false;
    state = static_cast<std::size_t>(next);
  }

  if (cursor % 8 != 0) {
    ++stats_.parse_errors;
    ++res.parse_errors;
    return false;
  }
  ctx.payload_offset = cursor / 8;
  return true;
}

util::BitVec Switch::eval_expr(const CompiledExpr& e, const Phv& phv) const {
  using p4::ExprOp;
  auto b1 = [](bool b) { return BitVec(1, b ? 1 : 0); };
  switch (e.op) {
    case ExprOp::kConst: return e.value;
    case ExprOp::kField: return phv.fields[e.field];
    case ExprOp::kValid: return b1(phv.valid[e.instance] != 0);
    case ExprOp::kLNot: return b1(!eval_expr(e.children[0], phv).any());
    case ExprOp::kBitNot: return ~eval_expr(e.children[0], phv);
    default: break;
  }
  const BitVec a = eval_expr(e.children[0], phv);
  const BitVec b = eval_expr(e.children[1], phv);
  switch (e.op) {
    case ExprOp::kAdd: return a + b;
    case ExprOp::kSub: return a - b;
    case ExprOp::kBitAnd: return a & b;
    case ExprOp::kBitOr: return a | b;
    case ExprOp::kBitXor: return a ^ b;
    case ExprOp::kShl: return a << b.low_u64();
    case ExprOp::kShr: return a >> b.low_u64();
    case ExprOp::kEq: return b1(a == b);
    case ExprOp::kNe: return b1(!(a == b));
    case ExprOp::kLt: return b1(a < b);
    case ExprOp::kGt: return b1(a > b);
    case ExprOp::kLe: return b1(a <= b);
    case ExprOp::kGe: return b1(a >= b);
    case ExprOp::kLAnd: return b1(a.any() && b.any());
    case ExprOp::kLOr: return b1(a.any() || b.any());
    default:
      throw ConfigError("eval_expr: unsupported operator");
  }
}

void Switch::run_control(const std::vector<CompiledControlNode>& nodes,
                         Ctx& ctx, ProcessResult& res) {
  if (nodes.empty()) return;
  std::size_t idx = 0;
  std::size_t steps = 0;
  const std::size_t step_limit = nodes.size() * 4 + 64;
  obs::PipelineTracer* const tr = tracer_;
  const bool timing = tr && tr->timing();
  const bool prof = tr && tr->profiling();
  while (idx != p4::kEndOfControl) {
    if (++steps > step_limit)
      throw ConfigError("control graph did not terminate (cycle?)");
    const CompiledControlNode& n = nodes[idx];
    if (n.kind == p4::ControlNode::Kind::kIf) {
      idx = eval_expr(n.condition, ctx.phv).any() ? n.next_true : n.next_false;
      continue;
    }

    RuntimeTable& t = *tables_[n.table];
    // key_scratch_ is sized once (compile()) to the widest table's key
    // arity; component assignment reuses each BitVec's word storage, so
    // building the probe key allocates nothing after warm-up.
    std::size_t ternary_total = 0;
    bool uses_ternary = false;
    for (std::size_t ki = 0; ki < t.keys().size(); ++ki) {
      const KeySpec& spec = t.keys()[ki];
      if (spec.type == p4::MatchType::kValid) {
        key_scratch_[ki].assign(1, ctx.phv.valid[spec.field] ? 1 : 0);
      } else {
        key_scratch_[ki] = ctx.phv.fields[spec.field];
      }
      if (spec.type == p4::MatchType::kTernary ||
          spec.type == p4::MatchType::kLpm) {
        uses_ternary = true;
        ternary_total += spec.width;
      }
    }
    const std::uint64_t lk_t0 = timing ? tr->clock_ns() : 0;
    TableEntry* entry = t.lookup(key_scratch_);
    std::uint64_t lookup_ns = 0;
    if (timing) {
      lookup_ns = tr->clock_ns() - lk_t0;
      if (prof) {
        tr->observe_stage(obs::Stage::kLookup, lookup_ns);
        tr->observe_table(n.table, lookup_ns);
      }
    }

    AppliedTable applied;
    applied.table = t.name();
    applied.hit = entry != nullptr;
    applied.used_ternary = uses_ternary;
    applied.ternary_bits_total = uses_ternary ? ternary_total : 0;
    if (entry) {
      applied.entry_handle = entry->handle;
      if (uses_ternary) {
        std::size_t active = 0;
        for (std::size_t i = 0; i < t.keys().size(); ++i) {
          const auto& spec = t.keys()[i];
          if (spec.type == p4::MatchType::kTernary && entry->key[i].mask) {
            active += entry->key[i].mask->popcount();
          } else if (spec.type == p4::MatchType::kLpm) {
            active += *entry->key[i].prefix_len;
          }
        }
        applied.ternary_bits_active = active;
      }
    }
    res.applied.push_back(applied);

    std::optional<std::size_t> ran_action;
    const std::uint64_t act_t0 = timing ? tr->clock_ns() : 0;
    if (entry) {
      exec_action(entry->action, entry->action_args, ctx, res);
      ran_action = entry->action;
      entry->hit_bytes += ctx.packet.size();
    } else if (t.has_default()) {
      exec_action(t.default_action(), t.default_args(), ctx, res);
      ran_action = t.default_action();
    }
    std::uint64_t action_ns = 0;
    if (timing) {
      action_ns = tr->clock_ns() - act_t0;
      if (prof) tr->observe_stage(obs::Stage::kAction, action_ns);
    }
    if (tr) {
      std::uint8_t flags = 0;
      if (entry) flags |= obs::kFlagHit;
      if (ctx.in_egress) flags |= obs::kFlagEgress;
      flags |= static_cast<std::uint8_t>(
          (static_cast<std::uint8_t>(t.index_kind()) << obs::kFlagIndexShift) &
          obs::kFlagIndexMask);
      tr->record(obs::EventKind::kTableApply, flags, 0,
                 static_cast<std::uint32_t>(n.table),
                 entry ? entry->handle : 0,
                 ran_action ? static_cast<std::uint64_t>(*ran_action)
                            : obs::kNoAction,
                 static_cast<std::uint32_t>(lookup_ns + action_ns));
    }

    // Successor: action edge first, then hit/miss, then default.
    std::size_t next = n.next_default;
    bool found = false;
    if (ran_action) {
      auto ait = n.on_action.find(*ran_action);
      if (ait != n.on_action.end()) {
        next = ait->second;
        found = true;
      }
    }
    if (!found && entry && n.on_hit) {
      next = *n.on_hit;
      found = true;
    }
    if (!found && !entry && n.on_miss) {
      next = *n.on_miss;
    }
    idx = next;
  }
}

void Switch::exec_action(std::size_t action_id,
                         const std::vector<BitVec>& args, Ctx& ctx,
                         ProcessResult& res) {
  const CompiledAction& a = actions_[action_id];
  if (tracer_)
    tracer_->record(obs::EventKind::kActionExec,
                    ctx.in_egress ? obs::kFlagEgress : 0, 0,
                    static_cast<std::uint32_t>(action_id), 0, args.size());
  const bool rec_prims =
      tracer_ && tracer_->options().record_primitives;
  for (const auto& prim : a.body) {
    if (rec_prims)
      tracer_->record(obs::EventKind::kPrimitive,
                      ctx.in_egress ? obs::kFlagEgress : 0, 0,
                      static_cast<std::uint32_t>(prim.op), 0, 0);
    exec_primitive(prim, args, ctx, res);
  }
}

util::BitVec Switch::read_arg(const CompiledArg& a,
                              const std::vector<BitVec>& args,
                              const Phv& phv) const {
  switch (a.kind) {
    case CompiledArg::Kind::kConst: return a.value;
    case CompiledArg::Kind::kParam: return args.at(a.index);
    case CompiledArg::Kind::kField: return phv.fields[a.field];
    default:
      throw ConfigError("action argument is not a value");
  }
}

FieldId Switch::dst_field(const CompiledArg& a) const {
  if (a.kind != CompiledArg::Kind::kField)
    throw ConfigError("primitive destination must be a field");
  return a.field;
}

std::vector<std::pair<FieldId, util::BitVec>> Switch::capture_field_list(
    std::size_t fl_index, const Phv& phv) const {
  std::vector<std::pair<FieldId, BitVec>> out;
  for (FieldId f : field_lists_[fl_index]) out.emplace_back(f, phv.fields[f]);
  return out;
}

void Switch::exec_primitive(const CompiledPrim& prim,
                            const std::vector<BitVec>& args, Ctx& ctx,
                            ProcessResult& res) {
  using p4::Primitive;
  Phv& phv = ctx.phv;
  auto write_field = [&](FieldId f, const BitVec& v) {
    phv.fields[f] = v.resized(layout_.field(f).width);
  };
  switch (prim.op) {
    case Primitive::kNoOp:
      break;
    case Primitive::kModifyField: {
      const FieldId dst = dst_field(prim.args[0]);
      const BitVec src = read_arg(prim.args[1], args, phv);
      if (prim.args.size() >= 3) {
        const BitVec mask =
            read_arg(prim.args[2], args, phv).resized(layout_.field(dst).width);
        write_field(dst, (phv.fields[dst] & ~mask) | (src & mask));
      } else {
        write_field(dst, src);
      }
      break;
    }
    case Primitive::kAddToField: {
      const FieldId dst = dst_field(prim.args[0]);
      write_field(dst, phv.fields[dst] + read_arg(prim.args[1], args, phv));
      break;
    }
    case Primitive::kSubtractFromField: {
      const FieldId dst = dst_field(prim.args[0]);
      write_field(dst, phv.fields[dst] - read_arg(prim.args[1], args, phv));
      break;
    }
    case Primitive::kAdd:
    case Primitive::kSubtract:
    case Primitive::kBitAnd:
    case Primitive::kBitOr:
    case Primitive::kBitXor:
    case Primitive::kShiftLeft:
    case Primitive::kShiftRight: {
      const FieldId dst = dst_field(prim.args[0]);
      const BitVec a = read_arg(prim.args[1], args, phv);
      const BitVec b = read_arg(prim.args[2], args, phv);
      BitVec r;
      switch (prim.op) {
        case Primitive::kAdd: r = a + b; break;
        case Primitive::kSubtract: r = a - b; break;
        case Primitive::kBitAnd: r = a & b; break;
        case Primitive::kBitOr: r = a | b; break;
        case Primitive::kBitXor: r = a ^ b; break;
        case Primitive::kShiftLeft:
          r = a.resized(layout_.field(dst).width) << b.low_u64();
          break;
        default:
          r = a >> b.low_u64();
          break;
      }
      write_field(dst, r);
      break;
    }
    case Primitive::kAddHeader: {
      const InstanceId h = prim.args[0].instance;
      phv.valid[h] = 1;
      const InstanceInfo& info = layout_.instance(h);
      for (std::size_t i = 0; i < info.field_count; ++i) {
        const FieldId f = info.first_field + static_cast<FieldId>(i);
        phv.fields[f] = BitVec(layout_.field(f).width);
      }
      break;
    }
    case Primitive::kCopyHeader: {
      const InstanceId dst = prim.args[0].instance;
      const InstanceId src = prim.args[1].instance;
      const InstanceInfo& di = layout_.instance(dst);
      const InstanceInfo& si = layout_.instance(src);
      if (di.type_name != si.type_name)
        throw ConfigError("copy_header: type mismatch");
      phv.valid[dst] = phv.valid[src];
      for (std::size_t i = 0; i < di.field_count; ++i) {
        phv.fields[di.first_field + i] = phv.fields[si.first_field + i];
      }
      break;
    }
    case Primitive::kRemoveHeader:
      phv.valid[prim.args[0].instance] = 0;
      break;
    case Primitive::kPush: {
      const auto& elems = layout_.stack_elements(prim.args[0].stack_base);
      const std::size_t n = static_cast<std::size_t>(
          read_arg(prim.args[1], args, phv).low_u64());
      for (std::size_t i = elems.size(); i-- > n;) {
        const InstanceInfo& di = layout_.instance(elems[i]);
        const InstanceInfo& si = layout_.instance(elems[i - n]);
        phv.valid[elems[i]] = phv.valid[elems[i - n]];
        for (std::size_t fi = 0; fi < di.field_count; ++fi)
          phv.fields[di.first_field + fi] = phv.fields[si.first_field + fi];
      }
      for (std::size_t i = 0; i < std::min(n, elems.size()); ++i) {
        const InstanceInfo& di = layout_.instance(elems[i]);
        phv.valid[elems[i]] = 1;
        for (std::size_t fi = 0; fi < di.field_count; ++fi)
          phv.fields[di.first_field + fi] =
              BitVec(layout_.field(di.first_field + fi).width);
      }
      auto& next = phv.stack_next[prim.args[0].stack_base];
      next = std::min(elems.size(), next + n);
      break;
    }
    case Primitive::kPop: {
      const auto& elems = layout_.stack_elements(prim.args[0].stack_base);
      const std::size_t n = static_cast<std::size_t>(
          read_arg(prim.args[1], args, phv).low_u64());
      for (std::size_t i = 0; i + n < elems.size(); ++i) {
        const InstanceInfo& di = layout_.instance(elems[i]);
        const InstanceInfo& si = layout_.instance(elems[i + n]);
        phv.valid[elems[i]] = phv.valid[elems[i + n]];
        for (std::size_t fi = 0; fi < di.field_count; ++fi)
          phv.fields[di.first_field + fi] = phv.fields[si.first_field + fi];
      }
      for (std::size_t i = elems.size() - std::min(n, elems.size());
           i < elems.size(); ++i) {
        phv.valid[elems[i]] = 0;
      }
      auto& next = phv.stack_next[prim.args[0].stack_base];
      next = next > n ? next - n : 0;
      break;
    }
    case Primitive::kDrop:
      // bmv2 semantics: in ingress, drop marks egress_spec (a later write
      // to egress_spec un-drops); in egress the drop is final.
      if (ctx.in_egress) {
        ctx.drop_flag = true;
      } else {
        set_field_u64(phv, f_egress_spec_, p4::kDropPort);
      }
      break;
    case Primitive::kTruncate:
      ctx.truncate_bytes = static_cast<std::size_t>(
          read_arg(prim.args[0], args, phv).low_u64());
      break;
    case Primitive::kCount: {
      const std::size_t idx = static_cast<std::size_t>(
          read_arg(prim.args[1], args, phv).low_u64());
      counters_[prim.args[0].index].count(idx, ctx.packet.size());
      break;
    }
    case Primitive::kExecuteMeter: {
      const std::size_t idx = static_cast<std::size_t>(
          read_arg(prim.args[1], args, phv).low_u64());
      const MeterColor c = meters_[prim.args[0].index].execute(idx, now_);
      write_field(dst_field(prim.args[2]),
                  BitVec(layout_.field(dst_field(prim.args[2])).width,
                         static_cast<std::uint64_t>(c)));
      break;
    }
    case Primitive::kRegisterRead: {
      const std::size_t idx = static_cast<std::size_t>(
          read_arg(prim.args[2], args, phv).low_u64());
      write_field(dst_field(prim.args[0]),
                  registers_[prim.args[1].index].read(idx));
      break;
    }
    case Primitive::kRegisterWrite: {
      const std::size_t idx = static_cast<std::size_t>(
          read_arg(prim.args[1], args, phv).low_u64());
      registers_[prim.args[0].index].write(
          idx, read_arg(prim.args[2], args, phv));
      break;
    }
    case Primitive::kResubmit:
      ctx.resubmit_flag = true;
      if (!prim.args.empty()) ctx.resubmit_fl = prim.args[0].index;
      break;
    case Primitive::kRecirculate:
      ctx.recirc_flag = true;
      if (!prim.args.empty()) ctx.recirc_fl = prim.args[0].index;
      break;
    case Primitive::kCloneIngressToEgress: {
      const std::uint32_t session = static_cast<std::uint32_t>(
          read_arg(prim.args[0], args, phv).low_u64());
      std::optional<std::size_t> fl;
      if (prim.args.size() >= 2) fl = prim.args[1].index;
      ctx.clones_i2e.emplace_back(session, fl);
      break;
    }
    case Primitive::kCloneEgressToEgress: {
      const std::uint32_t session = static_cast<std::uint32_t>(
          read_arg(prim.args[0], args, phv).low_u64());
      std::optional<std::size_t> fl;
      if (prim.args.size() >= 2) fl = prim.args[1].index;
      ctx.clones_e2e.emplace_back(session, fl);
      break;
    }
    case Primitive::kGenerateDigest: {
      DigestMessage d;
      d.receiver = std::to_string(read_arg(prim.args[0], args, phv).low_u64());
      for (FieldId f : field_lists_[prim.args[1].index]) {
        d.field_names.push_back(layout_.instance(layout_.field(f).instance).name +
                                "." + layout_.field(f).name);
        d.low_values.push_back(phv.fields[f].low_u64());
      }
      res.digests.push_back(std::move(d));
      break;
    }
    case Primitive::kModifyFieldRngUniform: {
      const FieldId dst = dst_field(prim.args[0]);
      const std::uint64_t lo = read_arg(prim.args[1], args, phv).low_u64();
      const std::uint64_t hi = read_arg(prim.args[2], args, phv).low_u64();
      rng_state_ ^= rng_state_ << 13;
      rng_state_ ^= rng_state_ >> 7;
      rng_state_ ^= rng_state_ << 17;
      const std::uint64_t span = hi >= lo ? hi - lo + 1 : 1;
      write_field(dst, BitVec(layout_.field(dst).width,
                              lo + (span ? rng_state_ % span : 0)));
      break;
    }
  }
}

void Switch::apply_checksums(Ctx& ctx) {
  for (const auto& cs : checksums_) {
    if (!ctx.phv.valid[cs.owner]) continue;
    if (cs.condition && !eval_expr(*cs.condition, ctx.phv).any()) continue;
    std::vector<std::uint8_t> buf;
    std::size_t pos = 0;
    for (FieldId f : field_lists_[cs.field_list]) {
      append_bits(buf, pos, ctx.phv.fields[f], layout_.field(f).width);
    }
    if (pos % 8 != 0)
      throw ConfigError("checksum field list is not byte-aligned");
    const std::uint16_t c = net::internet_checksum(buf);
    ctx.phv.fields[cs.field] = BitVec(layout_.field(cs.field).width, c);
  }
}

net::Packet Switch::deparse(Ctx& ctx) {
  std::vector<std::uint8_t> out;
  std::size_t pos = 0;
  for (InstanceId inst : deparse_instances_) {
    if (!ctx.phv.valid[inst]) continue;
    const InstanceInfo& info = layout_.instance(inst);
    for (std::size_t i = 0; i < info.field_count; ++i) {
      const FieldId f = info.first_field + static_cast<FieldId>(i);
      append_bits(out, pos, ctx.phv.fields[f], layout_.field(f).width);
    }
  }
  if (pos % 8 != 0)
    throw ConfigError("deparsed headers are not byte-aligned");
  net::Packet p(std::move(out));
  const auto payload = ctx.packet.bytes();
  if (ctx.payload_offset < payload.size()) {
    p.append(payload.subspan(ctx.payload_offset));
  }
  if (ctx.truncate_bytes) p.truncate(*ctx.truncate_bytes);
  return p;
}

}  // namespace hyper4::bm
