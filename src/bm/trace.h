// Per-injection processing trace. The evaluation benches (Tables 1, 4, 5)
// are computed from these records: stages incurred, ternary bits matched,
// resubmit / recirculation counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.h"

namespace hyper4::bm {

struct OutputPacket {
  std::uint16_t port = 0;
  net::Packet packet;

  friend bool operator==(const OutputPacket& a, const OutputPacket& b) {
    return a.port == b.port && a.packet == b.packet;
  }
};

// One table application (the paper's unit for "number of matches").
struct AppliedTable {
  std::string table;
  bool hit = false;
  std::uint64_t entry_handle = 0;  // valid when hit
  // Ternary accounting for Table 4: bits offered to ternary/lpm match keys
  // of this table (total includes wildcards) and bits actively compared
  // (popcount of the matched entry's masks; 0 on miss).
  std::size_t ternary_bits_total = 0;
  std::size_t ternary_bits_active = 0;
  bool used_ternary = false;

  friend bool operator==(const AppliedTable& a, const AppliedTable& b) {
    return a.table == b.table && a.hit == b.hit &&
           a.entry_handle == b.entry_handle &&
           a.ternary_bits_total == b.ternary_bits_total &&
           a.ternary_bits_active == b.ternary_bits_active &&
           a.used_ternary == b.used_ternary;
  }
};

struct DigestMessage {
  std::string receiver;
  std::vector<std::string> field_names;
  std::vector<std::uint64_t> low_values;  // low 64 bits of each field

  friend bool operator==(const DigestMessage& a, const DigestMessage& b) {
    return a.receiver == b.receiver && a.field_names == b.field_names &&
           a.low_values == b.low_values;
  }
};

struct ProcessResult {
  std::vector<OutputPacket> outputs;
  std::vector<AppliedTable> applied;
  std::size_t resubmits = 0;
  std::size_t recirculations = 0;
  std::size_t clones_i2e = 0;
  std::size_t clones_e2e = 0;
  std::size_t multicast_copies = 0;
  std::size_t drops = 0;
  std::size_t parse_errors = 0;
  // Traversal limit hit (a recirculation loop was cut off).
  std::size_t loop_kills = 0;
  std::vector<DigestMessage> digests;

  std::size_t match_count() const { return applied.size(); }
  std::size_t ternary_match_count() const {
    std::size_t n = 0;
    for (const auto& a : applied) n += a.used_ternary ? 1 : 0;
    return n;
  }
  std::size_t ternary_bits_total() const {
    std::size_t n = 0;
    for (const auto& a : applied) n += a.ternary_bits_total;
    return n;
  }
  std::size_t ternary_bits_active() const {
    std::size_t n = 0;
    for (const auto& a : applied) n += a.ternary_bits_active;
    return n;
  }
};

}  // namespace hyper4::bm
