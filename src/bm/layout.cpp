#include "bm/layout.h"

#include "util/error.h"

namespace hyper4::bm {

using util::ConfigError;

Layout::Layout(const p4::Program& prog) {
  add_instance(p4::kStandardMetadata, p4::standard_metadata_type(),
               /*metadata=*/true, false, "", 0);
  for (const auto& inst : prog.instances) {
    const p4::HeaderType& type = prog.header_type(inst.type);
    if (inst.is_stack()) {
      auto& elems = stacks_[inst.name];
      for (std::size_t i = 0; i < inst.stack_size; ++i) {
        const std::string ename = inst.name + "[" + std::to_string(i) + "]";
        add_instance(ename, type, inst.metadata, true, inst.name, i);
        elems.push_back(static_cast<InstanceId>(instances_.size() - 1));
      }
    } else {
      add_instance(inst.name, type, inst.metadata, false, "", 0);
    }
  }
}

void Layout::add_instance(const std::string& name, const p4::HeaderType& type,
                          bool metadata, bool stack_element,
                          const std::string& stack_base,
                          std::size_t stack_index) {
  InstanceInfo info;
  info.name = name;
  info.type_name = type.name;
  info.metadata = metadata;
  info.stack_element = stack_element;
  info.stack_base = stack_base;
  info.stack_index = stack_index;
  info.width_bits = type.width_bits();
  info.first_field = static_cast<FieldId>(fields_.size());
  info.field_count = type.fields.size();
  const InstanceId id = static_cast<InstanceId>(instances_.size());
  std::size_t off = 0;
  for (const auto& f : type.fields) {
    FieldInfo fi;
    fi.instance = id;
    fi.name = f.name;
    fi.width = f.width;
    fi.offset_bits = off;
    off += f.width;
    field_by_name_[name + "." + f.name] = static_cast<FieldId>(fields_.size());
    fields_.push_back(std::move(fi));
  }
  by_name_[name] = id;
  instances_.push_back(std::move(info));
}

InstanceId Layout::instance_id(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  // A bare stack name refers to element 0 outside the parser.
  auto st = stacks_.find(name);
  if (st != stacks_.end() && !st->second.empty()) return st->second[0];
  throw ConfigError("layout: unknown instance '" + name + "'");
}

bool Layout::has_instance(const std::string& name) const {
  return by_name_.contains(name) || stacks_.contains(name);
}

FieldId Layout::field_id(const p4::FieldRef& ref) const {
  return field_id(ref.header, ref.field);
}

FieldId Layout::field_id(const std::string& instance,
                         const std::string& field) const {
  auto it = field_by_name_.find(instance + "." + field);
  if (it != field_by_name_.end()) return it->second;
  // Bare stack name → element 0.
  auto st = stacks_.find(instance);
  if (st != stacks_.end()) {
    auto it2 = field_by_name_.find(instances_[st->second[0]].name + "." + field);
    if (it2 != field_by_name_.end()) return it2->second;
  }
  throw ConfigError("layout: unknown field '" + instance + "." + field + "'");
}

const std::vector<InstanceId>& Layout::stack_elements(
    const std::string& base) const {
  auto it = stacks_.find(base);
  if (it == stacks_.end())
    throw ConfigError("layout: '" + base + "' is not a header stack");
  return it->second;
}

}  // namespace hyper4::bm
