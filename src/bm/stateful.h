// Stateful dataplane objects: counters, registers and (token-bucket)
// meters. HyPer4 preallocates sets of these per virtual device (§4.5);
// the allocation logic lives in src/hp4, these are the physical objects.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bitvec.h"

namespace hyper4::bm {

class CounterArray {
 public:
  CounterArray(std::string name, std::size_t instances);

  const std::string& name() const { return name_; }
  std::size_t size() const { return packets_.size(); }

  void count(std::size_t index, std::size_t bytes);
  std::uint64_t packets(std::size_t index) const;
  std::uint64_t bytes(std::size_t index) const;
  // Checkpoint restore: overwrite one cell's cumulative counts.
  void set(std::size_t index, std::uint64_t packets, std::uint64_t bytes);
  void reset();

 private:
  std::string name_;
  std::vector<std::uint64_t> packets_;
  std::vector<std::uint64_t> bytes_;
};

class RegisterArray {
 public:
  RegisterArray(std::string name, std::size_t width, std::size_t instances);

  const std::string& name() const { return name_; }
  std::size_t size() const { return cells_.size(); }
  std::size_t width() const { return width_; }

  const util::BitVec& read(std::size_t index) const;
  void write(std::size_t index, const util::BitVec& v);
  void reset();

 private:
  std::string name_;
  std::size_t width_;
  std::vector<util::BitVec> cells_;
};

// Meter color results per RFC 2697-style single-rate marking (simplified
// to a single token bucket: conform = green, exceed = red; yellow unused).
enum class MeterColor : std::uint64_t { kGreen = 0, kYellow = 1, kRed = 2 };

class MeterArray {
 public:
  MeterArray(std::string name, std::size_t instances, std::uint64_t rate_pps,
             std::uint64_t burst);

  const std::string& name() const { return name_; }
  std::size_t size() const { return buckets_.size(); }

  // Executes the meter for one packet at logical time `now` (seconds are
  // abstract units: tokens accrue at rate_pps per unit).
  MeterColor execute(std::size_t index, double now);
  void reset();

  // Checkpoint export/import of the full bucket state. Doubles survive a
  // round trip bit-exactly (the state serializer stores their bit
  // patterns), so a restored meter marks packets identically.
  struct ExportedBucket {
    double tokens = 0;
    double last = 0;
    bool primed = false;
  };
  std::vector<ExportedBucket> export_buckets() const;
  void import_buckets(const std::vector<ExportedBucket>& b);

 private:
  struct Bucket {
    double tokens = 0;
    double last = 0;
    bool primed = false;
  };
  std::string name_;
  std::uint64_t rate_pps_;
  std::uint64_t burst_;
  std::vector<Bucket> buckets_;
};

}  // namespace hyper4::bm
