// Seeded random generation of well-formed (program, rules, packets) triples
// inside the persona-supported P4 subset (§5.3) — the input side of the
// differential oracle (diff_runner.h).
//
// Every generated program is finalized/validated IR; every rule is
// installable through both the native CLI and the DPMU; every packet is
// long enough for the persona's parse ladder. The generator is disciplined
// about the places where naive randomness would produce *legitimate*
// backend disagreement rather than bugs:
//   - tables keying fields of conditionally-parsed headers always carry a
//     valid(h) key (the persona matches raw extracted bytes, the native
//     switch a typed PHV — validity constraints make them agree);
//   - actions only write fields of headers that are guaranteed valid where
//     the action can run;
//   - egress is always decided: the control flow ends in "terminal" tables
//     whose actions either forward (egress_spec from an action parameter)
//     or drop, with drop as the default action;
//   - lpm keys appear only as the sole key of a table whose rules use
//     implicit priorities (both backends then order longest-prefix-first);
//     rules of tables with ternary keys carry distinct explicit priorities;
//   - counters/registers are generated only when allow_stateful is set and
//     mark the case stateful (the persona skips those; the oracle then pins
//     the engine to one worker so register state stays comparable).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.h"
#include "p4/ir.h"

namespace hyper4::check {

struct GenLimits {
  std::size_t ports = 4;           // physical ports 1..ports
  std::size_t max_tables = 4;      // persona stage budget
  std::size_t max_rules_per_table = 4;
  std::size_t packets = 24;
  std::size_t max_extra_payload = 24;  // random bytes past the parse ladder
  bool allow_stateful = false;     // counters / registers
  double p_stateful = 0.25;        // probability per case when allowed

  // Match-kind shaping for table keys. The defaults reproduce the original
  // distribution; the hyper4_check `--weights exact|lpm|ternary` presets
  // skew them to stress one compiled index kind (exact-hash, lpm-buckets
  // or ternary-scan) at a time — the nightly CI job sweeps all three.
  double p_meta_table = 0.2;        // meta-only table (vs packet keys)
  double p_meta_ternary_key = 0.25; // ternary (vs exact) within a meta table
  double p_valid_table = 0.12;      // valid(h)-only table
  double p_lpm_table = 0.18;        // pure single-key lpm table
  double p_valid_extra_key = 0.35;  // extra valid(h) key on a packet table
  double p_ternary_key = 0.3;       // ternary (vs exact) per packet key
};

// One rule in CLI value syntax — the same strings drive the native
// `table_add` line and the DPMU's VirtualRule, so both backends install
// literally the same entry.
struct GenRule {
  std::string table;
  std::string action;
  std::vector<std::string> keys;
  std::vector<std::string> args;
  std::int32_t priority = -1;
};

struct GenPacket {
  std::uint16_t port = 0;
  net::Packet packet;
};

struct GenCase {
  std::uint64_t seed = 0;
  std::size_t ports = 4;
  p4::Program program;
  std::vector<GenRule> rules;
  std::vector<GenPacket> packets;
  // Uses counters/registers: the persona backend will skip the case and
  // the oracle pins the engine to workers=1.
  bool stateful = false;
};

// One position of a generated multi-vdev chain: an independently generated
// program (its own parser, tables, rules) plus the vdev name it loads
// under. Chain cases are always stateless — the chained oracle compares
// the persona, and the persona skips stateful programs.
struct ChainLink {
  std::string name;  // vdev name, unique within the chain
  p4::Program program;
  std::vector<GenRule> rules;
};

struct ChainCase {
  std::uint64_t seed = 0;
  std::size_t ports = 4;
  std::vector<ChainLink> links;  // front first
  // Injected into the front link; downstream links parse whatever bytes
  // the upstream programs emit — exactly the cross-program coverage a
  // single-vdev case can't produce.
  std::vector<GenPacket> packets;
};

// Native CLI line installing `r` ("table_add t a k... => args... [prio]").
std::string cli_line(const GenRule& r);

class ProgramGen {
 public:
  explicit ProgramGen(GenLimits limits = {}) : limits_(limits) {}
  const GenLimits& limits() const { return limits_; }

  // Deterministic: same seed, same case.
  GenCase generate(std::uint64_t seed) const;

  // A chain of `depth` independently generated stateless programs sharing
  // one port space, plus the front link's packet battery. Deterministic in
  // (seed, depth); link sub-seeds are derived so links never repeat within
  // a chain and chains never collide with single-program seeds.
  ChainCase generate_chain(std::uint64_t seed, std::size_t depth) const;

 private:
  GenLimits limits_;
};

}  // namespace hyper4::check
