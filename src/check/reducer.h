// Greedy shrinking of a failing differential case to a locally-minimal
// repro. The reducer only proposes structurally valid candidates (tables
// are unlinked from the control graph, orphaned actions pruned, the program
// re-validated); the caller's `still_fails` oracle decides which candidates
// keep the failure. A candidate that throws inside the oracle is treated as
// "does not reproduce" and discarded.
//
// Passes, iterated to a fixed point:
//   1. packets  — try each single packet alone, then greedy removal;
//   2. rules    — greedy removal;
//   3. tables   — remove a table, its rules and its control node;
//   4. prims    — drop primitives from action bodies one at a time.
#pragma once

#include <cstddef>
#include <functional>

#include "check/program_gen.h"

namespace hyper4::check {

struct ReduceStats {
  std::size_t attempts = 0;   // oracle invocations
  std::size_t accepted = 0;   // candidates that kept the failure
};

using FailurePredicate = std::function<bool(const GenCase&)>;

// Returns a case that still satisfies `still_fails` (the input is returned
// unchanged when nothing can be removed). `still_fails(failing)` is assumed
// true; the reducer never re-checks the input itself.
GenCase reduce(const GenCase& failing, const FailurePredicate& still_fails,
               ReduceStats* stats = nullptr);

// Chain-case shrinking, same contract. Passes, iterated to a fixed point:
//   1. links   — remove a whole link (shorten the composition) while at
//                least two remain;
//   2. packets — try each single packet alone, then greedy removal;
//   3. rules   — greedy removal per link.
// Per-link table/primitive shrinking is intentionally left to the
// single-program reducer: chain failures are about composition, and the
// repro stays more readable with intact link programs.
using ChainFailurePredicate = std::function<bool(const ChainCase&)>;
ChainCase reduce_chain(const ChainCase& failing,
                       const ChainFailurePredicate& still_fails,
                       ReduceStats* stats = nullptr);

}  // namespace hyper4::check
