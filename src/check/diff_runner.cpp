#include "check/diff_runner.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include "bm/cli.h"
#include "bm/switch.h"
#include "engine/engine.h"
#include "hp4/compiler.h"
#include "hp4/controller.h"
#include "hp4/trace_decode.h"
#include "obs/export.h"
#include "obs/tracer.h"
#include "util/error.h"
#include "vm/vm.h"

namespace hyper4::check {

namespace {

hp4::VirtualRule to_virtual(const GenRule& r) {
  return hp4::VirtualRule{r.table, r.action, r.keys, r.args, r.priority};
}

void apply_native(bm::Switch& sw, const GenRule& r) {
  const bm::CliResult res = bm::run_cli_command(sw, cli_line(r));
  if (!res.ok)
    throw util::CommandError("check: native rejected rule '" + cli_line(r) +
                             "': " + res.message);
}

}  // namespace

std::string DiffReport::str() const {
  if (equivalent) {
    std::string s = "equivalent";
    if (!persona_ran)
      s += " (persona skipped: " +
           (persona_skip_reason.empty() ? std::string("disabled")
                                        : persona_skip_reason) +
           ")";
    else if (!vm_ran)
      s += " (vm skipped)";
    else if (vm_fallbacks > 0)
      s += " (vm fallbacks: " + std::to_string(vm_fallbacks) + ")";
    return s;
  }
  return divergence ? divergence->str() : std::string("diverged");
}

DiffReport DiffRunner::run(const GenCase& c) const {
  DiffReport rep;
  auto fail = [&](Divergence d) {
    rep.equivalent = false;
    rep.divergence = std::move(d);
  };

  // --- native reference, configured first ----------------------------------
  bm::Switch native(c.program);
  for (const auto& r : c.rules) apply_native(native, r);

  // Tracing, when requested. The native tracer attaches after configuration
  // so the ring holds only packet-processing events; the persona tracer
  // attaches right before injection for the same reason.
  std::unique_ptr<obs::PipelineTracer> native_tr;
  std::unique_ptr<obs::PipelineTracer> persona_tr;
  if (opts_.trace) {
    obs::TracerOptions topts;
    topts.capacity = 1 << 16;
    topts.profile = true;
    topts.timestamps = true;
    native_tr = std::make_unique<obs::PipelineTracer>(topts);
    native.set_tracer(native_tr.get());
  }

  // --- engine, mirroring the configured native state ------------------------
  std::unique_ptr<engine::TrafficEngine> eng;
  if (opts_.run_engine) {
    engine::EngineOptions eo;
    eo.workers = c.stateful ? 1 : std::max<std::size_t>(1, opts_.engine_workers);
    eng = std::make_unique<engine::TrafficEngine>(c.program, eo);
    eng->sync_from(native);
  }

  // --- persona ---------------------------------------------------------------
  std::unique_ptr<hp4::Controller> ctl;
  std::optional<hp4::VdevId> vdev;
  hp4::PersonaConfig pcfg;
  pcfg.writeback_step_bytes = opts_.persona_writeback_step;
  if (opts_.run_persona) {
    ctl = std::make_unique<hp4::Controller>(pcfg);
    try {
      vdev = ctl->load(c.program.name, c.program);
    } catch (const hp4::UnsupportedFeature& e) {
      rep.persona_skip_reason = e.what();
      ctl.reset();
    }
    if (vdev) {
      std::vector<std::uint16_t> ports;
      for (std::size_t p = 1; p <= c.ports; ++p)
        ports.push_back(static_cast<std::uint16_t>(p));
      ctl->attach_ports(*vdev, ports);
      for (std::uint16_t p : ports) ctl->bind(*vdev, p);
      for (std::size_t i = 0; i < c.rules.size(); ++i) {
        if (opts_.mutation == Mutation::kDropPersonaRule &&
            i + 1 == c.rules.size())
          continue;  // injected divergence: last rule never reaches the DPMU
        try {
          ctl->add_rule(*vdev, to_virtual(c.rules[i]));
        } catch (const util::Error& e) {
          // Native accepted the rule; the persona must too.
          Divergence d;
          d.lhs = "native";
          d.rhs = "persona";
          d.kind = "rule_rejected";
          d.detail = "vdev '" + c.program.name + "' rule '" +
                     cli_line(c.rules[i]) + "': " + e.what();
          fail(std::move(d));
          ctl.reset();
          vdev.reset();
          break;
        }
      }
      rep.persona_ran = vdev.has_value();
    }
  }

  if (opts_.trace && ctl && vdev) {
    obs::TracerOptions topts;
    topts.capacity = 1 << 16;
    topts.profile = true;
    topts.timestamps = true;
    persona_tr = std::make_unique<obs::PipelineTracer>(topts);
    ctl->dataplane().set_tracer(persona_tr.get());
  }

  // Decode and export whatever was traced; runs at every exit point once
  // packets have flowed.
  auto fill_trace = [&]() {
    if (!native_tr) return;
    const hp4::DecodedTrace nat = hp4::decode_native_trace(*native_tr);
    std::vector<std::pair<std::string, const obs::PipelineTracer*>> traced;
    traced.emplace_back("native", native_tr.get());
    if (persona_tr) traced.emplace_back("persona", persona_tr.get());
    rep.chrome_trace = obs::chrome_trace_json(traced);
    rep.profile_json =
        obs::profile_json(native_tr->profile(), native_tr->table_names());
    if (persona_tr && ctl && vdev) {
      const hp4::TraceDecoder decoder(ctl->dpmu());
      const hp4::DecodedTrace per = decoder.decode(*persona_tr);
      rep.explanation = hp4::first_divergence_report(nat, per);
    } else if (!rep.equivalent) {
      // No persona trace to compare against (engine divergence or persona
      // skip): give the operator the native side as context.
      rep.explanation = "native trace (decoded):\n" + nat.serialize(false);
    }
  };

  // --- inject ----------------------------------------------------------------
  std::vector<bm::ProcessResult> native_res;
  native_res.reserve(c.packets.size());
  for (const auto& pk : c.packets)
    native_res.push_back(native.inject(pk.port, pk.packet));

  if (eng) {
    for (const auto& pk : c.packets) eng->inject(pk.port, pk.packet);
    engine::MergedResult merged = eng->drain();

    if (opts_.mutation == Mutation::kCorruptEngineByte &&
        !merged.per_packet.empty()) {
      bool done = false;
      for (auto& pr : merged.per_packet) {
        for (auto& o : pr.outputs) {
          if (!o.packet.empty()) {
            auto bytes = o.packet.mutable_bytes();
            bytes[bytes.size() - 1] ^= 0xFF;
            done = true;
            break;
          }
        }
        if (done) break;
      }
      if (!done)
        merged.per_packet.front().outputs.push_back(
            bm::OutputPacket{1, net::Packet({0xde, 0xad})});
    }

    if (merged.packets != c.packets.size()) {
      Divergence d;
      d.lhs = "native";
      d.rhs = "engine";
      d.kind = "packet_count";
      d.detail = std::to_string(c.packets.size()) + " injected vs " +
                 std::to_string(merged.packets) + " drained";
      fail(std::move(d));
      fill_trace();
      return rep;
    }
    for (std::size_t i = 0; i < c.packets.size() && rep.equivalent; ++i) {
      if (auto d = diff_results(native_res[i], merged.per_packet[i], i)) {
        d->lhs = "native";
        d->rhs = "engine";
        fail(std::move(*d));
      }
    }

    // Final stateful-object comparison.
    for (const auto& cd : c.program.counters) {
      for (std::size_t i = 0; i < cd.instance_count && rep.equivalent; ++i) {
        const auto np = native.counter_packets(cd.name, i);
        const auto nb = native.counter_bytes(cd.name, i);
        const auto ep = eng->counter_packets_total(cd.name, i);
        const auto eb = eng->counter_bytes_total(cd.name, i);
        if (np != ep || nb != eb) {
          Divergence d;
          d.lhs = "native";
          d.rhs = "engine";
          d.kind = "counter_state";
          d.detail = cd.name + "[" + std::to_string(i) + "]: " +
                     std::to_string(np) + "p/" + std::to_string(nb) +
                     "B vs " + std::to_string(ep) + "p/" +
                     std::to_string(eb) + "B";
          fail(std::move(d));
        }
      }
    }
    if (eng->workers() == 1) {
      for (const auto& rd : c.program.registers) {
        for (std::size_t i = 0; i < rd.instance_count && rep.equivalent; ++i) {
          const auto nv = native.register_read(rd.name, i);
          const auto ev = eng->register_read(rd.name, i);
          if (!(nv == ev)) {
            Divergence d;
            d.lhs = "native";
            d.rhs = "engine";
            d.kind = "register_state";
            d.detail = rd.name + "[" + std::to_string(i) + "]: 0x" +
                       nv.to_hex() + " vs 0x" + ev.to_hex();
            fail(std::move(d));
          }
        }
      }
    }
    if (!rep.equivalent) {
      fill_trace();
      return rep;
    }
  }

  std::vector<bm::ProcessResult> persona_res;
  if (ctl && vdev) {
    persona_res.reserve(c.packets.size());
    for (std::size_t i = 0; i < c.packets.size(); ++i) {
      persona_res.push_back(
          ctl->dataplane().inject(c.packets[i].port, c.packets[i].packet));
      if (auto d = diff_observable(native_res[i], persona_res[i], i)) {
        d->lhs = "native";
        d->rhs = "persona";
        fail(std::move(*d));
        fill_trace();
        return rep;
      }
    }
  }

  // --- bytecode tier vs interpreted persona ---------------------------------
  // Same dataplane, same packets; the persona pipeline is stateless across
  // injections (hit counters only), so re-running them is exact. The tracer
  // is detached first so a VM fallback's restart-inject can't append
  // duplicate events to the persona ring fill_trace() decodes.
  if (opts_.run_vm && ctl && vdev && rep.equivalent) {
    if (persona_tr) ctl->dataplane().set_tracer(nullptr);
    vm::VmExecutor vm(ctl->dataplane(), pcfg);
    for (std::size_t i = 0; i < c.packets.size(); ++i) {
      const bm::ProcessResult vr =
          vm.process(c.packets[i].port, c.packets[i].packet);
      if (auto d = diff_observable(persona_res[i], vr, i)) {
        d->lhs = "persona";
        d->rhs = "vm";
        fail(std::move(*d));
        break;
      }
      const bm::ProcessResult& pr = persona_res[i];
      if (pr.drops != vr.drops || pr.resubmits != vr.resubmits ||
          pr.recirculations != vr.recirculations ||
          pr.parse_errors != vr.parse_errors ||
          pr.loop_kills != vr.loop_kills ||
          pr.multicast_copies != vr.multicast_copies) {
        Divergence d;
        d.lhs = "persona";
        d.rhs = "vm";
        d.kind = "tm_counters";
        d.packet_index = i;
        d.detail = "vdev '" + c.program.name + "': drops " +
                   std::to_string(pr.drops) + "/" +
                   std::to_string(vr.drops) + " resubmits " +
                   std::to_string(pr.resubmits) + "/" +
                   std::to_string(vr.resubmits) + " recirculations " +
                   std::to_string(pr.recirculations) + "/" +
                   std::to_string(vr.recirculations) + " parse_errors " +
                   std::to_string(pr.parse_errors) + "/" +
                   std::to_string(vr.parse_errors) + " loop_kills " +
                   std::to_string(pr.loop_kills) + "/" +
                   std::to_string(vr.loop_kills) + " multicast_copies " +
                   std::to_string(pr.multicast_copies) + "/" +
                   std::to_string(vr.multicast_copies);
        fail(std::move(d));
        break;
      }
    }
    rep.vm_ran = true;
    rep.vm_fallbacks = vm.stats().packets_fallback;
  }
  fill_trace();
  return rep;
}

std::string tm_divergence_vdev(const std::vector<std::string>& link_names,
                               std::uint64_t lhs_recirculations,
                               std::uint64_t rhs_recirculations) {
  if (link_names.empty()) return "?";
  // Each inter-link hop is one recirculation, so a packet that completed R
  // recirculations on both sides before the counters parted ways was inside
  // link R (0-based) when they did. When the counts themselves differ, the
  // smaller one is the last hop both executions agree on.
  const std::uint64_t hop = std::min(lhs_recirculations, rhs_recirculations);
  const std::size_t idx = static_cast<std::size_t>(
      std::min<std::uint64_t>(hop, link_names.size() - 1));
  return link_names[idx];
}

DiffReport DiffRunner::run_chain(const ChainCase& c) const {
  DiffReport rep;
  auto fail = [&](Divergence d) {
    rep.equivalent = false;
    rep.divergence = std::move(d);
  };
  if (c.links.empty())
    throw util::ConfigError("check: chain case has no links");

  // --- native reference: one switch per link, cascaded in series -----------
  std::vector<std::unique_ptr<bm::Switch>> natives;
  for (const auto& l : c.links) {
    auto sw = std::make_unique<bm::Switch>(l.program);
    for (const auto& r : l.rules) apply_native(*sw, r);
    natives.push_back(std::move(sw));
  }
  // Every output of link i feeds link i+1 at the same port — the physical
  // wiring Controller::chain() emulates with recirculations.
  auto native_chain = [&](std::uint16_t port, const net::Packet& pkt) {
    std::vector<bm::OutputPacket> cur =
        natives[0]->inject(port, pkt).outputs;
    for (std::size_t i = 1; i < natives.size(); ++i) {
      std::vector<bm::OutputPacket> next;
      for (auto& o : cur)
        for (auto& o2 : natives[i]->inject(o.port, o.packet).outputs)
          next.push_back(std::move(o2));
      cur = std::move(next);
    }
    bm::ProcessResult res;
    res.outputs = std::move(cur);
    return res;
  };
  std::vector<bm::ProcessResult> native_res;
  native_res.reserve(c.packets.size());
  for (const auto& pk : c.packets)
    native_res.push_back(native_chain(pk.port, pk.packet));

  // --- persona: every link in ONE persona, composed via chain() ------------
  hp4::PersonaConfig pcfg;
  pcfg.writeback_step_bytes = opts_.persona_writeback_step;
  auto ctl = std::make_unique<hp4::Controller>(pcfg);
  std::vector<hp4::VdevId> vdevs;
  std::vector<std::string> names;
  for (const auto& l : c.links) names.push_back(l.name);
  for (const auto& l : c.links) {
    try {
      vdevs.push_back(ctl->load(l.name, l.program));
    } catch (const hp4::UnsupportedFeature& e) {
      // One link outside the subset skips the whole composition.
      rep.persona_skip_reason = "link '" + l.name + "': " + e.what();
      return rep;
    }
  }
  std::vector<std::uint16_t> ports;
  for (std::size_t p = 1; p <= c.ports; ++p)
    ports.push_back(static_cast<std::uint16_t>(p));
  ctl->chain(vdevs, ports);

  // kDropPersonaRule drops the chain's very last rule (last link that has
  // any) — the plant the oracle and reducer must catch and keep.
  std::size_t drop_link = c.links.size();
  if (opts_.mutation == Mutation::kDropPersonaRule) {
    for (std::size_t li = c.links.size(); li-- > 0;) {
      if (!c.links[li].rules.empty()) {
        drop_link = li;
        break;
      }
    }
  }
  for (std::size_t li = 0; li < c.links.size(); ++li) {
    const auto& l = c.links[li];
    for (std::size_t i = 0; i < l.rules.size(); ++i) {
      if (li == drop_link && i + 1 == l.rules.size()) continue;
      try {
        ctl->add_rule(vdevs[li], to_virtual(l.rules[i]));
      } catch (const util::Error& e) {
        Divergence d;
        d.lhs = "native";
        d.rhs = "persona";
        d.kind = "rule_rejected";
        d.detail = "vdev '" + l.name + "' rule '" + cli_line(l.rules[i]) +
                   "': " + e.what();
        fail(std::move(d));
        return rep;
      }
    }
  }
  rep.persona_ran = true;

  // --- engine over the persona program, mirrored while pristine ------------
  std::unique_ptr<engine::TrafficEngine> eng;
  if (opts_.run_engine) {
    engine::EngineOptions eo;
    eo.workers = std::max<std::size_t>(1, opts_.engine_workers);
    eng = std::make_unique<engine::TrafficEngine>(
        ctl->dataplane().program(), eo);
    eng->sync_from(ctl->dataplane());
  }

  // --- persona vs native ----------------------------------------------------
  std::vector<bm::ProcessResult> persona_res;
  persona_res.reserve(c.packets.size());
  for (std::size_t i = 0; i < c.packets.size(); ++i) {
    persona_res.push_back(
        ctl->dataplane().inject(c.packets[i].port, c.packets[i].packet));
    if (auto d = diff_observable(native_res[i], persona_res[i], i)) {
      d->lhs = "native";
      d->rhs = "persona";
      d->detail = "chain of " + std::to_string(c.links.size()) +
                  " (front '" + names.front() + "'): " + d->detail;
      fail(std::move(*d));
      return rep;
    }
  }

  // --- engine vs persona: full structural equality --------------------------
  if (eng) {
    for (const auto& pk : c.packets) eng->inject(pk.port, pk.packet);
    engine::MergedResult merged = eng->drain();

    if (opts_.mutation == Mutation::kCorruptEngineByte &&
        !merged.per_packet.empty()) {
      bool done = false;
      for (auto& pr : merged.per_packet) {
        for (auto& o : pr.outputs) {
          if (!o.packet.empty()) {
            auto bytes = o.packet.mutable_bytes();
            bytes[bytes.size() - 1] ^= 0xFF;
            done = true;
            break;
          }
        }
        if (done) break;
      }
      if (!done)
        merged.per_packet.front().outputs.push_back(
            bm::OutputPacket{1, net::Packet({0xde, 0xad})});
    }

    if (merged.packets != c.packets.size()) {
      Divergence d;
      d.lhs = "persona";
      d.rhs = "engine";
      d.kind = "packet_count";
      d.detail = std::to_string(c.packets.size()) + " injected vs " +
                 std::to_string(merged.packets) + " drained";
      fail(std::move(d));
      return rep;
    }
    for (std::size_t i = 0; i < c.packets.size(); ++i) {
      if (auto d = diff_results(persona_res[i], merged.per_packet[i], i)) {
        d->lhs = "persona";
        d->rhs = "engine";
        fail(std::move(*d));
        return rep;
      }
    }
  }

  // --- bytecode tier vs interpreted persona ---------------------------------
  if (opts_.run_vm) {
    vm::VmExecutor vm(ctl->dataplane(), pcfg);
    for (std::size_t i = 0; i < c.packets.size(); ++i) {
      const bm::ProcessResult vr =
          vm.process(c.packets[i].port, c.packets[i].packet);
      if (auto d = diff_observable(persona_res[i], vr, i)) {
        d->lhs = "persona";
        d->rhs = "vm";
        fail(std::move(*d));
        break;
      }
      const bm::ProcessResult& pr = persona_res[i];
      if (pr.drops != vr.drops || pr.resubmits != vr.resubmits ||
          pr.recirculations != vr.recirculations ||
          pr.parse_errors != vr.parse_errors ||
          pr.loop_kills != vr.loop_kills ||
          pr.multicast_copies != vr.multicast_copies) {
        Divergence d;
        d.lhs = "persona";
        d.rhs = "vm";
        d.kind = "tm_counters";
        d.packet_index = i;
        d.detail =
            "vdev '" +
            tm_divergence_vdev(names, pr.recirculations, vr.recirculations) +
            "': drops " + std::to_string(pr.drops) + "/" +
            std::to_string(vr.drops) + " resubmits " +
            std::to_string(pr.resubmits) + "/" +
            std::to_string(vr.resubmits) + " recirculations " +
            std::to_string(pr.recirculations) + "/" +
            std::to_string(vr.recirculations) + " parse_errors " +
            std::to_string(pr.parse_errors) + "/" +
            std::to_string(vr.parse_errors) + " loop_kills " +
            std::to_string(pr.loop_kills) + "/" +
            std::to_string(vr.loop_kills) + " multicast_copies " +
            std::to_string(pr.multicast_copies) + "/" +
            std::to_string(vr.multicast_copies);
        fail(std::move(d));
        break;
      }
    }
    rep.vm_ran = true;
    rep.vm_fallbacks = vm.stats().packets_fallback;
  }
  return rep;
}

}  // namespace hyper4::check
