// Crash-point fuzzing of the durable control plane (src/state).
//
// Each iteration: generate a random persona-supported (program, rules,
// packets) triple, drive a reference DurableController through a seeded
// op script — setup, singleton rules and multi-rule transactions, with an
// optional mid-script checkpoint — then simulate crashes by truncating a
// copy of the journal at byte k (one forced kill inside a transaction's
// commit record, plus random offsets across the whole journal), recover,
// and verify the recovered store against the expected prefix:
//   digest   state_digest equality with a freshly-built controller that
//            applied exactly the ops whose journal records survived;
//   persona  strict trace equality (diff_results) on the generated packet
//            suite between the recovered and the expected persona;
//   native   egress-observable equality (diff_observable) against a
//            native bm::Switch holding the surviving rule prefix;
//   engine   strict trace equality native-vs-TrafficEngine over the same
//            prefix (the third backend of the differential oracle).
//
// A kill that lands inside (or before) a transaction's single kTxn record
// must recover to the pre-transaction state — all-or-nothing is verified
// by the same digest/trace machinery, since the expected prefix simply
// excludes the whole batch.
//
// Failing crash directories are left on disk with a REPRO.txt describing
// seed + kill offset (the CI job uploads them as artifacts).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/program_gen.h"

namespace hyper4::check {

struct CrashFuzzOptions {
  std::uint64_t seed = 1;
  std::size_t iters = 20;
  std::size_t kills_per_iter = 3;  // random offsets per iteration (the
                                   // forced in-txn kill is extra)
  bool run_engine = true;
  std::size_t engine_workers = 2;
  GenLimits limits;
  std::string work_dir;  // scratch root; created if missing
  bool verbose = false;  // one line per iteration to stderr
};

struct CrashFailure {
  std::uint64_t seed = 0;
  std::uint64_t kill_offset = 0;  // flattened journal byte offset kept
  std::string dir;                // crash dir left on disk (with REPRO.txt)
  std::string detail;
};

struct CrashFuzzResult {
  std::size_t cases = 0;       // iterations that ran (seed was supported)
  std::size_t skipped = 0;     // persona-unsupported seeds
  std::size_t recoveries = 0;  // crash+recover cycles performed
  std::size_t txn_kills = 0;   // kills that landed at/inside a txn commit
  std::size_t checkpoint_runs = 0;  // iterations with a mid-script checkpoint
  std::vector<CrashFailure> failures;

  bool ok() const { return failures.empty(); }
  std::string str() const;
};

CrashFuzzResult crash_fuzz(const CrashFuzzOptions& opts);

}  // namespace hyper4::check
