// Standalone repro serialization: a failing (program, rules, packets)
// triple becomes a `.p4` source file (hp4::emit_p4, re-read through the
// P4-14 frontend) plus a commands file listing ports, rules and packets.
// A committed repro replays with no dependency on the generator — the
// regression test just loads the two files and runs the oracle.
//
// Commands format (one directive per line, '#' comments):
//   seed <n>
//   ports <n>
//   stateful <0|1>
//   rule <table> <action> | <key>... | <arg>... | <priority>
//   packet <port> <hex bytes, contiguous>
#pragma once

#include <string>

#include "check/program_gen.h"

namespace hyper4::check {

// Render the commands file body.
std::string repro_commands_text(const GenCase& c);

// Parse the two artifacts back into a runnable case. `p4_source` goes
// through p4::parse_p4; throws util::Error subclasses on malformed input.
GenCase parse_repro(const std::string& p4_source, const std::string& commands,
                    const std::string& name = "repro");

// File convenience wrappers.
void write_repro(const GenCase& c, const std::string& p4_path,
                 const std::string& cmds_path);
GenCase load_repro(const std::string& p4_path, const std::string& cmds_path);

// --- chained repros ---------------------------------------------------------
// A chain repro is ONE commands file plus one .p4 per link:
//   chain <depth>
//   seed <n>
//   ports <n>
//   link <index> <vdev-name> <p4-file>
//   crule <link-index> <table> <action> | <key>... | <arg>... | <priority>
//   packet <port> <hex bytes>
// Link p4 paths are written (and resolved on load) relative to the commands
// file's directory, so a repro directory moves as a unit.
std::string chain_repro_commands_text(const ChainCase& c);

// Writes `<base>.cmds` plus `<base>.link<i>.p4` per link; returns the
// commands path.
std::string write_chain_repro(const ChainCase& c, const std::string& base);
ChainCase load_chain_repro(const std::string& cmds_path);

// Friendly diagnosis for a replay pointed at a missing or unreadable repro
// artifact: says what is wrong with `path` and suggests near-miss filenames
// from the same directory (util::nearest_names over the sibling files).
// Returns a complete error message; never throws.
std::string replay_file_hint(const std::string& path);

}  // namespace hyper4::check
