// Standalone repro serialization: a failing (program, rules, packets)
// triple becomes a `.p4` source file (hp4::emit_p4, re-read through the
// P4-14 frontend) plus a commands file listing ports, rules and packets.
// A committed repro replays with no dependency on the generator — the
// regression test just loads the two files and runs the oracle.
//
// Commands format (one directive per line, '#' comments):
//   seed <n>
//   ports <n>
//   stateful <0|1>
//   rule <table> <action> | <key>... | <arg>... | <priority>
//   packet <port> <hex bytes, contiguous>
#pragma once

#include <string>

#include "check/program_gen.h"

namespace hyper4::check {

// Render the commands file body.
std::string repro_commands_text(const GenCase& c);

// Parse the two artifacts back into a runnable case. `p4_source` goes
// through p4::parse_p4; throws util::Error subclasses on malformed input.
GenCase parse_repro(const std::string& p4_source, const std::string& commands,
                    const std::string& name = "repro");

// File convenience wrappers.
void write_repro(const GenCase& c, const std::string& p4_path,
                 const std::string& cmds_path);
GenCase load_repro(const std::string& p4_path, const std::string& cmds_path);

}  // namespace hyper4::check
