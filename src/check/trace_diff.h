// Structured first-divergence reports between two backends' behaviour,
// built on the per-injection traces in bm/trace.h.
//
// Two comparison strengths:
//   diff_results     full structural equality — outputs in order, applied
//                    tables (names, hit/miss, entry handles, ternary bits),
//                    drop/resubmit/clone/parse-error counters, digests.
//                    Used native-vs-engine, where the engine's determinism
//                    contract promises bit-identical traces.
//   diff_observable  egress-observable equality only — the multiset of
//                    (port, packet bytes). Used native-vs-persona, where
//                    internal traces legitimately differ (the persona runs
//                    its own tables) but the paper's equivalence claim
//                    covers what leaves the switch.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "bm/trace.h"
#include "net/packet.h"

namespace hyper4::check {

struct Divergence {
  static constexpr std::size_t kNoPacket = static_cast<std::size_t>(-1);

  std::string lhs;  // backend name, e.g. "native"
  std::string rhs;  // backend name, e.g. "engine"
  // Index of the injected packet the divergence was observed on, or
  // kNoPacket for aggregate state (counters, registers, packet counts).
  std::size_t packet_index = kNoPacket;
  std::string kind;    // "output_bytes", "applied_tables", "drops", ...
  std::string detail;  // human-readable specifics

  std::string str() const;
};

// First byte-level difference between two packets, e.g.
// "len 60 vs 60, first difference at byte 12: 0x3a vs 0x00".
std::string describe_packet_diff(const net::Packet& a, const net::Packet& b);

// Full structural comparison. Returns the first divergence found (kind and
// detail filled in; lhs/rhs left for the caller), or nullopt when equal.
std::optional<Divergence> diff_results(
    const bm::ProcessResult& a, const bm::ProcessResult& b,
    std::size_t packet_index = Divergence::kNoPacket);

// Egress-observable comparison: the multiset of (port, bytes) only.
std::optional<Divergence> diff_observable(
    const bm::ProcessResult& a, const bm::ProcessResult& b,
    std::size_t packet_index = Divergence::kNoPacket);

}  // namespace hyper4::check
